//! # spmv-multicore
//!
//! Umbrella crate for the reproduction of Williams et al., *"Optimization of Sparse
//! Matrix-Vector Multiplication on Emerging Multicore Platforms"* (SC 2007).
//!
//! It re-exports the workspace crates so examples and downstream users can depend on
//! a single package:
//!
//! * [`spmv_core`] — sparse formats, kernels, blocking heuristics, and the
//!   footprint-minimizing autotuner (the paper's primary contribution).
//! * [`spmv_matrices`] — the synthetic Table 3 matrix suite and MatrixMarket I/O.
//! * [`spmv_parallel`] — thread-parallel, NUMA-aware SpMV execution.
//! * [`spmv_archsim`] — machine models of the five evaluated platforms and the
//!   analytic performance model behind the table/figure reproductions.
//! * [`spmv_baseline`] — the OSKI and OSKI-PETSc baselines.
//! * [`spmv_obs`] — the engine-wide observability layer: counters, gauges,
//!   log-bucketed latency histograms, shared timing helpers, and the
//!   `SPMV_TRACE`-gated event ring.
//!
//! See `README.md` for a quickstart, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for the paper-versus-measured comparison of every table and
//! figure.

pub use spmv_archsim;
pub use spmv_baseline;
pub use spmv_core;
pub use spmv_matrices;
pub use spmv_net;
pub use spmv_obs;
pub use spmv_parallel;
pub use spmv_serve;

/// Convenience prelude pulling in the types most examples need.
pub mod prelude {
    pub use spmv_archsim::perfmodel::{
        OptimizationLevel, ParallelScope, PerformanceModel, WorkloadProfile,
    };
    pub use spmv_archsim::platforms::PlatformId;
    pub use spmv_baseline::oski::OskiMatrix;
    pub use spmv_baseline::petsc::OskiPetsc;
    pub use spmv_core::formats::{CooMatrix, CsrMatrix};
    pub use spmv_core::multivec::MultiVec;
    pub use spmv_core::tuning::{
        autotune, tune, tune_csr, MatrixFingerprint, PreparedMatrix, SearchBudget, TuneCache,
        TunePlan, TunedMatrix, TuningConfig,
    };
    pub use spmv_core::{MatrixShape, SpMv};
    pub use spmv_matrices::suite::{Scale, SuiteMatrix};
    pub use spmv_parallel::executor::{ParallelCsr, ParallelTuned};
    pub use spmv_parallel::{AffinityPolicy, SpmvEngine};
    pub use spmv_serve::{BatchPolicy, Batcher, MatrixRegistry};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_an_end_to_end_path() {
        let coo = SuiteMatrix::Circuit.generate(Scale::Tiny);
        let csr = CsrMatrix::from_coo(&coo);
        let tuned = tune_csr(&csr, &TuningConfig::full());
        let x = vec![1.0; csr.ncols()];
        let y_ref = csr.spmv_alloc(&x);
        let y_tuned = tuned.spmv_alloc(&x);
        let diff = y_ref
            .iter()
            .zip(y_tuned.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(diff < 1e-9);
    }
}
