//! Quickstart: build a sparse matrix, tune it with the paper's footprint-minimizing
//! heuristic, and compare naive, tuned, and parallel SpMV.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use spmv_multicore::prelude::*;
use std::time::Instant;

fn time_gflops<F: FnMut()>(nnz: usize, reps: usize, mut f: F) -> f64 {
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    let secs = start.elapsed().as_secs_f64().max(1e-12);
    (2 * nnz * reps) as f64 / secs / 1e9
}

fn main() {
    // A mid-sized FEM-style matrix from the paper's evaluation suite.
    let coo = SuiteMatrix::FemCantilever.generate(Scale::Small);
    let csr = CsrMatrix::from_coo(&coo);
    println!(
        "matrix: {} rows x {} cols, {} nonzeros ({:.1} per row)",
        csr.nrows(),
        csr.ncols(),
        csr.nnz(),
        csr.nnz() as f64 / csr.nrows() as f64
    );

    // Tune: register blocking + 16-bit indices + cache/TLB blocking, chosen per
    // cache block by the one-pass footprint heuristic.
    let tuned = tune_csr(&csr, &TuningConfig::full());
    let report = tuned.report();
    println!(
        "tuned footprint: {:.2} MB vs CSR {:.2} MB  (compression {:.2}x)",
        tuned.footprint_bytes() as f64 / 1e6,
        report.csr_bytes as f64 / 1e6,
        report.csr_bytes as f64 / tuned.footprint_bytes() as f64
    );
    println!("cache blocks: {}", tuned.num_blocks());
    for (format, count) in tuned.format_histogram() {
        println!("  {count:>4} blocks stored as {format}");
    }

    // Verify correctness against the reference kernel, then measure.
    let x: Vec<f64> = (0..csr.ncols()).map(|i| (i as f64 * 0.01).sin()).collect();
    let y_ref = csr.spmv_alloc(&x);
    let y_tuned = tuned.spmv_alloc(&x);
    let max_err = y_ref
        .iter()
        .zip(&y_tuned)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("max |tuned - reference| = {max_err:.2e}");

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let parallel = ParallelTuned::new(&csr, threads, &TuningConfig::full());

    let reps = 20;
    let mut y = vec![0.0; csr.nrows()];
    let naive = time_gflops(csr.nnz(), reps, || csr.spmv(&x, &mut y));
    let mut y = vec![0.0; csr.nrows()];
    let tuned_rate = time_gflops(csr.nnz(), reps, || tuned.spmv(&x, &mut y));
    let mut y = vec![0.0; csr.nrows()];
    let parallel_rate = time_gflops(csr.nnz(), reps, || parallel.spmv_scoped(&x, &mut y));

    // The steady-state path: plan once (serializable — see TunePlan::save/load),
    // then a persistent engine whose workers materialize their fully tuned blocks
    // first-touch and run them with zero per-call overhead.
    let plan = TunePlan::new(&csr, threads, &TuningConfig::full());
    let mut engine = SpmvEngine::from_plan(&csr, &plan).expect("fresh plan fits");
    let mut y = vec![0.0; csr.nrows()];
    let engine_rate = time_gflops(csr.nnz(), reps, || engine.spmv(&x, &mut y));

    println!("naive CSR:        {naive:.2} Gflop/s");
    println!("tuned (serial):   {tuned_rate:.2} Gflop/s");
    println!("tuned ({threads} threads): {parallel_rate:.2} Gflop/s");
    println!("engine ({threads} threads): {engine_rate:.2} Gflop/s (persistent workers)");
}
