//! PageRank over the synthetic web-connectivity matrix — the "webbase" workload that
//! motivates the paper's interest in short-row, power-law matrices.
//!
//! The power iteration is dominated by SpMV with the (column-normalized) adjacency
//! matrix, so the tuned data structures and the BCOO/GCSR empty-row handling are
//! exactly what gets exercised.
//!
//! Run with:
//! ```text
//! cargo run --release --example pagerank
//! ```

use spmv_multicore::prelude::*;
use std::time::Instant;

fn main() {
    // Synthetic web graph with the webbase-1M structural profile (power-law degrees,
    // ~3 nonzeros per row), at a laptop-friendly scale.
    let adjacency = SuiteMatrix::Webbase.generate(Scale::Small);
    let n = adjacency.nrows();

    // Column-normalize: PageRank iterates x ← d·Pᵀx + (1-d)/n, where P is the
    // row-stochastic link matrix. Build Pᵀ directly as a CSR matrix.
    let csr = CsrMatrix::from_coo(&adjacency);
    let mut out_degree = vec![0usize; n];
    for (row, _, _) in csr.iter() {
        out_degree[row] += 1;
    }
    let mut pt = CooMatrix::new(n, n);
    for (row, col, _) in csr.iter() {
        // Link row -> col contributes to col's rank, weighted by row's out-degree.
        pt.push(col, row, 1.0 / out_degree[row] as f64);
    }
    let pt = CsrMatrix::from_coo(&pt);
    println!(
        "web graph: {} pages, {} links, {} dangling pages",
        n,
        pt.nnz(),
        out_degree.iter().filter(|&&d| d == 0).count()
    );

    // Tune the transition matrix: short rows and many empty rows mean the tuner
    // should pick BCOO/GCSR-style storage for most cache blocks.
    let tuned = tune_csr(&pt, &TuningConfig::full());
    println!(
        "tuned footprint {:.2} MB (CSR {:.2} MB); block formats: {:?}",
        tuned.footprint_bytes() as f64 / 1e6,
        tuned.report().csr_bytes as f64 / 1e6,
        tuned.format_histogram()
    );

    let damping = 0.85;
    let mut rank = vec![1.0 / n as f64; n];
    let dangling_mass = |rank: &[f64]| -> f64 {
        rank.iter()
            .zip(out_degree.iter())
            .filter(|(_, &d)| d == 0)
            .map(|(r, _)| r)
            .sum::<f64>()
    };

    let start = Instant::now();
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        let mut next = vec![(1.0 - damping) / n as f64; n];
        // Dangling pages distribute their rank uniformly.
        let dangle = damping * dangling_mass(&rank) / n as f64;
        for v in next.iter_mut() {
            *v += dangle;
        }
        // next += damping * Pᵀ * rank, using the tuned SpMV.
        let contribution = tuned.spmv_alloc(&rank);
        for (v, c) in next.iter_mut().zip(contribution.iter()) {
            *v += damping * c;
        }
        let delta: f64 = next
            .iter()
            .zip(rank.iter())
            .map(|(a, b)| (a - b).abs())
            .sum();
        rank = next;
        if delta < 1e-10 || iterations >= 100 {
            break;
        }
    }
    let elapsed = start.elapsed().as_secs_f64();

    // Report the top pages.
    let mut indexed: Vec<(usize, f64)> = rank.iter().copied().enumerate().collect();
    indexed.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("converged in {iterations} power iterations ({elapsed:.3} s)");
    println!(
        "total rank mass = {:.6} (should be ~1)",
        rank.iter().sum::<f64>()
    );
    println!("top 5 pages by rank:");
    for (page, score) in indexed.iter().take(5) {
        println!("  page {page:>8}  rank {score:.3e}");
    }
    assert!((rank.iter().sum::<f64>() - 1.0).abs() < 1e-6);
}
