//! Autotuning report: for every matrix in the paper's suite, show what the
//! footprint-minimizing heuristic chose (register block shapes, index widths,
//! formats), how much smaller the structure got, and how the OSKI-style search
//! baseline compares.
//!
//! Run with:
//! ```text
//! cargo run --release --example autotune_report
//! ```

use spmv_multicore::prelude::*;
use spmv_multicore::spmv_core::stats::MatrixStats;
use spmv_multicore::spmv_core::tuning::search::DenseProfile;

fn main() {
    println!(
        "{:<16} {:>10} {:>9} {:>12} {:>12} {:>10} {:>12}",
        "matrix", "nnz", "nnz/row", "tuned MB", "CSR MB", "ratio", "OSKI blocks"
    );
    for matrix in SuiteMatrix::all() {
        let coo = matrix.generate(Scale::Small);
        let csr = CsrMatrix::from_coo(&coo);
        let stats = MatrixStats::compute(&csr);
        let tuned = tune_csr(&csr, &TuningConfig::full());
        let oski = OskiMatrix::tune_with_profile(&csr, &DenseProfile::synthetic());

        println!(
            "{:<16} {:>10} {:>9.1} {:>12.2} {:>12.2} {:>10.2} {:>9}x{}",
            matrix.spec().name,
            csr.nnz(),
            stats.nnz_per_row_mean,
            tuned.footprint_bytes() as f64 / 1e6,
            tuned.report().csr_bytes as f64 / 1e6,
            tuned.report().compression_ratio(),
            oski.block_shape.0,
            oski.block_shape.1,
        );

        // Detail line: which block formats and register shapes dominate.
        let mut shape_counts: Vec<((usize, usize), usize)> = Vec::new();
        for d in &tuned.report().decisions {
            let key = (d.choice.r, d.choice.c);
            match shape_counts.iter_mut().find(|(k, _)| *k == key) {
                Some((_, c)) => *c += 1,
                None => shape_counts.push((key, 1)),
            }
        }
        shape_counts.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        let shapes: Vec<String> = shape_counts
            .iter()
            .take(3)
            .map(|((r, c), n)| format!("{n}x {r}x{c}"))
            .collect();
        let formats = tuned.format_histogram();
        println!(
            "    register shapes: {} | block formats: {:?}",
            shapes.join(", "),
            formats
        );
    }
    println!();
    println!("ratio = tuned bytes / CSR bytes (lower is better; the paper's heuristic");
    println!("minimizes exactly this quantity because SpMV is memory bound).");
}
