//! Platform sweep: run the architecture model for one matrix across all five
//! platforms of the study and print the full optimization ladder for each — a
//! single-matrix slice through Figure 1 that runs in seconds.
//!
//! Run with (matrix id optional, defaults to `fem_cantilever`):
//! ```text
//! cargo run --release --example platform_sweep -- protein
//! ```

use spmv_multicore::prelude::*;
use spmv_multicore::spmv_archsim::platforms::PlatformId;

fn main() {
    let wanted = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "fem_cantilever".to_string());
    let matrix = SuiteMatrix::all()
        .into_iter()
        .find(|m| m.id() == wanted)
        .unwrap_or_else(|| {
            eprintln!("unknown matrix '{wanted}', using fem_cantilever");
            SuiteMatrix::FemCantilever
        });

    println!(
        "platform sweep for {} ({})",
        matrix.spec().name,
        matrix.spec().notes
    );
    let csr = CsrMatrix::from_coo(&matrix.generate(Scale::Small));
    println!(
        "synthetic instance: {} x {}, {} nonzeros\n",
        csr.nrows(),
        csr.ncols(),
        csr.nnz()
    );

    for platform in PlatformId::all() {
        println!("== {} ==", platform.name());
        for rung in spmv_bench_ladder(platform) {
            let result = spmv_bench::experiments::run_rung(platform, matrix, &csr, &rung);
            println!(
                "  {:<28} {:>6.2} Gflop/s   {:>6.2} GB/s   {}",
                result.rung,
                result.gflops,
                result.consumed_gbs,
                if result.bandwidth_bound {
                    "memory-bound"
                } else {
                    "compute-bound"
                }
            );
        }
        println!();
    }
}

/// Thin wrapper so the example reads naturally.
fn spmv_bench_ladder(platform: PlatformId) -> Vec<spmv_bench::experiments::Rung> {
    spmv_bench::experiments::ladder_for(platform)
}
