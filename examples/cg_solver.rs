//! Conjugate-gradient solver built on the tuned SpMV — the kind of iterative solver
//! (PETSc/Trilinos style) whose inner loop the paper's kernel dominates.
//!
//! Solves `A x = b` for a symmetric positive-definite FEM-style matrix using the
//! fully tuned, thread-parallel SpMV, and reports convergence and throughput.
//!
//! Run with:
//! ```text
//! cargo run --release --example cg_solver
//! ```

use spmv_multicore::prelude::*;
use spmv_multicore::spmv_core::dense::{axpy, dot, norm2};
use std::time::Instant;

/// Build a symmetric positive-definite matrix: Aᵀ·A of a FEM-style matrix plus a
/// diagonal shift (guaranteed SPD, keeps the FEM sparsity character).
fn spd_matrix() -> CsrMatrix {
    let coo = SuiteMatrix::FemShip.generate(Scale::Tiny);
    let a = CsrMatrix::from_coo(&coo);
    // Form B = A + Aᵀ + shift·I, which is symmetric and diagonally dominated.
    let at = a.transpose();
    let mut sym = CooMatrix::new(a.nrows(), a.ncols());
    for (r, c, v) in a.iter() {
        sym.push(r, c, v);
    }
    for (r, c, v) in at.iter() {
        sym.push(r, c, v);
    }
    let shift = 4.0 * (1.0 + a.nnz() as f64 / a.nrows() as f64);
    for i in 0..a.nrows() {
        sym.push(i, i, shift);
    }
    CsrMatrix::from_coo(&sym)
}

fn main() {
    let a = spd_matrix();
    let n = a.nrows();
    println!("CG on a {}x{} SPD system with {} nonzeros", n, n, a.nnz());

    let threads = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(1);
    let tuned = ParallelTuned::new(&a, threads, &TuningConfig::full());

    // Right-hand side chosen so the exact solution is all-ones.
    let ones = vec![1.0; n];
    let b = a.spmv_alloc(&ones);

    // Standard conjugate gradient.
    let mut x = vec![0.0; n];
    let mut r = b.clone();
    let mut p = r.clone();
    let mut rs_old = dot(&r, &r);
    let b_norm = norm2(&b).max(1e-30);

    let max_iters = 500;
    let tol = 1e-10;
    let start = Instant::now();
    let mut spmv_calls = 0usize;
    let mut converged_at = None;
    for iter in 0..max_iters {
        let mut ap = vec![0.0; n];
        tuned.spmv_scoped(&p, &mut ap);
        spmv_calls += 1;
        let alpha = rs_old / dot(&p, &ap).max(1e-300);
        axpy(alpha, &p, &mut x);
        axpy(-alpha, &ap, &mut r);
        let rs_new = dot(&r, &r);
        if rs_new.sqrt() / b_norm < tol {
            converged_at = Some(iter + 1);
            break;
        }
        let beta = rs_new / rs_old;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        rs_old = rs_new;
    }
    let elapsed = start.elapsed().as_secs_f64();

    match converged_at {
        Some(iters) => println!("converged in {iters} iterations"),
        None => println!("did not converge within {max_iters} iterations"),
    }
    let err = x.iter().map(|v| (v - 1.0).abs()).fold(0.0f64, f64::max);
    println!("max |x_i - 1| = {err:.2e}");
    println!(
        "{} SpMV calls in {:.3} s  ({:.2} Gflop/s of SpMV work, {} threads)",
        spmv_calls,
        elapsed,
        (2 * a.nnz() * spmv_calls) as f64 / elapsed / 1e9,
        threads
    );
    assert!(err < 1e-6, "CG failed to recover the expected solution");
}
