//! Offline stand-in for the `rand` crate.
//!
//! Implements the exact API subset this workspace uses — `rngs::StdRng`,
//! [`SeedableRng::seed_from_u64`], [`Rng::random_range`] over integer and float
//! ranges, and [`Rng::random_bool`] — on top of SplitMix64. Deterministic by
//! construction: the same seed always yields the same stream, which is all the
//! matrix generators and tests require.

use std::ops::{Range, RangeInclusive};

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The sampling surface used by this workspace.
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Sample uniformly from `range` (half-open or inclusive; integer or float).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self.next_u64())
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        u64_to_unit_f64(self.next_u64()) < p
    }

    /// A uniformly distributed value of `T` (only `f64` in `[0,1)` is supported).
    fn random<T: Standard>(&mut self) -> T {
        T::from_bits(self.next_u64())
    }
}

/// Types samplable by [`Rng::random`].
pub trait Standard {
    /// Map 64 uniform bits to a value.
    fn from_bits(bits: u64) -> Self;
}

impl Standard for f64 {
    fn from_bits(bits: u64) -> f64 {
        u64_to_unit_f64(bits)
    }
}

impl Standard for bool {
    fn from_bits(bits: u64) -> bool {
        bits & 1 == 1
    }
}

fn u64_to_unit_f64(bits: u64) -> f64 {
    // 53 uniform mantissa bits -> [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can be sampled uniformly with one 64-bit draw.
pub trait SampleRange<T> {
    /// Sample a value of `T` from this range using the uniform `bits`.
    fn sample(self, bits: u64) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, bits: u64) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                self.start + ((bits as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, bits: u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u128 + 1;
                lo + ((bits as u128 % span) as $t)
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

macro_rules! impl_signed_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, bits: u64) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (bits as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_signed_range!(i64 => u64, i32 => u32, isize => usize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, bits: u64) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + u64_to_unit_f64(bits) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample(self, bits: u64) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (u64_to_unit_f64(bits) as f32) * (self.end - self.start)
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// SplitMix64 — a tiny, fast, well-scrambled 64-bit generator.
    ///
    /// Not the ChaCha-based generator of the real crate, but API-compatible for
    /// the subset this workspace uses, and deterministic per seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Pre-mix so that small consecutive seeds yield unrelated streams.
            let mut rng = StdRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            };
            let _ = rng.next_u64();
            rng
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: usize = rng.random_range(3..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.random_range(-2.5..4.0);
            assert!((-2.5..4.0).contains(&f));
            let i: i64 = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn bool_probability_roughly_respected() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.random_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn unit_f64_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
