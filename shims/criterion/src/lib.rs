//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Provides the API subset the workspace benches use: [`Criterion`],
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`Throughput`], [`BenchmarkId`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Each benchmark is run for a
//! warm-up period and then sampled; the median time per iteration and derived
//! element throughput are printed to stdout in a stable, grep-friendly format:
//!
//! ```text
//! bench <group>/<id>  median <ns> ns/iter  mean <ns> ns/iter  thrpt <Melem/s>
//! ```

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration (nonzeros, for SpMV).
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier, rendered as its display form.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier from a function name and a parameter.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything convertible into a benchmark identifier string.
pub trait IntoBenchmarkId {
    /// The rendered identifier.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Bencher<'_> {
    /// Time `routine`, first warming up, then collecting `sample_size` samples of
    /// an adaptively chosen iteration batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up while estimating the per-iteration cost.
        let warm_start = Instant::now();
        let mut iters_done: u64 = 0;
        while warm_start.elapsed() < self.warm_up || iters_done == 0 {
            black_box(routine());
            iters_done += 1;
        }
        let per_iter = warm_start.elapsed().div_f64(iters_done as f64);

        // Pick a batch size so that all samples fit the measurement window.
        let per_sample = self.measurement.div_f64(self.sample_size.max(1) as f64);
        let batch = (per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 20) as u32;

        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(t0.elapsed() / batch);
        }
    }
}

/// A named group of benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the throughput annotation used to derive rates from times.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_id();
        let mut samples = Vec::with_capacity(self.criterion.sample_size);
        let mut bencher = Bencher {
            samples: &mut samples,
            sample_size: self.criterion.sample_size,
            warm_up: self.criterion.warm_up_time,
            measurement: self.criterion.measurement_time,
        };
        f(&mut bencher);
        report(&self.name, &id, &samples, self.throughput);
        self
    }

    /// Run one benchmark that closes over an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id.into_id(), |b| f(b, input))
    }

    /// Finish the group (formatting separator only).
    pub fn finish(&mut self) {
        println!();
    }
}

fn report(group: &str, id: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("bench {group}/{id}  (no samples)");
        return;
    }
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    let thrpt = match throughput {
        Some(Throughput::Elements(n)) if median.as_nanos() > 0 => {
            let rate = n as f64 / median.as_secs_f64() / 1e6;
            format!("  thrpt {rate:.1} Melem/s")
        }
        Some(Throughput::Bytes(n)) if median.as_nanos() > 0 => {
            let rate = n as f64 / median.as_secs_f64() / 1e9;
            format!("  thrpt {rate:.2} GB/s")
        }
        _ => String::new(),
    };
    println!(
        "bench {group}/{id}  median {} ns/iter  mean {} ns/iter{thrpt}",
        median.as_nanos(),
        mean.as_nanos()
    );
}

/// The benchmark harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(1000),
        }
    }
}

impl Criterion {
    /// Number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Target measurement window per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up window per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("").bench_function(id, f);
        self
    }
}

/// Declare a benchmark group: `criterion_group!{name = n; config = c; targets = f1, f2}`
/// or the positional `criterion_group!(name, f1, f2)` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declare the benchmark binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
    }

    #[test]
    fn bench_function_collects_samples() {
        let mut c = quick();
        let mut group = c.benchmark_group("shim-test");
        group.throughput(Throughput::Elements(100));
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.finish();
    }

    #[test]
    fn bench_with_input_passes_value() {
        let mut c = quick();
        let data = vec![1.0f64; 64];
        c.benchmark_group("shim-test").bench_with_input(
            BenchmarkId::from_parameter("sum"),
            &data,
            |b, d| b.iter(|| d.iter().sum::<f64>()),
        );
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 3).into_id(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").into_id(), "p");
    }
}
