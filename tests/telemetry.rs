//! Engine-wide telemetry suite: the observability layer end to end.
//!
//! 1. **Engine profile** — profiled epochs land in `EngineProfile`: epoch
//!    counts by command, per-worker kernel/barrier time, the epoch-latency
//!    histogram, and the imbalance ratios next to `EngineFootprint`.
//! 2. **Zero-perturbation toggle** — profiling on vs. off is bit-identical
//!    (the 2% throughput bound is `bench_check`'s job; bit-identity is
//!    checkable everywhere).
//! 3. **Registry scrape** — `MatrixRegistry::metrics()` exports every layer:
//!    engine epochs, tune-cache hits/misses, batch occupancy, solver
//!    iterations, fleet footprint — after driving each layer once.
//! 4. **Fleet aggregation** — `fleet_resident_bytes` is the sum of the served
//!    engines' footprints and tracks removal.
//! 5. **Trace ring** — bounded, lossy-by-overwrite, and ordered; the global
//!    ring stays disabled without `SPMV_TRACE`.

use spmv_multicore::prelude::*;
use spmv_multicore::spmv_obs::trace::TraceRing;
use spmv_multicore::spmv_obs::TraceKind;
use spmv_testutil::{assert_bit_identical, random_csr, random_symmetric_csr, test_x};

/// An SPD shift of a symmetric matrix (A + (1 + max row sum) I) so CG inside
/// `SolverSession` is well-posed.
fn spd_csr(n: usize, lower_nnz: usize, seed: u64) -> CsrMatrix {
    let sym = random_symmetric_csr(n, lower_nnz, seed);
    let mut coo = CooMatrix::new(n, n);
    let mut row_sums = vec![0.0f64; n];
    for (row, col, v) in sym.iter() {
        coo.push(row, col, v);
        row_sums[row] += v.abs();
    }
    let max_row_sum = row_sums.iter().fold(0.0f64, |a, &b| a.max(b));
    for d in 0..n {
        coo.push(d, d, 1.0 + max_row_sum);
    }
    CsrMatrix::from_coo(&coo)
}

#[test]
fn engine_profile_accounts_for_every_epoch() {
    let csr = random_csr(96, 96, 900, 11);
    let plan = TunePlan::new(&csr, 2, &TuningConfig::full());
    let mut engine = SpmvEngine::from_plan(&csr, &plan).expect("fresh plan matches");
    engine.set_profiling(true);

    let x = test_x(csr.ncols());
    let mut y = vec![0.0; csr.nrows()];
    for _ in 0..5 {
        engine.spmv(&x, &mut y);
    }
    let xs = spmv_testutil::xblock(csr.ncols(), 3);
    let mut ys = MultiVec::zeros(csr.nrows(), 3);
    engine.spmm(&xs, &mut ys);

    let profile = engine.profile();
    assert_eq!(profile.spmv_epochs, 5);
    assert_eq!(profile.spmm_epochs, 1);
    assert_eq!(profile.epochs, 6);
    assert_eq!(profile.workers.len(), 2, "one slot per worker");
    assert!(
        profile.kernel_ns() > 0,
        "profiled epochs must record worker kernel time"
    );
    assert_eq!(
        profile.epoch_ns.count, 6,
        "every epoch lands in the latency histogram"
    );
    assert!(profile.epoch_ns.p99() >= profile.epoch_ns.p50());

    // The imbalance ratios sit next to the structural footprint: both
    // describe how evenly the partitioner split the matrix.
    let footprint = engine.footprint();
    let total_nnz: usize = profile.workers.iter().map(|w| w.nnz).sum();
    assert_eq!(total_nnz, csr.nnz(), "worker nnz shares cover the matrix");
    assert!(profile.time_imbalance() >= 1.0);
    assert!(profile.nnz_imbalance() >= 1.0);
    assert!(footprint.total_bytes > 0);
}

#[test]
fn profiling_toggle_never_perturbs_results() {
    let csr = random_csr(80, 80, 700, 23);
    let plan = TunePlan::new(&csr, 2, &TuningConfig::full());
    let mut engine = SpmvEngine::from_plan(&csr, &plan).expect("fresh plan matches");
    let x = test_x(csr.ncols());

    let mut y_on = vec![0.0; csr.nrows()];
    let mut y_off = vec![0.0; csr.nrows()];
    engine.set_profiling(true);
    engine.spmv(&x, &mut y_on);
    let profiled_epochs = engine.profile().epochs;
    engine.set_profiling(false);
    engine.spmv(&x, &mut y_off);

    assert_bit_identical(&y_on, &y_off, "profiling on vs off");
    assert_eq!(
        engine.profile().epochs,
        profiled_epochs,
        "disabled profiling must stop accumulating epochs"
    );
}

#[test]
fn registry_scrape_covers_every_layer() {
    let dir = std::env::temp_dir().join(format!("spmv_telemetry_{}", std::process::id()));
    let cache = std::sync::Arc::new(TuneCache::open(&dir).expect("open tune cache"));
    let registry = MatrixRegistry::new(2, TuningConfig::full()).with_cache(cache.clone());

    let csr = spd_csr(64, 320, 7);
    let served = registry.insert("scrape", &csr).expect("insert");
    let x = test_x(csr.ncols());
    for _ in 0..3 {
        served.spmv_now(&x).expect("spmv_now");
    }

    // One manual batch round: occupancy and queue-wait come from the shared
    // per-matrix stats, so the scrape sees them without holding the batcher.
    let batcher = Batcher::manual(served.clone(), BatchPolicy::default());
    let tickets: Vec<_> = (0..4)
        .map(|_| batcher.submit(x.clone()).expect("submit"))
        .collect();
    while batcher.run_once() > 0 {}
    for t in tickets {
        t.wait().expect("batched result");
    }

    // One solver session, a few iterations.
    let b = vec![1.0; csr.nrows()];
    let mut session = registry.solver_session("scrape", &b).expect("session");
    session.iterate(6).expect("cg steps");
    assert_eq!(served.solver_sessions(), 1);
    assert!(served.solver_iterations() >= 6);
    assert!(
        !session.residual_checkpoints().is_empty(),
        "iterating must record residual-curve checkpoints"
    );

    // A second registry over the same cache directory: the re-insert is a hit.
    let registry2 = MatrixRegistry::new(2, TuningConfig::full()).with_cache(cache.clone());
    registry2
        .insert("scrape-rehit", &csr)
        .expect("cached insert");
    assert!(cache.hit_count() >= 1, "warm re-insert must hit the cache");

    let text = registry.metrics();
    for family in [
        "spmv_engine_epochs_total",
        "spmv_engine_kernel_ns_total",
        "spmv_engine_time_imbalance",
        "spmv_serve_requests_total",
        "spmv_serve_batch_occupancy_count",
        "spmv_solver_iterations_total",
        "spmv_tune_cache_hits_total",
        "spmv_tune_cache_misses_total",
        "spmv_fleet_resident_bytes",
    ] {
        assert!(
            text.contains(family),
            "metrics export must carry {family}; got:\n{text}"
        );
    }
    assert!(
        text.contains("matrix=\"scrape\""),
        "per-matrix series must be labeled"
    );

    drop(registry);
    drop(registry2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fleet_footprint_is_the_sum_of_served_engines() {
    let registry = MatrixRegistry::new(2, TuningConfig::full());
    let a = registry
        .insert("a", &random_csr(64, 64, 600, 3))
        .expect("insert a");
    let b = registry
        .insert("b", &random_csr(96, 96, 1100, 5))
        .expect("insert b");

    let expected = a.footprint().total_bytes + b.footprint().total_bytes;
    assert_eq!(registry.fleet_resident_bytes(), expected);

    registry.remove("a").expect("remove a");
    assert_eq!(registry.fleet_resident_bytes(), b.footprint().total_bytes);
}

#[test]
fn trace_ring_is_bounded_and_ordered() {
    let ring = TraceRing::with_capacity(16);
    for i in 0..40u64 {
        ring.push(TraceKind::EngineEpoch, i, i * 2);
    }
    assert_eq!(ring.pushed(), 40);
    let events = ring.snapshot();
    assert!(events.len() <= 16, "ring must stay bounded");
    assert!(!events.is_empty());
    let firsts: Vec<u64> = events.iter().map(|e| e.a).collect();
    let mut sorted = firsts.clone();
    sorted.sort_unstable();
    assert_eq!(firsts, sorted, "snapshot preserves push order");
    assert_eq!(
        events.last().expect("non-empty").a,
        39,
        "the newest event survives overwrite"
    );
    assert_eq!(events[0].kind.name(), "engine.epoch");
}

#[test]
fn global_trace_respects_the_env_gate() {
    // The harness never sets SPMV_TRACE for this test binary run... unless CI
    // does (the trace-enabled leg), so assert consistency rather than a fixed
    // state: disabled -> push is a no-op; enabled -> push lands.
    let before = spmv_multicore::spmv_obs::trace::pushed();
    spmv_multicore::spmv_obs::trace::trace(TraceKind::EngineSwap, 1, 2);
    let after = spmv_multicore::spmv_obs::trace::pushed();
    if spmv_multicore::spmv_obs::trace::enabled() {
        assert_eq!(after, before + 1, "enabled ring must record the event");
    } else {
        assert_eq!(after, before, "disabled ring must stay empty");
        assert!(spmv_multicore::spmv_obs::trace::snapshot().is_empty());
    }
}
