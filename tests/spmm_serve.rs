//! Cross-layer SpMM and serve-layer tests: the batched path must be
//! **bit-identical** to `k` independent tuned SpMV calls at every layer —
//! raw kernels across index widths and register-block shapes, the prepared
//! pipeline, and the parallel engine at degenerate thread counts — and the
//! batcher must actually coalesce concurrent requests into one SpMM batch.

use spmv_core::formats::{BcsrMatrix, CsrMatrix};
use spmv_core::kernels::multivec::{spmm_bcsr, spmm_csr};
use spmv_core::kernels::{blocked::spmv_bcsr, single_loop::spmv_single_loop};
use spmv_core::multivec::MultiVec;
use spmv_core::tuning::plan::TunePlan;
use spmv_core::tuning::prepared::PreparedMatrix;
use spmv_core::tuning::TuningConfig;
use spmv_core::{MatrixShape, SpMv};
use spmv_parallel::SpmvEngine;
use spmv_serve::{BatchPolicy, Batcher, MatrixRegistry};
use spmv_testutil::{empty_row_csr, random_csr, xblock};
use std::sync::Arc;
use std::time::Duration;

/// Raw CSR kernels: spmm(k) ≡ k × single-loop SpMV, at u16/u32/usize widths,
/// on rectangular and empty-row matrices.
#[test]
fn csr_spmm_bit_identity_across_index_widths() {
    for (name, csr) in [
        ("rectangular", random_csr(73, 121, 900, 1)),
        ("tall", random_csr(150, 40, 700, 2)),
        ("empty-rows", empty_row_csr(64, 48)),
    ] {
        let (nrows, ncols) = (csr.nrows(), csr.ncols());
        let csr16: CsrMatrix<u16> = csr.reindex().unwrap();
        let csrus: CsrMatrix<usize> = csr.reindex().unwrap();
        for k in [1, 2, 4, 8, 3] {
            let x = xblock(ncols, k);
            let mut y32 = MultiVec::zeros(nrows, k);
            let mut y16 = MultiVec::zeros(nrows, k);
            let mut yus = MultiVec::zeros(nrows, k);
            spmm_csr(&csr, x.data(), ncols, &mut y32.view_mut());
            spmm_csr(&csr16, x.data(), ncols, &mut y16.view_mut());
            spmm_csr(&csrus, x.data(), ncols, &mut yus.view_mut());
            for j in 0..k {
                let mut expected = vec![0.0; nrows];
                spmv_single_loop(&csr, x.col(j), &mut expected);
                assert_eq!(y32.col(j), &expected[..], "{name} u32 k={k} col {j}");
                assert_eq!(y16.col(j), &expected[..], "{name} u16 k={k} col {j}");
                assert_eq!(yus.col(j), &expected[..], "{name} usize k={k} col {j}");
            }
        }
    }
}

/// Raw BCSR microkernels: spmm(k) ≡ k × SpMV for every block shape ≤ 4×4 at
/// every index width.
#[test]
fn bcsr_spmm_bit_identity_across_shapes_and_widths() {
    let csr = random_csr(55, 49, 650, 3);
    for r in 1..=4usize {
        for c in 1..=4usize {
            let b16 = BcsrMatrix::<u16>::from_csr(&csr, r, c).unwrap();
            let b32 = BcsrMatrix::<u32>::from_csr(&csr, r, c).unwrap();
            let bus = BcsrMatrix::<usize>::from_csr(&csr, r, c).unwrap();
            for k in [1, 2, 4, 8] {
                let x = xblock(49, k);
                let mut y16 = MultiVec::zeros(55, k);
                let mut y32 = MultiVec::zeros(55, k);
                let mut yus = MultiVec::zeros(55, k);
                spmm_bcsr(&b16, x.data(), 49, &mut y16.view_mut());
                spmm_bcsr(&b32, x.data(), 49, &mut y32.view_mut());
                spmm_bcsr(&bus, x.data(), 49, &mut yus.view_mut());
                for j in 0..k {
                    let mut expected = vec![0.0; 55];
                    spmv_bcsr(&b16, x.col(j), &mut expected);
                    assert_eq!(y16.col(j), &expected[..], "{r}x{c} u16 k={k} col {j}");
                    assert_eq!(y32.col(j), &expected[..], "{r}x{c} u32 k={k} col {j}");
                    assert_eq!(yus.col(j), &expected[..], "{r}x{c} usize k={k} col {j}");
                }
            }
        }
    }
}

/// The full tuned stack: engine spmm(k) at thread counts {1, 2, nrows+3} is
/// bit-identical to k independent tuned SpMV calls of the same plan, including
/// empty-row and rectangular matrices.
#[test]
fn tuned_engine_spmm_bit_identity_across_thread_counts() {
    for (name, csr) in [
        ("random", random_csr(97, 83, 1400, 4)),
        ("rectangular", random_csr(41, 160, 900, 5)),
        ("empty-rows", empty_row_csr(72, 64)),
    ] {
        let nrows = csr.nrows();
        for threads in [1, 2, nrows + 3] {
            let plan = TunePlan::new(&csr, threads, &TuningConfig::full());
            let serial = PreparedMatrix::materialize(&csr, &plan).unwrap();
            let mut engine = SpmvEngine::from_plan(&csr, &plan).unwrap();
            for k in [1, 4, 8] {
                let x = xblock(csr.ncols(), k);
                let mut y = MultiVec::zeros(nrows, k);
                engine.spmm(&x, &mut y);
                for j in 0..k {
                    let mut expected = vec![0.0; nrows];
                    serial.spmv(x.col(j), &mut expected);
                    assert_eq!(
                        y.col(j),
                        &expected[..],
                        "{name} threads={threads} k={k} col {j}"
                    );
                }
            }
        }
    }
}

/// A symmetric matrix registered with the default (full) config must be served
/// from symmetric storage automatically, and the batched SpMM answers must be
/// exactly what the direct symmetric SpMV gives.
#[test]
fn registry_serves_symmetric_matrices_from_halved_storage() {
    let csr = spmv_testutil::random_symmetric_csr(52, 400, 40);
    let registry = MatrixRegistry::new(3, TuningConfig::full());
    let served = registry.insert("sym", &csr).unwrap();
    assert!(served.is_symmetric(), "symmetry must be detected at insert");

    // Halved storage shows up in the engine's footprint report.
    let general = MatrixRegistry::new(
        3,
        TuningConfig {
            exploit_symmetry: false,
            ..TuningConfig::full()
        },
    );
    let served_general = general.insert("gen", &csr).unwrap();
    assert!(!served_general.is_symmetric());
    assert!(
        served.footprint().total_bytes < served_general.footprint().total_bytes * 3 / 4,
        "symmetric serving must stream fewer bytes ({} vs {})",
        served.footprint().total_bytes,
        served_general.footprint().total_bytes
    );

    // Batched symmetric SpMM ≡ per-column symmetric SpMV, exactly.
    let x = xblock(52, 4);
    let y = served.spmm_now(&x).unwrap();
    for j in 0..4 {
        assert_eq!(y.col(j), &served.spmv_now(x.col(j)).unwrap()[..]);
    }

    // And the batcher coalesces symmetric requests like any other.
    let batcher = Batcher::manual(
        served,
        BatchPolicy {
            max_batch: 4,
            max_wait: Duration::from_secs(60),
        },
    );
    let batcher = Arc::new(batcher);
    let clients: Vec<_> = (0..4)
        .map(|j| {
            let batcher = Arc::clone(&batcher);
            std::thread::spawn(move || {
                let x: Vec<f64> = (0..52).map(|i| ((i * 5 + j) % 11) as f64 * 0.25).collect();
                let y = batcher.apply(x.clone()).unwrap();
                (x, y)
            })
        })
        .collect();
    while batcher.pending() < 4 {
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(batcher.run_once(), 4);
    for client in clients {
        let (x, y) = client.join().unwrap();
        assert_eq!(y, batcher.matrix().spmv_now(&x).unwrap());
    }
}

/// A burst of 8 concurrent requests must be served as ONE SpMM batch, and every
/// client must get exactly the answer a direct tuned SpMV would have given.
#[test]
fn batcher_serves_concurrent_burst_as_one_batch() {
    let csr = random_csr(60, 44, 700, 6);
    let registry = MatrixRegistry::new(2, TuningConfig::full());
    let served = registry.insert("burst", &csr).unwrap();
    let batcher = Arc::new(Batcher::manual(
        served,
        BatchPolicy {
            max_batch: 8,
            max_wait: Duration::from_secs(60),
        },
    ));

    let clients: Vec<_> = (0..8)
        .map(|j| {
            let batcher = Arc::clone(&batcher);
            std::thread::spawn(move || {
                let x: Vec<f64> = (0..44).map(|i| ((i * 7 + j) % 13) as f64 * 0.5).collect();
                let y = batcher.apply(x.clone()).unwrap();
                (x, y)
            })
        })
        .collect();

    // Wait until all 8 concurrent requests are queued, then serve once.
    while batcher.pending() < 8 {
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(batcher.run_once(), 8, "the burst must form one batch");

    for client in clients {
        let (x, y) = client.join().unwrap();
        assert_eq!(y, batcher.matrix().spmv_now(&x).unwrap());
    }
    let report = batcher.stats().snapshot();
    assert_eq!(report.requests, 8);
    assert_eq!(report.batches, 1, "8 concurrent requests, one SpMM batch");
    assert_eq!(report.batch_k_histogram, vec![(8, 1)]);
    assert!(report.busy_gflops > 0.0);
}
