//! The symmetric-subsystem property/fuzz suite.
//!
//! Four pillars, per the symmetric-pipeline acceptance bar:
//!
//! 1. **Agreement** — symmetric storage (`SymCsr`/`SymBcsr`) must match the
//!    eagerly-expanded general CSR within tight tolerance, across index widths
//!    {u16, u32, usize}, every register block shape ≤ 4×4, and fuzzed matrices
//!    (random symmetric, banded, diagonal-heavy, empty).
//! 2. **Bit-identity** — serial symmetric (`PreparedMatrix`) vs parallel
//!    symmetric (`SpmvEngine`) must be *bit-identical* at thread counts
//!    {1, 2, nrows+3}, for SpMV and SpMM alike, because both run the same
//!    kernels and the same deterministic tree reduction.
//! 3. **Plan round-trip** — a `Symmetric` decision survives the plain-text
//!    profile save/load and drives identical materialization.
//! 4. **MatrixMarket regression** — symmetric `.mtx` files read via `mmio`
//!    produce a `SymCsr` whose SpMV matches the expanded general CSR on every
//!    symmetric Table-3 suite matrix.

use spmv_multicore::prelude::*;
use spmv_multicore::spmv_core::formats::bcsr::ALLOWED_BLOCK_DIMS;
use spmv_multicore::spmv_core::formats::{is_symmetric, SymBcsr, SymCsr};
use spmv_multicore::spmv_core::tuning::FormatKind;
use spmv_multicore::spmv_matrices::mmio::{
    read_matrix_market_ex, write_matrix_market_ex, Symmetry, ValueField,
};
use spmv_multicore::spmv_parallel::SpmvEngine;
use spmv_testutil::{
    assert_bit_identical, assert_ulps_within, banded_csr, max_abs_diff, random_symmetric_csr,
    test_x, xblock,
};

/// The fuzz corpus: seeded symmetric matrices of varied shape and density.
fn symmetric_corpus() -> Vec<(String, CsrMatrix)> {
    let mut corpus: Vec<(String, CsrMatrix)> = Vec::new();
    for (n, lower_nnz, seed) in [(1usize, 1usize, 1u64), (7, 5, 2), (33, 90, 3), (64, 700, 4)] {
        corpus.push((
            format!("random-{n}x{n}-seed{seed}"),
            random_symmetric_csr(n, lower_nnz, seed),
        ));
    }
    for (n, bw, seed) in [(24usize, 2usize, 5u64), (50, 7, 6)] {
        corpus.push((format!("banded-{n}-bw{bw}"), banded_csr(n, bw, true, seed)));
    }
    // Diagonal-only and empty matrices.
    corpus.push(("diagonal".to_string(), {
        let mut coo = CooMatrix::new(19, 19);
        for i in 0..19 {
            coo.push(i, i, i as f64 - 9.0);
        }
        CsrMatrix::from_coo(&coo)
    }));
    corpus.push((
        "empty".to_string(),
        CsrMatrix::from_coo(&CooMatrix::new(11, 11)),
    ));
    corpus
}

/// Pillar 1a: `SymCsr` at every index width agrees with the expanded general
/// form within 2 ULPs per element-pair count (the only difference is summation
/// order, so the tolerance is tight, not loose).
#[test]
fn sym_csr_agrees_with_expanded_general_across_widths() {
    for (name, csr) in symmetric_corpus() {
        assert!(is_symmetric(&csr), "{name}: corpus must be symmetric");
        let x = test_x(csr.ncols());
        let reference = csr.spmv_alloc(&x);
        let y16 = SymCsr::<u16>::from_csr(&csr).unwrap().spmv_alloc(&x);
        let y32 = SymCsr::<u32>::from_csr(&csr).unwrap().spmv_alloc(&x);
        let yus = SymCsr::<usize>::from_csr(&csr).unwrap().spmv_alloc(&x);
        // All widths run the same arithmetic: bit-identical to each other.
        assert_bit_identical(&y16, &y32, &format!("{name}: u16 vs u32"));
        assert_bit_identical(&y32, &yus, &format!("{name}: u32 vs usize"));
        // And tightly close to the general reference.
        assert!(
            max_abs_diff(&reference, &y32) < 1e-9,
            "{name}: symmetric diverged from expanded general"
        );
    }
}

/// Pillar 1b: `SymBcsr` at every block shape ≤ 4×4 and width agrees with both
/// the expanded general form and the pointwise symmetric form.
#[test]
fn sym_bcsr_agrees_across_shapes_and_widths() {
    for (name, csr) in symmetric_corpus() {
        let x = test_x(csr.ncols());
        let reference = csr.spmv_alloc(&x);
        for &r in &ALLOWED_BLOCK_DIMS {
            for &c in &ALLOWED_BLOCK_DIMS {
                let y16 = SymBcsr::<u16>::from_csr(&csr, r, c).unwrap().spmv_alloc(&x);
                let y32 = SymBcsr::<u32>::from_csr(&csr, r, c).unwrap().spmv_alloc(&x);
                let yus = SymBcsr::<usize>::from_csr(&csr, r, c)
                    .unwrap()
                    .spmv_alloc(&x);
                assert_bit_identical(&y16, &y32, &format!("{name} {r}x{c}: u16 vs u32"));
                assert_bit_identical(&y32, &yus, &format!("{name} {r}x{c}: u32 vs usize"));
                assert!(
                    max_abs_diff(&reference, &y32) < 1e-9,
                    "{name} {r}x{c}: symmetric blocked diverged"
                );
            }
        }
    }
}

/// Pillar 2: serial symmetric vs parallel symmetric **bit-identity** at thread
/// counts {1, 2, nrows+3}, SpMV and SpMM, with accumulation into non-zero y.
#[test]
fn serial_vs_parallel_symmetric_bit_identity() {
    for (name, csr) in symmetric_corpus() {
        if csr.nnz() == 0 {
            continue; // zero matrices plan as general (nothing to store)
        }
        let n = csr.nrows();
        let x = test_x(n);
        for threads in [1, 2, n + 3] {
            let plan = TunePlan::new(&csr, threads, &TuningConfig::full());
            assert!(plan.symmetric, "{name}: symmetry must be detected");
            let serial = PreparedMatrix::materialize(&csr, &plan).unwrap();
            assert!(serial.is_symmetric());
            let mut expected = vec![0.375; n];
            serial.spmv(&x, &mut expected);

            let mut engine = SpmvEngine::from_plan(&csr, &plan).unwrap();
            let mut y = vec![0.375; n];
            engine.spmv(&x, &mut y);
            assert_bit_identical(&expected, &y, &format!("{name} threads={threads} spmv"));

            for k in [1usize, 3, 8] {
                let xs = xblock(n, k);
                let mut ys = MultiVec::zeros(n, k);
                ys.fill(-0.5);
                engine.spmm(&xs, &mut ys);
                let mut expected_s = MultiVec::zeros(n, k);
                expected_s.fill(-0.5);
                serial.spmm(&xs, &mut expected_s);
                assert_bit_identical(
                    expected_s.data(),
                    ys.data(),
                    &format!("{name} threads={threads} spmm k={k}"),
                );
            }
        }
    }
}

/// Pillar 3: the `Symmetric` decision survives the plain-text profile
/// round-trip exactly, and a reloaded plan materializes to identical bits.
#[test]
fn symmetric_plan_save_load_round_trip() {
    let csr = random_symmetric_csr(45, 300, 77);
    for threads in [1, 3] {
        let plan = TunePlan::new(&csr, threads, &TuningConfig::full());
        assert!(plan.symmetric);
        for t in &plan.threads {
            assert_eq!(t.decisions.len(), 1);
            assert!(matches!(
                t.decisions[0].choice.kind,
                FormatKind::SymCsr | FormatKind::SymBcsr
            ));
        }
        // Text round trip is exact.
        let text = plan.to_text();
        assert!(text.contains("symmetric\n"), "flag must serialize");
        let reloaded = TunePlan::from_text(&text).unwrap();
        assert_eq!(plan, reloaded);

        // File round trip drives identical materialization.
        let path = std::env::temp_dir().join(format!("spmv_sym_plan_{threads}.profile"));
        plan.save(&path).unwrap();
        let loaded = TunePlan::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let a = PreparedMatrix::materialize(&csr, &plan).unwrap();
        let b = PreparedMatrix::materialize(&csr, &loaded).unwrap();
        let x = test_x(45);
        assert_bit_identical(
            &a.spmv_alloc(&x),
            &b.spmv_alloc(&x),
            &format!("threads={threads}: reloaded symmetric plan"),
        );
        assert_eq!(a.footprint_bytes(), b.footprint_bytes());
    }
}

/// A hand-tampered symmetric profile (mixed with a general decision) must be
/// rejected at validation rather than silently executed.
#[test]
fn tampered_symmetric_profiles_are_rejected() {
    let csr = random_symmetric_csr(20, 80, 78);
    let plan = TunePlan::new(&csr, 2, &TuningConfig::full());
    assert!(plan.symmetric);

    // Strip the symmetric flag: the sym decisions are now inconsistent.
    let text = plan.to_text().replace("symmetric\n", "");
    let stripped = TunePlan::from_text(&text).unwrap();
    assert!(stripped.validate_for(&csr).is_err());

    // Flip a decision kind to general inside a symmetric plan.
    let mut mixed = plan.clone();
    mixed.threads[0].decisions[0].choice.kind = FormatKind::Csr;
    assert!(mixed.validate_for(&csr).is_err());
}

/// Pillar 1c (threads × tolerance): the symmetric engine agrees with the
/// expanded general engine within a few ULPs of headroom per element.
#[test]
fn symmetric_engine_agrees_with_general_engine_within_ulps() {
    let csr = random_symmetric_csr(80, 900, 79);
    let x = test_x(80);
    let general_cfg = TuningConfig {
        exploit_symmetry: false,
        ..TuningConfig::full()
    };
    for threads in [1, 2, 83] {
        let mut sym_engine = SpmvEngine::tuned(&csr, threads, &TuningConfig::full()).unwrap();
        let mut gen_engine = SpmvEngine::tuned(&csr, threads, &general_cfg).unwrap();
        assert!(sym_engine.is_symmetric() && !gen_engine.is_symmetric());
        let mut ys = vec![0.0; 80];
        sym_engine.spmv(&x, &mut ys);
        let mut yg = vec![0.0; 80];
        gen_engine.spmv(&x, &mut yg);
        // Different summation orders: tight relative tolerance, expressed in
        // ULPs scaled by the row lengths involved (generous but meaningful).
        assert_ulps_within(&ys, &yg, 1 << 16, &format!("threads={threads}"));
    }
}

/// Pillar 4 (regression): every symmetric Table-3 suite matrix, symmetrized,
/// written as a symmetric MatrixMarket file, read back via `mmio`, must produce
/// a `SymCsr` whose SpMV matches the eagerly-expanded general CSR — and whose
/// footprint shows the halved index/value traffic.
#[test]
fn symmetric_matrix_market_round_trip_matches_expanded_general() {
    let symmetric_suite: Vec<SuiteMatrix> = SuiteMatrix::all()
        .into_iter()
        .filter(|m| m.is_symmetric_in_table3())
        .collect();
    assert_eq!(symmetric_suite.len(), 6, "Table 3 lists six .rsa matrices");
    for matrix in symmetric_suite {
        let sym_coo = matrix
            .generate_symmetric(Scale::Tiny)
            .expect("symmetric Table-3 matrices symmetrize");
        let mut buf = Vec::new();
        write_matrix_market_ex(&sym_coo, Symmetry::Symmetric, ValueField::Real, &mut buf)
            .expect("write symmetric mtx");

        let file = read_matrix_market_ex(&buf[..]).expect("read symmetric mtx");
        assert_eq!(file.symmetry, Symmetry::Symmetric, "{}", matrix.id());
        let sym: SymCsr<u32> = file.to_sym_csr().expect("lower triangle converts");
        let expanded = CsrMatrix::from_coo(&file.expand());

        let x = test_x(expanded.ncols());
        assert!(
            max_abs_diff(&sym.spmv_alloc(&x), &expanded.spmv_alloc(&x)) < 1e-9,
            "{}: SymCsr from mmio diverged from expanded CSR",
            matrix.id()
        );
        assert_eq!(sym.nnz(), expanded.nnz(), "{}", matrix.id());
        assert!(
            sym.footprint_bytes() < expanded.footprint_bytes() * 3 / 4,
            "{}: symmetric storage must be well below general ({} vs {} bytes)",
            matrix.id(),
            sym.footprint_bytes(),
            expanded.footprint_bytes()
        );
    }
}

/// The symmetrize → tune → serve pipeline picks the symmetric path up
/// automatically end-to-end (tune_csr and the engine alike).
#[test]
fn tuner_picks_up_symmetry_automatically_on_suite_matrices() {
    for matrix in [SuiteMatrix::FemCantilever, SuiteMatrix::FemShip] {
        let sym_coo = matrix.generate_symmetric(Scale::Tiny).unwrap();
        let csr = CsrMatrix::from_coo(&sym_coo);
        let tuned = tune_csr(&csr, &TuningConfig::full());
        assert!(tuned.is_symmetric(), "{}", matrix.id());
        assert!(tuned
            .format_histogram()
            .iter()
            .all(|(name, _)| *name == "SymCSR" || *name == "SymBCSR"));
        let general = tune_csr(
            &csr,
            &TuningConfig {
                exploit_symmetry: false,
                ..TuningConfig::full()
            },
        );
        assert!(
            tuned.footprint_bytes() < general.footprint_bytes() * 3 / 4,
            "{}: symmetric tuning must shrink the footprint ({} vs {})",
            matrix.id(),
            tuned.footprint_bytes(),
            general.footprint_bytes()
        );
        let x = test_x(csr.ncols());
        assert!(
            max_abs_diff(&tuned.spmv_alloc(&x), &general.spmv_alloc(&x)) < 1e-9,
            "{}",
            matrix.id()
        );
    }
}
