//! Serve-layer retuning suite: hot-swap correctness under fire.
//!
//! 1. **Stress** — N client threads hammer `spmv_now`/`spmm_now` while the
//!    engine hot-swaps to a new plan mid-stream: no torn reads, every result
//!    bit-identical to the serial reference of either the old or the new plan
//!    (symmetric plans at different thread counts make the two references
//!    bitwise distinct, so a torn engine cannot hide).
//! 2. **Warm cache** — a `TuneCache` hit produces a ready `ServedMatrix`
//!    without invoking the search (counter-proven), across registries.
//! 3. **Background retune** — `retune_background` runs the measured search
//!    off the serving path while requests keep flowing, then answers from the
//!    winner.

use spmv_multicore::prelude::*;
use spmv_multicore::spmv_serve::{SearchBudget, TuneCache};
use spmv_testutil::{random_csr, random_symmetric_csr, test_x, xblock};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Serial reference outputs (SpMV on `test_x`, SpMM on a 3-column block) of
/// one plan.
fn references(csr: &CsrMatrix, plan: &TunePlan) -> (Vec<f64>, Vec<f64>) {
    let prepared = PreparedMatrix::materialize(csr, plan).expect("plan matches");
    let x = test_x(csr.ncols());
    let mut y = vec![0.0; csr.nrows()];
    prepared.spmv(&x, &mut y);
    let xs = xblock(csr.ncols(), 3);
    let mut ys = MultiVec::zeros(csr.nrows(), 3);
    prepared.spmm(&xs, &mut ys);
    (y, ys.data().to_vec())
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn hammering_clients_survive_a_hot_swap_bit_identically() {
    // A symmetric matrix: its plans at different thread counts reduce their
    // scratch slabs through different trees, so the old and new references
    // are bitwise distinct and a half-swapped engine cannot masquerade as
    // either.
    let csr = random_symmetric_csr(80, 500, 21);
    let registry = MatrixRegistry::new(2, TuningConfig::full());
    let served = registry.insert("hot", &csr).unwrap();
    let old_plan = served.plan();
    assert!(old_plan.symmetric);
    let new_plan = TunePlan::new(&csr, 5, &TuningConfig::full());
    assert_ne!(old_plan, new_plan);

    let (y_old, s_old) = references(&csr, &old_plan);
    let (y_new, s_new) = references(&csr, &new_plan);
    assert_ne!(
        bits(&y_old),
        bits(&y_new),
        "different reduction trees must be observable bitwise"
    );

    let x = test_x(csr.ncols());
    let xs = xblock(csr.ncols(), 3);
    let stop = AtomicBool::new(false);
    let saw = std::sync::Mutex::new((false, false)); // (old seen, new seen)
    std::thread::scope(|scope| {
        for client in 0..4 {
            let served = Arc::clone(&served);
            let (stop, saw) = (&stop, &saw);
            let (x, xs) = (&x, &xs);
            let (y_old, y_new, s_old, s_new) = (&y_old, &y_new, &s_old, &s_new);
            scope.spawn(move || {
                let mut iter = 0usize;
                while !stop.load(Ordering::Relaxed) || iter < 10 {
                    iter += 1;
                    let y = served.spmv_now(x).expect("spmv_now");
                    let from_old = bits(&y) == bits(y_old);
                    let from_new = bits(&y) == bits(y_new);
                    assert!(
                        from_old || from_new,
                        "client {client} iter {iter}: spmv result matches neither plan's \
                         serial reference — torn read"
                    );
                    let ys = served.spmm_now(xs).expect("spmm_now");
                    let sm_old = bits(ys.data()) == bits(s_old);
                    let sm_new = bits(ys.data()) == bits(s_new);
                    assert!(
                        sm_old || sm_new,
                        "client {client} iter {iter}: spmm result matches neither reference"
                    );
                    let mut seen = saw.lock().unwrap();
                    seen.0 |= from_old;
                    seen.1 |= from_new;
                }
            });
        }
        // Let the clients pile on, then hot-swap mid-stream.
        std::thread::sleep(std::time::Duration::from_millis(30));
        served.swap_plan(new_plan.clone()).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(30));
        stop.store(true, Ordering::Relaxed);
    });

    assert_eq!(served.retune_count(), 1);
    assert_eq!(served.plan(), new_plan);
    let seen = saw.lock().unwrap();
    assert!(seen.1, "post-swap results must come from the new plan");
    // Post-swap steady state answers from the new plan only.
    assert_eq!(bits(&served.spmv_now(&x).unwrap()), bits(&y_new));
}

#[test]
fn general_matrix_stress_with_repeated_swaps() {
    // The general pipeline under repeated back-and-forth swaps: every answer
    // must match one of the two serial references exactly.
    let csr = random_csr(150, 120, 2000, 22);
    let registry = MatrixRegistry::new(3, TuningConfig::full());
    let served = registry.insert("gen", &csr).unwrap();
    let plan_a = served.plan();
    let plan_b = TunePlan::new(&csr, 2, &TuningConfig::naive());
    let (y_a, _) = references(&csr, &plan_a);
    let (y_b, _) = references(&csr, &plan_b);

    let x = test_x(csr.ncols());
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for _ in 0..3 {
            let served = Arc::clone(&served);
            let (stop, x, y_a, y_b) = (&stop, &x, &y_a, &y_b);
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let y = served.spmv_now(x).expect("spmv_now");
                    assert!(
                        bits(&y) == bits(y_a) || bits(&y) == bits(y_b),
                        "torn read under repeated swaps"
                    );
                }
            });
        }
        for round in 0..6 {
            let next = if round % 2 == 0 { &plan_b } else { &plan_a };
            served.swap_plan(next.clone()).unwrap();
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        stop.store(true, Ordering::Relaxed);
    });
    assert_eq!(served.retune_count(), 6);
}

#[test]
fn warm_cache_produces_a_ready_served_matrix_without_searching() {
    let dir = std::env::temp_dir().join(format!("spmv_serve_retune_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let cache = Arc::new(TuneCache::with_platform(&dir, "suite-plat").unwrap());
    let csr = random_csr(100, 90, 1100, 23);

    // Cold insert: one measured search, winner persisted.
    let cold = MatrixRegistry::new(2, TuningConfig::full())
        .with_budget(SearchBudget::Pruned)
        .with_cache(Arc::clone(&cache));
    let a = cold.insert("m", &csr).unwrap();
    assert_eq!(cache.search_count(), 1);

    // Warm insert in a fresh registry: ready ServedMatrix, zero searches.
    let warm = MatrixRegistry::new(2, TuningConfig::full())
        .with_budget(SearchBudget::Pruned)
        .with_cache(Arc::clone(&cache));
    let b = warm.insert("m", &csr).unwrap();
    assert_eq!(
        cache.search_count(),
        1,
        "the warm insert must not invoke the search"
    );
    assert!(cache.hit_count() >= 1);
    assert_eq!(a.plan(), b.plan());
    let x = test_x(csr.ncols());
    assert_eq!(
        bits(&a.spmv_now(&x).unwrap()),
        bits(&b.spmv_now(&x).unwrap())
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn background_retune_keeps_serving_and_lands_the_winner() {
    let dir = std::env::temp_dir().join(format!("spmv_serve_retune_bg_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let cache = Arc::new(TuneCache::with_platform(&dir, "suite-plat").unwrap());
    let registry = MatrixRegistry::new(2, TuningConfig::full()).with_cache(Arc::clone(&cache));
    let csr = random_csr(120, 100, 1500, 24);
    let served = registry.insert("m", &csr).unwrap();
    let x = test_x(csr.ncols());
    let before = served.spmv_now(&x).unwrap();

    let handle = registry
        .retune_background("m", SearchBudget::Exhaustive)
        .unwrap();
    // Requests keep being answered while the search runs in the background.
    for _ in 0..20 {
        let y = served.spmv_now(&x).unwrap();
        assert_eq!(y.len(), csr.nrows());
    }
    handle.join().expect("retune thread").unwrap();

    // The served plan is the search's conclusion and the cache holds it; the
    // answer still matches the serial reference of the served plan exactly.
    let plan = served.plan();
    let (reference, _) = references(&csr, &plan);
    assert_eq!(bits(&served.spmv_now(&x).unwrap()), bits(&reference));
    let fp = spmv_multicore::spmv_serve::MatrixFingerprint::compute(&csr);
    assert_eq!(
        cache.lookup(&fp, 2, &TuningConfig::full(), &csr),
        Some(plan)
    );
    drop(before);
    std::fs::remove_dir_all(&dir).ok();
}
