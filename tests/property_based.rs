//! Property-based tests over the core data-structure invariants, driven by the
//! shared `spmv-testutil` deterministic case generator (no external framework):
//! every storage format, every kernel variant, every index width and every
//! register block shape must compute the same product as a dense reference on
//! arbitrary matrices — including rectangular shapes, empty rows/columns,
//! single-row/single-column matrices and the fully empty matrix — and the tuner
//! must never lose nonzeros or blow up the footprint.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spmv_multicore::prelude::*;
use spmv_multicore::spmv_core::formats::bcsr::ALLOWED_BLOCK_DIMS;
use spmv_multicore::spmv_core::formats::index::IndexWidth;
use spmv_multicore::spmv_core::formats::{
    BcooMatrix, BcsrMatrix, CompressedCsr, CscMatrix, EnumDispatchCsr, GcsrMatrix,
};
use spmv_multicore::spmv_core::kernels::KernelVariant;
use spmv_multicore::spmv_core::partition::row::partition_rows_balanced;
use spmv_multicore::spmv_core::partition::segmented::{partition_nonzeros, segmented_spmv};
use spmv_multicore::spmv_parallel::SpmvEngine;
use spmv_testutil::{cases, max_abs_diff, test_x};

#[test]
fn every_format_matches_dense_reference() {
    for (i, case) in cases(48, 0xF0).iter().enumerate() {
        let (coo, csr) = (case.coo(), case.csr());
        let x = test_x(case.ncols);
        let expected = case.dense_reference(&x);

        assert!(
            max_abs_diff(&coo.spmv_alloc(&x), &expected) < 1e-9,
            "coo case {i}"
        );
        assert!(
            max_abs_diff(&csr.spmv_alloc(&x), &expected) < 1e-9,
            "csr case {i}"
        );
        assert!(
            max_abs_diff(&CscMatrix::from_coo(&coo).spmv_alloc(&x), &expected) < 1e-9,
            "csc case {i}"
        );
        for width in [IndexWidth::U16, IndexWidth::U32] {
            assert!(
                max_abs_diff(
                    &GcsrMatrix::from_csr(&csr, width).unwrap().spmv_alloc(&x),
                    &expected
                ) < 1e-9,
                "gcsr {width:?} case {i}"
            );
            assert!(
                max_abs_diff(
                    &spmv_alloc_enum(&EnumDispatchCsr::from_csr(&csr, width).unwrap(), &x),
                    &expected
                ) < 1e-9,
                "enum-dispatch {width:?} case {i}"
            );
        }
        assert!(
            max_abs_diff(&CompressedCsr::from_csr(&csr).spmv_alloc(&x), &expected) < 1e-9,
            "compressed case {i}"
        );
    }
}

/// Every register block shape of the ≤ 4×4 sweep × every index width must agree
/// with the reference, for BCSR (unrolled microkernels) and BCOO alike.
#[test]
fn every_block_shape_and_width_matches_dense_reference() {
    for (i, case) in cases(32, 0xB1).iter().enumerate() {
        let csr = case.csr();
        let x = test_x(case.ncols);
        let expected = case.dense_reference(&x);
        for &r in &ALLOWED_BLOCK_DIMS {
            for &c in &ALLOWED_BLOCK_DIMS {
                let b16 = BcsrMatrix::<u16>::from_csr(&csr, r, c).unwrap();
                assert!(
                    max_abs_diff(&b16.spmv_alloc(&x), &expected) < 1e-9,
                    "bcsr<u16> {r}x{c} case {i}"
                );
                let b32 = BcsrMatrix::<u32>::from_csr(&csr, r, c).unwrap();
                assert!(
                    max_abs_diff(&b32.spmv_alloc(&x), &expected) < 1e-9,
                    "bcsr<u32> {r}x{c} case {i}"
                );
                for width in [IndexWidth::U16, IndexWidth::U32] {
                    let bcoo = BcooMatrix::from_csr(&csr, r, c, width).unwrap();
                    assert!(
                        max_abs_diff(&bcoo.spmv_alloc(&x), &expected) < 1e-9,
                        "bcoo {r}x{c} {width:?} case {i}"
                    );
                }
            }
        }
    }
}

/// Every kernel variant (including the prepared/blocked path) × both CSR index
/// widths must agree with the reference.
#[test]
fn every_kernel_variant_matches_dense_reference() {
    for (i, case) in cases(24, 0xC2).iter().enumerate() {
        let csr = case.csr();
        let narrow: spmv_multicore::spmv_core::formats::CsrMatrix<u16> = csr.reindex().unwrap();
        let x = test_x(case.ncols);
        let expected = case.dense_reference(&x);
        for variant in KernelVariant::all() {
            let mut y = vec![0.0; case.nrows];
            variant.execute(&csr, &x, &mut y);
            assert!(
                max_abs_diff(&y, &expected) < 1e-9,
                "variant {} (u32) case {i}",
                variant.name()
            );
            let mut y16 = vec![0.0; case.nrows];
            variant.execute(&narrow, &x, &mut y16);
            assert!(
                max_abs_diff(&y16, &expected) < 1e-9,
                "variant {} (u16) case {i}",
                variant.name()
            );
        }
        for variant in KernelVariant::all_with_blocked() {
            let prepared = variant.prepare(&csr).unwrap();
            let mut y = vec![0.0; case.nrows];
            prepared.execute(&x, &mut y);
            assert!(
                max_abs_diff(&y, &expected) < 1e-9,
                "prepared variant {} case {i}",
                variant.name()
            );
        }
    }
}

#[test]
fn tuner_preserves_nonzeros_and_results() {
    for (i, case) in cases(24, 0xD3).iter().enumerate() {
        let (coo, csr) = (case.coo(), case.csr());
        let x = test_x(case.ncols);
        let expected = case.dense_reference(&x);
        for config in [
            TuningConfig::naive(),
            TuningConfig::register_only(),
            TuningConfig::full(),
        ] {
            let tuned = tune(&coo, &config);
            assert_eq!(tuned.nnz(), csr.nnz(), "case {i}");
            assert!(
                max_abs_diff(&tuned.spmv_alloc(&x), &expected) < 1e-9,
                "case {i}"
            );
            // Stored entries can only grow (zero fill), never shrink — except on
            // the symmetric pipeline, which stores the lower triangle only.
            if !tuned.is_symmetric() {
                assert!(tuned.stored_entries() >= tuned.nnz(), "case {i}");
            }
        }
    }
}

#[test]
fn partitions_cover_and_preserve_results() {
    let mut rng = StdRng::seed_from_u64(0xE4);
    for (i, case) in cases(24, 0xE5).iter().enumerate() {
        let csr = case.csr();
        let parts = rng.random_range(1..9usize);
        let x = test_x(case.ncols);
        let expected = case.dense_reference(&x);

        let rows = partition_rows_balanced(&csr, parts);
        assert!(rows.covers(case.nrows), "case {i}");
        assert_eq!(
            rows.nnz_per_part(&csr).iter().sum::<usize>(),
            csr.nnz(),
            "case {i}"
        );

        let seg = partition_nonzeros(&csr, parts);
        assert!(seg.covers(csr.nnz()), "case {i}");
        assert!(
            max_abs_diff(&segmented_spmv(&csr, &seg, &x), &expected) < 1e-9,
            "case {i}"
        );

        let parallel = ParallelCsr::new(&csr, parts);
        let mut y = vec![0.0; case.nrows];
        parallel.spmv_scoped(&x, &mut y);
        assert!(max_abs_diff(&y, &expected) < 1e-9, "case {i}");

        let mut engine = SpmvEngine::new(&csr, parts);
        let mut y_engine = vec![0.0; case.nrows];
        engine.spmv(&x, &mut y_engine);
        assert!(max_abs_diff(&y_engine, &expected) < 1e-9, "engine case {i}");
    }
}

#[test]
fn footprint_reported_matches_accounting() {
    for (i, case) in cases(24, 0xF6).iter().enumerate() {
        let (coo, csr) = (case.coo(), case.csr());
        // CSR footprint formula: nnz*(8+4) + (nrows+1)*4.
        assert_eq!(
            csr.footprint_bytes(),
            csr.nnz() * 12 + (case.nrows + 1) * 4,
            "case {i}"
        );
        // A u16 reindex saves exactly 2 bytes per stored nonzero.
        let narrow: spmv_multicore::spmv_core::formats::CsrMatrix<u16> = csr.reindex().unwrap();
        assert_eq!(
            csr.footprint_bytes() - narrow.footprint_bytes(),
            2 * csr.nnz()
        );
        // COO footprint formula: 16 bytes per stored entry.
        assert_eq!(coo.footprint_bytes(), coo.nnz() * 16, "case {i}");
        // Flop:byte of CSR never exceeds the 0.25 bound from the paper.
        assert!(csr.flop_byte_ratio() <= 0.25 + 1e-12, "case {i}");
    }
}

/// `EnumDispatchCsr` is a bench baseline without an `SpMv` impl; allocate-and-run
/// helper for the comparisons above.
fn spmv_alloc_enum(m: &EnumDispatchCsr, x: &[f64]) -> Vec<f64> {
    let mut y = vec![0.0; m.nrows()];
    m.spmv(x, &mut y);
    y
}
