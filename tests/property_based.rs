//! Property-based tests (proptest) over the core data-structure invariants:
//! every storage format and every kernel variant must compute the same product as a
//! dense reference, for arbitrary matrices, and the tuner must never lose nonzeros
//! or blow up the footprint.

use proptest::prelude::*;
use spmv_multicore::prelude::*;
use spmv_multicore::spmv_core::dense::max_abs_diff;
use spmv_multicore::spmv_core::formats::index::IndexWidth;
use spmv_multicore::spmv_core::formats::{BcooMatrix, BcsrMatrix, CscMatrix, GcsrMatrix};
use spmv_multicore::spmv_core::kernels::KernelVariant;
use spmv_multicore::spmv_core::partition::row::partition_rows_balanced;
use spmv_multicore::spmv_core::partition::segmented::{partition_nonzeros, segmented_spmv};

/// Strategy: a small random sparse matrix as (nrows, ncols, entries).
fn arb_matrix() -> impl Strategy<Value = (usize, usize, Vec<(usize, usize, f64)>)> {
    (1usize..40, 1usize..40).prop_flat_map(|(nrows, ncols)| {
        let entry = (0..nrows, 0..ncols, -10.0f64..10.0);
        proptest::collection::vec(entry, 0..200)
            .prop_map(move |entries| (nrows, ncols, entries))
    })
}

/// Dense reference product computed straight from the triplets.
fn dense_reference(
    nrows: usize,
    entries: &[(usize, usize, f64)],
    x: &[f64],
) -> Vec<f64> {
    let mut y = vec![0.0; nrows];
    for &(r, c, v) in entries {
        y[r] += v * x[c];
    }
    y
}

fn build(nrows: usize, ncols: usize, entries: &[(usize, usize, f64)]) -> (CooMatrix, CsrMatrix) {
    let coo = CooMatrix::from_triplets(nrows, ncols, entries.iter().copied()).unwrap();
    let csr = CsrMatrix::from_coo(&coo);
    (coo, csr)
}

fn test_x(ncols: usize) -> Vec<f64> {
    (0..ncols).map(|i| ((i * 7 + 3) % 11) as f64 - 5.0).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_format_matches_dense_reference((nrows, ncols, entries) in arb_matrix()) {
        let (coo, csr) = build(nrows, ncols, &entries);
        let x = test_x(ncols);
        let expected = dense_reference(nrows, &entries, &x);

        prop_assert!(max_abs_diff(&coo.spmv_alloc(&x), &expected) < 1e-9);
        prop_assert!(max_abs_diff(&csr.spmv_alloc(&x), &expected) < 1e-9);
        prop_assert!(max_abs_diff(&CscMatrix::from_coo(&coo).spmv_alloc(&x), &expected) < 1e-9);
        prop_assert!(
            max_abs_diff(&GcsrMatrix::from_csr(&csr, IndexWidth::U32).unwrap().spmv_alloc(&x), &expected) < 1e-9
        );
        for &(r, c) in &[(1usize, 2usize), (2, 2), (4, 1), (4, 4)] {
            let bcsr = BcsrMatrix::from_csr(&csr, r, c, IndexWidth::U16).unwrap();
            prop_assert!(max_abs_diff(&bcsr.spmv_alloc(&x), &expected) < 1e-9);
            let bcoo = BcooMatrix::from_csr(&csr, r, c, IndexWidth::U16).unwrap();
            prop_assert!(max_abs_diff(&bcoo.spmv_alloc(&x), &expected) < 1e-9);
        }
    }

    #[test]
    fn every_kernel_variant_matches_dense_reference((nrows, ncols, entries) in arb_matrix()) {
        let (_, csr) = build(nrows, ncols, &entries);
        let x = test_x(ncols);
        let expected = dense_reference(nrows, &entries, &x);
        for variant in KernelVariant::all() {
            let mut y = vec![0.0; nrows];
            variant.execute(&csr, &x, &mut y);
            prop_assert!(
                max_abs_diff(&y, &expected) < 1e-9,
                "variant {} diverged", variant.name()
            );
        }
    }

    #[test]
    fn tuner_preserves_nonzeros_and_results((nrows, ncols, entries) in arb_matrix()) {
        let (coo, csr) = build(nrows, ncols, &entries);
        let x = test_x(ncols);
        let expected = dense_reference(nrows, &entries, &x);
        for config in [TuningConfig::naive(), TuningConfig::register_only(), TuningConfig::full()] {
            let tuned = tune(&coo, &config);
            prop_assert_eq!(tuned.nnz(), csr.nnz());
            prop_assert!(max_abs_diff(&tuned.spmv_alloc(&x), &expected) < 1e-9);
            // Stored entries can only grow (zero fill), never shrink.
            prop_assert!(tuned.stored_entries() >= tuned.nnz());
        }
    }

    #[test]
    fn partitions_cover_and_preserve_results((nrows, ncols, entries) in arb_matrix(), parts in 1usize..9) {
        let (_, csr) = build(nrows, ncols, &entries);
        let x = test_x(ncols);
        let expected = dense_reference(nrows, &entries, &x);

        let rows = partition_rows_balanced(&csr, parts);
        prop_assert!(rows.covers(nrows));
        prop_assert_eq!(rows.nnz_per_part(&csr).iter().sum::<usize>(), csr.nnz());

        let seg = partition_nonzeros(&csr, parts);
        prop_assert!(seg.covers(csr.nnz()));
        prop_assert!(max_abs_diff(&segmented_spmv(&csr, &seg, &x), &expected) < 1e-9);

        let parallel = ParallelCsr::new(&csr, parts);
        let mut y = vec![0.0; nrows];
        parallel.spmv_rayon(&x, &mut y);
        prop_assert!(max_abs_diff(&y, &expected) < 1e-9);
    }

    #[test]
    fn footprint_reported_matches_accounting((nrows, ncols, entries) in arb_matrix()) {
        let (coo, csr) = build(nrows, ncols, &entries);
        // CSR footprint formula: nnz*(8+4) + (nrows+1)*4.
        prop_assert_eq!(
            csr.footprint_bytes(),
            csr.nnz() * 12 + (nrows + 1) * 4
        );
        // COO footprint formula: 16 bytes per stored entry.
        prop_assert_eq!(coo.footprint_bytes(), coo.nnz() * 16);
        // Flop:byte of CSR never exceeds the 0.25 bound from the paper.
        prop_assert!(csr.flop_byte_ratio() <= 0.25 + 1e-12);
    }
}
