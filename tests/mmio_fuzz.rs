//! MatrixMarket robustness suite: malformed input must fail with `Err`,
//! never panic and never blow up allocation.
//!
//! Three layers:
//!
//! 1. **Regression corpus** — every file under `tests/mmio_corpus/` is a
//!    malformed header/size-line/body case collected from fuzzing; each must
//!    return `Err` from both readers.
//! 2. **Truncation fuzz** — a valid file cut at every byte boundary must
//!    parse to a clean `Result` (an `Err` everywhere except trailing-newline
//!    trims), never panic.
//! 3. **Mutation fuzz** — seeded random byte substitutions over a valid file
//!    must never panic, whatever they parse to.

use spmv_multicore::prelude::*;
use spmv_multicore::spmv_matrices::mmio::{
    read_matrix_market, read_matrix_market_ex, write_matrix_market,
};
use spmv_testutil::random_csr;

fn corpus_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/mmio_corpus")
}

/// A small valid file the fuzz layers mangle.
fn valid_text() -> String {
    let csr = random_csr(6, 5, 18, 99);
    let mut buf = Vec::new();
    write_matrix_market(&csr.to_coo(), &mut buf).unwrap();
    String::from_utf8(buf).unwrap()
}

#[test]
fn every_corpus_file_errors_cleanly() {
    let dir = corpus_dir();
    let mut cases = 0usize;
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("corpus dir {dir:?}: {e}"))
        .map(|e| e.unwrap().path())
        .collect();
    entries.sort();
    for path in entries {
        if path.extension().and_then(|e| e.to_str()) != Some("mtx") {
            continue;
        }
        cases += 1;
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(
            read_matrix_market(text.as_bytes()).is_err(),
            "{path:?}: expanded reader must reject"
        );
        assert!(
            read_matrix_market_ex(text.as_bytes()).is_err(),
            "{path:?}: preserving reader must reject"
        );
    }
    assert!(cases >= 15, "corpus unexpectedly small ({cases} cases)");
}

#[test]
fn huge_declared_nnz_fails_without_allocating() {
    // A hostile size line claiming usize::MAX entries must cost a parse error
    // (entry-count mismatch), not an allocation abort.
    let text = format!(
        "%%MatrixMarket matrix coordinate real general\n3 3 {}\n1 1 1.0\n",
        usize::MAX
    );
    assert!(read_matrix_market(text.as_bytes()).is_err());
}

#[test]
fn truncations_never_panic() {
    let text = valid_text();
    let full = read_matrix_market(text.as_bytes()).expect("the untruncated file is valid");
    for cut in 0..text.len() {
        let prefix = &text[..cut];
        // Any truncation must yield a clean Result. A cut that only trims the
        // trailing newline may still parse; everything shorter loses at least
        // one declared entry (or the header) and must be an Err.
        if let Ok(coo) = read_matrix_market(prefix.as_bytes()) {
            assert_eq!(coo.nnz(), full.nnz(), "cut={cut}: short parse succeeded");
        }
        let _ = read_matrix_market_ex(prefix.as_bytes());
    }
    // Cutting anywhere before the last entry line must error.
    let last_line_start = text.trim_end().rfind('\n').unwrap() + 1;
    for cut in 0..last_line_start {
        assert!(
            read_matrix_market(&text.as_bytes()[..cut]).is_err(),
            "cut={cut}: a truncated body must not parse"
        );
    }
}

#[test]
fn random_mutations_never_panic() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let text = valid_text();
    let mut rng = StdRng::seed_from_u64(0xF022);
    let replacements: &[u8] = b"0123456789 .-+eE%\n\tXx";
    for _ in 0..500 {
        let mut bytes = text.clone().into_bytes();
        let mutations = rng.random_range(1..6usize);
        for _ in 0..mutations {
            let pos = rng.random_range(0..bytes.len());
            let sub = replacements[rng.random_range(0..replacements.len())];
            bytes[pos] = sub;
        }
        // Whatever the mutation produced, both readers must return a clean
        // Result (the assertion is simply that no panic unwinds).
        let _ = read_matrix_market(&bytes[..]);
        let _ = read_matrix_market_ex(&bytes[..]);
    }
}

#[test]
fn valid_files_still_round_trip_after_hardening() {
    // The capacity clamp must not change behaviour for honest files.
    let csr = random_csr(12, 9, 40, 5);
    let mut buf = Vec::new();
    write_matrix_market(&csr.to_coo(), &mut buf).unwrap();
    let back = CsrMatrix::from_coo(&read_matrix_market(&buf[..]).unwrap());
    assert_eq!(back, csr);
}
