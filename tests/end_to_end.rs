//! Cross-crate integration tests: the full pipeline from matrix generation through
//! tuning, parallel execution, baselines, and the architecture model.

use spmv_multicore::prelude::*;
use spmv_multicore::spmv_archsim::platforms::PlatformId;
use spmv_multicore::spmv_core::tuning::search::DenseProfile;
use spmv_multicore::spmv_parallel::affinity::AffinityPolicy;
use spmv_multicore::spmv_parallel::numa::{NumaAwareMatrix, NumaTopology};
use spmv_testutil::{assert_bit_identical, max_abs_diff};

fn reference_and_x(matrix: SuiteMatrix) -> (CsrMatrix, Vec<f64>, Vec<f64>) {
    let csr = CsrMatrix::from_coo(&matrix.generate(Scale::Tiny));
    let x: Vec<f64> = (0..csr.ncols())
        .map(|i| ((i * 13 + 5) % 37) as f64 * 0.1 - 1.5)
        .collect();
    let y = csr.spmv_alloc(&x);
    (csr, x, y)
}

#[test]
fn every_suite_matrix_survives_the_full_tuning_pipeline() {
    for matrix in SuiteMatrix::all() {
        let (csr, x, reference) = reference_and_x(matrix);
        let tuned = tune_csr(&csr, &TuningConfig::full());
        let y = tuned.spmv_alloc(&x);
        assert!(
            max_abs_diff(&reference, &y) < 1e-9,
            "{}: tuned SpMV diverged from reference",
            matrix.id()
        );
        assert_eq!(
            tuned.nnz(),
            csr.nnz(),
            "{}: nonzeros lost in tuning",
            matrix.id()
        );
        assert!(
            tuned.footprint_bytes() <= (tuned.report().csr_bytes as f64 * 1.10) as usize,
            "{}: tuned structure should not be much larger than CSR",
            matrix.id()
        );
    }
}

#[test]
fn parallel_execution_matches_serial_for_every_suite_matrix() {
    for matrix in SuiteMatrix::all() {
        let (csr, x, reference) = reference_and_x(matrix);
        let parallel = ParallelTuned::new(&csr, 4, &TuningConfig::full());
        let mut y = vec![0.0; csr.nrows()];
        parallel.spmv_scoped(&x, &mut y);
        assert!(
            max_abs_diff(&reference, &y) < 1e-9,
            "{}: parallel SpMV diverged",
            matrix.id()
        );
    }
}

/// The acceptance bar of the two-phase pipeline: for every suite matrix, the
/// tuned parallel engine's output is **bit-identical** to the serial tuned path
/// (the same plan materialized and executed sequentially).
#[test]
fn tuned_engine_bit_identical_to_serial_tuned_path_on_every_suite_matrix() {
    use spmv_multicore::spmv_parallel::SpmvEngine;
    for matrix in SuiteMatrix::all() {
        let (csr, x, _) = reference_and_x(matrix);
        for threads in [1, 3] {
            let plan = TunePlan::new(&csr, threads, &TuningConfig::full());
            let serial = PreparedMatrix::materialize(&csr, &plan).unwrap();
            let mut expected = vec![0.0; csr.nrows()];
            serial.spmv(&x, &mut expected);

            let mut engine = SpmvEngine::from_plan(&csr, &plan).unwrap();
            let mut y = vec![0.0; csr.nrows()];
            engine.spmv(&x, &mut y);
            assert_bit_identical(
                &expected,
                &y,
                &format!(
                    "{} at {threads} threads (tuned-parallel vs serial)",
                    matrix.id()
                ),
            );
        }
    }
}

/// A plan survives the plain-text profile round trip and drives the engine to
/// the same bits (the save/load amortization workflow).
#[test]
fn saved_plan_round_trips_through_text_for_suite_matrices() {
    use spmv_multicore::spmv_parallel::SpmvEngine;
    for matrix in [SuiteMatrix::FemCantilever, SuiteMatrix::Lp] {
        let (csr, x, _) = reference_and_x(matrix);
        let plan = TunePlan::new(&csr, 2, &TuningConfig::full());
        let reloaded = TunePlan::from_text(&plan.to_text()).unwrap();
        assert_eq!(plan, reloaded, "{}", matrix.id());
        let mut a = vec![0.0; csr.nrows()];
        SpmvEngine::from_plan(&csr, &plan).unwrap().spmv(&x, &mut a);
        let mut b = vec![0.0; csr.nrows()];
        SpmvEngine::from_plan(&csr, &reloaded)
            .unwrap()
            .spmv(&x, &mut b);
        assert_eq!(a, b, "{}", matrix.id());
    }
}

#[test]
fn baselines_agree_with_reference_results() {
    for matrix in [SuiteMatrix::Protein, SuiteMatrix::Circuit, SuiteMatrix::Lp] {
        let (csr, x, reference) = reference_and_x(matrix);
        let oski = OskiMatrix::tune_with_profile(&csr, &DenseProfile::synthetic());
        assert!(
            max_abs_diff(&reference, &oski.spmv_alloc(&x)) < 1e-9,
            "{}: OSKI baseline diverged",
            matrix.id()
        );
        let petsc = OskiPetsc::new(&csr, 4, &DenseProfile::synthetic());
        assert!(
            max_abs_diff(&reference, &petsc.spmv_alloc(&x)) < 1e-9,
            "{}: OSKI-PETSc baseline diverged",
            matrix.id()
        );
    }
}

#[test]
fn numa_decomposition_matches_reference() {
    let (csr, x, reference) = reference_and_x(SuiteMatrix::FemHarbor);
    for (topology, policy) in [
        (NumaTopology::amd_x2(), AffinityPolicy::numa_aware()),
        (NumaTopology::cell_blade(), AffinityPolicy::interleaved()),
    ] {
        let numa = NumaAwareMatrix::new(&csr, topology, policy, &TuningConfig::full());
        let mut y = vec![0.0; csr.nrows()];
        numa.spmv(&x, &mut y);
        assert!(max_abs_diff(&reference, &y) < 1e-9);
    }
}

#[test]
fn model_reproduces_the_paper_headline_ordering() {
    // The paper's headline claims, checked end-to-end through generation, tuning and
    // the architecture model on a mid-sized FEM matrix:
    //   (1) the Cell blade is the fastest full system,
    //   (2) every platform's full system beats its own single core,
    //   (3) the tuned full system beats the OSKI-PETSc baseline on the x86 machines.
    use spmv_bench::experiments::run_ladder;
    let csr = CsrMatrix::from_coo(&SuiteMatrix::FemCantilever.generate(Scale::Tiny));

    let mut full_system = std::collections::HashMap::new();
    let mut memory_bound = std::collections::HashMap::new();
    for platform in PlatformId::all() {
        let results = run_ladder(platform, SuiteMatrix::FemCantilever, &csr);
        let first = results.first().unwrap().gflops;
        let best_parallel = results
            .iter()
            .filter(|r| !r.rung.contains("OSKI"))
            .map(|r| r.gflops)
            .fold(0.0f64, f64::max);
        assert!(
            best_parallel >= first,
            "{}: parallel should not be slower than the first rung",
            platform.name()
        );
        let last = results.iter().rfind(|r| !r.rung.contains("OSKI")).unwrap();
        full_system.insert(platform, best_parallel);
        memory_bound.insert(platform, last.bandwidth_bound);
        if matches!(platform, PlatformId::AmdX2 | PlatformId::Clovertown) {
            let petsc = results
                .iter()
                .find(|r| r.rung == "OSKI-PETSc")
                .unwrap()
                .gflops;
            let tuned = results
                .iter()
                .find(|r| r.rung == "Full System [*]")
                .unwrap()
                .gflops;
            assert!(
                tuned > petsc,
                "{}: tuned should beat OSKI-PETSc",
                platform.name()
            );
        }
    }
    // The paper's "Cell wins" headline holds in the memory-bound regime (its matrices
    // are far larger than any cache). At the tiny test scale a matrix can become
    // cache resident on a 4-16MB x86, which legitimately removes the bandwidth wall,
    // so only compare against platforms that the model still reports as memory bound.
    let blade = full_system[&PlatformId::CellBlade];
    for other in [
        PlatformId::AmdX2,
        PlatformId::Clovertown,
        PlatformId::Niagara,
    ] {
        if memory_bound[&other] {
            assert!(
                blade >= full_system[&other],
                "Cell blade should beat the memory-bound {}",
                other.name()
            );
        }
    }
    assert!(blade >= full_system[&PlatformId::Niagara]);
}

#[test]
fn matrix_market_round_trip_preserves_spmv_results() {
    use spmv_multicore::spmv_matrices::mmio::{read_matrix_market, write_matrix_market};
    let coo = SuiteMatrix::Qcd.generate(Scale::Tiny);
    let mut buffer = Vec::new();
    write_matrix_market(&coo, &mut buffer).expect("write");
    let read_back = read_matrix_market(&buffer[..]).expect("read");
    let a = CsrMatrix::from_coo(&coo);
    let b = CsrMatrix::from_coo(&read_back);
    let x: Vec<f64> = (0..a.ncols()).map(|i| i as f64 * 0.01).collect();
    assert!(max_abs_diff(&a.spmv_alloc(&x), &b.spmv_alloc(&x)) < 1e-9);
}
