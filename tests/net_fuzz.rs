//! Wire-protocol robustness suite: hostile bytes must cost the server a
//! typed error or a dropped connection — never a panic, and never an
//! allocation sized by a lying length field.
//!
//! Three layers, mirroring `mmio_fuzz`:
//!
//! 1. **Regression corpus** — every `tests/net_corpus/*.bin` is a malformed,
//!    truncated, or lying frame. Each is checked at the decode layer (no
//!    successful parse) and against a live server (the server answers
//!    `ERR_MALFORMED` or drops the connection, then keeps serving).
//! 2. **Truncation fuzz** — a valid request frame cut at every byte boundary,
//!    fed to a live server and closed; the server must survive all of them.
//! 3. **Mutation fuzz** — seeded random byte substitutions over a valid
//!    frame, at the decode layer and against the live server.

use spmv_multicore::spmv_core::formats::{CooMatrix, CsrMatrix};
use spmv_multicore::spmv_core::tuning::TuningConfig;
use spmv_multicore::spmv_net::server::{NetServer, NetServerHandle, ServerConfig};
use spmv_multicore::spmv_net::{protocol, NetClient};
use spmv_multicore::spmv_serve::MatrixRegistry;
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn corpus_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/net_corpus")
}

fn corpus() -> Vec<(std::path::PathBuf, Vec<u8>)> {
    let dir = corpus_dir();
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("corpus dir {dir:?}: {e}"))
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("bin"))
        .collect();
    entries.sort();
    entries
        .into_iter()
        .map(|p| {
            let bytes = std::fs::read(&p).unwrap();
            (p, bytes)
        })
        .collect()
}

fn tridiag(n: usize) -> CsrMatrix {
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        coo.push(i, i, 4.0);
        if i + 1 < n {
            coo.push(i, i + 1, -1.0);
            coo.push(i + 1, i, -1.0);
        }
    }
    CsrMatrix::from_coo(&coo)
}

fn serve() -> NetServerHandle {
    let registry = Arc::new(MatrixRegistry::new(1, TuningConfig::naive()));
    registry.insert("m", &tridiag(8)).unwrap();
    NetServer::bind(registry, "127.0.0.1:0", ServerConfig::default())
        .expect("bind")
        .spawn()
        .expect("spawn")
}

/// One valid spmv request frame (length prefix included).
fn valid_frame() -> Vec<u8> {
    let req = protocol::Request::new(1, "m", protocol::Op::Spmv { x: vec![1.0; 8] });
    let body = protocol::encode_request(&req);
    let mut frame = Vec::new();
    protocol::write_frame(&mut frame, &body);
    frame
}

/// The server is alive iff a fresh connection round-trips.
fn assert_server_alive(handle: &NetServerHandle, context: &str) {
    let mut c = NetClient::connect(handle.addr()).unwrap_or_else(|e| panic!("{context}: {e}"));
    c.set_timeout(Some(Duration::from_secs(30))).unwrap();
    let y = c
        .spmv("m", &[1.0; 8])
        .unwrap_or_else(|e| panic!("{context}: server stopped serving: {e}"));
    assert_eq!(y.len(), 8, "{context}");
}

#[test]
fn corpus_never_decodes_at_the_protocol_layer() {
    let cases = corpus();
    assert!(
        cases.len() >= 14,
        "corpus unexpectedly small ({} cases)",
        cases.len()
    );
    for (path, bytes) in &cases {
        // The framing layer may refuse the prefix (FrameTooLarge), report an
        // incomplete frame (None), or yield a body — which must then fail to
        // decode. No path may panic, and none may produce a valid request.
        match protocol::take_frame(bytes, protocol::MAX_FRAME) {
            Err(_) => {}   // lying prefix refused before any allocation
            Ok(None) => {} // truncated frame: the stream just waits
            Ok(Some((body, _))) => {
                assert!(
                    protocol::decode_request(body).is_err(),
                    "{path:?}: a corpus frame decoded successfully"
                );
            }
        }
    }
}

#[test]
fn corpus_against_a_live_server_answers_malformed_or_drops() {
    let mut handle = serve();
    for (path, bytes) in corpus() {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let mut raw = TcpStream::connect(handle.addr()).unwrap();
        raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        raw.write_all(&bytes)
            .unwrap_or_else(|e| panic!("{name}: write: {e}"));
        // Half-close our side so a server waiting for the rest of a
        // truncated frame sees EOF instead of waiting forever.
        let _ = raw.shutdown(std::net::Shutdown::Write);
        // Drain whatever the server answers (an ERR_MALFORMED frame or an
        // immediate close) until EOF; only a hang or panic is a failure.
        let mut sink = Vec::new();
        let _ = std::io::Read::read_to_end(&mut raw, &mut sink);
        drop(raw);
        assert_server_alive(&handle, &format!("after corpus case {name}"));
    }
    // Lying prefixes must never have been trusted: the 4 GiB / 1 GB / 65535²
    // claims in the corpus would have aborted the process on allocation.
    handle.shutdown();
}

#[test]
fn every_truncation_of_a_valid_frame_leaves_the_server_serving() {
    let mut handle = serve();
    let frame = valid_frame();
    // Every strict prefix is an incomplete or undecodable frame. Feeding it
    // and closing must never wedge or kill the server. (The full frame is
    // excluded — it is simply a valid request.)
    for cut in 0..frame.len() {
        let mut raw = TcpStream::connect(handle.addr()).unwrap();
        raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        raw.write_all(&frame[..cut]).unwrap();
        let _ = raw.shutdown(std::net::Shutdown::Write);
        let mut sink = Vec::new();
        let _ = std::io::Read::read_to_end(&mut raw, &mut sink);
        drop(raw);
    }
    assert_server_alive(&handle, "after per-byte truncation sweep");
    assert_eq!(
        handle.stats().requests(),
        1,
        "no truncated prefix ever dispatched as a request (the 1 is the liveness probe)"
    );
    handle.shutdown();
}

#[test]
fn seeded_mutations_never_panic_the_decoder() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let frame = valid_frame();
    let mut rng = StdRng::seed_from_u64(0x4E_45_54); // "NET"
    for _ in 0..1000 {
        let mut bytes = frame.clone();
        for _ in 0..rng.random_range(1..5usize) {
            let pos = rng.random_range(0..bytes.len());
            bytes[pos] = rng.random_range(0..=255u8);
        }
        // Whatever the mutation produced, the protocol layer must return a
        // clean Result at both stages (the assertion is that nothing panics).
        if let Ok(Some((body, _))) = protocol::take_frame(&bytes, protocol::MAX_FRAME) {
            let _ = protocol::decode_request(body);
        }
    }
}

#[test]
fn seeded_mutations_against_a_live_server() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut handle = serve();
    let frame = valid_frame();
    let mut rng = StdRng::seed_from_u64(0x4E_46_55);
    for round in 0..60 {
        let mut bytes = frame.clone();
        for _ in 0..rng.random_range(1..4usize) {
            let pos = rng.random_range(0..bytes.len());
            bytes[pos] = rng.random_range(0..=255u8);
        }
        let mut raw = TcpStream::connect(handle.addr()).unwrap();
        raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let _ = raw.write_all(&bytes);
        let _ = raw.shutdown(std::net::Shutdown::Write);
        let mut sink = Vec::new();
        let _ = std::io::Read::read_to_end(&mut raw, &mut sink);
        drop(raw);
        if round % 10 == 9 {
            assert_server_alive(&handle, &format!("after mutation round {round}"));
        }
    }
    assert_server_alive(&handle, "after the mutation sweep");
    handle.shutdown();
}
