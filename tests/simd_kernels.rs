//! The SIMD microkernel property/fuzz suite (paper Section 4.3 rung).
//!
//! Three pillars, per the vectorization acceptance bar:
//!
//! 1. **Kernel equivalence** — every vectorized kernel (BCSR r×4 for
//!    r ∈ {1, 2, 4}, the gather-free CSR row kernel, and their multivec
//!    variants) × every index width {u16, u32, usize} matches the dense
//!    triplet reference on the seeded case generator, which is biased toward
//!    the shapes that break vector code: rectangular matrices, empty rows,
//!    single-row/column shapes, and remainder columns (ncols % 4 ≠ 0) that
//!    exercise the zero-padded ragged edge. The explicit scalar dispatch arm
//!    is swept alongside the host arm, so the fallback is tested everywhere.
//! 2. **SpMM ≡ k × SpMV** — the vectorized multivec kernels perform, per
//!    column, the identical operation sequence as the single-vector kernels,
//!    so the products are bit-identical for every swept k (the invariant the
//!    batching service relies on).
//! 3. **Plans across threads** — SIMD plans materialize and run on the
//!    parallel engine at 1, 2, and oversubscribed (n + 3) thread counts with
//!    output bit-identical to the plan's own serial `PreparedMatrix` oracle,
//!    and within accumulation tolerance of the dense reference.

use spmv_multicore::prelude::*;
use spmv_multicore::spmv_core::formats::bcsr::BcsrMatrix;
use spmv_multicore::spmv_core::formats::CompressedCsr;
use spmv_multicore::spmv_core::kernels::simd::{
    self, bcsr_simd_shape, spmm_bcsr_simd, spmm_csr_simd, spmm_csr_simd_at, spmv_bcsr_simd,
    spmv_csr_simd, spmv_csr_simd_at, SimdLevel,
};
use spmv_testutil::{
    assert_bit_identical, cases, empty_row_csr, max_abs_diff, random_csr, single_col_csr,
    single_row_csr, test_x, xblock, Case,
};

/// The case pool every kernel sweep runs over: the seeded generator (already
/// biased toward rectangular/empty/boundary shapes) plus fixed cases that pin
/// the SIMD-specific hazards — remainder columns for every covered lane
/// count, and rows that end exactly on a vector boundary.
fn simd_cases() -> Vec<Case> {
    let mut pool = cases(40, 0x51D);
    // Remainder columns: ncols % 4 ∈ {1, 2, 3} forces the zero-padded edge.
    for (ncols, seed) in [(5usize, 1u64), (6, 2), (7, 3), (13, 4)] {
        let csr = random_csr(12, ncols, 12 * ncols / 2, seed);
        pool.push(Case {
            nrows: 12,
            ncols,
            entries: csr.iter().collect(),
        });
    }
    // Exact multiples: every row a whole number of 4-lane groups.
    let csr = random_csr(16, 16, 120, 5);
    pool.push(Case {
        nrows: 16,
        ncols: 16,
        entries: csr.iter().collect(),
    });
    pool
}

fn dense_reference(case: &Case, x: &[f64]) -> Vec<f64> {
    case.dense_reference(x)
}

/// Pillar 1, CSR: the gather-free vector row kernel × width × dispatch arm.
#[test]
fn csr_simd_matches_dense_reference_across_widths() {
    for (i, case) in simd_cases().iter().enumerate() {
        let csr = case.csr();
        let x = test_x(case.ncols);
        let expected = dense_reference(case, &x);
        let levels = [simd::detect(), SimdLevel::Scalar];

        let c16 = csr.reindex::<u16>();
        let c32 = csr.reindex::<u32>().expect("u32 always fits the cases");
        let cus = csr.reindex::<usize>().expect("usize always fits");
        for level in levels {
            if let Ok(m) = &c16 {
                let mut y = vec![0.0; case.nrows];
                spmv_csr_simd_at(level, m, &x, &mut y);
                assert!(
                    max_abs_diff(&y, &expected) < 1e-9,
                    "csr<u16> {level:?} case {i}"
                );
            }
            let mut y = vec![0.0; case.nrows];
            spmv_csr_simd_at(level, &c32, &x, &mut y);
            assert!(
                max_abs_diff(&y, &expected) < 1e-9,
                "csr<u32> {level:?} case {i}"
            );
            let mut y = vec![0.0; case.nrows];
            spmv_csr_simd_at(level, &cus, &x, &mut y);
            assert!(
                max_abs_diff(&y, &expected) < 1e-9,
                "csr<usize> {level:?} case {i}"
            );
        }
        // The width-auto wrapper dispatches the same kernels.
        let compressed = CompressedCsr::from_csr(&csr);
        let mut y = vec![0.0; case.nrows];
        compressed.execute_simd(&x, &mut y);
        assert!(max_abs_diff(&y, &expected) < 1e-9, "compressed case {i}");
    }
}

/// Pillar 1, BCSR: covered vector shapes and scalar-fallback shapes alike
/// match the reference at every width; uncovered shapes are *bitwise* the
/// scalar kernel (the dispatch must not silently reroute them).
#[test]
fn bcsr_simd_matches_dense_reference_across_widths_and_shapes() {
    for (i, case) in simd_cases().iter().enumerate() {
        let csr = case.csr();
        let x = test_x(case.ncols);
        let expected = dense_reference(case, &x);
        for (r, c) in [(1, 4), (2, 4), (4, 4), (3, 4), (2, 2), (4, 2)] {
            macro_rules! check_width {
                ($I:ty, $tag:literal) => {
                    if let Ok(b) = BcsrMatrix::<$I>::from_csr(&csr, r, c) {
                        let mut y = vec![0.0; case.nrows];
                        spmv_bcsr_simd(&b, &x, &mut y);
                        assert!(
                            max_abs_diff(&y, &expected) < 1e-9,
                            "bcsr<{}> {r}x{c} case {i}",
                            $tag
                        );
                        if !bcsr_simd_shape(r, c) {
                            // Uncovered shape: the dispatcher must hand the
                            // exact scalar result through, bit for bit.
                            let mut ys = vec![0.0; case.nrows];
                            b.spmv(&x, &mut ys);
                            assert_bit_identical(
                                &y,
                                &ys,
                                &format!("bcsr<{}> {r}x{c} fallback case {i}", $tag),
                            );
                        }
                    }
                };
            }
            check_width!(u16, "u16");
            check_width!(u32, "u32");
            check_width!(usize, "usize");
        }
    }
}

/// Pillar 2: vectorized SpMM is bit-identical to k single-vector SIMD calls,
/// per width, per k (including k past the kernels' internal chunk sizes).
#[test]
fn simd_spmm_is_bit_identical_to_k_spmv_across_widths() {
    for (i, case) in simd_cases().iter().enumerate().step_by(3) {
        let csr = case.csr();
        for k in [1usize, 2, 3, 5, 8, 11] {
            let xb = xblock(case.ncols, k);

            // CSR at each width.
            macro_rules! check_csr {
                ($m:expr, $tag:literal) => {{
                    let m = $m;
                    let mut ym = MultiVec::zeros(case.nrows, k);
                    spmm_csr_simd(m, xb.data(), xb.ld(), &mut ym.view_mut());
                    for j in 0..k {
                        let mut y = vec![0.0; case.nrows];
                        spmv_csr_simd(m, xb.col(j), &mut y);
                        assert_bit_identical(
                            ym.col(j),
                            &y,
                            &format!("csr<{}> spmm k={k} col {j} case {i}", $tag),
                        );
                    }
                }};
            }
            if let Ok(m) = csr.reindex::<u16>() {
                check_csr!(&m, "u16");
            }
            check_csr!(&csr.reindex::<usize>().unwrap(), "usize");

            // BCSR covered shapes (each has a different K-chunking scheme).
            for (r, c) in [(1, 4), (2, 4), (4, 4)] {
                if let Ok(b) = BcsrMatrix::<u32>::from_csr(&csr, r, c) {
                    let mut ym = MultiVec::zeros(case.nrows, k);
                    spmm_bcsr_simd(&b, xb.data(), xb.ld(), &mut ym.view_mut());
                    for j in 0..k {
                        let mut y = vec![0.0; case.nrows];
                        spmv_bcsr_simd(&b, xb.col(j), &mut y);
                        assert_bit_identical(
                            ym.col(j),
                            &y,
                            &format!("bcsr {r}x{c} spmm k={k} col {j} case {i}"),
                        );
                    }
                }
            }
        }
    }
}

/// The explicit scalar arm of the multivec dispatch agrees with the scalar
/// single-vector arm bitwise — so the fallback path upholds the same SpMM
/// contract as the vector path, on every host.
#[test]
fn scalar_fallback_spmm_upholds_the_same_contract() {
    let csr = random_csr(30, 23, 260, 0xFA);
    let m = csr.reindex::<u32>().unwrap();
    for k in [1usize, 3, 6] {
        let xb = xblock(23, k);
        let mut ym = MultiVec::zeros(30, k);
        spmm_csr_simd_at(
            SimdLevel::Scalar,
            &m,
            xb.data(),
            xb.ld(),
            &mut ym.view_mut(),
        );
        for j in 0..k {
            let mut y = vec![0.0; 30];
            spmv_csr_simd_at(SimdLevel::Scalar, &m, xb.col(j), &mut y);
            assert_bit_identical(ym.col(j), &y, &format!("scalar spmm k={k} col {j}"));
        }
    }
}

/// Pillar 1, boundary structures: the shapes the generator can only hit by
/// luck, pinned explicitly.
#[test]
fn simd_kernels_handle_degenerate_structures() {
    for (tag, csr) in [
        ("empty-rows", empty_row_csr(10, 8)),
        ("single-row", single_row_csr(9, 7)),
        ("single-col", single_col_csr(9, 8)),
        ("empty", empty_row_csr(1, 1)),
    ] {
        let x = test_x(csr.ncols());
        let expected = spmv_testutil::dense_spmv(&csr, &x);
        let mut y = vec![0.0; csr.nrows()];
        spmv_csr_simd(&csr.reindex::<u32>().unwrap(), &x, &mut y);
        assert!(max_abs_diff(&y, &expected) < 1e-12, "{tag}: csr");
        for (r, c) in [(1, 4), (4, 4)] {
            if let Ok(b) = BcsrMatrix::<u32>::from_csr(&csr, r, c) {
                let mut y = vec![0.0; csr.nrows()];
                spmv_bcsr_simd(&b, &x, &mut y);
                assert!(max_abs_diff(&y, &expected) < 1e-12, "{tag}: bcsr {r}x{c}");
            }
        }
        // SIMD kernels accumulate: a pre-filled destination is added into.
        let mut y = vec![1.5; csr.nrows()];
        spmv_csr_simd(&csr.reindex::<u32>().unwrap(), &x, &mut y);
        for (i, (&got, &e)) in y.iter().zip(&expected).enumerate() {
            assert!((got - (e + 1.5)).abs() < 1e-12, "{tag}: accumulate row {i}");
        }
    }
}

/// Pillar 3: SIMD plans across thread counts {1, 2, n + 3}. The parallel
/// engine must stay bit-identical to the plan's serial `PreparedMatrix`
/// oracle (partition boundaries, not thread interleaving, fix the arithmetic)
/// and within accumulation tolerance of the dense reference.
#[test]
fn simd_plans_run_bit_identical_across_thread_counts() {
    let oversubscribed = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        + 3;
    let suite = [
        ("dense-u16", random_csr(64, 48, 64 * 30, 21)),
        ("sparse-u16", random_csr(150, 90, 900, 22)),
        ("wide-u32", random_csr(30, 70_000, 900, 23)),
        ("remainder", random_csr(61, 43, 1100, 24)),
    ];
    for (tag, csr) in &suite {
        let x = test_x(csr.ncols());
        let expected = spmv_testutil::dense_spmv(csr, &x);
        let scale = expected.iter().fold(1.0f64, |m, v| m.max(v.abs()));
        for threads in [1usize, 2, oversubscribed] {
            let plan = TunePlan::new(csr, threads, &TuningConfig::full());
            assert_eq!(
                plan.threads.iter().any(|t| t.simd),
                simd::available(),
                "{tag}: the full config plans SIMD exactly when the host has it"
            );
            let prepared =
                PreparedMatrix::materialize(csr, &plan).expect("plan matches its matrix");
            let mut y_serial = vec![0.0; csr.nrows()];
            prepared.spmv(&x, &mut y_serial);
            assert!(
                max_abs_diff(&y_serial, &expected) <= 1e-12 * scale,
                "{tag}@{threads}: serial SIMD drifted from the dense reference"
            );

            let mut engine = SpmvEngine::from_plan(csr, &plan).expect("plan matches its matrix");
            let mut y_par = vec![0.0; csr.nrows()];
            engine.spmv(&x, &mut y_par);
            assert_bit_identical(&y_par, &y_serial, &format!("{tag}@{threads}: spmv"));

            let xb = xblock(csr.ncols(), 3);
            let mut ys = MultiVec::zeros(csr.nrows(), 3);
            prepared.spmm(&xb, &mut ys);
            let mut yp = MultiVec::zeros(csr.nrows(), 3);
            engine.spmm(&xb, &mut yp);
            assert_bit_identical(yp.data(), ys.data(), &format!("{tag}@{threads}: spmm"));
            // And the multivec path agrees with per-column SpMV bitwise.
            for j in 0..3 {
                let mut y = vec![0.0; csr.nrows()];
                prepared.spmv(xb.col(j), &mut y);
                assert_bit_identical(ys.col(j), &y, &format!("{tag}@{threads}: spmm col {j}"));
            }
        }
    }
}
