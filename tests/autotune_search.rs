//! The measured-autotuning property/fuzz suite.
//!
//! Four pillars, per the whole-plan search acceptance bar:
//!
//! 1. **Equivalence** — for seeded generator matrices × index-width regimes ×
//!    thread counts × budgets, the searched plan's SpMV/SpMM output is
//!    bit-identical to the heuristic `PreparedMatrix` reference whenever the
//!    two plans share an accumulation class (same flattened format decisions;
//!    index width and prefetch never change arithmetic), within tight
//!    tolerance when the search changed formats (reassociated sums), and the
//!    winner's parallel engine is always bit-identical to the winner's own
//!    serial `PreparedMatrix` reference.
//! 2. **Round-trip** — every candidate plan the exhaustive search generates
//!    (forced shapes, widths, symmetric slabs) survives plan → profile → plan
//!    exactly and materializes.
//! 3. **Fingerprint/cache** — identical matrices fingerprint identically
//!    (including two reads of the same MatrixMarket stream); row-permuted and
//!    value-perturbed variants differ; a warm `TuneCache` hit provably skips
//!    the search (counter hook), and tampered cache entries are rejected.
//! 4. **Golden plan** — the heuristic plan for a fixed seeded matrix matches
//!    a committed snapshot, so silent planner drift fails loudly.

use spmv_multicore::prelude::*;
use spmv_multicore::spmv_core::tuning::autotune::{
    autotune_timed, candidate_plans, MatrixFingerprint, SearchBudget, TuneCache,
};
use spmv_multicore::spmv_matrices::mmio::read_matrix_market;
use spmv_multicore::spmv_matrices::mmio::write_matrix_market;
use spmv_testutil::{
    assert_bit_identical, assert_plan_snapshot, assert_plans_equivalent, plan_outputs,
    plan_snapshot, random_csr, random_symmetric_csr, same_accumulation_class,
};

/// Seeded matrices spanning the regimes the search must handle: u16-index
/// territory, u32-index territory (wide columns), tall/thin, symmetric.
fn suite() -> Vec<(&'static str, CsrMatrix)> {
    vec![
        ("small-u16", random_csr(80, 60, 700, 1)),
        ("square-u16", random_csr(200, 200, 2000, 2)),
        ("wide-u32", random_csr(40, 70_000, 1200, 3)),
        ("tall", random_csr(900, 30, 1800, 4)),
        ("symmetric", random_symmetric_csr(120, 600, 5)),
    ]
}

#[test]
fn searched_plans_agree_with_the_heuristic_reference() {
    for (id, csr) in suite() {
        for threads in [1, 2, 5] {
            for budget in [SearchBudget::Pruned, SearchBudget::Exhaustive] {
                let ctx = format!("{id} threads={threads} budget={budget:?}");
                let outcome = autotune_timed(&csr, threads, &TuningConfig::full(), budget, 1);
                let heuristic = TunePlan::new(&csr, threads, &TuningConfig::full());
                assert_plans_equivalent(
                    &csr,
                    &outcome.plan,
                    &heuristic,
                    &format!("{ctx} winner={}", outcome.label),
                );
                // The winner's parallel engine is bit-identical to the
                // winner's serial reference — the guarantee the serve layer's
                // hot swap leans on.
                let (y_serial, s_serial) = plan_outputs(&csr, &outcome.plan);
                let mut engine = SpmvEngine::from_plan(&csr, &outcome.plan)
                    .unwrap_or_else(|e| panic!("{ctx}: engine build: {e}"));
                let x = spmv_testutil::test_x(csr.ncols());
                let mut y = vec![0.0; csr.nrows()];
                engine.spmv(&x, &mut y);
                assert_bit_identical(&y_serial, &y, &format!("{ctx}: engine spmv"));
                let xs = spmv_testutil::xblock(csr.ncols(), 3);
                let mut ys = MultiVec::zeros(csr.nrows(), 3);
                engine.spmm(&xs, &mut ys);
                assert_bit_identical(s_serial.data(), ys.data(), &format!("{ctx}: engine spmm"));
            }
        }
    }
}

#[test]
fn every_exhaustive_candidate_round_trips_and_materializes() {
    for (id, csr) in suite() {
        let plans = candidate_plans(&csr, 2, &TuningConfig::full(), SearchBudget::Exhaustive);
        assert!(plans.len() > 10, "{id}: exhaustive sweep is broad");
        for (label, plan) in &plans {
            let ctx = format!("{id}/{label}");
            plan.validate_for(&csr)
                .unwrap_or_else(|e| panic!("{ctx}: {e}"));
            let text = plan.to_text();
            let back = TunePlan::from_text(&text).unwrap_or_else(|e| panic!("{ctx}: {e}"));
            assert_eq!(*plan, back, "{ctx}: profile round trip");
            PreparedMatrix::materialize(&csr, plan).unwrap_or_else(|e| panic!("{ctx}: {e}"));
            // Same-class candidates are bit-identical to the heuristic plan;
            // cross-class (symmetric vs general) agree within tolerance.
            assert_plans_equivalent(&csr, plan, &plans[0].1, &ctx);
        }
        // The symmetric matrix's exhaustive sweep must cross the boundary both
        // ways: symmetric slab candidates and forced general candidates.
        if csr.nrows() == csr.ncols() && plans[0].1.symmetric {
            assert!(plans.iter().any(|(_, p)| p.symmetric));
            assert!(plans.iter().any(|(_, p)| !p.symmetric));
            assert!(plans
                .iter()
                .any(|(_, p)| !same_accumulation_class(p, &plans[0].1)));
        }
    }
}

#[test]
fn fingerprints_identify_matrices_read_twice_from_matrix_market() {
    let csr = random_csr(50, 40, 400, 7);
    let mut buf = Vec::new();
    write_matrix_market(&csr.to_coo(), &mut buf).unwrap();
    let once = CsrMatrix::from_coo(&read_matrix_market(&buf[..]).unwrap());
    let twice = CsrMatrix::from_coo(&read_matrix_market(&buf[..]).unwrap());
    assert_eq!(
        MatrixFingerprint::compute(&once),
        MatrixFingerprint::compute(&twice),
        "two reads of the same stream must fingerprint identically"
    );
}

#[test]
fn fingerprints_differ_for_permuted_and_perturbed_variants() {
    let base = random_csr(60, 60, 500, 8);
    let fp = MatrixFingerprint::compute(&base);

    // Row permutation: swap the first two (structurally distinct) rows.
    let permuted: Vec<(usize, usize, f64)> = base
        .iter()
        .map(|(i, j, v)| {
            let row = match i {
                0 => 1,
                1 => 0,
                other => other,
            };
            (row, j, v)
        })
        .collect();
    let permuted = CsrMatrix::from_coo(&CooMatrix::from_triplets(60, 60, permuted).unwrap());
    assert_ne!(base, permuted, "swap must change the matrix");
    assert_ne!(fp, MatrixFingerprint::compute(&permuted), "row permutation");

    // Value perturbation: nudge every stored value's last bit in turn — any
    // single perturbation must change the fingerprint.
    for k in [0, base.nnz() / 2, base.nnz() - 1] {
        let perturbed: Vec<(usize, usize, f64)> = base
            .iter()
            .enumerate()
            .map(|(idx, (i, j, v))| {
                let v = if idx == k {
                    f64::from_bits(v.to_bits() ^ 1)
                } else {
                    v
                };
                (i, j, v)
            })
            .collect();
        let perturbed = CsrMatrix::from_coo(&CooMatrix::from_triplets(60, 60, perturbed).unwrap());
        assert_ne!(
            fp,
            MatrixFingerprint::compute(&perturbed),
            "value perturbation at stored entry {k}"
        );
    }
}

#[test]
fn warm_cache_hit_skips_the_search_and_tampering_is_rejected() {
    let dir = std::env::temp_dir().join(format!("spmv_autotune_suite_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let cache = TuneCache::with_platform(&dir, "suite-plat").unwrap();
    let csr = random_csr(90, 80, 900, 9);

    let first = cache
        .autotune_timed(&csr, 2, &TuningConfig::full(), SearchBudget::Pruned, 1)
        .unwrap();
    assert!(!first.from_cache);
    assert_eq!(cache.search_count(), 1);

    let second = cache
        .autotune_timed(&csr, 2, &TuningConfig::full(), SearchBudget::Pruned, 1)
        .unwrap();
    assert!(second.from_cache, "second insert must be a warm hit");
    assert_eq!(second.plan, first.plan);
    assert_eq!(cache.search_count(), 1, "the search must not run twice");

    // Tamper with the stored entry: the checksum rejects it, the lookup
    // treats it as a miss, and the next autotune searches again.
    let fp = MatrixFingerprint::compute(&csr);
    let config = TuningConfig::full();
    let path = cache.entry_path(&fp, 2, &config);
    let text = std::fs::read_to_string(&path).unwrap();
    let tampered = text.replacen("block 0", "block 1", 1);
    assert_ne!(text, tampered);
    std::fs::write(&path, tampered).unwrap();
    assert!(
        cache.load_entry(&fp, 2, &config).is_err(),
        "tampered entry must error"
    );
    assert!(cache.lookup(&fp, 2, &config, &csr).is_none());
    let third = cache
        .autotune_timed(&csr, 2, &TuningConfig::full(), SearchBudget::Pruned, 1)
        .unwrap();
    assert!(!third.from_cache);
    assert_eq!(cache.search_count(), 2, "tampered entry forces a re-search");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn heuristic_plan_matches_the_golden_snapshot() {
    // A fixed seeded matrix whose heuristic plan is committed below: planner
    // drift (new formats, changed thresholds) must be a conscious edit here,
    // never a silent behaviour change.
    let csr = random_csr(64, 48, 512, 42);
    let plan = TunePlan::new(&csr, 2, &TuningConfig::full());
    assert_plan_snapshot(&plan, GOLDEN_PLAN_64X48, "seed-42 heuristic plan");
    // And the snapshot itself is stable across renderings.
    assert_eq!(plan_snapshot(&plan), plan_snapshot(&plan.clone()));
}

/// Golden heuristic plan for `random_csr(64, 48, 512, 42)` at 2 threads,
/// `TuningConfig::full()`. Regenerate with `plan_snapshot` if the planner
/// changes intentionally.
const GOLDEN_PLAN_64X48: &str = "\
plan 64x48 nnz=467 threads=2 symmetric=false
  t0 rows=0..31 prefetch=none blocks=[csr/u16@0..31x0..48]
  t1 rows=31..64 prefetch=none blocks=[csr/u16@0..33x0..48]
";
