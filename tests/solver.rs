//! Integration pillars of the fused in-engine iterative solvers:
//!
//! 1. **Bit-identity** — the engine's fused CG epoch matches the serial
//!    [`SerialCg`] reference bit for bit on the same plan, across thread
//!    counts {1, 2, nrows+3}, forced index widths {u16, u32}, and the plain
//!    usize-width CSR path (a client-side CG over `CsrMatrix<usize>` in the
//!    same accumulation class).
//! 2. **Convergence** — fused CG solves SPD systems to the known solution
//!    (recomputed true residual, not just the recurrence), fused power
//!    iteration finds dominant eigenvalues, on general and symmetric plans.
//! 3. **Retune under iteration** — hot-swapping the serving engine mid-solve
//!    (including across the general/symmetric boundary) carries the resident
//!    state and keeps converging.

use spmv_core::formats::IndexWidth;
use spmv_core::solver::{kernels, SerialCg, SerialPower};
use spmv_core::tuning::prepared::PreparedMatrix;
use spmv_core::{CsrMatrix, SpMv, TunePlan, TuningConfig};
use spmv_parallel::{FusedCg, FusedPower, SpmvEngine};
use spmv_testutil::{assert_bit_identical, assert_solved, spd_system};

fn force_width(plan: &mut TunePlan, width: IndexWidth) {
    for t in &mut plan.threads {
        for d in &mut t.decisions {
            d.choice.width = width;
        }
    }
}

/// Pillar 1: fused vs serial bit-identity across thread counts and forced
/// index widths, on general full-config plans.
#[test]
fn fused_cg_bit_identical_across_threads_and_widths() {
    let n = 60;
    let sys = spd_system(n, 7);
    for width in [IndexWidth::U16, IndexWidth::U32] {
        for nthreads in [1, 2, n + 3] {
            let mut plan = TunePlan::new(&sys.matrix, nthreads, &TuningConfig::full());
            force_width(&mut plan, width);
            let prepared = PreparedMatrix::materialize(&sys.matrix, &plan).unwrap();
            let mut serial = SerialCg::new(prepared, &sys.rhs).unwrap();
            let engine = SpmvEngine::from_plan(&sys.matrix, &plan).unwrap();
            let mut fused = FusedCg::new(engine, &sys.rhs);
            assert_eq!(
                serial.rr().to_bits(),
                fused.rr().to_bits(),
                "initial rr (threads={nthreads}, width={width:?})"
            );
            for it in 0..30 {
                serial.step();
                fused.step();
                assert_eq!(
                    serial.rr().to_bits(),
                    fused.rr().to_bits(),
                    "rr at iteration {it} (threads={nthreads}, width={width:?})"
                );
            }
            assert_bit_identical(
                serial.solution(),
                fused.solution(),
                &format!("x after 30 steps (threads={nthreads}, width={width:?})"),
            );
            assert_bit_identical(
                serial.residual(),
                fused.state().1,
                &format!("r after 30 steps (threads={nthreads}, width={width:?})"),
            );
        }
    }
}

/// Pillar 1, usize leg: a client-side CG over the plain `CsrMatrix<usize>`
/// (uncompressed indices, same per-row accumulation order and the same fused
/// BLAS-1 kernels over one full-length slice) matches the 1-thread fused
/// engine bit for bit — index width never changes the arithmetic.
#[test]
fn fused_cg_bit_identical_to_usize_width_client_cg() {
    let n = 47;
    let sys = spd_system(n, 9);
    let plan = TunePlan::new(&sys.matrix, 1, &TuningConfig::naive());
    let engine = SpmvEngine::from_plan(&sys.matrix, &plan).unwrap();
    let mut fused = FusedCg::new(engine, &sys.rhs);

    // One-slice client CG at usize width.
    let mut x = vec![0.0; n];
    let mut r = sys.rhs.clone();
    let mut p = sys.rhs.clone();
    let mut w = vec![0.0; n];
    let mut rr = kernels::dot(&r, &r);
    assert_eq!(rr.to_bits(), fused.rr().to_bits(), "initial rr");
    for it in 0..30 {
        w.fill(0.0);
        sys.matrix.spmv(&p, &mut w);
        let alpha = rr / kernels::dot(&p, &w);
        let rr_new = kernels::cg_update(alpha, &p, &w, &mut x, &mut r);
        let beta = rr_new / rr;
        kernels::xpby(&r, beta, &mut p);
        rr = rr_new;
        fused.step();
        assert_eq!(rr.to_bits(), fused.rr().to_bits(), "rr at iteration {it}");
    }
    assert_bit_identical(&x, fused.solution(), "usize-width client CG iterate");
}

/// Pillar 1 on symmetric storage: the scratch-reduction apply path stays
/// bit-identical to the symmetric serial reference at every thread count.
#[test]
fn fused_cg_bit_identical_on_symmetric_plans() {
    let n = 44;
    let sys = spd_system(n, 13);
    let config = TuningConfig::full();
    for nthreads in [1, 2, 5, n + 3] {
        let plan = TunePlan::new(&sys.matrix, nthreads, &config);
        assert!(plan.symmetric, "SPD generator must trigger symmetric plans");
        let prepared = PreparedMatrix::materialize(&sys.matrix, &plan).unwrap();
        let mut serial = SerialCg::new(prepared, &sys.rhs).unwrap();
        let engine = SpmvEngine::from_plan(&sys.matrix, &plan).unwrap();
        let mut fused = FusedCg::new(engine, &sys.rhs);
        for it in 0..25 {
            serial.step();
            fused.step();
            assert_eq!(
                serial.rr().to_bits(),
                fused.rr().to_bits(),
                "rr at iteration {it} (threads={nthreads})"
            );
        }
    }
}

/// Pillar 2: fused CG drives the recomputed true residual (and the error
/// against the known solution) to tolerance on general and symmetric plans.
#[test]
fn fused_cg_converges_to_known_solution() {
    let n = 96;
    let sys = spd_system(n, 21);
    let general = TuningConfig {
        exploit_symmetry: false,
        ..TuningConfig::full()
    };
    for (label, config) in [("general", general), ("symmetric", TuningConfig::full())] {
        let plan = TunePlan::new(&sys.matrix, 4, &config);
        let engine = SpmvEngine::from_plan(&sys.matrix, &plan).unwrap();
        let mut cg = FusedCg::new(engine, &sys.rhs);
        cg.run(1e-11, 600);
        assert!(
            cg.residual_norm() <= 1e-11,
            "{label}: no convergence, rr = {}",
            cg.rr()
        );
        assert_solved(&sys, cg.solution(), 1e-8, label);
        assert!(cg.iterations() > 0 && cg.iterations() < 600, "{label}");
    }
}

/// Pillar 2: fused power iteration matches the serial reference bitwise and
/// finds the dominant eigenvalue of a diagonal matrix.
#[test]
fn fused_power_matches_serial_and_converges() {
    use spmv_core::formats::CooMatrix;
    let n = 32;
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        coo.push(i, i, 1.0 + i as f64);
    }
    let csr = CsrMatrix::from_coo(&coo);
    let v0 = vec![1.0; n];
    for nthreads in [1, 3, n + 3] {
        let plan = TunePlan::new(&csr, nthreads, &TuningConfig::full());
        let prepared = PreparedMatrix::materialize(&csr, &plan).unwrap();
        let mut serial = SerialPower::new(prepared, &v0).unwrap();
        let engine = SpmvEngine::from_plan(&csr, &plan).unwrap();
        let mut fused = FusedPower::new(engine, &v0);
        let mut lambda = 0.0;
        for it in 0..250 {
            let s = serial.step();
            lambda = fused.step();
            assert_eq!(
                s.to_bits(),
                lambda.to_bits(),
                "lambda at iteration {it} (threads={nthreads})"
            );
        }
        assert!(
            (lambda - n as f64).abs() < 1e-6,
            "lambda={lambda} (threads={nthreads})"
        );
    }
}

/// Pillar 3: hot-swapping engines mid-solve — across thread counts and across
/// the general/symmetric plan boundary — carries the resident state and
/// converges to the known solution.
#[test]
fn retune_under_iteration_converges() {
    let n = 72;
    let sys = spd_system(n, 33);
    let general = TuningConfig {
        exploit_symmetry: false,
        ..TuningConfig::full()
    };
    let plan_a = TunePlan::new(&sys.matrix, 2, &general);
    let engine = SpmvEngine::from_plan(&sys.matrix, &plan_a).unwrap();
    let mut cg = FusedCg::new(engine, &sys.rhs);
    for _ in 0..5 {
        cg.step();
    }
    // General → symmetric, more threads.
    let plan_b = TunePlan::new(&sys.matrix, 6, &TuningConfig::full());
    assert!(plan_b.symmetric);
    let old = cg.swap_engine(SpmvEngine::from_plan(&sys.matrix, &plan_b).unwrap());
    drop(old);
    for _ in 0..5 {
        cg.step();
    }
    // Symmetric → general, fewer threads.
    let plan_c = TunePlan::new(&sys.matrix, 3, &general);
    let old = cg.swap_engine(SpmvEngine::from_plan(&sys.matrix, &plan_c).unwrap());
    drop(old);
    cg.run(1e-11, 600);
    assert_solved(&sys, cg.solution(), 1e-8, "after two mid-solve retunes");
}
