//! Property tests for the paper Section 4.3 partition descriptors the engine
//! never exercises: column partitioning ([`ColumnPartition`]) and
//! segmented-scan nonzero partitioning ([`SegmentedPartition`]).
//!
//! Properties checked over the fuzz corpus (rectangular, empty-row,
//! single-row/column, and fully empty matrices) at part counts spanning
//! 1 to well past the matrix dimensions:
//!
//! * **Disjoint cover** — the ranges/chunks tile the column space or nonzero
//!   stream exactly, in order, with no gaps or overlaps.
//! * **Balance bounds** — column parts carry at most `nnz/parts + heaviest
//!   column + 1` nonzeros (splits are column-granular); nonzero chunks are
//!   perfectly balanced to within one element by construction.
//! * **Executor agreement** — the partitioned reference executors reproduce
//!   the dense triplet product on every case.

use spmv_core::formats::CscMatrix;
use spmv_core::partition::column::{
    column_partitioned_spmv, partition_columns_balanced, ColumnPartition,
};
use spmv_core::partition::segmented::{partition_nonzeros, segmented_spmv};
use spmv_core::MatrixShape;
use spmv_testutil::{cases, max_abs_diff, test_x};

const PART_COUNTS: [usize; 6] = [1, 2, 3, 5, 16, 67];

#[test]
fn column_partition_disjoint_cover_and_nnz_conservation() {
    for case in cases(30, 0xC01) {
        let csc = CscMatrix::from_coo(&case.coo());
        for parts in PART_COUNTS {
            let p = partition_columns_balanced(&csc, parts);
            assert_eq!(p.num_parts(), parts, "{}x{}", case.nrows, case.ncols);
            assert!(
                p.covers(case.ncols),
                "cover failed: {}x{} parts={parts}",
                case.nrows,
                case.ncols
            );
            // Ranges are in order and within bounds (covers checks contiguity;
            // this checks each range is well-formed).
            for r in &p.ranges {
                assert!(r.start <= r.end && r.end <= case.ncols);
            }
            let total: usize = p.nnz_per_part(&csc).iter().sum();
            assert_eq!(total, csc.nnz(), "nnz not conserved");
        }
    }
}

#[test]
fn column_partition_balance_bound() {
    for case in cases(30, 0xC02) {
        let csc = CscMatrix::from_coo(&case.coo());
        let col_ptr = csc.col_ptr();
        let heaviest = (0..case.ncols)
            .map(|j| col_ptr[j + 1] - col_ptr[j])
            .max()
            .unwrap_or(0);
        for parts in PART_COUNTS {
            let p = partition_columns_balanced(&csc, parts);
            let bound = csc.nnz() / parts + heaviest + 1;
            for (i, load) in p.nnz_per_part(&csc).iter().enumerate() {
                assert!(
                    *load <= bound,
                    "part {i} carries {load} nnz > bound {bound} \
                     ({}x{} nnz={} parts={parts})",
                    case.nrows,
                    case.ncols,
                    csc.nnz()
                );
            }
        }
    }
}

#[test]
fn column_partitioned_spmv_agrees_with_dense_reference() {
    for case in cases(30, 0xC03) {
        let csr = case.csr();
        let csc = CscMatrix::from_coo(&case.coo());
        let x = test_x(case.ncols);
        let reference = case.dense_reference(&x);
        for parts in PART_COUNTS {
            let p = partition_columns_balanced(&csc, parts);
            let y = column_partitioned_spmv(&csr, &csc, &p, &x);
            assert!(
                max_abs_diff(&reference, &y) < 1e-9,
                "column-partitioned SpMV diverged ({}x{} parts={parts})",
                case.nrows,
                case.ncols
            );
        }
    }
}

#[test]
fn column_partition_degenerate_shapes() {
    // Empty matrix: every range must be empty yet still tile 0..0 or 0..ncols.
    let empty = ColumnPartition {
        ranges: vec![0..0, 0..0],
    };
    assert!(empty.covers(0));
    assert!(!empty.covers(1));
    // Gap and overlap detection.
    assert!(!ColumnPartition {
        ranges: vec![0..2, 3..4]
    }
    .covers(4));
    assert!(!ColumnPartition {
        ranges: vec![0..3, 2..4]
    }
    .covers(4));
    // Imbalance of an empty partition is the neutral 1.0.
    let csc = CscMatrix::from_coo(&spmv_testutil::random_coo(3, 3, 0, 0));
    let p = partition_columns_balanced(&csc, 4);
    assert!(p.covers(3));
    assert_eq!(p.imbalance(&csc), 1.0);
}

#[test]
fn segmented_partition_tiles_and_balances_nonzeros() {
    for case in cases(30, 0x5E1) {
        let csr = case.csr();
        let nnz = csr.nnz();
        for parts in PART_COUNTS {
            let p = partition_nonzeros(&csr, parts);
            assert_eq!(p.num_parts(), parts);
            assert!(
                p.covers(nnz),
                "chunks do not tile nnz ({}x{} nnz={nnz} parts={parts})",
                case.nrows,
                case.ncols
            );
            // Perfect balance by construction: sizes within one of nnz/parts.
            for c in &p.chunks {
                let lo = nnz / parts;
                assert!(
                    c.len() >= lo.saturating_sub(1) && c.len() <= lo + 1,
                    "chunk {}..{} unbalanced (nnz={nnz} parts={parts})",
                    c.nnz_start,
                    c.nnz_end
                );
            }
        }
    }
}

#[test]
fn segmented_partition_row_bookkeeping_is_exact() {
    for case in cases(30, 0x5E2) {
        let csr = case.csr();
        let row_ptr = csr.row_ptr();
        for parts in PART_COUNTS {
            let p = partition_nonzeros(&csr, parts);
            for c in &p.chunks {
                if c.is_empty() {
                    continue;
                }
                // first_row owns nnz_start, last_row owns nnz_end - 1.
                assert!(
                    row_ptr[c.first_row] <= c.nnz_start && c.nnz_start < row_ptr[c.first_row + 1],
                    "first_row {} does not own nnz {}",
                    c.first_row,
                    c.nnz_start
                );
                assert!(
                    row_ptr[c.last_row] < c.nnz_end && c.nnz_end - 1 < row_ptr[c.last_row + 1],
                    "last_row {} does not own nnz {}",
                    c.last_row,
                    c.nnz_end - 1
                );
                assert!(c.first_row <= c.last_row);
            }
        }
    }
}

#[test]
fn segmented_spmv_agrees_with_dense_reference() {
    for case in cases(30, 0x5E3) {
        let csr = case.csr();
        let x = test_x(case.ncols);
        let reference = case.dense_reference(&x);
        for parts in PART_COUNTS {
            let p = partition_nonzeros(&csr, parts);
            let y = segmented_spmv(&csr, &p, &x);
            assert!(
                max_abs_diff(&reference, &y) < 1e-9,
                "segmented SpMV diverged ({}x{} parts={parts})",
                case.nrows,
                case.ncols
            );
        }
    }
}
