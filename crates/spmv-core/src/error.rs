//! Error type shared by the SpMV crates.

use std::fmt;

/// Errors produced while constructing or operating on sparse matrices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// An entry's row or column index lies outside the declared matrix dimensions.
    IndexOutOfBounds {
        /// Offending row index.
        row: usize,
        /// Offending column index.
        col: usize,
        /// Number of rows in the matrix.
        nrows: usize,
        /// Number of columns in the matrix.
        ncols: usize,
    },
    /// The dense vector passed to an SpMV call does not match the matrix dimension.
    DimensionMismatch {
        /// What was expected (e.g. "source vector of length ncols").
        expected: usize,
        /// What was provided.
        found: usize,
        /// Human-readable description of which operand mismatched.
        what: &'static str,
    },
    /// A register block dimension was requested that the kernel set does not support.
    UnsupportedBlockSize {
        /// Rows per register block.
        r: usize,
        /// Columns per register block.
        c: usize,
    },
    /// 16-bit indices were requested but a dimension exceeds `u16::MAX + 1`.
    IndexWidthOverflow {
        /// The dimension that does not fit.
        dimension: usize,
    },
    /// The input (e.g. a MatrixMarket stream) could not be parsed.
    Parse(String),
    /// An invariant internal to a format was violated (corrupt structure).
    InvalidStructure(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::IndexOutOfBounds {
                row,
                col,
                nrows,
                ncols,
            } => write!(
                f,
                "entry ({row}, {col}) is outside the {nrows}x{ncols} matrix"
            ),
            Error::DimensionMismatch {
                expected,
                found,
                what,
            } => write!(
                f,
                "dimension mismatch for {what}: expected {expected}, found {found}"
            ),
            Error::UnsupportedBlockSize { r, c } => {
                write!(f, "unsupported register block size {r}x{c}")
            }
            Error::IndexWidthOverflow { dimension } => {
                write!(f, "dimension {dimension} does not fit in 16-bit indices")
            }
            Error::Parse(msg) => write!(f, "parse error: {msg}"),
            Error::InvalidStructure(msg) => write!(f, "invalid matrix structure: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience result alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_index_out_of_bounds() {
        let e = Error::IndexOutOfBounds {
            row: 5,
            col: 7,
            nrows: 4,
            ncols: 4,
        };
        assert_eq!(e.to_string(), "entry (5, 7) is outside the 4x4 matrix");
    }

    #[test]
    fn display_dimension_mismatch() {
        let e = Error::DimensionMismatch {
            expected: 10,
            found: 8,
            what: "source vector",
        };
        assert!(e.to_string().contains("source vector"));
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("8"));
    }

    #[test]
    fn display_unsupported_block() {
        let e = Error::UnsupportedBlockSize { r: 3, c: 5 };
        assert_eq!(e.to_string(), "unsupported register block size 3x5");
    }

    #[test]
    fn display_index_width_overflow() {
        let e = Error::IndexWidthOverflow { dimension: 100_000 };
        assert!(e.to_string().contains("100000"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_std_error<E: std::error::Error>(_e: &E) {}
        assert_std_error(&Error::Parse("bad header".into()));
    }
}
