//! # spmv-core
//!
//! Multicore-optimized sparse matrix–vector multiplication (SpMV), reproducing the
//! optimization framework of Williams et al., *"Optimization of Sparse Matrix-Vector
//! Multiplication on Emerging Multicore Platforms"* (SC 2007).
//!
//! The crate provides the three optimization classes the paper studies:
//!
//! 1. **Code optimizations** ([`kernels`]) — naive nested-loop CSR, single-loop-variable
//!    traversal, branchless (segmented-scan style) accumulation, software-pipelined and
//!    unrolled/SIMD-friendly kernels, and prefetch-annotated variants.
//! 2. **Data-structure optimizations** ([`formats`], [`blocking`], [`tuning`]) — register
//!    blocking (BCSR with power-of-two tiles up to 4×4), block-coordinate storage (BCOO),
//!    generalized CSR for empty rows, 16-bit/32-bit index compression, sparse cache
//!    blocking, TLB blocking, and a one-pass footprint-minimizing format heuristic.
//! 3. **Parallelization support** ([`partition`]) — row partitioning balanced by nonzeros,
//!    column partitioning, and segmented-scan work descriptors consumed by the
//!    `spmv-parallel` crate.
//!
//! The computation implemented throughout is `y ← y + A·x` with `f64` values,
//! matching the paper's kernel definition.
//!
//! ## Quick start
//!
//! ```
//! use spmv_core::formats::{CooMatrix, CsrMatrix};
//! use spmv_core::SpMv;
//!
//! // Build a small matrix from triplets.
//! let mut coo = CooMatrix::new(3, 3);
//! coo.push(0, 0, 2.0);
//! coo.push(1, 1, 3.0);
//! coo.push(2, 0, 1.0);
//! coo.push(2, 2, 4.0);
//! let csr = CsrMatrix::from_coo(&coo);
//!
//! let x = vec![1.0, 2.0, 3.0];
//! let mut y = vec![0.0; 3];
//! csr.spmv(&x, &mut y);
//! assert_eq!(y, vec![2.0, 6.0, 13.0]);
//! ```

pub mod blocking;
pub mod dense;
pub mod error;
pub mod formats;
pub mod kernels;
pub mod multivec;
pub mod partition;
pub mod solver;
pub mod stats;
pub mod tuning;

pub use dense::AlignedVec;
pub use error::{Error, Result};
pub use formats::traits::{MatrixShape, SpMv};
pub use formats::{
    BcooMatrix, BcsrMatrix, CooMatrix, CscMatrix, CsrMatrix, GcsrMatrix, SymBcsr, SymCsr,
};
pub use multivec::{MultiVec, MultiVecMut};
pub use solver::{SerialCg, SerialPower};
pub use tuning::{
    MatrixFingerprint, PreparedBlock, PreparedMatrix, SearchBudget, TuneCache, TunePlan,
    TunedMatrix, TuningConfig,
};

/// Size in bytes of a double-precision matrix value.
pub const VALUE_BYTES: usize = 8;

/// Size in bytes of a full-width (32-bit) column/row index.
pub const INDEX32_BYTES: usize = 4;

/// Size in bytes of a compressed (16-bit) column/row index.
pub const INDEX16_BYTES: usize = 2;

/// The number of flops a single stored nonzero contributes to SpMV
/// (one multiply plus one add), as used throughout the paper's flop:byte analysis.
pub const FLOPS_PER_NNZ: usize = 2;
