//! The execution half of the two-phase pipeline: materialized thread blocks.
//!
//! A [`PreparedBlock`] is one thread's [`crate::tuning::plan::ThreadPlan`] made
//! concrete: every cache block stored in the format the heuristic chose (BCSR
//! microkernel tiles, compressed-index CSR, BCOO, GCSR), with the streaming kernel
//! variant (including the prefetch annotation) bound **once** at materialization.
//! The steady-state [`PreparedBlock::execute`] does no per-call decision making —
//! it walks the block list and calls each block's monomorphized kernel.
//!
//! Materialize a block *on the thread that will run it* and first-touch placement
//! puts its pages on that thread's NUMA node; this is exactly what
//! `spmv_parallel::SpmvEngine` does. [`PreparedMatrix`] materializes a whole plan
//! on one thread — the serial reference whose output the parallel engine matches
//! bit for bit, because both execute the identical per-block kernels over the
//! identical disjoint row ranges.

use crate::blocking::blocked::{BlockFormat, CacheBlock};
use crate::error::{Error, Result};
use crate::formats::csr::CsrMatrix;
use crate::formats::index::IndexWidth;
use crate::formats::symbcsr::SymBcsr;
use crate::formats::symcsr::SymCsr;
use crate::formats::traits::{check_dims, MatrixShape, SpMv};
use crate::kernels::KernelVariant;
use crate::tuning::footprint::FormatKind;
use crate::tuning::plan::{ThreadPlan, TunePlan};
use std::ops::Range;

/// A materialized **symmetric** thread slab: diagonal + strictly-lower triangle
/// at the planned encoding, with the index width selected once.
///
/// Unlike the general cache blocks, a symmetric slab's kernel scatters into
/// `y[j]` for arbitrary global `j`, so it executes against a *full-length*
/// destination ([`PreparedBlock::execute_full`]); the serial and parallel
/// executors give it scratch destinations and combine them with the shared
/// deterministic tree reduction.
#[derive(Debug, Clone)]
pub enum SymBlock {
    /// Pointwise symmetric CSR, 16-bit column indices.
    Csr16(SymCsr<u16>),
    /// Pointwise symmetric CSR, 32-bit column indices.
    Csr32(SymCsr<u32>),
    /// Register-blocked symmetric storage, 16-bit block-column indices.
    Bcsr16(SymBcsr<u16>),
    /// Register-blocked symmetric storage, 32-bit block-column indices.
    Bcsr32(SymBcsr<u32>),
}

impl SymBlock {
    /// Materialize the slab `local` (global rows starting at `row_offset`) at the
    /// encoding `choice` names.
    fn materialize(
        local: &CsrMatrix,
        row_offset: usize,
        choice: &crate::tuning::footprint::FormatChoice,
    ) -> Result<SymBlock> {
        Ok(match (choice.kind, choice.width) {
            (FormatKind::SymCsr, IndexWidth::U16) => {
                SymBlock::Csr16(SymCsr::from_slab_unchecked(local, row_offset)?)
            }
            (FormatKind::SymCsr, IndexWidth::U32) => {
                SymBlock::Csr32(SymCsr::from_slab_unchecked(local, row_offset)?)
            }
            (FormatKind::SymBcsr, IndexWidth::U16) => SymBlock::Bcsr16(
                SymBcsr::from_slab_unchecked(local, row_offset, choice.r, choice.c)?,
            ),
            (FormatKind::SymBcsr, IndexWidth::U32) => SymBlock::Bcsr32(
                SymBcsr::from_slab_unchecked(local, row_offset, choice.r, choice.c)?,
            ),
            (kind, _) => {
                return Err(Error::InvalidStructure(format!(
                    "{kind:?} is not a symmetric slab encoding"
                )))
            }
        })
    }

    /// `y ← y + A_slab·x` over full-length global vectors.
    pub fn spmv_full(&self, x: &[f64], y: &mut [f64]) {
        match self {
            SymBlock::Csr16(m) => m.spmv_full(x, y),
            SymBlock::Csr32(m) => m.spmv_full(x, y),
            SymBlock::Bcsr16(m) => m.spmv_full(x, y),
            SymBlock::Bcsr32(m) => m.spmv_full(x, y),
        }
    }

    /// Bytes of materialized slab data.
    pub fn footprint_bytes(&self) -> usize {
        match self {
            SymBlock::Csr16(m) => m.footprint_bytes(),
            SymBlock::Csr32(m) => m.footprint_bytes(),
            SymBlock::Bcsr16(m) => m.footprint_bytes(),
            SymBlock::Bcsr32(m) => m.footprint_bytes(),
        }
    }

    /// Stored entries (diagonal + lower values, including tile fill).
    pub fn stored_entries(&self) -> usize {
        match self {
            SymBlock::Csr16(m) => m.stored_entries(),
            SymBlock::Csr32(m) => m.stored_entries(),
            SymBlock::Bcsr16(m) => m.stored_entries(),
            SymBlock::Bcsr32(m) => m.stored_entries(),
        }
    }
}

/// One thread's fully materialized, kernel-bound share of the matrix.
#[derive(Debug, Clone)]
pub struct PreparedBlock {
    /// Global row range this block owns (its `y` slice).
    rows: Range<usize>,
    /// Column span of the full matrix (the `x` length the block expects).
    ncols: usize,
    /// Logical nonzeros stored in the block.
    nnz: usize,
    /// The CSR code variant bound for streaming-format cache blocks (carries the
    /// plan's prefetch distance and hint).
    stream_variant: KernelVariant,
    /// Execute streaming CSR and covered BCSR blocks with the explicit SIMD
    /// microkernels ([`crate::kernels::simd`]); overrides `stream_variant` for
    /// CSR blocks when set.
    simd: bool,
    /// Materialized cache blocks, rows/cols local to the thread block.
    blocks: Vec<CacheBlock>,
    /// The symmetric slab, when the plan chose the lower-triangle pipeline
    /// (`blocks` is empty then).
    sym: Option<SymBlock>,
}

impl PreparedBlock {
    /// Materialize `plan` against `local`, the thread's row slice of the matrix
    /// (`local.nrows()` must equal the plan's row count). Call this on the worker
    /// thread so first-touch places the pages locally.
    pub fn materialize(local: &CsrMatrix, plan: &ThreadPlan) -> Result<PreparedBlock> {
        if local.nrows() != plan.rows.end - plan.rows.start {
            return Err(Error::DimensionMismatch {
                expected: plan.rows.end - plan.rows.start,
                found: local.nrows(),
                what: "thread block row count",
            });
        }
        // A symmetric thread plan is exactly one lower-triangle slab decision.
        if let Some(d) = plan.decisions.iter().find(|d| d.choice.kind.is_symmetric()) {
            if plan.decisions.len() != 1 {
                return Err(Error::InvalidStructure(
                    "symmetric thread plan must hold exactly one slab decision".to_string(),
                ));
            }
            if d.nnz != local.nnz() {
                return Err(Error::InvalidStructure(format!(
                    "symmetric slab expects {} nonzeros, thread slice has {}",
                    d.nnz,
                    local.nnz()
                )));
            }
            let sym = SymBlock::materialize(local, plan.rows.start, &d.choice)?;
            return Ok(PreparedBlock {
                rows: plan.rows.clone(),
                ncols: local.ncols(),
                nnz: local.nnz(),
                stream_variant: plan.stream_variant(),
                // Symmetric slabs have no SIMD kernels; planning keeps the knob
                // off for them, and the executor never consults it here.
                simd: false,
                blocks: Vec::new(),
                sym: Some(sym),
            });
        }
        let matrix = crate::tuning::heuristic::materialize_decisions(local, &plan.decisions)?;
        let nnz = matrix.nnz();
        // CacheBlockedMatrix is only a validated container here; the prepared
        // block owns the raw cache blocks so execute can bind kernels itself.
        let blocks = matrix.blocks().to_vec();
        Ok(PreparedBlock {
            rows: plan.rows.clone(),
            ncols: local.ncols(),
            nnz,
            stream_variant: plan.stream_variant(),
            simd: plan.simd,
            blocks,
            sym: None,
        })
    }

    /// Materialize a *plain* (untuned) block: the whole row slice as one
    /// width-compressed CSR cache block executed with `variant`. This is the
    /// engine's non-tuned path expressed in the same structure, so every worker
    /// runs the same steady-state loop regardless of how it was built.
    pub fn plain(local: &CsrMatrix, rows: Range<usize>, variant: KernelVariant) -> PreparedBlock {
        use crate::formats::csr::CompressedCsr;
        let nnz = local.nnz();
        let blocks = if local.nrows() == 0 {
            vec![]
        } else {
            vec![CacheBlock {
                rows: 0..local.nrows(),
                cols: 0..local.ncols(),
                format: BlockFormat::Csr(CompressedCsr::from_csr(local)),
            }]
        };
        PreparedBlock {
            rows,
            ncols: local.ncols(),
            nnz,
            stream_variant: variant,
            simd: false,
            blocks,
            sym: None,
        }
    }

    /// Global row range this block writes (symmetric slabs additionally scatter
    /// transposed contributions below this range).
    pub fn rows(&self) -> Range<usize> {
        self.rows.clone()
    }

    /// Column span of the full matrix (the `x` length the block expects; equals
    /// the full dimension for symmetric slabs).
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Logical nonzeros in the block.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Bytes of materialized matrix data.
    pub fn footprint_bytes(&self) -> usize {
        let sym = self.sym.as_ref().map_or(0, |s| s.footprint_bytes());
        sym + self
            .blocks
            .iter()
            .map(|b| b.format.footprint_bytes())
            .sum::<usize>()
    }

    /// Whether this block is a symmetric lower-triangle slab (its writes scatter
    /// beyond its own row range; execute it with [`PreparedBlock::execute_full`]).
    pub fn is_symmetric(&self) -> bool {
        self.sym.is_some()
    }

    /// The materialized symmetric slab, if any.
    pub fn sym_block(&self) -> Option<&SymBlock> {
        self.sym.as_ref()
    }

    /// The kernel variant bound for streaming cache blocks.
    pub fn stream_variant(&self) -> KernelVariant {
        self.stream_variant
    }

    /// Whether this block executes through the explicit SIMD microkernels.
    pub fn uses_simd(&self) -> bool {
        self.simd
    }

    /// Number of materialized cache blocks.
    pub fn num_cache_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Steady state: `y_block ← y_block + A_block · x`, where `y_block` is exactly
    /// this block's row range of the destination. No allocation, no per-element
    /// dispatch — one enum match per cache block, then monomorphized kernels.
    pub fn execute(&self, x: &[f64], y_block: &mut [f64]) {
        debug_assert!(
            self.sym.is_none(),
            "symmetric slabs execute against full-length destinations (execute_full)"
        );
        debug_assert_eq!(x.len(), self.ncols, "source vector length mismatch");
        debug_assert_eq!(
            y_block.len(),
            self.rows.end - self.rows.start,
            "destination block length mismatch"
        );
        for block in &self.blocks {
            let x_local = &x[block.cols.start..block.cols.end];
            let y_local = &mut y_block[block.rows.start..block.rows.end];
            match &block.format {
                // Streaming CSR blocks run the bound code variant (which is where
                // the prefetch annotation lives) — unless the plan bound the
                // SIMD row kernel, which subsumes the streaming variants.
                BlockFormat::Csr(m) if self.simd => m.execute_simd(x_local, y_local),
                BlockFormat::Csr(m) => m.execute(self.stream_variant, x_local, y_local),
                // Covered BCSR shapes vectorize; BCOO/GCSR (and uncovered
                // shapes, inside the dispatch) stay scalar on both the SpMV and
                // SpMM paths, keeping the two paths' accumulation aligned.
                BlockFormat::Bcsr(m) if self.simd => m.spmv_simd(x_local, y_local),
                other => other.spmv_local(x_local, y_local),
            }
        }
    }

    /// `y_full ← y_full + A_block·x` against a **full-length** destination
    /// (`y_full.len()` = total matrix rows). For symmetric slabs this is the only
    /// execution form (their transposed writes scatter anywhere below the slab);
    /// general blocks write their own row range of `y_full`, so the call is
    /// equivalent to [`PreparedBlock::execute`] on the sliced destination.
    pub fn execute_full(&self, x: &[f64], y_full: &mut [f64]) {
        match &self.sym {
            Some(sym) => sym.spmv_full(x, y_full),
            None => self.execute(x, &mut y_full[self.rows.start..self.rows.end]),
        }
    }

    /// Batched steady state: `Y_block ← Y_block + A_block · X` for a column-major
    /// block of `y.k()` vectors (column `j` of the source at `x[j*x_ld ..]`, the
    /// destination view exposing exactly this block's rows). Walks the same
    /// materialized cache blocks as [`PreparedBlock::execute`], reading each
    /// index once per `k` vectors; per vector the arithmetic is bit-identical to
    /// [`PreparedBlock::execute`], because a plan's streaming variants
    /// (single-loop / prefetch) share their accumulation order with the
    /// multi-vector kernels. No allocation, no per-element dispatch.
    pub fn spmm(&self, x: &[f64], x_ld: usize, y: &mut crate::multivec::MultiVecMut) {
        debug_assert!(
            self.sym.is_none(),
            "symmetric slabs batch through execute_full per column"
        );
        debug_assert_eq!(
            y.nrows(),
            self.rows.end - self.rows.start,
            "destination block row count mismatch"
        );
        debug_assert!(x_ld >= self.ncols, "source stride shorter than ncols");
        for block in &self.blocks {
            let x_local = &x[block.cols.start..];
            let mut y_local = y.sub_rows(block.rows.start, block.rows.end - block.rows.start);
            match &block.format {
                // Mirror `execute`'s SIMD routing exactly: the vector multivec
                // kernels are per-column bit-identical to the vector SpMV
                // kernels, preserving the spmm ≡ k × spmv invariant.
                BlockFormat::Csr(m) if self.simd => m.spmm_simd(x_local, x_ld, &mut y_local),
                BlockFormat::Bcsr(m) if self.simd => m.spmm_simd(x_local, x_ld, &mut y_local),
                other => other.spmm_local(x_local, x_ld, &mut y_local),
            }
        }
    }
}

/// Accumulate `src` into `dst` element-wise — the single combine step of the
/// deterministic pairwise tree reduction shared by the serial
/// [`PreparedMatrix`] and the parallel `spmv_parallel::SpmvEngine`.
///
/// The shared schedule: with `count` scratch buffers, rounds use strides
/// `1, 2, 4, …` while `stride < count`; in each round, buffer `i` (where
/// `i % (2·stride) == 0` and `i + stride < count`) absorbs buffer `i + stride`.
/// Because both executors perform exactly these element-wise additions in
/// exactly this order, their outputs are bit-identical.
pub fn reduce_into(dst: &mut [f64], src: &[f64]) {
    debug_assert_eq!(dst.len(), src.len());
    for (d, s) in dst.iter_mut().zip(src) {
        *d += s;
    }
}

/// Run the full deterministic tree reduction over `count` contiguous segments
/// of `len` elements in one flat buffer, leaving the combined result in the
/// first segment. This is the exact schedule [`reduce_into`] documents — the
/// single definition the serial symmetric SpMV and SpMM share, so the order
/// the parallel engine mirrors cannot drift between them.
pub fn reduce_tree(scratch: &mut [f64], len: usize, count: usize) {
    debug_assert!(scratch.len() >= count * len);
    let mut stride = 1;
    while stride < count {
        let mut i = 0;
        while i + stride < count {
            let (head, tail) = scratch.split_at_mut((i + stride) * len);
            reduce_into(&mut head[i * len..(i + 1) * len], &tail[..len]);
            i += 2 * stride;
        }
        stride *= 2;
    }
}

/// A whole [`TunePlan`] materialized on one thread: the serial tuned reference.
///
/// Executes the thread blocks sequentially in partition order. Because every block
/// runs the identical kernels over identical disjoint row ranges, the result is
/// **bit-identical** to the parallel engine executing the same plan. Symmetric
/// plans execute each slab into a per-slab scratch vector and combine them with
/// the deterministic tree reduction ([`reduce_into`]'s schedule) — the exact
/// element-wise additions the engine's workers perform — so bit-identity holds
/// there too, despite the overlapping scatter writes symmetry creates.
#[derive(Debug, Clone)]
pub struct PreparedMatrix {
    nrows: usize,
    ncols: usize,
    nnz: usize,
    symmetric: bool,
    blocks: Vec<PreparedBlock>,
}

impl PreparedMatrix {
    /// Materialize every thread block of `plan` against `csr`.
    pub fn materialize(csr: &CsrMatrix, plan: &TunePlan) -> Result<PreparedMatrix> {
        plan.validate_for(csr)?;
        let blocks = plan
            .threads
            .iter()
            .map(|t| PreparedBlock::materialize(&csr.row_slice(t.rows.start, t.rows.end), t))
            .collect::<Result<Vec<_>>>()?;
        Ok(PreparedMatrix {
            nrows: csr.nrows(),
            ncols: csr.ncols(),
            nnz: csr.nnz(),
            symmetric: plan.symmetric,
            blocks,
        })
    }

    /// Whether the plan stored only the lower triangle (symmetric pipeline).
    pub fn is_symmetric(&self) -> bool {
        self.symmetric
    }

    /// The materialized thread blocks in partition order.
    pub fn blocks(&self) -> &[PreparedBlock] {
        &self.blocks
    }

    /// The symmetric serial path: every slab computes into its own zeroed
    /// segment of one flat scratch buffer (a single zeroed allocation per
    /// call), segments combine pairwise in the deterministic tree order, and
    /// the root segment accumulates into `y`. Mirrored op-for-op by the
    /// engine's scratch reduction.
    ///
    /// The per-call calloc is the price of keeping `spmv(&self)` shareable and
    /// the reference simple; iterative (steady-state) callers should use
    /// `spmv_parallel::SpmvEngine`, whose workers own grow-once scratch and
    /// allocate nothing per call.
    fn spmv_symmetric(&self, x: &[f64], y: &mut [f64]) {
        let count = self.blocks.len();
        let len = self.nrows;
        let mut scratch = vec![0.0f64; count * len];
        for (block, s) in self.blocks.iter().zip(scratch.chunks_mut(len.max(1))) {
            block.execute_full(x, s);
        }
        reduce_tree(&mut scratch, len, count);
        if count > 0 {
            reduce_into(y, &scratch[..len]);
        }
    }

    /// Symmetric batched apply, mirroring the engine's per-column loop and the
    /// same tree reduction over the whole `nrows × k` scratch segments.
    fn spmm_symmetric(&self, x: &crate::multivec::MultiVec, y: &mut crate::multivec::MultiVec) {
        let count = self.blocks.len();
        let k = x.k();
        let len = self.nrows * k;
        let mut scratch = vec![0.0f64; count * len];
        for (block, s) in self.blocks.iter().zip(scratch.chunks_mut(len.max(1))) {
            for j in 0..k {
                block.execute_full(x.col(j), &mut s[j * self.nrows..(j + 1) * self.nrows]);
            }
        }
        reduce_tree(&mut scratch, len, count);
        if count > 0 {
            reduce_into(y.data_mut(), &scratch[..len]);
        }
    }

    /// `Y ← Y + A·X` for a column-major block of `x.k()` vectors, executed
    /// serially over the thread blocks in partition order. This is the serial
    /// reference of the batched path: the parallel engine's
    /// `SpmvEngine::spmm` is bit-identical to it, and per vector it is
    /// bit-identical to [`PreparedMatrix::spmv`] on that vector alone.
    pub fn spmm(&self, x: &crate::multivec::MultiVec, y: &mut crate::multivec::MultiVec) {
        assert_eq!(x.ld(), self.ncols, "source block row count mismatch");
        assert_eq!(y.ld(), self.nrows, "destination block row count mismatch");
        assert_eq!(x.k(), y.k(), "source and destination vector counts differ");
        if self.symmetric {
            self.spmm_symmetric(x, y);
            return;
        }
        let x_ld = self.ncols;
        let mut view = y.view_mut();
        for block in &self.blocks {
            let rows = block.rows();
            let mut sub = view.sub_rows(rows.start, rows.end - rows.start);
            block.spmm(x.data(), x_ld, &mut sub);
        }
    }

    /// Allocating convenience for [`PreparedMatrix::spmm`]: returns `A·X`.
    pub fn spmm_alloc(&self, x: &crate::multivec::MultiVec) -> crate::multivec::MultiVec {
        let mut y = crate::multivec::MultiVec::zeros(self.nrows, x.k());
        self.spmm(x, &mut y);
        y
    }
}

impl MatrixShape for PreparedMatrix {
    fn nrows(&self) -> usize {
        self.nrows
    }
    fn ncols(&self) -> usize {
        self.ncols
    }
    fn stored_entries(&self) -> usize {
        self.blocks
            .iter()
            .map(|b| {
                b.sym.as_ref().map_or(0, |s| s.stored_entries())
                    + b.blocks
                        .iter()
                        .map(|c| c.format.stored_entries())
                        .sum::<usize>()
            })
            .sum()
    }
    fn nnz(&self) -> usize {
        self.nnz
    }
    fn footprint_bytes(&self) -> usize {
        self.blocks.iter().map(|b| b.footprint_bytes()).sum()
    }
}

impl SpMv for PreparedMatrix {
    fn spmv(&self, x: &[f64], y: &mut [f64]) {
        check_dims(self.nrows, self.ncols, x, y);
        if self.symmetric {
            self.spmv_symmetric(x, y);
            return;
        }
        for block in &self.blocks {
            let rows = block.rows();
            block.execute(x, &mut y[rows.start..rows.end]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::max_abs_diff;
    use crate::formats::CooMatrix;
    use crate::tuning::heuristic::TuningConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_csr(nrows: usize, ncols: usize, nnz: usize, seed: u64) -> CsrMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut coo = CooMatrix::new(nrows, ncols);
        for _ in 0..nnz {
            coo.push(
                rng.random_range(0..nrows),
                rng.random_range(0..ncols),
                rng.random_range(-1.0..1.0),
            );
        }
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn prepared_matrix_matches_reference_for_every_config() {
        let csr = random_csr(300, 260, 4000, 11);
        let x: Vec<f64> = (0..260).map(|i| (i as f64 * 0.07).sin()).collect();
        let reference = csr.spmv_alloc(&x);
        for config in [
            TuningConfig::naive(),
            TuningConfig::register_only(),
            TuningConfig::register_and_cache(),
            TuningConfig::full(),
        ] {
            for threads in [1, 3] {
                let plan = TunePlan::new(&csr, threads, &config);
                let prepared = PreparedMatrix::materialize(&csr, &plan).unwrap();
                let y = prepared.spmv_alloc(&x);
                assert!(
                    max_abs_diff(&reference, &y) < 1e-9,
                    "config {config:?} at {threads} threads diverged"
                );
                assert_eq!(prepared.nnz(), csr.nnz());
                assert!(prepared.footprint_bytes() > 0);
            }
        }
    }

    #[test]
    fn plan_loaded_from_text_materializes_identically() {
        let csr = random_csr(200, 150, 2500, 12);
        let plan = TunePlan::new(&csr, 2, &TuningConfig::full());
        let reloaded = TunePlan::from_text(&plan.to_text()).unwrap();
        let a = PreparedMatrix::materialize(&csr, &plan).unwrap();
        let b = PreparedMatrix::materialize(&csr, &reloaded).unwrap();
        let x: Vec<f64> = (0..150).map(|i| i as f64 * 0.3 - 20.0).collect();
        // Same plan, same kernels: bit-identical output.
        assert_eq!(a.spmv_alloc(&x), b.spmv_alloc(&x));
        assert_eq!(a.footprint_bytes(), b.footprint_bytes());
    }

    #[test]
    fn plain_block_matches_compressed_execution() {
        let csr = random_csr(80, 70, 700, 13);
        let block = PreparedBlock::plain(&csr, 0..80, KernelVariant::Unrolled4);
        let x: Vec<f64> = (0..70).map(|i| (i % 9) as f64).collect();
        let mut y = vec![0.0; 80];
        block.execute(&x, &mut y);
        assert!(max_abs_diff(&csr.spmv_alloc(&x), &y) < 1e-9);
        assert_eq!(block.nnz(), csr.nnz());
        assert_eq!(block.stream_variant(), KernelVariant::Unrolled4);
        assert_eq!(block.num_cache_blocks(), 1);
    }

    #[test]
    fn materialize_rejects_mismatched_plan() {
        let csr = random_csr(100, 100, 1000, 14);
        let plan = TunePlan::new(&csr, 2, &TuningConfig::full());
        let other = random_csr(100, 100, 999, 15);
        assert!(PreparedMatrix::materialize(&other, &plan).is_err());

        // A corrupted decision (u16 width on a wide block) fails cleanly too.
        let wide = random_csr(4, 70_000, 40, 16);
        let mut bad = TunePlan::new(&wide, 1, &TuningConfig::naive());
        for d in &mut bad.threads[0].decisions {
            d.choice.width = crate::formats::index::IndexWidth::U16;
        }
        assert!(PreparedMatrix::materialize(&wide, &bad).is_err());
    }

    #[test]
    fn prepared_spmm_bit_identical_to_k_spmv_calls() {
        use crate::multivec::MultiVec;
        let csr = random_csr(210, 170, 2800, 21);
        for config in [
            TuningConfig::naive(),
            TuningConfig::register_only(),
            TuningConfig::full(),
        ] {
            let plan = TunePlan::new(&csr, 3, &config);
            let prepared = PreparedMatrix::materialize(&csr, &plan).unwrap();
            for k in [1, 2, 4, 5, 8] {
                let cols: Vec<Vec<f64>> = (0..k)
                    .map(|j| {
                        (0..170)
                            .map(|i| ((i * 7 + j) % 13) as f64 * 0.5 - 2.0)
                            .collect()
                    })
                    .collect();
                let views: Vec<&[f64]> = cols.iter().map(|c| c.as_slice()).collect();
                let x = MultiVec::from_columns(&views);
                let mut y = MultiVec::zeros(210, k);
                y.fill(0.125);
                prepared.spmm(&x, &mut y);
                for j in 0..k {
                    let mut expected = vec![0.125; 210];
                    prepared.spmv(x.col(j), &mut expected);
                    assert_eq!(y.col(j), &expected[..], "config {config:?} k={k} col {j}");
                }
            }
        }
    }

    #[test]
    fn empty_matrix_prepares_and_executes() {
        let csr = CsrMatrix::from_coo(&CooMatrix::new(12, 12));
        let plan = TunePlan::new(&csr, 3, &TuningConfig::full());
        let prepared = PreparedMatrix::materialize(&csr, &plan).unwrap();
        let mut y = vec![5.0; 12];
        prepared.spmv(&[1.0; 12], &mut y);
        assert_eq!(y, vec![5.0; 12]);
        assert_eq!(prepared.footprint_bytes(), 0);
    }
}
