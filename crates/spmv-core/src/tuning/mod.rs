//! Matrix-structure autotuning (paper Section 4.2).
//!
//! The paper's key departure from OSKI is that the data structure is chosen by a
//! **one-pass heuristic that minimizes the matrix footprint** rather than by a
//! benchmark-driven search: for memory-bound multicore SpMV, the smallest structure
//! is (almost always) the fastest. The pipeline is:
//!
//! 1. Split the matrix into cache blocks ([`crate::blocking::cache`]), optionally
//!    refined by TLB blocking ([`crate::blocking::tlb`]).
//! 2. For each cache block, estimate the fill of every register block shape
//!    ([`crate::blocking::register`]), combine with the index-width and
//!    BCSR/BCOO/GCSR choice, and pick the smallest encoding
//!    ([`heuristic`]).
//! 3. Materialize the winning choice per block into a [`crate::blocking::CacheBlockedMatrix`].
//!
//! [`search`] provides the OSKI-style register-shape search used by the ablation
//! study and the baseline crate; [`autotune`] lifts that idea to **measured
//! whole-plan search** (complete [`TunePlan`] candidates timed end to end) with a
//! persistent, fingerprint-keyed [`TuneCache`]. [`optimizations`] is the
//! machine-readable form of the paper's Table 2.
//!
//! The pipeline is exposed in **two phases** so tuning cost can be paid once and
//! amortized: [`plan`] produces a serializable [`TunePlan`] (row partition +
//! per-thread per-cache-block decisions + prefetch annotation), and [`prepared`]
//! materializes a plan into kernel-bound [`PreparedBlock`]s — on the executing
//! thread, for first-touch NUMA placement. [`tune_csr`] composes both phases for
//! the serial single-call case.

pub mod autotune;
pub mod footprint;
pub mod heuristic;
pub mod optimizations;
pub mod plan;
pub mod prepared;
pub mod search;

pub use autotune::{
    autotune, autotune_timed, candidate_plans, Autotuned, CandidateTiming, MatrixFingerprint,
    SearchBudget, TuneCache,
};
pub use footprint::{FormatChoice, FormatKind};
pub use heuristic::{
    materialize_decisions, plan_block_decisions, plan_symmetric_thread, tune, tune_csr,
    BlockDecision, TunedMatrix, TuningConfig, TuningReport,
};
pub use plan::{ThreadPlan, TunePlan};
pub use prepared::{reduce_into, reduce_tree, PreparedBlock, PreparedMatrix, SymBlock};
pub use search::{search_register_blocking, SearchOutcome};
