//! Measured whole-plan autotuning with a persistent tune cache.
//!
//! The paper's one-pass footprint heuristic ([`TunePlan::new`]) picks the
//! smallest structure without ever timing a kernel. OSKI's position — and the
//! ablation the paper reports against it — is that a *measured* search over
//! the full optimization ladder is what closes the last gap to machine peak.
//! This module implements that search at the granularity the two-phase
//! pipeline already speaks: complete candidate [`TunePlan`]s (format kind
//! including the symmetric slabs, register block shape, index width, prefetch
//! annotation, cache-block grid) are materialized and timed with the same
//! median-of-k estimator the OSKI dense-profile benchmark uses
//! ([`median_timing`]), and the fastest whole plan wins. The heuristic plan is
//! always a candidate, so the search can never pick something it measured as
//! slower than the heuristic.
//!
//! Because a measured search costs real time, winners persist: a [`TuneCache`]
//! stores the winning plan's plain-text profile (the `spmv-tune-plan v1`
//! format of [`TunePlan::to_text`]) keyed by [`MatrixFingerprint`] × platform
//! × thread count, so a matrix seen twice never pays for the search twice.
//! Cache entries carry a checksum over the profile text; a tampered or
//! truncated entry is rejected and treated as a miss.

use crate::blocking::register::{estimate_fill, register_block_candidates};
use crate::error::{Error, Result};
use crate::formats::coo::CooMatrix;
use crate::formats::csr::CsrMatrix;
use crate::formats::index::IndexWidth;
use crate::formats::traits::{MatrixShape, SpMv};
use crate::partition::row::partition_rows_balanced;
use crate::tuning::footprint::{csr_bytes_at, gcsr_bytes, sym_csr_bytes, FormatChoice, FormatKind};
use crate::tuning::heuristic::{BlockDecision, TuningConfig};
use crate::tuning::plan::{
    ThreadPlan, TunePlan, PLANNED_PREFETCH_DISTANCE, PREFETCH_FOOTPRINT_BYTES,
};
use crate::tuning::prepared::PreparedMatrix;
use crate::tuning::search::median_timing;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// How much of the candidate space a measured search may spend time on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchBudget {
    /// No timing at all: trust the one-pass footprint heuristic (the paper's
    /// position, and the cheapest insert path).
    Heuristic,
    /// Time the heuristic plan against the optimization-ladder variants
    /// (naive, register-only, register+cache, symmetry/index/prefetch
    /// toggles) — a handful of complete plans.
    Pruned,
    /// [`SearchBudget::Pruned`] plus every forced whole-plan shape: each
    /// register block shape as BCSR/BCOO, plain CSR and GCSR at both index
    /// widths, and the symmetric slab encodings when the matrix is symmetric
    /// (the OSKI-style exhaustive sweep).
    Exhaustive,
}

/// Default per-candidate timing budget in milliseconds (each candidate is
/// timed as the median of [`TIMING_RUNS`] batched runs inside this budget).
pub const DEFAULT_EVAL_MS: u64 = 2;

/// Timed runs per candidate; the median is kept, so one scheduler hiccup
/// cannot crown the wrong plan.
pub const TIMING_RUNS: usize = 3;

/// One timed candidate of a search, for reporting/ablation output.
#[derive(Debug, Clone)]
pub struct CandidateTiming {
    /// Candidate label (`heuristic`, `naive`, `bcsr4x4`, `symcsr-u16`, ...).
    pub label: String,
    /// Median seconds per single whole-plan SpMV.
    pub secs_per_spmv: f64,
    /// The candidate plan's predicted storage bytes.
    pub planned_bytes: usize,
}

/// The outcome of a (possibly cached) whole-plan search.
#[derive(Debug, Clone)]
pub struct Autotuned {
    /// The winning plan.
    pub plan: TunePlan,
    /// Label of the winning candidate (`"cache"` for a cache hit).
    pub label: String,
    /// Whether the plan came from a [`TuneCache`] hit (no search ran).
    pub from_cache: bool,
    /// Every timed candidate, in generation order (empty for
    /// [`SearchBudget::Heuristic`] and for cache hits).
    pub candidates: Vec<CandidateTiming>,
}

// ---------------------------------------------------------------------------
// Candidate generation
// ---------------------------------------------------------------------------

/// The non-symmetric format a forced whole-plan candidate binds everywhere.
#[derive(Debug, Clone, Copy)]
enum ForcedKind {
    Csr(IndexWidth),
    Gcsr(IndexWidth),
    Bcsr(usize, usize),
    Bcoo(usize, usize),
}

/// The forced choice for one thread's whole row slice, or `None` when the
/// combination is inadmissible (e.g. 16-bit indices on a too-wide block).
fn forced_choice(local: &CsrMatrix, kind: ForcedKind) -> Option<FormatChoice> {
    let fits16 = |span: usize| IndexWidth::U16.fits(span);
    Some(match kind {
        ForcedKind::Csr(width) => {
            if width == IndexWidth::U16 && !fits16(local.ncols()) {
                return None;
            }
            FormatChoice {
                kind: FormatKind::Csr,
                r: 1,
                c: 1,
                width,
                bytes: csr_bytes_at(local, width),
                fill_ratio: 1.0,
            }
        }
        ForcedKind::Gcsr(width) => {
            if width == IndexWidth::U16 && !(fits16(local.nrows()) && fits16(local.ncols())) {
                return None;
            }
            FormatChoice {
                kind: FormatKind::Gcsr,
                r: 1,
                c: 1,
                width,
                bytes: gcsr_bytes(local, width),
                fill_ratio: 1.0,
            }
        }
        ForcedKind::Bcsr(r, c) | ForcedKind::Bcoo(r, c) => {
            let est = estimate_fill(local, r, c);
            let nbr = local.nrows().div_ceil(r);
            let nbc = local.ncols().div_ceil(c);
            let width = if fits16(nbr) && fits16(nbc) {
                IndexWidth::U16
            } else {
                IndexWidth::U32
            };
            let (fkind, bytes) = match kind {
                ForcedKind::Bcsr(..) => (FormatKind::Bcsr, est.bcsr_bytes(local.nrows(), width)),
                ForcedKind::Bcoo(..) => (FormatKind::Bcoo, est.bcoo_bytes(width)),
                _ => unreachable!(),
            };
            FormatChoice {
                kind: fkind,
                r,
                c,
                width,
                bytes,
                fill_ratio: if est.fill_ratio.is_finite() {
                    est.fill_ratio
                } else {
                    1.0
                },
            }
        }
    })
}

/// A complete plan binding `kind` for every thread's whole row slice (one
/// decision per thread, prefetch annotated by the same footprint rule the
/// heuristic planner uses).
fn forced_general_plan(
    csr: &CsrMatrix,
    nthreads: usize,
    config: &TuningConfig,
    kind: ForcedKind,
) -> Option<TunePlan> {
    let partition = partition_rows_balanced(csr, nthreads);
    let mut threads = Vec::with_capacity(partition.ranges.len());
    for range in &partition.ranges {
        let local = csr.row_slice(range.start, range.end);
        let decisions = if local.nnz() == 0 {
            Vec::new()
        } else {
            vec![BlockDecision {
                rows: 0..local.nrows(),
                cols: 0..local.ncols(),
                choice: forced_choice(&local, kind)?,
                nnz: local.nnz(),
            }]
        };
        let planned: usize = decisions.iter().map(|d| d.choice.bytes).sum();
        let prefetch = config.software_prefetch && planned > PREFETCH_FOOTPRINT_BYTES;
        threads.push(ThreadPlan {
            rows: range.clone(),
            prefetch_distance: if prefetch {
                PLANNED_PREFETCH_DISTANCE
            } else {
                0
            },
            nta_hint: prefetch,
            simd: config.simd && crate::kernels::simd::available(),
            decisions,
        });
    }
    Some(TunePlan {
        nrows: csr.nrows(),
        ncols: csr.ncols(),
        nnz: csr.nnz(),
        symmetric: false,
        threads,
    })
}

/// A complete symmetric plan binding one forced slab encoding per thread.
/// The caller has already established exact symmetry.
fn forced_symmetric_plan(
    csr: &CsrMatrix,
    nthreads: usize,
    kind: FormatKind,
    r: usize,
    c: usize,
    width: IndexWidth,
) -> Option<TunePlan> {
    let n = csr.ncols();
    let admissible = match kind {
        FormatKind::SymCsr => width != IndexWidth::U16 || IndexWidth::U16.fits(n),
        FormatKind::SymBcsr => width != IndexWidth::U16 || IndexWidth::U16.fits(n.div_ceil(c)),
        _ => false,
    };
    if !admissible {
        return None;
    }
    let partition = partition_rows_balanced(csr, nthreads);
    let threads = partition
        .ranges
        .iter()
        .map(|range| {
            let local = csr.row_slice(range.start, range.end);
            let mut lower_coo = CooMatrix::new(local.nrows(), local.ncols());
            for (i, j, v) in local.iter() {
                if j < range.start + i {
                    lower_coo.push(i, j, v);
                }
            }
            let lower = CsrMatrix::from_coo(&lower_coo);
            let choice = match kind {
                FormatKind::SymCsr => FormatChoice {
                    kind,
                    r: 1,
                    c: 1,
                    width,
                    bytes: sym_csr_bytes(local.nrows(), lower.nnz(), width),
                    fill_ratio: 1.0,
                },
                FormatKind::SymBcsr => {
                    let est = estimate_fill(&lower, r, c);
                    FormatChoice {
                        kind,
                        r,
                        c,
                        width,
                        bytes: crate::tuning::footprint::sym_bcsr_bytes(local.nrows(), &est, width),
                        fill_ratio: if est.fill_ratio.is_finite() {
                            est.fill_ratio
                        } else {
                            1.0
                        },
                    }
                }
                _ => unreachable!("admissibility check rejects other kinds"),
            };
            ThreadPlan {
                rows: range.clone(),
                prefetch_distance: 0,
                nta_hint: false,
                simd: false,
                decisions: vec![BlockDecision {
                    rows: 0..local.nrows(),
                    cols: 0..local.ncols(),
                    choice,
                    nnz: local.nnz(),
                }],
            }
        })
        .collect();
    Some(TunePlan {
        nrows: csr.nrows(),
        ncols: csr.ncols(),
        nnz: csr.nnz(),
        symmetric: true,
        threads,
    })
}

/// Generate the labelled candidate plans a search at `budget` would time.
/// The heuristic plan is always first; every returned plan validates against
/// `csr` and duplicates (identical plans reached through different knobs) are
/// dropped.
pub fn candidate_plans(
    csr: &CsrMatrix,
    nthreads: usize,
    config: &TuningConfig,
    budget: SearchBudget,
) -> Vec<(String, TunePlan)> {
    let mut out: Vec<(String, TunePlan)> = Vec::new();
    let push = |label: String, plan: Option<TunePlan>, out: &mut Vec<(String, TunePlan)>| {
        if let Some(plan) = plan {
            if plan.validate_for(csr).is_ok() && !out.iter().any(|(_, p)| *p == plan) {
                out.push((label, plan));
            }
        }
    };
    push(
        "heuristic".to_string(),
        Some(TunePlan::new(csr, nthreads, config)),
        &mut out,
    );
    if budget == SearchBudget::Heuristic {
        return out;
    }

    // The optimization-ladder rungs as whole plans, plus single-knob toggles
    // of the caller's config.
    let ladder = [
        ("naive", TuningConfig::naive()),
        ("register-only", TuningConfig::register_only()),
        ("register-cache", TuningConfig::register_and_cache()),
        (
            "no-symmetry",
            TuningConfig {
                exploit_symmetry: false,
                ..*config
            },
        ),
        (
            "u32-indices",
            TuningConfig {
                allow_u16_indices: false,
                ..*config
            },
        ),
        (
            "no-prefetch",
            TuningConfig {
                software_prefetch: false,
                ..*config
            },
        ),
        // The SIMD knob both ways: measured, never assumed. On hosts whose
        // feature probe fails the two plans are identical (the knob degrades
        // at planning time) and dedup keeps one.
        (
            "no-simd",
            TuningConfig {
                simd: false,
                ..*config
            },
        ),
        (
            "simd",
            TuningConfig {
                simd: true,
                ..*config
            },
        ),
    ];
    for (label, cfg) in ladder {
        push(
            label.to_string(),
            Some(TunePlan::new(csr, nthreads, &cfg)),
            &mut out,
        );
    }
    if budget == SearchBudget::Pruned {
        return out;
    }

    // Exhaustive: force every whole-plan shape. Index width is the narrowest
    // admissible (the heuristic's own rule); CSR additionally sweeps both.
    for (r, c) in register_block_candidates() {
        push(
            format!("bcsr{r}x{c}"),
            forced_general_plan(csr, nthreads, config, ForcedKind::Bcsr(r, c)),
            &mut out,
        );
        push(
            format!("bcoo{r}x{c}"),
            forced_general_plan(csr, nthreads, config, ForcedKind::Bcoo(r, c)),
            &mut out,
        );
    }
    for width in [IndexWidth::U16, IndexWidth::U32] {
        let w = match width {
            IndexWidth::U16 => "u16",
            IndexWidth::U32 => "u32",
        };
        push(
            format!("csr-{w}"),
            forced_general_plan(csr, nthreads, config, ForcedKind::Csr(width)),
            &mut out,
        );
        push(
            format!("gcsr-{w}"),
            forced_general_plan(csr, nthreads, config, ForcedKind::Gcsr(width)),
            &mut out,
        );
    }
    // Symmetric slab encodings, when the heuristic established symmetry (the
    // first candidate is the heuristic plan).
    if out[0].1.symmetric {
        for width in [IndexWidth::U16, IndexWidth::U32] {
            let w = match width {
                IndexWidth::U16 => "u16",
                IndexWidth::U32 => "u32",
            };
            push(
                format!("symcsr-{w}"),
                forced_symmetric_plan(csr, nthreads, FormatKind::SymCsr, 1, 1, width),
                &mut out,
            );
            for (r, c) in [(2, 2), (3, 3), (4, 4)] {
                push(
                    format!("symbcsr{r}x{c}-{w}"),
                    forced_symmetric_plan(csr, nthreads, FormatKind::SymBcsr, r, c, width),
                    &mut out,
                );
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Timed evaluation
// ---------------------------------------------------------------------------

/// Median seconds per single whole-plan SpMV of `plan`, executed serially
/// through [`PreparedMatrix`] (the bit-identical reference of the parallel
/// engine, so the ranking transfers). Returns `None` when the plan fails to
/// materialize.
pub fn time_plan(csr: &CsrMatrix, plan: &TunePlan, eval_ms: u64) -> Option<f64> {
    let prepared = PreparedMatrix::materialize(csr, plan).ok()?;
    let x: Vec<f64> = (0..csr.ncols()).map(|i| (i % 17) as f64 * 0.25).collect();
    let mut y = vec![0.0; csr.nrows()];
    // Warm once (faults pages, fills caches), then calibrate the batch size so
    // each of the timed runs spans roughly a third of the budget.
    prepared.spmv(&x, &mut y);
    let t0 = Instant::now();
    prepared.spmv(&x, &mut y);
    let once = t0.elapsed().as_secs_f64().max(1e-9);
    let reps = ((eval_ms.max(1) as f64 / 1e3 / TIMING_RUNS as f64) / once)
        .ceil()
        .clamp(1.0, 1e6) as usize;
    let secs = median_timing(TIMING_RUNS, || {
        let t = Instant::now();
        for _ in 0..reps {
            prepared.spmv(&x, &mut y);
        }
        t.elapsed().as_secs_f64()
    })
    .max(1e-12);
    Some(secs / reps as f64)
}

/// Run the measured whole-plan search with the default per-candidate budget.
pub fn autotune(
    csr: &CsrMatrix,
    nthreads: usize,
    config: &TuningConfig,
    budget: SearchBudget,
) -> Autotuned {
    autotune_timed(csr, nthreads, config, budget, DEFAULT_EVAL_MS)
}

/// [`autotune`] with an explicit per-candidate timing budget (milliseconds).
/// The heuristic plan is always a candidate, so the winner is never a plan the
/// search measured as slower than the heuristic.
pub fn autotune_timed(
    csr: &CsrMatrix,
    nthreads: usize,
    config: &TuningConfig,
    budget: SearchBudget,
    eval_ms: u64,
) -> Autotuned {
    let plans = candidate_plans(csr, nthreads, config, budget);
    if budget == SearchBudget::Heuristic || plans.len() == 1 {
        let (label, plan) = plans.into_iter().next().expect("heuristic always present");
        return Autotuned {
            plan,
            label,
            from_cache: false,
            candidates: Vec::new(),
        };
    }
    let mut candidates = Vec::with_capacity(plans.len());
    let mut best: Option<(usize, f64)> = None;
    for (i, (label, plan)) in plans.iter().enumerate() {
        let Some(secs) = time_plan(csr, plan, eval_ms) else {
            continue;
        };
        candidates.push(CandidateTiming {
            label: label.clone(),
            secs_per_spmv: secs,
            planned_bytes: plan.planned_bytes(),
        });
        if best.is_none_or(|(_, b)| secs < b) {
            best = Some((i, secs));
        }
    }
    let idx = best.map_or(0, |(i, _)| i);
    let (label, plan) = plans[idx].clone();
    Autotuned {
        plan,
        label,
        from_cache: false,
        candidates,
    }
}

// ---------------------------------------------------------------------------
// Matrix fingerprints
// ---------------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a, the checksum/fingerprint hash of this module (stable,
/// dependency-free, endianness-independent over the byte stream we feed it).
fn fnv1a(state: u64, bytes: &[u8]) -> u64 {
    let mut h = state;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A structural identity for a matrix: dimensions, nonzero count, and a hash
/// over the row-length sequence, every stored `(column, value-bits)` pair, and
/// quantized 2×2/4×4 block-fill estimates. Two reads of the same file
/// fingerprint identically; permuting rows or perturbing any value changes the
/// fingerprint. Computing it is one O(nnz) pass — the same cost class as the
/// tuning passes it gates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MatrixFingerprint {
    /// Rows of the fingerprinted matrix.
    pub nrows: usize,
    /// Columns of the fingerprinted matrix.
    pub ncols: usize,
    /// Logical nonzeros of the fingerprinted matrix.
    pub nnz: usize,
    /// The structural hash.
    pub hash: u64,
}

impl MatrixFingerprint {
    /// Fingerprint `csr`.
    pub fn compute(csr: &CsrMatrix) -> MatrixFingerprint {
        let mut h = fnv1a(FNV_OFFSET, b"spmv-fp-v1");
        for dim in [csr.nrows(), csr.ncols(), csr.nnz()] {
            h = fnv1a(h, &(dim as u64).to_le_bytes());
        }
        // Row-length sequence (order-sensitive: a row permutation changes it
        // unless the permuted rows are structurally identical — the entry
        // stream below catches those too).
        for i in 0..csr.nrows() {
            h = fnv1a(h, &(csr.row_nnz(i) as u32).to_le_bytes());
        }
        // Every stored entry: column index and exact value bits.
        for (_, j, v) in csr.iter() {
            h = fnv1a(h, &(j as u32).to_le_bytes());
            h = fnv1a(h, &v.to_bits().to_le_bytes());
        }
        // Block-fill samples: the register-blocking profile at 2×2 and 4×4,
        // quantized so the fingerprint stays exact-arithmetic-stable.
        for (r, c) in [(2, 2), (4, 4)] {
            let est = estimate_fill(csr, r, c);
            let q = if est.fill_ratio.is_finite() {
                (est.fill_ratio * 4096.0).round() as u64
            } else {
                u64::MAX
            };
            h = fnv1a(h, &q.to_le_bytes());
        }
        MatrixFingerprint {
            nrows: csr.nrows(),
            ncols: csr.ncols(),
            nnz: csr.nnz(),
            hash: h,
        }
    }

    /// The filesystem-safe key string (`<hash>-<rows>x<cols>-<nnz>`).
    pub fn key(&self) -> String {
        format!(
            "{:016x}-{}x{}-{}",
            self.hash, self.nrows, self.ncols, self.nnz
        )
    }
}

// ---------------------------------------------------------------------------
// The persistent tune cache
// ---------------------------------------------------------------------------

/// A directory of winning tune plans, keyed by fingerprint × platform ×
/// thread count × tuning-config digest. Entries are the plain-text
/// `spmv-tune-plan v1` profile wrapped in a checksummed header; anything that
/// fails the checksum, the key match, or plan validation is rejected. The
/// config digest in the key means registries with different tuning policies
/// (symmetry off, different blocking budgets) can safely share one cache
/// without serving each other plans their own config forbids. Hit/miss/search
/// counters let tests (and operators) prove a warm cache skips the measured
/// search entirely.
#[derive(Debug)]
pub struct TuneCache {
    dir: PathBuf,
    platform: String,
    hits: AtomicU64,
    misses: AtomicU64,
    searches: AtomicU64,
    search_ns: AtomicU64,
}

impl TuneCache {
    /// Open (creating if needed) a cache directory for this host's platform.
    pub fn open(dir: impl AsRef<Path>) -> Result<TuneCache> {
        Self::with_platform(dir, Self::host_platform())
    }

    /// [`TuneCache::open`] with an explicit platform key (profiles measured on
    /// one machine must not be served to another).
    pub fn with_platform(dir: impl AsRef<Path>, platform: impl Into<String>) -> Result<TuneCache> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)
            .map_err(|e| Error::Parse(format!("tune cache: cannot create {dir:?}: {e}")))?;
        Ok(TuneCache {
            dir,
            platform: platform.into(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            searches: AtomicU64::new(0),
            search_ns: AtomicU64::new(0),
        })
    }

    /// The host platform key (`<arch>-<os>+<features>`). The detected vector
    /// feature set is part of the key: a cache written on an AVX2 host must
    /// never hand a SIMD plan to a host without it (entries written before the
    /// feature token existed simply miss — different file name, no corruption).
    pub fn host_platform() -> String {
        format!(
            "{}-{}+{}",
            std::env::consts::ARCH,
            std::env::consts::OS,
            crate::kernels::simd::feature_suffix()
        )
    }

    /// The platform key entries are stored under.
    pub fn platform(&self) -> &str {
        &self.platform
    }

    /// The digest a [`TuningConfig`] contributes to the entry key: plans
    /// searched under one policy (e.g. symmetry on) must not be served to a
    /// registry tuned under another.
    pub fn config_key(config: &TuningConfig) -> String {
        format!(
            "{:016x}",
            fnv1a(FNV_OFFSET, format!("{config:?}").as_bytes())
        )
    }

    /// The file a `(fingerprint, thread count, tuning config)` entry lives in.
    pub fn entry_path(
        &self,
        fp: &MatrixFingerprint,
        nthreads: usize,
        config: &TuningConfig,
    ) -> PathBuf {
        self.dir.join(format!(
            "{}-{}-t{}-c{}.plan",
            fp.key(),
            self.platform,
            nthreads,
            Self::config_key(config)
        ))
    }

    /// Cache hits observed so far (validated lookups).
    pub fn hit_count(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses observed so far (absent, unreadable, or rejected entries).
    pub fn miss_count(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Measured searches this cache has had to run (the counter hook the
    /// cache-hit tests assert on: a warm hit must not increment it).
    pub fn search_count(&self) -> u64 {
        self.searches.load(Ordering::Relaxed)
    }

    /// Total wall nanoseconds spent inside measured searches (the
    /// search-duration half of the cache's telemetry: together with
    /// [`TuneCache::search_count`] it yields mean search cost, and a warm
    /// cache proves itself by this number staying flat).
    pub fn search_nanos(&self) -> u64 {
        self.search_ns.load(Ordering::Relaxed)
    }

    /// Persist `plan` as the winner for `(fp, nthreads, config)` on this
    /// platform. The write is staged to a temp file and renamed, so concurrent
    /// readers never observe a torn entry.
    pub fn store(
        &self,
        fp: &MatrixFingerprint,
        nthreads: usize,
        config: &TuningConfig,
        plan: &TunePlan,
    ) -> Result<()> {
        let plan_text = plan.to_text();
        let text = format!(
            "spmv-tune-cache v1\nkey {} platform {} threads {} config {}\nchecksum {:016x}\n{}",
            fp.key(),
            self.platform,
            nthreads,
            Self::config_key(config),
            fnv1a(FNV_OFFSET, plan_text.as_bytes()),
            plan_text
        );
        let path = self.entry_path(fp, nthreads, config);
        let tmp = path.with_extension(format!("tmp{}", std::process::id()));
        std::fs::write(&tmp, text)
            .and_then(|()| std::fs::rename(&tmp, &path))
            .map_err(|e| Error::Parse(format!("tune cache: cannot write {path:?}: {e}")))
    }

    /// Strictly load the entry for `(fp, nthreads, config)`: `Ok(None)` when
    /// absent, `Err` when present but tampered/truncated/mismatched. Does not
    /// touch the hit/miss counters — [`TuneCache::lookup`] is the counting
    /// path.
    pub fn load_entry(
        &self,
        fp: &MatrixFingerprint,
        nthreads: usize,
        config: &TuningConfig,
    ) -> Result<Option<TunePlan>> {
        let path = self.entry_path(fp, nthreads, config);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => {
                return Err(Error::Parse(format!(
                    "tune cache: cannot read {path:?}: {e}"
                )))
            }
        };
        let bad = |msg: &str| Error::Parse(format!("tune cache entry {path:?}: {msg}"));
        let mut parts = text.splitn(4, '\n');
        let header = parts.next().unwrap_or("");
        if header != "spmv-tune-cache v1" {
            return Err(bad("unknown header"));
        }
        let key_line: Vec<&str> = parts.next().unwrap_or("").split_whitespace().collect();
        if key_line.len() != 8
            || key_line[0] != "key"
            || key_line[1] != fp.key()
            || key_line[2] != "platform"
            || key_line[3] != self.platform
            || key_line[4] != "threads"
            || key_line[5] != nthreads.to_string()
            || key_line[6] != "config"
            || key_line[7] != Self::config_key(config)
        {
            return Err(bad("key line does not match the requested entry"));
        }
        let checksum_line: Vec<&str> = parts.next().unwrap_or("").split_whitespace().collect();
        let [_, declared] = checksum_line[..] else {
            return Err(bad("malformed checksum line"));
        };
        let plan_text = parts.next().ok_or_else(|| bad("missing plan body"))?;
        let actual = format!("{:016x}", fnv1a(FNV_OFFSET, plan_text.as_bytes()));
        if declared != actual {
            return Err(bad("checksum mismatch (entry tampered or truncated)"));
        }
        let plan = TunePlan::from_text(plan_text)?;
        if plan.num_threads() != nthreads {
            return Err(bad("plan thread count does not match the entry key"));
        }
        Ok(Some(plan))
    }

    /// Look up a validated plan for `csr` tuned under `config`: a hit requires
    /// a well-formed entry whose plan validates against the matrix; everything
    /// else (absent, tampered, stale) counts as a miss and returns `None`.
    pub fn lookup(
        &self,
        fp: &MatrixFingerprint,
        nthreads: usize,
        config: &TuningConfig,
        csr: &CsrMatrix,
    ) -> Option<TunePlan> {
        match self.load_entry(fp, nthreads, config) {
            Ok(Some(plan)) if plan.validate_for(csr).is_ok() => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                spmv_obs::trace::trace(spmv_obs::TraceKind::TuneHit, fp.hash, 0);
                Some(plan)
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                spmv_obs::trace::trace(spmv_obs::TraceKind::TuneMiss, fp.hash, 0);
                None
            }
        }
    }

    /// The cached search entry point: fingerprint, look up, and only on a miss
    /// run the measured search (counting it) and persist the winner.
    pub fn autotune(
        &self,
        csr: &CsrMatrix,
        nthreads: usize,
        config: &TuningConfig,
        budget: SearchBudget,
    ) -> Result<Autotuned> {
        self.autotune_timed(csr, nthreads, config, budget, DEFAULT_EVAL_MS)
    }

    /// [`TuneCache::autotune`] with an explicit per-candidate timing budget.
    pub fn autotune_timed(
        &self,
        csr: &CsrMatrix,
        nthreads: usize,
        config: &TuningConfig,
        budget: SearchBudget,
        eval_ms: u64,
    ) -> Result<Autotuned> {
        let fp = MatrixFingerprint::compute(csr);
        if let Some(plan) = self.lookup(&fp, nthreads, config, csr) {
            return Ok(Autotuned {
                plan,
                label: "cache".to_string(),
                from_cache: true,
                candidates: Vec::new(),
            });
        }
        self.searches.fetch_add(1, Ordering::Relaxed);
        let t0 = std::time::Instant::now();
        let outcome = autotune_timed(csr, nthreads, config, budget, eval_ms);
        let elapsed = spmv_obs::saturating_nanos(t0.elapsed());
        self.search_ns.fetch_add(elapsed, Ordering::Relaxed);
        spmv_obs::trace::trace(spmv_obs::TraceKind::TuneSearch, elapsed, 0);
        self.store(&fp, nthreads, config, &outcome.plan)?;
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_csr(nrows: usize, ncols: usize, nnz: usize, seed: u64) -> CsrMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut coo = CooMatrix::new(nrows, ncols);
        for _ in 0..nnz {
            coo.push(
                rng.random_range(0..nrows),
                rng.random_range(0..ncols),
                rng.random_range(-1.0..1.0),
            );
        }
        CsrMatrix::from_coo(&coo)
    }

    fn symmetric_csr(n: usize, lower_nnz: usize, seed: u64) -> CsrMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut coo = CooMatrix::new(n, n);
        for _ in 0..lower_nnz {
            let i = rng.random_range(0..n);
            let j = rng.random_range(0..=i);
            let v = rng.random_range(-2.0..2.0);
            coo.push(i, j, v);
            if i != j {
                coo.push(j, i, v);
            }
        }
        CsrMatrix::from_coo(&coo)
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("spmv_tune_cache_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn heuristic_budget_skips_timing() {
        let csr = random_csr(120, 100, 1200, 1);
        let outcome = autotune(&csr, 2, &TuningConfig::full(), SearchBudget::Heuristic);
        assert_eq!(outcome.label, "heuristic");
        assert!(outcome.candidates.is_empty());
        assert_eq!(outcome.plan, TunePlan::new(&csr, 2, &TuningConfig::full()));
    }

    #[test]
    fn every_candidate_plan_is_valid_and_round_trips() {
        for (csr, threads) in [
            (random_csr(150, 130, 1500, 2), 3),
            (symmetric_csr(90, 400, 3), 2),
        ] {
            let plans = candidate_plans(
                &csr,
                threads,
                &TuningConfig::full(),
                SearchBudget::Exhaustive,
            );
            assert!(plans.len() > 10, "exhaustive sweep is broad");
            assert_eq!(plans[0].0, "heuristic");
            for (label, plan) in &plans {
                plan.validate_for(&csr)
                    .unwrap_or_else(|e| panic!("{label}: {e}"));
                let back =
                    TunePlan::from_text(&plan.to_text()).unwrap_or_else(|e| panic!("{label}: {e}"));
                assert_eq!(*plan, back, "{label}: profile round trip");
                PreparedMatrix::materialize(&csr, plan).unwrap_or_else(|e| panic!("{label}: {e}"));
            }
        }
    }

    #[test]
    fn search_winner_is_never_measured_slower_than_heuristic() {
        let csr = random_csr(200, 180, 2500, 4);
        let outcome = autotune_timed(&csr, 1, &TuningConfig::full(), SearchBudget::Pruned, 1);
        let heuristic = outcome
            .candidates
            .iter()
            .find(|c| c.label == "heuristic")
            .expect("heuristic always timed");
        let winner = outcome
            .candidates
            .iter()
            .find(|c| c.label == outcome.label)
            .expect("winner was timed");
        assert!(winner.secs_per_spmv <= heuristic.secs_per_spmv);
    }

    #[test]
    fn fingerprints_are_deterministic_and_structure_sensitive() {
        let a = random_csr(60, 50, 500, 7);
        assert_eq!(
            MatrixFingerprint::compute(&a),
            MatrixFingerprint::compute(&a.clone())
        );
        // A different seed, a perturbed value, and a row swap all change it.
        let b = random_csr(60, 50, 500, 8);
        assert_ne!(
            MatrixFingerprint::compute(&a),
            MatrixFingerprint::compute(&b)
        );
        let mut coo = a.to_coo();
        let perturbed: Vec<(usize, usize, f64)> = coo
            .entries()
            .iter()
            .enumerate()
            .map(|(k, t)| (t.row, t.col, if k == 0 { t.val + 1e-12 } else { t.val }))
            .collect();
        coo = CooMatrix::from_triplets(60, 50, perturbed).unwrap();
        assert_ne!(
            MatrixFingerprint::compute(&a),
            MatrixFingerprint::compute(&CsrMatrix::from_coo(&coo))
        );
    }

    #[test]
    fn cache_round_trips_and_counts() {
        let dir = temp_dir("round_trip");
        let cache = TuneCache::with_platform(&dir, "test-plat").unwrap();
        let csr = random_csr(80, 70, 800, 9);
        let fp = MatrixFingerprint::compute(&csr);
        let config = TuningConfig::full();
        assert!(cache.lookup(&fp, 2, &config, &csr).is_none());
        assert_eq!(cache.miss_count(), 1);

        let plan = TunePlan::new(&csr, 2, &config);
        cache.store(&fp, 2, &config, &plan).unwrap();
        let back = cache.lookup(&fp, 2, &config, &csr).expect("warm hit");
        assert_eq!(back, plan);
        assert_eq!(cache.hit_count(), 1);
        // A different thread count is a different entry, and so is a
        // different tuning config: a policy that forbids what the cached plan
        // uses must not be served it.
        assert!(cache.lookup(&fp, 3, &config, &csr).is_none());
        assert!(cache.lookup(&fp, 2, &TuningConfig::naive(), &csr).is_none());
        assert_ne!(
            TuneCache::config_key(&config),
            TuneCache::config_key(&TuningConfig::naive())
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn platform_digest_includes_the_detected_feature_set() {
        // The platform component of the cache key carries the SIMD feature
        // suffix, so an AVX2-host cache can never hand a SIMD plan to a host
        // that only detects scalar: the filenames simply differ.
        let plat = TuneCache::host_platform();
        let suffix = crate::kernels::simd::feature_suffix();
        assert!(
            plat.ends_with(&format!("+{suffix}")),
            "host platform {plat:?} must end with +{suffix}"
        );
        assert_eq!(plat.matches('+').count(), 1);
    }

    #[test]
    fn old_platform_entries_become_clean_misses_after_feature_key_change() {
        // Entries written under the pre-feature-suffix platform string must be
        // invisible — a clean miss, never a corruption error — once the cache
        // keys on the detected feature set.
        let dir = temp_dir("feature_migration");
        let csr = random_csr(80, 70, 800, 21);
        let fp = MatrixFingerprint::compute(&csr);
        let config = TuningConfig::full();
        let plan = TunePlan::new(&csr, 2, &config);

        // Simulate a cache populated before the key change: bare arch-os.
        let old = TuneCache::with_platform(&dir, "x86_64-linux").unwrap();
        old.store(&fp, 2, &config, &plan).unwrap();
        assert!(old.lookup(&fp, 2, &config, &csr).is_some());

        // Reopening the same directory with the feature-suffixed platform
        // sees a different entry path: strict load reports absent (no error)
        // and lookup counts a miss rather than tripping validation.
        let new = TuneCache::with_platform(&dir, "x86_64-linux+avx2fma").unwrap();
        assert_ne!(
            old.entry_path(&fp, 2, &config),
            new.entry_path(&fp, 2, &config)
        );
        assert!(matches!(new.load_entry(&fp, 2, &config), Ok(None)));
        assert!(new.lookup(&fp, 2, &config, &csr).is_none());
        assert_eq!(new.miss_count(), 1);

        // The old handle still hits its own entry, and the new platform can
        // populate its own slot alongside without clobbering the old one.
        new.store(&fp, 2, &config, &plan).unwrap();
        assert!(new.lookup(&fp, 2, &config, &csr).is_some());
        assert!(old.lookup(&fp, 2, &config, &csr).is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tampered_entries_are_rejected() {
        let dir = temp_dir("tamper");
        let cache = TuneCache::with_platform(&dir, "test-plat").unwrap();
        let csr = random_csr(50, 50, 400, 10);
        let fp = MatrixFingerprint::compute(&csr);
        let config = TuningConfig::full();
        let plan = TunePlan::new(&csr, 1, &config);
        cache.store(&fp, 1, &config, &plan).unwrap();

        let path = cache.entry_path(&fp, 1, &config);
        let text = std::fs::read_to_string(&path).unwrap();
        // Flip a digit inside the plan body without touching the checksum.
        let tampered = text.replacen("thread 0 ", "thread 1 ", 1);
        assert_ne!(text, tampered, "tampering must change the entry");
        std::fs::write(&path, tampered).unwrap();
        assert!(
            cache.load_entry(&fp, 1, &config).is_err(),
            "checksum must reject"
        );
        assert!(
            cache.lookup(&fp, 1, &config, &csr).is_none(),
            "lookup treats it as a miss"
        );

        // Truncation is rejected too.
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        assert!(cache.load_entry(&fp, 1, &config).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cached_autotune_searches_once() {
        let dir = temp_dir("once");
        let cache = TuneCache::with_platform(&dir, "test-plat").unwrap();
        let csr = random_csr(100, 90, 900, 11);
        let first = cache
            .autotune_timed(&csr, 2, &TuningConfig::full(), SearchBudget::Pruned, 1)
            .unwrap();
        assert!(!first.from_cache);
        assert_eq!(cache.search_count(), 1);
        let second = cache
            .autotune_timed(&csr, 2, &TuningConfig::full(), SearchBudget::Pruned, 1)
            .unwrap();
        assert!(second.from_cache);
        assert_eq!(second.label, "cache");
        assert_eq!(second.plan, first.plan);
        assert_eq!(cache.search_count(), 1, "warm hit must not search again");
        std::fs::remove_dir_all(&dir).ok();
    }
}
