//! Machine-readable form of the paper's Table 2: which optimization applies to which
//! architecture family, and with what caveat.

/// The architecture families of Table 2's columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArchFamily {
    /// AMD Opteron X2 and Intel Clovertown (out-of-order superscalar x86).
    X86,
    /// Sun Niagara (in-order, heavily multithreaded).
    Niagara,
    /// STI Cell SPEs (in-order SIMD with software-managed local store).
    Cell,
}

impl ArchFamily {
    /// All families, in the paper's column order.
    pub fn all() -> [ArchFamily; 3] {
        [ArchFamily::X86, ArchFamily::Niagara, ArchFamily::Cell]
    }

    /// Column label used by the Table 2 report.
    pub fn label(&self) -> &'static str {
        match self {
            ArchFamily::X86 => "x86",
            ArchFamily::Niagara => "Niagara",
            ArchFamily::Cell => "Cell",
        }
    }
}

/// The three optimization classes of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptimizationClass {
    /// Low-level code optimizations (no data-structure change).
    Code,
    /// Data structure optimizations.
    DataStructure,
    /// Parallelization optimizations.
    Parallelization,
}

impl OptimizationClass {
    /// Section heading used by the report.
    pub fn label(&self) -> &'static str {
        match self {
            OptimizationClass::Code => "Code Optimization",
            OptimizationClass::DataStructure => "Data Structure Optimization",
            OptimizationClass::Parallelization => "Parallelization Optimization",
        }
    }
}

/// Whether an optimization was applied on an architecture, per Table 2's footnotes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Applicability {
    /// Applied and beneficial (a check mark in Table 2).
    Applied,
    /// Implemented but gave no significant speedup (footnote 8).
    NoSpeedup,
    /// Not applicable on this architecture (e.g. SIMDization on Niagara).
    NotApplicable,
    /// Not attempted.
    NotAttempted,
}

/// One row of Table 2.
#[derive(Debug, Clone)]
pub struct OptimizationEntry {
    /// Human-readable optimization name as printed in the paper.
    pub name: &'static str,
    /// Which of the three classes it belongs to.
    pub class: OptimizationClass,
    /// Applicability on (x86, Niagara, Cell) in that order.
    pub applicability: [Applicability; 3],
    /// Which module of this reproduction implements it.
    pub module: &'static str,
}

/// The full contents of Table 2, with a pointer from every row to the module of this
/// codebase that implements it.
pub fn table2() -> Vec<OptimizationEntry> {
    use Applicability::*;
    use OptimizationClass::*;
    vec![
        OptimizationEntry {
            name: "Software pipelining",
            class: Code,
            applicability: [NoSpeedup, Applied, Applied],
            module: "spmv_core::kernels::pipelined",
        },
        OptimizationEntry {
            name: "Branchless / segmented scan",
            class: Code,
            applicability: [NoSpeedup, Applied, Applied],
            module: "spmv_core::kernels::branchless",
        },
        OptimizationEntry {
            name: "SIMDization",
            class: Code,
            applicability: [Applied, NotApplicable, Applied],
            module: "spmv_core::kernels::unrolled",
        },
        OptimizationEntry {
            name: "Pointer arithmetic",
            class: Code,
            applicability: [NoSpeedup, Applied, NotAttempted],
            module: "spmv_core::kernels::single_loop",
        },
        OptimizationEntry {
            name: "Prefetch/DMA values & indices",
            class: Code,
            applicability: [Applied, Applied, Applied],
            module: "spmv_core::kernels::prefetch / spmv_archsim::localstore",
        },
        OptimizationEntry {
            name: "Prefetch/DMA pointers & vectors",
            class: Code,
            applicability: [NotAttempted, NotAttempted, Applied],
            module: "spmv_archsim::localstore",
        },
        OptimizationEntry {
            name: "Block coordinate (BCOO) storage",
            class: DataStructure,
            applicability: [Applied, Applied, NotAttempted],
            module: "spmv_core::formats::bcoo",
        },
        OptimizationEntry {
            name: "16-bit indices",
            class: DataStructure,
            applicability: [Applied, Applied, Applied],
            module: "spmv_core::formats::index",
        },
        OptimizationEntry {
            name: "32-bit indices",
            class: DataStructure,
            applicability: [Applied, Applied, NotAttempted],
            module: "spmv_core::formats::index",
        },
        OptimizationEntry {
            name: "Register blocking",
            class: DataStructure,
            applicability: [Applied, Applied, NotAttempted],
            module: "spmv_core::formats::bcsr / blocking::register",
        },
        OptimizationEntry {
            name: "Cache blocking",
            class: DataStructure,
            applicability: [Applied, Applied, Applied],
            module: "spmv_core::blocking::cache",
        },
        OptimizationEntry {
            name: "TLB blocking",
            class: DataStructure,
            applicability: [Applied, Applied, NotAttempted],
            module: "spmv_core::blocking::tlb",
        },
        OptimizationEntry {
            name: "Threading",
            class: Parallelization,
            applicability: [Applied, Applied, Applied],
            module: "spmv_parallel::pool",
        },
        OptimizationEntry {
            name: "Row parallelization",
            class: Parallelization,
            applicability: [Applied, Applied, Applied],
            module: "spmv_core::partition::row",
        },
        OptimizationEntry {
            name: "NUMA-aware mapping",
            class: Parallelization,
            applicability: [Applied, NotAttempted, NoSpeedup],
            module: "spmv_parallel::numa",
        },
        OptimizationEntry {
            name: "Process affinity",
            class: Parallelization,
            applicability: [Applied, NoSpeedup, Applied],
            module: "spmv_parallel::affinity",
        },
        OptimizationEntry {
            name: "Memory affinity",
            class: Parallelization,
            applicability: [Applied, NotApplicable, Applied],
            module: "spmv_parallel::numa",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_all_three_classes() {
        let t = table2();
        for class in [
            OptimizationClass::Code,
            OptimizationClass::DataStructure,
            OptimizationClass::Parallelization,
        ] {
            assert!(
                t.iter().any(|e| e.class == class),
                "missing class {class:?}"
            );
        }
        assert!(t.len() >= 15);
    }

    #[test]
    fn every_entry_names_a_module() {
        for e in table2() {
            assert!(
                e.module.contains("spmv_"),
                "entry {} lacks module pointer",
                e.name
            );
        }
    }

    #[test]
    fn simd_not_applicable_on_niagara() {
        let t = table2();
        let simd = t.iter().find(|e| e.name == "SIMDization").unwrap();
        assert_eq!(simd.applicability[1], Applicability::NotApplicable);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(ArchFamily::X86.label(), "x86");
        assert_eq!(ArchFamily::all().len(), 3);
        assert_eq!(OptimizationClass::Code.label(), "Code Optimization");
    }
}
