//! The serializable tune-time plan of the two-phase pipeline.
//!
//! Phase one (*tune*) runs the blocking passes and the footprint heuristic and
//! records every decision — row partition, per-cache-block format kind, register
//! block shape, index width, and the per-thread prefetch annotation — in a
//! [`TunePlan`]. Phase two (*prepare*, [`crate::tuning::prepared`]) materializes a
//! plan into kernel-bound storage, ideally on the thread that will execute it so
//! first-touch places the pages locally.
//!
//! Separating the two phases buys what OSKI's save/restore buys without its search
//! cost: the plan is a small plain-text profile (`TunePlan::to_text` /
//! `TunePlan::from_text`), so the one-pass tuning cost can be amortized across
//! program runs, while materialization stays where the data must live.

use crate::error::{Error, Result};
use crate::formats::csr::CsrMatrix;
use crate::formats::index::IndexWidth;
use crate::formats::traits::MatrixShape;
use crate::kernels::KernelVariant;
use crate::partition::row::{partition_rows_balanced, RowPartition};
use crate::tuning::footprint::{FormatChoice, FormatKind};
use crate::tuning::heuristic::{plan_block_decisions, BlockDecision, TuningConfig};
use std::ops::Range;

/// Thread blocks whose planned footprint exceeds this many bytes get a software
/// prefetch annotation: their matrix streams cannot live in cache, so prefetching
/// the value/index streams ahead of the compute cursor hides DRAM latency. Smaller
/// blocks are reused out of cache, where prefetch only costs issue slots.
pub const PREFETCH_FOOTPRINT_BYTES: usize = 1 << 19;

/// The prefetch distance (in nonzeros) the planner annotates large blocks with —
/// the middle of the paper's swept range, a robust default across its machines.
pub const PLANNED_PREFETCH_DISTANCE: usize = 64;

/// One thread's share of the plan: its global row range, the cache-block decisions
/// for that range (in block-local row coordinates), and the prefetch annotation.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadPlan {
    /// Global row range this thread block owns.
    pub rows: Range<usize>,
    /// Software-prefetch distance in nonzeros for the block's streaming (CSR)
    /// storage; 0 disables prefetch.
    pub prefetch_distance: usize,
    /// Use the non-temporal hint (`prefetchnta`) rather than all-levels.
    pub nta_hint: bool,
    /// Execute this block with the explicit SIMD microkernels
    /// ([`crate::kernels::simd`]). Only ever planned `true` on hosts whose
    /// runtime feature probe succeeds; loading a profile that requests SIMD on
    /// a host without it degrades to `false` with a warning.
    pub simd: bool,
    /// Per-cache-block decisions, rows/cols local to the thread block.
    pub decisions: Vec<BlockDecision>,
}

impl ThreadPlan {
    /// The CSR code variant this plan binds for its streaming blocks, derived
    /// once from the prefetch annotation.
    pub fn stream_variant(&self) -> KernelVariant {
        match (self.prefetch_distance, self.nta_hint) {
            (0, _) => KernelVariant::SingleLoop,
            (d, true) => KernelVariant::PrefetchNta(d),
            (d, false) => KernelVariant::Prefetch(d),
        }
    }

    /// Predicted bytes of the materialized block (sum of the chosen encodings).
    pub fn planned_bytes(&self) -> usize {
        self.decisions.iter().map(|d| d.choice.bytes).sum()
    }

    /// Logical nonzeros covered by the plan's decisions.
    pub fn planned_nnz(&self) -> usize {
        self.decisions.iter().map(|d| d.nnz).sum()
    }
}

/// A complete tune-time plan: the row partition plus one [`ThreadPlan`] per thread.
#[derive(Debug, Clone, PartialEq)]
pub struct TunePlan {
    /// Rows of the matrix the plan was produced for.
    pub nrows: usize,
    /// Columns of the matrix the plan was produced for.
    pub ncols: usize,
    /// Logical nonzeros of the matrix the plan was produced for.
    pub nnz: usize,
    /// Whether the plan stores only the lower triangle (symmetric pipeline):
    /// every thread holds exactly one `SymCsr`/`SymBcsr` slab decision, and
    /// execution needs full-length destinations plus the deterministic scratch
    /// reduction (`PreparedMatrix` serial, `SpmvEngine` parallel).
    pub symmetric: bool,
    /// Per-thread plans, in thread order; their row ranges tile `0..nrows`.
    pub threads: Vec<ThreadPlan>,
}

impl TunePlan {
    /// Plan `csr` for `nthreads` threads: partition rows balancing nonzeros, then
    /// run the footprint heuristic independently on every thread block, exactly as
    /// the paper tunes each thread's share in isolation.
    ///
    /// When the config enables [`TuningConfig::exploit_symmetry`] and the matrix
    /// is detected square-and-symmetric, the plan switches to the symmetric
    /// pipeline automatically (Section 4.2's symmetry optimization: halved
    /// value/index traffic).
    pub fn new(csr: &CsrMatrix, nthreads: usize, config: &TuningConfig) -> TunePlan {
        if config.exploit_symmetry && csr.nnz() > 0 && crate::formats::symcsr::is_symmetric(csr) {
            return Self::symmetric_plan(csr, nthreads, config);
        }
        let partition = partition_rows_balanced(csr, nthreads);
        TunePlan::from_partition(csr, &partition.ranges, config)
    }

    /// Plan a matrix the caller *declares* symmetric. Verifies the declaration
    /// (exact pattern-and-value symmetry) and fails otherwise, instead of
    /// silently producing wrong products.
    pub fn new_symmetric(
        csr: &CsrMatrix,
        nthreads: usize,
        config: &TuningConfig,
    ) -> Result<TunePlan> {
        if !crate::formats::symcsr::is_symmetric(csr) {
            return Err(Error::InvalidStructure(
                "matrix declared symmetric is not (pattern or values differ from transpose)"
                    .to_string(),
            ));
        }
        Ok(Self::symmetric_plan(csr, nthreads, config))
    }

    /// The symmetric planning pass: one lower-triangle slab decision per thread,
    /// chosen by footprint among `SymCsr`/`SymBcsr` × shapes × index widths.
    /// The caller has already established symmetry (crate-visible so `tune_csr`
    /// does not pay the O(nnz) detection twice).
    pub(crate) fn symmetric_plan(
        csr: &CsrMatrix,
        nthreads: usize,
        config: &TuningConfig,
    ) -> TunePlan {
        let partition = partition_rows_balanced(csr, nthreads);
        Self::plan_over_partition(csr, &partition.ranges, true, |local, range| {
            let decision =
                crate::tuning::heuristic::plan_symmetric_thread(local, range.start, config);
            ThreadPlan {
                rows: range.clone(),
                // The prefetch annotation binds a CSR *code variant*, which
                // symmetric slabs do not execute; leave it off. The SIMD
                // microkernels cover the general formats only, so symmetric
                // slabs stay scalar too.
                prefetch_distance: 0,
                nta_hint: false,
                simd: false,
                decisions: vec![decision],
            }
        })
    }

    /// Plan `csr` over an explicit row partition (the NUMA decomposition passes
    /// its hierarchical node × core partition through here).
    pub fn from_partition(
        csr: &CsrMatrix,
        ranges: &[Range<usize>],
        config: &TuningConfig,
    ) -> TunePlan {
        Self::plan_over_partition(csr, ranges, false, |local, range| {
            let decisions = plan_block_decisions(local, config);
            let planned_bytes: usize = decisions.iter().map(|d| d.choice.bytes).sum();
            let prefetch = config.software_prefetch && planned_bytes > PREFETCH_FOOTPRINT_BYTES;
            ThreadPlan {
                rows: range.clone(),
                prefetch_distance: if prefetch {
                    PLANNED_PREFETCH_DISTANCE
                } else {
                    0
                },
                nta_hint: prefetch,
                // The knob is only planned on when the host can execute it,
                // so a freshly tuned plan always round-trips exactly.
                simd: config.simd && crate::kernels::simd::available(),
                decisions,
            }
        })
    }

    /// The planning sequence the general and symmetric pipelines share: slice
    /// the matrix along the row partition, run `plan_thread` on every local
    /// block (the paper tunes each thread's share in isolation), and assemble
    /// the per-thread plans with the matrix's shape metadata.
    fn plan_over_partition(
        csr: &CsrMatrix,
        ranges: &[Range<usize>],
        symmetric: bool,
        mut plan_thread: impl FnMut(&CsrMatrix, &Range<usize>) -> ThreadPlan,
    ) -> TunePlan {
        let threads = ranges
            .iter()
            .map(|range| {
                let local = csr.row_slice(range.start, range.end);
                plan_thread(&local, range)
            })
            .collect();
        TunePlan {
            nrows: csr.nrows(),
            ncols: csr.ncols(),
            nnz: csr.nnz(),
            symmetric,
            threads,
        }
    }

    /// Number of thread blocks the plan describes.
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// The row partition the plan encodes.
    pub fn row_partition(&self) -> RowPartition {
        RowPartition {
            ranges: self.threads.iter().map(|t| t.rows.clone()).collect(),
        }
    }

    /// Predicted bytes of the fully materialized structure.
    pub fn planned_bytes(&self) -> usize {
        self.threads.iter().map(|t| t.planned_bytes()).sum()
    }

    /// Check the plan matches `csr`: same shape and nonzero count, and a row
    /// partition that tiles the matrix. A plan loaded from disk must pass this
    /// before materialization.
    pub fn validate_for(&self, csr: &CsrMatrix) -> Result<()> {
        if self.nrows != csr.nrows() || self.ncols != csr.ncols() {
            return Err(Error::DimensionMismatch {
                expected: self.nrows,
                found: csr.nrows(),
                what: "plan matrix shape",
            });
        }
        if self.nnz != csr.nnz() {
            return Err(Error::InvalidStructure(format!(
                "plan expects {} nonzeros, matrix has {}",
                self.nnz,
                csr.nnz()
            )));
        }
        // Well-formed ranges first: `RowPartition::covers` assumes ordered ranges,
        // so a reversed range from a hand-edited profile must be caught here (it
        // would otherwise panic deep inside `row_slice`/`sub_block`).
        for t in &self.threads {
            if t.rows.start > t.rows.end {
                return Err(Error::InvalidStructure(format!(
                    "plan thread range {:?} is reversed",
                    t.rows
                )));
            }
            for d in &t.decisions {
                if d.rows.start > d.rows.end || d.cols.start > d.cols.end {
                    return Err(Error::InvalidStructure(format!(
                        "plan block range {:?}x{:?} is reversed",
                        d.rows, d.cols
                    )));
                }
            }
        }
        if !self.row_partition().covers(self.nrows) {
            return Err(Error::InvalidStructure(
                "plan row partition does not tile the matrix".to_string(),
            ));
        }
        // Symmetric plans: square matrix, exactly one lower-triangle slab
        // decision per thread; general plans must not carry symmetric kinds
        // (a hand-edited profile mixing the two would break the executors'
        // disjoint-write/scratch-reduction assumptions).
        if self.symmetric {
            if self.nrows != self.ncols {
                return Err(Error::InvalidStructure(
                    "symmetric plan requires a square matrix".to_string(),
                ));
            }
            for t in &self.threads {
                if t.decisions.len() != 1 || !t.decisions[0].choice.kind.is_symmetric() {
                    return Err(Error::InvalidStructure(
                        "symmetric plan threads must hold exactly one symmetric slab decision"
                            .to_string(),
                    ));
                }
            }
        } else if self
            .threads
            .iter()
            .flat_map(|t| t.decisions.iter())
            .any(|d| d.choice.kind.is_symmetric())
        {
            return Err(Error::InvalidStructure(
                "symmetric slab decisions appear in a plan not marked symmetric".to_string(),
            ));
        }
        Ok(())
    }

    /// Serialize as the plain-text profile format (see module docs). The format is
    /// line-oriented and versioned; floats use Rust's shortest round-trip notation.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("spmv-tune-plan v1\n");
        let _ = writeln!(out, "matrix {} {} {}", self.nrows, self.ncols, self.nnz);
        let _ = writeln!(out, "threads {}", self.threads.len());
        if self.symmetric {
            out.push_str("symmetric\n");
        }
        for t in &self.threads {
            let _ = writeln!(
                out,
                "thread {} {} prefetch {} {}{}",
                t.rows.start,
                t.rows.end,
                t.prefetch_distance,
                if t.nta_hint { "nta" } else { "t0" },
                if t.simd { " simd" } else { "" }
            );
            for d in &t.decisions {
                let _ = writeln!(
                    out,
                    "block {} {} {} {} {} {} {} {} {} {} {}",
                    d.rows.start,
                    d.rows.end,
                    d.cols.start,
                    d.cols.end,
                    kind_name(d.choice.kind),
                    d.choice.r,
                    d.choice.c,
                    width_name(d.choice.width),
                    d.nnz,
                    d.choice.bytes,
                    d.choice.fill_ratio
                );
            }
        }
        out.push_str("end\n");
        out
    }

    /// Parse the plain-text profile format written by [`TunePlan::to_text`].
    ///
    /// A `simd` annotation in the profile is honored only when this host's
    /// runtime feature probe succeeds; otherwise the plan degrades to the
    /// scalar kernels with a warning (never a panic, never a silent
    /// miscompute — the scalar ladder computes the same product).
    pub fn from_text(text: &str) -> Result<TunePlan> {
        Self::from_text_with_simd_support(text, crate::kernels::simd::available())
    }

    /// [`TunePlan::from_text`] with the host capability made explicit, so the
    /// degrade path is testable on any machine.
    pub fn from_text_with_simd_support(text: &str, simd_supported: bool) -> Result<TunePlan> {
        let mut lines = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'));
        let header = lines.next().ok_or_else(|| parse_err("empty plan"))?;
        if header != "spmv-tune-plan v1" {
            return Err(parse_err(&format!("unknown plan header '{header}'")));
        }
        let matrix = fields(
            lines
                .next()
                .ok_or_else(|| parse_err("missing matrix line"))?,
        )?;
        let [nrows, ncols, nnz] = expect_tag(&matrix, "matrix", 3)?[..] else {
            unreachable!("expect_tag returned 3 fields")
        };
        let thread_count_line = fields(
            lines
                .next()
                .ok_or_else(|| parse_err("missing threads line"))?,
        )?;
        let [nthreads] = expect_tag(&thread_count_line, "threads", 1)?[..] else {
            unreachable!("expect_tag returned 1 field")
        };

        let mut threads: Vec<ThreadPlan> = Vec::with_capacity(nthreads);
        let mut symmetric = false;
        let mut saw_end = false;
        let mut warned_simd = false;
        for line in lines {
            let toks: Vec<&str> = line.split_whitespace().collect();
            match toks[0] {
                "symmetric" => {
                    if !threads.is_empty() {
                        return Err(parse_err("'symmetric' must precede the thread lines"));
                    }
                    symmetric = true;
                }
                "thread" => {
                    let simd_tok = match toks.len() {
                        6 => false,
                        7 if toks[6] == "simd" => true,
                        _ => return Err(parse_err(&format!("malformed thread line '{line}'"))),
                    };
                    if toks[3] != "prefetch" {
                        return Err(parse_err(&format!("malformed thread line '{line}'")));
                    }
                    if simd_tok && !simd_supported && !warned_simd {
                        eprintln!(
                            "spmv: plan profile requests SIMD kernels this host lacks; \
                             degrading to the scalar kernel ladder"
                        );
                        warned_simd = true;
                    }
                    threads.push(ThreadPlan {
                        rows: parse_usize(toks[1])?..parse_usize(toks[2])?,
                        prefetch_distance: parse_usize(toks[4])?,
                        nta_hint: match toks[5] {
                            "nta" => true,
                            "t0" => false,
                            other => {
                                return Err(parse_err(&format!("unknown prefetch hint '{other}'")))
                            }
                        },
                        simd: simd_tok && simd_supported,
                        decisions: Vec::new(),
                    });
                }
                "block" => {
                    if toks.len() != 12 {
                        return Err(parse_err(&format!("malformed block line '{line}'")));
                    }
                    let thread = threads
                        .last_mut()
                        .ok_or_else(|| parse_err("block line before any thread line"))?;
                    thread.decisions.push(BlockDecision {
                        rows: parse_usize(toks[1])?..parse_usize(toks[2])?,
                        cols: parse_usize(toks[3])?..parse_usize(toks[4])?,
                        choice: FormatChoice {
                            kind: parse_kind(toks[5])?,
                            r: parse_usize(toks[6])?,
                            c: parse_usize(toks[7])?,
                            width: parse_width(toks[8])?,
                            bytes: parse_usize(toks[10])?,
                            fill_ratio: toks[11]
                                .parse::<f64>()
                                .map_err(|e| parse_err(&e.to_string()))?,
                        },
                        nnz: parse_usize(toks[9])?,
                    });
                }
                "end" => {
                    saw_end = true;
                    break;
                }
                other => return Err(parse_err(&format!("unknown plan directive '{other}'"))),
            }
        }
        if !saw_end {
            return Err(parse_err("plan is truncated (missing 'end')"));
        }
        if threads.len() != nthreads {
            return Err(parse_err(&format!(
                "plan declares {} threads but lists {}",
                nthreads,
                threads.len()
            )));
        }
        Ok(TunePlan {
            nrows,
            ncols,
            nnz,
            symmetric,
            threads,
        })
    }

    /// Write the plan profile to `path`.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_text())
    }

    /// Load a plan profile from `path`.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<TunePlan> {
        let text = std::fs::read_to_string(path).map_err(|e| Error::Parse(e.to_string()))?;
        TunePlan::from_text(&text)
    }
}

fn kind_name(kind: FormatKind) -> &'static str {
    kind.token()
}

fn width_name(width: IndexWidth) -> &'static str {
    match width {
        IndexWidth::U16 => "u16",
        IndexWidth::U32 => "u32",
    }
}

fn parse_kind(tok: &str) -> Result<FormatKind> {
    FormatKind::from_token(tok).ok_or_else(|| parse_err(&format!("unknown format kind '{tok}'")))
}

fn parse_width(tok: &str) -> Result<IndexWidth> {
    Ok(match tok {
        "u16" => IndexWidth::U16,
        "u32" => IndexWidth::U32,
        other => return Err(parse_err(&format!("unknown index width '{other}'"))),
    })
}

fn parse_err(msg: &str) -> Error {
    Error::Parse(format!("tune plan: {msg}"))
}

fn parse_usize(tok: &str) -> Result<usize> {
    tok.parse::<usize>().map_err(|e| parse_err(&e.to_string()))
}

fn fields(line: &str) -> Result<Vec<String>> {
    Ok(line.split_whitespace().map(str::to_string).collect())
}

fn expect_tag(toks: &[String], tag: &str, args: usize) -> Result<Vec<usize>> {
    if toks.len() != args + 1 || toks[0] != tag {
        return Err(parse_err(&format!(
            "expected '{tag}' line with {args} fields"
        )));
    }
    toks[1..].iter().map(|t| parse_usize(t)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formats::CooMatrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_csr(nrows: usize, ncols: usize, nnz: usize, seed: u64) -> CsrMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut coo = CooMatrix::new(nrows, ncols);
        for _ in 0..nnz {
            coo.push(
                rng.random_range(0..nrows),
                rng.random_range(0..ncols),
                rng.random_range(-1.0..1.0),
            );
        }
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn plan_partitions_and_covers() {
        let csr = random_csr(400, 300, 5000, 1);
        let plan = TunePlan::new(&csr, 4, &TuningConfig::full());
        assert_eq!(plan.num_threads(), 4);
        assert!(plan.row_partition().covers(400));
        assert!(plan.validate_for(&csr).is_ok());
        assert_eq!(
            plan.threads.iter().map(|t| t.planned_nnz()).sum::<usize>(),
            csr.nnz()
        );
        assert!(plan.planned_bytes() > 0);
    }

    #[test]
    fn text_round_trip_is_exact() {
        let csr = random_csr(250, 180, 3000, 2);
        for config in [
            TuningConfig::naive(),
            TuningConfig::register_only(),
            TuningConfig::full(),
        ] {
            let plan = TunePlan::new(&csr, 3, &config);
            let back = TunePlan::from_text(&plan.to_text()).expect("round trip parses");
            assert_eq!(plan, back, "config {config:?}");
        }
    }

    #[test]
    fn save_load_round_trip() {
        let csr = random_csr(120, 90, 900, 3);
        let plan = TunePlan::new(&csr, 2, &TuningConfig::full());
        let path = std::env::temp_dir().join("spmv_tune_plan_test.profile");
        plan.save(&path).expect("save plan");
        let back = TunePlan::load(&path).expect("load plan");
        std::fs::remove_file(&path).ok();
        assert_eq!(plan, back);
    }

    #[test]
    fn parser_rejects_malformed_profiles() {
        assert!(TunePlan::from_text("").is_err());
        assert!(TunePlan::from_text("not-a-plan v1\n").is_err());
        assert!(TunePlan::from_text("spmv-tune-plan v1\nmatrix 1 1 0\nthreads 1\n").is_err()); // truncated
        assert!(TunePlan::from_text(
            "spmv-tune-plan v1\nmatrix 1 1 0\nthreads 2\nthread 0 1 prefetch 0 t0\nend\n"
        )
        .is_err()); // thread count mismatch
        assert!(TunePlan::from_text(
            "spmv-tune-plan v1\nmatrix 1 1 0\nthreads 1\nblock 0 1 0 1 csr 1 1 u32 0 0 1.0\nend\n"
        )
        .is_err()); // block before thread
    }

    #[test]
    fn validate_rejects_mismatched_matrix() {
        let csr = random_csr(100, 100, 800, 4);
        let plan = TunePlan::new(&csr, 2, &TuningConfig::full());
        let other = random_csr(100, 100, 700, 5);
        assert!(plan.validate_for(&other).is_err());
        let wrong_shape = random_csr(90, 100, 800, 6);
        assert!(plan.validate_for(&wrong_shape).is_err());
    }

    #[test]
    fn validate_rejects_reversed_ranges() {
        // A hand-edited profile with a reversed thread range must fail validation
        // cleanly (not panic later inside row_slice/sub_block).
        let csr = random_csr(10, 10, 40, 9);
        let text = format!(
            "spmv-tune-plan v1\nmatrix 10 10 {}\nthreads 3\n\
             thread 0 5 prefetch 0 t0\nthread 5 2 prefetch 0 t0\nthread 2 10 prefetch 0 t0\nend\n",
            csr.nnz()
        );
        let text = text.as_str();
        let plan = TunePlan::from_text(text).expect("syntactically valid");
        assert!(plan.validate_for(&csr).is_err());

        // Reversed block-decision ranges are rejected too.
        let mut plan = TunePlan::new(&csr, 1, &TuningConfig::naive());
        for d in &mut plan.threads[0].decisions {
            d.rows = d.rows.end..d.rows.start;
        }
        assert!(plan.validate_for(&csr).is_err());
    }

    #[test]
    fn prefetch_annotation_tracks_footprint() {
        // A large streaming matrix must be annotated; a tiny one must not.
        let big = random_csr(4000, 60_000, 90_000, 7);
        let plan = TunePlan::new(&big, 1, &TuningConfig::full());
        assert!(plan.threads[0].prefetch_distance > 0);
        assert!(matches!(
            plan.threads[0].stream_variant(),
            KernelVariant::PrefetchNta(_)
        ));

        let small = random_csr(50, 50, 300, 8);
        let small_plan = TunePlan::new(&small, 1, &TuningConfig::full());
        assert_eq!(small_plan.threads[0].prefetch_distance, 0);
        assert_eq!(
            small_plan.threads[0].stream_variant(),
            KernelVariant::SingleLoop
        );

        // And the annotation is off when the config disables it.
        let no_pf = TunePlan::new(&big, 1, &TuningConfig::naive());
        assert_eq!(no_pf.threads[0].prefetch_distance, 0);
    }

    #[test]
    fn simd_annotation_round_trips_on_capable_hosts() {
        let csr = random_csr(200, 150, 2500, 10);
        let plan = TunePlan::new(&csr, 2, &TuningConfig::full());
        let expect_simd = crate::kernels::simd::available();
        assert!(plan.threads.iter().all(|t| t.simd == expect_simd));
        let text = plan.to_text();
        assert_eq!(text.contains(" simd"), expect_simd);
        let back = TunePlan::from_text(&text).expect("round trip parses");
        assert_eq!(plan, back);
    }

    #[test]
    fn simd_profile_degrades_to_scalar_on_unsupported_hosts() {
        // The load must not panic and must not keep the knob on: a host without
        // the feature set silently running the vector path would miscompute (or
        // crash on illegal instructions); the scalar ladder computes the same
        // product, so degrading is always safe.
        let csr = random_csr(60, 60, 500, 11);
        let mut plan = TunePlan::new(&csr, 2, &TuningConfig::naive());
        for t in &mut plan.threads {
            t.simd = true;
        }
        let text = plan.to_text();
        assert!(text.contains(" simd"));

        let degraded =
            TunePlan::from_text_with_simd_support(&text, false).expect("degrades, not errors");
        assert!(degraded.threads.iter().all(|t| !t.simd));
        assert!(degraded.validate_for(&csr).is_ok());

        let kept = TunePlan::from_text_with_simd_support(&text, true).expect("parses");
        assert!(kept.threads.iter().all(|t| t.simd));
        assert_eq!(kept, plan);
    }

    #[test]
    fn malformed_simd_token_is_rejected() {
        let text = "spmv-tune-plan v1\nmatrix 1 1 0\nthreads 1\n\
                    thread 0 1 prefetch 0 t0 vectorize\nend\n";
        assert!(TunePlan::from_text(text).is_err());
    }

    #[test]
    fn empty_matrix_plans_empty_threads() {
        let csr = CsrMatrix::from_coo(&CooMatrix::new(0, 10));
        let plan = TunePlan::new(&csr, 3, &TuningConfig::full());
        assert_eq!(plan.num_threads(), 3);
        assert!(plan.threads.iter().all(|t| t.decisions.is_empty()));
        assert!(plan.validate_for(&csr).is_ok());
        let back = TunePlan::from_text(&plan.to_text()).unwrap();
        assert_eq!(plan, back);
    }
}
