//! The one-pass footprint-minimizing tuner.
//!
//! This is the paper's replacement for OSKI's search: "our implementation performs
//! one pass over the nonzeros to determine the combination of register blocking,
//! index size, first/last row, and format that minimizes the matrix footprint"
//! (Section 4.2), applied independently to every cache block produced by the cache
//! and TLB blocking passes.

use crate::blocking::blocked::{BlockFormat, CacheBlock, CacheBlockedMatrix};
use crate::blocking::cache::{cache_block, CacheBlockingConfig};
use crate::blocking::tlb::{tlb_block, TlbConfig};
use crate::error::{Error, Result};
use crate::formats::bcoo::BcooMatrix;
use crate::formats::bcsr::BcsrAuto;
use crate::formats::coo::CooMatrix;
use crate::formats::csr::{CompressedCsr, CsrMatrix};
use crate::formats::gcsr::GcsrMatrix;
use crate::formats::traits::{MatrixShape, SpMv};
use crate::tuning::footprint::{best_choice, CandidateOptions, FormatChoice, FormatKind};
use std::ops::Range;

/// Configuration of the full tuning pipeline — the knobs of paper Table 2's
/// "Data Structure Optimization" column.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TuningConfig {
    /// Cache blocking budget; `None` disables cache blocking entirely.
    pub cache_blocking: Option<CacheBlockingConfig>,
    /// TLB blocking budget; `None` disables the TLB pass.
    pub tlb_blocking: Option<TlbConfig>,
    /// Consider register block shapes other than 1×1.
    pub register_blocking: bool,
    /// Consider 16-bit index compression.
    pub allow_u16_indices: bool,
    /// Consider BCOO storage for blocks with many empty rows.
    pub allow_bcoo: bool,
    /// Consider GCSR storage.
    pub allow_gcsr: bool,
    /// Annotate large streaming thread blocks with software prefetch
    /// (consumed by the two-phase [`crate::tuning::plan::TunePlan`] pipeline).
    pub software_prefetch: bool,
    /// Store detected square-and-symmetric matrices as diagonal + strictly-lower
    /// triangle (`SymCsr`/`SymBcsr`), halving off-diagonal value/index traffic.
    /// Consumed by [`tune_csr`] and `TunePlan::new`; the scoped executors
    /// (`ParallelTuned`, NUMA decomposition) plan with this off because their
    /// disjoint-slice writes cannot express the symmetric scatter.
    pub exploit_symmetry: bool,
    /// Execute streaming CSR and the covered BCSR shapes with the explicit
    /// SIMD microkernels ([`crate::kernels::simd`]). Planned on only when the
    /// host's runtime feature probe succeeds, so plans stay portable.
    pub simd: bool,
}

impl TuningConfig {
    /// Everything enabled with default budgets — the "all optimizations" (`*`) bars
    /// of Figure 1.
    pub fn full() -> Self {
        TuningConfig {
            cache_blocking: Some(CacheBlockingConfig::default()),
            tlb_blocking: Some(TlbConfig::default()),
            register_blocking: true,
            allow_u16_indices: true,
            allow_bcoo: true,
            allow_gcsr: true,
            software_prefetch: true,
            exploit_symmetry: true,
            simd: true,
        }
    }

    /// No data-structure optimization at all: plain CSR (the naive bar).
    pub fn naive() -> Self {
        TuningConfig {
            cache_blocking: None,
            tlb_blocking: None,
            register_blocking: false,
            allow_u16_indices: false,
            allow_bcoo: false,
            allow_gcsr: false,
            software_prefetch: false,
            exploit_symmetry: false,
            simd: false,
        }
    }

    /// Register blocking only (the `+RB` rung of Figure 1's optimization ladder).
    pub fn register_only() -> Self {
        TuningConfig {
            register_blocking: true,
            allow_u16_indices: true,
            ..Self::naive()
        }
    }

    /// Register + cache blocking (the `+RB,CB` rung of Figure 1).
    pub fn register_and_cache() -> Self {
        TuningConfig {
            cache_blocking: Some(CacheBlockingConfig::default()),
            ..Self::register_only()
        }
    }

    fn candidate_options(&self) -> CandidateOptions {
        CandidateOptions {
            register_blocking: self.register_blocking,
            allow_u16: self.allow_u16_indices,
            allow_bcoo: self.allow_bcoo,
            allow_gcsr: self.allow_gcsr,
            // The byte-footprint objective only shifts when the plan will
            // actually dispatch vector microkernels on this host.
            prefer_simd_shapes: self.simd && crate::kernels::simd::available(),
        }
    }
}

impl Default for TuningConfig {
    fn default() -> Self {
        TuningConfig::full()
    }
}

/// Record of what the tuner decided for one cache block.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockDecision {
    /// Global row range of the block.
    pub rows: Range<usize>,
    /// Global column range of the block.
    pub cols: Range<usize>,
    /// The winning format choice.
    pub choice: FormatChoice,
    /// Nonzeros in the block.
    pub nnz: usize,
}

/// Summary of a tuning run.
#[derive(Debug, Clone, PartialEq)]
pub struct TuningReport {
    /// Per-block decisions.
    pub decisions: Vec<BlockDecision>,
    /// Footprint of the naive CSR encoding, for the compression-ratio headline.
    pub csr_bytes: usize,
    /// Footprint of the tuned encoding.
    pub tuned_bytes: usize,
}

impl TuningReport {
    /// Tuned bytes divided by CSR bytes (≤ 1.0 means the tuner helped).
    pub fn compression_ratio(&self) -> f64 {
        if self.csr_bytes == 0 {
            return 1.0;
        }
        self.tuned_bytes as f64 / self.csr_bytes as f64
    }
}

/// The storage the tuner materialized: a grid of independently-formatted cache
/// blocks for general matrices, or the symmetric prepared pipeline (diagonal +
/// strictly-lower slabs) when the matrix was detected symmetric.
#[derive(Debug, Clone)]
enum TunedStorage {
    Blocked(CacheBlockedMatrix),
    Symmetric(crate::tuning::prepared::PreparedMatrix),
}

/// The tuned matrix: the materialized storage plus the report describing it.
#[derive(Debug, Clone)]
pub struct TunedMatrix {
    storage: TunedStorage,
    report: TuningReport,
    config: TuningConfig,
}

impl TunedMatrix {
    /// The underlying cache-blocked matrix, when the tuner chose general
    /// storage; `None` when it chose the symmetric pipeline.
    pub fn matrix(&self) -> Option<&CacheBlockedMatrix> {
        match &self.storage {
            TunedStorage::Blocked(m) => Some(m),
            TunedStorage::Symmetric(_) => None,
        }
    }

    /// The symmetric prepared matrix, when the tuner exploited symmetry.
    pub fn symmetric(&self) -> Option<&crate::tuning::prepared::PreparedMatrix> {
        match &self.storage {
            TunedStorage::Blocked(_) => None,
            TunedStorage::Symmetric(m) => Some(m),
        }
    }

    /// Whether the tuner stored only the lower triangle.
    pub fn is_symmetric(&self) -> bool {
        matches!(self.storage, TunedStorage::Symmetric(_))
    }

    /// Number of materialized blocks (cache blocks, or symmetric slabs).
    pub fn num_blocks(&self) -> usize {
        match &self.storage {
            TunedStorage::Blocked(m) => m.num_blocks(),
            TunedStorage::Symmetric(m) => m.blocks().len(),
        }
    }

    /// A histogram of storage format names, for the tuning report.
    pub fn format_histogram(&self) -> Vec<(&'static str, usize)> {
        match &self.storage {
            TunedStorage::Blocked(m) => m.format_histogram(),
            TunedStorage::Symmetric(_) => {
                let mut counts: Vec<(&'static str, usize)> = Vec::new();
                for d in &self.report.decisions {
                    let name = match d.choice.kind {
                        FormatKind::SymCsr => "SymCSR",
                        FormatKind::SymBcsr => "SymBCSR",
                        _ => "other",
                    };
                    match counts.iter_mut().find(|(n, _)| *n == name) {
                        Some((_, c)) => *c += 1,
                        None => counts.push((name, 1)),
                    }
                }
                counts
            }
        }
    }

    /// The tuning report.
    pub fn report(&self) -> &TuningReport {
        &self.report
    }

    /// The configuration that produced this matrix.
    pub fn config(&self) -> &TuningConfig {
        &self.config
    }
}

impl MatrixShape for TunedMatrix {
    fn nrows(&self) -> usize {
        match &self.storage {
            TunedStorage::Blocked(m) => m.nrows(),
            TunedStorage::Symmetric(m) => m.nrows(),
        }
    }
    fn ncols(&self) -> usize {
        match &self.storage {
            TunedStorage::Blocked(m) => m.ncols(),
            TunedStorage::Symmetric(m) => m.ncols(),
        }
    }
    fn stored_entries(&self) -> usize {
        match &self.storage {
            TunedStorage::Blocked(m) => m.stored_entries(),
            TunedStorage::Symmetric(m) => m.stored_entries(),
        }
    }
    fn nnz(&self) -> usize {
        match &self.storage {
            TunedStorage::Blocked(m) => m.nnz(),
            TunedStorage::Symmetric(m) => m.nnz(),
        }
    }
    fn footprint_bytes(&self) -> usize {
        match &self.storage {
            TunedStorage::Blocked(m) => m.footprint_bytes(),
            TunedStorage::Symmetric(m) => m.footprint_bytes(),
        }
    }
}

impl SpMv for TunedMatrix {
    fn spmv(&self, x: &[f64], y: &mut [f64]) {
        match &self.storage {
            TunedStorage::Blocked(m) => m.spmv(x, y),
            TunedStorage::Symmetric(m) => m.spmv(x, y),
        }
    }
}

/// Materialize `choice` for the block-local CSR matrix, validating the choice
/// against the block (a plan loaded from disk may not match the matrix).
pub fn try_materialize(csr_block: &CsrMatrix, choice: &FormatChoice) -> Result<BlockFormat> {
    Ok(match choice.kind {
        FormatKind::SymCsr | FormatKind::SymBcsr => {
            return Err(Error::InvalidStructure(
                "symmetric slab decisions materialize through PreparedBlock, not cache blocks"
                    .to_string(),
            ))
        }
        FormatKind::Csr => BlockFormat::Csr(match choice.width {
            crate::formats::index::IndexWidth::U16 => CompressedCsr::U16(csr_block.reindex()?),
            crate::formats::index::IndexWidth::U32 => CompressedCsr::U32(csr_block.clone()),
        }),
        FormatKind::Gcsr => BlockFormat::Gcsr(GcsrMatrix::from_csr(csr_block, choice.width)?),
        FormatKind::Bcsr => BlockFormat::Bcsr(BcsrAuto::from_csr(
            csr_block,
            choice.r,
            choice.c,
            choice.width,
        )?),
        FormatKind::Bcoo => BlockFormat::Bcoo(BcooMatrix::from_csr(
            csr_block,
            choice.r,
            choice.c,
            choice.width,
        )?),
    })
}

/// Tune a matrix given as triplets. See [`tune_csr`].
pub fn tune(coo: &CooMatrix, config: &TuningConfig) -> TunedMatrix {
    tune_csr(&CsrMatrix::from_coo(coo), config)
}

/// Phase 1 + 2 of the tuning pipeline: the cache-block grid (row panels × column
/// ranges), with optional TLB refinement of each panel.
fn blocking_grid(csr: &CsrMatrix, config: &TuningConfig) -> Vec<(Range<usize>, Range<usize>)> {
    let nrows = csr.nrows();
    let ncols = csr.ncols();
    match &config.cache_blocking {
        None => {
            if nrows == 0 {
                vec![]
            } else {
                vec![(0..nrows, 0..ncols)]
            }
        }
        Some(cfg) => {
            let blocking = cache_block(csr, cfg);
            let mut cells = Vec::new();
            for (p, rows) in blocking.row_panels.iter().enumerate() {
                // The paper performs TLB blocking "between cache blocking rows and
                // cache blocking columns"; we intersect the TLB ranges with the
                // cache ranges, which yields the same bound on pages per block.
                let col_ranges: Vec<Range<usize>> = match &config.tlb_blocking {
                    None => blocking.col_ranges[p].clone(),
                    Some(tlb_cfg) => {
                        let tlb = tlb_block(csr, rows, tlb_cfg);
                        intersect_ranges(&blocking.col_ranges[p], &tlb.col_ranges)
                    }
                };
                for cols in col_ranges {
                    cells.push((rows.clone(), cols));
                }
            }
            cells
        }
    }
}

/// The planning half of the tuner: run the blocking passes and the footprint
/// heuristic, returning the per-cache-block decisions **without materializing
/// anything**. This is the tune-time product the two-phase pipeline serializes
/// ([`crate::tuning::plan::TunePlan`]); [`materialize_decisions`] is the
/// execution-side half.
pub fn plan_block_decisions(csr: &CsrMatrix, config: &TuningConfig) -> Vec<BlockDecision> {
    let opts = config.candidate_options();
    let grid = blocking_grid(csr, config);
    let coo_full = csr.to_coo();
    let mut decisions = Vec::with_capacity(grid.len());
    for (rows, cols) in grid {
        let sub_coo = coo_full.sub_block(rows.clone(), cols.clone());
        let sub_csr = CsrMatrix::from_coo(&sub_coo);
        if sub_csr.nnz() == 0 {
            // Empty blocks are dropped entirely: no storage, no work.
            continue;
        }
        let choice = best_choice(&sub_csr, &opts);
        decisions.push(BlockDecision {
            nnz: sub_csr.nnz(),
            rows,
            cols,
            choice,
        });
    }
    decisions
}

/// Plan one thread's **symmetric** slab: extract the strictly-lower triangle of
/// the thread's row slice (global rows `row_offset..row_offset + local.nrows()`,
/// global columns) and pick the smallest-footprint symmetric encoding
/// (`SymCsr`/`SymBcsr` × register shapes × index widths). The decision's `nnz`
/// counts the slice's *general-form* nonzeros, so per-thread planned nonzeros
/// still sum to the plan's total.
pub fn plan_symmetric_thread(
    local: &CsrMatrix,
    row_offset: usize,
    config: &TuningConfig,
) -> BlockDecision {
    let mut lower_coo = CooMatrix::new(local.nrows(), local.ncols());
    for (i, j, v) in local.iter() {
        if j < row_offset + i {
            lower_coo.push(i, j, v);
        }
    }
    let lower = CsrMatrix::from_coo(&lower_coo);
    let choice = crate::tuning::footprint::best_symmetric_choice(
        &lower,
        local.ncols(),
        &config.candidate_options(),
    );
    BlockDecision {
        rows: 0..local.nrows(),
        cols: 0..local.ncols(),
        choice,
        nnz: local.nnz(),
    }
}

/// The materialization half of the tuner: build the storage each decision names.
/// Fails (rather than panicking) when the decisions do not fit the matrix, which
/// can happen with a stale plan loaded from disk.
pub fn materialize_decisions(
    csr: &CsrMatrix,
    decisions: &[BlockDecision],
) -> Result<CacheBlockedMatrix> {
    let coo_full = csr.to_coo();
    let mut blocks = Vec::with_capacity(decisions.len());
    for d in decisions {
        if d.rows.start > d.rows.end
            || d.cols.start > d.cols.end
            || d.rows.end > csr.nrows()
            || d.cols.end > csr.ncols()
        {
            return Err(Error::InvalidStructure(format!(
                "plan block {:?}x{:?} does not fit the {}x{} matrix",
                d.rows,
                d.cols,
                csr.nrows(),
                csr.ncols()
            )));
        }
        let sub_coo = coo_full.sub_block(d.rows.clone(), d.cols.clone());
        let sub_csr = CsrMatrix::from_coo(&sub_coo);
        if sub_csr.nnz() != d.nnz {
            return Err(Error::InvalidStructure(format!(
                "plan block {:?}x{:?} expects {} nonzeros, matrix has {}",
                d.rows,
                d.cols,
                d.nnz,
                sub_csr.nnz()
            )));
        }
        blocks.push(CacheBlock {
            rows: d.rows.clone(),
            cols: d.cols.clone(),
            format: try_materialize(&sub_csr, &d.choice)?,
        });
    }
    Ok(CacheBlockedMatrix::new(csr.nrows(), csr.ncols(), blocks))
}

/// Run the full tuning pipeline on a CSR matrix.
///
/// Semantically this is [`plan_block_decisions`] followed by
/// [`materialize_decisions`], but fused into one pass so each sub-block CSR is
/// extracted once and used for both the format choice and the materialization
/// (the split halves exist for the two-phase pipeline, where planning and
/// materialization happen at different times and on different threads).
pub fn tune_csr(csr: &CsrMatrix, config: &TuningConfig) -> TunedMatrix {
    // Symmetric matrices take the lower-triangle pipeline when the config allows
    // it: plan one slab, materialize it through the shared two-phase path.
    // (`symmetric_plan` skips re-detection — symmetry was just established.)
    if config.exploit_symmetry && csr.nnz() > 0 && crate::formats::symcsr::is_symmetric(csr) {
        let plan = crate::tuning::plan::TunePlan::symmetric_plan(csr, 1, config);
        let prepared = crate::tuning::prepared::PreparedMatrix::materialize(csr, &plan)
            .expect("fresh symmetric plan matches its matrix");
        let decisions: Vec<BlockDecision> = plan
            .threads
            .iter()
            .flat_map(|t| t.decisions.iter().cloned())
            .collect();
        let report = TuningReport {
            decisions,
            csr_bytes: crate::tuning::footprint::csr_bytes(csr),
            tuned_bytes: prepared.footprint_bytes(),
        };
        return TunedMatrix {
            storage: TunedStorage::Symmetric(prepared),
            report,
            config: *config,
        };
    }
    let opts = config.candidate_options();
    let grid = blocking_grid(csr, config);
    let coo_full = csr.to_coo();
    let mut decisions = Vec::with_capacity(grid.len());
    let mut blocks = Vec::with_capacity(grid.len());
    for (rows, cols) in grid {
        let sub_coo = coo_full.sub_block(rows.clone(), cols.clone());
        let sub_csr = CsrMatrix::from_coo(&sub_coo);
        if sub_csr.nnz() == 0 {
            // Empty blocks are dropped entirely: no storage, no work.
            continue;
        }
        let choice = best_choice(&sub_csr, &opts);
        decisions.push(BlockDecision {
            rows: rows.clone(),
            cols: cols.clone(),
            choice,
            nnz: sub_csr.nnz(),
        });
        blocks.push(CacheBlock {
            rows,
            cols,
            format: try_materialize(&sub_csr, &choice)
                .expect("freshly chosen formats always fit their block"),
        });
    }
    let matrix = CacheBlockedMatrix::new(csr.nrows(), csr.ncols(), blocks);
    let report = TuningReport {
        decisions,
        csr_bytes: crate::tuning::footprint::csr_bytes(csr),
        tuned_bytes: matrix.footprint_bytes(),
    };
    TunedMatrix {
        storage: TunedStorage::Blocked(matrix),
        report,
        config: *config,
    }
}

/// Intersect two coverings of `0..ncols` into their common refinement.
fn intersect_ranges(a: &[Range<usize>], b: &[Range<usize>]) -> Vec<Range<usize>> {
    let mut cuts: Vec<usize> = Vec::new();
    for r in a.iter().chain(b.iter()) {
        cuts.push(r.start);
        cuts.push(r.end);
    }
    cuts.sort_unstable();
    cuts.dedup();
    cuts.windows(2)
        .map(|w| w[0]..w[1])
        .filter(|r| r.start < r.end)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::max_abs_diff;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_coo(nrows: usize, ncols: usize, nnz: usize, seed: u64) -> CooMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut coo = CooMatrix::new(nrows, ncols);
        for _ in 0..nnz {
            coo.push(
                rng.random_range(0..nrows),
                rng.random_range(0..ncols),
                rng.random_range(-1.0..1.0),
            );
        }
        coo
    }

    fn fem_like(nblocks: usize) -> CooMatrix {
        // Banded matrix of 4x4 dense blocks, FEM-style.
        let n = nblocks * 4;
        let mut coo = CooMatrix::new(n, n);
        for b in 0..nblocks {
            for nb in [b.wrapping_sub(1), b, b + 1] {
                if nb >= nblocks {
                    continue;
                }
                for i in 0..4 {
                    for j in 0..4 {
                        coo.push(b * 4 + i, nb * 4 + j, 1.0 + (i * j) as f64);
                    }
                }
            }
        }
        coo
    }

    #[test]
    fn every_config_produces_correct_results() {
        let coo = random_coo(300, 250, 3000, 77);
        let csr = CsrMatrix::from_coo(&coo);
        let x: Vec<f64> = (0..250).map(|i| (i as f64 * 0.11).cos()).collect();
        let reference = csr.spmv_alloc(&x);
        for config in [
            TuningConfig::naive(),
            TuningConfig::register_only(),
            TuningConfig::register_and_cache(),
            TuningConfig::full(),
        ] {
            let tuned = tune(&coo, &config);
            let y = tuned.spmv_alloc(&x);
            assert!(
                max_abs_diff(&reference, &y) < 1e-9,
                "config {config:?} produced wrong result"
            );
            assert_eq!(tuned.nnz(), csr.nnz());
        }
    }

    #[test]
    fn fem_matrix_footprint_shrinks_with_register_blocking() {
        let coo = fem_like(200);
        let naive = tune(&coo, &TuningConfig::naive());
        let rb = tune(&coo, &TuningConfig::register_only());
        assert!(rb.footprint_bytes() < naive.footprint_bytes());
        assert!(rb.report().compression_ratio() < 0.85);
        // At least one block should have picked a non-1x1 shape.
        assert!(rb
            .report()
            .decisions
            .iter()
            .any(|d| d.choice.r > 1 || d.choice.c > 1));
    }

    #[test]
    fn tuned_never_larger_than_csr() {
        for seed in 0..5 {
            let coo = random_coo(200, 200, 1500, seed);
            let tuned = tune(&coo, &TuningConfig::full());
            // The heuristic always has CSR as a candidate per block, and dropping
            // empty blocks can only help, so the tuned footprint is bounded by CSR's
            // plus per-block pointer overhead; allow a small slack for the extra
            // row-pointer arrays introduced by row-panel splitting.
            let slack = 1.10;
            assert!(
                (tuned.footprint_bytes() as f64) <= tuned.report().csr_bytes as f64 * slack,
                "seed {seed}: tuned {} vs csr {}",
                tuned.footprint_bytes(),
                tuned.report().csr_bytes
            );
        }
    }

    #[test]
    fn cache_blocking_splits_large_matrices() {
        let coo = random_coo(3000, 20_000, 30_000, 5);
        let cfg = TuningConfig {
            cache_blocking: Some(crate::blocking::cache::CacheBlockingConfig {
                total_lines: 64,
                source_fraction: 0.5,
                dense_spans: false,
            }),
            ..TuningConfig::full()
        };
        let tuned = tune(&coo, &cfg);
        assert!(tuned.num_blocks() > 1);
        let x: Vec<f64> = (0..20_000).map(|i| (i % 17) as f64).collect();
        let reference = CsrMatrix::from_coo(&coo).spmv_alloc(&x);
        assert!(max_abs_diff(&reference, &tuned.spmv_alloc(&x)) < 1e-9);
    }

    #[test]
    fn empty_matrix_tunes_to_nothing() {
        let coo = CooMatrix::new(100, 100);
        let tuned = tune(&coo, &TuningConfig::full());
        assert_eq!(tuned.num_blocks(), 0);
        assert_eq!(tuned.spmv_alloc(&vec![1.0; 100]), vec![0.0; 100]);
    }

    #[test]
    fn intersect_ranges_is_common_refinement() {
        let a = vec![0..10, 10..20];
        let b = vec![0..5, 5..20];
        let r = intersect_ranges(&a, &b);
        assert_eq!(r, vec![0..5, 5..10, 10..20]);
    }

    #[test]
    fn report_compression_ratio_sane() {
        let coo = fem_like(100);
        let tuned = tune(&coo, &TuningConfig::full());
        let ratio = tuned.report().compression_ratio();
        assert!(ratio > 0.3 && ratio <= 1.05, "ratio {ratio}");
        assert_eq!(tuned.report().tuned_bytes, tuned.footprint_bytes());
    }

    #[test]
    fn decisions_cover_all_nonzeros() {
        let coo = random_coo(500, 500, 4000, 9);
        let tuned = tune(&coo, &TuningConfig::full());
        let total: usize = tuned.report().decisions.iter().map(|d| d.nnz).sum();
        assert_eq!(total, CsrMatrix::from_coo(&coo).nnz());
    }
}
