//! Footprint models for candidate storage formats.
//!
//! Given the fill estimates produced by [`crate::blocking::register::estimate_fill`],
//! these routines compute the exact byte cost of every (format, block shape, index
//! width) combination so the heuristic can pick the minimum without materializing
//! anything.

use crate::blocking::register::{estimate_all_shapes, FillEstimate};
use crate::formats::csr::CsrMatrix;
use crate::formats::index::IndexWidth;
use crate::formats::traits::MatrixShape;
use crate::{INDEX32_BYTES, VALUE_BYTES};

/// Which storage family a choice refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FormatKind {
    /// Plain CSR (1×1, 32-bit indices, full row pointer).
    Csr,
    /// Register-blocked CSR.
    Bcsr,
    /// Block coordinate.
    Bcoo,
    /// Generalized CSR (occupied rows only, no register blocking).
    Gcsr,
    /// Symmetric CSR: dense diagonal + strictly-lower triangle, each
    /// off-diagonal entry applied twice (chosen only for symmetric matrices).
    SymCsr,
    /// Symmetric register-blocked CSR: dense diagonal + strictly-lower tiles.
    SymBcsr,
}

impl FormatKind {
    /// Whether this kind stores only the lower triangle and needs the symmetric
    /// execution path (full-length destinations, scratch reduction in parallel).
    pub fn is_symmetric(self) -> bool {
        matches!(self, FormatKind::SymCsr | FormatKind::SymBcsr)
    }

    /// The stable lower-case token used by the plain-text plan profile and the
    /// plan snapshots ([`FormatKind::from_token`] is its inverse).
    pub fn token(self) -> &'static str {
        match self {
            FormatKind::Csr => "csr",
            FormatKind::Bcsr => "bcsr",
            FormatKind::Bcoo => "bcoo",
            FormatKind::Gcsr => "gcsr",
            FormatKind::SymCsr => "symcsr",
            FormatKind::SymBcsr => "symbcsr",
        }
    }

    /// Parse a [`FormatKind::token`] back into the kind.
    pub fn from_token(tok: &str) -> Option<FormatKind> {
        Some(match tok {
            "csr" => FormatKind::Csr,
            "bcsr" => FormatKind::Bcsr,
            "bcoo" => FormatKind::Bcoo,
            "gcsr" => FormatKind::Gcsr,
            "symcsr" => FormatKind::SymCsr,
            "symbcsr" => FormatKind::SymBcsr,
            _ => return None,
        })
    }
}

/// A fully-specified storage decision for one matrix or cache block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FormatChoice {
    /// Storage family.
    pub kind: FormatKind,
    /// Register block rows (1 for CSR/GCSR).
    pub r: usize,
    /// Register block columns (1 for CSR/GCSR).
    pub c: usize,
    /// Index width.
    pub width: IndexWidth,
    /// Predicted storage bytes.
    pub bytes: usize,
    /// Predicted fill ratio (stored / logical nonzeros).
    pub fill_ratio: f64,
}

/// Exact CSR byte cost (the naive reference format, 32-bit column indices).
pub fn csr_bytes(csr: &CsrMatrix) -> usize {
    csr_bytes_at(csr, IndexWidth::U32)
}

/// Exact CSR byte cost with column indices stored at `width` (the paper's index
/// compression applied to plain CSR; the row pointer stays 32-bit).
pub fn csr_bytes_at(csr: &CsrMatrix, width: IndexWidth) -> usize {
    csr.nnz() * (VALUE_BYTES + width.bytes()) + (csr.nrows() + 1) * INDEX32_BYTES
}

/// Exact GCSR byte cost at a given index width.
pub fn gcsr_bytes(csr: &CsrMatrix, width: IndexWidth) -> usize {
    let occupied = csr.nrows() - csr.empty_rows();
    csr.nnz() * VALUE_BYTES
        + csr.nnz() * width.bytes()
        + occupied * width.bytes()
        + (occupied + 1) * INDEX32_BYTES
}

/// Exact [`crate::formats::SymCsr`] byte cost for a slab with `local_rows` rows
/// and `lower_nnz` strictly-lower entries (dense diagonal + lower CSR).
pub fn sym_csr_bytes(local_rows: usize, lower_nnz: usize, width: IndexWidth) -> usize {
    local_rows * VALUE_BYTES
        + lower_nnz * (VALUE_BYTES + width.bytes())
        + (local_rows + 1) * INDEX32_BYTES
}

/// Exact [`crate::formats::SymBcsr`] byte cost given a lower-triangle fill
/// estimate (dense diagonal + tiles + one block-column index per tile).
pub fn sym_bcsr_bytes(local_rows: usize, est: &FillEstimate, width: IndexWidth) -> usize {
    let nblock_rows = local_rows.div_ceil(est.r);
    local_rows * VALUE_BYTES
        + est.tiles * est.r * est.c * VALUE_BYTES
        + est.tiles * width.bytes()
        + (nblock_rows + 1) * INDEX32_BYTES
}

/// Enumerate every admissible symmetric `FormatChoice` for a row slab of a
/// symmetric matrix. `lower` is the slab's strictly-lower triangle as a CSR
/// matrix (local rows, global columns); `n` is the global dimension. The
/// `fill_ratio` recorded in each choice describes the lower-triangle tiling.
pub fn enumerate_symmetric_choices(
    lower: &CsrMatrix,
    n: usize,
    opts: &CandidateOptions,
) -> Vec<FormatChoice> {
    let local_rows = lower.nrows();
    let lower_nnz = lower.nnz();
    let mut out = Vec::new();

    let widths = |span: usize| -> Vec<IndexWidth> {
        let mut w = vec![IndexWidth::U32];
        if opts.allow_u16 && IndexWidth::U16.fits(span) {
            w.push(IndexWidth::U16);
        }
        w
    };

    // Pointwise symmetric CSR is always admissible (columns span the full
    // global dimension).
    for width in widths(n) {
        out.push(FormatChoice {
            kind: FormatKind::SymCsr,
            r: 1,
            c: 1,
            width,
            bytes: sym_csr_bytes(local_rows, lower_nnz, width),
            fill_ratio: 1.0,
        });
    }

    let estimates: Vec<FillEstimate> = if opts.register_blocking {
        crate::blocking::register::estimate_all_shapes(lower)
    } else {
        vec![crate::blocking::register::estimate_fill(lower, 1, 1)]
    };
    for est in &estimates {
        let nblock_cols = n.div_ceil(est.c);
        for width in widths(nblock_cols) {
            out.push(FormatChoice {
                kind: FormatKind::SymBcsr,
                r: est.r,
                c: est.c,
                width,
                bytes: sym_bcsr_bytes(local_rows, est, width),
                fill_ratio: est.fill_ratio,
            });
        }
    }
    out
}

/// Pick the smallest-footprint symmetric choice for a slab (ties toward the
/// simpler pointwise format, which is listed first).
pub fn best_symmetric_choice(lower: &CsrMatrix, n: usize, opts: &CandidateOptions) -> FormatChoice {
    enumerate_symmetric_choices(lower, n, opts)
        .into_iter()
        .min_by(|a, b| a.bytes.cmp(&b.bytes))
        .expect("at least the SymCsr candidate exists")
}

/// Options controlling which candidates [`enumerate_choices`] considers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CandidateOptions {
    /// Consider register block shapes other than 1×1.
    pub register_blocking: bool,
    /// Consider 16-bit indices when the span fits.
    pub allow_u16: bool,
    /// Consider BCOO storage.
    pub allow_bcoo: bool,
    /// Consider GCSR storage.
    pub allow_gcsr: bool,
    /// Steer [`best_choice`] toward shapes the runtime SIMD dispatcher covers:
    /// a covered candidate whose footprint is within [`SIMD_SHAPE_SLACK`] of
    /// the smallest candidate wins over a slightly smaller uncovered one.
    pub prefer_simd_shapes: bool,
}

impl Default for CandidateOptions {
    fn default() -> Self {
        CandidateOptions {
            register_blocking: true,
            allow_u16: true,
            allow_bcoo: true,
            allow_gcsr: true,
            prefer_simd_shapes: false,
        }
    }
}

/// Footprint slack granted to SIMD-covered candidates when
/// [`CandidateOptions::prefer_simd_shapes`] is set. The footprint model prices
/// bytes streamed, not multiplies retired; when the plan will run vector
/// microkernels, a covered shape repays up to ~10% extra padding traffic many
/// times over, so the pure byte minimum is the wrong objective by exactly that
/// margin.
pub const SIMD_SHAPE_SLACK: f64 = 1.10;

/// True when the runtime SIMD dispatcher has a vector microkernel for this
/// choice: the CSR row kernel, or a BCSR tile shape in the covered set
/// (`c == 4`, `r ∈ {1, 2, 4}`). GCSR and BCOO blocks always take the scalar
/// ladder, as do uncovered BCSR shapes.
pub fn simd_covered(choice: &FormatChoice) -> bool {
    match choice.kind {
        FormatKind::Csr => true,
        FormatKind::Bcsr => crate::kernels::simd::bcsr_simd_shape(choice.r, choice.c),
        _ => false,
    }
}

/// Enumerate every admissible `FormatChoice` for `csr` under `opts`.
pub fn enumerate_choices(csr: &CsrMatrix, opts: &CandidateOptions) -> Vec<FormatChoice> {
    let mut out = Vec::new();
    let nrows = csr.nrows();
    let ncols = csr.ncols();

    let widths = |span_r: usize, span_c: usize| -> Vec<IndexWidth> {
        let mut w = vec![IndexWidth::U32];
        if opts.allow_u16 && IndexWidth::U16.fits(span_r) && IndexWidth::U16.fits(span_c) {
            w.push(IndexWidth::U16);
        }
        w
    };

    // Plain CSR is always admissible (the fallback the paper's heuristic starts
    // from), optionally with 16-bit column-index compression.
    for width in widths(1, ncols) {
        out.push(FormatChoice {
            kind: FormatKind::Csr,
            r: 1,
            c: 1,
            width,
            bytes: csr_bytes_at(csr, width),
            fill_ratio: 1.0,
        });
    }

    if opts.allow_gcsr {
        for width in widths(nrows, ncols) {
            out.push(FormatChoice {
                kind: FormatKind::Gcsr,
                r: 1,
                c: 1,
                width,
                bytes: gcsr_bytes(csr, width),
                fill_ratio: 1.0,
            });
        }
    }

    let estimates: Vec<FillEstimate> = if opts.register_blocking {
        estimate_all_shapes(csr)
    } else {
        vec![crate::blocking::register::estimate_fill(csr, 1, 1)]
    };

    for est in &estimates {
        let nblock_rows = nrows.div_ceil(est.r);
        let nblock_cols = ncols.div_ceil(est.c);
        for width in widths(nblock_rows, nblock_cols) {
            out.push(FormatChoice {
                kind: FormatKind::Bcsr,
                r: est.r,
                c: est.c,
                width,
                bytes: est.bcsr_bytes(nrows, width),
                fill_ratio: est.fill_ratio,
            });
            if opts.allow_bcoo {
                out.push(FormatChoice {
                    kind: FormatKind::Bcoo,
                    r: est.r,
                    c: est.c,
                    width,
                    bytes: est.bcoo_bytes(width),
                    fill_ratio: est.fill_ratio,
                });
            }
        }
    }
    out
}

/// Pick the smallest-footprint choice (ties broken toward simpler formats because
/// `enumerate_choices` lists them first). With `prefer_simd_shapes` set, a
/// SIMD-covered candidate within [`SIMD_SHAPE_SLACK`] of the byte minimum
/// displaces an uncovered winner.
pub fn best_choice(csr: &CsrMatrix, opts: &CandidateOptions) -> FormatChoice {
    let choices = enumerate_choices(csr, opts);
    let best = choices
        .iter()
        .min_by(|a, b| a.bytes.cmp(&b.bytes))
        .cloned()
        .expect("at least the CSR candidate exists");
    if opts.prefer_simd_shapes && !simd_covered(&best) {
        let limit = (best.bytes as f64 * SIMD_SHAPE_SLACK) as usize;
        if let Some(covered) = choices
            .into_iter()
            .filter(|c| simd_covered(c) && c.bytes <= limit)
            .min_by(|a, b| a.bytes.cmp(&b.bytes))
        {
            return covered;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formats::CooMatrix;

    fn diag(n: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 1.0);
        }
        CsrMatrix::from_coo(&coo)
    }

    fn block44(nblocks: usize) -> CsrMatrix {
        let n = nblocks * 4;
        let mut coo = CooMatrix::new(n, n);
        for b in 0..nblocks {
            for i in 0..4 {
                for j in 0..4 {
                    coo.push(b * 4 + i, b * 4 + j, 1.0);
                }
            }
        }
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn block_structured_matrix_prefers_4x4_blocks() {
        let csr = block44(64);
        let choice = best_choice(&csr, &CandidateOptions::default());
        // With exactly one tile per block row, BCOO (two 2-byte coordinates per tile)
        // edges out BCSR (one coordinate plus a 4-byte pointer per block row); either
        // way the winner must use 4x4 tiles with compressed indices and no fill.
        assert!(matches!(choice.kind, FormatKind::Bcsr | FormatKind::Bcoo));
        assert_eq!((choice.r, choice.c), (4, 4));
        assert_eq!(choice.width, IndexWidth::U16);
        assert!((choice.fill_ratio - 1.0).abs() < 1e-12);
        assert!(choice.bytes < csr_bytes(&csr));
    }

    #[test]
    fn diagonal_matrix_does_not_pay_fill() {
        let csr = diag(1000);
        let choice = best_choice(&csr, &CandidateOptions::default());
        // Best encoding of a diagonal keeps 1x1 tiles (no fill) — either BCSR or
        // BCOO with 16-bit indices.
        assert_eq!((choice.r, choice.c), (1, 1));
        assert!((choice.fill_ratio - 1.0).abs() < 1e-12);
        assert_eq!(choice.width, IndexWidth::U16);
    }

    #[test]
    fn mostly_empty_rows_prefer_bcoo_or_gcsr() {
        let coo = CooMatrix::from_triplets(
            50_000,
            50_000,
            vec![(0, 0, 1.0), (10, 20, 2.0), (49_999, 3, 3.0)],
        )
        .unwrap();
        let csr = CsrMatrix::from_coo(&coo);
        let choice = best_choice(&csr, &CandidateOptions::default());
        assert!(matches!(choice.kind, FormatKind::Bcoo | FormatKind::Gcsr));
        assert!(choice.bytes < csr_bytes(&csr) / 100);
    }

    #[test]
    fn disabling_register_blocking_restricts_shapes() {
        let csr = block44(16);
        let opts = CandidateOptions {
            register_blocking: false,
            ..Default::default()
        };
        for ch in enumerate_choices(&csr, &opts) {
            assert_eq!((ch.r, ch.c), (1, 1));
        }
    }

    #[test]
    fn disabling_u16_restricts_widths() {
        let csr = diag(100);
        let opts = CandidateOptions {
            allow_u16: false,
            ..Default::default()
        };
        for ch in enumerate_choices(&csr, &opts) {
            assert_eq!(ch.width, IndexWidth::U32);
        }
    }

    #[test]
    fn csr_candidate_always_present() {
        let csr = diag(10);
        let opts = CandidateOptions {
            register_blocking: false,
            allow_u16: false,
            allow_bcoo: false,
            allow_gcsr: false,
            prefer_simd_shapes: false,
        };
        let choices = enumerate_choices(&csr, &opts);
        assert!(choices.iter().any(|c| c.kind == FormatKind::Csr));
        // Only CSR and the single 1x1 BCSR candidate remain.
        assert_eq!(choices.len(), 2);
    }

    #[test]
    fn simd_preference_flips_to_covered_shapes_within_slack() {
        // A dense 27x27 block: 3x3 tiles pad nothing, 4x4 tiles pad the edge
        // to 28 and pay ~6% more bytes — inside SIMD_SHAPE_SLACK, so the
        // preference flips the winner to the vector-covered shape.
        let mut coo = CooMatrix::new(27, 27);
        for i in 0..27 {
            for j in 0..27 {
                coo.push(i, j, 1.0);
            }
        }
        let csr = CsrMatrix::from_coo(&coo);
        let scalar = best_choice(&csr, &CandidateOptions::default());
        assert!(
            !simd_covered(&scalar),
            "byte minimum should be an uncovered shape, got {scalar:?}"
        );
        let opts = CandidateOptions {
            prefer_simd_shapes: true,
            ..Default::default()
        };
        let vectored = best_choice(&csr, &opts);
        assert!(
            simd_covered(&vectored),
            "expected a covered shape, got {vectored:?}"
        );
        assert_eq!(
            (vectored.kind, vectored.r, vectored.c),
            (FormatKind::Bcsr, 4, 4)
        );
        assert!(vectored.bytes as f64 <= scalar.bytes as f64 * SIMD_SHAPE_SLACK);
    }

    #[test]
    fn simd_preference_never_displaces_a_clear_byte_winner() {
        // Mostly-empty rows: Bcoo/Gcsr beat the covered CSR candidate by far
        // more than the slack, so the preference must leave the plan alone.
        let coo = CooMatrix::from_triplets(
            50_000,
            50_000,
            vec![(0, 0, 1.0), (10, 20, 2.0), (49_999, 3, 3.0)],
        )
        .unwrap();
        let csr = CsrMatrix::from_coo(&coo);
        let opts = CandidateOptions {
            prefer_simd_shapes: true,
            ..Default::default()
        };
        let choice = best_choice(&csr, &opts);
        assert!(
            !simd_covered(&choice),
            "Bcoo/Gcsr must keep winning when covered formats cost far more"
        );
        assert_eq!(choice, best_choice(&csr, &CandidateOptions::default()));
    }

    #[test]
    fn gcsr_bytes_accounts_for_occupied_rows_only() {
        let coo = CooMatrix::from_triplets(1000, 100, vec![(5, 5, 1.0), (6, 6, 1.0)]).unwrap();
        let csr = CsrMatrix::from_coo(&coo);
        let g16 = gcsr_bytes(&csr, IndexWidth::U16);
        // 2 values(16) + 2 col idx(4) + 2 row ids(4) + 3 row ptr entries(12)
        assert_eq!(g16, 16 + 4 + 4 + 12);
    }
}
