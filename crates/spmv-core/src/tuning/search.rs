//! OSKI-style exhaustive search.
//!
//! OSKI chooses its register blocking by combining a fill-ratio scan with an offline
//! performance profile (a benchmark of every block shape on a dense matrix stored in
//! sparse format). This module implements both pieces so the baseline crate and the
//! ablation benchmarks can compare search against the paper's one-pass heuristic.

use crate::blocking::register::{estimate_fill, register_block_candidates};
use crate::formats::bcsr::{BcsrAuto, BcsrMatrix};
use crate::formats::coo::CooMatrix;
use crate::formats::csr::CsrMatrix;
use crate::formats::index::IndexWidth;
use crate::formats::traits::{MatrixShape, SpMv};
use std::time::Instant;

/// The result of a register-blocking search.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// Chosen block rows.
    pub r: usize,
    /// Chosen block columns.
    pub c: usize,
    /// The materialized matrix at the chosen shape (width selected once).
    pub matrix: BcsrAuto,
    /// Estimated (or measured) cost of every candidate, for reporting:
    /// `(r, c, cost)` where lower is better.
    pub candidates: Vec<(usize, usize, f64)>,
}

/// A performance profile: relative throughput of each block shape on a dense matrix,
/// as OSKI would measure offline per machine. Higher is faster.
#[derive(Debug, Clone)]
pub struct DenseProfile {
    entries: Vec<(usize, usize, f64)>,
}

impl DenseProfile {
    /// Dimensions below this produce timed regions in the tens of nanoseconds —
    /// pure timer noise — so [`DenseProfile::measure`] falls back to the synthetic
    /// profile instead of returning noise-driven throughput estimates.
    pub const MIN_MEASURE_DIM: usize = 64;

    /// Measure the profile on this host by timing each shape on a small dense matrix
    /// stored in sparse format (the OSKI offline benchmark, shrunk to run in
    /// milliseconds).
    ///
    /// Degenerate or too-small `dim` (< [`DenseProfile::MIN_MEASURE_DIM`]) falls
    /// back to [`DenseProfile::synthetic`], as does any measurement that yields a
    /// non-finite or non-positive throughput.
    pub fn measure(dim: usize) -> Self {
        if dim < Self::MIN_MEASURE_DIM {
            return Self::synthetic();
        }
        let mut coo = CooMatrix::new(dim, dim);
        for i in 0..dim {
            for j in 0..dim {
                coo.push(i, j, (i + j) as f64 * 1e-3);
            }
        }
        let csr = CsrMatrix::from_coo(&coo);
        let x: Vec<f64> = (0..dim).map(|i| i as f64 * 1e-2).collect();
        let mut entries = Vec::new();
        for (r, c) in register_block_candidates() {
            let bcsr = BcsrMatrix::<u16>::from_csr(&csr, r, c).expect("small dims");
            let mut y = vec![0.0; dim];
            // Warm up once, then take the median of several timed runs so one
            // scheduler hiccup cannot skew the shape ranking.
            bcsr.spmv(&x, &mut y);
            let reps = 5;
            let secs = median_timing(3, || {
                let start = Instant::now();
                for _ in 0..reps {
                    bcsr.spmv(&x, &mut y);
                }
                start.elapsed().as_secs_f64()
            })
            .max(1e-9);
            let flops = (2 * csr.nnz() * reps) as f64;
            entries.push((r, c, flops / secs));
        }
        if entries.iter().any(|&(_, _, t)| !t.is_finite() || t <= 0.0) {
            return Self::synthetic();
        }
        DenseProfile { entries }
    }

    /// A synthetic profile that rewards larger blocks mildly (useful for
    /// deterministic tests and for modelling the 2007 targets where larger register
    /// blocks amortize index overhead and enable SIMD).
    pub fn synthetic() -> Self {
        let entries = register_block_candidates()
            .into_iter()
            .map(|(r, c)| {
                let tile = (r * c) as f64;
                // Diminishing returns past 2x2: mimic the shape of measured OSKI
                // profiles on the x86 targets.
                let speed = 1.0 + 0.35 * tile.ln_1p();
                (r, c, speed)
            })
            .collect();
        DenseProfile { entries }
    }

    /// Relative throughput for shape `(r, c)`.
    pub fn throughput(&self, r: usize, c: usize) -> f64 {
        self.entries
            .iter()
            .find(|&&(pr, pc, _)| pr == r && pc == c)
            .map(|&(_, _, t)| t)
            .unwrap_or(1.0)
    }

    /// The `(r, c, relative throughput)` entries of the profile.
    pub fn entries(&self) -> &[(usize, usize, f64)] {
        &self.entries
    }
}

/// The reps-stable estimator every measured search in this crate uses (the
/// OSKI dense profile, the timed shape search, and the whole-plan autotuner)
/// so a single preempted run cannot flip a decision. Re-exported from the
/// shared measurement primitive in `spmv-obs`, which the bench harness and
/// solver gates use too.
pub use spmv_obs::timing::median_timing;

/// OSKI's heuristic: pick the shape minimizing `fill_ratio / dense_throughput`,
/// i.e. the predicted time per logical nonzero.
pub fn search_register_blocking(csr: &CsrMatrix, profile: &DenseProfile) -> SearchOutcome {
    let width = if IndexWidth::U16.fits(csr.ncols()) && IndexWidth::U16.fits(csr.nrows()) {
        IndexWidth::U16
    } else {
        IndexWidth::U32
    };
    let mut best: Option<(usize, usize, f64)> = None;
    let mut candidates = Vec::new();
    for (r, c) in register_block_candidates() {
        let est = estimate_fill(csr, r, c);
        let cost = est.fill_ratio / profile.throughput(r, c);
        candidates.push((r, c, cost));
        match best {
            Some((_, _, b)) if cost >= b => {}
            _ => best = Some((r, c, cost)),
        }
    }
    let (r, c, _) = best.expect("candidate list non-empty");
    let matrix = BcsrAuto::from_csr(csr, r, c, width).expect("supported shape");
    SearchOutcome {
        r,
        c,
        matrix,
        candidates,
    }
}

/// Time-based search: actually materialize and time every candidate shape, returning
/// the fastest. This is the expensive search the paper's heuristic avoids. Each
/// candidate is timed as the **median of three runs** of `reps` iterations, so the
/// outcome is stable against one-off scheduler noise.
pub fn search_by_timing(csr: &CsrMatrix, reps: usize) -> SearchOutcome {
    let width = if IndexWidth::U16.fits(csr.ncols()) && IndexWidth::U16.fits(csr.nrows()) {
        IndexWidth::U16
    } else {
        IndexWidth::U32
    };
    let x: Vec<f64> = (0..csr.ncols()).map(|i| (i % 13) as f64).collect();
    let mut best: Option<(usize, usize, f64, BcsrAuto)> = None;
    let mut candidates = Vec::new();
    for (r, c) in register_block_candidates() {
        let bcsr = BcsrAuto::from_csr(csr, r, c, width).expect("supported shape");
        let mut y = vec![0.0; csr.nrows()];
        bcsr.spmv(&x, &mut y);
        let secs = median_timing(3, || {
            let start = Instant::now();
            for _ in 0..reps.max(1) {
                bcsr.spmv(&x, &mut y);
            }
            start.elapsed().as_secs_f64()
        })
        .max(1e-12);
        candidates.push((r, c, secs));
        let better = match &best {
            Some((_, _, b, _)) => secs < *b,
            None => true,
        };
        if better {
            best = Some((r, c, secs, bcsr));
        }
    }
    let (r, c, _, matrix) = best.expect("candidate list non-empty");
    SearchOutcome {
        r,
        c,
        matrix,
        candidates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::max_abs_diff;

    fn block_structured(nblocks: usize, bs: usize) -> CsrMatrix {
        let n = nblocks * bs;
        let mut coo = CooMatrix::new(n, n);
        for b in 0..nblocks {
            for i in 0..bs {
                for j in 0..bs {
                    coo.push(b * bs + i, b * bs + j, 1.0);
                }
            }
        }
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn synthetic_profile_prefers_large_blocks_on_blocked_matrix() {
        let csr = block_structured(64, 4);
        let outcome = search_register_blocking(&csr, &DenseProfile::synthetic());
        assert_eq!((outcome.r, outcome.c), (4, 4));
        assert_eq!(outcome.candidates.len(), 16);
    }

    #[test]
    fn scattered_matrix_keeps_small_blocks() {
        // A random scatter has fill ~r*c at every shape, so cost grows faster than
        // the synthetic profile's reward and 1x1 must win... unless fill stays low.
        let mut coo = CooMatrix::new(200, 200);
        let mut state = 12345u64;
        for _ in 0..800 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let r = (state >> 33) as usize % 200;
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let c = (state >> 33) as usize % 200;
            coo.push(r, c, 1.0);
        }
        let csr = CsrMatrix::from_coo(&coo);
        let outcome = search_register_blocking(&csr, &DenseProfile::synthetic());
        assert_eq!((outcome.r, outcome.c), (1, 1));
    }

    #[test]
    fn search_result_is_correct_spmv() {
        let csr = block_structured(32, 4);
        let outcome = search_register_blocking(&csr, &DenseProfile::synthetic());
        let x: Vec<f64> = (0..csr.ncols()).map(|i| i as f64).collect();
        assert!(max_abs_diff(&csr.spmv_alloc(&x), &outcome.matrix.spmv_alloc(&x)) < 1e-9);
    }

    #[test]
    fn timing_search_returns_valid_matrix() {
        let csr = block_structured(16, 2);
        let outcome = search_by_timing(&csr, 2);
        let x: Vec<f64> = (0..csr.ncols()).map(|i| (i as f64).sqrt()).collect();
        assert!(max_abs_diff(&csr.spmv_alloc(&x), &outcome.matrix.spmv_alloc(&x)) < 1e-9);
        assert_eq!(outcome.candidates.len(), 16);
    }

    #[test]
    fn measured_profile_has_all_shapes() {
        let profile = DenseProfile::measure(DenseProfile::MIN_MEASURE_DIM);
        for (r, c) in register_block_candidates() {
            assert!(profile.throughput(r, c) > 0.0);
        }
    }

    #[test]
    fn too_small_measure_dims_fall_back_to_synthetic() {
        // Degenerate and tiny dimensions would time nanosecond regions — pure
        // noise — so they must return the deterministic synthetic profile.
        let synthetic = DenseProfile::synthetic();
        for dim in [0, 1, 8, DenseProfile::MIN_MEASURE_DIM - 1] {
            let profile = DenseProfile::measure(dim);
            assert_eq!(profile.entries(), synthetic.entries(), "dim {dim}");
        }
    }

    #[test]
    fn synthetic_profile_monotone_in_tile_size() {
        let p = DenseProfile::synthetic();
        assert!(p.throughput(4, 4) > p.throughput(2, 2));
        assert!(p.throughput(2, 2) > p.throughput(1, 1));
    }
}
