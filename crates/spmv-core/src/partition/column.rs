//! Column partitioning.
//!
//! Splitting by columns gives each thread a slice of the *source* vector instead of
//! the destination; partial results must then be reduced. The paper lists this as a
//! strategy requiring explicit blocking (Section 4.3) and leaves it to future work in
//! the evaluation; it is implemented here both for completeness and because the Cell
//! model uses column spans to bound the local-store working set.

use crate::formats::csc::CscMatrix;
use crate::formats::csr::CsrMatrix;
use crate::formats::traits::{MatrixShape, SpMv};
use std::ops::Range;

/// A decomposition of the column space into one contiguous range per thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnPartition {
    /// Per-thread column ranges, in thread order.
    pub ranges: Vec<Range<usize>>,
}

impl ColumnPartition {
    /// Number of parts.
    pub fn num_parts(&self) -> usize {
        self.ranges.len()
    }

    /// Whether the ranges tile `0..ncols` in order.
    pub fn covers(&self, ncols: usize) -> bool {
        let mut cursor = 0usize;
        for r in &self.ranges {
            if r.start != cursor {
                return false;
            }
            cursor = r.end;
        }
        cursor == ncols
    }

    /// Nonzeros owned by each part (requires the CSC column counts).
    pub fn nnz_per_part(&self, csc: &CscMatrix) -> Vec<usize> {
        self.ranges
            .iter()
            .map(|r| csc.col_ptr()[r.end] - csc.col_ptr()[r.start])
            .collect()
    }

    /// Load imbalance factor (max over mean nonzeros per part).
    pub fn imbalance(&self, csc: &CscMatrix) -> f64 {
        let loads = self.nnz_per_part(csc);
        let max = loads.iter().copied().max().unwrap_or(0) as f64;
        let total: usize = loads.iter().sum();
        if total == 0 || loads.is_empty() {
            return 1.0;
        }
        max / (total as f64 / loads.len() as f64)
    }
}

/// Nonzero-balanced column partition computed from the CSC column pointer.
pub fn partition_columns_balanced(csc: &CscMatrix, parts: usize) -> ColumnPartition {
    assert!(parts > 0, "partition requires at least one part");
    let ncols = csc.ncols();
    let total = csc.nnz();
    let col_ptr = csc.col_ptr();
    let mut ranges = Vec::with_capacity(parts);
    let mut start_col = 0usize;
    for p in 0..parts {
        if start_col >= ncols {
            ranges.push(ncols..ncols);
            continue;
        }
        if p == parts - 1 {
            ranges.push(start_col..ncols);
            start_col = ncols;
            continue;
        }
        let target = (total as u128 * (p as u128 + 1) / parts as u128) as usize;
        let mut end_col = col_ptr.partition_point(|&cum| cum < target);
        end_col = end_col.clamp(start_col + 1, ncols);
        ranges.push(start_col..end_col);
        start_col = end_col;
    }
    ColumnPartition { ranges }
}

/// Execute a column-partitioned SpMV sequentially: each part produces a private
/// partial destination vector which is then reduced. This mirrors exactly what the
/// threaded executor does and exists so correctness can be tested in isolation.
pub fn column_partitioned_spmv(
    csr_for_reference_dims: &CsrMatrix,
    csc: &CscMatrix,
    partition: &ColumnPartition,
    x: &[f64],
) -> Vec<f64> {
    let nrows = csr_for_reference_dims.nrows();
    let mut partials: Vec<Vec<f64>> = Vec::with_capacity(partition.num_parts());
    for range in &partition.ranges {
        let slice = csc.col_slice(range.start, range.end);
        let mut y = vec![0.0; nrows];
        slice.spmv(&x[range.start..range.end], &mut y);
        partials.push(y);
    }
    // Reduction.
    let mut y = vec![0.0; nrows];
    for part in partials {
        for (acc, v) in y.iter_mut().zip(part.iter()) {
            *acc += v;
        }
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::max_abs_diff;
    use crate::formats::traits::SpMv;
    use crate::formats::CooMatrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_coo(nrows: usize, ncols: usize, nnz: usize, seed: u64) -> CooMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut coo = CooMatrix::new(nrows, ncols);
        for _ in 0..nnz {
            coo.push(
                rng.random_range(0..nrows),
                rng.random_range(0..ncols),
                rng.random_range(-1.0..1.0),
            );
        }
        coo
    }

    #[test]
    fn partition_covers_columns() {
        let coo = random_coo(50, 300, 1000, 1);
        let csc = CscMatrix::from_coo(&coo);
        for parts in 1..=6 {
            let p = partition_columns_balanced(&csc, parts);
            assert!(p.covers(300));
            assert_eq!(p.num_parts(), parts);
        }
    }

    #[test]
    fn partitioned_spmv_matches_reference() {
        let coo = random_coo(80, 120, 900, 2);
        let csr = CsrMatrix::from_coo(&coo);
        let csc = CscMatrix::from_coo(&coo);
        let p = partition_columns_balanced(&csc, 5);
        let x: Vec<f64> = (0..120).map(|i| (i as f64 * 0.21).sin()).collect();
        let y = column_partitioned_spmv(&csr, &csc, &p, &x);
        assert!(max_abs_diff(&csr.spmv_alloc(&x), &y) < 1e-10);
    }

    #[test]
    fn balance_is_reasonable_on_uniform_matrix() {
        let coo = random_coo(100, 400, 4000, 3);
        let csc = CscMatrix::from_coo(&coo);
        let p = partition_columns_balanced(&csc, 8);
        assert!(p.imbalance(&csc) < 1.25);
    }

    #[test]
    fn skewed_columns_still_covered() {
        // LP-like: a few extremely heavy columns.
        let mut coo = CooMatrix::new(50, 1000);
        for i in 0..50 {
            for j in 0..20 {
                coo.push(i, j, 1.0);
            }
        }
        coo.push(0, 999, 1.0);
        let csc = CscMatrix::from_coo(&coo);
        let p = partition_columns_balanced(&csc, 4);
        assert!(p.covers(1000));
        let total: usize = p.nnz_per_part(&csc).iter().sum();
        assert_eq!(total, csc.nnz());
    }

    #[test]
    fn more_parts_than_columns() {
        let coo = random_coo(10, 3, 9, 4);
        let csc = CscMatrix::from_coo(&coo);
        let p = partition_columns_balanced(&csc, 8);
        assert!(p.covers(3));
        assert_eq!(p.num_parts(), 8);
    }
}
