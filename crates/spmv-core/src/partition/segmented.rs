//! Nonzero (segmented-scan) partitioning.
//!
//! The third strategy of Section 4.3: split the nonzero stream itself into equal
//! chunks regardless of row boundaries, so load balance is perfect by construction.
//! Rows that straddle a chunk boundary produce partial sums that must be combined
//! during a fix-up pass — "conceptually similar to utilizing a segmented scan on a
//! single processor, but implemented very differently".

use crate::formats::csr::CsrMatrix;
use crate::formats::traits::MatrixShape;

/// One thread's chunk of the nonzero stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NonzeroChunk {
    /// Index of the first nonzero owned by this chunk.
    pub nnz_start: usize,
    /// One past the last nonzero owned by this chunk.
    pub nnz_end: usize,
    /// The row containing `nnz_start`.
    pub first_row: usize,
    /// The row containing `nnz_end - 1` (inclusive). Equal to `first_row` when the
    /// chunk lies within a single row.
    pub last_row: usize,
}

impl NonzeroChunk {
    /// Number of nonzeros owned.
    pub fn len(&self) -> usize {
        self.nnz_end - self.nnz_start
    }

    /// Whether the chunk is empty.
    pub fn is_empty(&self) -> bool {
        self.nnz_start == self.nnz_end
    }
}

/// A partition of the nonzero stream into equal chunks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentedPartition {
    /// Per-thread chunks in thread order.
    pub chunks: Vec<NonzeroChunk>,
}

impl SegmentedPartition {
    /// Number of chunks.
    pub fn num_parts(&self) -> usize {
        self.chunks.len()
    }

    /// Whether the chunks tile the nonzero stream exactly.
    pub fn covers(&self, nnz: usize) -> bool {
        let mut cursor = 0usize;
        for c in &self.chunks {
            if c.nnz_start != cursor {
                return false;
            }
            cursor = c.nnz_end;
        }
        cursor == nnz
    }
}

/// Find the row containing nonzero index `k` (i.e. the largest row whose prefix sum
/// is ≤ k) via binary search on the row pointer.
fn row_of_nnz(row_ptr: &[usize], k: usize) -> usize {
    // partition_point returns the count of rows whose start offset is <= k,
    // so subtracting one yields the owning row.
    row_ptr.partition_point(|&p| p <= k).saturating_sub(1)
}

/// Partition the nonzero stream of `csr` into `parts` equal chunks.
pub fn partition_nonzeros(csr: &CsrMatrix, parts: usize) -> SegmentedPartition {
    assert!(parts > 0, "partition requires at least one part");
    let nnz = csr.nnz();
    let row_ptr = csr.row_ptr();
    let mut chunks = Vec::with_capacity(parts);
    for p in 0..parts {
        let start = nnz * p / parts;
        let end = nnz * (p + 1) / parts;
        let first_row = if start < nnz {
            row_of_nnz(row_ptr, start)
        } else {
            csr.nrows()
        };
        let last_row = if end > start {
            row_of_nnz(row_ptr, end - 1)
        } else {
            first_row
        };
        chunks.push(NonzeroChunk {
            nnz_start: start,
            nnz_end: end,
            first_row,
            last_row,
        });
    }
    SegmentedPartition { chunks }
}

/// Execute a segmented (nonzero-partitioned) SpMV sequentially, chunk by chunk, with
/// the boundary fix-up the threaded implementation performs. Exists so the threaded
/// version has a reference to be validated against.
pub fn segmented_spmv(csr: &CsrMatrix, partition: &SegmentedPartition, x: &[f64]) -> Vec<f64> {
    let mut y = vec![0.0; csr.nrows()];
    let row_ptr = csr.row_ptr();
    let col_idx = csr.col_idx();
    let values = csr.values();
    for chunk in &partition.chunks {
        if chunk.is_empty() {
            continue;
        }
        let mut row = chunk.first_row;
        let mut sum = 0.0;
        for k in chunk.nnz_start..chunk.nnz_end {
            // Advance to the row owning nonzero k (rows are non-decreasing in k).
            while k >= row_ptr[row + 1] {
                y[row] += sum;
                sum = 0.0;
                row += 1;
            }
            sum += values[k] * x[col_idx[k] as usize];
        }
        y[row] += sum;
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::max_abs_diff;
    use crate::formats::traits::SpMv;
    use crate::formats::CooMatrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_csr(nrows: usize, ncols: usize, nnz: usize, seed: u64) -> CsrMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut coo = CooMatrix::new(nrows, ncols);
        for _ in 0..nnz {
            coo.push(
                rng.random_range(0..nrows),
                rng.random_range(0..ncols),
                rng.random_range(-1.0..1.0),
            );
        }
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn chunks_cover_nonzeros_and_balance_perfectly() {
        // Note: duplicate coordinates are summed during CSR conversion, so the final
        // nonzero count may be slightly below the number of pushes.
        let csr = random_csr(100, 100, 997, 1);
        let nnz = csr.nnz();
        for parts in 1..=7 {
            let p = partition_nonzeros(&csr, parts);
            assert!(p.covers(nnz), "parts={parts}");
            let lens: Vec<usize> = p.chunks.iter().map(|c| c.len()).collect();
            let max = lens.iter().max().unwrap();
            let min = lens.iter().min().unwrap();
            assert!(max - min <= 1, "perfect balance expected, got {lens:?}");
        }
    }

    #[test]
    fn segmented_spmv_matches_reference() {
        let csr = random_csr(150, 130, 2000, 2);
        let x: Vec<f64> = (0..130).map(|i| (i as f64 * 0.37).cos()).collect();
        let reference = csr.spmv_alloc(&x);
        for parts in [1, 2, 3, 5, 8, 16] {
            let p = partition_nonzeros(&csr, parts);
            let y = segmented_spmv(&csr, &p, &x);
            assert!(max_abs_diff(&reference, &y) < 1e-10, "parts={parts}");
        }
    }

    #[test]
    fn chunk_row_bounds_are_correct() {
        // One heavy row straddles several chunks.
        let mut coo = CooMatrix::new(3, 100);
        for j in 0..90 {
            coo.push(1, j, 1.0);
        }
        coo.push(0, 0, 1.0);
        coo.push(2, 5, 1.0);
        let csr = CsrMatrix::from_coo(&coo);
        let p = partition_nonzeros(&csr, 4);
        assert!(p.covers(92));
        // Middle chunks should lie entirely within row 1.
        assert_eq!(p.chunks[1].first_row, 1);
        assert_eq!(p.chunks[1].last_row, 1);
        let x = vec![1.0; 100];
        let y = segmented_spmv(&csr, &p, &x);
        assert_eq!(y, vec![1.0, 90.0, 1.0]);
    }

    #[test]
    fn row_of_nnz_lookup() {
        let row_ptr = vec![0, 2, 2, 5, 6];
        assert_eq!(row_of_nnz(&row_ptr, 0), 0);
        assert_eq!(row_of_nnz(&row_ptr, 1), 0);
        assert_eq!(row_of_nnz(&row_ptr, 2), 2);
        assert_eq!(row_of_nnz(&row_ptr, 4), 2);
        assert_eq!(row_of_nnz(&row_ptr, 5), 3);
    }

    #[test]
    fn empty_matrix() {
        let csr = CsrMatrix::from_coo(&CooMatrix::new(4, 4));
        let p = partition_nonzeros(&csr, 3);
        assert!(p.covers(0));
        let y = segmented_spmv(&csr, &p, &[0.0; 4]);
        assert_eq!(y, vec![0.0; 4]);
    }

    #[test]
    fn more_parts_than_nonzeros() {
        let csr = CsrMatrix::from_coo(
            &CooMatrix::from_triplets(5, 5, vec![(0, 0, 1.0), (4, 4, 2.0)]).unwrap(),
        );
        let p = partition_nonzeros(&csr, 8);
        assert!(p.covers(2));
        let y = segmented_spmv(&csr, &p, &[1.0; 5]);
        assert_eq!(y, vec![1.0, 0.0, 0.0, 0.0, 2.0]);
    }
}
