//! Thread-level decomposition of SpMV (paper Section 4.3).
//!
//! The paper considers three strategies: row partitioning (the one actually used in
//! the evaluation), column partitioning, and a thread-level segmented scan that
//! balances exactly by nonzeros. All three are implemented here as *descriptors* —
//! pure data describing who owns what — which the `spmv-parallel` crate executes on
//! real threads and the `spmv-archsim` crate feeds to its machine model.

pub mod column;
pub mod row;
pub mod segmented;

pub use column::{partition_columns_balanced, ColumnPartition};
pub use row::{partition_rows_balanced, partition_rows_equal, RowPartition};
pub use segmented::{partition_nonzeros, NonzeroChunk, SegmentedPartition};
