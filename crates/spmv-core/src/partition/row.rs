//! Row partitioning.
//!
//! The paper's implementation "attempts to statically load balance the matrix by
//! balancing the number of nonzeros" across threads, because streaming the nonzeros
//! dominates runtime for matrices whose vectors fit in cache. The OSKI-PETSc baseline
//! instead uses PETSc's default equal-rows distribution, which is exactly what makes
//! it load-imbalanced on matrices like FEM-Accelerator (Section 6.2); both splitters
//! are provided so the baseline comparison can reproduce that effect.

use crate::formats::csr::CsrMatrix;
use crate::formats::traits::MatrixShape;
use std::ops::Range;

/// A decomposition of the row space into one contiguous range per thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowPartition {
    /// Per-thread row ranges, in thread order; empty ranges are allowed when there
    /// are more threads than rows.
    pub ranges: Vec<Range<usize>>,
}

impl RowPartition {
    /// Number of threads (parts).
    pub fn num_parts(&self) -> usize {
        self.ranges.len()
    }

    /// Whether the ranges tile `0..nrows` in order.
    pub fn covers(&self, nrows: usize) -> bool {
        let mut cursor = 0usize;
        for r in &self.ranges {
            if r.start != cursor {
                return false;
            }
            cursor = r.end;
        }
        cursor == nrows
    }

    /// Nonzeros owned by each part.
    pub fn nnz_per_part(&self, csr: &CsrMatrix) -> Vec<usize> {
        self.ranges
            .iter()
            .map(|r| csr.row_ptr()[r.end] - csr.row_ptr()[r.start])
            .collect()
    }

    /// Load imbalance factor: max part nonzeros over mean part nonzeros (1.0 = perfect).
    pub fn imbalance(&self, csr: &CsrMatrix) -> f64 {
        let loads = self.nnz_per_part(csr);
        let max = loads.iter().copied().max().unwrap_or(0) as f64;
        let total: usize = loads.iter().sum();
        if total == 0 || loads.is_empty() {
            return 1.0;
        }
        let mean = total as f64 / loads.len() as f64;
        max / mean
    }
}

/// Equal-rows partition: PETSc's default block-row distribution.
pub fn partition_rows_equal(nrows: usize, parts: usize) -> RowPartition {
    assert!(parts > 0, "partition requires at least one part");
    let base = nrows / parts;
    let extra = nrows % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0usize;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        ranges.push(start..start + len);
        start += len;
    }
    RowPartition { ranges }
}

/// Nonzero-balanced partition: choose row boundaries so each part streams roughly the
/// same number of nonzeros (the paper's static load-balancing strategy).
pub fn partition_rows_balanced(csr: &CsrMatrix, parts: usize) -> RowPartition {
    assert!(parts > 0, "partition requires at least one part");
    let nrows = csr.nrows();
    let total = csr.nnz();
    let row_ptr = csr.row_ptr();
    let mut ranges = Vec::with_capacity(parts);
    let mut start_row = 0usize;
    for p in 0..parts {
        if start_row >= nrows {
            ranges.push(nrows..nrows);
            continue;
        }
        if p == parts - 1 {
            ranges.push(start_row..nrows);
            start_row = nrows;
            continue;
        }
        // Target cumulative nonzero count at the end of this part.
        let target = (total as u128 * (p as u128 + 1) / parts as u128) as usize;
        // Binary search the row pointer for the first row whose prefix reaches target.
        let mut end_row = row_ptr.partition_point(|&cum| cum < target);
        // partition_point indexes into row_ptr (len nrows+1); convert to a row index
        // and keep at least one row in the part so progress is guaranteed.
        end_row = end_row.clamp(start_row + 1, nrows);
        ranges.push(start_row..end_row);
        start_row = end_row;
    }
    RowPartition { ranges }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formats::CooMatrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn skewed_matrix() -> CsrMatrix {
        // First 10 rows hold 90% of the nonzeros.
        let mut coo = CooMatrix::new(100, 100);
        for i in 0..10 {
            for j in 0..90 {
                coo.push(i, j, 1.0);
            }
        }
        for i in 10..100 {
            coo.push(i, i, 1.0);
        }
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn equal_partition_covers_and_splits_evenly() {
        let p = partition_rows_equal(103, 4);
        assert!(p.covers(103));
        let sizes: Vec<usize> = p.ranges.iter().map(|r| r.end - r.start).collect();
        assert_eq!(sizes, vec![26, 26, 26, 25]);
    }

    #[test]
    fn balanced_partition_covers() {
        let csr = skewed_matrix();
        for parts in 1..=8 {
            let p = partition_rows_balanced(&csr, parts);
            assert!(p.covers(100), "parts={parts}");
            assert_eq!(p.num_parts(), parts);
        }
    }

    #[test]
    fn balanced_beats_equal_on_skewed_matrix() {
        let csr = skewed_matrix();
        let eq = partition_rows_equal(100, 4);
        let bal = partition_rows_balanced(&csr, 4);
        assert!(bal.imbalance(&csr) < eq.imbalance(&csr));
        assert!(bal.imbalance(&csr) < 1.5);
        // Equal-rows puts ~90% of nonzeros in the first quarter: imbalance ≈ 3.6.
        assert!(eq.imbalance(&csr) > 3.0);
    }

    #[test]
    fn uniform_matrix_balanced_and_equal_agree_roughly() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut coo = CooMatrix::new(200, 200);
        for i in 0..200 {
            for _ in 0..10 {
                coo.push(i, rng.random_range(0..200), 1.0);
            }
        }
        let csr = CsrMatrix::from_coo(&coo);
        let bal = partition_rows_balanced(&csr, 8);
        assert!(bal.imbalance(&csr) < 1.1);
    }

    #[test]
    fn more_parts_than_rows() {
        let csr = CsrMatrix::from_coo(
            &CooMatrix::from_triplets(3, 3, vec![(0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0)]).unwrap(),
        );
        let p = partition_rows_balanced(&csr, 8);
        assert!(p.covers(3));
        assert_eq!(p.num_parts(), 8);
        let total: usize = p.nnz_per_part(&csr).iter().sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn single_part_owns_everything() {
        let csr = skewed_matrix();
        let p = partition_rows_balanced(&csr, 1);
        assert_eq!(p.ranges, vec![0..100]);
        assert_eq!(p.nnz_per_part(&csr), vec![csr.nnz()]);
        assert_eq!(p.imbalance(&csr), 1.0);
    }

    #[test]
    fn empty_matrix_partition() {
        let csr = CsrMatrix::from_coo(&CooMatrix::new(0, 5));
        let p = partition_rows_balanced(&csr, 4);
        assert!(p.covers(0));
    }

    #[test]
    #[should_panic(expected = "at least one part")]
    fn zero_parts_rejected() {
        partition_rows_equal(10, 0);
    }
}
