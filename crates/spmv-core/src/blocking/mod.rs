//! Data-structure blocking heuristics (paper Section 4.2).
//!
//! * [`register`] — estimate fill ratio and storage footprint for every candidate
//!   register block shape without materializing the blocked matrix.
//! * [`cache`] — *sparse cache blocking*: split the matrix into panels whose touched
//!   source/destination cache lines fit a fixed budget, so every cache block costs
//!   the same number of lines even though the column spans differ.
//! * [`tlb`] — the same idea at page granularity, applied between the row and column
//!   cache-blocking passes, to bound TLB misses.
//! * [`blocked`] — the cache-blocked matrix container whose per-block storage format
//!   is chosen independently by the tuning heuristic.

pub mod blocked;
pub mod cache;
pub mod register;
pub mod tlb;

pub use blocked::{BlockFormat, CacheBlock, CacheBlockedMatrix};
pub use cache::{CacheBlocking, CacheBlockingConfig};
pub use register::{estimate_fill, register_block_candidates, FillEstimate};
pub use tlb::{TlbBlocking, TlbConfig};
