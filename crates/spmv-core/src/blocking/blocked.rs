//! The cache-blocked matrix container.
//!
//! After the cache/TLB blocking passes split the matrix into a grid of blocks, the
//! register-blocking heuristic is applied *independently to each cache block*
//! (Section 4.2: "it is possible for some cache blocks to be stored in 1x4 BCOO with
//! 32-bit indices, and others in 4x1 BCSR with 16-bit indices"). This module holds
//! that per-block choice and executes the blocked SpMV.

use crate::formats::bcoo::BcooMatrix;
use crate::formats::bcsr::BcsrAuto;
use crate::formats::csr::CompressedCsr;
use crate::formats::gcsr::GcsrMatrix;
use crate::formats::traits::{check_dims, MatrixShape, SpMv};
use std::ops::Range;

/// The storage format selected for one cache block.
#[derive(Debug, Clone, PartialEq)]
pub enum BlockFormat {
    /// Plain CSR with a once-selected index width (used when blocking is disabled
    /// or the block is tiny).
    Csr(CompressedCsr),
    /// Register-blocked CSR with a once-selected index width.
    Bcsr(BcsrAuto),
    /// Block-coordinate storage (wins when most rows of the block are empty).
    Bcoo(BcooMatrix),
    /// Generalized CSR storing only occupied rows.
    Gcsr(GcsrMatrix),
}

impl BlockFormat {
    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            BlockFormat::Csr(_) => "CSR",
            BlockFormat::Bcsr(_) => "BCSR",
            BlockFormat::Bcoo(_) => "BCOO",
            BlockFormat::Gcsr(_) => "GCSR",
        }
    }

    /// Bytes of matrix data in this block.
    pub fn footprint_bytes(&self) -> usize {
        match self {
            BlockFormat::Csr(m) => m.footprint_bytes(),
            BlockFormat::Bcsr(m) => m.footprint_bytes(),
            BlockFormat::Bcoo(m) => m.footprint_bytes(),
            BlockFormat::Gcsr(m) => m.footprint_bytes(),
        }
    }

    /// Logical nonzeros in this block.
    pub fn nnz(&self) -> usize {
        match self {
            BlockFormat::Csr(m) => m.nnz(),
            BlockFormat::Bcsr(m) => m.nnz(),
            BlockFormat::Bcoo(m) => m.nnz(),
            BlockFormat::Gcsr(m) => m.nnz(),
        }
    }

    /// Stored entries (including register-blocking fill).
    pub fn stored_entries(&self) -> usize {
        match self {
            BlockFormat::Csr(m) => m.stored_entries(),
            BlockFormat::Bcsr(m) => m.stored_entries(),
            BlockFormat::Bcoo(m) => m.stored_entries(),
            BlockFormat::Gcsr(m) => m.stored_entries(),
        }
    }

    /// Execute `y_local ← y_local + block · x_local` on block-local vectors.
    pub fn spmv_local(&self, x: &[f64], y: &mut [f64]) {
        match self {
            BlockFormat::Csr(m) => m.spmv(x, y),
            BlockFormat::Bcsr(m) => m.spmv(x, y),
            BlockFormat::Bcoo(m) => m.spmv(x, y),
            BlockFormat::Gcsr(m) => m.spmv(x, y),
        }
    }

    /// Execute `Y_local ← Y_local + block · X_local` on a column-major block of
    /// vectors: `x` starts at the block's first column (column `j` of the source
    /// at `x[j*x_ld ..]`), `y` exposes exactly the block's rows.
    pub fn spmm_local(&self, x: &[f64], x_ld: usize, y: &mut crate::multivec::MultiVecMut) {
        use crate::kernels::multivec;
        match self {
            BlockFormat::Csr(m) => m.spmm(x, x_ld, y),
            BlockFormat::Bcsr(m) => m.spmm(x, x_ld, y),
            BlockFormat::Bcoo(m) => multivec::spmm_bcoo(m, x, x_ld, y),
            BlockFormat::Gcsr(m) => multivec::spmm_gcsr(m, x, x_ld, y),
        }
    }
}

/// One cache block: a sub-matrix with its own storage format and its placement in the
/// global index space.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheBlock {
    /// Global row range this block covers.
    pub rows: Range<usize>,
    /// Global column range this block covers.
    pub cols: Range<usize>,
    /// Per-block storage.
    pub format: BlockFormat,
}

impl CacheBlock {
    /// Execute this block against the *global* source/destination vectors.
    pub fn spmv_global(&self, x: &[f64], y: &mut [f64]) {
        let x_local = &x[self.cols.start..self.cols.end];
        let y_local = &mut y[self.rows.start..self.rows.end];
        self.format.spmv_local(x_local, y_local);
    }
}

/// A full matrix stored as a grid of independently-formatted cache blocks.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheBlockedMatrix {
    nrows: usize,
    ncols: usize,
    logical_nnz: usize,
    blocks: Vec<CacheBlock>,
}

impl CacheBlockedMatrix {
    /// Assemble from blocks. The caller (the tuner) is responsible for the blocks
    /// tiling the matrix; overlapping blocks would double-count contributions.
    pub fn new(nrows: usize, ncols: usize, blocks: Vec<CacheBlock>) -> Self {
        let logical_nnz = blocks.iter().map(|b| b.format.nnz()).sum();
        CacheBlockedMatrix {
            nrows,
            ncols,
            logical_nnz,
            blocks,
        }
    }

    /// The cache blocks in execution order (row-panel major).
    pub fn blocks(&self) -> &[CacheBlock] {
        &self.blocks
    }

    /// Number of cache blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// A histogram of block format names, for the tuning report.
    pub fn format_histogram(&self) -> Vec<(&'static str, usize)> {
        let mut counts: Vec<(&'static str, usize)> = Vec::new();
        for b in &self.blocks {
            let name = b.format.name();
            match counts.iter_mut().find(|(n, _)| *n == name) {
                Some((_, c)) => *c += 1,
                None => counts.push((name, 1)),
            }
        }
        counts
    }
}

impl MatrixShape for CacheBlockedMatrix {
    fn nrows(&self) -> usize {
        self.nrows
    }
    fn ncols(&self) -> usize {
        self.ncols
    }
    fn stored_entries(&self) -> usize {
        self.blocks.iter().map(|b| b.format.stored_entries()).sum()
    }
    fn nnz(&self) -> usize {
        self.logical_nnz
    }
    fn footprint_bytes(&self) -> usize {
        self.blocks.iter().map(|b| b.format.footprint_bytes()).sum()
    }
}

impl SpMv for CacheBlockedMatrix {
    fn spmv(&self, x: &[f64], y: &mut [f64]) {
        check_dims(self.nrows, self.ncols, x, y);
        for block in &self.blocks {
            block.spmv_global(x, y);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::max_abs_diff;
    use crate::formats::csr::CsrMatrix;
    use crate::formats::index::IndexWidth;
    use crate::formats::CooMatrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_coo(nrows: usize, ncols: usize, nnz: usize, seed: u64) -> CooMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut coo = CooMatrix::new(nrows, ncols);
        for _ in 0..nnz {
            coo.push(
                rng.random_range(0..nrows),
                rng.random_range(0..ncols),
                rng.random_range(-1.0..1.0),
            );
        }
        coo
    }

    /// Build a 2x2 grid of cache blocks with mixed formats by hand.
    fn hand_blocked(coo: &CooMatrix) -> CacheBlockedMatrix {
        let nrows = coo.nrows();
        let ncols = coo.ncols();
        let rmid = nrows / 2;
        let cmid = ncols / 2;
        let mut blocks = Vec::new();
        let specs = [
            (0..rmid, 0..cmid),
            (0..rmid, cmid..ncols),
            (rmid..nrows, 0..cmid),
            (rmid..nrows, cmid..ncols),
        ];
        for (i, (rows, cols)) in specs.into_iter().enumerate() {
            let sub = coo.sub_block(rows.clone(), cols.clone());
            let csr = CsrMatrix::from_coo(&sub);
            let format = match i {
                0 => BlockFormat::Csr(CompressedCsr::from_csr(&csr)),
                1 => BlockFormat::Bcsr(BcsrAuto::from_csr(&csr, 2, 2, IndexWidth::U16).unwrap()),
                2 => BlockFormat::Bcoo(BcooMatrix::from_csr(&csr, 1, 2, IndexWidth::U16).unwrap()),
                _ => BlockFormat::Gcsr(GcsrMatrix::from_csr(&csr, IndexWidth::U16).unwrap()),
            };
            blocks.push(CacheBlock { rows, cols, format });
        }
        CacheBlockedMatrix::new(nrows, ncols, blocks)
    }

    #[test]
    fn mixed_format_blocks_match_reference() {
        let coo = random_coo(60, 80, 700, 12);
        let reference = CsrMatrix::from_coo(&coo);
        let blocked = hand_blocked(&coo);
        let x: Vec<f64> = (0..80).map(|i| (i as f64 * 0.13).sin()).collect();
        assert!(max_abs_diff(&reference.spmv_alloc(&x), &blocked.spmv_alloc(&x)) < 1e-10);
        assert_eq!(blocked.nnz(), reference.nnz());
        assert_eq!(blocked.num_blocks(), 4);
    }

    #[test]
    fn format_histogram_reports_each_kind() {
        let coo = random_coo(40, 40, 300, 13);
        let blocked = hand_blocked(&coo);
        let hist = blocked.format_histogram();
        let total: usize = hist.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 4);
        assert!(hist.iter().any(|(n, _)| *n == "BCSR"));
        assert!(hist.iter().any(|(n, _)| *n == "BCOO"));
    }

    #[test]
    fn footprint_sums_blocks() {
        let coo = random_coo(30, 30, 100, 14);
        let blocked = hand_blocked(&coo);
        let sum: usize = blocked
            .blocks()
            .iter()
            .map(|b| b.format.footprint_bytes())
            .sum();
        assert_eq!(blocked.footprint_bytes(), sum);
        assert!(blocked.stored_entries() >= blocked.nnz());
    }

    #[test]
    fn empty_blocked_matrix() {
        let m = CacheBlockedMatrix::new(10, 10, vec![]);
        assert_eq!(m.spmv_alloc(&[1.0; 10]), vec![0.0; 10]);
        assert_eq!(m.footprint_bytes(), 0);
        assert_eq!(m.num_blocks(), 0);
    }
}
