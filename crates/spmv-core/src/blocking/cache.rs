//! Sparse cache blocking.
//!
//! Classical ("dense") cache blocking tiles the matrix into fixed spans of roughly
//! 1K × 1K elements. The paper's refinement (Section 4.2) budgets *touched cache
//! lines* instead: a fixed number of cache lines is reserved for the source and
//! destination vectors, rows are grouped until the destination budget is consumed,
//! and within each row panel columns are grouped until the number of **occupied**
//! source-vector cache lines reaches the source budget. Blocks therefore span very
//! different column counts but cost the same amount of cache.

use crate::dense::DOUBLES_PER_LINE;
use crate::formats::csr::CsrMatrix;
use crate::formats::traits::MatrixShape;
use std::ops::Range;

/// Budget configuration for sparse cache blocking.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheBlockingConfig {
    /// Total cache lines the blocking may assume are available for vector data
    /// (the paper derives this from the target's L2/local-store capacity).
    pub total_lines: usize,
    /// Fraction of the budget dedicated to the source vector `x`; the remainder
    /// holds the destination vector `y`.
    pub source_fraction: f64,
    /// If true, use classical dense blocking (fixed column span) instead of the
    /// sparse touched-lines heuristic — kept for the ablation benchmark.
    pub dense_spans: bool,
}

impl CacheBlockingConfig {
    /// Budget derived from a cache capacity in bytes, reserving `vector_share` of it
    /// for vector working set (the rest streams matrix data).
    pub fn from_cache_bytes(cache_bytes: usize, vector_share: f64) -> Self {
        let lines = ((cache_bytes as f64 * vector_share) as usize / 64).max(8);
        CacheBlockingConfig {
            total_lines: lines,
            source_fraction: 0.5,
            dense_spans: false,
        }
    }

    /// Cache lines budgeted for the source vector.
    pub fn source_lines(&self) -> usize {
        ((self.total_lines as f64 * self.source_fraction) as usize).max(1)
    }

    /// Cache lines budgeted for the destination vector.
    pub fn dest_lines(&self) -> usize {
        (self.total_lines - self.source_lines()).max(1)
    }
}

impl Default for CacheBlockingConfig {
    fn default() -> Self {
        // Default roughly matches a 1MB L2 with half the capacity for vectors.
        CacheBlockingConfig::from_cache_bytes(1 << 20, 0.5)
    }
}

/// The result of the cache-blocking pass: a grid of row panels, each split into
/// column ranges, such that every (row panel, column range) pair is one cache block.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheBlocking {
    /// Row panel boundaries.
    pub row_panels: Vec<Range<usize>>,
    /// For each row panel, the column ranges of its cache blocks.
    pub col_ranges: Vec<Vec<Range<usize>>>,
}

impl CacheBlocking {
    /// Total number of cache blocks.
    pub fn num_blocks(&self) -> usize {
        self.col_ranges.iter().map(|v| v.len()).sum()
    }

    /// Iterate over `(row_range, col_range)` pairs.
    pub fn blocks(&self) -> impl Iterator<Item = (Range<usize>, Range<usize>)> + '_ {
        self.row_panels
            .iter()
            .enumerate()
            .flat_map(move |(p, rows)| {
                self.col_ranges[p]
                    .iter()
                    .map(move |cols| (rows.clone(), cols.clone()))
            })
    }

    /// Whether the blocking covers the whole matrix exactly once (sanity invariant).
    pub fn covers(&self, nrows: usize, ncols: usize) -> bool {
        if nrows == 0 {
            return self.row_panels.is_empty();
        }
        let mut row_cursor = 0usize;
        for (p, rows) in self.row_panels.iter().enumerate() {
            if rows.start != row_cursor {
                return false;
            }
            row_cursor = rows.end;
            let mut col_cursor = 0usize;
            for cols in &self.col_ranges[p] {
                if cols.start != col_cursor {
                    return false;
                }
                col_cursor = cols.end;
            }
            if ncols > 0 && col_cursor != ncols {
                return false;
            }
        }
        row_cursor == nrows
    }
}

/// Compute the sparse cache blocking of `csr` under `config`.
pub fn cache_block(csr: &CsrMatrix, config: &CacheBlockingConfig) -> CacheBlocking {
    let nrows = csr.nrows();
    let ncols = csr.ncols();
    if nrows == 0 {
        return CacheBlocking {
            row_panels: vec![],
            col_ranges: vec![],
        };
    }

    // Row panels: enough rows that the destination vector slice fills the dest budget.
    let dest_rows_per_panel = (config.dest_lines() * DOUBLES_PER_LINE).max(1);
    let mut row_panels = Vec::new();
    let mut start = 0usize;
    while start < nrows {
        let end = (start + dest_rows_per_panel).min(nrows);
        row_panels.push(start..end);
        start = end;
    }

    let source_budget = config.source_lines();
    let mut col_ranges = Vec::with_capacity(row_panels.len());
    for rows in &row_panels {
        if config.dense_spans {
            // Classical dense cache blocking: fixed column span regardless of
            // occupancy (the ablation baseline).
            let span = (source_budget * DOUBLES_PER_LINE).max(1);
            let mut ranges = Vec::new();
            let mut c = 0usize;
            while c < ncols {
                let e = (c + span).min(ncols);
                ranges.push(c..e);
                c = e;
            }
            if ranges.is_empty() {
                ranges.push(0..ncols);
            }
            col_ranges.push(ranges);
            continue;
        }

        // Sparse blocking: walk columns left to right, greedily extending the block
        // until the number of *touched* source cache lines reaches the budget.
        // Touched lines are discovered from the panel's column indices.
        let mut touched: Vec<usize> = Vec::new();
        for row in rows.clone() {
            for k in csr.row_ptr()[row]..csr.row_ptr()[row + 1] {
                touched.push(csr.col_idx()[k] as usize);
            }
        }
        touched.sort_unstable();
        touched.dedup();
        // Map to cache lines of x.
        let mut lines: Vec<usize> = touched.iter().map(|&c| c / DOUBLES_PER_LINE).collect();
        lines.dedup();

        let mut ranges = Vec::new();
        if lines.is_empty() {
            ranges.push(0..ncols);
            col_ranges.push(ranges);
            continue;
        }
        // Group consecutive runs of `source_budget` touched lines into one block; the
        // block's column range extends to just before the first column of the next
        // group (so untouched columns are carried along for free).
        let mut group_start_col = 0usize;
        let mut idx = 0usize;
        while idx < lines.len() {
            let group_end_idx = (idx + source_budget).min(lines.len());
            let range_end_col = if group_end_idx == lines.len() {
                ncols
            } else {
                // First column of the next group's first touched line.
                lines[group_end_idx] * DOUBLES_PER_LINE
            };
            ranges.push(group_start_col..range_end_col);
            group_start_col = range_end_col;
            idx = group_end_idx;
        }
        col_ranges.push(ranges);
    }

    CacheBlocking {
        row_panels,
        col_ranges,
    }
}

/// Count the source-vector cache lines a given (row range, col range) block touches.
/// Exposed for tests and for the architecture simulator's traffic accounting.
pub fn touched_source_lines(csr: &CsrMatrix, rows: &Range<usize>, cols: &Range<usize>) -> usize {
    let mut lines: Vec<usize> = Vec::new();
    for row in rows.clone() {
        for k in csr.row_ptr()[row]..csr.row_ptr()[row + 1] {
            let c = csr.col_idx()[k] as usize;
            if cols.contains(&c) {
                lines.push(c / DOUBLES_PER_LINE);
            }
        }
    }
    lines.sort_unstable();
    lines.dedup();
    lines.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formats::CooMatrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_csr(nrows: usize, ncols: usize, nnz: usize, seed: u64) -> CsrMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut coo = CooMatrix::new(nrows, ncols);
        for _ in 0..nnz {
            coo.push(rng.random_range(0..nrows), rng.random_range(0..ncols), 1.0);
        }
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn blocking_covers_matrix() {
        let csr = random_csr(500, 800, 5000, 1);
        let cfg = CacheBlockingConfig {
            total_lines: 32,
            source_fraction: 0.5,
            dense_spans: false,
        };
        let blocking = cache_block(&csr, &cfg);
        assert!(blocking.covers(500, 800));
        assert!(blocking.num_blocks() >= 1);
    }

    #[test]
    fn dense_blocking_covers_matrix() {
        let csr = random_csr(300, 1000, 3000, 2);
        let cfg = CacheBlockingConfig {
            total_lines: 32,
            source_fraction: 0.5,
            dense_spans: true,
        };
        let blocking = cache_block(&csr, &cfg);
        assert!(blocking.covers(300, 1000));
    }

    #[test]
    fn sparse_blocks_respect_source_budget() {
        let csr = random_csr(64, 4096, 4000, 3);
        let cfg = CacheBlockingConfig {
            total_lines: 16,
            source_fraction: 0.5,
            dense_spans: false,
        };
        let blocking = cache_block(&csr, &cfg);
        for (rows, cols) in blocking.blocks() {
            let touched = touched_source_lines(&csr, &rows, &cols);
            assert!(
                touched <= cfg.source_lines(),
                "block {rows:?}x{cols:?} touches {touched} lines > budget {}",
                cfg.source_lines()
            );
        }
    }

    #[test]
    fn sparse_blocking_adapts_spans_to_occupancy() {
        // A matrix whose left half is dense and right half nearly empty: the sparse
        // heuristic should produce wider column ranges on the sparse side.
        let mut coo = CooMatrix::new(8, 2048);
        for row in 0..8 {
            for col in 0..256 {
                coo.push(row, col, 1.0);
            }
        }
        coo.push(0, 2000, 1.0);
        let csr = CsrMatrix::from_coo(&coo);
        let cfg = CacheBlockingConfig {
            total_lines: 16,
            source_fraction: 0.5,
            dense_spans: false,
        };
        let blocking = cache_block(&csr, &cfg);
        let spans: Vec<usize> = blocking.col_ranges[0]
            .iter()
            .map(|r| r.end - r.start)
            .collect();
        assert!(spans.len() >= 2);
        // The widest block (covering the sparse tail) must be wider than the first
        // (fully dense) block: spans adapt to occupancy rather than being uniform.
        assert!(spans.iter().max().unwrap() > spans.first().unwrap());
    }

    #[test]
    fn small_matrix_single_block() {
        let csr = random_csr(10, 10, 20, 4);
        let cfg = CacheBlockingConfig::default();
        let blocking = cache_block(&csr, &cfg);
        assert_eq!(blocking.num_blocks(), 1);
        assert!(blocking.covers(10, 10));
    }

    #[test]
    fn empty_matrix() {
        let csr = CsrMatrix::from_coo(&CooMatrix::new(0, 0));
        let blocking = cache_block(&csr, &CacheBlockingConfig::default());
        assert_eq!(blocking.num_blocks(), 0);
        assert!(blocking.covers(0, 0));
    }

    #[test]
    fn empty_panel_gets_full_span() {
        // Rows with no nonzeros still need a covering column range.
        let coo = CooMatrix::from_triplets(2000, 100, vec![(0, 0, 1.0)]).unwrap();
        let csr = CsrMatrix::from_coo(&coo);
        let cfg = CacheBlockingConfig {
            total_lines: 8,
            source_fraction: 0.5,
            dense_spans: false,
        };
        let blocking = cache_block(&csr, &cfg);
        assert!(blocking.covers(2000, 100));
    }

    #[test]
    fn config_budget_split() {
        let cfg = CacheBlockingConfig {
            total_lines: 100,
            source_fraction: 0.75,
            dense_spans: false,
        };
        assert_eq!(cfg.source_lines(), 75);
        assert_eq!(cfg.dest_lines(), 25);
        let from_bytes = CacheBlockingConfig::from_cache_bytes(1 << 20, 0.5);
        assert_eq!(from_bytes.total_lines, (1 << 19) / 64);
    }
}
