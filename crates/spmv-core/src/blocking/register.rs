//! Register-blocking fill estimation.
//!
//! The paper replaces OSKI's benchmark-driven search with a single pass over the
//! nonzeros that, for every candidate `r × c` shape, counts how many tiles would be
//! stored and therefore how much zero fill the shape pays. The shape (together with
//! the index width and BCSR-vs-BCOO choice) minimizing the resulting byte footprint
//! wins. This module provides that counting pass.

use crate::formats::bcsr::ALLOWED_BLOCK_DIMS;
use crate::formats::csr::CsrMatrix;
use crate::formats::index::IndexWidth;
use crate::formats::traits::MatrixShape;
use crate::{INDEX32_BYTES, VALUE_BYTES};

/// Result of estimating one register block shape on one matrix (or cache block).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FillEstimate {
    /// Rows per tile.
    pub r: usize,
    /// Columns per tile.
    pub c: usize,
    /// Number of tiles that would be stored.
    pub tiles: usize,
    /// Number of block rows containing at least one tile.
    pub occupied_block_rows: usize,
    /// Stored values (tiles × r × c) divided by logical nonzeros.
    pub fill_ratio: f64,
}

impl FillEstimate {
    /// Bytes needed to store the matrix as BCSR at this shape and index width.
    pub fn bcsr_bytes(&self, nrows: usize, width: IndexWidth) -> usize {
        let nblock_rows = nrows.div_ceil(self.r);
        self.tiles * self.r * self.c * VALUE_BYTES
            + self.tiles * width.bytes()
            + (nblock_rows + 1) * INDEX32_BYTES
    }

    /// Bytes needed to store the matrix as BCOO at this shape and index width
    /// (a row and a column coordinate per tile, no pointer array).
    pub fn bcoo_bytes(&self, width: IndexWidth) -> usize {
        self.tiles * self.r * self.c * VALUE_BYTES + self.tiles * 2 * width.bytes()
    }
}

/// The candidate shapes the paper sweeps: every power-of-two pair up to 4×4.
pub fn register_block_candidates() -> Vec<(usize, usize)> {
    let mut v = Vec::new();
    for &r in &ALLOWED_BLOCK_DIMS {
        for &c in &ALLOWED_BLOCK_DIMS {
            v.push((r, c));
        }
    }
    v
}

/// Count the tiles an `r × c` register blocking of `csr` would store.
///
/// This is the single pass over the nonzeros the paper's heuristic performs: for each
/// block row, the set of occupied block columns is discovered by scanning the member
/// rows' column indices.
pub fn estimate_fill(csr: &CsrMatrix, r: usize, c: usize) -> FillEstimate {
    let nrows = csr.nrows();
    let nblock_rows = nrows.div_ceil(r.max(1));
    let mut tiles = 0usize;
    let mut occupied_block_rows = 0usize;
    let mut scratch: Vec<usize> = Vec::new();
    for brow in 0..nblock_rows {
        let row_lo = brow * r;
        let row_hi = (row_lo + r).min(nrows);
        scratch.clear();
        for row in row_lo..row_hi {
            for k in csr.row_ptr()[row]..csr.row_ptr()[row + 1] {
                scratch.push(csr.col_idx()[k] as usize / c);
            }
        }
        if scratch.is_empty() {
            continue;
        }
        scratch.sort_unstable();
        scratch.dedup();
        tiles += scratch.len();
        occupied_block_rows += 1;
    }
    let stored = tiles * r * c;
    let fill_ratio = if csr.nnz() == 0 {
        1.0
    } else {
        stored as f64 / csr.nnz() as f64
    };
    FillEstimate {
        r,
        c,
        tiles,
        occupied_block_rows,
        fill_ratio,
    }
}

/// Estimate every candidate shape for `csr`.
pub fn estimate_all_shapes(csr: &CsrMatrix) -> Vec<FillEstimate> {
    register_block_candidates()
        .into_iter()
        .map(|(r, c)| estimate_fill(csr, r, c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formats::bcsr::BcsrMatrix;
    use crate::formats::{CooMatrix, CsrMatrix};

    fn block_structured() -> CsrMatrix {
        // 4x4 dense blocks along the diagonal of a 16x16 matrix.
        let mut coo = CooMatrix::new(16, 16);
        for b in 0..4 {
            for i in 0..4 {
                for j in 0..4 {
                    coo.push(b * 4 + i, b * 4 + j, 1.0);
                }
            }
        }
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn estimates_match_materialized_bcsr() {
        let csr = block_structured();
        for (r, c) in register_block_candidates() {
            let est = estimate_fill(&csr, r, c);
            let bcsr = BcsrMatrix::<u32>::from_csr(&csr, r, c).unwrap();
            assert_eq!(est.tiles, bcsr.num_blocks(), "tile count for {r}x{c}");
            assert!((est.fill_ratio - bcsr.fill_ratio()).abs() < 1e-12);
            assert_eq!(
                est.bcsr_bytes(csr.nrows(), IndexWidth::U32),
                bcsr.footprint_bytes()
            );
        }
    }

    #[test]
    fn perfect_blocks_have_unit_fill() {
        let csr = block_structured();
        let est = estimate_fill(&csr, 4, 4);
        assert_eq!(est.tiles, 4);
        assert!((est.fill_ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    fn diagonal_pays_fill_at_larger_shapes() {
        let mut coo = CooMatrix::new(16, 16);
        for i in 0..16 {
            coo.push(i, i, 1.0);
        }
        let csr = CsrMatrix::from_coo(&coo);
        assert!((estimate_fill(&csr, 1, 1).fill_ratio - 1.0).abs() < 1e-12);
        assert!((estimate_fill(&csr, 2, 2).fill_ratio - 2.0).abs() < 1e-12);
        assert!((estimate_fill(&csr, 4, 4).fill_ratio - 4.0).abs() < 1e-12);
    }

    #[test]
    fn bcoo_bytes_cheaper_when_block_rows_mostly_empty() {
        let coo =
            CooMatrix::from_triplets(10_000, 100, vec![(0, 0, 1.0), (9_999, 99, 1.0)]).unwrap();
        let csr = CsrMatrix::from_coo(&coo);
        let est = estimate_fill(&csr, 1, 1);
        assert!(est.bcoo_bytes(IndexWidth::U16) < est.bcsr_bytes(csr.nrows(), IndexWidth::U16));
    }

    #[test]
    fn candidate_list_is_the_paper_sweep() {
        let cands = register_block_candidates();
        assert_eq!(cands.len(), 16);
        assert!(cands.contains(&(1, 1)));
        assert!(cands.contains(&(4, 4)));
        assert!(cands.contains(&(2, 4)));
        assert!(cands.contains(&(3, 3)));
        assert!(!cands.contains(&(8, 8)));
    }

    #[test]
    fn estimate_all_shapes_covers_candidates() {
        let csr = block_structured();
        let all = estimate_all_shapes(&csr);
        assert_eq!(all.len(), 16);
    }

    #[test]
    fn empty_matrix_fill_is_one() {
        let csr = CsrMatrix::from_coo(&CooMatrix::new(8, 8));
        let est = estimate_fill(&csr, 2, 2);
        assert_eq!(est.tiles, 0);
        assert_eq!(est.fill_ratio, 1.0);
        assert_eq!(est.occupied_block_rows, 0);
    }

    #[test]
    fn occupied_block_rows_counted() {
        let coo = CooMatrix::from_triplets(8, 8, vec![(0, 0, 1.0), (7, 7, 1.0)]).unwrap();
        let csr = CsrMatrix::from_coo(&coo);
        let est = estimate_fill(&csr, 2, 2);
        assert_eq!(est.occupied_block_rows, 2);
    }
}
