//! TLB blocking.
//!
//! Prior work the paper cites showed TLB misses can vary by an order of magnitude
//! with the blocking strategy. The paper's heuristic (Section 4.2) bounds the number
//! of *unique source-vector pages* a block touches, and is applied between the cache
//! row-panel pass and the cache column pass. On the Opteron the budget corresponds to
//! the small L1 TLB (32 entries of 4KB pages).

use crate::formats::csr::CsrMatrix;
use std::ops::Range;

/// Page size assumed for TLB blocking (4 KiB, i.e. 512 doubles of the source vector).
pub const PAGE_BYTES: usize = 4096;

/// Doubles of the source vector per page.
pub const DOUBLES_PER_PAGE: usize = PAGE_BYTES / std::mem::size_of::<f64>();

/// Configuration for the TLB blocking pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Maximum number of distinct source-vector pages one block may touch.
    /// The Opteron L1 DTLB has 32 entries; a handful are reserved for the matrix
    /// streams and destination vector, leaving the rest for the source vector.
    pub max_source_pages: usize,
}

impl Default for TlbConfig {
    fn default() -> Self {
        TlbConfig {
            max_source_pages: 24,
        }
    }
}

/// The TLB blocking of one row panel: column ranges each touching at most
/// `max_source_pages` distinct source pages.
#[derive(Debug, Clone, PartialEq)]
pub struct TlbBlocking {
    /// Column ranges produced for the row panel.
    pub col_ranges: Vec<Range<usize>>,
}

impl TlbBlocking {
    /// Whether the ranges tile `0..ncols` exactly.
    pub fn covers(&self, ncols: usize) -> bool {
        let mut cursor = 0usize;
        for r in &self.col_ranges {
            if r.start != cursor {
                return false;
            }
            cursor = r.end;
        }
        cursor == ncols
    }
}

/// Split the columns of `rows` (a row panel of `csr`) so each range touches at most
/// `config.max_source_pages` distinct pages of the source vector.
pub fn tlb_block(csr: &CsrMatrix, rows: &Range<usize>, config: &TlbConfig) -> TlbBlocking {
    let ncols = crate::formats::traits::MatrixShape::ncols(csr);
    // Distinct touched columns of the panel.
    let mut touched: Vec<usize> = Vec::new();
    for row in rows.clone() {
        for k in csr.row_ptr()[row]..csr.row_ptr()[row + 1] {
            touched.push(csr.col_idx()[k] as usize);
        }
    }
    touched.sort_unstable();
    touched.dedup();
    let mut pages: Vec<usize> = touched.iter().map(|&c| c / DOUBLES_PER_PAGE).collect();
    pages.dedup();

    if pages.is_empty() {
        return TlbBlocking {
            col_ranges: std::iter::once(0..ncols).collect(),
        };
    }

    let budget = config.max_source_pages.max(1);
    let mut ranges = Vec::new();
    let mut start_col = 0usize;
    let mut idx = 0usize;
    while idx < pages.len() {
        let end_idx = (idx + budget).min(pages.len());
        let end_col = if end_idx == pages.len() {
            ncols
        } else {
            pages[end_idx] * DOUBLES_PER_PAGE
        };
        ranges.push(start_col..end_col);
        start_col = end_col;
        idx = end_idx;
    }
    TlbBlocking { col_ranges: ranges }
}

/// Count distinct source pages touched by a (rows, cols) block — used by tests and by
/// the architecture simulator's TLB model.
pub fn touched_source_pages(csr: &CsrMatrix, rows: &Range<usize>, cols: &Range<usize>) -> usize {
    let mut pages: Vec<usize> = Vec::new();
    for row in rows.clone() {
        for k in csr.row_ptr()[row]..csr.row_ptr()[row + 1] {
            let c = csr.col_idx()[k] as usize;
            if cols.contains(&c) {
                pages.push(c / DOUBLES_PER_PAGE);
            }
        }
    }
    pages.sort_unstable();
    pages.dedup();
    pages.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formats::{CooMatrix, CsrMatrix};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn scattered_csr(nrows: usize, ncols: usize, nnz: usize, seed: u64) -> CsrMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut coo = CooMatrix::new(nrows, ncols);
        for _ in 0..nnz {
            coo.push(rng.random_range(0..nrows), rng.random_range(0..ncols), 1.0);
        }
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn ranges_cover_and_respect_budget() {
        let csr = scattered_csr(16, 1 << 16, 2000, 5);
        let cfg = TlbConfig {
            max_source_pages: 8,
        };
        let blocking = tlb_block(&csr, &(0..16), &cfg);
        assert!(blocking.covers(1 << 16));
        for r in &blocking.col_ranges {
            assert!(touched_source_pages(&csr, &(0..16), r) <= 8);
        }
    }

    #[test]
    fn narrow_matrix_single_range() {
        let csr = scattered_csr(16, 256, 100, 6);
        let blocking = tlb_block(&csr, &(0..16), &TlbConfig::default());
        assert_eq!(blocking.col_ranges.len(), 1);
        assert!(blocking.covers(256));
    }

    #[test]
    fn empty_panel_full_range() {
        let coo = CooMatrix::from_triplets(10, 5000, vec![(0, 0, 1.0)]).unwrap();
        let csr = CsrMatrix::from_coo(&coo);
        let blocking = tlb_block(&csr, &(5..10), &TlbConfig::default());
        assert_eq!(blocking.col_ranges, vec![0..5000]);
    }

    #[test]
    fn budget_of_one_splits_per_page() {
        // Nonzeros on 3 separate pages with budget 1 -> 3 ranges.
        let coo = CooMatrix::from_triplets(
            1,
            DOUBLES_PER_PAGE * 4,
            vec![
                (0, 0, 1.0),
                (0, DOUBLES_PER_PAGE, 1.0),
                (0, 3 * DOUBLES_PER_PAGE, 1.0),
            ],
        )
        .unwrap();
        let csr = CsrMatrix::from_coo(&coo);
        let blocking = tlb_block(
            &csr,
            &(0..1),
            &TlbConfig {
                max_source_pages: 1,
            },
        );
        assert_eq!(blocking.col_ranges.len(), 3);
        assert!(blocking.covers(DOUBLES_PER_PAGE * 4));
    }

    #[test]
    fn page_constants() {
        assert_eq!(DOUBLES_PER_PAGE, 512);
    }
}
