//! Dense vector utilities: cache-line aligned storage and basic BLAS-1 helpers.
//!
//! SpMV streams the matrix once but repeatedly touches the source and destination
//! vectors, so the paper's cache-blocking analysis counts *cache lines* of vector
//! data. [`AlignedVec`] guarantees 64-byte alignment so that an element index maps
//! deterministically onto a cache line index, which both the blocking heuristics
//! (`blocking::cache`) and the architecture simulator rely on.

use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::ops::{Deref, DerefMut, Index, IndexMut};
use std::ptr::NonNull;

/// Cache line size assumed throughout the crate (bytes). All platforms evaluated in
/// the paper (Opteron, Clovertown, Niagara L2, Cell) use 64-byte lines except the
/// Niagara L1 (16 bytes), which the architecture simulator models separately.
pub const CACHE_LINE_BYTES: usize = 64;

/// Number of `f64` elements per 64-byte cache line.
pub const DOUBLES_PER_LINE: usize = CACHE_LINE_BYTES / std::mem::size_of::<f64>();

/// A heap-allocated `f64` buffer aligned to a cache-line boundary.
///
/// The alignment makes element→cache-line arithmetic exact, which the cache and TLB
/// blocking heuristics depend on, and gives vectorized kernels aligned loads.
pub struct AlignedVec {
    ptr: NonNull<f64>,
    len: usize,
}

// SAFETY: AlignedVec owns its allocation exclusively; the raw pointer is never
// aliased outside of &self/&mut self borrows, so it is safe to move between threads
// and to share immutably.
unsafe impl Send for AlignedVec {}
unsafe impl Sync for AlignedVec {}

impl AlignedVec {
    /// Allocate a zero-initialised aligned vector of `len` doubles.
    pub fn zeroed(len: usize) -> Self {
        if len == 0 {
            return AlignedVec {
                ptr: NonNull::dangling(),
                len: 0,
            };
        }
        let layout = Self::layout(len);
        // SAFETY: layout has non-zero size because len > 0.
        let raw = unsafe { alloc_zeroed(layout) } as *mut f64;
        let ptr = NonNull::new(raw).unwrap_or_else(|| handle_alloc_error(layout));
        AlignedVec { ptr, len }
    }

    /// Allocate an aligned vector and fill it from a slice.
    pub fn from_slice(data: &[f64]) -> Self {
        let mut v = Self::zeroed(data.len());
        v.as_mut_slice().copy_from_slice(data);
        v
    }

    /// Allocate an aligned vector filled with a constant.
    pub fn filled(len: usize, value: f64) -> Self {
        let mut v = Self::zeroed(len);
        for x in v.as_mut_slice() {
            *x = value;
        }
        v
    }

    fn layout(len: usize) -> Layout {
        Layout::from_size_align(len * std::mem::size_of::<f64>(), CACHE_LINE_BYTES)
            .expect("aligned vector layout")
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Borrow the contents as a slice.
    pub fn as_slice(&self) -> &[f64] {
        if self.len == 0 {
            return &[];
        }
        // SAFETY: ptr is valid for len elements and properly aligned.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }

    /// Borrow the contents as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        if self.len == 0 {
            return &mut [];
        }
        // SAFETY: ptr is valid for len elements, aligned, and uniquely borrowed.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }

    /// Set every element to zero.
    pub fn clear(&mut self) {
        for x in self.as_mut_slice() {
            *x = 0.0;
        }
    }

    /// Number of distinct 64-byte cache lines spanned by this vector.
    pub fn cache_lines(&self) -> usize {
        self.len.div_ceil(DOUBLES_PER_LINE)
    }
}

impl Drop for AlignedVec {
    fn drop(&mut self) {
        if self.len != 0 {
            // SAFETY: allocated with the same layout in `zeroed`.
            unsafe { dealloc(self.ptr.as_ptr() as *mut u8, Self::layout(self.len)) };
        }
    }
}

impl Clone for AlignedVec {
    fn clone(&self) -> Self {
        Self::from_slice(self.as_slice())
    }
}

impl std::fmt::Debug for AlignedVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AlignedVec")
            .field("len", &self.len)
            .finish()
    }
}

impl Deref for AlignedVec {
    type Target = [f64];
    fn deref(&self) -> &[f64] {
        self.as_slice()
    }
}

impl DerefMut for AlignedVec {
    fn deref_mut(&mut self) -> &mut [f64] {
        self.as_mut_slice()
    }
}

impl Index<usize> for AlignedVec {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        &self.as_slice()[i]
    }
}

impl IndexMut<usize> for AlignedVec {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.as_mut_slice()[i]
    }
}

impl From<Vec<f64>> for AlignedVec {
    fn from(v: Vec<f64>) -> Self {
        Self::from_slice(&v)
    }
}

impl PartialEq for AlignedVec {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

/// `y ← y + alpha * x` for dense vectors.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy operands must have equal length");
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// Dot product of two dense vectors.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot operands must have equal length");
    x.iter().zip(y.iter()).map(|(a, b)| a * b).sum()
}

/// Euclidean norm of a dense vector.
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Maximum absolute difference between two vectors, used by tests to compare kernel
/// variants against the reference implementation.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "compared vectors must have equal length");
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_is_zero_and_aligned() {
        let v = AlignedVec::zeroed(1000);
        assert_eq!(v.len(), 1000);
        assert!(v.as_slice().iter().all(|&x| x == 0.0));
        assert_eq!(v.as_slice().as_ptr() as usize % CACHE_LINE_BYTES, 0);
    }

    #[test]
    fn empty_vector_is_usable() {
        let v = AlignedVec::zeroed(0);
        assert!(v.is_empty());
        assert_eq!(v.as_slice(), &[] as &[f64]);
        assert_eq!(v.cache_lines(), 0);
    }

    #[test]
    fn from_slice_round_trips() {
        let data: Vec<f64> = (0..37).map(|i| i as f64 * 0.5).collect();
        let v = AlignedVec::from_slice(&data);
        assert_eq!(v.as_slice(), data.as_slice());
    }

    #[test]
    fn filled_and_clear() {
        let mut v = AlignedVec::filled(10, 3.5);
        assert!(v.iter().all(|&x| x == 3.5));
        v.clear();
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn clone_is_deep() {
        let mut a = AlignedVec::from_slice(&[1.0, 2.0, 3.0]);
        let b = a.clone();
        a[0] = 99.0;
        assert_eq!(b[0], 1.0);
    }

    #[test]
    fn cache_line_count() {
        // 8 doubles per 64B line.
        assert_eq!(AlignedVec::zeroed(8).cache_lines(), 1);
        assert_eq!(AlignedVec::zeroed(9).cache_lines(), 2);
        assert_eq!(AlignedVec::zeroed(64).cache_lines(), 8);
    }

    #[test]
    fn indexing_and_mutation() {
        let mut v = AlignedVec::zeroed(4);
        v[2] = 7.0;
        assert_eq!(v[2], 7.0);
        assert_eq!(v.as_slice(), &[0.0, 0.0, 7.0, 0.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, vec![12.0, 24.0, 36.0]);
    }

    #[test]
    fn dot_and_norm() {
        let x = vec![3.0, 4.0];
        assert_eq!(dot(&x, &x), 25.0);
        assert_eq!(norm2(&x), 5.0);
    }

    #[test]
    fn max_abs_diff_detects_largest_gap() {
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![1.0, 2.5, 2.0];
        assert_eq!(max_abs_diff(&a, &b), 1.0);
    }

    #[test]
    fn from_vec_conversion() {
        let v: AlignedVec = vec![1.0, 2.0].into();
        assert_eq!(v.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn equality_compares_contents() {
        let a = AlignedVec::from_slice(&[1.0, 2.0]);
        let b = AlignedVec::from_slice(&[1.0, 2.0]);
        let c = AlignedVec::from_slice(&[1.0, 3.0]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
