//! Matrix structure statistics.
//!
//! Section 5.1 of the paper predicts performance from a handful of structural
//! properties: nonzeros per row (loop length), aspect ratio, how concentrated the
//! nonzeros are near the diagonal, empty rows, natural dense-block substructure, and
//! the resulting flop:byte ratio. This module computes those properties; the
//! `spmv-matrices` crate uses them to verify its synthetic suite matches Table 3 and
//! the architecture simulator uses them to drive its analytic model.

use crate::blocking::register::estimate_fill;
use crate::formats::csr::CsrMatrix;
use crate::formats::traits::MatrixShape;

/// Structural summary of a sparse matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixStats {
    /// Number of rows.
    pub nrows: usize,
    /// Number of columns.
    pub ncols: usize,
    /// Number of stored nonzeros.
    pub nnz: usize,
    /// Mean nonzeros per row.
    pub nnz_per_row_mean: f64,
    /// Minimum nonzeros in any row.
    pub nnz_per_row_min: usize,
    /// Maximum nonzeros in any row.
    pub nnz_per_row_max: usize,
    /// Number of rows with no nonzeros.
    pub empty_rows: usize,
    /// Columns divided by rows (LP's dramatic aspect ratio is ~262).
    pub aspect_ratio: f64,
    /// Fraction of nonzeros within a band of ±(dimension/64) of the diagonal —
    /// a measure of diagonal concentration (Epidemiology ≈ 1.0, webbase ≈ low).
    pub diagonal_fraction: f64,
    /// Fill ratio a 2×2 register blocking would pay; near 1.0 indicates natural
    /// dense-block substructure (the FEM matrices), near 4.0 indicates scatter.
    pub fill_2x2: f64,
    /// Fill ratio a 4×4 register blocking would pay.
    pub fill_4x4: f64,
    /// CSR flop:byte ratio (upper bound 0.25 when vectors are ignored).
    pub flop_byte_csr: f64,
}

impl MatrixStats {
    /// Compute statistics for `csr`.
    pub fn compute(csr: &CsrMatrix) -> Self {
        let nrows = csr.nrows();
        let ncols = csr.ncols();
        let nnz = csr.nnz();
        let mut min_r = usize::MAX;
        let mut max_r = 0usize;
        let mut empty = 0usize;
        for i in 0..nrows {
            let n = csr.row_nnz(i);
            min_r = min_r.min(n);
            max_r = max_r.max(n);
            if n == 0 {
                empty += 1;
            }
        }
        if nrows == 0 {
            min_r = 0;
        }

        // Diagonal concentration: count nonzeros with |col - row*ncols/nrows| small.
        let band = (nrows.max(ncols) / 64).max(1);
        let mut near_diag = 0usize;
        if nrows > 0 {
            for (row, col, _) in csr.iter() {
                // Scale the row index onto the column space for rectangular matrices.
                let diag_col = if nrows == ncols {
                    row
                } else {
                    row * ncols.max(1) / nrows
                };
                if col.abs_diff(diag_col) <= band {
                    near_diag += 1;
                }
            }
        }
        let diagonal_fraction = if nnz == 0 {
            0.0
        } else {
            near_diag as f64 / nnz as f64
        };

        let fill_2x2 = estimate_fill(csr, 2, 2).fill_ratio;
        let fill_4x4 = estimate_fill(csr, 4, 4).fill_ratio;

        MatrixStats {
            nrows,
            ncols,
            nnz,
            nnz_per_row_mean: if nrows == 0 {
                0.0
            } else {
                nnz as f64 / nrows as f64
            },
            nnz_per_row_min: min_r,
            nnz_per_row_max: max_r,
            empty_rows: empty,
            aspect_ratio: if nrows == 0 {
                0.0
            } else {
                ncols as f64 / nrows as f64
            },
            diagonal_fraction,
            fill_2x2,
            fill_4x4,
            flop_byte_csr: csr.flop_byte_ratio(),
        }
    }

    /// Whether the matrix has the natural dense-block substructure that makes
    /// register blocking profitable (FEM matrices in the suite).
    pub fn has_block_structure(&self) -> bool {
        self.fill_2x2 < 1.4
    }

    /// Whether rows are too short to amortize CSR loop startup (the webbase /
    /// Epidemiology / Circuit / Economics failure mode of Section 5.1).
    pub fn has_short_rows(&self) -> bool {
        self.nnz_per_row_mean < 8.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formats::CooMatrix;

    #[test]
    fn dense_matrix_stats() {
        let n = 64;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            for j in 0..n {
                coo.push(i, j, 1.0);
            }
        }
        let stats = MatrixStats::compute(&CsrMatrix::from_coo(&coo));
        assert_eq!(stats.nnz, n * n);
        assert_eq!(stats.nnz_per_row_mean, n as f64);
        assert_eq!(stats.empty_rows, 0);
        assert!((stats.fill_4x4 - 1.0).abs() < 1e-12);
        assert!(stats.has_block_structure());
        assert!(!stats.has_short_rows());
        // Dense-in-sparse CSR flop:byte approaches 2/12 = 0.167 (8B value + 4B index).
        assert!((stats.flop_byte_csr - 0.166).abs() < 0.01);
    }

    #[test]
    fn diagonal_matrix_stats() {
        let n = 512;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 1.0);
        }
        let stats = MatrixStats::compute(&CsrMatrix::from_coo(&coo));
        assert!((stats.diagonal_fraction - 1.0).abs() < 1e-12);
        assert!(stats.has_short_rows());
        assert!((stats.fill_2x2 - 2.0).abs() < 1e-12);
        assert!(!stats.has_block_structure());
    }

    #[test]
    fn rectangular_aspect_ratio() {
        let coo = CooMatrix::from_triplets(4, 1000, vec![(0, 999, 1.0), (3, 0, 1.0)]).unwrap();
        let stats = MatrixStats::compute(&CsrMatrix::from_coo(&coo));
        assert_eq!(stats.aspect_ratio, 250.0);
        assert_eq!(stats.empty_rows, 2);
        assert_eq!(stats.nnz_per_row_max, 1);
    }

    #[test]
    fn empty_matrix_stats() {
        let stats = MatrixStats::compute(&CsrMatrix::from_coo(&CooMatrix::new(0, 0)));
        assert_eq!(stats.nnz, 0);
        assert_eq!(stats.nnz_per_row_min, 0);
        assert_eq!(stats.diagonal_fraction, 0.0);
    }

    #[test]
    fn stats_clone_and_compare() {
        let coo = CooMatrix::from_triplets(10, 10, vec![(0, 0, 1.0), (5, 5, 2.0)]).unwrap();
        let stats = MatrixStats::compute(&CsrMatrix::from_coo(&coo));
        let copy = stats.clone();
        assert_eq!(stats, copy);
        assert_eq!(copy.nnz, 2);
    }
}
