//! Register-blocked CSR (BCSR).
//!
//! Register blocking (Section 4.2) groups adjacent nonzeros into small `r × c` tiles,
//! storing one column index per tile rather than one per nonzero, at the cost of
//! explicitly stored zero fill. The paper's register-blocking sweep covers every
//! block shape up to 4×4; this module supports the same set, with each shape executed
//! by a macro-generated, fully-unrolled microkernel
//! ([`crate::kernels::blocked`]). Tile column indices are stored at a compile-time
//! width `I` ([`IndexStorage`]), so the hot loop never consults a width tag; 16-bit
//! storage is admissible when the block column span fits (`ncols / c ≤ 65536`).

use crate::error::{Error, Result};
use crate::formats::coo::CooMatrix;
use crate::formats::csr::CsrMatrix;
use crate::formats::index::{IndexStorage, IndexWidth};
use crate::formats::traits::{check_dims, MatrixShape, SpMv};
use crate::{INDEX32_BYTES, VALUE_BYTES};

/// Register block dimensions allowed by the paper's sweep: every size up to 4.
pub const ALLOWED_BLOCK_DIMS: [usize; 4] = [1, 2, 3, 4];

/// Return true if `r × c` is a register block shape the kernels support.
pub fn block_shape_supported(r: usize, c: usize) -> bool {
    ALLOWED_BLOCK_DIMS.contains(&r) && ALLOWED_BLOCK_DIMS.contains(&c)
}

/// Register-blocked CSR matrix with compile-time index width.
///
/// Rows are grouped into block rows of `r` consecutive rows; within each block row,
/// every column interval of width `c` containing at least one nonzero is stored as a
/// dense `r × c` tile (row-major within the tile), with zero fill for absent entries.
#[derive(Debug, Clone, PartialEq)]
pub struct BcsrMatrix<I: IndexStorage = u32> {
    nrows: usize,
    ncols: usize,
    r: usize,
    c: usize,
    /// Logical (unfilled) nonzero count, preserved for flop accounting.
    logical_nnz: usize,
    /// Block-row pointer: `nblock_rows + 1` entries into `block_col_idx`.
    block_row_ptr: Vec<usize>,
    /// Block column index (in units of `c` columns) at width `I`.
    block_col_idx: Vec<I>,
    /// Tile values, `r * c` per tile, row-major within the tile.
    values: Vec<f64>,
}

impl<I: IndexStorage> BcsrMatrix<I> {
    /// Build from CSR with the requested register block shape. The index width is
    /// the type parameter `I`, checked once against the block column span.
    pub fn from_csr(csr: &CsrMatrix, r: usize, c: usize) -> Result<Self> {
        if !block_shape_supported(r, c) {
            return Err(Error::UnsupportedBlockSize { r, c });
        }
        let nrows = csr.nrows();
        let ncols = csr.ncols();
        let nblock_cols = ncols.div_ceil(c);
        if !I::fits(nblock_cols) {
            return Err(Error::IndexWidthOverflow {
                dimension: nblock_cols,
            });
        }
        let nblock_rows = nrows.div_ceil(r);

        let mut block_row_ptr = Vec::with_capacity(nblock_rows + 1);
        block_row_ptr.push(0usize);
        let mut block_col_idx: Vec<I> = Vec::new();
        let mut values: Vec<f64> = Vec::new();

        // Block rows are processed independently; a sorted merge of the r CSR rows
        // discovers the set of occupied block columns.
        for brow in 0..nblock_rows {
            let row_lo = brow * r;
            let row_hi = (row_lo + r).min(nrows);

            // Collect occupied block columns in this block row.
            let mut occupied: Vec<usize> = Vec::new();
            for row in row_lo..row_hi {
                for k in csr.row_ptr()[row]..csr.row_ptr()[row + 1] {
                    occupied.push(csr.col_idx()[k] as usize / c);
                }
            }
            occupied.sort_unstable();
            occupied.dedup();

            let tile_base = values.len();
            values.resize(tile_base + occupied.len() * r * c, 0.0);

            // Fill tiles.
            for row in row_lo..row_hi {
                let local_r = row - row_lo;
                for k in csr.row_ptr()[row]..csr.row_ptr()[row + 1] {
                    let col = csr.col_idx()[k] as usize;
                    let bcol = col / c;
                    let local_c = col % c;
                    let tile_pos = occupied.binary_search(&bcol).expect("occupied block");
                    let slot = tile_base + tile_pos * r * c + local_r * c + local_c;
                    values[slot] += csr.values()[k];
                }
            }

            for &bc in &occupied {
                block_col_idx.push(I::try_from_usize(bc).expect("span checked above"));
            }
            block_row_ptr.push(block_col_idx.len());
        }

        Ok(BcsrMatrix {
            nrows,
            ncols,
            r,
            c,
            logical_nnz: csr.nnz(),
            block_row_ptr,
            block_col_idx,
            values,
        })
    }

    /// Build from coordinate format.
    pub fn from_coo(coo: &CooMatrix, r: usize, c: usize) -> Result<Self> {
        Self::from_csr(&CsrMatrix::from_coo(coo), r, c)
    }

    /// Rows per register block.
    pub fn block_rows(&self) -> usize {
        self.r
    }

    /// Columns per register block.
    pub fn block_cols(&self) -> usize {
        self.c
    }

    /// Number of stored tiles.
    pub fn num_blocks(&self) -> usize {
        self.block_col_idx.len()
    }

    /// The index width used for block column indices.
    ///
    /// # Panics
    ///
    /// Panics for `usize`-indexed matrices, which have no compressed width tag.
    pub fn index_width(&self) -> IndexWidth {
        I::WIDTH.expect("usize-indexed BCSR has no IndexWidth tag")
    }

    /// Fill ratio: stored entries (including explicit zeros) divided by logical nnz.
    /// A fill ratio near 1.0 means the matrix has natural dense block substructure.
    pub fn fill_ratio(&self) -> f64 {
        if self.logical_nnz == 0 {
            return 1.0;
        }
        self.values.len() as f64 / self.logical_nnz as f64
    }

    /// Block-row pointer array.
    pub fn block_row_ptr(&self) -> &[usize] {
        &self.block_row_ptr
    }

    /// Block column indices at the storage width.
    pub fn block_col_idx(&self) -> &[I] {
        &self.block_col_idx
    }

    /// Tile value storage (`r*c` doubles per tile).
    pub fn tile_values(&self) -> &[f64] {
        &self.values
    }
}

/// Runtime-width BCSR constructor compatibility: pick the generic instantiation
/// matching a runtime [`IndexWidth`] decision, wrapped in [`BcsrAuto`].
#[derive(Debug, Clone, PartialEq)]
pub enum BcsrAuto {
    /// 16-bit block column indices.
    U16(BcsrMatrix<u16>),
    /// 32-bit block column indices.
    U32(BcsrMatrix<u32>),
}

impl BcsrAuto {
    /// Build from CSR at a runtime-selected width (the tuner's decision), storing
    /// the monomorphized matrix so later calls dispatch once.
    pub fn from_csr(csr: &CsrMatrix, r: usize, c: usize, width: IndexWidth) -> Result<Self> {
        match width {
            IndexWidth::U16 => BcsrMatrix::<u16>::from_csr(csr, r, c).map(BcsrAuto::U16),
            IndexWidth::U32 => BcsrMatrix::<u32>::from_csr(csr, r, c).map(BcsrAuto::U32),
        }
    }

    /// The width selected at construction.
    pub fn width(&self) -> IndexWidth {
        match self {
            BcsrAuto::U16(_) => IndexWidth::U16,
            BcsrAuto::U32(_) => IndexWidth::U32,
        }
    }

    /// Fill ratio of the wrapped matrix.
    pub fn fill_ratio(&self) -> f64 {
        match self {
            BcsrAuto::U16(m) => m.fill_ratio(),
            BcsrAuto::U32(m) => m.fill_ratio(),
        }
    }

    /// `Y ← Y + A·X` on the monomorphized tiles over a strided column-major
    /// source block (column `j` at `x[j*x_ld ..]`).
    pub fn spmm(&self, x: &[f64], x_ld: usize, y: &mut crate::multivec::MultiVecMut) {
        match self {
            BcsrAuto::U16(m) => crate::kernels::multivec::spmm_bcsr(m, x, x_ld, y),
            BcsrAuto::U32(m) => crate::kernels::multivec::spmm_bcsr(m, x, x_ld, y),
        }
    }

    /// `y ← y + A·x` through the explicit SIMD microkernels (scalar fallback
    /// for uncovered shapes or hosts).
    pub fn spmv_simd(&self, x: &[f64], y: &mut [f64]) {
        match self {
            BcsrAuto::U16(m) => crate::kernels::simd::spmv_bcsr_simd(m, x, y),
            BcsrAuto::U32(m) => crate::kernels::simd::spmv_bcsr_simd(m, x, y),
        }
    }

    /// `Y ← Y + A·X` through the SIMD microkernels; per vector bit-identical to
    /// [`BcsrAuto::spmv_simd`] on that vector alone.
    pub fn spmm_simd(&self, x: &[f64], x_ld: usize, y: &mut crate::multivec::MultiVecMut) {
        match self {
            BcsrAuto::U16(m) => crate::kernels::simd::spmm_bcsr_simd(m, x, x_ld, y),
            BcsrAuto::U32(m) => crate::kernels::simd::spmm_bcsr_simd(m, x, x_ld, y),
        }
    }
}

impl MatrixShape for BcsrAuto {
    fn nrows(&self) -> usize {
        match self {
            BcsrAuto::U16(m) => m.nrows(),
            BcsrAuto::U32(m) => m.nrows(),
        }
    }
    fn ncols(&self) -> usize {
        match self {
            BcsrAuto::U16(m) => m.ncols(),
            BcsrAuto::U32(m) => m.ncols(),
        }
    }
    fn stored_entries(&self) -> usize {
        match self {
            BcsrAuto::U16(m) => m.stored_entries(),
            BcsrAuto::U32(m) => m.stored_entries(),
        }
    }
    fn nnz(&self) -> usize {
        match self {
            BcsrAuto::U16(m) => m.nnz(),
            BcsrAuto::U32(m) => m.nnz(),
        }
    }
    fn footprint_bytes(&self) -> usize {
        match self {
            BcsrAuto::U16(m) => m.footprint_bytes(),
            BcsrAuto::U32(m) => m.footprint_bytes(),
        }
    }
}

impl SpMv for BcsrAuto {
    fn spmv(&self, x: &[f64], y: &mut [f64]) {
        match self {
            BcsrAuto::U16(m) => m.spmv(x, y),
            BcsrAuto::U32(m) => m.spmv(x, y),
        }
    }
}

impl<I: IndexStorage> MatrixShape for BcsrMatrix<I> {
    fn nrows(&self) -> usize {
        self.nrows
    }
    fn ncols(&self) -> usize {
        self.ncols
    }
    fn stored_entries(&self) -> usize {
        self.values.len()
    }
    fn nnz(&self) -> usize {
        self.logical_nnz
    }
    fn footprint_bytes(&self) -> usize {
        self.values.len() * VALUE_BYTES
            + self.block_col_idx.len() * I::BYTES
            + self.block_row_ptr.len() * INDEX32_BYTES
    }
}

impl<I: IndexStorage> SpMv for BcsrMatrix<I> {
    fn spmv(&self, x: &[f64], y: &mut [f64]) {
        check_dims(self.nrows, self.ncols, x, y);
        // Dispatch once on the block shape into the macro-generated, fully-unrolled
        // microkernel monomorphized for (r, c, I).
        crate::kernels::blocked::spmv_bcsr(self, x, y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::max_abs_diff;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_coo(nrows: usize, ncols: usize, nnz: usize, seed: u64) -> CooMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut coo = CooMatrix::new(nrows, ncols);
        for _ in 0..nnz {
            coo.push(
                rng.random_range(0..nrows),
                rng.random_range(0..ncols),
                rng.random_range(-1.0..1.0),
            );
        }
        coo
    }

    #[test]
    fn rejects_unsupported_block_shapes() {
        let coo = random_coo(8, 8, 10, 1);
        assert!(BcsrMatrix::<u32>::from_coo(&coo, 5, 1).is_err());
        assert!(BcsrMatrix::<u32>::from_coo(&coo, 1, 6).is_err());
        assert!(BcsrMatrix::<u32>::from_coo(&coo, 8, 8).is_err());
        // 3 is part of the paper's sweep and therefore supported.
        assert!(BcsrMatrix::<u32>::from_coo(&coo, 3, 3).is_ok());
    }

    #[test]
    fn rejects_u16_when_span_too_large() {
        let coo = random_coo(4, 200_000, 10, 2);
        assert!(matches!(
            BcsrMatrix::<u16>::from_coo(&coo, 1, 1),
            Err(Error::IndexWidthOverflow { .. })
        ));
        // With c = 4 the block-column span is 50_000, which fits in 16 bits.
        assert!(BcsrMatrix::<u16>::from_coo(&coo, 1, 4).is_ok());
    }

    #[test]
    fn one_by_one_blocks_match_csr_exactly() {
        let coo = random_coo(50, 60, 300, 3);
        let csr = CsrMatrix::from_coo(&coo);
        let bcsr = BcsrMatrix::<u32>::from_csr(&csr, 1, 1).unwrap();
        assert_eq!(bcsr.nnz(), csr.nnz());
        assert_eq!(bcsr.stored_entries(), csr.nnz());
        assert!((bcsr.fill_ratio() - 1.0).abs() < 1e-12);
        let x: Vec<f64> = (0..60).map(|i| (i as f64).sin()).collect();
        assert!(max_abs_diff(&csr.spmv_alloc(&x), &bcsr.spmv_alloc(&x)) < 1e-12);
    }

    #[test]
    fn all_supported_shapes_produce_correct_results() {
        let coo = random_coo(37, 41, 400, 4);
        let csr = CsrMatrix::from_coo(&coo);
        let x: Vec<f64> = (0..41).map(|i| (i as f64 * 0.3).cos()).collect();
        let reference = csr.spmv_alloc(&x);
        for &r in &ALLOWED_BLOCK_DIMS {
            for &c in &ALLOWED_BLOCK_DIMS {
                let bcsr = BcsrMatrix::<u16>::from_csr(&csr, r, c).unwrap();
                let y = bcsr.spmv_alloc(&x);
                assert!(
                    max_abs_diff(&reference, &y) < 1e-10,
                    "mismatch for {r}x{c} blocks"
                );
                assert!(bcsr.fill_ratio() >= 1.0);
            }
        }
    }

    #[test]
    fn dense_block_matrix_has_unit_fill() {
        // A matrix made of perfectly aligned 2x2 dense blocks has fill ratio 1.0 at 2x2.
        let mut coo = CooMatrix::new(8, 8);
        for b in 0..4 {
            for i in 0..2 {
                for j in 0..2 {
                    coo.push(b * 2 + i, b * 2 + j, 1.0);
                }
            }
        }
        let bcsr = BcsrMatrix::<u16>::from_coo(&coo, 2, 2).unwrap();
        assert_eq!(bcsr.num_blocks(), 4);
        assert!((bcsr.fill_ratio() - 1.0).abs() < 1e-12);
        // A scattered-diagonal matrix at 2x2 pays 4x fill.
        let mut diag = CooMatrix::new(8, 8);
        for i in 0..8 {
            diag.push(i, i, 1.0);
        }
        let bd = BcsrMatrix::<u16>::from_coo(&diag, 2, 2).unwrap();
        assert!((bd.fill_ratio() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn footprint_shrinks_with_blocking_on_blocked_matrix() {
        // Dense 4x4 block structure: 4x4 BCSR stores 1 index per 16 values.
        let mut coo = CooMatrix::new(64, 64);
        for b in 0..16 {
            for i in 0..4 {
                for j in 0..4 {
                    coo.push(b * 4 + i, b * 4 + j, (i + j) as f64);
                }
            }
        }
        let csr = CsrMatrix::from_coo(&coo);
        let b44 = BcsrMatrix::<u16>::from_csr(&csr, 4, 4).unwrap();
        assert!(b44.footprint_bytes() < csr.footprint_bytes());
    }

    #[test]
    fn ragged_edges_are_handled() {
        // Dimensions not divisible by the block shape.
        let coo = random_coo(10, 11, 60, 7);
        let csr = CsrMatrix::from_coo(&coo);
        let x: Vec<f64> = (0..11).map(|i| i as f64).collect();
        let reference = csr.spmv_alloc(&x);
        for &(r, c) in &[(4usize, 4usize), (3, 4), (4, 3), (3, 3), (2, 3)] {
            let bcsr = BcsrMatrix::<u32>::from_csr(&csr, r, c).unwrap();
            assert!(
                max_abs_diff(&reference, &bcsr.spmv_alloc(&x)) < 1e-10,
                "ragged {r}x{c}"
            );
        }
    }

    #[test]
    fn empty_matrix() {
        let coo = CooMatrix::new(5, 5);
        let bcsr = BcsrMatrix::<u16>::from_coo(&coo, 2, 2).unwrap();
        assert_eq!(bcsr.num_blocks(), 0);
        assert_eq!(bcsr.spmv_alloc(&[1.0; 5]), vec![0.0; 5]);
        assert_eq!(bcsr.fill_ratio(), 1.0);
    }

    #[test]
    fn index_width_reported() {
        let coo = random_coo(16, 16, 30, 9);
        let b = BcsrMatrix::<u16>::from_coo(&coo, 2, 2).unwrap();
        assert_eq!(b.index_width(), IndexWidth::U16);
        let b32 = BcsrMatrix::<u32>::from_coo(&coo, 2, 2).unwrap();
        assert_eq!(b32.index_width(), IndexWidth::U32);
        assert!(b.footprint_bytes() <= b32.footprint_bytes());
    }

    #[test]
    fn auto_wrapper_selects_and_matches() {
        let coo = random_coo(30, 30, 120, 10);
        let csr = CsrMatrix::from_coo(&coo);
        let x: Vec<f64> = (0..30).map(|i| i as f64 * 0.5 - 7.0).collect();
        let reference = csr.spmv_alloc(&x);
        for width in [IndexWidth::U16, IndexWidth::U32] {
            let auto = BcsrAuto::from_csr(&csr, 2, 2, width).unwrap();
            assert_eq!(auto.width(), width);
            assert!(max_abs_diff(&reference, &auto.spmv_alloc(&x)) < 1e-10);
            assert_eq!(auto.nnz(), csr.nnz());
            assert!(auto.fill_ratio() >= 1.0);
        }
    }
}
