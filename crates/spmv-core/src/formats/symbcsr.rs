//! Symmetric register-blocked CSR: dense diagonal plus strictly-lower `r × c`
//! tiles, each tile applied directly and transposed in one pass.
//!
//! The format composes the paper's two biggest storage wins: register blocking
//! (one column index per tile instead of one per nonzero) and symmetry (only the
//! strictly-lower triangle stored, each tile used twice). Tiles may straddle the
//! diagonal; slots on or above it are zero fill, so the double application adds
//! exactly zero for them. The diagonal itself lives in a separate dense array and
//! is applied once.
//!
//! Like [`SymCsr`](crate::formats::symcsr::SymCsr), an instance can cover a row
//! slab of a larger symmetric matrix (`row_offset`, global column indices); the
//! block-row grid is anchored at the slab's first row, the block-column grid at
//! global column 0.

use crate::error::{Error, Result};
use crate::formats::bcsr::block_shape_supported;
use crate::formats::csr::CsrMatrix;
use crate::formats::index::IndexStorage;
use crate::formats::symcsr::SymCsr;
use crate::formats::traits::{check_dims, MatrixShape, SpMv};
use crate::{INDEX32_BYTES, VALUE_BYTES};

/// Symmetric register-blocked storage: dense diagonal + strictly-lower tiles.
#[derive(Debug, Clone, PartialEq)]
pub struct SymBcsr<I: IndexStorage = u32> {
    /// Global (square) matrix dimension.
    n: usize,
    /// First global row this slab covers.
    row_offset: usize,
    /// Number of covered rows.
    local_rows: usize,
    /// Rows per tile.
    r: usize,
    /// Columns per tile.
    c: usize,
    /// Dense diagonal for the covered rows.
    diag: Vec<f64>,
    /// Block-row pointer (`local_block_rows + 1` entries).
    block_row_ptr: Vec<usize>,
    /// Global block-column indices (units of `c` columns) at width `I`.
    block_col_idx: Vec<I>,
    /// Tile values, `r * c` per tile, row-major within the tile; strictly-lower
    /// entries only, zero fill elsewhere.
    tiles: Vec<f64>,
    /// Stored strictly-lower nonzeros (excluding fill).
    lower_nnz: usize,
    /// General-form (expanded) nonzeros of the covered rows.
    logical_nnz: usize,
}

impl<I: IndexStorage> SymBcsr<I> {
    /// Build from a general CSR matrix, verifying symmetry.
    pub fn from_csr(csr: &CsrMatrix, r: usize, c: usize) -> Result<SymBcsr<I>> {
        if !crate::formats::symcsr::is_symmetric(csr) {
            return Err(Error::InvalidStructure(
                "matrix is not symmetric (pattern or values differ from transpose)".to_string(),
            ));
        }
        Self::from_slab_unchecked(csr, 0, r, c)
    }

    /// Build a row slab from rows `[row_offset, row_offset + local.nrows())` of a
    /// symmetric matrix. See [`SymCsr::from_slab_unchecked`] for the caller's
    /// symmetry obligation.
    pub fn from_slab_unchecked(
        local: &CsrMatrix,
        row_offset: usize,
        r: usize,
        c: usize,
    ) -> Result<SymBcsr<I>> {
        if !block_shape_supported(r, c) {
            return Err(Error::UnsupportedBlockSize { r, c });
        }
        let n = local.ncols();
        let nblock_cols = n.div_ceil(c);
        if !I::fits(nblock_cols) {
            return Err(Error::IndexWidthOverflow {
                dimension: nblock_cols,
            });
        }
        let local_rows = local.nrows();
        if row_offset + local_rows > n {
            return Err(Error::InvalidStructure(format!(
                "slab rows {}..{} exceed the {n}-dimensional symmetric matrix",
                row_offset,
                row_offset + local_rows
            )));
        }
        let nblock_rows = local_rows.div_ceil(r);

        let mut diag = vec![0.0f64; local_rows];
        let mut block_row_ptr = Vec::with_capacity(nblock_rows + 1);
        block_row_ptr.push(0usize);
        let mut block_col_idx: Vec<I> = Vec::new();
        let mut tiles: Vec<f64> = Vec::new();
        let mut lower_nnz = 0usize;

        for brow in 0..nblock_rows {
            let row_lo = brow * r;
            let row_hi = (row_lo + r).min(local_rows);

            // Occupied block columns among this block row's strictly-lower entries.
            let mut occupied: Vec<usize> = Vec::new();
            for i in row_lo..row_hi {
                let gi = row_offset + i;
                for k in local.row_ptr()[i]..local.row_ptr()[i + 1] {
                    let j = local.col_idx()[k].to_usize();
                    if j < gi {
                        occupied.push(j / c);
                    }
                }
            }
            occupied.sort_unstable();
            occupied.dedup();

            let tile_base = tiles.len();
            tiles.resize(tile_base + occupied.len() * r * c, 0.0);

            let diag_rows = &mut diag[row_lo..row_hi];
            for i in row_lo..row_hi {
                let gi = row_offset + i;
                let local_r = i - row_lo;
                for k in local.row_ptr()[i]..local.row_ptr()[i + 1] {
                    let j = local.col_idx()[k].to_usize();
                    let v = local.values()[k];
                    if j == gi {
                        diag_rows[local_r] = v;
                    } else if j < gi {
                        let tile_pos = occupied.binary_search(&(j / c)).expect("occupied block");
                        tiles[tile_base + tile_pos * r * c + local_r * c + j % c] += v;
                        lower_nnz += 1;
                    }
                }
            }
            for &bc in &occupied {
                block_col_idx.push(I::try_from_usize(bc).expect("span checked above"));
            }
            block_row_ptr.push(block_col_idx.len());
        }

        Ok(SymBcsr {
            n,
            row_offset,
            local_rows,
            r,
            c,
            diag,
            block_row_ptr,
            block_col_idx,
            tiles,
            lower_nnz,
            logical_nnz: local.nnz(),
        })
    }

    /// Build from an existing [`SymCsr`] slab (same coverage, re-tiled).
    pub fn from_sym_csr<J: IndexStorage>(
        sym: &SymCsr<J>,
        r: usize,
        c: usize,
    ) -> Result<SymBcsr<I>> {
        // Reconstruct the slab's general row view (diag + lower only; the upper
        // mirror entries are irrelevant to the lower tiling).
        let mut coo = crate::formats::coo::CooMatrix::with_capacity(
            sym.local_rows(),
            sym.dim(),
            sym.lower_nnz() + sym.local_rows(),
        );
        for (i, &d) in sym.diag().iter().enumerate() {
            if d != 0.0 {
                coo.push(i, sym.row_offset() + i, d);
            }
        }
        for i in 0..sym.local_rows() {
            for k in sym.row_ptr()[i]..sym.row_ptr()[i + 1] {
                coo.push(i, sym.col_idx()[k].to_usize(), sym.values()[k]);
            }
        }
        let local = CsrMatrix::from_coo(&coo);
        let mut out = Self::from_slab_unchecked(&local, sym.row_offset(), r, c)?;
        out.logical_nnz = sym.nnz();
        Ok(out)
    }

    /// Global matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// First global row covered.
    pub fn row_offset(&self) -> usize {
        self.row_offset
    }

    /// Number of covered rows.
    pub fn local_rows(&self) -> usize {
        self.local_rows
    }

    /// Rows per tile.
    pub fn block_rows(&self) -> usize {
        self.r
    }

    /// Columns per tile.
    pub fn block_cols(&self) -> usize {
        self.c
    }

    /// Dense diagonal of the covered rows.
    pub fn diag(&self) -> &[f64] {
        &self.diag
    }

    /// Block-row pointer array.
    pub fn block_row_ptr(&self) -> &[usize] {
        &self.block_row_ptr
    }

    /// Global block-column indices.
    pub fn block_col_idx(&self) -> &[I] {
        &self.block_col_idx
    }

    /// Tile value storage.
    pub fn tile_values(&self) -> &[f64] {
        &self.tiles
    }

    /// Number of stored tiles.
    pub fn num_tiles(&self) -> usize {
        self.block_col_idx.len()
    }

    /// Stored strictly-lower nonzeros (excluding fill).
    pub fn lower_nnz(&self) -> usize {
        self.lower_nnz
    }

    /// Fill ratio of the lower-triangle tiling (stored slots / lower nonzeros).
    pub fn fill_ratio(&self) -> f64 {
        if self.lower_nnz == 0 {
            1.0
        } else {
            (self.num_tiles() * self.r * self.c) as f64 / self.lower_nnz as f64
        }
    }

    /// Whether this instance covers the whole matrix.
    pub fn is_full(&self) -> bool {
        self.row_offset == 0 && self.local_rows == self.n
    }

    /// `y ← y + A_slab·x` over full-length global vectors; every tile applied
    /// directly (`y[rows] += T·x[cols]`) and transposed (`y[cols] += Tᵀ·x[rows]`)
    /// by the macro-generated microkernel for this tile shape. Deterministic
    /// accumulation order.
    pub fn spmv_full(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n, "source vector length mismatch");
        assert_eq!(y.len(), self.n, "destination vector length mismatch");
        crate::kernels::symmetric::spmv_sym_bcsr(self, x, y);
    }
}

impl<I: IndexStorage> MatrixShape for SymBcsr<I> {
    fn nrows(&self) -> usize {
        self.local_rows
    }
    fn ncols(&self) -> usize {
        self.n
    }
    fn stored_entries(&self) -> usize {
        self.diag.len() + self.tiles.len()
    }
    fn nnz(&self) -> usize {
        self.logical_nnz
    }
    fn footprint_bytes(&self) -> usize {
        self.diag.len() * VALUE_BYTES
            + self.tiles.len() * VALUE_BYTES
            + self.block_col_idx.len() * I::BYTES
            + self.block_row_ptr.len() * INDEX32_BYTES
    }
}

impl<I: IndexStorage> SpMv for SymBcsr<I> {
    /// Whole-matrix SpMV; row slabs must use [`SymBcsr::spmv_full`].
    fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert!(
            self.is_full(),
            "SpMv::spmv is defined for whole-matrix SymBcsr; slabs use spmv_full"
        );
        check_dims(self.n, self.n, x, y);
        self.spmv_full(x, y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::max_abs_diff;
    use crate::formats::bcsr::ALLOWED_BLOCK_DIMS;
    use crate::formats::coo::CooMatrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Random exactly-symmetric matrix: random lower entries mirrored up.
    fn random_symmetric(n: usize, lower_nnz: usize, seed: u64) -> CsrMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut coo = CooMatrix::new(n, n);
        for _ in 0..lower_nnz {
            let i = rng.random_range(0..n);
            let j = rng.random_range(0..=i);
            let v = rng.random_range(-2.0..2.0);
            coo.push(i, j, v);
            if i != j {
                coo.push(j, i, v);
            }
        }
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn every_shape_and_width_matches_expanded_reference() {
        let csr = random_symmetric(37, 180, 9);
        let x: Vec<f64> = (0..37)
            .map(|i| ((i * 11 + 2) % 17) as f64 * 0.5 - 3.0)
            .collect();
        let reference = csr.spmv_alloc(&x);
        for &r in &ALLOWED_BLOCK_DIMS {
            for &c in &ALLOWED_BLOCK_DIMS {
                let b16: SymBcsr<u16> = SymBcsr::from_csr(&csr, r, c).unwrap();
                let b32: SymBcsr<u32> = SymBcsr::from_csr(&csr, r, c).unwrap();
                let bus: SymBcsr<usize> = SymBcsr::from_csr(&csr, r, c).unwrap();
                for (name, y) in [
                    ("u16", b16.spmv_alloc(&x)),
                    ("u32", b32.spmv_alloc(&x)),
                    ("usize", bus.spmv_alloc(&x)),
                ] {
                    assert!(
                        max_abs_diff(&reference, &y) < 1e-10,
                        "{r}x{c} {name} diverged"
                    );
                }
                assert_eq!(b32.nnz(), csr.nnz());
            }
        }
    }

    #[test]
    fn slab_decomposition_sums_to_full_product() {
        let csr = random_symmetric(29, 120, 10);
        let x: Vec<f64> = (0..29).map(|i| (i % 7) as f64 - 3.0).collect();
        let reference = csr.spmv_alloc(&x);
        for (r, c) in [(2usize, 2usize), (3, 4)] {
            let mut y = vec![0.0; 29];
            for (start, end) in [(0usize, 11usize), (11, 20), (20, 29)] {
                let local = csr.row_slice(start, end);
                let slab: SymBcsr<u32> = SymBcsr::from_slab_unchecked(&local, start, r, c).unwrap();
                slab.spmv_full(&x, &mut y);
            }
            assert!(max_abs_diff(&reference, &y) < 1e-10, "{r}x{c}");
        }
    }

    #[test]
    fn diagonal_straddling_tiles_apply_zero_fill_harmlessly() {
        // A tridiagonal symmetric matrix tiled 4x4: every diagonal tile straddles.
        let mut coo = CooMatrix::new(10, 10);
        for i in 0..10 {
            coo.push(i, i, 2.0);
            if i > 0 {
                coo.push(i, i - 1, -1.0);
                coo.push(i - 1, i, -1.0);
            }
        }
        let csr = CsrMatrix::from_coo(&coo);
        let sym: SymBcsr<u16> = SymBcsr::from_csr(&csr, 4, 4).unwrap();
        let x: Vec<f64> = (0..10).map(|i| i as f64 + 1.0).collect();
        assert!(max_abs_diff(&csr.spmv_alloc(&x), &sym.spmv_alloc(&x)) < 1e-12);
        assert!(sym.fill_ratio() >= 1.0);
    }

    #[test]
    fn from_sym_csr_matches_direct_construction() {
        let csr = random_symmetric(23, 90, 11);
        let sym_csr: SymCsr<u32> = SymCsr::from_csr(&csr).unwrap();
        let a: SymBcsr<u16> = SymBcsr::from_sym_csr(&sym_csr, 2, 3).unwrap();
        let b: SymBcsr<u16> = SymBcsr::from_csr(&csr, 2, 3).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn halved_footprint_versus_general_storage() {
        let csr = random_symmetric(64, 600, 12);
        let sym: SymBcsr<u16> = SymBcsr::from_csr(&csr, 1, 1).unwrap();
        // 1x1 tiles pay no fill, so the off-diagonal storage is exactly halved.
        assert!(sym.footprint_bytes() < csr.footprint_bytes() * 3 / 4);
    }

    #[test]
    fn rejects_unsupported_shapes_and_asymmetric_input() {
        let csr = random_symmetric(8, 20, 13);
        assert!(SymBcsr::<u32>::from_csr(&csr, 5, 1).is_err());
        let asym = CsrMatrix::from_coo(&CooMatrix::from_triplets(4, 4, vec![(3, 0, 1.0)]).unwrap());
        assert!(SymBcsr::<u32>::from_csr(&asym, 2, 2).is_err());
    }
}
