//! Index compression: 16-bit vs 32-bit column/row indices.
//!
//! The paper (Section 4.2) halves index storage by using 2-byte indices whenever a
//! cache block spans fewer than 64K rows/columns. [`IndexArray`] abstracts over the
//! two widths so kernels and footprint accounting are written once.

use serde::{Deserialize, Serialize};

/// The width of the stored indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IndexWidth {
    /// 2-byte indices; usable when the indexed span is at most `u16::MAX + 1`.
    U16,
    /// 4-byte indices; always usable for the matrices in the evaluation suite.
    U32,
}

impl IndexWidth {
    /// Bytes per stored index.
    pub fn bytes(self) -> usize {
        match self {
            IndexWidth::U16 => 2,
            IndexWidth::U32 => 4,
        }
    }

    /// The narrowest width able to index `span` distinct positions.
    pub fn narrowest_for(span: usize) -> IndexWidth {
        if span <= (u16::MAX as usize) + 1 {
            IndexWidth::U16
        } else {
            IndexWidth::U32
        }
    }

    /// Whether `span` positions can be indexed at this width.
    pub fn fits(self, span: usize) -> bool {
        match self {
            IndexWidth::U16 => span <= (u16::MAX as usize) + 1,
            IndexWidth::U32 => span <= (u32::MAX as usize) + 1,
        }
    }
}

/// A homogeneous array of indices stored at either 16-bit or 32-bit width.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum IndexArray {
    /// Compressed 16-bit storage.
    U16(Vec<u16>),
    /// Full 32-bit storage.
    U32(Vec<u32>),
}

impl IndexArray {
    /// Build an index array at the requested width.
    ///
    /// # Panics
    ///
    /// Panics if a value does not fit the requested width; callers are expected to
    /// have validated the span with [`IndexWidth::fits`].
    pub fn from_usize(values: &[usize], width: IndexWidth) -> Self {
        match width {
            IndexWidth::U16 => IndexArray::U16(
                values
                    .iter()
                    .map(|&v| u16::try_from(v).expect("index exceeds 16-bit width"))
                    .collect(),
            ),
            IndexWidth::U32 => IndexArray::U32(
                values
                    .iter()
                    .map(|&v| u32::try_from(v).expect("index exceeds 32-bit width"))
                    .collect(),
            ),
        }
    }

    /// Build an index array using the narrowest width that fits `span`.
    pub fn compressed(values: &[usize], span: usize) -> Self {
        Self::from_usize(values, IndexWidth::narrowest_for(span))
    }

    /// The width of this array.
    pub fn width(&self) -> IndexWidth {
        match self {
            IndexArray::U16(_) => IndexWidth::U16,
            IndexArray::U32(_) => IndexWidth::U32,
        }
    }

    /// Number of stored indices.
    pub fn len(&self) -> usize {
        match self {
            IndexArray::U16(v) => v.len(),
            IndexArray::U32(v) => v.len(),
        }
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fetch the index at position `i` widened to `usize`.
    #[inline(always)]
    pub fn get(&self, i: usize) -> usize {
        match self {
            IndexArray::U16(v) => v[i] as usize,
            IndexArray::U32(v) => v[i] as usize,
        }
    }

    /// Total bytes of index storage.
    pub fn bytes(&self) -> usize {
        self.len() * self.width().bytes()
    }

    /// Iterate over the indices widened to `usize`.
    pub fn iter(&self) -> Box<dyn Iterator<Item = usize> + '_> {
        match self {
            IndexArray::U16(v) => Box::new(v.iter().map(|&x| x as usize)),
            IndexArray::U32(v) => Box::new(v.iter().map(|&x| x as usize)),
        }
    }

    /// Collect the indices into a `Vec<usize>` (test/debug helper).
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn narrowest_width_selection() {
        assert_eq!(IndexWidth::narrowest_for(10), IndexWidth::U16);
        assert_eq!(IndexWidth::narrowest_for(65_536), IndexWidth::U16);
        assert_eq!(IndexWidth::narrowest_for(65_537), IndexWidth::U32);
    }

    #[test]
    fn width_bytes() {
        assert_eq!(IndexWidth::U16.bytes(), 2);
        assert_eq!(IndexWidth::U32.bytes(), 4);
    }

    #[test]
    fn fits_checks_span() {
        assert!(IndexWidth::U16.fits(65_536));
        assert!(!IndexWidth::U16.fits(65_537));
        assert!(IndexWidth::U32.fits(1 << 30));
    }

    #[test]
    fn compressed_picks_u16_for_small_span() {
        let a = IndexArray::compressed(&[0, 5, 100], 1000);
        assert_eq!(a.width(), IndexWidth::U16);
        assert_eq!(a.to_vec(), vec![0, 5, 100]);
        assert_eq!(a.bytes(), 6);
    }

    #[test]
    fn compressed_picks_u32_for_large_span() {
        let a = IndexArray::compressed(&[0, 70_000], 100_000);
        assert_eq!(a.width(), IndexWidth::U32);
        assert_eq!(a.get(1), 70_000);
        assert_eq!(a.bytes(), 8);
    }

    #[test]
    #[should_panic(expected = "exceeds 16-bit")]
    fn from_usize_panics_on_overflow() {
        IndexArray::from_usize(&[70_000], IndexWidth::U16);
    }

    #[test]
    fn iteration_matches_get() {
        let a = IndexArray::from_usize(&[3, 1, 4, 1, 5], IndexWidth::U32);
        let collected: Vec<usize> = a.iter().collect();
        assert_eq!(collected, vec![3, 1, 4, 1, 5]);
        assert_eq!(a.get(2), 4);
        assert_eq!(a.len(), 5);
        assert!(!a.is_empty());
    }

    #[test]
    fn empty_array() {
        let a = IndexArray::from_usize(&[], IndexWidth::U16);
        assert!(a.is_empty());
        assert_eq!(a.bytes(), 0);
    }
}
