//! Index compression: 16-bit vs 32-bit column/row indices.
//!
//! The paper (Section 4.2) halves index storage by using 2-byte indices whenever a
//! cache block spans fewer than 64K rows/columns. Two mechanisms expose this:
//!
//! * [`IndexStorage`] — a compile-time index-width trait (`u16` / `u32` / `usize`).
//!   Formats and kernels generic over it are **monomorphized**: the compiler emits a
//!   separate, branch-free instantiation per width, and the width is chosen *once*
//!   (at tuning/construction time), never per element. This is the hot path.
//! * [`IndexArray`] — a runtime-width enum used by the cold formats (BCOO, GCSR)
//!   and by footprint accounting, where per-access dispatch cost is irrelevant.
//!
//! [`EnumDispatchCsr`] preserves the old per-access enum-dispatch CSR exactly as the
//! seed implemented it, as a benchmark baseline demonstrating what monomorphization
//! buys (see `spmv-bench/benches/index_monomorphization.rs`).

use crate::error::{Error, Result};
use crate::formats::traits::MatrixShape;

/// The width of the stored indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexWidth {
    /// 2-byte indices; usable when the indexed span is at most `u16::MAX + 1`.
    U16,
    /// 4-byte indices; always usable for the matrices in the evaluation suite.
    U32,
}

impl IndexWidth {
    /// Bytes per stored index.
    pub fn bytes(self) -> usize {
        match self {
            IndexWidth::U16 => 2,
            IndexWidth::U32 => 4,
        }
    }

    /// The narrowest width able to index `span` distinct positions.
    pub fn narrowest_for(span: usize) -> IndexWidth {
        if span <= (u16::MAX as usize) + 1 {
            IndexWidth::U16
        } else {
            IndexWidth::U32
        }
    }

    /// Whether `span` positions can be indexed at this width.
    pub fn fits(self, span: usize) -> bool {
        match self {
            IndexWidth::U16 => span <= (u16::MAX as usize) + 1,
            IndexWidth::U32 => span <= (u32::MAX as usize) + 1,
        }
    }
}

/// A compile-time index width.
///
/// Formats generic over `IndexStorage` (e.g. [`crate::formats::CsrMatrix`],
/// [`crate::formats::BcsrMatrix`]) store their index arrays as `Vec<I>` and widen
/// with [`IndexStorage::to_usize`], which compiles to a single zero-extending move —
/// no branch, no enum tag. The kernel ladder in [`crate::kernels`] is generic over
/// this trait, so every (kernel, width) pair gets its own machine code.
pub trait IndexStorage:
    Copy + Clone + Send + Sync + Eq + Ord + std::hash::Hash + std::fmt::Debug + 'static
{
    /// Bytes per stored index.
    const BYTES: usize;

    /// Largest number of distinct positions this width can index.
    const MAX_SPAN: usize;

    /// The runtime [`IndexWidth`] tag, when one exists (`usize` has none: it is the
    /// uncompressed native width used for row pointers and scratch indices).
    const WIDTH: Option<IndexWidth>;

    /// Short name used in benchmark/report labels.
    const NAME: &'static str;

    /// Widen to `usize`. Must compile to a zero-extension; marked `inline(always)`
    /// in every implementation because it sits in the innermost SpMV loop.
    fn to_usize(self) -> usize;

    /// Narrow from `usize`, failing when the value does not fit.
    fn try_from_usize(v: usize) -> Result<Self>;

    /// Whether `span` distinct positions can be indexed at this width.
    fn fits(span: usize) -> bool {
        span <= Self::MAX_SPAN
    }
}

impl IndexStorage for u16 {
    const BYTES: usize = 2;
    const MAX_SPAN: usize = (u16::MAX as usize) + 1;
    const WIDTH: Option<IndexWidth> = Some(IndexWidth::U16);
    const NAME: &'static str = "u16";

    #[inline(always)]
    fn to_usize(self) -> usize {
        self as usize
    }

    fn try_from_usize(v: usize) -> Result<Self> {
        u16::try_from(v).map_err(|_| Error::IndexWidthOverflow { dimension: v + 1 })
    }
}

impl IndexStorage for u32 {
    const BYTES: usize = 4;
    const MAX_SPAN: usize = (u32::MAX as usize) + 1;
    const WIDTH: Option<IndexWidth> = Some(IndexWidth::U32);
    const NAME: &'static str = "u32";

    #[inline(always)]
    fn to_usize(self) -> usize {
        self as usize
    }

    fn try_from_usize(v: usize) -> Result<Self> {
        u32::try_from(v).map_err(|_| Error::IndexWidthOverflow { dimension: v + 1 })
    }
}

impl IndexStorage for usize {
    const BYTES: usize = std::mem::size_of::<usize>();
    const MAX_SPAN: usize = usize::MAX;
    const WIDTH: Option<IndexWidth> = None;
    const NAME: &'static str = "usize";

    #[inline(always)]
    fn to_usize(self) -> usize {
        self
    }

    fn try_from_usize(v: usize) -> Result<Self> {
        Ok(v)
    }
}

/// A homogeneous array of indices stored at either 16-bit or 32-bit width.
///
/// Runtime-width storage for the cold formats (BCOO, GCSR); the hot CSR/BCSR paths
/// use `Vec<I>` with [`IndexStorage`] instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexArray {
    /// Compressed 16-bit storage.
    U16(Vec<u16>),
    /// Full 32-bit storage.
    U32(Vec<u32>),
}

impl IndexArray {
    /// Build an index array at the requested width, failing with
    /// [`Error::IndexWidthOverflow`] when a value does not fit.
    pub fn from_usize(values: &[usize], width: IndexWidth) -> Result<Self> {
        match width {
            IndexWidth::U16 => values
                .iter()
                .map(|&v| u16::try_from_usize(v))
                .collect::<Result<Vec<u16>>>()
                .map(IndexArray::U16),
            IndexWidth::U32 => values
                .iter()
                .map(|&v| u32::try_from_usize(v))
                .collect::<Result<Vec<u32>>>()
                .map(IndexArray::U32),
        }
    }

    /// Build an index array using the narrowest width that fits `span`.
    ///
    /// # Panics
    ///
    /// Panics if a value in `values` is `>= span` (caller contract violation).
    pub fn compressed(values: &[usize], span: usize) -> Self {
        Self::from_usize(values, IndexWidth::narrowest_for(span))
            .expect("all values fit the narrowest width for their span")
    }

    /// The width of this array.
    pub fn width(&self) -> IndexWidth {
        match self {
            IndexArray::U16(_) => IndexWidth::U16,
            IndexArray::U32(_) => IndexWidth::U32,
        }
    }

    /// Number of stored indices.
    pub fn len(&self) -> usize {
        match self {
            IndexArray::U16(v) => v.len(),
            IndexArray::U32(v) => v.len(),
        }
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fetch the index at position `i` widened to `usize`.
    #[inline(always)]
    pub fn get(&self, i: usize) -> usize {
        match self {
            IndexArray::U16(v) => v[i] as usize,
            IndexArray::U32(v) => v[i] as usize,
        }
    }

    /// Total bytes of index storage.
    pub fn bytes(&self) -> usize {
        self.len() * self.width().bytes()
    }

    /// Iterate over the indices widened to `usize`.
    pub fn iter(&self) -> Box<dyn Iterator<Item = usize> + '_> {
        match self {
            IndexArray::U16(v) => Box::new(v.iter().map(|&x| x as usize)),
            IndexArray::U32(v) => Box::new(v.iter().map(|&x| x as usize)),
        }
    }

    /// Collect the indices into a `Vec<usize>` (test/debug helper).
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }
}

/// The seed's per-access enum-dispatch CSR, preserved as a benchmark baseline.
///
/// Every column-index fetch matches on the [`IndexArray`] tag — the exact code the
/// monomorphized [`crate::formats::CsrMatrix`] replaces. Kept so the
/// `index_monomorphization` bench can quantify the win; not used by any tuned path.
#[derive(Debug, Clone, PartialEq)]
pub struct EnumDispatchCsr {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: IndexArray,
    values: Vec<f64>,
}

impl EnumDispatchCsr {
    /// Build from a CSR matrix at the requested runtime width.
    pub fn from_csr(csr: &crate::formats::csr::CsrMatrix, width: IndexWidth) -> Result<Self> {
        if !width.fits(csr.ncols()) {
            return Err(Error::IndexWidthOverflow {
                dimension: csr.ncols(),
            });
        }
        let cols: Vec<usize> = csr.col_idx().iter().map(|&c| c.to_usize()).collect();
        Ok(EnumDispatchCsr {
            nrows: csr.nrows(),
            ncols: csr.ncols(),
            row_ptr: csr.row_ptr().to_vec(),
            col_idx: IndexArray::from_usize(&cols, width)?,
            values: csr.values().to_vec(),
        })
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// `y ← y + A·x` with the enum tag consulted on every index fetch.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "source vector length mismatch");
        assert_eq!(y.len(), self.nrows, "destination vector length mismatch");
        for (row, yv) in y.iter_mut().enumerate() {
            let mut sum = 0.0;
            for k in self.row_ptr[row]..self.row_ptr[row + 1] {
                sum += self.values[k] * x[self.col_idx.get(k)];
            }
            *yv += sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formats::csr::CsrMatrix;
    use crate::formats::CooMatrix;

    #[test]
    fn narrowest_width_selection() {
        assert_eq!(IndexWidth::narrowest_for(10), IndexWidth::U16);
        assert_eq!(IndexWidth::narrowest_for(65_536), IndexWidth::U16);
        assert_eq!(IndexWidth::narrowest_for(65_537), IndexWidth::U32);
    }

    #[test]
    fn width_bytes() {
        assert_eq!(IndexWidth::U16.bytes(), 2);
        assert_eq!(IndexWidth::U32.bytes(), 4);
    }

    #[test]
    fn fits_checks_span() {
        assert!(IndexWidth::U16.fits(65_536));
        assert!(!IndexWidth::U16.fits(65_537));
        assert!(IndexWidth::U32.fits(1 << 30));
    }

    #[test]
    fn storage_trait_constants_agree_with_width_enum() {
        assert_eq!(u16::BYTES, IndexWidth::U16.bytes());
        assert_eq!(u32::BYTES, IndexWidth::U32.bytes());
        assert_eq!(u16::WIDTH, Some(IndexWidth::U16));
        assert_eq!(u32::WIDTH, Some(IndexWidth::U32));
        assert_eq!(<usize as IndexStorage>::WIDTH, None);
        assert!(<u16 as IndexStorage>::fits(65_536));
        assert!(!<u16 as IndexStorage>::fits(65_537));
        assert!(<usize as IndexStorage>::fits(usize::MAX));
    }

    #[test]
    fn storage_round_trips() {
        assert_eq!(u16::try_from_usize(65_535).unwrap().to_usize(), 65_535);
        assert_eq!(u32::try_from_usize(1 << 20).unwrap().to_usize(), 1 << 20);
        assert_eq!(usize::try_from_usize(usize::MAX).unwrap(), usize::MAX);
        assert!(matches!(
            u16::try_from_usize(65_536),
            Err(Error::IndexWidthOverflow { .. })
        ));
        assert!(matches!(
            u32::try_from_usize(1 << 40),
            Err(Error::IndexWidthOverflow { .. })
        ));
    }

    #[test]
    fn compressed_picks_u16_for_small_span() {
        let a = IndexArray::compressed(&[0, 5, 100], 1000);
        assert_eq!(a.width(), IndexWidth::U16);
        assert_eq!(a.to_vec(), vec![0, 5, 100]);
        assert_eq!(a.bytes(), 6);
    }

    #[test]
    fn compressed_picks_u32_for_large_span() {
        let a = IndexArray::compressed(&[0, 70_000], 100_000);
        assert_eq!(a.width(), IndexWidth::U32);
        assert_eq!(a.get(1), 70_000);
        assert_eq!(a.bytes(), 8);
    }

    #[test]
    fn from_usize_errors_on_overflow() {
        assert!(matches!(
            IndexArray::from_usize(&[70_000], IndexWidth::U16),
            Err(Error::IndexWidthOverflow { .. })
        ));
    }

    #[test]
    fn iteration_matches_get() {
        let a = IndexArray::from_usize(&[3, 1, 4, 1, 5], IndexWidth::U32).unwrap();
        let collected: Vec<usize> = a.iter().collect();
        assert_eq!(collected, vec![3, 1, 4, 1, 5]);
        assert_eq!(a.get(2), 4);
        assert_eq!(a.len(), 5);
        assert!(!a.is_empty());
    }

    #[test]
    fn empty_array() {
        let a = IndexArray::from_usize(&[], IndexWidth::U16).unwrap();
        assert!(a.is_empty());
        assert_eq!(a.bytes(), 0);
    }

    #[test]
    fn enum_dispatch_csr_matches_reference() {
        let coo =
            CooMatrix::from_triplets(3, 4, vec![(0, 0, 1.0), (0, 3, 2.0), (2, 1, 3.0)]).unwrap();
        let csr = CsrMatrix::from_coo(&coo);
        let x = vec![1.0, 2.0, 3.0, 4.0];
        for width in [IndexWidth::U16, IndexWidth::U32] {
            let enum_csr = EnumDispatchCsr::from_csr(&csr, width).unwrap();
            let mut y = vec![0.0; 3];
            enum_csr.spmv(&x, &mut y);
            assert_eq!(y, vec![9.0, 0.0, 6.0]);
            assert_eq!(enum_csr.nnz(), 3);
            assert_eq!((enum_csr.nrows(), enum_csr.ncols()), (3, 4));
        }
    }

    #[test]
    fn enum_dispatch_csr_rejects_narrow_width() {
        let coo = CooMatrix::from_triplets(2, 100_000, vec![(0, 99_999, 1.0)]).unwrap();
        let csr = CsrMatrix::from_coo(&coo);
        assert!(EnumDispatchCsr::from_csr(&csr, IndexWidth::U16).is_err());
        assert!(EnumDispatchCsr::from_csr(&csr, IndexWidth::U32).is_ok());
    }
}
