//! Generalized CSR (GCSR): CSR that stores only non-empty rows.
//!
//! The paper (Section 4.2) names this as OSKI's alternative to BCOO for matrices with
//! empty rows: keep CSR's streaming structure but associate an explicit row index with
//! each stored (non-empty) row, so empty rows cost neither pointer storage nor
//! zero-length inner loops.

use crate::error::{Error, Result};
use crate::formats::coo::CooMatrix;
use crate::formats::csr::CsrMatrix;
use crate::formats::index::{IndexArray, IndexWidth};
use crate::formats::traits::{check_dims, MatrixShape, SpMv};
use crate::{INDEX32_BYTES, VALUE_BYTES};

/// Generalized CSR storing only occupied rows.
#[derive(Debug, Clone, PartialEq)]
pub struct GcsrMatrix {
    nrows: usize,
    ncols: usize,
    /// Row index of each stored (non-empty) row.
    row_ids: IndexArray,
    /// Pointer into `col_idx`/`values` per stored row (`row_ids.len() + 1` entries).
    row_ptr: Vec<usize>,
    /// Column indices, possibly 16-bit compressed.
    col_idx: IndexArray,
    values: Vec<f64>,
}

impl GcsrMatrix {
    /// Build from CSR, dropping empty rows.
    pub fn from_csr(csr: &CsrMatrix, width: IndexWidth) -> Result<Self> {
        if !width.fits(csr.nrows()) || !width.fits(csr.ncols()) {
            return Err(Error::IndexWidthOverflow {
                dimension: csr.nrows().max(csr.ncols()),
            });
        }
        let mut row_ids: Vec<usize> = Vec::new();
        let mut row_ptr: Vec<usize> = vec![0];
        let mut cols: Vec<usize> = Vec::new();
        let mut values: Vec<f64> = Vec::new();
        for row in 0..csr.nrows() {
            let lo = csr.row_ptr()[row];
            let hi = csr.row_ptr()[row + 1];
            if lo == hi {
                continue;
            }
            row_ids.push(row);
            for k in lo..hi {
                cols.push(csr.col_idx()[k] as usize);
                values.push(csr.values()[k]);
            }
            row_ptr.push(values.len());
        }
        Ok(GcsrMatrix {
            nrows: csr.nrows(),
            ncols: csr.ncols(),
            row_ids: IndexArray::from_usize(&row_ids, width)?,
            row_ptr,
            col_idx: IndexArray::from_usize(&cols, width)?,
            values,
        })
    }

    /// Build from coordinate format.
    pub fn from_coo(coo: &CooMatrix, width: IndexWidth) -> Result<Self> {
        Self::from_csr(&CsrMatrix::from_coo(coo), width)
    }

    /// Number of stored (non-empty) rows.
    pub fn stored_rows(&self) -> usize {
        self.row_ids.len()
    }

    /// Index width used for row ids and column indices.
    pub fn index_width(&self) -> IndexWidth {
        self.col_idx.width()
    }

    /// Global row index of stored row `s`.
    pub fn row_id(&self, s: usize) -> usize {
        self.row_ids.get(s)
    }

    /// Range of `values()`/`col_id` positions belonging to stored row `s`.
    pub fn stored_row_range(&self, s: usize) -> (usize, usize) {
        (self.row_ptr[s], self.row_ptr[s + 1])
    }

    /// Column index of stored entry `p`.
    pub fn col_id(&self, p: usize) -> usize {
        self.col_idx.get(p)
    }

    /// Value storage in stored-row order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

impl MatrixShape for GcsrMatrix {
    fn nrows(&self) -> usize {
        self.nrows
    }
    fn ncols(&self) -> usize {
        self.ncols
    }
    fn stored_entries(&self) -> usize {
        self.values.len()
    }
    fn nnz(&self) -> usize {
        self.values.len()
    }
    fn footprint_bytes(&self) -> usize {
        self.values.len() * VALUE_BYTES
            + self.col_idx.bytes()
            + self.row_ids.bytes()
            + self.row_ptr.len() * INDEX32_BYTES
    }
}

impl SpMv for GcsrMatrix {
    fn spmv(&self, x: &[f64], y: &mut [f64]) {
        check_dims(self.nrows, self.ncols, x, y);
        for s in 0..self.stored_rows() {
            let row = self.row_ids.get(s);
            let mut sum = 0.0;
            for k in self.row_ptr[s]..self.row_ptr[s + 1] {
                sum += self.values[k] * x[self.col_idx.get(k)];
            }
            y[row] += sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::max_abs_diff;

    fn sparse_rows_matrix() -> CooMatrix {
        // 100 rows but only 3 occupied.
        CooMatrix::from_triplets(
            100,
            50,
            vec![
                (5, 0, 1.0),
                (5, 49, 2.0),
                (40, 10, 3.0),
                (99, 20, 4.0),
                (99, 21, 5.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn drops_empty_rows() {
        let g = GcsrMatrix::from_coo(&sparse_rows_matrix(), IndexWidth::U16).unwrap();
        assert_eq!(g.stored_rows(), 3);
        assert_eq!(g.nnz(), 5);
    }

    #[test]
    fn matches_csr_result() {
        let coo = sparse_rows_matrix();
        let csr = CsrMatrix::from_coo(&coo);
        let g = GcsrMatrix::from_coo(&coo, IndexWidth::U16).unwrap();
        let x: Vec<f64> = (0..50).map(|i| i as f64 * 0.1).collect();
        assert!(max_abs_diff(&csr.spmv_alloc(&x), &g.spmv_alloc(&x)) < 1e-12);
    }

    #[test]
    fn footprint_smaller_than_csr_for_mostly_empty() {
        let coo = sparse_rows_matrix();
        let csr = CsrMatrix::from_coo(&coo);
        let g = GcsrMatrix::from_coo(&coo, IndexWidth::U16).unwrap();
        assert!(g.footprint_bytes() < csr.footprint_bytes());
    }

    #[test]
    fn footprint_not_better_when_all_rows_occupied() {
        // Fully occupied rows: GCSR pays the extra row_ids array for nothing.
        let mut coo = CooMatrix::new(10, 10);
        for i in 0..10 {
            coo.push(i, i, 1.0);
        }
        let csr = CsrMatrix::from_coo(&coo);
        let g32 = GcsrMatrix::from_coo(&coo, IndexWidth::U32).unwrap();
        assert!(g32.footprint_bytes() >= csr.footprint_bytes());
    }

    #[test]
    fn width_overflow_rejected() {
        let coo = CooMatrix::from_triplets(100_000, 10, vec![(0, 0, 1.0)]).unwrap();
        assert!(GcsrMatrix::from_coo(&coo, IndexWidth::U16).is_err());
        assert!(GcsrMatrix::from_coo(&coo, IndexWidth::U32).is_ok());
    }

    #[test]
    fn empty_matrix() {
        let g = GcsrMatrix::from_coo(&CooMatrix::new(5, 5), IndexWidth::U16).unwrap();
        assert_eq!(g.stored_rows(), 0);
        assert_eq!(g.spmv_alloc(&[1.0; 5]), vec![0.0; 5]);
    }
}
