//! Sparse matrix storage formats.
//!
//! The paper's data-structure optimizations are all about choosing, per cache block,
//! the smallest representation of the nonzeros (Section 4.2): register-blocked CSR
//! (BCSR), block coordinate (BCOO) when rows are sparse or empty, generalized CSR
//! (GCSR) that skips empty rows, and 16-bit index compression when a block's span
//! fits in 64K. The plain [`CooMatrix`]/[`CsrMatrix`]/[`CscMatrix`] formats serve as
//! construction intermediates and as the naive baseline.

pub mod bcoo;
pub mod bcsr;
pub mod coo;
pub mod csc;
pub mod csr;
pub mod gcsr;
pub mod index;
pub mod symbcsr;
pub mod symcsr;
pub mod traits;

pub use bcoo::BcooMatrix;
pub use bcsr::{BcsrAuto, BcsrMatrix};
pub use coo::CooMatrix;
pub use csc::CscMatrix;
pub use csr::{CompressedCsr, CsrMatrix};
pub use gcsr::GcsrMatrix;
pub use index::{EnumDispatchCsr, IndexArray, IndexStorage, IndexWidth};
pub use symbcsr::SymBcsr;
pub use symcsr::{is_symmetric, SymCsr};
pub use traits::{MatrixShape, SpMv};
