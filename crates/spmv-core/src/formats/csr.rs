//! Compressed Sparse Row (CSR) — the conventional format and the paper's baseline.
//!
//! [`CsrMatrix`] is generic over the column-index storage width
//! ([`IndexStorage`]): `CsrMatrix<u32>` (the default) is the conventional format,
//! `CsrMatrix<u16>` is the paper's 16-bit index-compressed variant. The width is a
//! *compile-time* parameter, so every kernel instantiation reads its indices with a
//! single zero-extending load — the enum-tag branch of the seed implementation
//! ([`crate::formats::index::EnumDispatchCsr`]) is gone from the hot path.
//!
//! [`CompressedCsr`] packages the runtime decision: it inspects the column span
//! **once** at construction and stores the narrowest monomorphized matrix.

use crate::error::{Error, Result};
use crate::formats::coo::CooMatrix;
use crate::formats::index::{IndexStorage, IndexWidth};
use crate::formats::traits::{check_dims, MatrixShape, SpMv};
use crate::{INDEX32_BYTES, VALUE_BYTES};

/// Compressed Sparse Row storage, generic over the column-index width.
///
/// `row_ptr` has `nrows + 1` entries; the nonzeros of row `i` occupy
/// `values[row_ptr[i]..row_ptr[i+1]]` with matching `col_idx` positions, sorted by
/// column. This is the structure the naive and single-loop kernels of Section 4.1
/// traverse, and the input to every data-structure transformation.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix<I: IndexStorage = u32> {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<I>,
    values: Vec<f64>,
}

impl CsrMatrix<u32> {
    /// Build from raw arrays, validating the structure.
    pub fn from_raw(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        values: Vec<f64>,
    ) -> Result<Self> {
        if row_ptr.len() != nrows + 1 {
            return Err(Error::InvalidStructure(format!(
                "row_ptr length {} != nrows + 1 = {}",
                row_ptr.len(),
                nrows + 1
            )));
        }
        if col_idx.len() != values.len() {
            return Err(Error::InvalidStructure(format!(
                "col_idx length {} != values length {}",
                col_idx.len(),
                values.len()
            )));
        }
        if row_ptr[0] != 0 || *row_ptr.last().unwrap() != values.len() {
            return Err(Error::InvalidStructure(
                "row_ptr must start at 0 and end at nnz".to_string(),
            ));
        }
        if row_ptr.windows(2).any(|w| w[0] > w[1]) {
            return Err(Error::InvalidStructure(
                "row_ptr must be non-decreasing".to_string(),
            ));
        }
        if col_idx.iter().any(|&c| c as usize >= ncols) {
            return Err(Error::InvalidStructure(
                "column index out of range".to_string(),
            ));
        }
        Ok(CsrMatrix {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Convert from coordinate format, summing duplicate entries.
    pub fn from_coo(coo: &CooMatrix) -> Self {
        let mut sorted = coo.clone();
        sorted.sum_duplicates();
        let nrows = sorted.nrows();
        let ncols = sorted.ncols();
        let nnz = sorted.nnz();
        let mut row_ptr = vec![0usize; nrows + 1];
        for t in sorted.entries() {
            row_ptr[t.row + 1] += 1;
        }
        for i in 0..nrows {
            row_ptr[i + 1] += row_ptr[i];
        }
        let mut col_idx = vec![0u32; nnz];
        let mut values = vec![0.0f64; nnz];
        // Entries are already sorted by (row, col), so a single forward pass fills
        // each row segment in column order.
        let mut cursor = row_ptr.clone();
        for t in sorted.entries() {
            let slot = cursor[t.row];
            col_idx[slot] = t.col as u32;
            values[slot] = t.val;
            cursor[t.row] += 1;
        }
        CsrMatrix {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Transpose (also the CSR→CSC conversion workhorse).
    ///
    /// Defined for the 32-bit default only: transposing swaps the row and column
    /// spans, so a narrow index type valid for the input may not be valid for the
    /// result. Narrow matrices can `reindex::<u32>()` first and narrow again after.
    pub fn transpose(&self) -> CsrMatrix<u32> {
        CsrMatrix::from_coo(&self.to_coo().transpose())
    }
}

impl<I: IndexStorage> CsrMatrix<I> {
    /// Re-encode the column indices at width `J`, chosen once — the returned matrix
    /// drives monomorphized kernels with no per-access width dispatch.
    pub fn reindex<J: IndexStorage>(&self) -> Result<CsrMatrix<J>> {
        if !J::fits(self.ncols) {
            return Err(Error::IndexWidthOverflow {
                dimension: self.ncols,
            });
        }
        let col_idx = self
            .col_idx
            .iter()
            .map(|&c| J::try_from_usize(c.to_usize()))
            .collect::<Result<Vec<J>>>()?;
        Ok(CsrMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            row_ptr: self.row_ptr.clone(),
            col_idx,
            values: self.values.clone(),
        })
    }

    /// Convert back to coordinate format.
    pub fn to_coo(&self) -> CooMatrix {
        let mut coo = CooMatrix::with_capacity(self.nrows, self.ncols, self.values.len());
        for row in 0..self.nrows {
            for k in self.row_ptr[row]..self.row_ptr[row + 1] {
                coo.push(row, self.col_idx[k].to_usize(), self.values[k]);
            }
        }
        coo
    }

    /// Row pointer array (`nrows + 1` entries).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Column index array at the storage width.
    pub fn col_idx(&self) -> &[I] {
        &self.col_idx
    }

    /// Value array.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of stored entries in row `i`.
    pub fn row_nnz(&self, i: usize) -> usize {
        self.row_ptr[i + 1] - self.row_ptr[i]
    }

    /// Average number of nonzeros per row.
    pub fn avg_row_nnz(&self) -> f64 {
        if self.nrows == 0 {
            0.0
        } else {
            self.values.len() as f64 / self.nrows as f64
        }
    }

    /// Number of rows with no stored entries. Matrices with many empty rows favour
    /// BCOO/GCSR storage (Section 4.2).
    pub fn empty_rows(&self) -> usize {
        (0..self.nrows).filter(|&i| self.row_nnz(i) == 0).count()
    }

    /// Iterate over `(row, col, value)` in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.nrows).flat_map(move |row| {
            (self.row_ptr[row]..self.row_ptr[row + 1])
                .map(move |k| (row, self.col_idx[k].to_usize(), self.values[k]))
        })
    }

    /// `Y ← Y + A·X` for a column-major block of `x.k()` vectors: each column
    /// index is read once and reused across the whole block. Per vector the
    /// arithmetic is bit-identical to the sequential single-vector kernels.
    pub fn spmm(&self, x: &crate::multivec::MultiVec, y: &mut crate::multivec::MultiVec) {
        assert_eq!(x.ld(), self.ncols, "source block row count mismatch");
        assert_eq!(y.ld(), self.nrows, "destination block row count mismatch");
        assert_eq!(x.k(), y.k(), "source and destination vector counts differ");
        crate::kernels::multivec::spmm_csr(self, x.data(), self.ncols, &mut y.view_mut());
    }

    /// Allocating convenience for [`CsrMatrix::spmm`]: returns `A·X`.
    pub fn spmm_alloc(&self, x: &crate::multivec::MultiVec) -> crate::multivec::MultiVec {
        let mut y = crate::multivec::MultiVec::zeros(self.nrows, x.k());
        self.spmm(x, &mut y);
        y
    }

    /// Extract rows `[start, end)` as a new CSR matrix over the same column space.
    /// Used by the row-partitioners to hand each thread an independent sub-matrix.
    pub fn row_slice(&self, start: usize, end: usize) -> CsrMatrix<I> {
        assert!(
            start <= end && end <= self.nrows,
            "invalid row slice {start}..{end}"
        );
        let base = self.row_ptr[start];
        let stop = self.row_ptr[end];
        let row_ptr: Vec<usize> = self.row_ptr[start..=end]
            .iter()
            .map(|&p| p - base)
            .collect();
        CsrMatrix {
            nrows: end - start,
            ncols: self.ncols,
            row_ptr,
            col_idx: self.col_idx[base..stop].to_vec(),
            values: self.values[base..stop].to_vec(),
        }
    }
}

impl<I: IndexStorage> MatrixShape for CsrMatrix<I> {
    fn nrows(&self) -> usize {
        self.nrows
    }
    fn ncols(&self) -> usize {
        self.ncols
    }
    fn stored_entries(&self) -> usize {
        self.values.len()
    }
    fn nnz(&self) -> usize {
        self.values.len()
    }
    fn footprint_bytes(&self) -> usize {
        self.values.len() * (VALUE_BYTES + I::BYTES) + self.row_ptr.len() * INDEX32_BYTES
    }
}

impl<I: IndexStorage> SpMv for CsrMatrix<I> {
    /// Reference CSR SpMV: the "naive" nested loop of Section 4.1, monomorphized
    /// per index width.
    fn spmv(&self, x: &[f64], y: &mut [f64]) {
        check_dims(self.nrows, self.ncols, x, y);
        for (row, yv) in y.iter_mut().enumerate() {
            let mut sum = 0.0;
            for k in self.row_ptr[row]..self.row_ptr[row + 1] {
                sum += self.values[k] * x[self.col_idx[k].to_usize()];
            }
            *yv += sum;
        }
    }
}

/// A CSR matrix whose index width was selected once, at construction.
///
/// This is the paper's index-compression decision made concrete: inspect the column
/// span, pick the narrowest monomorphized `CsrMatrix<I>`, and from then on every
/// SpMV call dispatches **once** (a single match at the call boundary) into fully
/// specialized machine code.
#[derive(Debug, Clone, PartialEq)]
pub enum CompressedCsr {
    /// 16-bit column indices (`ncols ≤ 65536`).
    U16(CsrMatrix<u16>),
    /// 32-bit column indices.
    U32(CsrMatrix<u32>),
}

impl CompressedCsr {
    /// Compress `csr` to the narrowest width its column span allows.
    pub fn from_csr(csr: &CsrMatrix) -> CompressedCsr {
        match csr.reindex::<u16>() {
            Ok(m) => CompressedCsr::U16(m),
            Err(_) => CompressedCsr::U32(csr.clone()),
        }
    }

    /// The width selected at construction.
    pub fn width(&self) -> IndexWidth {
        match self {
            CompressedCsr::U16(_) => IndexWidth::U16,
            CompressedCsr::U32(_) => IndexWidth::U32,
        }
    }

    /// Run a kernel variant on the monomorphized matrix (dispatching once).
    pub fn execute(&self, variant: crate::kernels::KernelVariant, x: &[f64], y: &mut [f64]) {
        match self {
            CompressedCsr::U16(m) => variant.execute(m, x, y),
            CompressedCsr::U32(m) => variant.execute(m, x, y),
        }
    }

    /// `Y ← Y + A·X` on the monomorphized matrix over a strided column-major
    /// source block (column `j` at `x[j*x_ld ..]`) and a destination view
    /// exposing exactly this matrix's rows.
    pub fn spmm(&self, x: &[f64], x_ld: usize, y: &mut crate::multivec::MultiVecMut) {
        match self {
            CompressedCsr::U16(m) => crate::kernels::multivec::spmm_csr(m, x, x_ld, y),
            CompressedCsr::U32(m) => crate::kernels::multivec::spmm_csr(m, x, x_ld, y),
        }
    }

    /// `y ← y + A·x` through the explicit SIMD row kernel (scalar fallback when
    /// the host's feature probe fails).
    pub fn execute_simd(&self, x: &[f64], y: &mut [f64]) {
        match self {
            CompressedCsr::U16(m) => crate::kernels::simd::spmv_csr_simd(m, x, y),
            CompressedCsr::U32(m) => crate::kernels::simd::spmv_csr_simd(m, x, y),
        }
    }

    /// `Y ← Y + A·X` through the SIMD row kernel; per vector bit-identical to
    /// [`CompressedCsr::execute_simd`] on that vector alone.
    pub fn spmm_simd(&self, x: &[f64], x_ld: usize, y: &mut crate::multivec::MultiVecMut) {
        match self {
            CompressedCsr::U16(m) => crate::kernels::simd::spmm_csr_simd(m, x, x_ld, y),
            CompressedCsr::U32(m) => crate::kernels::simd::spmm_csr_simd(m, x, x_ld, y),
        }
    }
}

impl MatrixShape for CompressedCsr {
    fn nrows(&self) -> usize {
        match self {
            CompressedCsr::U16(m) => m.nrows(),
            CompressedCsr::U32(m) => m.nrows(),
        }
    }
    fn ncols(&self) -> usize {
        match self {
            CompressedCsr::U16(m) => m.ncols(),
            CompressedCsr::U32(m) => m.ncols(),
        }
    }
    fn stored_entries(&self) -> usize {
        match self {
            CompressedCsr::U16(m) => m.stored_entries(),
            CompressedCsr::U32(m) => m.stored_entries(),
        }
    }
    fn nnz(&self) -> usize {
        match self {
            CompressedCsr::U16(m) => m.nnz(),
            CompressedCsr::U32(m) => m.nnz(),
        }
    }
    fn footprint_bytes(&self) -> usize {
        match self {
            CompressedCsr::U16(m) => m.footprint_bytes(),
            CompressedCsr::U32(m) => m.footprint_bytes(),
        }
    }
}

impl SpMv for CompressedCsr {
    fn spmv(&self, x: &[f64], y: &mut [f64]) {
        match self {
            CompressedCsr::U16(m) => m.spmv(x, y),
            CompressedCsr::U32(m) => m.spmv(x, y),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_coo() -> CooMatrix {
        // [ 1 0 2 0 ]
        // [ 0 0 0 0 ]
        // [ 3 4 0 5 ]
        // [ 0 0 6 0 ]
        CooMatrix::from_triplets(
            4,
            4,
            vec![
                (0, 0, 1.0),
                (0, 2, 2.0),
                (2, 0, 3.0),
                (2, 1, 4.0),
                (2, 3, 5.0),
                (3, 2, 6.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn from_coo_builds_correct_structure() {
        let csr = CsrMatrix::from_coo(&sample_coo());
        assert_eq!(csr.row_ptr(), &[0, 2, 2, 5, 6]);
        assert_eq!(csr.col_idx(), &[0, 2, 0, 1, 3, 2]);
        assert_eq!(csr.values(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn spmv_reference_result() {
        let csr = CsrMatrix::from_coo(&sample_coo());
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let y = csr.spmv_alloc(&x);
        assert_eq!(y, vec![7.0, 0.0, 31.0, 18.0]);
    }

    #[test]
    fn reindexed_u16_matches_u32() {
        let csr = CsrMatrix::from_coo(&sample_coo());
        let narrow: CsrMatrix<u16> = csr.reindex().unwrap();
        let x = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(narrow.spmv_alloc(&x), csr.spmv_alloc(&x));
        assert_eq!(narrow.col_idx(), &[0u16, 2, 0, 1, 3, 2]);
        // Index storage shrinks by 2 bytes per nonzero.
        assert_eq!(
            csr.footprint_bytes() - narrow.footprint_bytes(),
            2 * csr.nnz()
        );
    }

    #[test]
    fn reindex_rejects_narrow_width_on_wide_matrix() {
        let coo = CooMatrix::from_triplets(2, 100_000, vec![(0, 99_999, 1.0)]).unwrap();
        let csr = CsrMatrix::from_coo(&coo);
        assert!(csr.reindex::<u16>().is_err());
        assert!(csr.reindex::<u32>().is_ok());
        assert!(csr.reindex::<usize>().is_ok());
    }

    #[test]
    fn compressed_csr_selects_width_once() {
        let narrow = CompressedCsr::from_csr(&CsrMatrix::from_coo(&sample_coo()));
        assert_eq!(narrow.width(), IndexWidth::U16);
        let wide_coo =
            CooMatrix::from_triplets(2, 70_000, vec![(0, 69_999, 2.0), (1, 0, 3.0)]).unwrap();
        let wide = CompressedCsr::from_csr(&CsrMatrix::from_coo(&wide_coo));
        assert_eq!(wide.width(), IndexWidth::U32);
        let x = vec![1.0; 70_000];
        assert_eq!(wide.spmv_alloc(&x), vec![2.0, 3.0]);
        assert_eq!(wide.nnz(), 2);
    }

    #[test]
    fn round_trip_through_coo() {
        let csr = CsrMatrix::from_coo(&sample_coo());
        let back = CsrMatrix::from_coo(&csr.to_coo());
        assert_eq!(csr, back);
    }

    #[test]
    fn row_nnz_and_empty_rows() {
        let csr = CsrMatrix::from_coo(&sample_coo());
        assert_eq!(csr.row_nnz(0), 2);
        assert_eq!(csr.row_nnz(1), 0);
        assert_eq!(csr.row_nnz(2), 3);
        assert_eq!(csr.empty_rows(), 1);
        assert!((csr.avg_row_nnz() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn row_slice_extracts_submatrix() {
        let csr = CsrMatrix::from_coo(&sample_coo());
        let slice = csr.row_slice(2, 4);
        assert_eq!(slice.nrows(), 2);
        assert_eq!(slice.ncols(), 4);
        assert_eq!(slice.nnz(), 4);
        let x = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(slice.spmv_alloc(&x), vec![31.0, 18.0]);
    }

    #[test]
    fn row_slice_preserves_index_width() {
        let csr: CsrMatrix<u16> = CsrMatrix::from_coo(&sample_coo()).reindex().unwrap();
        let slice = csr.row_slice(0, 2);
        let x = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(slice.spmv_alloc(&x), vec![7.0, 0.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let csr = CsrMatrix::from_coo(&sample_coo());
        let tt = csr.transpose().transpose();
        assert_eq!(csr, tt);
    }

    #[test]
    fn from_raw_validates() {
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err()); // bad len
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 1, 1], vec![0, 1], vec![1.0]).is_err()); // bad end
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 1.0]).is_err()); // decreasing
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 1, 2], vec![0, 7], vec![1.0, 1.0]).is_err()); // col range
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 1.0]).is_ok());
    }

    #[test]
    fn iter_yields_row_major_triplets() {
        let csr = CsrMatrix::from_coo(&sample_coo());
        let triplets: Vec<_> = csr.iter().collect();
        assert_eq!(triplets[0], (0, 0, 1.0));
        assert_eq!(triplets.last().copied(), Some((3, 2, 6.0)));
        assert_eq!(triplets.len(), 6);
    }

    #[test]
    fn footprint_counts_values_indices_pointers() {
        let csr = CsrMatrix::from_coo(&sample_coo());
        // 6 values * 8 + 6 col idx * 4 + 5 row ptr * 4 = 48 + 24 + 20
        assert_eq!(csr.footprint_bytes(), 92);
    }

    #[test]
    fn duplicates_are_summed_on_conversion() {
        let coo = CooMatrix::from_triplets(2, 2, vec![(0, 0, 1.0), (0, 0, 4.0)]).unwrap();
        let csr = CsrMatrix::from_coo(&coo);
        assert_eq!(csr.nnz(), 1);
        assert_eq!(csr.values(), &[5.0]);
    }

    #[test]
    fn empty_matrix_spmv() {
        let coo = CooMatrix::new(3, 3);
        let csr = CsrMatrix::from_coo(&coo);
        assert_eq!(csr.spmv_alloc(&[1.0, 1.0, 1.0]), vec![0.0, 0.0, 0.0]);
    }
}
