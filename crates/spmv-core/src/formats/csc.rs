//! Compressed Sparse Column (CSC) — used by the column-partitioning experiments.

use crate::formats::coo::CooMatrix;
use crate::formats::csr::CsrMatrix;
use crate::formats::traits::{check_dims, MatrixShape, SpMv};
use crate::{INDEX32_BYTES, VALUE_BYTES};

/// Compressed Sparse Column storage with 32-bit row indices.
///
/// The paper mentions column partitioning as one of three thread-decomposition
/// strategies (Section 4.3). A column partition of a CSR matrix is simply a row
/// partition of its transpose, so CSC is the natural storage for those experiments;
/// note that CSC SpMV scatters into `y` instead of accumulating row sums.
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    nrows: usize,
    ncols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<u32>,
    values: Vec<f64>,
}

impl CscMatrix {
    /// Convert from coordinate format.
    pub fn from_coo(coo: &CooMatrix) -> Self {
        // CSC of A is CSR of Aᵀ with rows/cols swapped back.
        let csr_t = CsrMatrix::from_coo(&coo.transpose());
        CscMatrix {
            nrows: coo.nrows(),
            ncols: coo.ncols(),
            col_ptr: csr_t.row_ptr().to_vec(),
            row_idx: csr_t.col_idx().to_vec(),
            values: csr_t.values().to_vec(),
        }
    }

    /// Convert from CSR.
    pub fn from_csr(csr: &CsrMatrix) -> Self {
        Self::from_coo(&csr.to_coo())
    }

    /// Column pointer array (`ncols + 1` entries).
    pub fn col_ptr(&self) -> &[usize] {
        &self.col_ptr
    }

    /// Row index array.
    pub fn row_idx(&self) -> &[u32] {
        &self.row_idx
    }

    /// Value array.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of stored entries in column `j`.
    pub fn col_nnz(&self, j: usize) -> usize {
        self.col_ptr[j + 1] - self.col_ptr[j]
    }

    /// Extract columns `[start, end)` as a new CSC matrix over the same row space.
    pub fn col_slice(&self, start: usize, end: usize) -> CscMatrix {
        assert!(
            start <= end && end <= self.ncols,
            "invalid column slice {start}..{end}"
        );
        let base = self.col_ptr[start];
        let stop = self.col_ptr[end];
        let col_ptr: Vec<usize> = self.col_ptr[start..=end]
            .iter()
            .map(|&p| p - base)
            .collect();
        CscMatrix {
            nrows: self.nrows,
            ncols: end - start,
            col_ptr,
            row_idx: self.row_idx[base..stop].to_vec(),
            values: self.values[base..stop].to_vec(),
        }
    }
}

impl MatrixShape for CscMatrix {
    fn nrows(&self) -> usize {
        self.nrows
    }
    fn ncols(&self) -> usize {
        self.ncols
    }
    fn stored_entries(&self) -> usize {
        self.values.len()
    }
    fn nnz(&self) -> usize {
        self.values.len()
    }
    fn footprint_bytes(&self) -> usize {
        self.values.len() * (VALUE_BYTES + INDEX32_BYTES) + self.col_ptr.len() * INDEX32_BYTES
    }
}

impl SpMv for CscMatrix {
    fn spmv(&self, x: &[f64], y: &mut [f64]) {
        check_dims(self.nrows, self.ncols, x, y);
        for (col, &xj) in x.iter().enumerate() {
            if xj == 0.0 {
                // Still correct to skip: contribution would be zero.
                // (Matches the vectorized CSC formulation; avoids useless scatters.)
                continue;
            }
            for k in self.col_ptr[col]..self.col_ptr[col + 1] {
                y[self.row_idx[k] as usize] += self.values[k] * xj;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::max_abs_diff;

    fn sample() -> CooMatrix {
        CooMatrix::from_triplets(
            3,
            4,
            vec![
                (0, 0, 1.0),
                (0, 3, 2.0),
                (1, 1, 3.0),
                (2, 0, 4.0),
                (2, 2, 5.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn csc_matches_csr_result() {
        let coo = sample();
        let csr = CsrMatrix::from_coo(&coo);
        let csc = CscMatrix::from_coo(&coo);
        let x = vec![1.0, -2.0, 0.5, 3.0];
        assert_eq!(max_abs_diff(&csr.spmv_alloc(&x), &csc.spmv_alloc(&x)), 0.0);
    }

    #[test]
    fn structure_is_column_compressed() {
        let csc = CscMatrix::from_coo(&sample());
        assert_eq!(csc.col_ptr(), &[0, 2, 3, 4, 5]);
        assert_eq!(csc.col_nnz(0), 2);
        assert_eq!(csc.col_nnz(3), 1);
    }

    #[test]
    fn col_slice_partial_product() {
        let coo = sample();
        let csc = CscMatrix::from_coo(&coo);
        let left = csc.col_slice(0, 2);
        let right = csc.col_slice(2, 4);
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let mut y = vec![0.0; 3];
        left.spmv(&x[0..2], &mut y);
        right.spmv(&x[2..4], &mut y);
        let full = CsrMatrix::from_coo(&coo).spmv_alloc(&x);
        assert_eq!(max_abs_diff(&y, &full), 0.0);
    }

    #[test]
    fn from_csr_equivalent_to_from_coo() {
        let coo = sample();
        let a = CscMatrix::from_coo(&coo);
        let b = CscMatrix::from_csr(&CsrMatrix::from_coo(&coo));
        assert_eq!(a, b);
    }

    #[test]
    fn zero_source_entries_are_skipped_correctly() {
        let csc = CscMatrix::from_coo(&sample());
        let x = vec![0.0, 0.0, 0.0, 0.0];
        assert_eq!(csc.spmv_alloc(&x), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn shape_reports() {
        let csc = CscMatrix::from_coo(&sample());
        assert_eq!(csc.nrows(), 3);
        assert_eq!(csc.ncols(), 4);
        assert_eq!(csc.nnz(), 5);
        assert_eq!(csc.footprint_bytes(), 5 * 12 + 5 * 4);
    }
}
