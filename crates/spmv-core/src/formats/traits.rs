//! Core traits implemented by every sparse matrix format.

/// Basic shape and size information shared by all formats.
pub trait MatrixShape {
    /// Number of rows of the logical matrix.
    fn nrows(&self) -> usize;

    /// Number of columns of the logical matrix.
    fn ncols(&self) -> usize;

    /// Number of stored values. For blocked formats this counts the *stored* entries
    /// including explicit zero fill, because fill is what the memory system streams.
    fn stored_entries(&self) -> usize;

    /// Number of logically nonzero entries of the original matrix (excludes fill).
    fn nnz(&self) -> usize;

    /// Bytes occupied by the matrix data structure: values, indices and pointers.
    ///
    /// This is the quantity the paper's footprint-minimizing heuristic optimizes
    /// (Section 4.2) and the quantity the bandwidth-bound performance model streams.
    fn footprint_bytes(&self) -> usize;

    /// Flop:byte ratio of a single SpMV with this storage, counting only compulsory
    /// matrix traffic (2 flops per logical nonzero over `footprint_bytes`).
    fn flop_byte_ratio(&self) -> f64 {
        if self.footprint_bytes() == 0 {
            return 0.0;
        }
        (2 * self.nnz()) as f64 / self.footprint_bytes() as f64
    }
}

/// Sparse matrix–vector multiplication: `y ← y + A·x`.
///
/// Implementations must *accumulate* into `y` (they never overwrite), matching the
/// kernel definition in the paper and making cache-blocked execution (where several
/// blocks contribute to the same destination rows) correct by construction.
pub trait SpMv: MatrixShape {
    /// Accumulate `A·x` into `y`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.ncols()` or `y.len() != self.nrows()`.
    fn spmv(&self, x: &[f64], y: &mut [f64]);

    /// Convenience wrapper allocating a fresh destination vector (`y = A·x`).
    fn spmv_alloc(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.nrows()];
        self.spmv(x, &mut y);
        y
    }
}

/// Validate operand dimensions, panicking with a uniform message on mismatch.
#[inline]
pub(crate) fn check_dims(nrows: usize, ncols: usize, x: &[f64], y: &[f64]) {
    assert_eq!(
        x.len(),
        ncols,
        "source vector length {} does not match matrix column count {}",
        x.len(),
        ncols
    );
    assert_eq!(
        y.len(),
        nrows,
        "destination vector length {} does not match matrix row count {}",
        y.len(),
        nrows
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fake;
    impl MatrixShape for Fake {
        fn nrows(&self) -> usize {
            4
        }
        fn ncols(&self) -> usize {
            4
        }
        fn stored_entries(&self) -> usize {
            10
        }
        fn nnz(&self) -> usize {
            8
        }
        fn footprint_bytes(&self) -> usize {
            128
        }
    }

    #[test]
    fn flop_byte_ratio_uses_logical_nnz() {
        let f = Fake;
        assert_eq!(f.flop_byte_ratio(), 16.0 / 128.0);
    }

    #[test]
    fn check_dims_accepts_matching() {
        check_dims(2, 3, &[0.0; 3], &[0.0; 2]);
    }

    #[test]
    #[should_panic(expected = "source vector")]
    fn check_dims_rejects_bad_x() {
        check_dims(2, 3, &[0.0; 2], &[0.0; 2]);
    }

    #[test]
    #[should_panic(expected = "destination vector")]
    fn check_dims_rejects_bad_y() {
        check_dims(2, 3, &[0.0; 3], &[0.0; 3]);
    }
}
