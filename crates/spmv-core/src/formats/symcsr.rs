//! Symmetric CSR: diagonal plus strictly-lower triangle, each off-diagonal entry
//! applied twice.
//!
//! Williams et al. report that exploiting symmetry is one of the largest single
//! wins in their optimization ladder: storing only the lower triangle halves both
//! value and index traffic, and the kernel recovers the upper triangle by applying
//! every stored off-diagonal entry once directly (`y[i] += a_ij * x[j]`) and once
//! transposed (`y[j] += a_ij * x[i]`) in the same pass. [`SymCsr`] is that storage:
//! a dense diagonal array plus a CSR structure over the strictly-lower entries,
//! monomorphized over the column-index width [`IndexStorage`] exactly like
//! [`CsrMatrix`].
//!
//! A `SymCsr` can also represent a **row slab** of a larger symmetric matrix
//! (global rows `[row_offset, row_offset + local_rows)`, column indices global):
//! this is how the two-phase tuning pipeline hands each engine worker its share.
//! A slab's transposed contributions land at `y[j]` for arbitrary `j < row`, i.e.
//! *outside* the slab's own row range — which is exactly why the parallel engine
//! gives symmetric workers full-length scratch destinations and a deterministic
//! tree reduction (see `spmv_parallel::SpmvEngine`).

use crate::error::{Error, Result};
use crate::formats::coo::CooMatrix;
use crate::formats::csr::CsrMatrix;
use crate::formats::index::IndexStorage;
use crate::formats::traits::{check_dims, MatrixShape, SpMv};
use crate::{INDEX32_BYTES, VALUE_BYTES};

/// Whether `csr` is square and exactly symmetric (pattern *and* values).
///
/// The check is exact (`a_ij == a_ji` bitwise on the summed-duplicate form), which
/// is the condition under which symmetric storage reproduces the general SpMV up
/// to summation order. Matrices containing NaNs report `false`.
pub fn is_symmetric(csr: &CsrMatrix) -> bool {
    if csr.nrows() != csr.ncols() {
        return false;
    }
    let t = csr.transpose();
    t.row_ptr() == csr.row_ptr() && t.col_idx() == csr.col_idx() && t.values() == csr.values()
}

/// Symmetric storage: dense diagonal plus strictly-lower triangle in CSR form.
///
/// The struct covers global rows `[row_offset, row_offset + local_rows)` of an
/// `n × n` symmetric matrix; column indices are global. A whole-matrix instance
/// has `row_offset == 0` and `local_rows == n`.
///
/// Because the diagonal is dense, an *explicitly stored* `0.0` diagonal entry
/// is indistinguishable from an absent one: products are unaffected, but
/// [`SymCsr::expand`] emits only nonzero diagonal entries, so the expanded
/// pattern can be a subset of an input that listed explicit diagonal zeros.
#[derive(Debug, Clone, PartialEq)]
pub struct SymCsr<I: IndexStorage = u32> {
    /// Global (square) matrix dimension.
    n: usize,
    /// First global row this slab covers.
    row_offset: usize,
    /// Dense diagonal for the covered rows (zeros where the diagonal is absent).
    diag: Vec<f64>,
    /// Row pointer over the strictly-lower entries (`local_rows + 1` entries).
    row_ptr: Vec<usize>,
    /// Global column indices of the strictly-lower entries, sorted per row.
    col_idx: Vec<I>,
    /// Values of the strictly-lower entries.
    values: Vec<f64>,
    /// General-form (expanded) nonzeros of the covered rows, for flop accounting.
    logical_nnz: usize,
}

impl<I: IndexStorage> SymCsr<I> {
    /// Build from a general CSR matrix, verifying it is square and symmetric.
    pub fn from_csr(csr: &CsrMatrix) -> Result<SymCsr<I>> {
        if csr.nrows() != csr.ncols() {
            return Err(Error::InvalidStructure(format!(
                "symmetric storage requires a square matrix, got {}x{}",
                csr.nrows(),
                csr.ncols()
            )));
        }
        if !is_symmetric(csr) {
            return Err(Error::InvalidStructure(
                "matrix is not symmetric (pattern or values differ from transpose)".to_string(),
            ));
        }
        Self::from_slab_unchecked(csr, 0)
    }

    /// Build a row slab from rows `[row_offset, row_offset + local.nrows())` of a
    /// symmetric matrix, keeping the diagonal and strictly-lower entries and
    /// discarding the (redundant) strictly-upper ones.
    ///
    /// The caller asserts symmetry of the *full* matrix: a slab cannot verify that
    /// its upper entries mirror lower entries owned by other slabs. The tuning
    /// pipeline only takes this path after [`is_symmetric`] passed on the full
    /// matrix at plan time.
    pub fn from_slab_unchecked(local: &CsrMatrix, row_offset: usize) -> Result<SymCsr<I>> {
        let n = local.ncols();
        if !I::fits(n) {
            return Err(Error::IndexWidthOverflow { dimension: n });
        }
        let local_rows = local.nrows();
        if row_offset + local_rows > n {
            return Err(Error::InvalidStructure(format!(
                "slab rows {}..{} exceed the {n}-dimensional symmetric matrix",
                row_offset,
                row_offset + local_rows
            )));
        }
        let mut diag = vec![0.0f64; local_rows];
        let mut row_ptr = Vec::with_capacity(local_rows + 1);
        row_ptr.push(0usize);
        let mut col_idx: Vec<I> = Vec::new();
        let mut values: Vec<f64> = Vec::new();
        for (i, d) in diag.iter_mut().enumerate() {
            let gi = row_offset + i;
            for k in local.row_ptr()[i]..local.row_ptr()[i + 1] {
                let j = local.col_idx()[k].to_usize();
                let v = local.values()[k];
                if j == gi {
                    *d = v;
                } else if j < gi {
                    col_idx.push(I::try_from_usize(j)?);
                    values.push(v);
                }
                // j > gi: the mirror of a lower entry owned by row j's slab.
            }
            row_ptr.push(col_idx.len());
        }
        Ok(SymCsr {
            n,
            row_offset,
            diag,
            row_ptr,
            col_idx,
            values,
            logical_nnz: local.nnz(),
        })
    }

    /// Build from the *stored* (lower-triangle) entries of a symmetric matrix —
    /// the representation a symmetric MatrixMarket file lists. Every entry must
    /// satisfy `row >= col`; the result covers the whole matrix.
    pub fn from_lower_coo(lower: &CooMatrix) -> Result<SymCsr<I>> {
        if lower.nrows() != lower.ncols() {
            return Err(Error::InvalidStructure(format!(
                "symmetric storage requires a square matrix, got {}x{}",
                lower.nrows(),
                lower.ncols()
            )));
        }
        for t in lower.entries() {
            if t.col > t.row {
                return Err(Error::InvalidStructure(format!(
                    "strictly-upper entry ({}, {}) in lower-triangle input",
                    t.row, t.col
                )));
            }
        }
        let csr = CsrMatrix::from_coo(lower);
        let mut sym = Self::from_slab_unchecked(&csr, 0)?;
        // The lower-coo nnz counts stored entries; the logical (expanded) count
        // doubles the off-diagonal ones. Diagonal entries are counted as
        // *stored* (even explicit 0.0 ones, which FEM exports sometimes list),
        // so the count matches what the eagerly-expanded general CSR reports.
        let diag_stored = csr.iter().filter(|&(i, j, _)| i == j).count();
        sym.logical_nnz = diag_stored + 2 * sym.values.len();
        Ok(sym)
    }

    /// Re-encode the column indices at width `J`.
    pub fn reindex<J: IndexStorage>(&self) -> Result<SymCsr<J>> {
        if !J::fits(self.n) {
            return Err(Error::IndexWidthOverflow { dimension: self.n });
        }
        Ok(SymCsr {
            n: self.n,
            row_offset: self.row_offset,
            diag: self.diag.clone(),
            row_ptr: self.row_ptr.clone(),
            col_idx: self
                .col_idx
                .iter()
                .map(|&c| J::try_from_usize(c.to_usize()))
                .collect::<Result<Vec<J>>>()?,
            values: self.values.clone(),
            logical_nnz: self.logical_nnz,
        })
    }

    /// Expand back to a general CSR matrix (whole-matrix instances only).
    pub fn expand(&self) -> Result<CsrMatrix> {
        if !self.is_full() {
            return Err(Error::InvalidStructure(
                "cannot expand a row slab without its sibling slabs".to_string(),
            ));
        }
        let mut coo = CooMatrix::with_capacity(self.n, self.n, 2 * self.values.len() + self.n);
        for (i, &d) in self.diag.iter().enumerate() {
            if d != 0.0 {
                coo.push(i, i, d);
            }
        }
        for i in 0..self.local_rows() {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                let j = self.col_idx[k].to_usize();
                let v = self.values[k];
                coo.push(i, j, v);
                coo.push(j, i, v);
            }
        }
        Ok(CsrMatrix::from_coo(&coo))
    }

    /// Whether this instance covers the whole matrix (not a row slab).
    pub fn is_full(&self) -> bool {
        self.row_offset == 0 && self.diag.len() == self.n
    }

    /// Global matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// First global row covered.
    pub fn row_offset(&self) -> usize {
        self.row_offset
    }

    /// Number of covered rows.
    pub fn local_rows(&self) -> usize {
        self.diag.len()
    }

    /// Dense diagonal of the covered rows.
    pub fn diag(&self) -> &[f64] {
        &self.diag
    }

    /// Row pointer over the strictly-lower entries.
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Global column indices of the strictly-lower entries.
    pub fn col_idx(&self) -> &[I] {
        &self.col_idx
    }

    /// Values of the strictly-lower entries.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Stored strictly-lower nonzeros.
    pub fn lower_nnz(&self) -> usize {
        self.values.len()
    }

    /// `y ← y + A_slab·x` over **full-length** global vectors (`x.len() == n`,
    /// `y.len() == n`): every stored lower entry is applied directly and
    /// transposed, the diagonal once. Accumulation order is fixed (row-major over
    /// the slab, transpose write before the row sum lands), so two executions are
    /// bit-identical.
    pub fn spmv_full(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n, "source vector length mismatch");
        assert_eq!(y.len(), self.n, "destination vector length mismatch");
        crate::kernels::symmetric::spmv_sym_csr(self, x, y);
    }
}

impl<I: IndexStorage> MatrixShape for SymCsr<I> {
    fn nrows(&self) -> usize {
        self.local_rows()
    }
    fn ncols(&self) -> usize {
        self.n
    }
    fn stored_entries(&self) -> usize {
        self.diag.len() + self.values.len()
    }
    fn nnz(&self) -> usize {
        self.logical_nnz
    }
    fn footprint_bytes(&self) -> usize {
        self.diag.len() * VALUE_BYTES
            + self.values.len() * (VALUE_BYTES + I::BYTES)
            + self.row_ptr.len() * INDEX32_BYTES
    }
}

impl<I: IndexStorage> SpMv for SymCsr<I> {
    /// Whole-matrix SpMV; row slabs must use [`SymCsr::spmv_full`] with
    /// full-length destinations instead.
    fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert!(
            self.is_full(),
            "SpMv::spmv is defined for whole-matrix SymCsr; slabs use spmv_full"
        );
        check_dims(self.n, self.n, x, y);
        self.spmv_full(x, y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::max_abs_diff;

    fn sym_coo() -> CooMatrix {
        // [ 2 -1  0  3 ]
        // [-1  0  5  0 ]
        // [ 0  5  1  0 ]
        // [ 3  0  0 -4 ]
        CooMatrix::from_triplets(
            4,
            4,
            vec![
                (0, 0, 2.0),
                (0, 1, -1.0),
                (1, 0, -1.0),
                (0, 3, 3.0),
                (3, 0, 3.0),
                (1, 2, 5.0),
                (2, 1, 5.0),
                (2, 2, 1.0),
                (3, 3, -4.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn detects_symmetry_exactly() {
        let csr = CsrMatrix::from_coo(&sym_coo());
        assert!(is_symmetric(&csr));
        let asym = CsrMatrix::from_coo(&CooMatrix::from_triplets(2, 2, vec![(1, 0, 3.0)]).unwrap());
        assert!(!is_symmetric(&asym));
        let rect = CsrMatrix::from_coo(&CooMatrix::from_triplets(2, 3, vec![(0, 0, 1.0)]).unwrap());
        assert!(!is_symmetric(&rect));
        // Same pattern, different values: not symmetric.
        let near = CsrMatrix::from_coo(
            &CooMatrix::from_triplets(2, 2, vec![(0, 1, 1.0), (1, 0, 1.5)]).unwrap(),
        );
        assert!(!is_symmetric(&near));
    }

    #[test]
    fn stores_diagonal_plus_lower_only() {
        let csr = CsrMatrix::from_coo(&sym_coo());
        let sym: SymCsr<u32> = SymCsr::from_csr(&csr).unwrap();
        assert_eq!(sym.diag(), &[2.0, 0.0, 1.0, -4.0]);
        assert_eq!(sym.lower_nnz(), 3); // (1,0), (2,1), (3,0)
        assert_eq!(sym.nnz(), csr.nnz());
        assert!(sym.is_full());
        // Halved off-diagonal storage: footprint strictly below general CSR.
        assert!(sym.footprint_bytes() < csr.footprint_bytes());
    }

    #[test]
    fn spmv_matches_expanded_general_form() {
        let csr = CsrMatrix::from_coo(&sym_coo());
        let x = vec![1.0, -2.0, 0.5, 4.0];
        let reference = csr.spmv_alloc(&x);
        for y in [
            SymCsr::<u16>::from_csr(&csr).unwrap().spmv_alloc(&x),
            SymCsr::<u32>::from_csr(&csr).unwrap().spmv_alloc(&x),
            SymCsr::<usize>::from_csr(&csr).unwrap().spmv_alloc(&x),
        ] {
            assert!(max_abs_diff(&reference, &y) < 1e-12);
        }
    }

    #[test]
    fn from_csr_rejects_asymmetric_input() {
        let asym = CsrMatrix::from_coo(&CooMatrix::from_triplets(3, 3, vec![(2, 0, 1.0)]).unwrap());
        assert!(SymCsr::<u32>::from_csr(&asym).is_err());
    }

    #[test]
    fn slab_decomposition_sums_to_full_product() {
        let csr = CsrMatrix::from_coo(&sym_coo());
        let x = vec![0.5, 1.5, -1.0, 2.0];
        let reference = csr.spmv_alloc(&x);
        let mut y = vec![0.0; 4];
        for (start, end) in [(0usize, 2usize), (2, 4)] {
            let local = csr.row_slice(start, end);
            let slab: SymCsr<u32> = SymCsr::from_slab_unchecked(&local, start).unwrap();
            assert!(!slab.is_full());
            slab.spmv_full(&x, &mut y);
        }
        assert!(max_abs_diff(&reference, &y) < 1e-12);
    }

    #[test]
    fn expand_round_trips() {
        let csr = CsrMatrix::from_coo(&sym_coo());
        let sym: SymCsr<u32> = SymCsr::from_csr(&csr).unwrap();
        assert_eq!(sym.expand().unwrap(), csr);
        let local = csr.row_slice(1, 3);
        let slab: SymCsr<u32> = SymCsr::from_slab_unchecked(&local, 1).unwrap();
        assert!(slab.expand().is_err());
    }

    #[test]
    fn from_lower_coo_counts_explicit_zero_diagonal_entries() {
        // FEM exports sometimes list explicit 0.0 diagonal entries; the logical
        // count must match the eagerly-expanded general CSR, which stores them.
        let lower =
            CooMatrix::from_triplets(3, 3, vec![(0, 0, 0.0), (1, 1, 2.0), (2, 1, -1.0)]).unwrap();
        let sym: SymCsr<u32> = SymCsr::from_lower_coo(&lower).unwrap();
        let mut expanded_coo = lower.clone();
        expanded_coo.push(1, 2, -1.0);
        let expanded = CsrMatrix::from_coo(&expanded_coo);
        assert_eq!(sym.nnz(), expanded.nnz());
    }

    #[test]
    fn from_lower_coo_builds_logical_counts() {
        let lower =
            CooMatrix::from_triplets(3, 3, vec![(0, 0, 2.0), (2, 0, -1.0), (2, 2, 4.0)]).unwrap();
        let sym: SymCsr<u16> = SymCsr::from_lower_coo(&lower).unwrap();
        assert_eq!(sym.nnz(), 4); // two diagonal + one mirrored pair
        assert_eq!(sym.lower_nnz(), 1);
        let expanded = sym.expand().unwrap();
        let x = vec![1.0, 2.0, 3.0];
        assert!(max_abs_diff(&sym.spmv_alloc(&x), &expanded.spmv_alloc(&x)) < 1e-12);
        // Upper entries are rejected.
        let upper = CooMatrix::from_triplets(3, 3, vec![(0, 2, 1.0)]).unwrap();
        assert!(SymCsr::<u32>::from_lower_coo(&upper).is_err());
    }

    #[test]
    fn reindex_preserves_product() {
        let csr = CsrMatrix::from_coo(&sym_coo());
        let sym: SymCsr<u32> = SymCsr::from_csr(&csr).unwrap();
        let narrow: SymCsr<u16> = sym.reindex().unwrap();
        let x = vec![3.0, -1.0, 2.0, 0.25];
        assert_eq!(sym.spmv_alloc(&x), narrow.spmv_alloc(&x));
        assert_eq!(
            sym.footprint_bytes() - narrow.footprint_bytes(),
            2 * sym.lower_nnz()
        );
    }

    #[test]
    fn empty_symmetric_matrix() {
        let csr = CsrMatrix::from_coo(&CooMatrix::new(3, 3));
        let sym: SymCsr<u32> = SymCsr::from_csr(&csr).unwrap();
        assert_eq!(sym.spmv_alloc(&[1.0; 3]), vec![0.0; 3]);
        assert_eq!(sym.nnz(), 0);
    }
}
