//! Block coordinate (BCOO) storage.
//!
//! When a cache block contains many empty rows, CSR-style row pointers waste storage
//! and the kernel wastes time starting zero-length loops. The paper's alternative
//! (Section 4.2) stores an explicit `(block row, block column)` coordinate with every
//! register tile, so only occupied tiles cost anything. Both coordinates may be
//! 16-bit compressed when the block spans fit.

use crate::error::{Error, Result};
use crate::formats::bcsr::block_shape_supported;
use crate::formats::coo::CooMatrix;
use crate::formats::csr::CsrMatrix;
use crate::formats::index::{IndexArray, IndexWidth};
use crate::formats::traits::{check_dims, MatrixShape, SpMv};
use crate::VALUE_BYTES;

/// Block-coordinate sparse matrix with `r × c` register tiles.
#[derive(Debug, Clone, PartialEq)]
pub struct BcooMatrix {
    nrows: usize,
    ncols: usize,
    r: usize,
    c: usize,
    logical_nnz: usize,
    /// Block row coordinate per tile (units of `r` rows).
    block_rows: IndexArray,
    /// Block column coordinate per tile (units of `c` columns).
    block_cols: IndexArray,
    /// Tile values, `r * c` per tile, row-major within the tile, tiles sorted by
    /// (block row, block column) so destination accesses are monotone.
    values: Vec<f64>,
}

impl BcooMatrix {
    /// Build from CSR with the requested tile shape and index width.
    pub fn from_csr(csr: &CsrMatrix, r: usize, c: usize, width: IndexWidth) -> Result<Self> {
        if !block_shape_supported(r, c) {
            return Err(Error::UnsupportedBlockSize { r, c });
        }
        let nrows = csr.nrows();
        let ncols = csr.ncols();
        let nblock_rows = nrows.div_ceil(r);
        let nblock_cols = ncols.div_ceil(c);
        if !width.fits(nblock_rows) || !width.fits(nblock_cols) {
            return Err(Error::IndexWidthOverflow {
                dimension: nblock_rows.max(nblock_cols),
            });
        }

        // Discover occupied tiles: (block row, block col) -> tile index.
        let mut tiles: Vec<(usize, usize)> = Vec::new();
        for (row, col, _) in csr.iter() {
            tiles.push((row / r, col / c));
        }
        tiles.sort_unstable();
        tiles.dedup();

        let mut values = vec![0.0f64; tiles.len() * r * c];
        for (row, col, val) in csr.iter() {
            let key = (row / r, col / c);
            let t = tiles.binary_search(&key).expect("tile present");
            let local = (row % r) * c + (col % c);
            values[t * r * c + local] += val;
        }

        let rows_usize: Vec<usize> = tiles.iter().map(|&(br, _)| br).collect();
        let cols_usize: Vec<usize> = tiles.iter().map(|&(_, bc)| bc).collect();

        Ok(BcooMatrix {
            nrows,
            ncols,
            r,
            c,
            logical_nnz: csr.nnz(),
            block_rows: IndexArray::from_usize(&rows_usize, width)?,
            block_cols: IndexArray::from_usize(&cols_usize, width)?,
            values,
        })
    }

    /// Build from coordinate format.
    pub fn from_coo(coo: &CooMatrix, r: usize, c: usize, width: IndexWidth) -> Result<Self> {
        Self::from_csr(&CsrMatrix::from_coo(coo), r, c, width)
    }

    /// Rows per register tile.
    pub fn block_rows_dim(&self) -> usize {
        self.r
    }

    /// Columns per register tile.
    pub fn block_cols_dim(&self) -> usize {
        self.c
    }

    /// Number of stored tiles.
    pub fn num_blocks(&self) -> usize {
        self.block_rows.len()
    }

    /// Index width used for the tile coordinates.
    pub fn index_width(&self) -> IndexWidth {
        self.block_rows.width()
    }

    /// Fill ratio: stored entries (including zero fill) divided by logical nonzeros.
    pub fn fill_ratio(&self) -> f64 {
        if self.logical_nnz == 0 {
            return 1.0;
        }
        self.values.len() as f64 / self.logical_nnz as f64
    }

    /// Block-row coordinate of tile `t` (in units of `r` rows).
    pub fn block_row_coord(&self, t: usize) -> usize {
        self.block_rows.get(t)
    }

    /// Block-column coordinate of tile `t` (in units of `c` columns).
    pub fn block_col_coord(&self, t: usize) -> usize {
        self.block_cols.get(t)
    }

    /// Tile value storage (`r*c` doubles per tile).
    pub fn tile_values(&self) -> &[f64] {
        &self.values
    }
}

impl MatrixShape for BcooMatrix {
    fn nrows(&self) -> usize {
        self.nrows
    }
    fn ncols(&self) -> usize {
        self.ncols
    }
    fn stored_entries(&self) -> usize {
        self.values.len()
    }
    fn nnz(&self) -> usize {
        self.logical_nnz
    }
    fn footprint_bytes(&self) -> usize {
        // No row-pointer array at all: just tiles plus two coordinates per tile.
        self.values.len() * VALUE_BYTES + self.block_rows.bytes() + self.block_cols.bytes()
    }
}

impl SpMv for BcooMatrix {
    fn spmv(&self, x: &[f64], y: &mut [f64]) {
        check_dims(self.nrows, self.ncols, x, y);
        let r = self.r;
        let c = self.c;
        for t in 0..self.num_blocks() {
            let row_lo = self.block_rows.get(t) * r;
            let col_lo = self.block_cols.get(t) * c;
            let rows_here = r.min(self.nrows - row_lo);
            let cols_here = c.min(self.ncols - col_lo);
            let tile = &self.values[t * r * c..(t + 1) * r * c];
            for i in 0..rows_here {
                let mut sum = 0.0;
                for j in 0..cols_here {
                    sum += tile[i * c + j] * x[col_lo + j];
                }
                y[row_lo + i] += sum;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::max_abs_diff;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_coo(nrows: usize, ncols: usize, nnz: usize, seed: u64) -> CooMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut coo = CooMatrix::new(nrows, ncols);
        for _ in 0..nnz {
            coo.push(
                rng.random_range(0..nrows),
                rng.random_range(0..ncols),
                rng.random_range(-1.0..1.0),
            );
        }
        coo
    }

    #[test]
    fn matches_csr_for_all_shapes() {
        let coo = random_coo(45, 33, 350, 11);
        let csr = CsrMatrix::from_coo(&coo);
        let x: Vec<f64> = (0..33).map(|i| (i as f64 * 0.7).sin()).collect();
        let reference = csr.spmv_alloc(&x);
        for &r in &[1usize, 2, 4] {
            for &c in &[1usize, 2, 4] {
                let bcoo = BcooMatrix::from_csr(&csr, r, c, IndexWidth::U16).unwrap();
                assert!(
                    max_abs_diff(&reference, &bcoo.spmv_alloc(&x)) < 1e-10,
                    "mismatch at {r}x{c}"
                );
            }
        }
    }

    #[test]
    fn no_row_pointer_cost_for_empty_rows() {
        // A 1000-row matrix with only 2 occupied rows: BCOO footprint should be far
        // smaller than CSR's (which pays 4 bytes per row for the pointer array).
        let coo = CooMatrix::from_triplets(1000, 1000, vec![(0, 0, 1.0), (999, 999, 2.0)]).unwrap();
        let csr = CsrMatrix::from_coo(&coo);
        let bcoo = BcooMatrix::from_csr(&csr, 1, 1, IndexWidth::U16).unwrap();
        assert!(bcoo.footprint_bytes() < csr.footprint_bytes() / 10);
    }

    #[test]
    fn rejects_bad_shapes_and_overflow() {
        let coo = random_coo(10, 10, 5, 1);
        assert!(BcooMatrix::from_coo(&coo, 5, 2, IndexWidth::U32).is_err());
        let wide = random_coo(4, 200_000, 10, 2);
        assert!(BcooMatrix::from_coo(&wide, 1, 1, IndexWidth::U16).is_err());
        assert!(BcooMatrix::from_coo(&wide, 1, 4, IndexWidth::U16).is_ok());
    }

    #[test]
    fn fill_ratio_and_blocks() {
        let mut coo = CooMatrix::new(8, 8);
        for i in 0..8 {
            coo.push(i, i, 1.0);
        }
        let bcoo = BcooMatrix::from_coo(&coo, 2, 2, IndexWidth::U16).unwrap();
        assert_eq!(bcoo.num_blocks(), 4);
        assert!((bcoo.fill_ratio() - 2.0).abs() < 1e-12);
        assert_eq!(bcoo.block_rows_dim(), 2);
        assert_eq!(bcoo.block_cols_dim(), 2);
    }

    #[test]
    fn empty_matrix() {
        let coo = CooMatrix::new(4, 4);
        let bcoo = BcooMatrix::from_coo(&coo, 2, 2, IndexWidth::U16).unwrap();
        assert_eq!(bcoo.num_blocks(), 0);
        assert_eq!(bcoo.spmv_alloc(&[1.0; 4]), vec![0.0; 4]);
    }

    #[test]
    fn ragged_edge_blocks() {
        let coo = random_coo(9, 7, 40, 5);
        let csr = CsrMatrix::from_coo(&coo);
        let x: Vec<f64> = (0..7).map(|i| i as f64 + 0.5).collect();
        let bcoo = BcooMatrix::from_csr(&csr, 4, 4, IndexWidth::U32).unwrap();
        assert!(max_abs_diff(&csr.spmv_alloc(&x), &bcoo.spmv_alloc(&x)) < 1e-10);
    }

    #[test]
    fn footprint_vs_bcsr_tradeoff() {
        // For a matrix with NO empty rows and many tiles per row, BCSR (one pointer
        // per block row) is smaller than BCOO (a row coordinate per tile). BCOO wins
        // when most rows are empty — that is exactly the paper's selection rule.
        use crate::formats::bcsr::BcsrMatrix;
        let dense_rows = random_coo(64, 64, 2000, 6);
        let csr = CsrMatrix::from_coo(&dense_rows);
        let bcsr = BcsrMatrix::<u16>::from_csr(&csr, 1, 1).unwrap();
        let bcoo = BcooMatrix::from_csr(&csr, 1, 1, IndexWidth::U16).unwrap();
        assert!(bcsr.footprint_bytes() <= bcoo.footprint_bytes());
    }
}
