//! Coordinate (triplet) format — the construction intermediate for every other format.

use crate::error::{Error, Result};
use crate::formats::traits::{check_dims, MatrixShape, SpMv};
use crate::{INDEX32_BYTES, VALUE_BYTES};

/// A single stored entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triplet {
    /// Row index.
    pub row: usize,
    /// Column index.
    pub col: usize,
    /// Stored value.
    pub val: f64,
}

/// Coordinate-format sparse matrix: an unordered list of `(row, col, value)` triplets.
///
/// Matrix generators and the MatrixMarket reader produce `CooMatrix`; all optimized
/// formats are built from it. Duplicate coordinates are allowed during construction
/// and are summed by [`CooMatrix::sum_duplicates`] or by conversion to CSR.
#[derive(Debug, Clone, PartialEq)]
pub struct CooMatrix {
    nrows: usize,
    ncols: usize,
    entries: Vec<Triplet>,
}

impl CooMatrix {
    /// Create an empty matrix of the given dimensions.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        CooMatrix {
            nrows,
            ncols,
            entries: Vec::new(),
        }
    }

    /// Create an empty matrix with reserved capacity for `cap` entries.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        CooMatrix {
            nrows,
            ncols,
            entries: Vec::with_capacity(cap),
        }
    }

    /// Append an entry. Panics if the coordinates are out of bounds.
    pub fn push(&mut self, row: usize, col: usize, val: f64) {
        assert!(
            row < self.nrows && col < self.ncols,
            "entry ({row}, {col}) outside {}x{} matrix",
            self.nrows,
            self.ncols
        );
        self.entries.push(Triplet { row, col, val });
    }

    /// Append an entry, returning an error instead of panicking on bad coordinates.
    pub fn try_push(&mut self, row: usize, col: usize, val: f64) -> Result<()> {
        if row >= self.nrows || col >= self.ncols {
            return Err(Error::IndexOutOfBounds {
                row,
                col,
                nrows: self.nrows,
                ncols: self.ncols,
            });
        }
        self.entries.push(Triplet { row, col, val });
        Ok(())
    }

    /// Build directly from a triplet list.
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        triplets: impl IntoIterator<Item = (usize, usize, f64)>,
    ) -> Result<Self> {
        let mut m = CooMatrix::new(nrows, ncols);
        for (r, c, v) in triplets {
            m.try_push(r, c, v)?;
        }
        Ok(m)
    }

    /// The stored triplets in insertion order.
    pub fn entries(&self) -> &[Triplet] {
        &self.entries
    }

    /// Sort entries by `(row, col)`. Required before streaming conversions.
    pub fn sort(&mut self) {
        self.entries.sort_by_key(|t| (t.row, t.col));
    }

    /// Sort and combine duplicate coordinates by summing their values.
    pub fn sum_duplicates(&mut self) {
        self.sort();
        let mut out: Vec<Triplet> = Vec::with_capacity(self.entries.len());
        for t in self.entries.drain(..) {
            match out.last_mut() {
                Some(last) if last.row == t.row && last.col == t.col => last.val += t.val,
                _ => out.push(t),
            }
        }
        self.entries = out;
    }

    /// Number of rows that contain at least one stored entry.
    pub fn occupied_rows(&self) -> usize {
        let mut rows: Vec<usize> = self.entries.iter().map(|t| t.row).collect();
        rows.sort_unstable();
        rows.dedup();
        rows.len()
    }

    /// Extract the sub-matrix covering `rows` × `cols` (half-open ranges), with
    /// coordinates re-based to the block origin. Used by the cache-blocking pass.
    pub fn sub_block(
        &self,
        rows: std::ops::Range<usize>,
        cols: std::ops::Range<usize>,
    ) -> CooMatrix {
        let mut block = CooMatrix::new(rows.end - rows.start, cols.end - cols.start);
        for t in &self.entries {
            if rows.contains(&t.row) && cols.contains(&t.col) {
                block.push(t.row - rows.start, t.col - cols.start, t.val);
            }
        }
        block
    }

    /// Transpose, swapping rows and columns.
    pub fn transpose(&self) -> CooMatrix {
        let mut t = CooMatrix::with_capacity(self.ncols, self.nrows, self.entries.len());
        for e in &self.entries {
            t.push(e.col, e.row, e.val);
        }
        t
    }

    /// Densify into a row-major `Vec<Vec<f64>>` (test/debug helper for small matrices).
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut d = vec![vec![0.0; self.ncols]; self.nrows];
        for t in &self.entries {
            d[t.row][t.col] += t.val;
        }
        d
    }
}

impl MatrixShape for CooMatrix {
    fn nrows(&self) -> usize {
        self.nrows
    }
    fn ncols(&self) -> usize {
        self.ncols
    }
    fn stored_entries(&self) -> usize {
        self.entries.len()
    }
    fn nnz(&self) -> usize {
        self.entries.len()
    }
    fn footprint_bytes(&self) -> usize {
        // One value plus a full row and column coordinate per entry: the "naive
        // 16 bytes per nonzero" the paper's Section 4.2 starts from.
        self.entries.len() * (VALUE_BYTES + 2 * INDEX32_BYTES)
    }
}

impl SpMv for CooMatrix {
    fn spmv(&self, x: &[f64], y: &mut [f64]) {
        check_dims(self.nrows, self.ncols, x, y);
        for t in &self.entries {
            y[t.row] += t.val * x[t.col];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CooMatrix {
        // [ 1 0 2 ]
        // [ 0 3 0 ]
        // [ 4 0 5 ]
        CooMatrix::from_triplets(
            3,
            3,
            vec![
                (0, 0, 1.0),
                (0, 2, 2.0),
                (1, 1, 3.0),
                (2, 0, 4.0),
                (2, 2, 5.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn push_and_shape() {
        let m = sample();
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 3);
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.stored_entries(), 5);
    }

    #[test]
    fn spmv_matches_dense() {
        let m = sample();
        let x = vec![1.0, 2.0, 3.0];
        let y = m.spmv_alloc(&x);
        assert_eq!(y, vec![7.0, 6.0, 19.0]);
    }

    #[test]
    fn spmv_accumulates() {
        let m = sample();
        let x = vec![1.0, 1.0, 1.0];
        let mut y = vec![100.0, 100.0, 100.0];
        m.spmv(&x, &mut y);
        assert_eq!(y, vec![103.0, 103.0, 109.0]);
    }

    #[test]
    fn try_push_rejects_out_of_bounds() {
        let mut m = CooMatrix::new(2, 2);
        assert!(m.try_push(2, 0, 1.0).is_err());
        assert!(m.try_push(0, 5, 1.0).is_err());
        assert!(m.try_push(1, 1, 1.0).is_ok());
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn push_panics_out_of_bounds() {
        let mut m = CooMatrix::new(2, 2);
        m.push(3, 0, 1.0);
    }

    #[test]
    fn sum_duplicates_combines() {
        let mut m =
            CooMatrix::from_triplets(2, 2, vec![(0, 0, 1.0), (0, 0, 2.0), (1, 1, 3.0)]).unwrap();
        m.sum_duplicates();
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.to_dense()[0][0], 3.0);
    }

    #[test]
    fn sub_block_rebases_coordinates() {
        let m = sample();
        let b = m.sub_block(1..3, 0..2);
        assert_eq!(b.nrows(), 2);
        assert_eq!(b.ncols(), 2);
        // Entries (1,1,3.0) -> (0,1) and (2,0,4.0) -> (1,0).
        let dense = b.to_dense();
        assert_eq!(dense[0][1], 3.0);
        assert_eq!(dense[1][0], 4.0);
        assert_eq!(b.nnz(), 2);
    }

    #[test]
    fn transpose_swaps() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.to_dense()[2][0], 2.0);
        assert_eq!(t.to_dense()[0][2], 4.0);
    }

    #[test]
    fn occupied_rows_counts_distinct() {
        let m = sample();
        assert_eq!(m.occupied_rows(), 3);
        let sparse = CooMatrix::from_triplets(10, 10, vec![(0, 0, 1.0), (9, 9, 1.0)]).unwrap();
        assert_eq!(sparse.occupied_rows(), 2);
    }

    #[test]
    fn footprint_is_16_bytes_per_nonzero() {
        let m = sample();
        assert_eq!(m.footprint_bytes(), 5 * 16);
    }

    #[test]
    fn flop_byte_ratio_upper_bound() {
        // COO's flop:byte is 2/16 = 0.125; CSR-ish formats approach the 0.25 bound.
        let m = sample();
        assert!((m.flop_byte_ratio() - 0.125).abs() < 1e-12);
    }
}
