//! Fused BLAS-1 micro-kernels for the iterative solvers, plus the deterministic
//! scalar tree reduction.
//!
//! ## Bit-stability contract
//!
//! Every reducing kernel here (dot products, the fused CG update) uses a **fixed
//! four-lane accumulator schedule**: lane `j` accumulates elements `j, j+4, j+8, …`
//! with plain multiply-then-add (no FMA contraction), the lanes combine as
//! `(l0 + l1) + (l2 + l3)`, and a sequential tail handles the final `len % 4`
//! elements. The AVX2 and NEON variants implement *exactly* that schedule with
//! `mul`/`add` instructions (deliberately not FMA), so scalar and SIMD builds are
//! **bit-identical** — unlike the SpMV kernels, where FMA contraction makes the
//! vector leg a different accumulation class, the solver's vector arithmetic never
//! changes with the `SPMV_SIMD` knob. Element-wise kernels (`axpy`, `xpby`,
//! `scale_from`) are trivially order-independent per element.
//!
//! [`tree_sum`] folds per-thread partial scalars in the same pairwise order as
//! [`crate::tuning::reduce_tree`] folds per-thread vectors, so every worker (and
//! the serial reference) derives the same `f64` from the same slots without any
//! extra communication.

use crate::kernels::simd::{detect, SimdLevel};

/// Dot product with the fixed four-lane accumulator schedule.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot operands must have equal length");
    match detect() {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2Fma => unsafe { dot_avx2(a, b) },
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => unsafe { dot_neon(a, b) },
        _ => dot_scalar(a, b),
    }
}

/// Squared Euclidean norm, `dot(a, a)`.
pub fn norm_squared(a: &[f64]) -> f64 {
    match detect() {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2Fma => unsafe { dot_avx2(a, a) },
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => unsafe { dot_neon(a, a) },
        _ => dot_scalar(a, a),
    }
}

/// The fused CG interior update, one pass over the slice:
/// `x += alpha·p`, `r -= alpha·w`, returning the partial `r·r` of the updated
/// residual slice under the same four-lane schedule as [`dot`].
pub fn cg_update(alpha: f64, p: &[f64], w: &[f64], x: &mut [f64], r: &mut [f64]) -> f64 {
    let n = p.len();
    assert!(
        w.len() == n && x.len() == n && r.len() == n,
        "cg_update operands must have equal length"
    );
    match detect() {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2Fma => unsafe { cg_update_avx2(alpha, p, w, x, r) },
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => unsafe { cg_update_neon(alpha, p, w, x, r) },
        _ => cg_update_scalar(alpha, p, w, x, r),
    }
}

/// `y += alpha·x` (element-wise; bit-stable under vectorization).
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy operands must have equal length");
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// The CG direction update `p ← x + beta·p` (element-wise).
pub fn xpby(x: &[f64], beta: f64, p: &mut [f64]) {
    assert_eq!(x.len(), p.len(), "xpby operands must have equal length");
    for (pi, xi) in p.iter_mut().zip(x.iter()) {
        *pi = xi + beta * *pi;
    }
}

/// `dst ← s·src` (element-wise; the power-iteration normalization step).
pub fn scale_from(src: &[f64], s: f64, dst: &mut [f64]) {
    assert_eq!(
        src.len(),
        dst.len(),
        "scale operands must have equal length"
    );
    for (di, si) in dst.iter_mut().zip(src.iter()) {
        *di = si * s;
    }
}

/// Deterministic pairwise tree sum over per-thread partial scalars.
///
/// Folds `slots` in exactly the order [`crate::tuning::reduce_tree`] folds
/// per-thread vectors (stride 1, 2, 4, …; slot `i` with `i % (2·stride) == 0`
/// absorbs slot `i + stride` when it exists), expressed allocation-free as a
/// recursion so every engine worker can evaluate it locally after a barrier and
/// arrive at the same scalar.
pub fn tree_sum(slots: &[f64]) -> f64 {
    fn rec(slots: &[f64], i: usize, span: usize) -> f64 {
        if span == 1 {
            return slots[i];
        }
        let half = span / 2;
        let left = rec(slots, i, half);
        if i + half < slots.len() {
            left + rec(slots, i + half, half)
        } else {
            left
        }
    }
    match slots.len() {
        0 => 0.0,
        n => rec(slots, 0, n.next_power_of_two()),
    }
}

fn dot_scalar(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len();
    let main = n - n % 4;
    let (mut l0, mut l1, mut l2, mut l3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let mut i = 0;
    while i < main {
        l0 += a[i] * b[i];
        l1 += a[i + 1] * b[i + 1];
        l2 += a[i + 2] * b[i + 2];
        l3 += a[i + 3] * b[i + 3];
        i += 4;
    }
    let mut tail = 0.0f64;
    while i < n {
        tail += a[i] * b[i];
        i += 1;
    }
    ((l0 + l1) + (l2 + l3)) + tail
}

fn cg_update_scalar(alpha: f64, p: &[f64], w: &[f64], x: &mut [f64], r: &mut [f64]) -> f64 {
    let n = p.len();
    let main = n - n % 4;
    let (mut l0, mut l1, mut l2, mut l3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let mut i = 0;
    while i < main {
        x[i] += alpha * p[i];
        x[i + 1] += alpha * p[i + 1];
        x[i + 2] += alpha * p[i + 2];
        x[i + 3] += alpha * p[i + 3];
        r[i] -= alpha * w[i];
        r[i + 1] -= alpha * w[i + 1];
        r[i + 2] -= alpha * w[i + 2];
        r[i + 3] -= alpha * w[i + 3];
        l0 += r[i] * r[i];
        l1 += r[i + 1] * r[i + 1];
        l2 += r[i + 2] * r[i + 2];
        l3 += r[i + 3] * r[i + 3];
        i += 4;
    }
    let mut tail = 0.0f64;
    while i < n {
        x[i] += alpha * p[i];
        r[i] -= alpha * w[i];
        tail += r[i] * r[i];
        i += 1;
    }
    ((l0 + l1) + (l2 + l3)) + tail
}

/// AVX2 dot with the scalar schedule: one 4-lane vector accumulator, `mul`+`add`
/// (no FMA, so each lane matches the scalar lane bit-for-bit), lanes combined in
/// the scalar order, sequential tail.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_avx2(a: &[f64], b: &[f64]) -> f64 {
    use std::arch::x86_64::*;
    let n = a.len();
    let main = n - n % 4;
    let mut acc = _mm256_setzero_pd();
    let mut i = 0;
    while i < main {
        let va = _mm256_loadu_pd(a.as_ptr().add(i));
        let vb = _mm256_loadu_pd(b.as_ptr().add(i));
        acc = _mm256_add_pd(acc, _mm256_mul_pd(va, vb));
        i += 4;
    }
    let mut lanes = [0.0f64; 4];
    _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
    let mut tail = 0.0f64;
    while i < n {
        tail += a[i] * b[i];
        i += 1;
    }
    ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) + tail
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn cg_update_avx2(alpha: f64, p: &[f64], w: &[f64], x: &mut [f64], r: &mut [f64]) -> f64 {
    use std::arch::x86_64::*;
    let n = p.len();
    let main = n - n % 4;
    let va = _mm256_set1_pd(alpha);
    let mut acc = _mm256_setzero_pd();
    let mut i = 0;
    while i < main {
        let vp = _mm256_loadu_pd(p.as_ptr().add(i));
        let vw = _mm256_loadu_pd(w.as_ptr().add(i));
        let vx = _mm256_loadu_pd(x.as_ptr().add(i));
        let vr = _mm256_loadu_pd(r.as_ptr().add(i));
        let nx = _mm256_add_pd(vx, _mm256_mul_pd(va, vp));
        let nr = _mm256_sub_pd(vr, _mm256_mul_pd(va, vw));
        _mm256_storeu_pd(x.as_mut_ptr().add(i), nx);
        _mm256_storeu_pd(r.as_mut_ptr().add(i), nr);
        acc = _mm256_add_pd(acc, _mm256_mul_pd(nr, nr));
        i += 4;
    }
    let mut lanes = [0.0f64; 4];
    _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
    let mut tail = 0.0f64;
    while i < n {
        x[i] += alpha * p[i];
        r[i] -= alpha * w[i];
        tail += r[i] * r[i];
        i += 1;
    }
    ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) + tail
}

/// NEON dot with the scalar schedule: two 2-lane accumulators standing in for
/// lanes {0,1} and {2,3} of the four-lane schedule, `mul`+`add` (no FMA).
#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn dot_neon(a: &[f64], b: &[f64]) -> f64 {
    use std::arch::aarch64::*;
    let n = a.len();
    let main = n - n % 4;
    let mut acc01 = vdupq_n_f64(0.0);
    let mut acc23 = vdupq_n_f64(0.0);
    let mut i = 0;
    while i < main {
        let a01 = vld1q_f64(a.as_ptr().add(i));
        let a23 = vld1q_f64(a.as_ptr().add(i + 2));
        let b01 = vld1q_f64(b.as_ptr().add(i));
        let b23 = vld1q_f64(b.as_ptr().add(i + 2));
        acc01 = vaddq_f64(acc01, vmulq_f64(a01, b01));
        acc23 = vaddq_f64(acc23, vmulq_f64(a23, b23));
        i += 4;
    }
    let mut tail = 0.0f64;
    while i < n {
        tail += a[i] * b[i];
        i += 1;
    }
    let l01 = vgetq_lane_f64(acc01, 0) + vgetq_lane_f64(acc01, 1);
    let l23 = vgetq_lane_f64(acc23, 0) + vgetq_lane_f64(acc23, 1);
    (l01 + l23) + tail
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn cg_update_neon(alpha: f64, p: &[f64], w: &[f64], x: &mut [f64], r: &mut [f64]) -> f64 {
    use std::arch::aarch64::*;
    let n = p.len();
    let main = n - n % 4;
    let va = vdupq_n_f64(alpha);
    let mut acc01 = vdupq_n_f64(0.0);
    let mut acc23 = vdupq_n_f64(0.0);
    let mut i = 0;
    while i < main {
        let p01 = vld1q_f64(p.as_ptr().add(i));
        let p23 = vld1q_f64(p.as_ptr().add(i + 2));
        let w01 = vld1q_f64(w.as_ptr().add(i));
        let w23 = vld1q_f64(w.as_ptr().add(i + 2));
        let x01 = vaddq_f64(vld1q_f64(x.as_ptr().add(i)), vmulq_f64(va, p01));
        let x23 = vaddq_f64(vld1q_f64(x.as_ptr().add(i + 2)), vmulq_f64(va, p23));
        let r01 = vsubq_f64(vld1q_f64(r.as_ptr().add(i)), vmulq_f64(va, w01));
        let r23 = vsubq_f64(vld1q_f64(r.as_ptr().add(i + 2)), vmulq_f64(va, w23));
        vst1q_f64(x.as_mut_ptr().add(i), x01);
        vst1q_f64(x.as_mut_ptr().add(i + 2), x23);
        vst1q_f64(r.as_mut_ptr().add(i), r01);
        vst1q_f64(r.as_mut_ptr().add(i + 2), r23);
        acc01 = vaddq_f64(acc01, vmulq_f64(r01, r01));
        acc23 = vaddq_f64(acc23, vmulq_f64(r23, r23));
        i += 4;
    }
    let mut tail = 0.0f64;
    while i < n {
        x[i] += alpha * p[i];
        r[i] -= alpha * w[i];
        tail += r[i] * r[i];
        i += 1;
    }
    let l01 = vgetq_lane_f64(acc01, 0) + vgetq_lane_f64(acc01, 1);
    let l23 = vgetq_lane_f64(acc23, 0) + vgetq_lane_f64(acc23, 1);
    (l01 + l23) + tail
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(n: usize, seed: f64) -> Vec<f64> {
        (0..n).map(|i| ((i as f64) * seed + 0.37).sin()).collect()
    }

    #[test]
    fn dot_matches_scalar_schedule_bitwise() {
        for n in [0, 1, 3, 4, 7, 8, 33, 257] {
            let a = series(n, 0.11);
            let b = series(n, 0.23);
            // Whatever leg `dot` dispatches to must equal the scalar schedule
            // bit-for-bit — the contract that keeps SPMV_SIMD out of the
            // solver's accumulation class.
            assert_eq!(dot(&a, &b).to_bits(), dot_scalar(&a, &b).to_bits(), "n={n}");
        }
    }

    #[test]
    fn cg_update_matches_scalar_schedule_bitwise() {
        for n in [0, 1, 5, 16, 129] {
            let p = series(n, 0.13);
            let w = series(n, 0.29);
            let (mut x1, mut r1) = (series(n, 0.41), series(n, 0.53));
            let (mut x2, mut r2) = (x1.clone(), r1.clone());
            let d1 = cg_update(0.7321, &p, &w, &mut x1, &mut r1);
            let d2 = cg_update_scalar(0.7321, &p, &w, &mut x2, &mut r2);
            assert_eq!(d1.to_bits(), d2.to_bits(), "n={n}");
            for i in 0..n {
                assert_eq!(x1[i].to_bits(), x2[i].to_bits());
                assert_eq!(r1[i].to_bits(), r2[i].to_bits());
            }
        }
    }

    #[test]
    fn cg_update_is_the_fused_axpy_axpy_dot() {
        let n = 37;
        let p = series(n, 0.17);
        let w = series(n, 0.19);
        let (mut x, mut r) = (series(n, 0.31), series(n, 0.43));
        let (mut x_ref, mut r_ref) = (x.clone(), r.clone());
        let rr = cg_update(1.25, &p, &w, &mut x, &mut r);
        for i in 0..n {
            x_ref[i] += 1.25 * p[i];
            r_ref[i] -= 1.25 * w[i];
        }
        assert_eq!(x, x_ref);
        assert_eq!(r, r_ref);
        assert!((rr - r_ref.iter().map(|v| v * v).sum::<f64>()).abs() < 1e-12);
    }

    #[test]
    fn tree_sum_matches_reduce_tree_schedule() {
        // Folding scalars must follow the exact pairwise order reduce_tree
        // applies to length-1 per-thread vectors.
        for count in 1..=17 {
            let slots: Vec<f64> = (0..count).map(|i| ((i as f64) * 0.77).tan()).collect();
            let mut scratch = slots.clone();
            crate::tuning::reduce_tree(&mut scratch, 1, count);
            assert_eq!(
                tree_sum(&slots).to_bits(),
                scratch[0].to_bits(),
                "count={count}"
            );
        }
        assert_eq!(tree_sum(&[]), 0.0);
    }

    #[test]
    fn elementwise_kernels() {
        let x = series(9, 0.21);
        let mut y = series(9, 0.33);
        let y0 = y.clone();
        axpy(2.0, &x, &mut y);
        for i in 0..9 {
            assert_eq!(y[i], y0[i] + 2.0 * x[i]);
        }
        let mut p = y.clone();
        xpby(&x, 0.5, &mut p);
        for i in 0..9 {
            assert_eq!(p[i], x[i] + 0.5 * y[i]);
        }
        let mut dst = vec![0.0; 9];
        scale_from(&x, 3.0, &mut dst);
        for i in 0..9 {
            assert_eq!(dst[i], x[i] * 3.0);
        }
    }
}
