//! In-engine iterative solvers: fused per-slice micro-ops and the serial
//! reference state machines.
//!
//! The paper optimizes SpMV because it is the inner loop of iterative solvers
//! (conjugate gradient, power iteration / PageRank). This module expresses one
//! solver iteration as a short sequence of **per-slice fused micro-ops** over the
//! plan's row partition — SpMV + partial dot in one pass, the fused
//! `x += αp` / `r -= αw` / partial `r·r` update, `p ← r + βp`, normalization —
//! with all scalar reductions folded by the deterministic pairwise
//! [`kernels::tree_sum`]. `spmv_parallel::SpmvEngine` runs the same micro-ops
//! concurrently (one worker per slice, barriers between phases) over resident
//! vectors; [`SerialCg`] and [`SerialPower`] here run them sequentially over the
//! same [`PreparedMatrix`], slice order preserved — so the parallel fused epoch
//! is **bit-identical** to the serial reference within an accumulation class,
//! exactly like the plain SpMV and symmetric paths.
//!
//! ## One fused CG step (both executors, op-for-op)
//!
//! 1. `w ← A·p` per slice (symmetric plans: per-slab scratch + tree reduction
//!    into zeroed `w`), partial `pᵀw` per slice.
//! 2. `pw ← tree_sum(partials)`, `α ← rr/pw` — every executor derives the same
//!    scalar from the same slots.
//! 3. Fused update per slice: `x += αp`, `r -= αw`, partial `rᵀr`.
//! 4. `rr' ← tree_sum(partials)`, `β ← rr'/rr`.
//! 5. `p ← r + βp` per slice.
//!
//! The engine runs all five under a **single launch/completion epoch** (two
//! internal phase barriers); the unfused formulation costs ~4 epochs plus two
//! client-side vector round-trips per iteration.

pub mod kernels;

use crate::error::{Error, Result};
use crate::formats::traits::MatrixShape;
use crate::tuning::prepared::{reduce_into, reduce_tree, PreparedMatrix};

/// Serial conjugate-gradient reference over a [`PreparedMatrix`], mirrored
/// op-for-op by the engine's fused `CgStep` epoch.
///
/// Solves `A·x = b` for symmetric positive definite `A`, starting from `x = 0`
/// (so `r = p = b`). Holds all solver vectors internally, like the engine's
/// resident slabs.
pub struct SerialCg {
    prepared: PreparedMatrix,
    x: Vec<f64>,
    r: Vec<f64>,
    p: Vec<f64>,
    w: Vec<f64>,
    /// Flat per-slab scratch for symmetric plans (count × nrows), zeroed per
    /// apply — the serial mirror of the workers' persistent scratch slots.
    scratch: Vec<f64>,
    partials: Vec<f64>,
    rr: f64,
    iterations: u64,
}

impl SerialCg {
    /// Start CG on `prepared` (which must be square) with right-hand side `b`.
    pub fn new(prepared: PreparedMatrix, b: &[f64]) -> Result<SerialCg> {
        let n = square_order(&prepared)?;
        if b.len() != n {
            return Err(Error::DimensionMismatch {
                expected: n,
                found: b.len(),
                what: "CG right-hand side",
            });
        }
        let count = prepared.blocks().len();
        let scratch_len = if prepared.is_symmetric() {
            count * n
        } else {
            0
        };
        let mut cg = SerialCg {
            prepared,
            x: vec![0.0; n],
            r: b.to_vec(),
            p: b.to_vec(),
            w: vec![0.0; n],
            scratch: vec![0.0; scratch_len],
            partials: vec![0.0; count],
            rr: 0.0,
            iterations: 0,
        };
        for (s, block) in cg.prepared.blocks().iter().enumerate() {
            cg.partials[s] = kernels::dot(&cg.r[block.rows()], &cg.r[block.rows()]);
        }
        cg.rr = kernels::tree_sum(&cg.partials);
        cg.iterations = 0;
        Ok(cg)
    }

    /// `w ← A·p`, the exact op sequence the engine workers run: general plans
    /// zero each slice and execute into it; symmetric plans execute every slab
    /// into zeroed scratch, tree-reduce, and accumulate the root into zeroed `w`.
    fn apply(&mut self) {
        let blocks = self.prepared.blocks();
        if self.prepared.is_symmetric() {
            let len = self.w.len();
            let count = blocks.len();
            self.scratch.fill(0.0);
            for (block, s) in blocks.iter().zip(self.scratch.chunks_mut(len.max(1))) {
                block.execute_full(&self.p, s);
            }
            reduce_tree(&mut self.scratch, len, count);
            self.w.fill(0.0);
            if count > 0 {
                reduce_into(&mut self.w, &self.scratch[..len]);
            }
        } else {
            for block in blocks {
                let rows = block.rows();
                self.w[rows.clone()].fill(0.0);
                block.execute(&self.p, &mut self.w[rows]);
            }
        }
    }

    /// Run one fused CG iteration; returns the updated residual norm `‖r‖₂`.
    pub fn step(&mut self) -> f64 {
        self.apply();
        for (s, block) in self.prepared.blocks().iter().enumerate() {
            self.partials[s] = kernels::dot(&self.p[block.rows()], &self.w[block.rows()]);
        }
        let pw = kernels::tree_sum(&self.partials);
        let alpha = self.rr / pw;
        for (s, block) in self.prepared.blocks().iter().enumerate() {
            let rows = block.rows();
            self.partials[s] = kernels::cg_update(
                alpha,
                &self.p[rows.clone()],
                &self.w[rows.clone()],
                &mut self.x[rows.clone()],
                &mut self.r[rows],
            );
        }
        let rr_new = kernels::tree_sum(&self.partials);
        let beta = rr_new / self.rr;
        for block in self.prepared.blocks() {
            let rows = block.rows();
            kernels::xpby(&self.r[rows.clone()], beta, &mut self.p[rows]);
        }
        self.rr = rr_new;
        self.iterations += 1;
        self.rr.sqrt()
    }

    /// Current residual norm `‖r‖₂ = √(r·r)`.
    pub fn residual_norm(&self) -> f64 {
        self.rr.sqrt()
    }

    /// The raw squared residual `r·r` the state machine carries.
    pub fn rr(&self) -> f64 {
        self.rr
    }

    /// Iterations taken so far.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// The current iterate `x`.
    pub fn solution(&self) -> &[f64] {
        &self.x
    }

    /// The current residual vector `r = b − A·x`.
    pub fn residual(&self) -> &[f64] {
        &self.r
    }

    /// The current search direction `p`.
    pub fn direction(&self) -> &[f64] {
        &self.p
    }
}

/// Serial power-iteration reference over a [`PreparedMatrix`], mirrored
/// op-for-op by the engine's fused `PowerStep` epoch.
///
/// Tracks the dominant eigenpair of a square matrix: each step computes
/// `w = A·q`, the Rayleigh estimate `λ = qᵀw`, and renormalizes `q ← w/‖w‖`.
pub struct SerialPower {
    prepared: PreparedMatrix,
    q: Vec<f64>,
    w: Vec<f64>,
    scratch: Vec<f64>,
    partials_a: Vec<f64>,
    partials_b: Vec<f64>,
    lambda: f64,
    iterations: u64,
}

impl SerialPower {
    /// Start power iteration from `v0` (normalized internally; must be nonzero).
    pub fn new(prepared: PreparedMatrix, v0: &[f64]) -> Result<SerialPower> {
        let n = square_order(&prepared)?;
        if v0.len() != n {
            return Err(Error::DimensionMismatch {
                expected: n,
                found: v0.len(),
                what: "power-iteration start vector",
            });
        }
        let count = prepared.blocks().len();
        let scratch_len = if prepared.is_symmetric() {
            count * n
        } else {
            0
        };
        let mut power = SerialPower {
            prepared,
            q: vec![0.0; n],
            w: vec![0.0; n],
            scratch: vec![0.0; scratch_len],
            partials_a: vec![0.0; count],
            partials_b: vec![0.0; count],
            lambda: 0.0,
            iterations: 0,
        };
        for (s, block) in power.prepared.blocks().iter().enumerate() {
            power.partials_b[s] = kernels::dot(&v0[block.rows()], &v0[block.rows()]);
        }
        let inv = 1.0 / kernels::tree_sum(&power.partials_b).sqrt();
        for block in power.prepared.blocks() {
            let rows = block.rows();
            kernels::scale_from(&v0[rows.clone()], inv, &mut power.q[rows]);
        }
        Ok(power)
    }

    /// One fused power step; returns the updated Rayleigh estimate `λ = qᵀAq`.
    pub fn step(&mut self) -> f64 {
        // w ← A·q, identical op order to SerialCg::apply.
        let blocks = self.prepared.blocks();
        if self.prepared.is_symmetric() {
            let len = self.w.len();
            let count = blocks.len();
            self.scratch.fill(0.0);
            for (block, s) in blocks.iter().zip(self.scratch.chunks_mut(len.max(1))) {
                block.execute_full(&self.q, s);
            }
            reduce_tree(&mut self.scratch, len, count);
            self.w.fill(0.0);
            if count > 0 {
                reduce_into(&mut self.w, &self.scratch[..len]);
            }
        } else {
            for block in blocks {
                let rows = block.rows();
                self.w[rows.clone()].fill(0.0);
                block.execute(&self.q, &mut self.w[rows]);
            }
        }
        for (s, block) in self.prepared.blocks().iter().enumerate() {
            let rows = block.rows();
            self.partials_a[s] = kernels::dot(&self.q[rows.clone()], &self.w[rows.clone()]);
            self.partials_b[s] = kernels::dot(&self.w[rows.clone()], &self.w[rows]);
        }
        self.lambda = kernels::tree_sum(&self.partials_a);
        let inv = 1.0 / kernels::tree_sum(&self.partials_b).sqrt();
        for block in self.prepared.blocks() {
            let rows = block.rows();
            kernels::scale_from(&self.w[rows.clone()], inv, &mut self.q[rows]);
        }
        self.iterations += 1;
        self.lambda
    }

    /// Latest Rayleigh estimate `λ = qᵀAq` (0 before the first step).
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Iterations taken so far.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// The current normalized iterate `q`.
    pub fn eigenvector(&self) -> &[f64] {
        &self.q
    }
}

fn square_order(prepared: &PreparedMatrix) -> Result<usize> {
    if prepared.nrows() != prepared.ncols() {
        return Err(Error::InvalidStructure(format!(
            "iterative solvers require a square matrix, got {}x{}",
            prepared.nrows(),
            prepared.ncols()
        )));
    }
    Ok(prepared.nrows())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formats::traits::SpMv;
    use crate::formats::{CooMatrix, CsrMatrix};
    use crate::tuning::{TunePlan, TuningConfig};

    /// Small SPD system: A = tridiag(-1, 4, -1), x* = all-ones, b = A·x*.
    fn spd_system(n: usize) -> (CsrMatrix, Vec<f64>) {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 4.0);
            if i + 1 < n {
                coo.push(i, i + 1, -1.0);
                coo.push(i + 1, i, -1.0);
            }
        }
        let csr = CsrMatrix::from_coo(&coo);
        let b = csr.spmv_alloc(&vec![1.0; n]);
        (csr, b)
    }

    fn prepared(csr: &CsrMatrix, threads: usize, config: &TuningConfig) -> PreparedMatrix {
        PreparedMatrix::materialize(csr, &TunePlan::new(csr, threads, config)).unwrap()
    }

    #[test]
    fn serial_cg_converges_to_known_solution() {
        let (csr, b) = spd_system(64);
        for config in [TuningConfig::full(), TuningConfig::naive()] {
            let mut cg = SerialCg::new(prepared(&csr, 3, &config), &b).unwrap();
            let mut res = cg.residual_norm();
            for _ in 0..200 {
                res = cg.step();
                if res < 1e-11 {
                    break;
                }
            }
            assert!(res < 1e-11, "CG failed to converge: {res}");
            let err = cg
                .solution()
                .iter()
                .map(|v| (v - 1.0).abs())
                .fold(0.0f64, f64::max);
            assert!(err < 1e-9, "solution error {err}");
        }
    }

    #[test]
    fn serial_cg_partition_count_does_not_change_convergence() {
        let (csr, b) = spd_system(50);
        let config = TuningConfig::full();
        for threads in [1, 2, 7, 53] {
            let mut cg = SerialCg::new(prepared(&csr, threads, &config), &b).unwrap();
            for _ in 0..120 {
                if cg.step() < 1e-11 {
                    break;
                }
            }
            assert!(cg.residual_norm() < 1e-11, "threads={threads}");
        }
    }

    #[test]
    fn serial_power_finds_dominant_eigenvalue() {
        // Diagonal matrix: dominant eigenvalue is the largest diagonal entry.
        let n = 24;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 1.0 + i as f64);
        }
        let csr = CsrMatrix::from_coo(&coo);
        let mut power =
            SerialPower::new(prepared(&csr, 3, &TuningConfig::full()), &vec![1.0; n]).unwrap();
        let mut lambda = 0.0;
        for _ in 0..300 {
            lambda = power.step();
        }
        assert!((lambda - n as f64).abs() < 1e-6, "lambda={lambda}");
    }

    #[test]
    fn solvers_reject_non_square_and_mismatched_inputs() {
        let coo = CooMatrix::from_triplets(3, 4, vec![(0, 0, 1.0)]).unwrap();
        let csr = CsrMatrix::from_coo(&coo);
        let prep = prepared(&csr, 1, &TuningConfig::naive());
        assert!(SerialCg::new(prep.clone(), &[1.0; 4]).is_err());
        assert!(SerialPower::new(prep, &[1.0; 4]).is_err());

        let (sq, _) = spd_system(4);
        let prep = prepared(&sq, 1, &TuningConfig::naive());
        assert!(SerialCg::new(prep, &[1.0; 3]).is_err());
    }
}
