//! SpMV code-optimization variants (paper Section 4.1).
//!
//! These kernels all consume the same [`CsrMatrix`] data structure — they are *code*
//! optimizations, not data-structure optimizations. The ladder mirrors the paper:
//!
//! * [`naive`] — conventional nested loop over `row_ptr`.
//! * [`single_loop`] — a single loop variable over the nonzero stream, exploiting the
//!   fact that CSR stores rows contiguously.
//! * [`branchless`] — segmented-scan-style accumulation with no inner-loop branch,
//!   the technique of Blelloch et al. the paper cites.
//! * [`pipelined`] — explicit software pipelining: the next iteration's operands are
//!   loaded while the current one computes, for in-order cores.
//! * [`unrolled`] — 4-way unrolled, SIMD-friendly inner loop (what the paper's
//!   SIMD-intrinsic generator emits, expressed as auto-vectorizable Rust).
//! * [`prefetch`] — software-prefetch-annotated traversal with a tunable distance.
//! * [`multivec`] — the SpMM family: the same data structures applied to a
//!   column-major block of `k` vectors at once, amortizing all index traffic.
//!
//! [`variant::KernelVariant`] provides uniform dispatch so the tuner and benchmarks
//! can sweep the whole set.

pub mod blocked;
pub mod branchless;
pub mod multivec;
pub mod naive;
pub mod pipelined;
pub mod prefetch;
pub mod simd;
pub mod single_loop;
pub mod symmetric;
pub mod unrolled;
pub mod variant;

pub use variant::{KernelVariant, PreparedKernel};

#[cfg(test)]
pub(crate) mod testing {
    use crate::formats::CooMatrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Random rectangular test matrix with roughly `nnz` entries.
    pub fn random_coo(nrows: usize, ncols: usize, nnz: usize, seed: u64) -> CooMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut coo = CooMatrix::new(nrows, ncols);
        for _ in 0..nnz {
            coo.push(
                rng.random_range(0..nrows),
                rng.random_range(0..ncols),
                rng.random_range(-1.0..1.0),
            );
        }
        coo
    }

    /// A source vector with deterministic, non-trivial contents.
    pub fn test_x(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| ((i * 37 + 11) % 101) as f64 * 0.25 - 10.0)
            .collect()
    }
}
