//! Naive nested-loop CSR SpMV: the unoptimized baseline every speedup is measured from.

use crate::formats::csr::CsrMatrix;
use crate::formats::index::IndexStorage;
use crate::formats::traits::MatrixShape;

/// `y ← y + A·x` with the textbook nested loop: the outer loop walks rows, the inner
/// loop walks `row_ptr[i]..row_ptr[i+1]`.
///
/// # Panics
///
/// Panics if `x`/`y` do not match the matrix dimensions.
pub fn spmv_naive<I: IndexStorage>(a: &CsrMatrix<I>, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), a.ncols(), "source vector length mismatch");
    assert_eq!(y.len(), a.nrows(), "destination vector length mismatch");
    let row_ptr = a.row_ptr();
    let col_idx = a.col_idx();
    let values = a.values();
    for row in 0..a.nrows() {
        let mut sum = 0.0;
        for k in row_ptr[row]..row_ptr[row + 1] {
            sum += values[k] * x[col_idx[k].to_usize()];
        }
        y[row] += sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::max_abs_diff;
    use crate::formats::traits::SpMv;
    use crate::formats::{CooMatrix, CsrMatrix};
    use crate::kernels::testing::{random_coo, test_x};

    #[test]
    fn matches_trait_reference() {
        let csr = CsrMatrix::from_coo(&random_coo(64, 48, 500, 21));
        let x = test_x(48);
        let reference = csr.spmv_alloc(&x);
        let mut y = vec![0.0; 64];
        spmv_naive(&csr, &x, &mut y);
        assert!(max_abs_diff(&reference, &y) < 1e-12);
    }

    #[test]
    fn accumulates_into_destination() {
        let csr = CsrMatrix::from_coo(
            &CooMatrix::from_triplets(2, 2, vec![(0, 0, 2.0), (1, 1, 3.0)]).unwrap(),
        );
        let mut y = vec![1.0, 1.0];
        spmv_naive(&csr, &[1.0, 1.0], &mut y);
        assert_eq!(y, vec![3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "source vector")]
    fn rejects_wrong_x() {
        let csr = CsrMatrix::from_coo(&CooMatrix::new(2, 3));
        let mut y = vec![0.0; 2];
        spmv_naive(&csr, &[0.0; 2], &mut y);
    }

    #[test]
    fn handles_empty_rows() {
        let csr = CsrMatrix::from_coo(
            &CooMatrix::from_triplets(4, 4, vec![(0, 0, 1.0), (3, 3, 2.0)]).unwrap(),
        );
        let mut y = vec![0.0; 4];
        spmv_naive(&csr, &[1.0; 4], &mut y);
        assert_eq!(y, vec![1.0, 0.0, 0.0, 2.0]);
    }
}
