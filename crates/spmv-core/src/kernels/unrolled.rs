//! Unrolled, SIMD-friendly CSR SpMV.
//!
//! The paper's x86 generator emits SSE intrinsics; the portable Rust equivalent is an
//! inner loop unrolled by four with independent partial sums, which the compiler's
//! auto-vectorizer turns into packed multiply–adds. Four independent accumulators also
//! break the floating-point add dependence chain, the other half of what the SIMD
//! code buys on the out-of-order x86 cores.

use crate::formats::csr::CsrMatrix;
use crate::formats::index::IndexStorage;
use crate::formats::traits::MatrixShape;

/// `y ← y + A·x` with a 4-way unrolled inner loop and independent partial sums.
///
/// Note: floating-point addition is not associative, so results may differ from the
/// naive kernel by rounding error (bounded by a few ULPs per row); tests compare with
/// a tolerance, exactly as the paper's implementations do implicitly.
pub fn spmv_unrolled4<I: IndexStorage>(a: &CsrMatrix<I>, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), a.ncols(), "source vector length mismatch");
    assert_eq!(y.len(), a.nrows(), "destination vector length mismatch");
    let row_ptr = a.row_ptr();
    let col_idx = a.col_idx();
    let values = a.values();

    for row in 0..a.nrows() {
        let lo = row_ptr[row];
        let hi = row_ptr[row + 1];
        let len = hi - lo;
        let chunks = len / 4;
        let mut s0 = 0.0;
        let mut s1 = 0.0;
        let mut s2 = 0.0;
        let mut s3 = 0.0;
        let base = lo;
        for ch in 0..chunks {
            let k = base + ch * 4;
            s0 += values[k] * x[col_idx[k].to_usize()];
            s1 += values[k + 1] * x[col_idx[k + 1].to_usize()];
            s2 += values[k + 2] * x[col_idx[k + 2].to_usize()];
            s3 += values[k + 3] * x[col_idx[k + 3].to_usize()];
        }
        let mut tail = 0.0;
        for k in base + chunks * 4..hi {
            tail += values[k] * x[col_idx[k].to_usize()];
        }
        y[row] += (s0 + s2) + (s1 + s3) + tail;
    }
}

/// `y ← y + A·x` with an 8-way unrolled inner loop, for long-row matrices (Dense, LP).
pub fn spmv_unrolled8<I: IndexStorage>(a: &CsrMatrix<I>, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), a.ncols(), "source vector length mismatch");
    assert_eq!(y.len(), a.nrows(), "destination vector length mismatch");
    let row_ptr = a.row_ptr();
    let col_idx = a.col_idx();
    let values = a.values();

    for row in 0..a.nrows() {
        let lo = row_ptr[row];
        let hi = row_ptr[row + 1];
        let len = hi - lo;
        let chunks = len / 8;
        let mut acc = [0.0f64; 8];
        for ch in 0..chunks {
            let k = lo + ch * 8;
            for (lane, slot) in acc.iter_mut().enumerate() {
                *slot += values[k + lane] * x[col_idx[k + lane].to_usize()];
            }
        }
        let mut tail = 0.0;
        for k in lo + chunks * 8..hi {
            tail += values[k] * x[col_idx[k].to_usize()];
        }
        let pairwise =
            ((acc[0] + acc[4]) + (acc[1] + acc[5])) + ((acc[2] + acc[6]) + (acc[3] + acc[7]));
        y[row] += pairwise + tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::max_abs_diff;
    use crate::formats::traits::SpMv;
    use crate::formats::{CooMatrix, CsrMatrix};
    use crate::kernels::testing::{random_coo, test_x};

    #[test]
    fn unrolled4_matches_reference() {
        let csr = CsrMatrix::from_coo(&random_coo(60, 60, 1200, 31));
        let x = test_x(60);
        let reference = csr.spmv_alloc(&x);
        let mut y = vec![0.0; 60];
        spmv_unrolled4(&csr, &x, &mut y);
        assert!(max_abs_diff(&reference, &y) < 1e-9);
    }

    #[test]
    fn unrolled8_matches_reference() {
        let csr = CsrMatrix::from_coo(&random_coo(30, 200, 3000, 32));
        let x = test_x(200);
        let reference = csr.spmv_alloc(&x);
        let mut y = vec![0.0; 30];
        spmv_unrolled8(&csr, &x, &mut y);
        assert!(max_abs_diff(&reference, &y) < 1e-9);
    }

    #[test]
    fn rows_shorter_than_unroll_width() {
        let coo = CooMatrix::from_triplets(
            4,
            4,
            vec![
                (0, 0, 1.0),
                (1, 0, 2.0),
                (1, 1, 3.0),
                (2, 0, 4.0),
                (2, 1, 5.0),
                (2, 2, 6.0),
            ],
        )
        .unwrap();
        let csr = CsrMatrix::from_coo(&coo);
        let x = vec![1.0, 1.0, 1.0, 1.0];
        let reference = csr.spmv_alloc(&x);
        let mut y4 = vec![0.0; 4];
        spmv_unrolled4(&csr, &x, &mut y4);
        let mut y8 = vec![0.0; 4];
        spmv_unrolled8(&csr, &x, &mut y8);
        assert!(max_abs_diff(&reference, &y4) < 1e-12);
        assert!(max_abs_diff(&reference, &y8) < 1e-12);
    }

    #[test]
    fn row_length_exactly_multiple_of_unroll() {
        let mut coo = CooMatrix::new(1, 16);
        for j in 0..16 {
            coo.push(0, j, (j + 1) as f64);
        }
        let csr = CsrMatrix::from_coo(&coo);
        let x = vec![1.0; 16];
        let mut y = vec![0.0];
        spmv_unrolled4(&csr, &x, &mut y);
        assert_eq!(y[0], (1..=16).sum::<usize>() as f64);
        let mut y8 = vec![0.0];
        spmv_unrolled8(&csr, &x, &mut y8);
        assert_eq!(y8[0], y[0]);
    }

    #[test]
    fn empty_matrix() {
        let csr = CsrMatrix::from_coo(&CooMatrix::new(3, 3));
        let mut y = vec![0.0; 3];
        spmv_unrolled4(&csr, &[1.0; 3], &mut y);
        spmv_unrolled8(&csr, &[1.0; 3], &mut y);
        assert_eq!(y, vec![0.0; 3]);
    }
}
