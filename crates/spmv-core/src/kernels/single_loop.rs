//! Single-loop-variable CSR traversal.
//!
//! CSR stores the end of one row immediately before the start of the next, so the
//! column and value arrays are read in a pure streaming (unit-stride) fashion. The
//! paper exploits this by keeping a *single* running nonzero cursor and only
//! consulting the row pointer to decide when to flush the accumulated sum — fewer
//! loop variables and better induction-variable behaviour than the naive form.

use crate::formats::csr::CsrMatrix;
use crate::formats::index::IndexStorage;
use crate::formats::traits::MatrixShape;

/// `y ← y + A·x` using one running cursor over the nonzero stream.
pub fn spmv_single_loop<I: IndexStorage>(a: &CsrMatrix<I>, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), a.ncols(), "source vector length mismatch");
    assert_eq!(y.len(), a.nrows(), "destination vector length mismatch");
    let row_ptr = a.row_ptr();
    let col_idx = a.col_idx();
    let values = a.values();
    let mut k = 0usize;
    for row in 0..a.nrows() {
        let end = row_ptr[row + 1];
        let mut sum = 0.0;
        // `k` continues from where the previous row stopped: a single loop variable
        // drives both the row scan and the nonzero stream.
        while k < end {
            sum += values[k] * x[col_idx[k].to_usize()];
            k += 1;
        }
        y[row] += sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::max_abs_diff;
    use crate::formats::traits::SpMv;
    use crate::formats::{CooMatrix, CsrMatrix};
    use crate::kernels::testing::{random_coo, test_x};

    #[test]
    fn matches_reference_on_random_matrix() {
        let csr = CsrMatrix::from_coo(&random_coo(120, 80, 900, 5));
        let x = test_x(80);
        let reference = csr.spmv_alloc(&x);
        let mut y = vec![0.0; 120];
        spmv_single_loop(&csr, &x, &mut y);
        assert!(max_abs_diff(&reference, &y) < 1e-12);
    }

    #[test]
    fn empty_rows_flush_zero() {
        let csr = CsrMatrix::from_coo(
            &CooMatrix::from_triplets(5, 5, vec![(1, 1, 2.0), (4, 0, 3.0)]).unwrap(),
        );
        let mut y = vec![0.5; 5];
        spmv_single_loop(&csr, &[1.0; 5], &mut y);
        assert_eq!(y, vec![0.5, 2.5, 0.5, 0.5, 3.5]);
    }

    #[test]
    fn fully_dense_row_stream() {
        let mut coo = CooMatrix::new(3, 3);
        for i in 0..3 {
            for j in 0..3 {
                coo.push(i, j, (i * 3 + j) as f64);
            }
        }
        let csr = CsrMatrix::from_coo(&coo);
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![0.0; 3];
        spmv_single_loop(&csr, &x, &mut y);
        assert_eq!(y, vec![8.0, 26.0, 44.0]);
    }

    #[test]
    fn empty_matrix() {
        let csr = CsrMatrix::from_coo(&CooMatrix::new(3, 3));
        let mut y = vec![0.0; 3];
        spmv_single_loop(&csr, &[1.0; 3], &mut y);
        assert_eq!(y, vec![0.0; 3]);
    }
}
