//! Symmetric SpMV kernels: each stored lower-triangle entry applied twice.
//!
//! The general kernels stream one value + one index per nonzero; the symmetric
//! kernels stream one value + one index per *pair* of off-diagonal nonzeros,
//! halving the compulsory matrix traffic (the paper's symmetry optimization).
//! The price is a scattered write (`y[j] += a_ij * x[i]`), which is why the
//! parallel engine runs these kernels against per-worker scratch destinations.
//!
//! Two families:
//!
//! * [`spmv_sym_csr`] — pointwise traversal of a [`SymCsr`] slab.
//! * [`spmv_sym_bcsr`] — macro-generated, fully-unrolled `r × c` tile kernels for
//!   [`SymBcsr`], one monomorphized instantiation per shape of the ≤ 4×4 sweep
//!   (and per index width), dispatching once at the call boundary like
//!   [`crate::kernels::blocked`].
//!
//! Accumulation order is fixed by the storage (row-major slab traversal, the
//! transpose write of an entry issued before its row sum lands), so any two
//! executions of the same slab are bit-identical — the property the engine's
//! deterministic tree reduction builds on.

use crate::formats::index::IndexStorage;
use crate::formats::symbcsr::SymBcsr;
use crate::formats::symcsr::SymCsr;

/// `y ← y + A_slab·x` for a [`SymCsr`] slab over full-length global vectors.
pub fn spmv_sym_csr<I: IndexStorage>(a: &SymCsr<I>, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), a.dim());
    debug_assert_eq!(y.len(), a.dim());
    let row_offset = a.row_offset();
    let row_ptr = a.row_ptr();
    let col_idx = a.col_idx();
    let values = a.values();
    for (i, &d) in a.diag().iter().enumerate() {
        let gi = row_offset + i;
        let xi = x[gi];
        let mut sum = d * xi;
        for k in row_ptr[i]..row_ptr[i + 1] {
            let j = col_idx[k].to_usize();
            let v = values[k];
            sum += v * x[j];
            y[j] += v * xi;
        }
        y[gi] += sum;
    }
}

/// One fully-specialized symmetric block-row traversal: constant `R`×`C` tiles at
/// index width `I`, applying every tile directly and transposed.
#[inline(always)]
fn spmv_sym_bcsr_fixed<const R: usize, const C: usize, I: IndexStorage>(
    a: &SymBcsr<I>,
    x: &[f64],
    y: &mut [f64],
) {
    debug_assert_eq!(a.block_rows(), R);
    debug_assert_eq!(a.block_cols(), C);
    let n = a.dim();
    let row_offset = a.row_offset();
    let local_rows = a.local_rows();
    let diag = a.diag();
    let block_row_ptr = a.block_row_ptr();
    let block_col_idx = a.block_col_idx();
    let tiles = a.tile_values();
    let nblock_rows = block_row_ptr.len() - 1;

    for brow in 0..nblock_rows {
        let row_lo = brow * R;
        let rows_here = R.min(local_rows - row_lo);
        let grow = row_offset + row_lo;
        let lo = block_row_ptr[brow];
        let hi = block_row_ptr[brow + 1];

        // Register-resident accumulator seeded with the diagonal contribution.
        let mut acc = [0.0f64; R];
        for i in 0..rows_here {
            acc[i] = diag[row_lo + i] * x[grow + i];
        }

        for (tile, bc) in tiles[lo * R * C..hi * R * C]
            .chunks_exact(R * C)
            .zip(&block_col_idx[lo..hi])
        {
            let col_lo = bc.to_usize() * C;
            if rows_here == R && col_lo + C <= n {
                // Interior tile: constant-bound loops, fully unrolled. The direct
                // half accumulates into registers; the transpose half scatters
                // into y — zero-filled slots (diagonal/upper) contribute zero.
                let xs = &x[col_lo..col_lo + C];
                let ys = &mut y[col_lo..col_lo + C];
                for i in 0..R {
                    let trow = &tile[i * C..i * C + C];
                    let xi = x[grow + i];
                    let mut sum = 0.0;
                    for j in 0..C {
                        sum += trow[j] * xs[j];
                        ys[j] += trow[j] * xi;
                    }
                    acc[i] += sum;
                }
            } else {
                // Ragged edge (bottom rows of the slab or rightmost columns of
                // the matrix): clamp both trip counts; the fill beyond the edge
                // is zero and is never read from or written past the vectors.
                let cols_here = C.min(n - col_lo);
                for i in 0..rows_here {
                    let xi = x[grow + i];
                    let mut sum = 0.0;
                    for j in 0..cols_here {
                        let v = tile[i * C + j];
                        sum += v * x[col_lo + j];
                        y[col_lo + j] += v * xi;
                    }
                    acc[i] += sum;
                }
            }
        }

        for (yv, av) in y[grow..grow + rows_here].iter_mut().zip(&acc) {
            *yv += av;
        }
    }
}

/// Generate the shape dispatch: one match arm per (r, c) in the ≤ 4×4 sweep.
macro_rules! sym_bcsr_dispatch {
    ($a:expr, $x:expr, $y:expr; $(($r:literal, $c:literal)),+ $(,)?) => {
        match ($a.block_rows(), $a.block_cols()) {
            $(($r, $c) => spmv_sym_bcsr_fixed::<$r, $c, I>($a, $x, $y),)+
            (r, c) => unreachable!("block shape {r}x{c} outside the supported sweep"),
        }
    };
}

/// `y ← y + A_slab·x` for a [`SymBcsr`] slab: dispatch once on the tile shape,
/// then run the fully-unrolled symmetric microkernel for that shape.
pub fn spmv_sym_bcsr<I: IndexStorage>(a: &SymBcsr<I>, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), a.dim(), "source vector length mismatch");
    assert_eq!(y.len(), a.dim(), "destination vector length mismatch");
    sym_bcsr_dispatch!(a, x, y;
        (1, 1), (1, 2), (1, 3), (1, 4),
        (2, 1), (2, 2), (2, 3), (2, 4),
        (3, 1), (3, 2), (3, 3), (3, 4),
        (4, 1), (4, 2), (4, 3), (4, 4),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::max_abs_diff;
    use crate::formats::{CooMatrix, CsrMatrix};
    use crate::MatrixShape;
    use crate::SpMv;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_symmetric(n: usize, lower_nnz: usize, seed: u64) -> CsrMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut coo = CooMatrix::new(n, n);
        for _ in 0..lower_nnz {
            let i = rng.random_range(0..n);
            let j = rng.random_range(0..=i);
            let v = rng.random_range(-1.0..1.0);
            coo.push(i, j, v);
            if i != j {
                coo.push(j, i, v);
            }
        }
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn sym_csr_kernel_accumulates_and_matches_reference() {
        let csr = random_symmetric(31, 140, 21);
        let x: Vec<f64> = (0..31).map(|i| (i as f64 * 0.3).sin()).collect();
        let mut expected = vec![0.75; 31];
        csr.spmv(&x, &mut expected);
        let sym: SymCsr<u16> = SymCsr::from_csr(&csr).unwrap();
        let mut y = vec![0.75; 31];
        spmv_sym_csr(&sym, &x, &mut y);
        assert!(max_abs_diff(&expected, &y) < 1e-12);
    }

    #[test]
    fn sym_kernels_are_bit_deterministic() {
        let csr = random_symmetric(40, 250, 22);
        let x: Vec<f64> = (0..40)
            .map(|i| ((i * 13 + 1) % 23) as f64 * 0.125)
            .collect();
        let sym: SymCsr<u32> = SymCsr::from_csr(&csr).unwrap();
        let a = sym.spmv_alloc(&x);
        let b = sym.spmv_alloc(&x);
        assert_eq!(a, b);
        let blocked: crate::formats::symbcsr::SymBcsr<u32> =
            crate::formats::symbcsr::SymBcsr::from_csr(&csr, 3, 2).unwrap();
        assert_eq!(blocked.spmv_alloc(&x), blocked.spmv_alloc(&x));
    }

    #[test]
    fn ragged_bottom_slab_never_reads_past_x() {
        // local_rows = 5 with R = 4 leaves one ragged block row at the slab's
        // bottom edge, which is also the matrix's bottom edge.
        let csr = random_symmetric(13, 60, 23);
        let x: Vec<f64> = (0..13).map(|i| i as f64 - 6.0).collect();
        let reference = csr.spmv_alloc(&x);
        let mut y = vec![0.0; 13];
        for (start, end) in [(0usize, 8usize), (8, 13)] {
            let local = csr.row_slice(start, end);
            let slab: crate::formats::symbcsr::SymBcsr<u32> =
                crate::formats::symbcsr::SymBcsr::from_slab_unchecked(&local, start, 4, 4).unwrap();
            spmv_sym_bcsr(&slab, &x, &mut y);
        }
        assert!(max_abs_diff(&reference, &y) < 1e-12);
    }

    #[test]
    fn traffic_is_halved_relative_to_general_csr() {
        let csr = random_symmetric(100, 1500, 24);
        let sym: SymCsr<u32> = SymCsr::from_csr(&csr).unwrap();
        let general_per_nnz = csr.footprint_bytes() as f64 / csr.nnz() as f64;
        let sym_per_nnz = sym.footprint_bytes() as f64 / sym.nnz() as f64;
        assert!(
            sym_per_nnz < 0.7 * general_per_nnz,
            "sym {sym_per_nnz:.2} B/nnz vs general {general_per_nnz:.2} B/nnz"
        );
    }
}
