//! Software-prefetch-annotated CSR SpMV.
//!
//! The paper tunes an explicit prefetch distance from 0 (off) to 512 doubles (one
//! page), prefetching the value and index streams directly into L1 with non-temporal
//! locality hints so they do not pollute L2 (Section 4.1). On x86_64 this module
//! issues real `prefetcht0`/`prefetchnta` instructions; on other targets the hint is
//! a no-op and the kernel degenerates to the single-loop variant, which is exactly
//! the portable behaviour the paper describes for platforms whose prefetch is useless
//! (Niagara prefetches only into L2).

use crate::formats::csr::CsrMatrix;
use crate::formats::index::IndexStorage;
use crate::formats::traits::MatrixShape;

/// Prefetch temporal-locality hint, mirroring the x86 `prefetcht0` / `prefetchnta`
/// distinction the paper's generator chooses between.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefetchHint {
    /// Prefetch into all cache levels (`prefetcht0`).
    AllLevels,
    /// Non-temporal prefetch that avoids polluting the outer levels (`prefetchnta`).
    NonTemporal,
}

/// Issue a prefetch for the cache line containing `ptr`, if the target supports it.
#[inline(always)]
pub fn prefetch_read<T>(slice: &[T], index: usize, hint: PrefetchHint) {
    if index >= slice.len() {
        return;
    }
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: the pointer is within the slice (checked above); prefetch has no
        // architectural side effects and never faults.
        unsafe {
            let ptr = slice.as_ptr().add(index) as *const i8;
            match hint {
                PrefetchHint::AllLevels => {
                    core::arch::x86_64::_mm_prefetch(ptr, core::arch::x86_64::_MM_HINT_T0)
                }
                PrefetchHint::NonTemporal => {
                    core::arch::x86_64::_mm_prefetch(ptr, core::arch::x86_64::_MM_HINT_NTA)
                }
            }
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = hint;
    }
}

/// `y ← y + A·x` with software prefetch of the value and column-index streams at a
/// fixed `distance` (in nonzeros) ahead of the compute cursor.
///
/// `distance = 0` disables prefetching entirely.
pub fn spmv_prefetch<I: IndexStorage>(
    a: &CsrMatrix<I>,
    x: &[f64],
    y: &mut [f64],
    distance: usize,
    hint: PrefetchHint,
) {
    assert_eq!(x.len(), a.ncols(), "source vector length mismatch");
    assert_eq!(y.len(), a.nrows(), "destination vector length mismatch");
    let row_ptr = a.row_ptr();
    let col_idx = a.col_idx();
    let values = a.values();

    let mut k = 0usize;
    for row in 0..a.nrows() {
        let end = row_ptr[row + 1];
        let mut sum = 0.0;
        while k < end {
            if distance != 0 {
                prefetch_read(values, k + distance, hint);
                prefetch_read(col_idx, k + distance, hint);
            }
            sum += values[k] * x[col_idx[k].to_usize()];
            k += 1;
        }
        y[row] += sum;
    }
}

/// The prefetch distances (in doubles) the paper's generator sweeps: 0 to one page.
pub const PREFETCH_DISTANCE_CANDIDATES: [usize; 7] = [0, 8, 16, 32, 64, 128, 512];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::max_abs_diff;
    use crate::formats::traits::SpMv;
    use crate::formats::{CooMatrix, CsrMatrix};
    use crate::kernels::testing::{random_coo, test_x};

    #[test]
    fn all_distances_match_reference() {
        let csr = CsrMatrix::from_coo(&random_coo(80, 80, 600, 17));
        let x = test_x(80);
        let reference = csr.spmv_alloc(&x);
        for &d in &PREFETCH_DISTANCE_CANDIDATES {
            let mut y = vec![0.0; 80];
            spmv_prefetch(&csr, &x, &mut y, d, PrefetchHint::AllLevels);
            assert!(max_abs_diff(&reference, &y) < 1e-12, "distance {d}");
            let mut y2 = vec![0.0; 80];
            spmv_prefetch(&csr, &x, &mut y2, d, PrefetchHint::NonTemporal);
            assert!(max_abs_diff(&reference, &y2) < 1e-12, "NTA distance {d}");
        }
    }

    #[test]
    fn prefetch_past_end_is_safe() {
        // Distance larger than the whole matrix must not fault.
        let csr = CsrMatrix::from_coo(
            &CooMatrix::from_triplets(2, 2, vec![(0, 0, 1.0), (1, 1, 2.0)]).unwrap(),
        );
        let mut y = vec![0.0; 2];
        spmv_prefetch(&csr, &[3.0, 4.0], &mut y, 10_000, PrefetchHint::AllLevels);
        assert_eq!(y, vec![3.0, 8.0]);
    }

    #[test]
    fn prefetch_read_out_of_range_is_noop() {
        let data = [1.0f64; 4];
        prefetch_read(&data, 100, PrefetchHint::NonTemporal);
    }

    #[test]
    fn zero_distance_equals_no_prefetch() {
        let csr = CsrMatrix::from_coo(&random_coo(20, 20, 100, 3));
        let x = test_x(20);
        let mut y0 = vec![0.0; 20];
        spmv_prefetch(&csr, &x, &mut y0, 0, PrefetchHint::AllLevels);
        assert!(max_abs_diff(&csr.spmv_alloc(&x), &y0) < 1e-12);
    }
}
