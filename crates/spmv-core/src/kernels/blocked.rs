//! Macro-generated, fully-unrolled r×c BCSR microkernels (paper Section 4.2).
//!
//! The paper's code generator emits one specialized SpMV routine per register block
//! shape; this module reproduces that with a macro that instantiates a const-generic
//! microkernel for every shape in the ≤ 4×4 sweep, monomorphized additionally over
//! the index width [`IndexStorage`]. Each instantiation has:
//!
//! * constant trip counts `R`/`C`, which LLVM fully unrolls (verified: no loop
//!   back-edges remain for the interior tile path at `opt-level=3`);
//! * an `[f64; R]` accumulator that lives in registers across the block row —
//!   the "register blocking" the format exists to enable;
//! * a single zero-extending load per tile for the column index — no width tag.
//!
//! [`spmv_bcsr`] performs the one runtime dispatch (a 16-arm match on the block
//! shape) at the *call* boundary, not per element.

use crate::formats::bcsr::BcsrMatrix;
use crate::formats::index::IndexStorage;
use crate::formats::traits::MatrixShape;

/// One fully-specialized block-row traversal: constant `R`×`C` tiles, index width
/// `I`. `#[inline(always)]` lets each dispatch arm collapse into straight-line code.
#[inline(always)]
fn spmv_bcsr_fixed<const R: usize, const C: usize, I: IndexStorage>(
    a: &BcsrMatrix<I>,
    x: &[f64],
    y: &mut [f64],
) {
    debug_assert_eq!(a.block_rows(), R);
    debug_assert_eq!(a.block_cols(), C);
    let nrows = a.nrows();
    let ncols = a.ncols();
    let block_row_ptr = a.block_row_ptr();
    let block_col_idx = a.block_col_idx();
    let tiles = a.tile_values();
    let nblock_rows = block_row_ptr.len() - 1;

    for brow in 0..nblock_rows {
        let row_lo = brow * R;
        let lo = block_row_ptr[brow];
        let hi = block_row_ptr[brow + 1];
        // Register-resident accumulator for the whole block row.
        let mut acc = [0.0f64; R];

        for (tile, bc) in tiles[lo * R * C..hi * R * C]
            .chunks_exact(R * C)
            .zip(&block_col_idx[lo..hi])
        {
            let col_lo = bc.to_usize() * C;
            if let Some(xs) = x.get(col_lo..col_lo + C) {
                // Interior tile: constant-bound loops, fully unrolled.
                for i in 0..R {
                    let trow = &tile[i * C..i * C + C];
                    let mut sum = 0.0;
                    for j in 0..C {
                        sum += trow[j] * xs[j];
                    }
                    acc[i] += sum;
                }
            } else {
                // Ragged right edge: the tile's zero fill extends past ncols, so
                // clamp the column count. At most one tile per block row.
                let cols_here = ncols - col_lo;
                for i in 0..R {
                    let mut sum = 0.0;
                    for (j, &xv) in x[col_lo..].iter().enumerate().take(cols_here) {
                        sum += tile[i * C + j] * xv;
                    }
                    acc[i] += sum;
                }
            }
        }

        let rows_here = R.min(nrows - row_lo);
        for (yv, av) in y[row_lo..row_lo + rows_here].iter_mut().zip(&acc) {
            *yv += av;
        }
    }
}

/// Generate the shape dispatch: one match arm per (r, c) in the ≤ 4×4 sweep, each
/// arm a distinct monomorphized microkernel.
macro_rules! bcsr_dispatch {
    ($a:expr, $x:expr, $y:expr; $(($r:literal, $c:literal)),+ $(,)?) => {
        match ($a.block_rows(), $a.block_cols()) {
            $(($r, $c) => spmv_bcsr_fixed::<$r, $c, I>($a, $x, $y),)+
            (r, c) => unreachable!("block shape {r}x{c} outside the supported sweep"),
        }
    };
}

/// `y ← y + A·x` for a BCSR matrix: dispatch once on the block shape, then run the
/// fully-unrolled microkernel for that shape.
pub fn spmv_bcsr<I: IndexStorage>(a: &BcsrMatrix<I>, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), a.ncols(), "source vector length mismatch");
    assert_eq!(y.len(), a.nrows(), "destination vector length mismatch");
    bcsr_dispatch!(a, x, y;
        (1, 1), (1, 2), (1, 3), (1, 4),
        (2, 1), (2, 2), (2, 3), (2, 4),
        (3, 1), (3, 2), (3, 3), (3, 4),
        (4, 1), (4, 2), (4, 3), (4, 4),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::max_abs_diff;
    use crate::formats::bcsr::ALLOWED_BLOCK_DIMS;
    use crate::formats::traits::SpMv;
    use crate::formats::CsrMatrix;
    use crate::kernels::testing::{random_coo, test_x};

    #[test]
    fn every_shape_and_width_matches_reference() {
        let coo = random_coo(53, 47, 600, 31);
        let csr = CsrMatrix::from_coo(&coo);
        let x = test_x(47);
        let reference = csr.spmv_alloc(&x);
        for &r in &ALLOWED_BLOCK_DIMS {
            for &c in &ALLOWED_BLOCK_DIMS {
                let b16 = BcsrMatrix::<u16>::from_csr(&csr, r, c).unwrap();
                let b32 = BcsrMatrix::<u32>::from_csr(&csr, r, c).unwrap();
                let bus = BcsrMatrix::<usize>::from_csr(&csr, r, c).unwrap();
                for (name, y) in [
                    ("u16", b16.spmv_alloc(&x)),
                    ("u32", b32.spmv_alloc(&x)),
                    ("usize", bus.spmv_alloc(&x)),
                ] {
                    assert!(
                        max_abs_diff(&reference, &y) < 1e-10,
                        "{r}x{c} {name} diverged"
                    );
                }
            }
        }
    }

    #[test]
    fn ragged_edge_tile_never_reads_past_x() {
        // ncols = 5 with c = 4 puts the second block column's tile 2 columns past
        // the edge; the microkernel must clamp.
        let coo = random_coo(6, 5, 20, 32);
        let csr = CsrMatrix::from_coo(&coo);
        let x = test_x(5);
        let reference = csr.spmv_alloc(&x);
        let bcsr = BcsrMatrix::<u16>::from_csr(&csr, 4, 4).unwrap();
        let mut y = vec![0.0; 6];
        spmv_bcsr(&bcsr, &x, &mut y);
        assert!(max_abs_diff(&reference, &y) < 1e-10);
    }

    #[test]
    fn accumulates_into_destination() {
        let coo = random_coo(9, 9, 30, 33);
        let csr = CsrMatrix::from_coo(&coo);
        let x = test_x(9);
        let mut expected = vec![1.5; 9];
        csr.spmv(&x, &mut expected);
        let bcsr = BcsrMatrix::<u32>::from_csr(&csr, 3, 2).unwrap();
        let mut y = vec![1.5; 9];
        spmv_bcsr(&bcsr, &x, &mut y);
        assert!(max_abs_diff(&expected, &y) < 1e-10);
    }
}
