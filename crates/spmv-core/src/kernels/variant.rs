//! Uniform dispatch over the code-optimization kernel variants.
//!
//! The autotuner and the benchmark harness sweep this enum the way the paper's Perl
//! code generator enumerated kernel flavours per architecture.

use crate::formats::csr::CsrMatrix;
use crate::kernels::branchless::spmv_branchless;
use crate::kernels::naive::spmv_naive;
use crate::kernels::pipelined::spmv_pipelined;
use crate::kernels::prefetch::{spmv_prefetch, PrefetchHint};
use crate::kernels::single_loop::spmv_single_loop;
use crate::kernels::unrolled::{spmv_unrolled4, spmv_unrolled8};

/// A CSR SpMV code variant (paper Table 2, "Code Optimization" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelVariant {
    /// Conventional nested loop.
    Naive,
    /// Single loop variable over the nonzero stream.
    SingleLoop,
    /// Branchless segmented-scan accumulation.
    Branchless,
    /// Explicit two-stage software pipeline (for in-order cores).
    Pipelined,
    /// 4-way unrolled, auto-vectorizable inner loop (SIMDization).
    Unrolled4,
    /// 8-way unrolled inner loop for long-row matrices.
    Unrolled8,
    /// Software prefetch at the given distance (in nonzeros), all-levels hint.
    Prefetch(usize),
    /// Software prefetch at the given distance with a non-temporal hint,
    /// reducing outer-cache pollution as described in Section 4.1.
    PrefetchNta(usize),
}

impl KernelVariant {
    /// Every parameter-free variant plus a representative prefetch distance sweep.
    pub fn all() -> Vec<KernelVariant> {
        let mut v = vec![
            KernelVariant::Naive,
            KernelVariant::SingleLoop,
            KernelVariant::Branchless,
            KernelVariant::Pipelined,
            KernelVariant::Unrolled4,
            KernelVariant::Unrolled8,
        ];
        for &d in &crate::kernels::prefetch::PREFETCH_DISTANCE_CANDIDATES[1..] {
            v.push(KernelVariant::Prefetch(d));
            v.push(KernelVariant::PrefetchNta(d));
        }
        v
    }

    /// Short human-readable name used in benchmark output.
    pub fn name(&self) -> String {
        match self {
            KernelVariant::Naive => "naive".to_string(),
            KernelVariant::SingleLoop => "single-loop".to_string(),
            KernelVariant::Branchless => "branchless".to_string(),
            KernelVariant::Pipelined => "pipelined".to_string(),
            KernelVariant::Unrolled4 => "unrolled4".to_string(),
            KernelVariant::Unrolled8 => "unrolled8".to_string(),
            KernelVariant::Prefetch(d) => format!("prefetch-t0-{d}"),
            KernelVariant::PrefetchNta(d) => format!("prefetch-nta-{d}"),
        }
    }

    /// Execute this variant: `y ← y + A·x`.
    pub fn execute(&self, a: &CsrMatrix, x: &[f64], y: &mut [f64]) {
        match *self {
            KernelVariant::Naive => spmv_naive(a, x, y),
            KernelVariant::SingleLoop => spmv_single_loop(a, x, y),
            KernelVariant::Branchless => spmv_branchless(a, x, y),
            KernelVariant::Pipelined => spmv_pipelined(a, x, y),
            KernelVariant::Unrolled4 => spmv_unrolled4(a, x, y),
            KernelVariant::Unrolled8 => spmv_unrolled8(a, x, y),
            KernelVariant::Prefetch(d) => spmv_prefetch(a, x, y, d, PrefetchHint::AllLevels),
            KernelVariant::PrefetchNta(d) => {
                spmv_prefetch(a, x, y, d, PrefetchHint::NonTemporal)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::max_abs_diff;
    use crate::formats::traits::SpMv;
    use crate::formats::CsrMatrix;
    use crate::kernels::testing::{random_coo, test_x};

    #[test]
    fn every_variant_matches_reference() {
        let csr = CsrMatrix::from_coo(&random_coo(100, 100, 1500, 99));
        let x = test_x(100);
        let reference = csr.spmv_alloc(&x);
        for variant in KernelVariant::all() {
            let mut y = vec![0.0; 100];
            variant.execute(&csr, &x, &mut y);
            assert!(
                max_abs_diff(&reference, &y) < 1e-9,
                "variant {} diverged",
                variant.name()
            );
        }
    }

    #[test]
    fn names_are_unique() {
        let names: Vec<String> = KernelVariant::all().iter().map(|v| v.name()).collect();
        let mut deduped = names.clone();
        deduped.sort();
        deduped.dedup();
        assert_eq!(names.len(), deduped.len());
    }

    #[test]
    fn all_contains_base_variants() {
        let all = KernelVariant::all();
        assert!(all.contains(&KernelVariant::Naive));
        assert!(all.contains(&KernelVariant::Branchless));
        assert!(all.iter().any(|v| matches!(v, KernelVariant::Prefetch(_))));
        assert!(all.len() >= 10);
    }
}
