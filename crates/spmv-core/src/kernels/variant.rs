//! Uniform dispatch over the code-optimization kernel variants.
//!
//! The autotuner and the benchmark harness sweep this enum the way the paper's Perl
//! code generator enumerated kernel flavours per architecture. Two execution paths
//! exist:
//!
//! * [`KernelVariant::execute`] — run a CSR code variant directly on a (generic,
//!   monomorphized) [`CsrMatrix<I>`]. The CSR code variants are *code*
//!   optimizations; the matrix is untouched.
//! * [`KernelVariant::prepare`] — build the data structure a variant needs **once**
//!   (index compression for CSR variants, tile construction for register-blocked
//!   variants) and return a [`PreparedKernel`] whose `execute` dispatches once per
//!   call into fully monomorphized code. This is the shape the paper's tuned
//!   pipeline has: all decisions at tuning time, none per element.

use crate::error::Result;
use crate::formats::bcsr::BcsrMatrix;
use crate::formats::csr::{CompressedCsr, CsrMatrix};
use crate::formats::index::IndexStorage;
use crate::formats::traits::{MatrixShape, SpMv};
use crate::kernels::branchless::spmv_branchless;
use crate::kernels::naive::spmv_naive;
use crate::kernels::pipelined::spmv_pipelined;
use crate::kernels::prefetch::{spmv_prefetch, PrefetchHint};
use crate::kernels::single_loop::spmv_single_loop;
use crate::kernels::unrolled::{spmv_unrolled4, spmv_unrolled8};

/// A CSR SpMV code variant (paper Table 2, "Code Optimization" column), plus the
/// register-blocked microkernels behind the same dispatch surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelVariant {
    /// Conventional nested loop.
    Naive,
    /// Single loop variable over the nonzero stream.
    SingleLoop,
    /// Branchless segmented-scan accumulation.
    Branchless,
    /// Explicit two-stage software pipeline (for in-order cores).
    Pipelined,
    /// 4-way unrolled, auto-vectorizable inner loop (SIMDization).
    Unrolled4,
    /// 8-way unrolled inner loop for long-row matrices.
    Unrolled8,
    /// Software prefetch at the given distance (in nonzeros), all-levels hint.
    Prefetch(usize),
    /// Software prefetch at the given distance with a non-temporal hint,
    /// reducing outer-cache pollution as described in Section 4.1.
    PrefetchNta(usize),
    /// Register-blocked r×c BCSR microkernel (requires [`KernelVariant::prepare`];
    /// the matrix must be converted to tiles first).
    Blocked {
        /// Rows per register block (1–4).
        r: usize,
        /// Columns per register block (1–4).
        c: usize,
    },
}

impl KernelVariant {
    /// Every parameter-free CSR code variant plus a representative prefetch
    /// distance sweep. (Blocked variants need data-structure conversion and are
    /// enumerated by [`KernelVariant::all_with_blocked`].)
    pub fn all() -> Vec<KernelVariant> {
        let mut v = vec![
            KernelVariant::Naive,
            KernelVariant::SingleLoop,
            KernelVariant::Branchless,
            KernelVariant::Pipelined,
            KernelVariant::Unrolled4,
            KernelVariant::Unrolled8,
        ];
        for &d in &crate::kernels::prefetch::PREFETCH_DISTANCE_CANDIDATES[1..] {
            v.push(KernelVariant::Prefetch(d));
            v.push(KernelVariant::PrefetchNta(d));
        }
        v
    }

    /// [`KernelVariant::all`] plus every register-blocked microkernel of the ≤ 4×4
    /// sweep.
    pub fn all_with_blocked() -> Vec<KernelVariant> {
        let mut v = Self::all();
        for &r in &crate::formats::bcsr::ALLOWED_BLOCK_DIMS {
            for &c in &crate::formats::bcsr::ALLOWED_BLOCK_DIMS {
                v.push(KernelVariant::Blocked { r, c });
            }
        }
        v
    }

    /// Short human-readable name used in benchmark output.
    pub fn name(&self) -> String {
        match self {
            KernelVariant::Naive => "naive".to_string(),
            KernelVariant::SingleLoop => "single-loop".to_string(),
            KernelVariant::Branchless => "branchless".to_string(),
            KernelVariant::Pipelined => "pipelined".to_string(),
            KernelVariant::Unrolled4 => "unrolled4".to_string(),
            KernelVariant::Unrolled8 => "unrolled8".to_string(),
            KernelVariant::Prefetch(d) => format!("prefetch-t0-{d}"),
            KernelVariant::PrefetchNta(d) => format!("prefetch-nta-{d}"),
            KernelVariant::Blocked { r, c } => format!("bcsr-{r}x{c}"),
        }
    }

    /// Whether this variant runs directly on CSR (true) or needs
    /// [`KernelVariant::prepare`] to build tiles first (false).
    pub fn runs_on_csr(&self) -> bool {
        !matches!(self, KernelVariant::Blocked { .. })
    }

    /// Execute this variant on a CSR matrix of any index width: `y ← y + A·x`.
    ///
    /// # Panics
    ///
    /// Panics for [`KernelVariant::Blocked`], which has no CSR execution — use
    /// [`KernelVariant::prepare`].
    pub fn execute<I: IndexStorage>(&self, a: &CsrMatrix<I>, x: &[f64], y: &mut [f64]) {
        match *self {
            KernelVariant::Naive => spmv_naive(a, x, y),
            KernelVariant::SingleLoop => spmv_single_loop(a, x, y),
            KernelVariant::Branchless => spmv_branchless(a, x, y),
            KernelVariant::Pipelined => spmv_pipelined(a, x, y),
            KernelVariant::Unrolled4 => spmv_unrolled4(a, x, y),
            KernelVariant::Unrolled8 => spmv_unrolled8(a, x, y),
            KernelVariant::Prefetch(d) => spmv_prefetch(a, x, y, d, PrefetchHint::AllLevels),
            KernelVariant::PrefetchNta(d) => spmv_prefetch(a, x, y, d, PrefetchHint::NonTemporal),
            KernelVariant::Blocked { r, c } => {
                panic!("bcsr-{r}x{c} requires KernelVariant::prepare (tile conversion)")
            }
        }
    }

    /// Build the data structure this variant needs, making every width/shape
    /// decision now so the returned kernel's `execute` is dispatch-free.
    pub fn prepare(&self, csr: &CsrMatrix) -> Result<PreparedKernel> {
        match *self {
            KernelVariant::Blocked { r, c } => {
                // Narrowest block-column index width that fits, selected once.
                match BcsrMatrix::<u16>::from_csr(csr, r, c) {
                    Ok(m) => Ok(PreparedKernel::Bcsr16(m)),
                    Err(crate::error::Error::IndexWidthOverflow { .. }) => {
                        BcsrMatrix::<u32>::from_csr(csr, r, c).map(PreparedKernel::Bcsr32)
                    }
                    Err(e) => Err(e),
                }
            }
            variant => Ok(PreparedKernel::Csr {
                variant,
                matrix: CompressedCsr::from_csr(csr),
            }),
        }
    }
}

/// A kernel variant with its data structure already built and its index width
/// already selected: steady-state `execute` calls perform one enum match and then
/// run monomorphized code.
#[derive(Debug, Clone)]
pub enum PreparedKernel {
    /// A CSR code variant over a width-compressed matrix.
    Csr {
        /// The code variant to run.
        variant: KernelVariant,
        /// The index-compressed matrix (width chosen at prepare time).
        matrix: CompressedCsr,
    },
    /// A register-blocked microkernel with 16-bit tile indices.
    Bcsr16(BcsrMatrix<u16>),
    /// A register-blocked microkernel with 32-bit tile indices.
    Bcsr32(BcsrMatrix<u32>),
}

impl PreparedKernel {
    /// `y ← y + A·x` on the prepared structure.
    pub fn execute(&self, x: &[f64], y: &mut [f64]) {
        match self {
            PreparedKernel::Csr { variant, matrix } => matrix.execute(*variant, x, y),
            PreparedKernel::Bcsr16(m) => m.spmv(x, y),
            PreparedKernel::Bcsr32(m) => m.spmv(x, y),
        }
    }

    /// Bytes of matrix data the prepared structure streams per SpMV.
    pub fn footprint_bytes(&self) -> usize {
        match self {
            PreparedKernel::Csr { matrix, .. } => matrix.footprint_bytes(),
            PreparedKernel::Bcsr16(m) => m.footprint_bytes(),
            PreparedKernel::Bcsr32(m) => m.footprint_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::max_abs_diff;
    use crate::formats::traits::SpMv;
    use crate::formats::CsrMatrix;
    use crate::kernels::testing::{random_coo, test_x};

    #[test]
    fn every_variant_matches_reference() {
        let csr = CsrMatrix::from_coo(&random_coo(100, 100, 1500, 99));
        let x = test_x(100);
        let reference = csr.spmv_alloc(&x);
        for variant in KernelVariant::all() {
            let mut y = vec![0.0; 100];
            variant.execute(&csr, &x, &mut y);
            assert!(
                max_abs_diff(&reference, &y) < 1e-9,
                "variant {} diverged",
                variant.name()
            );
        }
    }

    #[test]
    fn every_variant_matches_reference_at_u16_width() {
        let csr: CsrMatrix<u16> = CsrMatrix::from_coo(&random_coo(100, 100, 1500, 98))
            .reindex()
            .unwrap();
        let x = test_x(100);
        let reference = csr.spmv_alloc(&x);
        for variant in KernelVariant::all() {
            let mut y = vec![0.0; 100];
            variant.execute(&csr, &x, &mut y);
            assert!(
                max_abs_diff(&reference, &y) < 1e-9,
                "variant {} diverged at u16",
                variant.name()
            );
        }
    }

    #[test]
    fn prepared_kernels_match_reference() {
        let csr = CsrMatrix::from_coo(&random_coo(90, 110, 1200, 97));
        let x = test_x(110);
        let reference = csr.spmv_alloc(&x);
        for variant in KernelVariant::all_with_blocked() {
            let prepared = variant.prepare(&csr).unwrap();
            let mut y = vec![0.0; 90];
            prepared.execute(&x, &mut y);
            assert!(
                max_abs_diff(&reference, &y) < 1e-9,
                "prepared variant {} diverged",
                variant.name()
            );
            assert!(prepared.footprint_bytes() > 0);
        }
    }

    #[test]
    fn prepare_compresses_small_matrices_to_u16() {
        let csr = CsrMatrix::from_coo(&random_coo(50, 50, 200, 96));
        match KernelVariant::Naive.prepare(&csr).unwrap() {
            PreparedKernel::Csr { matrix, .. } => {
                assert_eq!(matrix.width(), crate::formats::index::IndexWidth::U16)
            }
            other => panic!("expected CSR preparation, got {other:?}"),
        }
        match (KernelVariant::Blocked { r: 2, c: 2 })
            .prepare(&csr)
            .unwrap()
        {
            PreparedKernel::Bcsr16(_) => {}
            other => panic!("expected 16-bit BCSR, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "requires KernelVariant::prepare")]
    fn blocked_direct_execution_panics() {
        let csr = CsrMatrix::from_coo(&random_coo(10, 10, 20, 95));
        let mut y = vec![0.0; 10];
        (KernelVariant::Blocked { r: 2, c: 2 }).execute(&csr, &test_x(10), &mut y);
    }

    #[test]
    fn names_are_unique() {
        let names: Vec<String> = KernelVariant::all_with_blocked()
            .iter()
            .map(|v| v.name())
            .collect();
        let mut deduped = names.clone();
        deduped.sort();
        deduped.dedup();
        assert_eq!(names.len(), deduped.len());
    }

    #[test]
    fn all_contains_base_variants() {
        let all = KernelVariant::all();
        assert!(all.contains(&KernelVariant::Naive));
        assert!(all.contains(&KernelVariant::Branchless));
        assert!(all.iter().any(|v| matches!(v, KernelVariant::Prefetch(_))));
        assert!(all.len() >= 10);
        assert!(all.iter().all(|v| v.runs_on_csr()));
        let with_blocked = KernelVariant::all_with_blocked();
        assert_eq!(with_blocked.len(), all.len() + 16);
    }
}
