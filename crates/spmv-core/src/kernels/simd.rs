//! Explicit SIMD microkernels (paper Section 4.3): AVX2+FMA on x86-64, NEON on
//! aarch64, with a guaranteed scalar fallback.
//!
//! The paper's final single-core rung SIMDizes the register-blocked inner
//! kernels. This module reproduces that as a *runtime* decision: [`detect`]
//! probes the host once (overridable via the `SPMV_SIMD` environment variable),
//! and every entry point falls back to the scalar kernel ladder when the
//! feature set or block shape is not covered. The vectorized shapes are the hot
//! ones: BCSR r×4 for r ∈ {1, 2, 4} (a tile row is exactly one 4-lane f64
//! vector) and a gather-free CSR row kernel whose *value* stream is loaded with
//! contiguous vector loads (only the source vector is gathered).
//!
//! **Accumulation class.** FMA contracts multiply-add rounding, and the vector
//! kernels reassociate row sums, so SIMD output is *not* bit-identical to the
//! scalar ladder — plans that differ in the `simd` knob are different
//! accumulation classes (see `spmv-testutil::same_accumulation_class`).
//! Within the SIMD class, though, the same invariant the scalar kernels uphold
//! holds here: every kernel keeps one 4-lane partial accumulator per output row
//! across *all* tiles/nonzero groups of that row and performs exactly one
//! fixed-order horizontal sum at row end. The multivec (SpMM) kernels perform,
//! per column, the identical operation sequence — so `spmm` over `k` vectors
//! stays bit-identical to `k` single-vector SIMD calls, which the batching
//! service relies on.

use std::sync::OnceLock;

use crate::formats::bcsr::BcsrMatrix;
use crate::formats::csr::CsrMatrix;
use crate::formats::index::IndexStorage;
use crate::formats::traits::MatrixShape;
use crate::multivec::MultiVecMut;

/// The instruction set a kernel dispatch resolves to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdLevel {
    /// No vector path: run the scalar kernel ladder.
    Scalar,
    /// x86-64 AVX2 + FMA (4 × f64 lanes, fused multiply-add).
    Avx2Fma,
    /// aarch64 NEON (2 × f64 lanes, paired to mirror the 4-wide layout).
    Neon,
}

impl SimdLevel {
    /// Short token naming the feature set, used in the tune-cache platform key
    /// and the bench harness metadata.
    pub fn suffix(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Avx2Fma => "avx2fma",
            SimdLevel::Neon => "neon",
        }
    }
}

/// Probe the host's vector features once. `SPMV_SIMD=0|off|scalar` forces the
/// scalar path (the CI leg that exercises the fallback arm sets this).
pub fn detect() -> SimdLevel {
    static LEVEL: OnceLock<SimdLevel> = OnceLock::new();
    *LEVEL.get_or_init(|| {
        if let Ok(v) = std::env::var("SPMV_SIMD") {
            let v = v.to_ascii_lowercase();
            if v == "0" || v == "off" || v == "scalar" {
                return SimdLevel::Scalar;
            }
        }
        detect_uncached()
    })
}

fn detect_uncached() -> SimdLevel {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return SimdLevel::Avx2Fma;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        // NEON with 2×f64 is baseline on aarch64.
        return SimdLevel::Neon;
    }
    #[allow(unreachable_code)]
    SimdLevel::Scalar
}

/// Whether a vector path is available on this host (after any env override).
pub fn available() -> bool {
    detect() != SimdLevel::Scalar
}

/// The platform feature token for this host: `avx2fma`, `neon`, or `scalar`.
pub fn feature_suffix() -> &'static str {
    detect().suffix()
}

/// The BCSR block shapes the vector kernels cover: a tile row must be exactly
/// one 4-lane vector (c = 4) and the row count one of the generated heights.
pub fn bcsr_simd_shape(r: usize, c: usize) -> bool {
    c == 4 && matches!(r, 1 | 2 | 4)
}

// ---------------------------------------------------------------------------
// Safe dispatch entry points. Each resolves the host level once and falls back
// to the scalar ladder for uncovered levels or shapes, so a `simd` plan built
// on one host still *runs* anywhere (the plan loader additionally degrades the
// knob on foreign hosts — see `TunePlan::from_text`).
// ---------------------------------------------------------------------------

/// `y ← y + A·x` for BCSR via the vector microkernels (scalar fallback).
pub fn spmv_bcsr_simd<I: IndexStorage>(a: &BcsrMatrix<I>, x: &[f64], y: &mut [f64]) {
    spmv_bcsr_simd_at(detect(), a, x, y);
}

/// `Y ← Y + A·X` for BCSR via the vector multivec microkernels.
pub fn spmm_bcsr_simd<I: IndexStorage>(
    a: &BcsrMatrix<I>,
    x: &[f64],
    x_ld: usize,
    y: &mut MultiVecMut,
) {
    spmm_bcsr_simd_at(detect(), a, x, x_ld, y);
}

/// `y ← y + A·x` for CSR via the gather-free vector row kernel.
pub fn spmv_csr_simd<I: IndexStorage>(a: &CsrMatrix<I>, x: &[f64], y: &mut [f64]) {
    spmv_csr_simd_at(detect(), a, x, y);
}

/// `Y ← Y + A·X` for CSR via the vector row kernel, one index load per group
/// shared by all `k` columns.
pub fn spmm_csr_simd<I: IndexStorage>(
    a: &CsrMatrix<I>,
    x: &[f64],
    x_ld: usize,
    y: &mut MultiVecMut,
) {
    spmm_csr_simd_at(detect(), a, x, x_ld, y);
}

/// Level-explicit variant of [`spmv_bcsr_simd`], used by tests to exercise
/// both dispatch arms in one process regardless of the host.
pub fn spmv_bcsr_simd_at<I: IndexStorage>(
    level: SimdLevel,
    a: &BcsrMatrix<I>,
    x: &[f64],
    y: &mut [f64],
) {
    assert_eq!(x.len(), a.ncols(), "source vector length mismatch");
    assert_eq!(y.len(), a.nrows(), "destination vector length mismatch");
    let (r, c) = (a.block_rows(), a.block_cols());
    match level {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2Fma if bcsr_simd_shape(r, c) => unsafe {
            match r {
                1 => avx2::spmv_bcsr_rx4::<1, I>(a, x, y),
                2 => avx2::spmv_bcsr_rx4::<2, I>(a, x, y),
                _ => avx2::spmv_bcsr_rx4::<4, I>(a, x, y),
            }
        },
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon if bcsr_simd_shape(r, c) => unsafe {
            match r {
                1 => neon::spmv_bcsr_rx4::<1, I>(a, x, y),
                2 => neon::spmv_bcsr_rx4::<2, I>(a, x, y),
                _ => neon::spmv_bcsr_rx4::<4, I>(a, x, y),
            }
        },
        _ => crate::kernels::blocked::spmv_bcsr(a, x, y),
    }
}

/// Level-explicit variant of [`spmm_bcsr_simd`]. Column chunking follows the
/// register budget (`r = 1` runs 8-wide chunks, `r = 2` 4-wide, `r = 4`
/// 2-wide); chunking is invisible to results because each column's operation
/// sequence is fixed.
pub fn spmm_bcsr_simd_at<I: IndexStorage>(
    level: SimdLevel,
    a: &BcsrMatrix<I>,
    x: &[f64],
    x_ld: usize,
    y: &mut MultiVecMut,
) {
    let (r, c) = (a.block_rows(), a.block_cols());
    let vectorized = match level {
        SimdLevel::Scalar => false,
        SimdLevel::Avx2Fma => cfg!(target_arch = "x86_64") && bcsr_simd_shape(r, c),
        SimdLevel::Neon => cfg!(target_arch = "aarch64") && bcsr_simd_shape(r, c),
    };
    if !vectorized {
        return crate::kernels::multivec::spmm_bcsr(a, x, x_ld, y);
    }
    crate::kernels::multivec::check_spmm_dims(a.nrows(), a.ncols(), x, x_ld, y);
    let k = y.k();
    let max_chunk = match r {
        1 => 8,
        2 => 4,
        _ => 2,
    };
    let mut j0 = 0usize;
    while max_chunk >= 8 && k - j0 >= 8 {
        spmm_bcsr_chunk::<8, I>(level, a, &x[j0 * x_ld..], x_ld, y.cols_mut::<8>(j0));
        j0 += 8;
    }
    while max_chunk >= 4 && k - j0 >= 4 {
        spmm_bcsr_chunk::<4, I>(level, a, &x[j0 * x_ld..], x_ld, y.cols_mut::<4>(j0));
        j0 += 4;
    }
    while k - j0 >= 2 {
        spmm_bcsr_chunk::<2, I>(level, a, &x[j0 * x_ld..], x_ld, y.cols_mut::<2>(j0));
        j0 += 2;
    }
    while k - j0 >= 1 {
        spmm_bcsr_chunk::<1, I>(level, a, &x[j0 * x_ld..], x_ld, y.cols_mut::<1>(j0));
        j0 += 1;
    }
}

fn spmm_bcsr_chunk<const K: usize, I: IndexStorage>(
    level: SimdLevel,
    a: &BcsrMatrix<I>,
    x: &[f64],
    x_ld: usize,
    ys: [&mut [f64]; K],
) {
    let _ = level;
    #[cfg(target_arch = "x86_64")]
    if level == SimdLevel::Avx2Fma {
        return unsafe {
            match a.block_rows() {
                1 => avx2::spmm_bcsr_rx4::<1, K, I>(a, x, x_ld, ys),
                2 => avx2::spmm_bcsr_rx4::<2, K, I>(a, x, x_ld, ys),
                _ => avx2::spmm_bcsr_rx4::<4, K, I>(a, x, x_ld, ys),
            }
        };
    }
    #[cfg(target_arch = "aarch64")]
    if level == SimdLevel::Neon {
        return unsafe {
            match a.block_rows() {
                1 => neon::spmm_bcsr_rx4::<1, K, I>(a, x, x_ld, ys),
                2 => neon::spmm_bcsr_rx4::<2, K, I>(a, x, x_ld, ys),
                _ => neon::spmm_bcsr_rx4::<4, K, I>(a, x, x_ld, ys),
            }
        };
    }
    unreachable!("vector chunk dispatched without a vector level");
}

/// Level-explicit variant of [`spmv_csr_simd`].
pub fn spmv_csr_simd_at<I: IndexStorage>(
    level: SimdLevel,
    a: &CsrMatrix<I>,
    x: &[f64],
    y: &mut [f64],
) {
    assert_eq!(x.len(), a.ncols(), "source vector length mismatch");
    assert_eq!(y.len(), a.nrows(), "destination vector length mismatch");
    match level {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2Fma => unsafe { avx2::spmv_csr::<I>(a, x, y) },
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => unsafe { neon::spmv_csr::<I>(a, x, y) },
        _ => crate::kernels::single_loop::spmv_single_loop(a, x, y),
    }
}

/// Level-explicit variant of [`spmm_csr_simd`].
pub fn spmm_csr_simd_at<I: IndexStorage>(
    level: SimdLevel,
    a: &CsrMatrix<I>,
    x: &[f64],
    x_ld: usize,
    y: &mut MultiVecMut,
) {
    if level == SimdLevel::Scalar {
        return crate::kernels::multivec::spmm_csr(a, x, x_ld, y);
    }
    crate::kernels::multivec::check_spmm_dims(a.nrows(), a.ncols(), x, x_ld, y);
    let k = y.k();
    let mut j0 = 0usize;
    while k - j0 >= 4 {
        spmm_csr_chunk::<4, I>(level, a, &x[j0 * x_ld..], x_ld, y.cols_mut::<4>(j0));
        j0 += 4;
    }
    while k - j0 >= 2 {
        spmm_csr_chunk::<2, I>(level, a, &x[j0 * x_ld..], x_ld, y.cols_mut::<2>(j0));
        j0 += 2;
    }
    while k - j0 >= 1 {
        spmm_csr_chunk::<1, I>(level, a, &x[j0 * x_ld..], x_ld, y.cols_mut::<1>(j0));
        j0 += 1;
    }
}

fn spmm_csr_chunk<const K: usize, I: IndexStorage>(
    level: SimdLevel,
    a: &CsrMatrix<I>,
    x: &[f64],
    x_ld: usize,
    ys: [&mut [f64]; K],
) {
    let _ = level;
    #[cfg(target_arch = "x86_64")]
    if level == SimdLevel::Avx2Fma {
        return unsafe { avx2::spmm_csr::<K, I>(a, x, x_ld, ys) };
    }
    #[cfg(target_arch = "aarch64")]
    if level == SimdLevel::Neon {
        return unsafe { neon::spmm_csr::<K, I>(a, x, x_ld, ys) };
    }
    unreachable!("vector chunk dispatched without a vector level");
}

/// Load the 4-wide window of `x` starting at `col_lo`, zero-padding lanes past
/// `x.len()`. The BCSR zero fill guarantees the matching tile lanes are zero,
/// so padded lanes contribute exact `+0.0` terms on every path.
#[inline(always)]
fn padded_window(x: &[f64], col_lo: usize) -> [f64; 4] {
    let mut w = [0.0f64; 4];
    let n = (x.len() - col_lo).min(4);
    w[..n].copy_from_slice(&x[col_lo..col_lo + n]);
    w
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! AVX2+FMA bodies. Every function is `#[target_feature]`-gated and only
    //! reached through the dispatch layer after a successful runtime probe.

    use std::arch::x86_64::*;

    use super::padded_window;
    use crate::formats::bcsr::BcsrMatrix;
    use crate::formats::csr::CsrMatrix;
    use crate::formats::index::IndexStorage;
    use crate::formats::traits::MatrixShape;

    /// The one horizontal reduction: lane order is fixed so every kernel (and
    /// the NEON mirror) produces the same scalar for the same lane contents.
    #[inline(always)]
    unsafe fn hsum4(v: __m256d) -> f64 {
        let mut t = [0.0f64; 4];
        _mm256_storeu_pd(t.as_mut_ptr(), v);
        (t[0] + t[1]) + (t[2] + t[3])
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn spmv_bcsr_rx4<const R: usize, I: IndexStorage>(
        a: &BcsrMatrix<I>,
        x: &[f64],
        y: &mut [f64],
    ) {
        let nrows = a.nrows();
        let ncols = a.ncols();
        let block_row_ptr = a.block_row_ptr();
        let block_col_idx = a.block_col_idx();
        let tiles = a.tile_values();
        let nblock_rows = block_row_ptr.len() - 1;

        for brow in 0..nblock_rows {
            let row_lo = brow * R;
            let lo = block_row_ptr[brow];
            let hi = block_row_ptr[brow + 1];
            // One 4-lane partial accumulator per output row, live across every
            // tile of the block row.
            let mut vacc = [_mm256_setzero_pd(); R];

            for (tile, bc) in tiles[lo * R * 4..hi * R * 4]
                .chunks_exact(R * 4)
                .zip(&block_col_idx[lo..hi])
            {
                let col_lo = bc.to_usize() * 4;
                let xv = if col_lo + 4 <= ncols {
                    _mm256_loadu_pd(x.as_ptr().add(col_lo))
                } else {
                    // Ragged right edge: pad x; the tile's own zero fill makes
                    // the padded lanes exact zeros.
                    _mm256_loadu_pd(padded_window(x, col_lo).as_ptr())
                };
                for (i, acc) in vacc.iter_mut().enumerate() {
                    let tv = _mm256_loadu_pd(tile.as_ptr().add(i * 4));
                    *acc = _mm256_fmadd_pd(tv, xv, *acc);
                }
            }

            let rows_here = R.min(nrows - row_lo);
            for i in 0..rows_here {
                y[row_lo + i] += hsum4(vacc[i]);
            }
        }
    }

    /// Per column the operation sequence (tile-order FMAs into one 4-lane
    /// accumulator, one `hsum4` at row end) equals [`spmv_bcsr_rx4`] exactly,
    /// so SpMM stays bit-identical to `k` SpMV calls.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn spmm_bcsr_rx4<const R: usize, const K: usize, I: IndexStorage>(
        a: &BcsrMatrix<I>,
        x: &[f64],
        x_ld: usize,
        ys: [&mut [f64]; K],
    ) {
        let nrows = a.nrows();
        let ncols = a.ncols();
        let block_row_ptr = a.block_row_ptr();
        let block_col_idx = a.block_col_idx();
        let tiles = a.tile_values();
        let nblock_rows = block_row_ptr.len() - 1;

        for brow in 0..nblock_rows {
            let row_lo = brow * R;
            let lo = block_row_ptr[brow];
            let hi = block_row_ptr[brow + 1];
            let mut vacc = [[_mm256_setzero_pd(); K]; R];

            for (tile, bc) in tiles[lo * R * 4..hi * R * 4]
                .chunks_exact(R * 4)
                .zip(&block_col_idx[lo..hi])
            {
                let col_lo = bc.to_usize() * 4;
                let interior = col_lo + 4 <= ncols;
                let xv: [__m256d; K] = std::array::from_fn(|j| {
                    let xj = &x[j * x_ld..];
                    if interior {
                        _mm256_loadu_pd(xj.as_ptr().add(col_lo))
                    } else {
                        _mm256_loadu_pd(padded_window(&xj[..ncols], col_lo).as_ptr())
                    }
                });
                for (i, accs) in vacc.iter_mut().enumerate() {
                    let tv = _mm256_loadu_pd(tile.as_ptr().add(i * 4));
                    for (acc, &xvj) in accs.iter_mut().zip(&xv) {
                        *acc = _mm256_fmadd_pd(tv, xvj, *acc);
                    }
                }
            }

            let rows_here = R.min(nrows - row_lo);
            for i in 0..rows_here {
                for j in 0..K {
                    ys[j][row_lo + i] += hsum4(vacc[i][j]);
                }
            }
        }
    }

    /// Gather-free on the value/index streams: nonzeros are consumed in groups
    /// of 4 with one contiguous value load; only `x` is assembled lane-wise.
    /// The remainder group is zero-padded (0·0 terms), keeping the per-row
    /// sequence independent of how `nnz` splits into groups.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn spmv_csr<I: IndexStorage>(a: &CsrMatrix<I>, x: &[f64], y: &mut [f64]) {
        let row_ptr = a.row_ptr();
        let col_idx = a.col_idx();
        let values = a.values();
        for row in 0..a.nrows() {
            let lo = row_ptr[row];
            let hi = row_ptr[row + 1];
            let mut vacc = _mm256_setzero_pd();
            let mut p = lo;
            while p + 4 <= hi {
                let vv = _mm256_loadu_pd(values.as_ptr().add(p));
                let xg = _mm256_set_pd(
                    x[col_idx[p + 3].to_usize()],
                    x[col_idx[p + 2].to_usize()],
                    x[col_idx[p + 1].to_usize()],
                    x[col_idx[p].to_usize()],
                );
                vacc = _mm256_fmadd_pd(vv, xg, vacc);
                p += 4;
            }
            if p < hi {
                let mut vbuf = [0.0f64; 4];
                let mut xbuf = [0.0f64; 4];
                for (t, q) in (p..hi).enumerate() {
                    vbuf[t] = values[q];
                    xbuf[t] = x[col_idx[q].to_usize()];
                }
                vacc = _mm256_fmadd_pd(
                    _mm256_loadu_pd(vbuf.as_ptr()),
                    _mm256_loadu_pd(xbuf.as_ptr()),
                    vacc,
                );
            }
            y[row] += hsum4(vacc);
        }
    }

    /// Per column identical to [`spmv_csr`]; the group's value vector is loaded
    /// once and reused for all `K` columns.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn spmm_csr<const K: usize, I: IndexStorage>(
        a: &CsrMatrix<I>,
        x: &[f64],
        x_ld: usize,
        ys: [&mut [f64]; K],
    ) {
        let row_ptr = a.row_ptr();
        let col_idx = a.col_idx();
        let values = a.values();
        let ncols = a.ncols();
        let xcols: [&[f64]; K] = std::array::from_fn(|j| &x[j * x_ld..j * x_ld + ncols]);
        for row in 0..a.nrows() {
            let lo = row_ptr[row];
            let hi = row_ptr[row + 1];
            let mut vacc = [_mm256_setzero_pd(); K];
            let mut p = lo;
            while p + 4 <= hi {
                let vv = _mm256_loadu_pd(values.as_ptr().add(p));
                let (c0, c1, c2, c3) = (
                    col_idx[p].to_usize(),
                    col_idx[p + 1].to_usize(),
                    col_idx[p + 2].to_usize(),
                    col_idx[p + 3].to_usize(),
                );
                for j in 0..K {
                    let xj = xcols[j];
                    let xg = _mm256_set_pd(xj[c3], xj[c2], xj[c1], xj[c0]);
                    vacc[j] = _mm256_fmadd_pd(vv, xg, vacc[j]);
                }
                p += 4;
            }
            if p < hi {
                let mut vbuf = [0.0f64; 4];
                for (t, q) in (p..hi).enumerate() {
                    vbuf[t] = values[q];
                }
                let vv = _mm256_loadu_pd(vbuf.as_ptr());
                for j in 0..K {
                    let mut xbuf = [0.0f64; 4];
                    for (t, q) in (p..hi).enumerate() {
                        xbuf[t] = xcols[j][col_idx[q].to_usize()];
                    }
                    vacc[j] = _mm256_fmadd_pd(vv, _mm256_loadu_pd(xbuf.as_ptr()), vacc[j]);
                }
            }
            for j in 0..K {
                ys[j][row] += hsum4(vacc[j]);
            }
        }
    }
}

#[cfg(target_arch = "aarch64")]
mod neon {
    //! NEON bodies: each 4-wide AVX2 vector becomes a pair of `float64x2_t`
    //! with identical lane layout, and `hsum4` reduces in the same fixed
    //! scalar order, so the per-row invariants match the AVX2 module exactly.

    use std::arch::aarch64::*;

    use super::padded_window;
    use crate::formats::bcsr::BcsrMatrix;
    use crate::formats::csr::CsrMatrix;
    use crate::formats::index::IndexStorage;
    use crate::formats::traits::MatrixShape;

    #[derive(Clone, Copy)]
    struct V4 {
        lo: float64x2_t,
        hi: float64x2_t,
    }

    #[inline(always)]
    unsafe fn v4_zero() -> V4 {
        V4 {
            lo: vdupq_n_f64(0.0),
            hi: vdupq_n_f64(0.0),
        }
    }

    #[inline(always)]
    unsafe fn v4_load(p: *const f64) -> V4 {
        V4 {
            lo: vld1q_f64(p),
            hi: vld1q_f64(p.add(2)),
        }
    }

    #[inline(always)]
    unsafe fn v4_fma(acc: V4, a: V4, b: V4) -> V4 {
        V4 {
            lo: vfmaq_f64(acc.lo, a.lo, b.lo),
            hi: vfmaq_f64(acc.hi, a.hi, b.hi),
        }
    }

    #[inline(always)]
    unsafe fn hsum4(v: V4) -> f64 {
        let mut t = [0.0f64; 4];
        vst1q_f64(t.as_mut_ptr(), v.lo);
        vst1q_f64(t.as_mut_ptr().add(2), v.hi);
        (t[0] + t[1]) + (t[2] + t[3])
    }

    pub(super) unsafe fn spmv_bcsr_rx4<const R: usize, I: IndexStorage>(
        a: &BcsrMatrix<I>,
        x: &[f64],
        y: &mut [f64],
    ) {
        let nrows = a.nrows();
        let ncols = a.ncols();
        let block_row_ptr = a.block_row_ptr();
        let block_col_idx = a.block_col_idx();
        let tiles = a.tile_values();
        let nblock_rows = block_row_ptr.len() - 1;

        for brow in 0..nblock_rows {
            let row_lo = brow * R;
            let lo = block_row_ptr[brow];
            let hi = block_row_ptr[brow + 1];
            let mut vacc = [v4_zero(); R];

            for (tile, bc) in tiles[lo * R * 4..hi * R * 4]
                .chunks_exact(R * 4)
                .zip(&block_col_idx[lo..hi])
            {
                let col_lo = bc.to_usize() * 4;
                let xv = if col_lo + 4 <= ncols {
                    v4_load(x.as_ptr().add(col_lo))
                } else {
                    v4_load(padded_window(x, col_lo).as_ptr())
                };
                for (i, acc) in vacc.iter_mut().enumerate() {
                    let tv = v4_load(tile.as_ptr().add(i * 4));
                    *acc = v4_fma(*acc, tv, xv);
                }
            }

            let rows_here = R.min(nrows - row_lo);
            for i in 0..rows_here {
                y[row_lo + i] += hsum4(vacc[i]);
            }
        }
    }

    pub(super) unsafe fn spmm_bcsr_rx4<const R: usize, const K: usize, I: IndexStorage>(
        a: &BcsrMatrix<I>,
        x: &[f64],
        x_ld: usize,
        ys: [&mut [f64]; K],
    ) {
        let nrows = a.nrows();
        let ncols = a.ncols();
        let block_row_ptr = a.block_row_ptr();
        let block_col_idx = a.block_col_idx();
        let tiles = a.tile_values();
        let nblock_rows = block_row_ptr.len() - 1;

        for brow in 0..nblock_rows {
            let row_lo = brow * R;
            let lo = block_row_ptr[brow];
            let hi = block_row_ptr[brow + 1];
            let mut vacc = [[v4_zero(); K]; R];

            for (tile, bc) in tiles[lo * R * 4..hi * R * 4]
                .chunks_exact(R * 4)
                .zip(&block_col_idx[lo..hi])
            {
                let col_lo = bc.to_usize() * 4;
                let interior = col_lo + 4 <= ncols;
                let xv: [V4; K] = std::array::from_fn(|j| {
                    let xj = &x[j * x_ld..];
                    if interior {
                        v4_load(xj.as_ptr().add(col_lo))
                    } else {
                        v4_load(padded_window(&xj[..ncols], col_lo).as_ptr())
                    }
                });
                for (i, accs) in vacc.iter_mut().enumerate() {
                    let tv = v4_load(tile.as_ptr().add(i * 4));
                    for (acc, &xvj) in accs.iter_mut().zip(&xv) {
                        *acc = v4_fma(*acc, tv, xvj);
                    }
                }
            }

            let rows_here = R.min(nrows - row_lo);
            for i in 0..rows_here {
                for j in 0..K {
                    ys[j][row_lo + i] += hsum4(vacc[i][j]);
                }
            }
        }
    }

    pub(super) unsafe fn spmv_csr<I: IndexStorage>(a: &CsrMatrix<I>, x: &[f64], y: &mut [f64]) {
        let row_ptr = a.row_ptr();
        let col_idx = a.col_idx();
        let values = a.values();
        for row in 0..a.nrows() {
            let lo = row_ptr[row];
            let hi = row_ptr[row + 1];
            let mut vacc = v4_zero();
            let mut p = lo;
            while p + 4 <= hi {
                let vv = v4_load(values.as_ptr().add(p));
                let xbuf = [
                    x[col_idx[p].to_usize()],
                    x[col_idx[p + 1].to_usize()],
                    x[col_idx[p + 2].to_usize()],
                    x[col_idx[p + 3].to_usize()],
                ];
                vacc = v4_fma(vacc, vv, v4_load(xbuf.as_ptr()));
                p += 4;
            }
            if p < hi {
                let mut vbuf = [0.0f64; 4];
                let mut xbuf = [0.0f64; 4];
                for (t, q) in (p..hi).enumerate() {
                    vbuf[t] = values[q];
                    xbuf[t] = x[col_idx[q].to_usize()];
                }
                vacc = v4_fma(vacc, v4_load(vbuf.as_ptr()), v4_load(xbuf.as_ptr()));
            }
            y[row] += hsum4(vacc);
        }
    }

    pub(super) unsafe fn spmm_csr<const K: usize, I: IndexStorage>(
        a: &CsrMatrix<I>,
        x: &[f64],
        x_ld: usize,
        ys: [&mut [f64]; K],
    ) {
        let row_ptr = a.row_ptr();
        let col_idx = a.col_idx();
        let values = a.values();
        let ncols = a.ncols();
        let xcols: [&[f64]; K] = std::array::from_fn(|j| &x[j * x_ld..j * x_ld + ncols]);
        for row in 0..a.nrows() {
            let lo = row_ptr[row];
            let hi = row_ptr[row + 1];
            let mut vacc = [v4_zero(); K];
            let mut p = lo;
            while p + 4 <= hi {
                let vv = v4_load(values.as_ptr().add(p));
                let (c0, c1, c2, c3) = (
                    col_idx[p].to_usize(),
                    col_idx[p + 1].to_usize(),
                    col_idx[p + 2].to_usize(),
                    col_idx[p + 3].to_usize(),
                );
                for j in 0..K {
                    let xj = xcols[j];
                    let xbuf = [xj[c0], xj[c1], xj[c2], xj[c3]];
                    vacc[j] = v4_fma(vacc[j], vv, v4_load(xbuf.as_ptr()));
                }
                p += 4;
            }
            if p < hi {
                let mut vbuf = [0.0f64; 4];
                for (t, q) in (p..hi).enumerate() {
                    vbuf[t] = values[q];
                }
                let vv = v4_load(vbuf.as_ptr());
                for j in 0..K {
                    let mut xbuf = [0.0f64; 4];
                    for (t, q) in (p..hi).enumerate() {
                        xbuf[t] = xcols[j][col_idx[q].to_usize()];
                    }
                    vacc[j] = v4_fma(vacc[j], vv, v4_load(xbuf.as_ptr()));
                }
            }
            for j in 0..K {
                ys[j][row] += hsum4(vacc[j]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::max_abs_diff;
    use crate::formats::traits::SpMv;
    use crate::formats::CsrMatrix;
    use crate::kernels::testing::{random_coo, test_x};
    use crate::multivec::MultiVec;

    #[test]
    fn detection_is_stable_and_named() {
        let level = detect();
        assert_eq!(level, detect());
        assert_eq!(feature_suffix(), level.suffix());
        assert_eq!(available(), level != SimdLevel::Scalar);
        assert!(["scalar", "avx2fma", "neon"].contains(&feature_suffix()));
    }

    #[test]
    fn bcsr_simd_matches_reference_on_all_covered_shapes() {
        let coo = random_coo(53, 47, 700, 71);
        let csr = CsrMatrix::from_coo(&coo);
        let x = test_x(47);
        let reference = csr.spmv_alloc(&x);
        for r in [1usize, 2, 4] {
            let bcsr = crate::formats::bcsr::BcsrMatrix::<u32>::from_csr(&csr, r, 4).unwrap();
            for level in [SimdLevel::Scalar, detect()] {
                let mut y = vec![0.0; 53];
                spmv_bcsr_simd_at(level, &bcsr, &x, &mut y);
                assert!(
                    max_abs_diff(&reference, &y) < 1e-10,
                    "{r}x4 at {level:?} diverged"
                );
            }
        }
    }

    #[test]
    fn csr_simd_matches_reference() {
        let csr = CsrMatrix::from_coo(&random_coo(61, 45, 800, 72));
        let x = test_x(45);
        let reference = csr.spmv_alloc(&x);
        for level in [SimdLevel::Scalar, detect()] {
            let mut y = vec![0.0; 61];
            spmv_csr_simd_at(level, &csr, &x, &mut y);
            assert!(max_abs_diff(&reference, &y) < 1e-10, "{level:?} diverged");
        }
    }

    #[test]
    fn simd_spmm_bit_identical_to_k_simd_spmv_calls() {
        // The load-bearing invariant: per column, the multivec kernels run the
        // identical FMA/hsum sequence as the single-vector kernels.
        let coo = random_coo(37, 29, 400, 73);
        let csr = CsrMatrix::from_coo(&coo);
        let level = detect();
        for k in [1usize, 2, 3, 4, 5, 7, 8, 11] {
            let cols: Vec<Vec<f64>> = (0..k)
                .map(|j| {
                    (0..29)
                        .map(|i| ((i * 13 + j * 7 + 1) % 23) as f64 - 11.0)
                        .collect()
                })
                .collect();
            let views: Vec<&[f64]> = cols.iter().map(|c| c.as_slice()).collect();
            let x = MultiVec::from_columns(&views);

            let mut y = MultiVec::zeros(37, k);
            spmm_csr_simd_at(level, &csr, x.data(), 29, &mut y.view_mut());
            for j in 0..k {
                let mut expected = vec![0.0; 37];
                spmv_csr_simd_at(level, &csr, x.col(j), &mut expected);
                assert_eq!(y.col(j), &expected[..], "csr k={k} column {j}");
            }

            for r in [1usize, 2, 4] {
                let bcsr = crate::formats::bcsr::BcsrMatrix::<u16>::from_csr(&csr, r, 4).unwrap();
                let mut y = MultiVec::zeros(37, k);
                spmm_bcsr_simd_at(level, &bcsr, x.data(), 29, &mut y.view_mut());
                for j in 0..k {
                    let mut expected = vec![0.0; 37];
                    spmv_bcsr_simd_at(level, &bcsr, x.col(j), &mut expected);
                    assert_eq!(y.col(j), &expected[..], "bcsr {r}x4 k={k} column {j}");
                }
            }
        }
    }

    #[test]
    fn remainder_columns_and_ragged_edges_are_exact() {
        // ncols = 5 with c = 4: the second block column's tile extends 3 lanes
        // past the edge; rows with nnz % 4 != 0 exercise the CSR remainder.
        let coo = random_coo(6, 5, 22, 74);
        let csr = CsrMatrix::from_coo(&coo);
        let x = test_x(5);
        let reference = csr.spmv_alloc(&x);
        let bcsr = crate::formats::bcsr::BcsrMatrix::<u16>::from_csr(&csr, 4, 4).unwrap();
        for level in [SimdLevel::Scalar, detect()] {
            let mut yb = vec![0.0; 6];
            spmv_bcsr_simd_at(level, &bcsr, &x, &mut yb);
            assert!(max_abs_diff(&reference, &yb) < 1e-12, "bcsr {level:?}");
            let mut yc = vec![0.0; 6];
            spmv_csr_simd_at(level, &csr, &x, &mut yc);
            assert!(max_abs_diff(&reference, &yc) < 1e-12, "csr {level:?}");
        }
    }

    #[test]
    fn uncovered_shapes_fall_back_to_scalar_bitwise() {
        // 3x4 and c != 4 shapes are not vectorized: the dispatch must produce
        // the scalar kernel's exact bits at any level.
        let coo = random_coo(31, 26, 300, 75);
        let csr = CsrMatrix::from_coo(&coo);
        let x = test_x(26);
        for (r, c) in [(3usize, 4usize), (4, 2), (2, 3)] {
            let bcsr = crate::formats::bcsr::BcsrMatrix::<u32>::from_csr(&csr, r, c).unwrap();
            let mut scalar = vec![0.0; 31];
            crate::kernels::blocked::spmv_bcsr(&bcsr, &x, &mut scalar);
            let mut y = vec![0.0; 31];
            spmv_bcsr_simd_at(detect(), &bcsr, &x, &mut y);
            assert_eq!(scalar, y, "{r}x{c} fallback not bit-identical");
        }
    }

    #[test]
    fn accumulates_into_destination() {
        let coo = random_coo(9, 9, 40, 76);
        let csr = CsrMatrix::from_coo(&coo);
        let x = test_x(9);
        let bcsr = crate::formats::bcsr::BcsrMatrix::<u32>::from_csr(&csr, 2, 4).unwrap();
        let mut y0 = vec![0.0; 9];
        spmv_bcsr_simd(&bcsr, &x, &mut y0);
        let mut y = vec![1.5; 9];
        spmv_bcsr_simd(&bcsr, &x, &mut y);
        for i in 0..9 {
            assert_eq!(y[i], 1.5 + y0[i]);
        }
    }

    #[test]
    fn empty_matrix_and_empty_rows_are_identity_on_y() {
        let csr: CsrMatrix = CsrMatrix::from_coo(&crate::formats::CooMatrix::new(5, 5));
        let x = test_x(5);
        let mut y = vec![2.5; 5];
        spmv_csr_simd(&csr, &x, &mut y);
        assert_eq!(y, vec![2.5; 5]);
        let bcsr = crate::formats::bcsr::BcsrMatrix::<u16>::from_csr(&csr, 4, 4).unwrap();
        let mut yb = vec![-1.0; 5];
        spmv_bcsr_simd(&bcsr, &x, &mut yb);
        assert_eq!(yb, vec![-1.0; 5]);
    }
}
