//! Multi-vector (SpMM) kernels: `Y ← Y + A·X` for a column-major block of `k`
//! vectors.
//!
//! These are the index-amortizing counterparts of the single-vector kernel
//! ladder: each column index is loaded **once** per nonzero (or per register
//! tile) and reused for all `k` vectors, so the bytes-per-flop of the index
//! stream drops by `k×`. Every kernel is monomorphized over the index storage
//! width [`IndexStorage`] *and* a constant column-block width `K ∈ {1, 2, 4, 8}`
//! — arbitrary `k` is processed as chunks of 8/4/2/1 columns, each chunk running
//! a fully-specialized microkernel with a register-resident `[f64; K]` (CSR) or
//! `[[f64; K]; R]` (BCSR) accumulator.
//!
//! **Bit-identity.** Per vector, each kernel performs the *identical*
//! floating-point operations in the identical order as its sequential
//! single-vector counterpart (`naive`/`single-loop`/`prefetch` for CSR — the
//! variants a [`crate::tuning::plan::TunePlan`] binds for streaming blocks —
//! and the r×c microkernels for BCSR/BCOO/GCSR). `spmm` over `k` vectors is
//! therefore bit-identical to `k` independent tuned SpMV calls, which is what
//! lets a batching service transparently coalesce requests.

use crate::formats::bcoo::BcooMatrix;
use crate::formats::bcsr::BcsrMatrix;
use crate::formats::csr::CsrMatrix;
use crate::formats::gcsr::GcsrMatrix;
use crate::formats::index::IndexStorage;
use crate::formats::traits::MatrixShape;
use crate::multivec::MultiVecMut;

/// The constant column-block widths the microkernels are generated for; any `k`
/// decomposes greedily into these (e.g. `k = 11` runs as `8 + 2 + 1`).
pub const K_CHUNKS: [usize; 4] = [8, 4, 2, 1];

/// Decompose `k` columns into the fixed-`K` chunks and run `chunk(j0, K)` for
/// each, where `j0` is the first column of the chunk.
macro_rules! for_each_k_chunk {
    ($k:expr, $j0:ident, $body_k8:expr, $body_k4:expr, $body_k2:expr, $body_k1:expr) => {{
        let k = $k;
        let mut $j0 = 0usize;
        while k - $j0 >= 8 {
            $body_k8;
            $j0 += 8;
        }
        while k - $j0 >= 4 {
            $body_k4;
            $j0 += 4;
        }
        while k - $j0 >= 2 {
            $body_k2;
            $j0 += 2;
        }
        while k - $j0 >= 1 {
            $body_k1;
            $j0 += 1;
        }
    }};
}

/// One fully-specialized CSR block-of-`K`-columns traversal: a single running
/// nonzero cursor (the `single-loop` shape) with a register-resident `[f64; K]`
/// accumulator. Column `j` of the source block is `x[j*x_ld ..]`.
fn spmm_csr_fixed<const K: usize, I: IndexStorage>(
    a: &CsrMatrix<I>,
    x: &[f64],
    x_ld: usize,
    ys: [&mut [f64]; K],
) {
    let row_ptr = a.row_ptr();
    let col_idx = a.col_idx();
    let values = a.values();
    let ncols = a.ncols();
    // One bounds-checked slice per source column, hoisted out of the sweep so
    // the inner loop indexes each column by `col` alone.
    let xcols: [&[f64]; K] = std::array::from_fn(|j| &x[j * x_ld..j * x_ld + ncols]);
    let mut k = 0usize;
    for row in 0..a.nrows() {
        let end = row_ptr[row + 1];
        let mut acc = [0.0f64; K];
        while k < end {
            let col = col_idx[k].to_usize();
            let v = values[k];
            // One index load amortized over K vectors.
            for j in 0..K {
                acc[j] += v * xcols[j][col];
            }
            k += 1;
        }
        for j in 0..K {
            ys[j][row] += acc[j];
        }
    }
}

/// `Y ← Y + A·X` for CSR: dispatch `k` into fixed-`K` column chunks. Per vector
/// the arithmetic order equals [`crate::kernels::single_loop::spmv_single_loop`]
/// (and therefore `naive` and the `prefetch` variants too).
pub fn spmm_csr<I: IndexStorage>(a: &CsrMatrix<I>, x: &[f64], x_ld: usize, y: &mut MultiVecMut) {
    check_spmm_dims(a.nrows(), a.ncols(), x, x_ld, y);
    for_each_k_chunk!(
        y.k(),
        j0,
        spmm_csr_fixed::<8, I>(a, &x[j0 * x_ld..], x_ld, y.cols_mut::<8>(j0)),
        spmm_csr_fixed::<4, I>(a, &x[j0 * x_ld..], x_ld, y.cols_mut::<4>(j0)),
        spmm_csr_fixed::<2, I>(a, &x[j0 * x_ld..], x_ld, y.cols_mut::<2>(j0)),
        spmm_csr_fixed::<1, I>(a, &x[j0 * x_ld..], x_ld, y.cols_mut::<1>(j0))
    );
}

/// One fully-specialized BCSR microkernel: constant `R`×`C` tiles applied to `K`
/// columns with an `[[f64; K]; R]` register accumulator per block row. Mirrors
/// [`crate::kernels::blocked::spmv_bcsr`]'s per-vector arithmetic exactly
/// (per-tile row sums, then accumulate; ragged right edge clamped).
fn spmm_bcsr_fixed<const R: usize, const C: usize, const K: usize, I: IndexStorage>(
    a: &BcsrMatrix<I>,
    x: &[f64],
    x_ld: usize,
    ys: [&mut [f64]; K],
) {
    debug_assert_eq!(a.block_rows(), R);
    debug_assert_eq!(a.block_cols(), C);
    let nrows = a.nrows();
    let ncols = a.ncols();
    let block_row_ptr = a.block_row_ptr();
    let block_col_idx = a.block_col_idx();
    let tiles = a.tile_values();
    let nblock_rows = block_row_ptr.len() - 1;

    for brow in 0..nblock_rows {
        let row_lo = brow * R;
        let lo = block_row_ptr[brow];
        let hi = block_row_ptr[brow + 1];
        let mut acc = [[0.0f64; K]; R];

        for (tile, bc) in tiles[lo * R * C..hi * R * C]
            .chunks_exact(R * C)
            .zip(&block_col_idx[lo..hi])
        {
            let col_lo = bc.to_usize() * C;
            if col_lo + C <= ncols {
                // Interior tile: constant-bound loops, fully unrolled. The K
                // source windows are sliced once per tile, not once per (i, j).
                let xt: [&[f64]; K] =
                    std::array::from_fn(|j| &x[j * x_ld + col_lo..j * x_ld + col_lo + C]);
                for i in 0..R {
                    let trow = &tile[i * C..i * C + C];
                    for j in 0..K {
                        let mut sum = 0.0;
                        for t in 0..C {
                            sum += trow[t] * xt[j][t];
                        }
                        acc[i][j] += sum;
                    }
                }
            } else {
                // At most one ragged tile per block row: the zero fill extends
                // past ncols, so clamp the column count (same as the
                // single-vector kernel).
                let cols_here = ncols - col_lo;
                for i in 0..R {
                    let trow = &tile[i * C..i * C + C];
                    for j in 0..K {
                        let xj = &x[j * x_ld + col_lo..];
                        let mut sum = 0.0;
                        for (t, &xv) in xj.iter().enumerate().take(cols_here) {
                            sum += trow[t] * xv;
                        }
                        acc[i][j] += sum;
                    }
                }
            }
        }

        let rows_here = R.min(nrows - row_lo);
        for i in 0..rows_here {
            for j in 0..K {
                ys[j][row_lo + i] += acc[i][j];
            }
        }
    }
}

/// Generate the (r, c) shape dispatch for one fixed column chunk width `K`.
macro_rules! bcsr_spmm_dispatch {
    ($a:expr, $x:expr, $x_ld:expr, $ys:expr, $K:literal; $(($r:literal, $c:literal)),+ $(,)?) => {
        match ($a.block_rows(), $a.block_cols()) {
            $(($r, $c) => spmm_bcsr_fixed::<$r, $c, $K, I>($a, $x, $x_ld, $ys),)+
            (r, c) => unreachable!("block shape {r}x{c} outside the supported sweep"),
        }
    };
}

macro_rules! bcsr_spmm_chunk {
    ($name:ident, $K:literal) => {
        fn $name<I: IndexStorage>(
            a: &BcsrMatrix<I>,
            x: &[f64],
            x_ld: usize,
            ys: [&mut [f64]; $K],
        ) {
            bcsr_spmm_dispatch!(a, x, x_ld, ys, $K;
                (1, 1), (1, 2), (1, 3), (1, 4),
                (2, 1), (2, 2), (2, 3), (2, 4),
                (3, 1), (3, 2), (3, 3), (3, 4),
                (4, 1), (4, 2), (4, 3), (4, 4),
            );
        }
    };
}

bcsr_spmm_chunk!(spmm_bcsr_chunk8, 8);
bcsr_spmm_chunk!(spmm_bcsr_chunk4, 4);
bcsr_spmm_chunk!(spmm_bcsr_chunk2, 2);
bcsr_spmm_chunk!(spmm_bcsr_chunk1, 1);

/// `Y ← Y + A·X` for register-blocked BCSR: one (r, c) dispatch per column
/// chunk, then the fully-unrolled r×c×K microkernel.
///
/// The chunk width is capped so the `R × K` accumulator block stays
/// register-resident: tall register blocks (`r ≥ 3`) run 4-column chunks
/// instead of 8 (an `[[f64; 8]; 4]` accumulator spills on 16-register
/// targets). Chunking is invisible to the results — the vectors are
/// independent, so any decomposition performs the identical per-vector
/// arithmetic.
pub fn spmm_bcsr<I: IndexStorage>(a: &BcsrMatrix<I>, x: &[f64], x_ld: usize, y: &mut MultiVecMut) {
    check_spmm_dims(a.nrows(), a.ncols(), x, x_ld, y);
    let k = y.k();
    let wide_chunks = a.block_rows() <= 2;
    let mut j0 = 0usize;
    while wide_chunks && k - j0 >= 8 {
        spmm_bcsr_chunk8(a, &x[j0 * x_ld..], x_ld, y.cols_mut::<8>(j0));
        j0 += 8;
    }
    while k - j0 >= 4 {
        spmm_bcsr_chunk4(a, &x[j0 * x_ld..], x_ld, y.cols_mut::<4>(j0));
        j0 += 4;
    }
    while k - j0 >= 2 {
        spmm_bcsr_chunk2(a, &x[j0 * x_ld..], x_ld, y.cols_mut::<2>(j0));
        j0 += 2;
    }
    while k - j0 >= 1 {
        spmm_bcsr_chunk1(a, &x[j0 * x_ld..], x_ld, y.cols_mut::<1>(j0));
        j0 += 1;
    }
}

/// `Y ← Y + A·X` for block-coordinate storage: tiles outermost so each tile's
/// coordinates are read once for all `k` vectors; per vector the arithmetic
/// order equals [`BcooMatrix`]'s single-vector `spmv`.
pub fn spmm_bcoo(a: &BcooMatrix, x: &[f64], x_ld: usize, y: &mut MultiVecMut) {
    check_spmm_dims(a.nrows(), a.ncols(), x, x_ld, y);
    let r = a.block_rows_dim();
    let c = a.block_cols_dim();
    let (nrows, ncols) = (a.nrows(), a.ncols());
    let k = y.k();
    for t in 0..a.num_blocks() {
        let row_lo = a.block_row_coord(t) * r;
        let col_lo = a.block_col_coord(t) * c;
        let rows_here = r.min(nrows - row_lo);
        let cols_here = c.min(ncols - col_lo);
        let tile = &a.tile_values()[t * r * c..(t + 1) * r * c];
        for i in 0..rows_here {
            for j in 0..k {
                let xj = &x[j * x_ld + col_lo..];
                let mut sum = 0.0;
                for (p, &xv) in xj.iter().enumerate().take(cols_here) {
                    sum += tile[i * c + p] * xv;
                }
                y.col_mut(j)[row_lo + i] += sum;
            }
        }
    }
}

/// `Y ← Y + A·X` for generalized CSR: stored rows outermost so each row id and
/// column index is read once for all `k` vectors; per vector the arithmetic
/// order equals [`GcsrMatrix`]'s single-vector `spmv`.
pub fn spmm_gcsr(a: &GcsrMatrix, x: &[f64], x_ld: usize, y: &mut MultiVecMut) {
    check_spmm_dims(a.nrows(), a.ncols(), x, x_ld, y);
    let k = y.k();
    for s in 0..a.stored_rows() {
        let row = a.row_id(s);
        let (lo, hi) = a.stored_row_range(s);
        for j in 0..k {
            let xj = &x[j * x_ld..];
            let mut sum = 0.0;
            for p in lo..hi {
                sum += a.values()[p] * xj[a.col_id(p)];
            }
            y.col_mut(j)[row] += sum;
        }
    }
}

/// Shared dimension checks for the SpMM entry points: the destination view must
/// expose exactly the matrix's rows, and the source block must reach the last
/// column of its last vector.
pub(crate) fn check_spmm_dims(nrows: usize, ncols: usize, x: &[f64], x_ld: usize, y: &MultiVecMut) {
    assert_eq!(y.nrows(), nrows, "destination block row count mismatch");
    assert!(x_ld >= ncols, "source stride shorter than the column span");
    let k = y.k();
    assert!(
        k == 0 || x.len() >= (k - 1) * x_ld + ncols,
        "source block too short for {k} vectors"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::max_abs_diff;
    use crate::formats::bcsr::ALLOWED_BLOCK_DIMS;
    use crate::formats::index::IndexWidth;
    use crate::formats::traits::SpMv;
    use crate::kernels::testing::random_coo;
    use crate::multivec::MultiVec;

    /// A deterministic k-column source block over `ncols` rows.
    fn test_xblock(ncols: usize, k: usize) -> MultiVec {
        let cols: Vec<Vec<f64>> = (0..k)
            .map(|j| {
                (0..ncols)
                    .map(|i| ((i * 31 + j * 17 + 5) % 97) as f64 * 0.125 - 6.0)
                    .collect()
            })
            .collect();
        let views: Vec<&[f64]> = cols.iter().map(|c| c.as_slice()).collect();
        MultiVec::from_columns(&views)
    }

    #[test]
    fn csr_spmm_bit_identical_to_k_single_loop_calls() {
        let csr = CsrMatrix::from_coo(&random_coo(83, 61, 900, 41));
        for k in [1, 2, 3, 4, 5, 7, 8, 11] {
            let x = test_xblock(61, k);
            let mut y = MultiVec::zeros(83, k);
            y.fill(0.75);
            spmm_csr(&csr, x.data(), 61, &mut y.view_mut());
            for j in 0..k {
                let mut expected = vec![0.75; 83];
                crate::kernels::single_loop::spmv_single_loop(&csr, x.col(j), &mut expected);
                assert_eq!(y.col(j), &expected[..], "k={k} column {j}");
            }
        }
    }

    #[test]
    fn csr_spmm_matches_across_index_widths() {
        let csr32 = CsrMatrix::from_coo(&random_coo(60, 50, 500, 42));
        let csr16: CsrMatrix<u16> = csr32.reindex().unwrap();
        let csrus: CsrMatrix<usize> = csr32.reindex().unwrap();
        let x = test_xblock(50, 4);
        let mut y32 = MultiVec::zeros(60, 4);
        let mut y16 = MultiVec::zeros(60, 4);
        let mut yus = MultiVec::zeros(60, 4);
        spmm_csr(&csr32, x.data(), 50, &mut y32.view_mut());
        spmm_csr(&csr16, x.data(), 50, &mut y16.view_mut());
        spmm_csr(&csrus, x.data(), 50, &mut yus.view_mut());
        assert_eq!(y32, y16);
        assert_eq!(y32, yus);
    }

    #[test]
    fn bcsr_spmm_bit_identical_to_k_microkernel_calls() {
        let coo = random_coo(53, 47, 620, 43);
        let csr = CsrMatrix::from_coo(&coo);
        for &r in &ALLOWED_BLOCK_DIMS {
            for &c in &ALLOWED_BLOCK_DIMS {
                let bcsr = BcsrMatrix::<u16>::from_csr(&csr, r, c).unwrap();
                for k in [1, 2, 4, 6, 8] {
                    let x = test_xblock(47, k);
                    let mut y = MultiVec::zeros(53, k);
                    spmm_bcsr(&bcsr, x.data(), 47, &mut y.view_mut());
                    for j in 0..k {
                        let mut expected = vec![0.0; 53];
                        crate::kernels::blocked::spmv_bcsr(&bcsr, x.col(j), &mut expected);
                        assert_eq!(y.col(j), &expected[..], "{r}x{c} k={k} column {j}");
                    }
                }
            }
        }
    }

    #[test]
    fn bcoo_and_gcsr_spmm_bit_identical_to_spmv() {
        // Mostly-empty rows, the shapes those formats exist for.
        let coo = crate::formats::CooMatrix::from_triplets(
            40,
            30,
            vec![
                (0, 0, 1.5),
                (0, 29, -2.0),
                (17, 3, 4.0),
                (17, 4, 0.5),
                (39, 15, 3.0),
            ],
        )
        .unwrap();
        let csr = CsrMatrix::from_coo(&coo);
        let bcoo = BcooMatrix::from_csr(&csr, 2, 2, IndexWidth::U16).unwrap();
        let gcsr = GcsrMatrix::from_csr(&csr, IndexWidth::U16).unwrap();
        for k in [1, 3, 8] {
            let x = test_xblock(30, k);
            let mut yb = MultiVec::zeros(40, k);
            let mut yg = MultiVec::zeros(40, k);
            spmm_bcoo(&bcoo, x.data(), 30, &mut yb.view_mut());
            spmm_gcsr(&gcsr, x.data(), 30, &mut yg.view_mut());
            for j in 0..k {
                let mut eb = vec![0.0; 40];
                bcoo.spmv(x.col(j), &mut eb);
                assert_eq!(yb.col(j), &eb[..], "bcoo k={k} col {j}");
                let mut eg = vec![0.0; 40];
                gcsr.spmv(x.col(j), &mut eg);
                assert_eq!(yg.col(j), &eg[..], "gcsr k={k} col {j}");
            }
        }
    }

    #[test]
    fn strided_source_blocks_work() {
        // x_ld larger than ncols: the kernels must honour the stride, reading
        // column j at j*x_ld even though the matrix spans fewer columns.
        let csr = CsrMatrix::from_coo(&random_coo(20, 10, 80, 44));
        let x_ld = 25;
        let k = 3;
        let mut x = vec![0.0; (k - 1) * x_ld + 10];
        for j in 0..k {
            for i in 0..10 {
                x[j * x_ld + i] = (i + j * 100) as f64;
            }
        }
        let mut y = MultiVec::zeros(20, k);
        spmm_csr(&csr, &x, x_ld, &mut y.view_mut());
        for j in 0..k {
            let xj: Vec<f64> = (0..10).map(|i| (i + j * 100) as f64).collect();
            assert!(max_abs_diff(&csr.spmv_alloc(&xj), y.col(j)) < 1e-12);
        }
    }

    #[test]
    fn empty_matrix_spmm_is_identity_on_y() {
        let csr = CsrMatrix::from_coo(&crate::formats::CooMatrix::new(5, 5));
        let x = test_xblock(5, 4);
        let mut y = MultiVec::zeros(5, 4);
        y.fill(3.25);
        spmm_csr(&csr, x.data(), 5, &mut y.view_mut());
        assert_eq!(y.data(), &[3.25; 20]);
    }

    #[test]
    fn rectangular_matrices_supported() {
        let csr = CsrMatrix::from_coo(&random_coo(15, 90, 300, 45));
        let x = test_xblock(90, 2);
        let mut y = MultiVec::zeros(15, 2);
        spmm_csr(&csr, x.data(), 90, &mut y.view_mut());
        for j in 0..2 {
            assert!(max_abs_diff(&csr.spmv_alloc(x.col(j)), y.col(j)) < 1e-12);
        }
    }
}
