//! Branchless (segmented-scan) CSR SpMV.
//!
//! The paper's branchless variant is "in effect a segmented scan of vector-length
//! equal to one" (Section 4.1, citing Blelloch et al.): instead of a data-dependent
//! inner-loop branch per row, every nonzero performs the same instruction sequence
//! and a row-boundary *flag*, turned into an arithmetic select, decides whether the
//! running sum is flushed to `y`. On hardware this removes branch mispredictions for
//! matrices with very short rows (Economics, Circuit, webbase in the suite).

use crate::formats::csr::CsrMatrix;
use crate::formats::index::IndexStorage;
use crate::formats::traits::MatrixShape;

/// `y ← y + A·x` with a branch-free inner loop over the nonzero stream.
///
/// The row boundaries are pre-expanded into a per-nonzero "segment end" description
/// (the row each nonzero belongs to), so the main loop contains no conditional
/// control flow that depends on the matrix structure — only predicated arithmetic.
pub fn spmv_branchless<I: IndexStorage>(a: &CsrMatrix<I>, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), a.ncols(), "source vector length mismatch");
    assert_eq!(y.len(), a.nrows(), "destination vector length mismatch");
    let row_ptr = a.row_ptr();
    let col_idx = a.col_idx();
    let values = a.values();
    let nnz = values.len();
    if nnz == 0 {
        return;
    }

    // Expand row boundaries: row_of[k] is the row owning nonzero k. This is the
    // segment descriptor of a segmented scan with segment length 1 per row.
    // (The expansion is part of the data-structure setup cost in the paper's
    // generator; here it is recomputed per call to keep the kernel self-contained —
    // tuned pipelines cache it via `SegmentedCsr` below.)
    let row_of = expand_row_ids(row_ptr, nnz);

    let mut sum = 0.0;
    let mut current_row = row_of[0] as usize;
    for k in 0..nnz {
        let row = row_of[k] as usize;
        // Arithmetic select: when the row changes, flush and reset without a
        // data-dependent branch on the inner nonzero structure. The comparison
        // compiles to a setcc/cmov-style sequence rather than a loop branch.
        let new_segment = (row != current_row) as usize as f64;
        y[current_row] += sum * new_segment;
        sum *= 1.0 - new_segment;
        current_row = row;
        sum += values[k] * x[col_idx[k].to_usize()];
    }
    y[current_row] += sum;
}

/// Expand a CSR row pointer into a per-nonzero row id array.
pub fn expand_row_ids(row_ptr: &[usize], nnz: usize) -> Vec<u32> {
    let mut row_of = vec![0u32; nnz];
    for row in 0..row_ptr.len() - 1 {
        for slot in row_of.iter_mut().take(row_ptr[row + 1]).skip(row_ptr[row]) {
            *slot = row as u32;
        }
    }
    row_of
}

/// A CSR matrix with the segment descriptor precomputed, for repeated branchless calls.
#[derive(Debug, Clone)]
pub struct SegmentedCsr<I: IndexStorage = u32> {
    csr: CsrMatrix<I>,
    row_of: Vec<u32>,
}

impl<I: IndexStorage> SegmentedCsr<I> {
    /// Precompute the per-nonzero row ids for `csr`.
    pub fn new(csr: CsrMatrix<I>) -> Self {
        let row_of = expand_row_ids(csr.row_ptr(), csr.nnz());
        SegmentedCsr { csr, row_of }
    }

    /// The wrapped CSR matrix.
    pub fn csr(&self) -> &CsrMatrix<I> {
        &self.csr
    }

    /// Branchless SpMV using the cached segment descriptor.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.csr.ncols(), "source vector length mismatch");
        assert_eq!(
            y.len(),
            self.csr.nrows(),
            "destination vector length mismatch"
        );
        let col_idx = self.csr.col_idx();
        let values = self.csr.values();
        let nnz = values.len();
        if nnz == 0 {
            return;
        }
        let mut sum = 0.0;
        let mut current_row = self.row_of[0] as usize;
        for k in 0..nnz {
            let row = self.row_of[k] as usize;
            let new_segment = (row != current_row) as usize as f64;
            y[current_row] += sum * new_segment;
            sum *= 1.0 - new_segment;
            current_row = row;
            sum += values[k] * x[col_idx[k].to_usize()];
        }
        y[current_row] += sum;
    }

    /// Extra bytes the segment descriptor adds to the matrix footprint.
    pub fn descriptor_bytes(&self) -> usize {
        self.row_of.len() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::max_abs_diff;
    use crate::formats::traits::SpMv;
    use crate::formats::{CooMatrix, CsrMatrix};
    use crate::kernels::testing::{random_coo, test_x};

    #[test]
    fn matches_reference_on_random_matrix() {
        let csr = CsrMatrix::from_coo(&random_coo(90, 70, 800, 42));
        let x = test_x(70);
        let reference = csr.spmv_alloc(&x);
        let mut y = vec![0.0; 90];
        spmv_branchless(&csr, &x, &mut y);
        assert!(max_abs_diff(&reference, &y) < 1e-10);
    }

    #[test]
    fn short_row_matrix_is_exact() {
        // Many rows of length 0 or 1 — the case branchlessness targets.
        let coo = CooMatrix::from_triplets(
            8,
            8,
            vec![(0, 3, 1.0), (2, 2, 2.0), (3, 0, 3.0), (7, 7, 4.0)],
        )
        .unwrap();
        let csr = CsrMatrix::from_coo(&coo);
        let x: Vec<f64> = (1..=8).map(|i| i as f64).collect();
        let reference = csr.spmv_alloc(&x);
        let mut y = vec![0.0; 8];
        spmv_branchless(&csr, &x, &mut y);
        assert!(max_abs_diff(&reference, &y) < 1e-12);
    }

    #[test]
    fn expand_row_ids_covers_every_nonzero() {
        let row_ptr = vec![0, 2, 2, 5];
        let ids = expand_row_ids(&row_ptr, 5);
        assert_eq!(ids, vec![0, 0, 2, 2, 2]);
    }

    #[test]
    fn segmented_wrapper_matches_and_reports_descriptor() {
        let csr = CsrMatrix::from_coo(&random_coo(40, 40, 200, 7));
        let x = test_x(40);
        let reference = csr.spmv_alloc(&x);
        let seg = SegmentedCsr::new(csr);
        let mut y = vec![0.0; 40];
        seg.spmv(&x, &mut y);
        assert!(max_abs_diff(&reference, &y) < 1e-10);
        assert_eq!(seg.descriptor_bytes(), seg.csr().nnz() * 4);
    }

    #[test]
    fn empty_matrix_is_noop() {
        let csr = CsrMatrix::from_coo(&CooMatrix::new(4, 4));
        let mut y = vec![1.0; 4];
        spmv_branchless(&csr, &[0.0; 4], &mut y);
        assert_eq!(y, vec![1.0; 4]);
    }

    #[test]
    fn accumulates_on_top_of_existing_y() {
        let csr = CsrMatrix::from_coo(
            &CooMatrix::from_triplets(2, 2, vec![(0, 0, 1.0), (1, 1, 1.0)]).unwrap(),
        );
        let mut y = vec![10.0, 20.0];
        spmv_branchless(&csr, &[1.0, 2.0], &mut y);
        assert_eq!(y, vec![11.0, 22.0]);
    }
}
