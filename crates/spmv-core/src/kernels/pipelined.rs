//! Software-pipelined CSR SpMV.
//!
//! On strictly in-order cores (Niagara, Cell SPE) the latency of the indexed load of
//! `x[col]` and of the floating-point multiply is exposed unless the next iteration's
//! operands are fetched while the current one computes. The paper's generator emits an
//! explicitly software-pipelined loop; this module expresses the same schedule in
//! Rust: loads for iteration `k+1` are issued before the multiply–add of iteration `k`
//! retires, using two rotating operand registers.

use crate::formats::csr::CsrMatrix;
use crate::formats::index::IndexStorage;
use crate::formats::traits::MatrixShape;

/// `y ← y + A·x` with a two-stage software pipeline over the nonzero stream.
pub fn spmv_pipelined<I: IndexStorage>(a: &CsrMatrix<I>, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), a.ncols(), "source vector length mismatch");
    assert_eq!(y.len(), a.nrows(), "destination vector length mismatch");
    let row_ptr = a.row_ptr();
    let col_idx = a.col_idx();
    let values = a.values();

    for row in 0..a.nrows() {
        let lo = row_ptr[row];
        let hi = row_ptr[row + 1];
        if lo == hi {
            continue;
        }
        // Prologue: stage the first iteration's operands.
        let mut staged_val = values[lo];
        let mut staged_x = x[col_idx[lo].to_usize()];
        let mut sum = 0.0;
        // Steady state: issue next loads before consuming the staged pair.
        for k in lo + 1..hi {
            let next_val = values[k];
            let next_x = x[col_idx[k].to_usize()];
            sum += staged_val * staged_x;
            staged_val = next_val;
            staged_x = next_x;
        }
        // Epilogue: drain the pipeline.
        sum += staged_val * staged_x;
        y[row] += sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::max_abs_diff;
    use crate::formats::traits::SpMv;
    use crate::formats::{CooMatrix, CsrMatrix};
    use crate::kernels::testing::{random_coo, test_x};

    #[test]
    fn matches_reference_on_random_matrix() {
        let csr = CsrMatrix::from_coo(&random_coo(77, 91, 700, 13));
        let x = test_x(91);
        let reference = csr.spmv_alloc(&x);
        let mut y = vec![0.0; 77];
        spmv_pipelined(&csr, &x, &mut y);
        assert!(max_abs_diff(&reference, &y) < 1e-12);
    }

    #[test]
    fn single_entry_rows() {
        let coo =
            CooMatrix::from_triplets(3, 3, vec![(0, 1, 2.0), (1, 2, 3.0), (2, 0, 4.0)]).unwrap();
        let csr = CsrMatrix::from_coo(&coo);
        let mut y = vec![0.0; 3];
        spmv_pipelined(&csr, &[1.0, 10.0, 100.0], &mut y);
        assert_eq!(y, vec![20.0, 300.0, 4.0]);
    }

    #[test]
    fn empty_rows_skipped() {
        let coo = CooMatrix::from_triplets(4, 4, vec![(3, 3, 5.0)]).unwrap();
        let csr = CsrMatrix::from_coo(&coo);
        let mut y = vec![1.0; 4];
        spmv_pipelined(&csr, &[2.0; 4], &mut y);
        assert_eq!(y, vec![1.0, 1.0, 1.0, 11.0]);
    }

    #[test]
    fn empty_matrix() {
        let csr = CsrMatrix::from_coo(&CooMatrix::new(2, 2));
        let mut y = vec![0.0; 2];
        spmv_pipelined(&csr, &[1.0; 2], &mut y);
        assert_eq!(y, vec![0.0; 2]);
    }
}
