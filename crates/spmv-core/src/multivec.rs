//! Column-major dense multi-vector blocks for SpMM (`Y ← Y + A·X`).
//!
//! The paper tunes SpMV for one right-hand side, where the data structure's index
//! traffic dominates. When one matrix is applied to `k` vectors at once, that
//! traffic amortizes perfectly: the kernel reads each column index **once** and
//! uses it for all `k` vectors. This module holds the dense-block side of that
//! computation:
//!
//! * [`MultiVec`] — an owned column-major block of `k` vectors (`ld` rows each,
//!   vector `j` contiguous at `data[j*ld .. (j+1)*ld]`). Column-major is the
//!   layout a batching service gets for free: each coalesced single-vector
//!   request *is* one contiguous column, so batch assembly and result
//!   extraction are straight `memcpy`s.
//! * [`MultiVecMut`] — a strided mutable view of `k` destination columns. The
//!   parallel engine's workers write disjoint *row ranges* of every column,
//!   which no `&mut [f64]` can express; this view carries (base pointer, column
//!   stride, visible rows) instead and hands kernels per-column disjoint slices.
//!
//! The multi-vector kernels themselves live in [`crate::kernels::multivec`].

use std::marker::PhantomData;

/// An owned, column-major dense block of `k` vectors of `ld` rows each.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiVec {
    data: Vec<f64>,
    ld: usize,
    k: usize,
}

impl MultiVec {
    /// A zero-initialized `ld × k` block.
    pub fn zeros(ld: usize, k: usize) -> MultiVec {
        MultiVec {
            data: vec![0.0; ld * k],
            ld,
            k,
        }
    }

    /// Assemble a block from `k` equal-length columns (each one request's vector).
    ///
    /// # Panics
    ///
    /// Panics if the columns have differing lengths or `columns` is empty.
    pub fn from_columns(columns: &[&[f64]]) -> MultiVec {
        assert!(
            !columns.is_empty(),
            "multi-vector needs at least one column"
        );
        let ld = columns[0].len();
        let mut data = Vec::with_capacity(ld * columns.len());
        for col in columns {
            assert_eq!(col.len(), ld, "all columns must have the same length");
            data.extend_from_slice(col);
        }
        MultiVec {
            data,
            ld,
            k: columns.len(),
        }
    }

    /// Wrap an existing column-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != ld * k`.
    pub fn from_vec(data: Vec<f64>, ld: usize, k: usize) -> MultiVec {
        assert_eq!(data.len(), ld * k, "buffer must be exactly ld * k");
        MultiVec { data, ld, k }
    }

    /// Rows per column (the leading dimension).
    pub fn ld(&self) -> usize {
        self.ld
    }

    /// Number of columns (vectors).
    pub fn k(&self) -> usize {
        self.k
    }

    /// The whole column-major buffer.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// The whole column-major buffer, mutably.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Column `j` as a contiguous slice.
    pub fn col(&self, j: usize) -> &[f64] {
        &self.data[j * self.ld..(j + 1) * self.ld]
    }

    /// Column `j` as a contiguous mutable slice.
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        &mut self.data[j * self.ld..(j + 1) * self.ld]
    }

    /// Fill every element with `value`.
    pub fn fill(&mut self, value: f64) {
        self.data.fill(value);
    }

    /// A mutable kernel view over all rows of every column.
    pub fn view_mut(&mut self) -> MultiVecMut<'_> {
        let ld = self.ld;
        let k = self.k;
        MultiVecMut::from_slice(&mut self.data, ld, k)
    }

    /// Consume into the underlying column-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }
}

/// A mutable, possibly strided view of `k` destination columns: column `j` is the
/// `nrows` doubles starting `j * ld` past the base pointer.
///
/// The columns are pairwise disjoint by construction (`nrows ≤ ld`), so the view
/// can hand out one `&mut [f64]` per column simultaneously — which is what the
/// register-blocked SpMM microkernels consume — without ever materializing an
/// aliasing `&mut` over the gaps between them.
#[derive(Debug)]
pub struct MultiVecMut<'a> {
    ptr: *mut f64,
    ld: usize,
    nrows: usize,
    k: usize,
    _marker: PhantomData<&'a mut [f64]>,
}

// SAFETY: the view is an exclusive borrow of its k columns; sending it to another
// thread moves that exclusivity with it, exactly like `&mut [f64]`.
unsafe impl Send for MultiVecMut<'_> {}

impl<'a> MultiVecMut<'a> {
    /// View a contiguous column-major buffer (`ld == nrows`, all rows visible).
    ///
    /// # Panics
    ///
    /// Panics if `data` is shorter than `ld * k`.
    pub fn from_slice(data: &'a mut [f64], ld: usize, k: usize) -> MultiVecMut<'a> {
        assert!(data.len() >= ld * k, "buffer shorter than ld * k");
        MultiVecMut {
            ptr: data.as_mut_ptr(),
            ld,
            nrows: ld,
            k,
            _marker: PhantomData,
        }
    }

    /// Build a view from raw parts: column `j` is `ptr[j*ld .. j*ld + nrows]`.
    ///
    /// # Safety
    ///
    /// For the lifetime `'a` the caller must guarantee exclusive access to every
    /// column range, that all ranges lie within one live allocation, and that
    /// `nrows <= ld` (or `k <= 1`) so the columns cannot overlap.
    pub unsafe fn from_raw_parts(
        ptr: *mut f64,
        ld: usize,
        nrows: usize,
        k: usize,
    ) -> MultiVecMut<'a> {
        debug_assert!(nrows <= ld || k <= 1, "columns would overlap");
        MultiVecMut {
            ptr,
            ld,
            nrows,
            k,
            _marker: PhantomData,
        }
    }

    /// Rows visible per column.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Reborrow rows `[start, start + len)` of every column (used to walk cache
    /// blocks: a plain pointer offset, no allocation).
    pub fn sub_rows(&mut self, start: usize, len: usize) -> MultiVecMut<'_> {
        assert!(
            start <= self.nrows && len <= self.nrows - start,
            "row range {start}..{} out of view",
            start + len
        );
        MultiVecMut {
            // SAFETY: stays within the view's own column ranges.
            ptr: unsafe { self.ptr.add(start) },
            ld: self.ld,
            nrows: len,
            k: self.k,
            _marker: PhantomData,
        }
    }

    /// Column `j` as a mutable slice.
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        assert!(j < self.k, "column {j} out of range");
        // SAFETY: in-bounds per the construction contract; the returned borrow
        // holds `&mut self`, so no second view of the column can be taken.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(j * self.ld), self.nrows) }
    }

    /// Columns `[j0, j0 + K)` as `K` simultaneous mutable slices (the shape the
    /// fixed-`K` microkernels consume).
    pub fn cols_mut<const K: usize>(&mut self, j0: usize) -> [&mut [f64]; K] {
        assert!(
            j0 + K <= self.k,
            "column chunk {j0}..{} out of range",
            j0 + K
        );
        // SAFETY: distinct `j` give disjoint ranges (nrows ≤ ld), all in bounds,
        // and the borrow of `self` pins the whole view for their lifetime.
        std::array::from_fn(|i| unsafe {
            std::slice::from_raw_parts_mut(self.ptr.add((j0 + i) * self.ld), self.nrows)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owned_block_round_trips_columns() {
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![4.0, 5.0, 6.0];
        let mv = MultiVec::from_columns(&[&a, &b]);
        assert_eq!(mv.ld(), 3);
        assert_eq!(mv.k(), 2);
        assert_eq!(mv.col(0), &a[..]);
        assert_eq!(mv.col(1), &b[..]);
        assert_eq!(mv.data(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(mv.clone().into_vec(), mv.data());
    }

    #[test]
    fn zeros_and_fill() {
        let mut mv = MultiVec::zeros(4, 2);
        assert_eq!(mv.data(), &[0.0; 8]);
        mv.fill(2.5);
        assert_eq!(mv.col(1), &[2.5; 4]);
        mv.col_mut(0)[3] = -1.0;
        assert_eq!(mv.col(0), &[2.5, 2.5, 2.5, -1.0]);
    }

    #[test]
    fn view_hands_out_disjoint_columns() {
        let mut mv = MultiVec::zeros(5, 3);
        {
            let mut view = mv.view_mut();
            assert_eq!(view.nrows(), 5);
            assert_eq!(view.k(), 3);
            let [c0, c1] = view.cols_mut::<2>(1);
            c0[0] = 1.0;
            c1[4] = 2.0;
        }
        assert_eq!(mv.col(1)[0], 1.0);
        assert_eq!(mv.col(2)[4], 2.0);
    }

    #[test]
    fn sub_rows_offsets_every_column() {
        let mut mv = MultiVec::zeros(6, 2);
        {
            let mut view = mv.view_mut();
            let mut sub = view.sub_rows(2, 3);
            assert_eq!(sub.nrows(), 3);
            sub.col_mut(0)[0] = 7.0;
            sub.col_mut(1)[2] = 8.0;
        }
        assert_eq!(mv.col(0)[2], 7.0);
        assert_eq!(mv.col(1)[4], 8.0);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn mismatched_columns_rejected() {
        let a = vec![1.0, 2.0];
        let b = vec![3.0];
        MultiVec::from_columns(&[&a, &b]);
    }

    #[test]
    #[should_panic(expected = "out of view")]
    fn sub_rows_bounds_checked() {
        let mut mv = MultiVec::zeros(4, 1);
        let mut view = mv.view_mut();
        view.sub_rows(2, 3);
    }
}
