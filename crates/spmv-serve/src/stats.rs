//! Serve-loop statistics: per-request latency and aggregate throughput.
//!
//! One [`ServeStats`] instance is shared between a [`crate::batcher::Batcher`]'s
//! submit path and its service loop; [`ServeStats::snapshot`] folds the counters
//! into a [`ServeReport`] at any time without stopping the service.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Histogram bucket ceiling for batch widths (batches wider than this are
/// counted in the last bucket; the engine handles arbitrary `k`).
const K_BUCKETS: usize = 64;

#[derive(Debug)]
struct Inner {
    requests: usize,
    batches: usize,
    /// Useful flops executed (2 per logical nonzero per vector).
    flops: f64,
    /// Time the engine spent inside batched applies.
    busy: Duration,
    latency_sum: Duration,
    latency_max: Duration,
    /// `k_counts[k-1]` = number of batches of width `k` (capped at `K_BUCKETS`).
    k_counts: [usize; K_BUCKETS],
    /// First submission seen (the wall-clock window opens here).
    window_start: Option<Instant>,
    /// Latest batch completion (the window closes here).
    window_end: Option<Instant>,
}

/// Thread-safe serve statistics.
#[derive(Debug)]
pub struct ServeStats {
    inner: Mutex<Inner>,
}

impl Default for ServeStats {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeStats {
    /// Fresh, empty counters.
    pub fn new() -> ServeStats {
        ServeStats {
            inner: Mutex::new(Inner {
                requests: 0,
                batches: 0,
                flops: 0.0,
                busy: Duration::ZERO,
                latency_sum: Duration::ZERO,
                latency_max: Duration::ZERO,
                k_counts: [0; K_BUCKETS],
                window_start: None,
                window_end: None,
            }),
        }
    }

    /// Note a request submission (opens the wall-clock window on first call).
    pub fn record_submit(&self, at: Instant) {
        let mut inner = self.inner.lock().unwrap();
        if inner.window_start.is_none() {
            inner.window_start = Some(at);
        }
    }

    /// Record one executed batch: its width, the useful flops it performed
    /// (`2 · nnz · k`), and the engine execution time.
    pub fn record_batch(&self, k: usize, flops: f64, exec: Duration) {
        let mut inner = self.inner.lock().unwrap();
        inner.batches += 1;
        inner.flops += flops;
        inner.busy += exec;
        inner.k_counts[k.clamp(1, K_BUCKETS) - 1] += 1;
        inner.window_end = Some(Instant::now());
    }

    /// Record one completed request and its submit-to-reply latency.
    pub fn record_request(&self, latency: Duration) {
        let mut inner = self.inner.lock().unwrap();
        inner.requests += 1;
        inner.latency_sum += latency;
        inner.latency_max = inner.latency_max.max(latency);
    }

    /// Fold the counters into a report.
    pub fn snapshot(&self) -> ServeReport {
        let inner = self.inner.lock().unwrap();
        let busy_s = inner.busy.as_secs_f64();
        let wall_s = match (inner.window_start, inner.window_end) {
            (Some(a), Some(b)) => (b - a).as_secs_f64(),
            _ => 0.0,
        };
        ServeReport {
            requests: inner.requests,
            batches: inner.batches,
            avg_batch: if inner.batches == 0 {
                0.0
            } else {
                inner.requests as f64 / inner.batches as f64
            },
            busy_gflops: if busy_s > 0.0 {
                inner.flops / busy_s / 1e9
            } else {
                0.0
            },
            wall_gflops: if wall_s > 0.0 {
                inner.flops / wall_s / 1e9
            } else {
                0.0
            },
            busy_seconds: busy_s,
            wall_seconds: wall_s,
            mean_latency: if inner.requests == 0 {
                Duration::ZERO
            } else {
                inner.latency_sum / inner.requests as u32
            },
            max_latency: inner.latency_max,
            batch_k_histogram: inner
                .k_counts
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| (i + 1, c))
                .collect(),
        }
    }
}

/// A point-in-time summary of a serve loop.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Requests completed.
    pub requests: usize,
    /// SpMM batches executed.
    pub batches: usize,
    /// Mean batch width (requests / batches).
    pub avg_batch: f64,
    /// Aggregate GFLOP/s over engine busy time (the kernel-side rate).
    pub busy_gflops: f64,
    /// Aggregate GFLOP/s over the wall-clock window from the first submission
    /// to the latest completion (the client-side rate, including waits).
    pub wall_gflops: f64,
    /// Engine busy seconds.
    pub busy_seconds: f64,
    /// Wall-clock window seconds.
    pub wall_seconds: f64,
    /// Mean submit-to-reply latency.
    pub mean_latency: Duration,
    /// Worst submit-to-reply latency.
    pub max_latency: Duration,
    /// `(k, batches)` pairs for every batch width observed.
    pub batch_k_histogram: Vec<(usize, usize)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_report_zeros() {
        let report = ServeStats::new().snapshot();
        assert_eq!(report.requests, 0);
        assert_eq!(report.batches, 0);
        assert_eq!(report.avg_batch, 0.0);
        assert_eq!(report.busy_gflops, 0.0);
        assert_eq!(report.wall_gflops, 0.0);
        assert!(report.batch_k_histogram.is_empty());
    }

    #[test]
    fn counters_fold_into_report() {
        let stats = ServeStats::new();
        let t0 = Instant::now();
        stats.record_submit(t0);
        stats.record_batch(4, 8.0e9, Duration::from_secs(1));
        stats.record_batch(2, 2.0e9, Duration::from_secs(1));
        for _ in 0..6 {
            stats.record_request(Duration::from_millis(10));
        }
        stats.record_request(Duration::from_millis(40));
        let report = stats.snapshot();
        assert_eq!(report.requests, 7);
        assert_eq!(report.batches, 2);
        assert!((report.avg_batch - 3.5).abs() < 1e-12);
        assert!((report.busy_gflops - 5.0).abs() < 1e-9);
        assert!(report.wall_gflops > 0.0);
        assert_eq!(report.max_latency, Duration::from_millis(40));
        assert_eq!(report.mean_latency, Duration::from_millis(100) / 7);
        assert_eq!(report.batch_k_histogram, vec![(2, 1), (4, 1)]);
    }

    #[test]
    fn oversized_batches_clamp_into_last_bucket() {
        let stats = ServeStats::new();
        stats.record_batch(1000, 1.0, Duration::from_micros(1));
        let report = stats.snapshot();
        assert_eq!(report.batch_k_histogram, vec![(K_BUCKETS, 1)]);
    }
}
