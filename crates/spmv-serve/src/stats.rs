//! Serve-loop statistics: per-request latency and aggregate throughput.
//!
//! One [`ServeStats`] instance is shared between a [`crate::batcher::Batcher`]'s
//! submit path and its service loop; [`ServeStats::snapshot`] folds the counters
//! into a [`ServeReport`] at any time without stopping the service.
//!
//! Rebuilt on the lock-free `spmv-obs` primitives: every record path is a
//! handful of relaxed atomic updates (no mutex, no allocation), so a hot
//! submit path never serializes against the service loop or a metrics
//! scrape. Latency, queue-wait and batch-occupancy distributions are
//! log-bucketed [`Histogram`]s with p50/p90/p99 estimates; the exact
//! per-width batch histogram the report always carried is kept as a fixed
//! array of counters.

use spmv_obs::{saturating_nanos, Counter, Histogram, HistogramSnapshot};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Histogram bucket ceiling for batch widths (batches wider than this are
/// counted in the last bucket; the engine handles arbitrary `k`).
const K_BUCKETS: usize = 64;

/// Thread-safe, lock-free serve statistics.
#[derive(Debug)]
pub struct ServeStats {
    /// Instants fold to nanosecond offsets from this construction-time origin.
    origin: Instant,
    batches: Counter,
    /// Useful flops executed (2 per logical nonzero per vector), f64 bits.
    flops: AtomicU64,
    /// Nanoseconds the engine spent inside batched applies.
    busy_ns: Counter,
    /// Submit-to-reply latency (ns); count doubles as the request counter.
    latency: Histogram,
    /// Submit-to-drain wait (ns): how long requests sat in the queue before a
    /// batch picked them up.
    queue_wait: Histogram,
    /// Log-bucketed batch width, for quantile estimates.
    occupancy: Histogram,
    /// `k_counts[k-1]` = batches of width `k` (capped at `K_BUCKETS`), exact.
    k_counts: [Counter; K_BUCKETS],
    /// Requests refused by admission control (bounded queue full, load-shed).
    sheds: Counter,
    /// Batches whose execution panicked; their requests got typed errors.
    failed_batches: Counter,
    /// First submission offset (ns from origin; `u64::MAX` = window unopened).
    window_start: AtomicU64,
    /// Latest batch completion offset (ns from origin; 0 = none yet).
    window_end: AtomicU64,
}

impl Default for ServeStats {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeStats {
    /// Fresh, empty counters.
    pub fn new() -> ServeStats {
        ServeStats {
            origin: Instant::now(),
            batches: Counter::new(),
            flops: AtomicU64::new(0f64.to_bits()),
            busy_ns: Counter::new(),
            latency: Histogram::new(),
            queue_wait: Histogram::new(),
            occupancy: Histogram::new(),
            k_counts: std::array::from_fn(|_| Counter::new()),
            sheds: Counter::new(),
            failed_batches: Counter::new(),
            window_start: AtomicU64::new(u64::MAX),
            window_end: AtomicU64::new(0),
        }
    }

    fn offset_ns(&self, at: Instant) -> u64 {
        // Saturating, not truncating: a >584-year offset clamps to u64::MAX
        // instead of wrapping into a small (window-reopening) value.
        saturating_nanos(at.saturating_duration_since(self.origin))
    }

    /// Note a request submission (opens the wall-clock window on first call).
    pub fn record_submit(&self, at: Instant) {
        self.window_start
            .fetch_min(self.offset_ns(at), Ordering::Relaxed);
    }

    /// Record one executed batch: its width, the useful flops it performed
    /// (`2 · nnz · k`), and the engine execution time.
    pub fn record_batch(&self, k: usize, flops: f64, exec: Duration) {
        self.batches.inc();
        self.flops
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                Some((f64::from_bits(bits) + flops).to_bits())
            })
            .ok();
        self.busy_ns.add(saturating_nanos(exec));
        self.occupancy.record(k as u64);
        self.k_counts[k.clamp(1, K_BUCKETS) - 1].inc();
        self.window_end
            .fetch_max(self.offset_ns(Instant::now()), Ordering::Relaxed);
        spmv_obs::trace::trace(
            spmv_obs::TraceKind::BatchExec,
            k as u64,
            saturating_nanos(exec),
        );
    }

    /// Record one completed request and its submit-to-reply latency.
    pub fn record_request(&self, latency: Duration) {
        self.latency.record(saturating_nanos(latency));
    }

    /// Record how long one request waited in the queue before its batch
    /// started executing.
    pub fn record_queue_wait(&self, wait: Duration) {
        self.queue_wait.record(saturating_nanos(wait));
    }

    /// Record one load-shed: a request refused because the bounded queue in
    /// front of this matrix was full.
    pub fn record_shed(&self) {
        self.sheds.inc();
    }

    /// Record one batch whose execution panicked (its requests were failed
    /// with typed errors instead of results).
    pub fn record_batch_failure(&self) {
        self.failed_batches.inc();
    }

    /// The submit-to-reply latency distribution (nanoseconds).
    pub fn latency_histogram(&self) -> HistogramSnapshot {
        self.latency.snapshot()
    }

    /// The submit-to-drain queue-wait distribution (nanoseconds).
    pub fn queue_wait_histogram(&self) -> HistogramSnapshot {
        self.queue_wait.snapshot()
    }

    /// The batch-occupancy (width) distribution.
    pub fn occupancy_histogram(&self) -> HistogramSnapshot {
        self.occupancy.snapshot()
    }

    /// Requests completed so far.
    pub fn requests(&self) -> u64 {
        self.latency.count()
    }

    /// Batches executed so far.
    pub fn batches(&self) -> u64 {
        self.batches.get()
    }

    /// Requests refused by admission control so far.
    pub fn sheds(&self) -> u64 {
        self.sheds.get()
    }

    /// Batches that panicked during execution so far.
    pub fn failed_batches(&self) -> u64 {
        self.failed_batches.get()
    }

    /// Fold the counters into a report.
    pub fn snapshot(&self) -> ServeReport {
        let latency = self.latency.snapshot();
        let queue_wait = self.queue_wait.snapshot();
        let requests = latency.count as usize;
        let batches = self.batches.get() as usize;
        let flops = f64::from_bits(self.flops.load(Ordering::Relaxed));
        let busy_s = self.busy_ns.get() as f64 / 1e9;
        let start = self.window_start.load(Ordering::Relaxed);
        let end = self.window_end.load(Ordering::Relaxed);
        let wall_s = if start != u64::MAX && end > start {
            (end - start) as f64 / 1e9
        } else {
            0.0
        };
        ServeReport {
            requests,
            batches,
            sheds: self.sheds.get() as usize,
            failed_batches: self.failed_batches.get() as usize,
            avg_batch: if batches == 0 {
                0.0
            } else {
                requests as f64 / batches as f64
            },
            busy_gflops: if busy_s > 0.0 {
                flops / busy_s / 1e9
            } else {
                0.0
            },
            wall_gflops: if wall_s > 0.0 {
                flops / wall_s / 1e9
            } else {
                0.0
            },
            busy_seconds: busy_s,
            wall_seconds: wall_s,
            mean_latency: if requests == 0 {
                Duration::ZERO
            } else {
                Duration::from_nanos(latency.sum / requests as u64)
            },
            max_latency: Duration::from_nanos(latency.max),
            latency_p50: Duration::from_nanos(latency.p50()),
            latency_p90: Duration::from_nanos(latency.p90()),
            latency_p99: Duration::from_nanos(latency.p99()),
            mean_queue_wait: queue_wait
                .sum
                .checked_div(queue_wait.count)
                .map(Duration::from_nanos)
                .unwrap_or(Duration::ZERO),
            queue_wait_p99: Duration::from_nanos(queue_wait.p99()),
            batch_k_histogram: self
                .k_counts
                .iter()
                .enumerate()
                .filter(|(_, c)| c.get() > 0)
                .map(|(i, c)| (i + 1, c.get() as usize))
                .collect(),
        }
    }
}

/// A point-in-time summary of a serve loop.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Requests completed.
    pub requests: usize,
    /// SpMM batches executed.
    pub batches: usize,
    /// Requests refused by admission control (bounded queue full).
    pub sheds: usize,
    /// Batches whose execution panicked (requests failed with typed errors).
    pub failed_batches: usize,
    /// Mean batch width (requests / batches).
    pub avg_batch: f64,
    /// Aggregate GFLOP/s over engine busy time (the kernel-side rate).
    pub busy_gflops: f64,
    /// Aggregate GFLOP/s over the wall-clock window from the first submission
    /// to the latest completion (the client-side rate, including waits).
    pub wall_gflops: f64,
    /// Engine busy seconds.
    pub busy_seconds: f64,
    /// Wall-clock window seconds.
    pub wall_seconds: f64,
    /// Mean submit-to-reply latency.
    pub mean_latency: Duration,
    /// Worst submit-to-reply latency.
    pub max_latency: Duration,
    /// Median submit-to-reply latency (log-bucket estimate).
    pub latency_p50: Duration,
    /// 90th-percentile submit-to-reply latency (log-bucket estimate).
    pub latency_p90: Duration,
    /// 99th-percentile submit-to-reply latency (log-bucket estimate).
    pub latency_p99: Duration,
    /// Mean submit-to-drain queue wait.
    pub mean_queue_wait: Duration,
    /// 99th-percentile submit-to-drain queue wait (log-bucket estimate).
    pub queue_wait_p99: Duration,
    /// `(k, batches)` pairs for every batch width observed.
    pub batch_k_histogram: Vec<(usize, usize)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_report_zeros() {
        let report = ServeStats::new().snapshot();
        assert_eq!(report.requests, 0);
        assert_eq!(report.batches, 0);
        assert_eq!(report.avg_batch, 0.0);
        assert_eq!(report.busy_gflops, 0.0);
        assert_eq!(report.wall_gflops, 0.0);
        assert_eq!(report.latency_p99, Duration::ZERO);
        assert!(report.batch_k_histogram.is_empty());
    }

    #[test]
    fn counters_fold_into_report() {
        let stats = ServeStats::new();
        let t0 = Instant::now();
        stats.record_submit(t0);
        stats.record_batch(4, 8.0e9, Duration::from_secs(1));
        stats.record_batch(2, 2.0e9, Duration::from_secs(1));
        for _ in 0..6 {
            stats.record_request(Duration::from_millis(10));
        }
        stats.record_request(Duration::from_millis(40));
        let report = stats.snapshot();
        assert_eq!(report.requests, 7);
        assert_eq!(report.batches, 2);
        assert!((report.avg_batch - 3.5).abs() < 1e-12);
        assert!((report.busy_gflops - 5.0).abs() < 1e-9);
        assert!(report.wall_gflops > 0.0);
        assert_eq!(report.max_latency, Duration::from_millis(40));
        assert_eq!(report.mean_latency, Duration::from_millis(100) / 7);
        assert_eq!(report.batch_k_histogram, vec![(2, 1), (4, 1)]);
        // Quantiles come from log buckets: estimates, never below the sample.
        assert!(report.latency_p50 >= Duration::from_millis(10));
        assert!(report.latency_p99 >= Duration::from_millis(40));
    }

    #[test]
    fn oversized_batches_clamp_into_last_bucket() {
        let stats = ServeStats::new();
        stats.record_batch(1000, 1.0, Duration::from_micros(1));
        let report = stats.snapshot();
        assert_eq!(report.batch_k_histogram, vec![(K_BUCKETS, 1)]);
    }

    #[test]
    fn queue_wait_folds_into_report() {
        let stats = ServeStats::new();
        stats.record_queue_wait(Duration::from_micros(100));
        stats.record_queue_wait(Duration::from_micros(300));
        let report = stats.snapshot();
        assert_eq!(report.mean_queue_wait, Duration::from_micros(200));
        assert!(report.queue_wait_p99 >= Duration::from_micros(300));
        let hist = stats.queue_wait_histogram();
        assert_eq!(hist.count, 2);
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        use std::sync::Arc;
        let stats = Arc::new(ServeStats::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let stats = Arc::clone(&stats);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        stats.record_request(Duration::from_micros(5));
                        stats.record_batch(2, 4.0, Duration::from_nanos(50));
                    }
                })
            })
            .collect();
        for j in handles {
            j.join().unwrap();
        }
        let report = stats.snapshot();
        assert_eq!(report.requests, 4000);
        assert_eq!(report.batches, 4000);
        assert_eq!(report.batch_k_histogram, vec![(2, 4000)]);
    }
}
