//! Stateful solver sessions over served matrices.
//!
//! A [`SolverSession`] is a long-lived conjugate-gradient solve bound to one
//! [`ServedMatrix`]: the client creates it with a right-hand side, drives it
//! with `iterate(n)` batches, polls the recurrence residual, and extracts the
//! solution — the solver vectors stay resident in a dedicated
//! [`SpmvEngine`](spmv_parallel::SpmvEngine) between calls, so every batch of
//! iterations runs the fused single-barrier CG epochs with zero per-call
//! allocation or replanning.
//!
//! The session engine is built from the served matrix's *current* tune plan
//! but is otherwise independent of the serving engine: SpMV/SpMM traffic on
//! the registry never contends with an in-flight solve. When the registry
//! retunes the matrix ([`ServedMatrix::swap_plan`] /
//! [`MatrixRegistry::retune_background`]), the session notices on its next
//! `iterate`/`solve` call (via the served retune counter) and hot-swaps its
//! engine onto the winning plan with [`FusedCg::swap_engine`] — the resident
//! `(x, r, p)` state is carried across and the solve continues without
//! restarting.

use std::sync::Arc;

use spmv_parallel::engine::SpmvEngine;
use spmv_parallel::solver::{FusedCg, RUN_BATCH};

use crate::registry::{MatrixRegistry, ServedMatrix};
use crate::{Result, ServeError};

/// A stateful CG solve over a [`ServedMatrix`], with resident vectors and
/// retune-under-iteration.
///
/// Created via [`ServedMatrix::solver_session`] or
/// [`MatrixRegistry::solver_session`]. Not `Sync`: a session is a
/// single-client object (each client owns its own solve state); the shared,
/// concurrent surface is the registry it was created from.
pub struct SolverSession {
    served: Arc<ServedMatrix>,
    cg: FusedCg,
    /// Value of [`ServedMatrix::retune_count`] the session engine's plan came
    /// from; a mismatch on entry to `iterate`/`solve` triggers a resync.
    engine_retunes: u64,
    resyncs: u64,
}

impl SolverSession {
    pub(crate) fn create(served: Arc<ServedMatrix>, b: &[f64]) -> Result<SolverSession> {
        if served.nrows() != served.ncols() {
            return Err(ServeError::NotSquare {
                nrows: served.nrows(),
                ncols: served.ncols(),
            });
        }
        if b.len() != served.ncols() {
            return Err(ServeError::DimensionMismatch {
                expected: served.ncols(),
                found: b.len(),
            });
        }
        let engine = served.build_solver_engine()?;
        let engine_retunes = served.retune_count();
        served.note_solver_session();
        Ok(SolverSession {
            served,
            cg: FusedCg::new(engine, b),
            engine_retunes,
            resyncs: 0,
        })
    }

    /// The served matrix this session solves against.
    pub fn matrix(&self) -> &Arc<ServedMatrix> {
        &self.served
    }

    /// If the served matrix was retuned since this session's engine was
    /// built, rebuild on the current plan and hot-swap it under the resident
    /// state. Returns `true` when a swap happened.
    ///
    /// Called automatically on entry to [`iterate`](Self::iterate) and
    /// [`solve`](Self::solve); exposed for clients that want to resync at a
    /// specific point (e.g. right after [`MatrixRegistry::retune`]).
    pub fn resync(&mut self) -> Result<bool> {
        let current = self.served.retune_count();
        if current == self.engine_retunes {
            return Ok(false);
        }
        let replacement = self.served.build_solver_engine()?;
        drop(self.cg.swap_engine(replacement));
        self.engine_retunes = current;
        self.resyncs += 1;
        self.served.note_solver_resync();
        spmv_obs::trace::trace(
            spmv_obs::TraceKind::SolverResync,
            self.served.fingerprint().hash,
            self.resyncs,
        );
        Ok(true)
    }

    /// Run up to `steps` fused CG iterations and return the recurrence
    /// residual norm `‖r‖` afterwards. Iterations run in batched epochs (one
    /// engine round-trip per [`RUN_BATCH`] iterations, bit-identical to
    /// single-stepping); the loop stops early if the recurrence hits exact
    /// zero (further steps would divide by it).
    pub fn iterate(&mut self, steps: u64) -> Result<f64> {
        self.resync()?;
        let before = self.cg.iterations();
        let mut left = steps;
        while left > 0 {
            if self.cg.rr() == 0.0 || !self.cg.rr().is_finite() {
                break;
            }
            let batch = left.min(RUN_BATCH);
            self.cg.iterate(batch);
            left -= batch;
        }
        self.served
            .note_solver_iterations(self.cg.iterations().saturating_sub(before));
        Ok(self.cg.residual_norm())
    }

    /// Iterate until `‖r‖ ≤ tol` or `max_iters` additional iterations, and
    /// return how many iterations this call ran.
    pub fn solve(&mut self, tol: f64, max_iters: u64) -> Result<u64> {
        self.resync()?;
        let ran = self.cg.run(tol, max_iters);
        self.served.note_solver_iterations(ran);
        Ok(ran)
    }

    /// Restart the session on a new right-hand side (`x ← 0`), keeping the
    /// resident engine.
    pub fn reset(&mut self, b: &[f64]) -> Result<()> {
        if b.len() != self.served.ncols() {
            return Err(ServeError::DimensionMismatch {
                expected: self.served.ncols(),
                found: b.len(),
            });
        }
        self.cg.reinit(b);
        Ok(())
    }

    /// Recurrence residual norm `‖r‖` of the current iterate.
    pub fn residual_norm(&self) -> f64 {
        self.cg.residual_norm()
    }

    /// Squared recurrence residual `rᵀr` (the quantity the fused epochs carry).
    pub fn rr(&self) -> f64 {
        self.cg.rr()
    }

    /// Total CG iterations across the session (survives resyncs and resets
    /// do not: [`reset`](Self::reset) zeroes it with the state).
    pub fn iterations(&self) -> u64 {
        self.cg.iterations()
    }

    /// How many times the session hot-swapped onto a retuned plan.
    pub fn resyncs(&self) -> u64 {
        self.resyncs
    }

    /// The residual-curve checkpoints `(iteration, rᵀr)` recorded so far —
    /// thinned to a bounded set ([`spmv_parallel::solver::CHECKPOINT_CAP`]),
    /// always ending at the current iterate.
    pub fn residual_checkpoints(&self) -> &[(u64, f64)] {
        self.cg.residual_checkpoints()
    }

    /// Borrow the current iterate `x` (resident; no copy).
    pub fn solution(&self) -> &[f64] {
        self.cg.solution()
    }

    /// Extract an owned copy of the current iterate `x`.
    pub fn extract(&self) -> Vec<f64> {
        self.cg.solution().to_vec()
    }
}

impl std::fmt::Debug for SolverSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolverSession")
            .field("matrix", &self.served.name())
            .field("iterations", &self.iterations())
            .field("residual_norm", &self.residual_norm())
            .field("resyncs", &self.resyncs)
            .finish()
    }
}

impl ServedMatrix {
    /// Open a stateful CG solver session on this matrix with right-hand side
    /// `b` (`x₀ = 0`). The matrix must be square.
    pub fn solver_session(self: &Arc<Self>, b: &[f64]) -> Result<SolverSession> {
        SolverSession::create(Arc::clone(self), b)
    }

    /// Build a fresh engine on the current plan for a solver session,
    /// honouring the registry's affinity policy.
    pub(crate) fn build_solver_engine(&self) -> Result<SpmvEngine> {
        Ok(SpmvEngine::from_plan_with_affinity(
            self.csr_arc(),
            &self.plan(),
            self.affinity_policy(),
        )?)
    }
}

impl MatrixRegistry {
    /// Open a [`SolverSession`] on the named matrix. Fails with
    /// [`ServeError::UnknownMatrix`] if the name is not registered,
    /// [`ServeError::NotSquare`] if the matrix cannot host CG, and
    /// [`ServeError::DimensionMismatch`] if `b` has the wrong length.
    pub fn solver_session(&self, name: &str, b: &[f64]) -> Result<SolverSession> {
        let served = self
            .get(name)
            .ok_or_else(|| ServeError::UnknownMatrix(name.to_string()))?;
        served.solver_session(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmv_core::tuning::TuningConfig;
    use spmv_testutil::{assert_solved, spd_system};

    fn registry(nthreads: usize) -> MatrixRegistry {
        MatrixRegistry::new(nthreads, TuningConfig::full())
    }

    #[test]
    fn session_converges_to_known_solution() {
        let sys = spd_system(80, 5);
        let reg = registry(4);
        reg.insert("spd", &sys.matrix).unwrap();
        let mut session = reg.solver_session("spd", &sys.rhs).unwrap();
        let ran = session.solve(1e-11, 600).unwrap();
        assert!(ran > 0 && ran < 600, "ran {ran} iterations");
        assert!(session.residual_norm() <= 1e-11);
        assert_solved(&sys, &session.extract(), 1e-8, "registry session");
        assert_eq!(session.resyncs(), 0);
    }

    #[test]
    fn session_iterate_batches_match_one_shot_run() {
        let sys = spd_system(48, 11);
        let reg = registry(3);
        let served = reg.insert("spd", &sys.matrix).unwrap();
        let mut batched = served.solver_session(&sys.rhs).unwrap();
        let mut oneshot = served.solver_session(&sys.rhs).unwrap();
        for _ in 0..6 {
            batched.iterate(5).unwrap();
        }
        oneshot.iterate(30).unwrap();
        assert_eq!(batched.iterations(), oneshot.iterations());
        assert_eq!(batched.rr().to_bits(), oneshot.rr().to_bits());
        assert_eq!(
            batched.solution(),
            oneshot.solution(),
            "same plan, same step count → bit-identical iterate"
        );
    }

    #[test]
    fn session_resyncs_after_retune_and_converges() {
        let sys = spd_system(64, 17);
        // Insert on a deliberately weak plan so the retune below changes it.
        let reg = MatrixRegistry::new(4, TuningConfig::naive());
        reg.insert("spd", &sys.matrix).unwrap();
        let mut session = reg.solver_session("spd", &sys.rhs).unwrap();
        session.iterate(5).unwrap();
        assert_eq!(session.resyncs(), 0);

        // Registry-side hot swap: the serving engine moves to a new plan.
        let served = reg.get("spd").unwrap();
        let better = spmv_core::TunePlan::new(&sys.matrix, 4, &TuningConfig::full());
        served.swap_plan(better).unwrap();
        assert_eq!(served.retune_count(), 1);

        // The session notices on its next batch, swaps mid-solve, and the
        // carried state still converges to the true solution.
        session.iterate(5).unwrap();
        assert_eq!(session.resyncs(), 1);
        assert!(session.iterations() >= 10);
        session.solve(1e-11, 600).unwrap();
        assert_solved(&sys, &session.extract(), 1e-8, "after mid-session retune");
        // No further swaps once the plan is stable.
        session.iterate(1).unwrap();
        assert_eq!(session.resyncs(), 1);
    }

    #[test]
    fn session_validation_errors() {
        let sys = spd_system(12, 3);
        let reg = registry(2);
        reg.insert("spd", &sys.matrix).unwrap();
        assert!(matches!(
            reg.solver_session("nope", &sys.rhs),
            Err(ServeError::UnknownMatrix(_))
        ));
        assert!(matches!(
            reg.solver_session("spd", &sys.rhs[..5]),
            Err(ServeError::DimensionMismatch {
                expected: 12,
                found: 5
            })
        ));
        let rect = spmv_core::CsrMatrix::from_coo(
            &spmv_core::formats::CooMatrix::from_triplets(2, 3, vec![(0, 0, 1.0)]).unwrap(),
        );
        reg.insert("rect", &rect).unwrap();
        assert!(matches!(
            reg.solver_session("rect", &[1.0, 2.0, 3.0]),
            Err(ServeError::NotSquare { nrows: 2, ncols: 3 })
        ));
    }

    #[test]
    fn session_reset_restarts_on_new_rhs() {
        let sys = spd_system(40, 23);
        let reg = registry(2);
        reg.insert("spd", &sys.matrix).unwrap();
        let mut session = reg.solver_session("spd", &sys.rhs).unwrap();
        session.solve(1e-11, 400).unwrap();
        // New RHS: 2·b solves to 2·x*.
        let b2: Vec<f64> = sys.rhs.iter().map(|v| 2.0 * v).collect();
        session.reset(&b2).unwrap();
        assert_eq!(session.iterations(), 0);
        session.solve(1e-11, 400).unwrap();
        let expected: Vec<f64> = sys.solution.iter().map(|v| 2.0 * v).collect();
        let worst = session
            .solution()
            .iter()
            .zip(&expected)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(worst < 1e-8, "worst component error {worst}");
        assert!(matches!(
            session.reset(&[1.0]),
            Err(ServeError::DimensionMismatch { .. })
        ));
    }
}
