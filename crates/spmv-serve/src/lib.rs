//! # spmv-serve
//!
//! The batching SpMV **service layer**: the subsystem that turns tuned matrices
//! into a long-running, request-serving system.
//!
//! The paper (and `spmv-core`) optimize one `y ← y + A·x` for one right-hand
//! side, where the structure's *index traffic* is the dominant cost. A serving
//! workload — many independent clients asking for products against a small set
//! of hot matrices — presents the same matrix with many vectors concurrently,
//! and that index traffic amortizes perfectly if the requests are applied
//! together. This crate does exactly that:
//!
//! * [`registry::MatrixRegistry`] — named matrices, each carrying its
//!   [`spmv_core::tuning::plan::TunePlan`] (loadable/savable via the plain-text
//!   profile format) and a running, fully tuned
//!   [`spmv_parallel::SpmvEngine`].
//! * [`batcher::Batcher`] — coalesces concurrent single-vector requests into
//!   multi-vector (SpMM) batches under a configurable max-batch / max-wait
//!   policy, then answers every request from the batched result. Because the
//!   SpMM kernels are bit-identical per vector to the tuned SpMV path, clients
//!   cannot observe whether their request was batched.
//! * [`solver::SolverSession`] — stateful fused-CG solves bound to a served
//!   matrix: resident vectors between `iterate(n)` batches, single-barrier
//!   iteration epochs, and automatic hot-swap onto retuned plans mid-solve.
//! * [`stats::ServeStats`] — per-request latency and aggregate GFLOP/s
//!   accounting for the serve loop.
//!
//! The registry composes with the measured autotuning pipeline of
//! `spmv-core`: [`MatrixRegistry::with_budget`] turns inserts into measured
//! whole-plan searches, [`MatrixRegistry::with_cache`] persists winners in a
//! fingerprint-keyed [`TuneCache`] so known matrices skip the search, and
//! [`MatrixRegistry::retune_background`] re-searches a live matrix off the
//! serving path and hot-swaps the winning engine in atomically.
//!
//! ```no_run
//! use spmv_core::formats::{CooMatrix, CsrMatrix};
//! use spmv_core::tuning::TuningConfig;
//! use spmv_serve::{BatchPolicy, Batcher, MatrixRegistry};
//!
//! let registry = MatrixRegistry::new(4, TuningConfig::full());
//! let csr = CsrMatrix::from_coo(&CooMatrix::from_triplets(2, 2, vec![(0, 0, 1.0)]).unwrap());
//! let served = registry.insert("ads-ctr", &csr).unwrap();
//! let batcher = Batcher::spawn(served, BatchPolicy::default());
//! let y = batcher.apply(vec![1.0, 2.0]).unwrap();
//! assert_eq!(y, vec![1.0, 0.0]);
//! ```

pub mod batcher;
pub mod registry;
pub mod solver;
pub mod stats;

pub use batcher::{BatchPolicy, Batcher, Ticket};
pub use registry::{MatrixRegistry, ServedMatrix};
pub use solver::SolverSession;
pub use spmv_core::tuning::autotune::{MatrixFingerprint, SearchBudget, TuneCache};
pub use stats::{ServeReport, ServeStats};

use std::fmt;

/// Errors of the service layer.
#[derive(Debug)]
pub enum ServeError {
    /// A request vector's length does not match the matrix's column count.
    DimensionMismatch {
        /// Expected length (the matrix's `ncols`).
        expected: usize,
        /// Length actually submitted.
        found: usize,
    },
    /// The batcher (or the reply channel) was shut down before the request
    /// completed.
    Closed,
    /// The batch this request was served in panicked during execution; the
    /// queue stays usable and the request may be retried.
    BatchPanicked,
    /// Admission control refused the request: the bounded queue in front of
    /// the matrix is full. Retry after backing off.
    Overloaded {
        /// Requests already waiting when the submit was refused.
        pending: usize,
    },
    /// A matrix with this name is already registered.
    AlreadyRegistered(String),
    /// No matrix with this name is registered.
    UnknownMatrix(String),
    /// A solver session was requested on a non-square matrix.
    NotSquare {
        /// Row count of the offending matrix.
        nrows: usize,
        /// Column count of the offending matrix.
        ncols: usize,
    },
    /// Building the tuned engine (or validating a plan) failed.
    Build(spmv_core::error::Error),
    /// Reading or writing a tune-plan profile failed.
    Profile(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::DimensionMismatch { expected, found } => {
                write!(
                    f,
                    "request vector has length {found}, matrix expects {expected}"
                )
            }
            ServeError::Closed => write!(f, "the batcher is shut down"),
            ServeError::BatchPanicked => {
                write!(
                    f,
                    "the batch serving this request panicked during execution"
                )
            }
            ServeError::Overloaded { pending } => {
                write!(f, "queue full ({pending} requests pending), retry later")
            }
            ServeError::AlreadyRegistered(name) => {
                write!(f, "matrix '{name}' is already registered")
            }
            ServeError::UnknownMatrix(name) => write!(f, "no matrix named '{name}'"),
            ServeError::NotSquare { nrows, ncols } => {
                write!(
                    f,
                    "solver sessions need a square matrix, got {nrows}x{ncols}"
                )
            }
            ServeError::Build(e) => write!(f, "engine build failed: {e}"),
            ServeError::Profile(e) => write!(f, "tune-plan profile error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<spmv_core::error::Error> for ServeError {
    fn from(e: spmv_core::error::Error) -> Self {
        ServeError::Build(e)
    }
}

/// Result alias for the service layer.
pub type Result<T> = std::result::Result<T, ServeError>;
