//! Request coalescing: concurrent single-vector requests → SpMM batches.
//!
//! Clients submit ordinary `y = A·x` requests one vector at a time. The batcher
//! queues them and serves the queue in multi-vector batches under a simple
//! policy: execute as soon as `max_batch` requests are waiting, or when the
//! oldest waiting request has aged past `max_wait` — the standard
//! latency/throughput knob of a batching service. Each batch is one
//! [`SpmvEngine::spmm`](spmv_parallel::SpmvEngine) call, so the index traffic of
//! the matrix is read once for the whole batch; and because the SpMM kernels
//! are bit-identical per vector to the tuned SpMV path, batching is invisible
//! to clients in every bit of the result.
//!
//! Two driving modes:
//!
//! * [`Batcher::spawn`] — a background service thread owns the loop (the
//!   production shape). Dropping the batcher flushes the queue and joins it.
//! * [`Batcher::manual`] — no thread; the caller drives with
//!   [`Batcher::run_once`]. Deterministic, used by tests and benchmarks.

use crate::registry::ServedMatrix;
use crate::stats::ServeStats;
use crate::{Result, ServeError};
use spmv_core::multivec::MultiVec;
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// When a batch is cut: at `max_batch` waiting requests, or when the oldest
/// waiting request has aged `max_wait`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Maximum requests coalesced into one SpMM batch.
    pub max_batch: usize,
    /// Maximum time the oldest request may wait before the batch is cut anyway.
    pub max_wait: Duration,
}

impl Default for BatchPolicy {
    /// Eight-wide batches (the widest generated microkernel chunk) with a
    /// 200 µs age bound.
    fn default() -> Self {
        BatchPolicy {
            max_batch: 8,
            max_wait: Duration::from_micros(200),
        }
    }
}

/// One queued request.
struct Request {
    x: Vec<f64>,
    reply: mpsc::Sender<Vec<f64>>,
    submitted: Instant,
}

/// A handle to a submitted request's eventual result.
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Vec<f64>>,
}

impl Ticket {
    /// Block until the result arrives. Errors with [`ServeError::Closed`] if the
    /// batcher shut down before serving the request.
    pub fn wait(self) -> Result<Vec<f64>> {
        self.rx.recv().map_err(|_| ServeError::Closed)
    }

    /// Non-blocking poll: `Some(result)` once served.
    pub fn try_wait(&self) -> Option<Vec<f64>> {
        self.rx.try_recv().ok()
    }
}

struct Queue {
    pending: VecDeque<Request>,
    open: bool,
}

struct SharedQueue {
    state: Mutex<Queue>,
    cv: Condvar,
}

/// The batching front-end of one served matrix.
pub struct Batcher {
    matrix: Arc<ServedMatrix>,
    policy: BatchPolicy,
    queue: Arc<SharedQueue>,
    stats: Arc<ServeStats>,
    worker: Option<JoinHandle<()>>,
}

impl Batcher {
    /// Start a batcher with a background service thread.
    pub fn spawn(matrix: Arc<ServedMatrix>, policy: BatchPolicy) -> Batcher {
        let mut batcher = Self::manual(matrix, policy);
        batcher.start_service();
        batcher
    }

    /// A batcher with no service thread: the caller drives it with
    /// [`Batcher::run_once`]. Deterministic batch composition for tests.
    ///
    /// Statistics are shared with the served matrix (see
    /// [`ServedMatrix::serve_stats`]), so a registry-wide metrics scrape sees
    /// the batcher's occupancy and latency histograms without holding a
    /// reference to the batcher itself.
    pub fn manual(matrix: Arc<ServedMatrix>, policy: BatchPolicy) -> Batcher {
        let stats = Arc::clone(matrix.serve_stats());
        Self::with_stats(matrix, policy, stats)
    }

    /// A batcher recording into a **private** [`ServeStats`] instead of the
    /// served matrix's shared instance, so [`Batcher::stats`] reports exactly
    /// this batcher's window — for measurement harnesses that replay several
    /// workloads over one registry and need per-replay reports. No service
    /// thread; call [`Batcher::start_service`] for the production shape.
    pub fn isolated(matrix: Arc<ServedMatrix>, policy: BatchPolicy) -> Batcher {
        Self::with_stats(matrix, policy, Arc::new(ServeStats::new()))
    }

    fn with_stats(
        matrix: Arc<ServedMatrix>,
        policy: BatchPolicy,
        stats: Arc<ServeStats>,
    ) -> Batcher {
        assert!(policy.max_batch > 0, "batch policy needs max_batch >= 1");
        Batcher {
            matrix,
            policy,
            queue: Arc::new(SharedQueue {
                state: Mutex::new(Queue {
                    pending: VecDeque::new(),
                    open: true,
                }),
                cv: Condvar::new(),
            }),
            stats,
            worker: None,
        }
    }

    /// Attach the background service thread to a manually-constructed batcher
    /// (idempotent — a running service is left in place).
    pub fn start_service(&mut self) {
        if self.worker.is_some() {
            return;
        }
        let queue = Arc::clone(&self.queue);
        let matrix = Arc::clone(&self.matrix);
        let stats = Arc::clone(&self.stats);
        let policy = self.policy;
        self.worker = Some(
            std::thread::Builder::new()
                .name(format!("spmv-serve-{}", matrix.name()))
                .spawn(move || service_loop(queue, matrix, policy, stats))
                .expect("spawn batcher service thread"),
        );
    }

    /// The served matrix this batcher fronts.
    pub fn matrix(&self) -> &Arc<ServedMatrix> {
        &self.matrix
    }

    /// The batching policy in force.
    pub fn policy(&self) -> BatchPolicy {
        self.policy
    }

    /// The serve statistics (shared with the service loop).
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// Requests currently waiting.
    pub fn pending(&self) -> usize {
        self.queue.state.lock().unwrap().pending.len()
    }

    /// Enqueue one request, returning a [`Ticket`] for its result.
    pub fn submit(&self, x: Vec<f64>) -> Result<Ticket> {
        if x.len() != self.matrix.ncols() {
            return Err(ServeError::DimensionMismatch {
                expected: self.matrix.ncols(),
                found: x.len(),
            });
        }
        let now = Instant::now();
        let (tx, rx) = mpsc::channel();
        {
            let mut state = self.queue.state.lock().unwrap();
            if !state.open {
                return Err(ServeError::Closed);
            }
            state.pending.push_back(Request {
                x,
                reply: tx,
                submitted: now,
            });
            self.queue.cv.notify_all();
        }
        self.stats.record_submit(now);
        Ok(Ticket { rx })
    }

    /// Blocking convenience: submit and wait.
    pub fn apply(&self, x: Vec<f64>) -> Result<Vec<f64>> {
        self.submit(x)?.wait()
    }

    /// Drain up to `max_batch` currently-waiting requests and serve them as one
    /// SpMM batch *on the calling thread*. Returns the batch width (0 when the
    /// queue was empty). This is the manual driving mode; with a background
    /// service thread it is still safe, but batch composition becomes racy.
    pub fn run_once(&self) -> usize {
        let batch = {
            let mut state = self.queue.state.lock().unwrap();
            drain_batch(&mut state.pending, self.policy.max_batch)
        };
        execute_batch(&self.matrix, batch, &self.stats)
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        {
            let mut state = self.queue.state.lock().unwrap();
            state.open = false;
            self.queue.cv.notify_all();
        }
        if let Some(handle) = self.worker.take() {
            let _ = handle.join();
        }
        // Manual mode (or a panicked service thread): any still-pending requests
        // are dropped here, which disconnects their reply channels and fails
        // outstanding tickets with `Closed`.
    }
}

/// Take up to `max_batch` requests off the front of the queue.
fn drain_batch(pending: &mut VecDeque<Request>, max_batch: usize) -> Vec<Request> {
    let n = pending.len().min(max_batch);
    pending.drain(..n).collect()
}

/// Serve one drained batch: assemble the column-major source block, run one
/// engine SpMM, reply per request, record stats. Returns the batch width.
fn execute_batch(matrix: &ServedMatrix, batch: Vec<Request>, stats: &ServeStats) -> usize {
    let k = batch.len();
    if k == 0 {
        return 0;
    }
    let drained = Instant::now();
    for request in &batch {
        stats.record_queue_wait(drained.saturating_duration_since(request.submitted));
    }
    let columns: Vec<&[f64]> = batch.iter().map(|r| r.x.as_slice()).collect();
    let x = MultiVec::from_columns(&columns);
    let mut y = MultiVec::zeros(matrix.nrows(), k);
    let exec = matrix.spmm_into(&x, &mut y);
    stats.record_batch(k, (2 * matrix.nnz() * k) as f64, exec);
    for (j, request) in batch.into_iter().enumerate() {
        // A client that gave up (dropped its ticket) just discards the send.
        let _ = request.reply.send(y.col(j).to_vec());
        stats.record_request(request.submitted.elapsed());
    }
    k
}

/// The background service loop: wait for work, cut batches per the policy,
/// execute. On shutdown the queue is flushed before the thread exits.
fn service_loop(
    queue: Arc<SharedQueue>,
    matrix: Arc<ServedMatrix>,
    policy: BatchPolicy,
    stats: Arc<ServeStats>,
) {
    loop {
        let batch = {
            let mut state = queue.state.lock().unwrap();
            loop {
                if state.pending.is_empty() {
                    if !state.open {
                        return;
                    }
                    state = queue.cv.wait(state).unwrap();
                    continue;
                }
                if state.pending.len() >= policy.max_batch || !state.open {
                    break;
                }
                let deadline = state.pending.front().unwrap().submitted + policy.max_wait;
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (next, _timeout) = queue.cv.wait_timeout(state, deadline - now).unwrap();
                state = next;
            }
            drain_batch(&mut state.pending, policy.max_batch)
        };
        execute_batch(&matrix, batch, &stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MatrixRegistry;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use spmv_core::formats::{CooMatrix, CsrMatrix};
    use spmv_core::tuning::TuningConfig;

    fn served(seed: u64) -> Arc<ServedMatrix> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut coo = CooMatrix::new(48, 36);
        for _ in 0..500 {
            coo.push(
                rng.random_range(0..48),
                rng.random_range(0..36),
                rng.random_range(-1.0..1.0),
            );
        }
        let csr = CsrMatrix::from_coo(&coo);
        let registry = MatrixRegistry::new(2, TuningConfig::full());
        registry.insert("m", &csr).unwrap()
    }

    fn request_x(j: usize) -> Vec<f64> {
        (0..36)
            .map(|i| ((i * 7 + j * 3) % 23) as f64 * 0.5)
            .collect()
    }

    #[test]
    fn manual_mode_serves_a_burst_as_one_batch() {
        let batcher = Batcher::manual(served(1), BatchPolicy::default());
        let tickets: Vec<Ticket> = (0..8)
            .map(|j| batcher.submit(request_x(j)).unwrap())
            .collect();
        assert_eq!(batcher.pending(), 8);
        assert_eq!(batcher.run_once(), 8);
        for (j, ticket) in tickets.into_iter().enumerate() {
            let y = ticket.wait().unwrap();
            assert_eq!(y, batcher.matrix().spmv_now(&request_x(j)).unwrap());
        }
        let report = batcher.stats().snapshot();
        assert_eq!(report.batches, 1);
        assert_eq!(report.requests, 8);
        assert_eq!(report.batch_k_histogram, vec![(8, 1)]);
    }

    #[test]
    fn manual_mode_splits_oversized_bursts_at_max_batch() {
        let policy = BatchPolicy {
            max_batch: 4,
            ..BatchPolicy::default()
        };
        let batcher = Batcher::manual(served(2), policy);
        let tickets: Vec<Ticket> = (0..10)
            .map(|j| batcher.submit(request_x(j)).unwrap())
            .collect();
        assert_eq!(batcher.run_once(), 4);
        assert_eq!(batcher.run_once(), 4);
        assert_eq!(batcher.run_once(), 2);
        assert_eq!(batcher.run_once(), 0);
        for ticket in tickets {
            ticket.wait().unwrap();
        }
        let report = batcher.stats().snapshot();
        assert_eq!(report.batches, 3);
        assert!((report.avg_batch - 10.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn background_mode_serves_concurrent_clients_correctly() {
        let batcher = Arc::new(Batcher::spawn(
            served(3),
            BatchPolicy {
                max_batch: 4,
                max_wait: Duration::from_millis(1),
            },
        ));
        let handles: Vec<_> = (0..12)
            .map(|j| {
                let batcher = Arc::clone(&batcher);
                std::thread::spawn(move || {
                    let y = batcher.apply(request_x(j)).unwrap();
                    (j, y)
                })
            })
            .collect();
        for handle in handles {
            let (j, y) = handle.join().unwrap();
            assert_eq!(y, batcher.matrix().spmv_now(&request_x(j)).unwrap());
        }
        let report = batcher.stats().snapshot();
        assert_eq!(report.requests, 12);
        assert!(report.batches >= 3, "4-wide cap means at least 3 batches");
        assert!(report.busy_gflops > 0.0);
        assert!(report.max_latency >= report.mean_latency);
    }

    #[test]
    fn shutdown_flushes_pending_requests() {
        let batcher = Batcher::spawn(
            served(4),
            BatchPolicy {
                max_batch: 64,
                max_wait: Duration::from_secs(60), // never cut by age during the test
            },
        );
        let tickets: Vec<Ticket> = (0..5)
            .map(|j| batcher.submit(request_x(j)).unwrap())
            .collect();
        drop(batcher); // close + flush + join
        for ticket in tickets {
            assert!(
                ticket.wait().is_ok(),
                "pending requests are flushed on drop"
            );
        }
    }

    #[test]
    fn submit_after_shutdown_and_bad_lengths_error() {
        let batcher = Batcher::manual(served(5), BatchPolicy::default());
        assert!(matches!(
            batcher.submit(vec![0.0; 7]),
            Err(ServeError::DimensionMismatch { .. })
        ));
        batcher.queue.state.lock().unwrap().open = false;
        assert!(matches!(
            batcher.submit(request_x(0)),
            Err(ServeError::Closed)
        ));
    }

    #[test]
    fn try_wait_polls_without_blocking() {
        let batcher = Batcher::manual(served(6), BatchPolicy::default());
        let ticket = batcher.submit(request_x(0)).unwrap();
        assert!(ticket.try_wait().is_none());
        batcher.run_once();
        assert!(ticket.try_wait().is_some());
    }
}
