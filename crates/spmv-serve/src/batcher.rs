//! Request coalescing: concurrent single-vector requests → SpMM batches.
//!
//! Clients submit ordinary `y = A·x` requests one vector at a time. The batcher
//! queues them and serves the queue in multi-vector batches under a simple
//! policy: execute as soon as `max_batch` requests are waiting, or when the
//! oldest waiting request has aged past `max_wait` — the standard
//! latency/throughput knob of a batching service. Each batch is one
//! [`SpmvEngine::spmm`](spmv_parallel::SpmvEngine) call, so the index traffic of
//! the matrix is read once for the whole batch; and because the SpMM kernels
//! are bit-identical per vector to the tuned SpMV path, batching is invisible
//! to clients in every bit of the result.
//!
//! Two driving modes:
//!
//! * [`Batcher::spawn`] — a background service thread owns the loop (the
//!   production shape). Dropping the batcher flushes the queue and joins it.
//! * [`Batcher::manual`] — no thread; the caller drives with
//!   [`Batcher::run_once`]. Deterministic, used by tests and benchmarks.
//!
//! ## Failure paths
//!
//! A networked front-end cannot afford the in-process luxury of "a panic
//! tears the process down anyway", so the batcher's failure semantics are
//! explicit:
//!
//! * **A panic during batch execution** (a kernel bug, an injected fault) is
//!   caught; every request of that batch fails with a typed
//!   [`ServeError::BatchPanicked`] delivered through its [`Ticket`], the
//!   failure is counted ([`ServeStats::failed_batches`]), and the queue stays
//!   fully usable — later submits are served normally. Queue locks recover
//!   from poisoning (the queue's invariants hold at every await point), so a
//!   panicked peer can never wedge `submit`/`pending`.
//! * **Close** ([`Batcher::close`], or drop) flips the queue shut under the
//!   lock; a concurrent [`Batcher::submit`] observes it atomically and gets
//!   [`ServeError::Closed`] — there is no window in which a request can be
//!   enqueued after the final flush decision. Everything enqueued *before*
//!   close is drained by the service loop's final flush; anything still
//!   pending when the batcher drops (manual mode, or a dead service thread)
//!   is explicitly failed with `Closed` rather than silently dropped.

use crate::registry::ServedMatrix;
use crate::stats::ServeStats;
use crate::{Result, ServeError};
use spmv_core::multivec::MultiVec;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// When a batch is cut: at `max_batch` waiting requests, or when the oldest
/// waiting request has aged `max_wait`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Maximum requests coalesced into one SpMM batch.
    pub max_batch: usize,
    /// Maximum time the oldest request may wait before the batch is cut anyway.
    pub max_wait: Duration,
}

impl Default for BatchPolicy {
    /// Eight-wide batches (the widest generated microkernel chunk) with a
    /// 200 µs age bound.
    fn default() -> Self {
        BatchPolicy {
            max_batch: 8,
            max_wait: Duration::from_micros(200),
        }
    }
}

/// One queued request.
struct Request {
    x: Vec<f64>,
    reply: mpsc::Sender<Result<Vec<f64>>>,
    submitted: Instant,
}

/// A handle to a submitted request's eventual result.
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<Vec<f64>>>,
}

impl Ticket {
    /// Block until the result arrives. Errors with [`ServeError::Closed`] if
    /// the batcher shut down before serving the request, or with the typed
    /// error the service loop recorded (e.g. [`ServeError::BatchPanicked`]).
    pub fn wait(self) -> Result<Vec<f64>> {
        self.rx.recv().map_err(|_| ServeError::Closed)?
    }

    /// Block up to `timeout` for the result: `None` if it has not arrived.
    /// The failure-path analogue of [`Ticket::wait`] for callers that must
    /// bound their stall (a networked front-end, a no-hang test harness).
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<Vec<f64>>> {
        match self.rx.recv_timeout(timeout) {
            Ok(result) => Some(result),
            Err(mpsc::RecvTimeoutError::Timeout) => None,
            Err(mpsc::RecvTimeoutError::Disconnected) => Some(Err(ServeError::Closed)),
        }
    }

    /// Non-blocking poll: `Some(result)` once served (or failed).
    pub fn try_wait(&self) -> Option<Result<Vec<f64>>> {
        match self.rx.try_recv() {
            Ok(result) => Some(result),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(ServeError::Closed)),
        }
    }
}

struct Queue {
    pending: VecDeque<Request>,
    open: bool,
}

struct SharedQueue {
    state: Mutex<Queue>,
    cv: Condvar,
}

impl SharedQueue {
    /// Lock the queue, recovering from poisoning: every mutation of `Queue`
    /// (push/drain/flag flip) leaves it consistent at every panic point, so a
    /// peer that panicked while holding the lock cannot have torn it — and a
    /// served fleet must keep accepting work after one bad batch.
    fn lock(&self) -> MutexGuard<'_, Queue> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn wait<'a>(&self, guard: MutexGuard<'a, Queue>) -> MutexGuard<'a, Queue> {
        self.cv.wait(guard).unwrap_or_else(|e| e.into_inner())
    }

    fn wait_timeout<'a>(
        &self,
        guard: MutexGuard<'a, Queue>,
        dur: Duration,
    ) -> MutexGuard<'a, Queue> {
        self.cv
            .wait_timeout(guard, dur)
            .map(|(g, _)| g)
            .unwrap_or_else(|e| e.into_inner().0)
    }
}

/// The batching front-end of one served matrix.
pub struct Batcher {
    matrix: Arc<ServedMatrix>,
    policy: BatchPolicy,
    queue: Arc<SharedQueue>,
    stats: Arc<ServeStats>,
    /// Fault injection for the failure-path tests: each pending count makes
    /// one batch execution panic inside the caught region.
    fail_injector: Arc<AtomicU64>,
    worker: Option<JoinHandle<()>>,
}

impl Batcher {
    /// Start a batcher with a background service thread.
    pub fn spawn(matrix: Arc<ServedMatrix>, policy: BatchPolicy) -> Batcher {
        let mut batcher = Self::manual(matrix, policy);
        batcher.start_service();
        batcher
    }

    /// A batcher with no service thread: the caller drives it with
    /// [`Batcher::run_once`]. Deterministic batch composition for tests.
    ///
    /// Statistics are shared with the served matrix (see
    /// [`ServedMatrix::serve_stats`]), so a registry-wide metrics scrape sees
    /// the batcher's occupancy and latency histograms without holding a
    /// reference to the batcher itself.
    pub fn manual(matrix: Arc<ServedMatrix>, policy: BatchPolicy) -> Batcher {
        let stats = Arc::clone(matrix.serve_stats());
        Self::with_stats(matrix, policy, stats)
    }

    /// A batcher recording into a **private** [`ServeStats`] instead of the
    /// served matrix's shared instance, so [`Batcher::stats`] reports exactly
    /// this batcher's window — for measurement harnesses that replay several
    /// workloads over one registry and need per-replay reports. No service
    /// thread; call [`Batcher::start_service`] for the production shape.
    pub fn isolated(matrix: Arc<ServedMatrix>, policy: BatchPolicy) -> Batcher {
        Self::with_stats(matrix, policy, Arc::new(ServeStats::new()))
    }

    fn with_stats(
        matrix: Arc<ServedMatrix>,
        policy: BatchPolicy,
        stats: Arc<ServeStats>,
    ) -> Batcher {
        assert!(policy.max_batch > 0, "batch policy needs max_batch >= 1");
        Batcher {
            matrix,
            policy,
            queue: Arc::new(SharedQueue {
                state: Mutex::new(Queue {
                    pending: VecDeque::new(),
                    open: true,
                }),
                cv: Condvar::new(),
            }),
            stats,
            fail_injector: Arc::new(AtomicU64::new(0)),
            worker: None,
        }
    }

    /// Attach the background service thread to a manually-constructed batcher
    /// (idempotent — a running service is left in place).
    pub fn start_service(&mut self) {
        if self.worker.is_some() {
            return;
        }
        let queue = Arc::clone(&self.queue);
        let matrix = Arc::clone(&self.matrix);
        let stats = Arc::clone(&self.stats);
        let injector = Arc::clone(&self.fail_injector);
        let policy = self.policy;
        self.worker = Some(
            std::thread::Builder::new()
                .name(format!("spmv-serve-{}", matrix.name()))
                .spawn(move || service_loop(queue, matrix, policy, stats, injector))
                .expect("spawn batcher service thread"),
        );
    }

    /// The served matrix this batcher fronts.
    pub fn matrix(&self) -> &Arc<ServedMatrix> {
        &self.matrix
    }

    /// The batching policy in force.
    pub fn policy(&self) -> BatchPolicy {
        self.policy
    }

    /// The serve statistics (shared with the service loop).
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// Requests currently waiting.
    pub fn pending(&self) -> usize {
        self.queue.lock().pending.len()
    }

    /// Make the next `n` batch executions panic inside the caught region —
    /// the fault-injection hook behind the failure-path tests. Not intended
    /// for production use.
    #[doc(hidden)]
    pub fn inject_batch_panics(&self, n: u64) {
        self.fail_injector.fetch_add(n, Ordering::Relaxed);
    }

    /// Enqueue one request, returning a [`Ticket`] for its result.
    ///
    /// Fails with [`ServeError::Closed`] once the batcher has been closed:
    /// the open flag is checked under the same lock the closer flips it, so a
    /// submit racing [`Batcher::close`] either lands before the flip (and is
    /// covered by the final flush) or errors — never strands.
    pub fn submit(&self, x: Vec<f64>) -> Result<Ticket> {
        self.submit_bounded(x, usize::MAX)
    }

    /// [`Batcher::submit`] with admission control: when `max_pending` requests
    /// are already waiting, the submit is refused with
    /// [`ServeError::Overloaded`] (and counted in [`ServeStats::sheds`])
    /// instead of growing the queue without bound. The check happens under the
    /// queue lock, so the bound is exact even under concurrent submitters —
    /// the load-shed primitive of the networked front-end.
    pub fn submit_bounded(&self, x: Vec<f64>, max_pending: usize) -> Result<Ticket> {
        if x.len() != self.matrix.ncols() {
            return Err(ServeError::DimensionMismatch {
                expected: self.matrix.ncols(),
                found: x.len(),
            });
        }
        let now = Instant::now();
        let (tx, rx) = mpsc::channel();
        {
            let mut state = self.queue.lock();
            if !state.open {
                return Err(ServeError::Closed);
            }
            if state.pending.len() >= max_pending {
                let pending = state.pending.len();
                drop(state);
                self.stats.record_shed();
                return Err(ServeError::Overloaded { pending });
            }
            state.pending.push_back(Request {
                x,
                reply: tx,
                submitted: now,
            });
            self.queue.cv.notify_all();
        }
        self.stats.record_submit(now);
        Ok(Ticket { rx })
    }

    /// Blocking convenience: submit and wait.
    pub fn apply(&self, x: Vec<f64>) -> Result<Vec<f64>> {
        self.submit(x)?.wait()
    }

    /// Close the queue: subsequent [`Batcher::submit`] calls error with
    /// [`ServeError::Closed`]; requests already queued are still served (the
    /// service loop's final flush, or the caller's remaining
    /// [`Batcher::run_once`] calls in manual mode). Idempotent.
    pub fn close(&self) {
        let mut state = self.queue.lock();
        state.open = false;
        self.queue.cv.notify_all();
    }

    /// Drain up to `max_batch` currently-waiting requests and serve them as one
    /// SpMM batch *on the calling thread*. Returns the batch width (0 when the
    /// queue was empty). This is the manual driving mode; with a background
    /// service thread it is still safe, but batch composition becomes racy.
    pub fn run_once(&self) -> usize {
        let batch = {
            let mut state = self.queue.lock();
            drain_batch(&mut state.pending, self.policy.max_batch)
        };
        execute_batch(&self.matrix, batch, &self.stats, &self.fail_injector)
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.close();
        if let Some(handle) = self.worker.take() {
            let _ = handle.join();
        }
        // Manual mode (or a service thread that died before its final flush):
        // explicitly fail anything still pending so no ticket ever hangs.
        let leftovers: Vec<Request> = self.queue.lock().pending.drain(..).collect();
        for request in leftovers {
            let _ = request.reply.send(Err(ServeError::Closed));
        }
    }
}

/// Take up to `max_batch` requests off the front of the queue.
fn drain_batch(pending: &mut VecDeque<Request>, max_batch: usize) -> Vec<Request> {
    let n = pending.len().min(max_batch);
    pending.drain(..n).collect()
}

/// Consume one injected fault, if any are pending.
fn take_injected_panic(injector: &AtomicU64) -> bool {
    injector
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1))
        .is_ok()
}

/// Serve one drained batch: assemble the column-major source block, run one
/// engine SpMM, reply per request, record stats. Returns the batch width.
///
/// A panic anywhere in the execution (kernel bug or injected fault) is caught
/// here: the batch's requests are failed with [`ServeError::BatchPanicked`],
/// the failure is counted, and the caller — service loop or manual driver —
/// continues serving.
fn execute_batch(
    matrix: &ServedMatrix,
    batch: Vec<Request>,
    stats: &ServeStats,
    injector: &AtomicU64,
) -> usize {
    let k = batch.len();
    if k == 0 {
        return 0;
    }
    let drained = Instant::now();
    for request in &batch {
        stats.record_queue_wait(drained.saturating_duration_since(request.submitted));
    }
    let executed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if take_injected_panic(injector) {
            panic!("injected batch execution failure");
        }
        let columns: Vec<&[f64]> = batch.iter().map(|r| r.x.as_slice()).collect();
        let x = MultiVec::from_columns(&columns);
        let mut y = MultiVec::zeros(matrix.nrows(), k);
        let exec = matrix.spmm_into(&x, &mut y);
        (y, exec)
    }));
    match executed {
        Ok((y, exec)) => {
            stats.record_batch(k, (2 * matrix.nnz() * k) as f64, exec);
            for (j, request) in batch.into_iter().enumerate() {
                // Record before replying: the reply wakes the waiter, and a
                // caller snapshotting stats right after `wait` returns must
                // already see this request counted.
                stats.record_request(request.submitted.elapsed());
                // A client that gave up (dropped its ticket) just discards the send.
                let _ = request.reply.send(Ok(y.col(j).to_vec()));
            }
        }
        Err(_) => {
            stats.record_batch_failure();
            for request in batch {
                let _ = request.reply.send(Err(ServeError::BatchPanicked));
            }
        }
    }
    k
}

/// The background service loop: wait for work, cut batches per the policy,
/// execute. On shutdown every request enqueued before the close is flushed
/// before the thread exits — `submit` checks the open flag under the queue
/// lock, so nothing can be enqueued after the loop observes the close with an
/// empty queue.
fn service_loop(
    queue: Arc<SharedQueue>,
    matrix: Arc<ServedMatrix>,
    policy: BatchPolicy,
    stats: Arc<ServeStats>,
    injector: Arc<AtomicU64>,
) {
    loop {
        let batch = {
            let mut state = queue.lock();
            loop {
                if state.pending.is_empty() {
                    if !state.open {
                        // Final flush complete: the queue is closed and empty,
                        // and a closed queue accepts no submits — exit.
                        return;
                    }
                    state = queue.wait(state);
                    continue;
                }
                if state.pending.len() >= policy.max_batch || !state.open {
                    break;
                }
                let deadline = state.pending.front().unwrap().submitted + policy.max_wait;
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                state = queue.wait_timeout(state, deadline - now);
            }
            drain_batch(&mut state.pending, policy.max_batch)
        };
        execute_batch(&matrix, batch, &stats, &injector);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MatrixRegistry;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use spmv_core::formats::{CooMatrix, CsrMatrix};
    use spmv_core::tuning::TuningConfig;

    fn served(seed: u64) -> Arc<ServedMatrix> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut coo = CooMatrix::new(48, 36);
        for _ in 0..500 {
            coo.push(
                rng.random_range(0..48),
                rng.random_range(0..36),
                rng.random_range(-1.0..1.0),
            );
        }
        let csr = CsrMatrix::from_coo(&coo);
        let registry = MatrixRegistry::new(2, TuningConfig::full());
        registry.insert("m", &csr).unwrap()
    }

    fn request_x(j: usize) -> Vec<f64> {
        (0..36)
            .map(|i| ((i * 7 + j * 3) % 23) as f64 * 0.5)
            .collect()
    }

    #[test]
    fn manual_mode_serves_a_burst_as_one_batch() {
        let batcher = Batcher::manual(served(1), BatchPolicy::default());
        let tickets: Vec<Ticket> = (0..8)
            .map(|j| batcher.submit(request_x(j)).unwrap())
            .collect();
        assert_eq!(batcher.pending(), 8);
        assert_eq!(batcher.run_once(), 8);
        for (j, ticket) in tickets.into_iter().enumerate() {
            let y = ticket.wait().unwrap();
            assert_eq!(y, batcher.matrix().spmv_now(&request_x(j)).unwrap());
        }
        let report = batcher.stats().snapshot();
        assert_eq!(report.batches, 1);
        assert_eq!(report.requests, 8);
        assert_eq!(report.batch_k_histogram, vec![(8, 1)]);
    }

    #[test]
    fn manual_mode_splits_oversized_bursts_at_max_batch() {
        let policy = BatchPolicy {
            max_batch: 4,
            ..BatchPolicy::default()
        };
        let batcher = Batcher::manual(served(2), policy);
        let tickets: Vec<Ticket> = (0..10)
            .map(|j| batcher.submit(request_x(j)).unwrap())
            .collect();
        assert_eq!(batcher.run_once(), 4);
        assert_eq!(batcher.run_once(), 4);
        assert_eq!(batcher.run_once(), 2);
        assert_eq!(batcher.run_once(), 0);
        for ticket in tickets {
            ticket.wait().unwrap();
        }
        let report = batcher.stats().snapshot();
        assert_eq!(report.batches, 3);
        assert!((report.avg_batch - 10.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn background_mode_serves_concurrent_clients_correctly() {
        let batcher = Arc::new(Batcher::spawn(
            served(3),
            BatchPolicy {
                max_batch: 4,
                max_wait: Duration::from_millis(1),
            },
        ));
        let handles: Vec<_> = (0..12)
            .map(|j| {
                let batcher = Arc::clone(&batcher);
                std::thread::spawn(move || {
                    let y = batcher.apply(request_x(j)).unwrap();
                    (j, y)
                })
            })
            .collect();
        for handle in handles {
            let (j, y) = handle.join().unwrap();
            assert_eq!(y, batcher.matrix().spmv_now(&request_x(j)).unwrap());
        }
        let report = batcher.stats().snapshot();
        assert_eq!(report.requests, 12);
        assert!(report.batches >= 3, "4-wide cap means at least 3 batches");
        assert!(report.busy_gflops > 0.0);
        assert!(report.max_latency >= report.mean_latency);
    }

    #[test]
    fn shutdown_flushes_pending_requests() {
        let batcher = Batcher::spawn(
            served(4),
            BatchPolicy {
                max_batch: 64,
                max_wait: Duration::from_secs(60), // never cut by age during the test
            },
        );
        let tickets: Vec<Ticket> = (0..5)
            .map(|j| batcher.submit(request_x(j)).unwrap())
            .collect();
        drop(batcher); // close + flush + join
        for ticket in tickets {
            assert!(
                ticket.wait().is_ok(),
                "pending requests are flushed on drop"
            );
        }
    }

    #[test]
    fn submit_after_close_and_bad_lengths_error() {
        let batcher = Batcher::manual(served(5), BatchPolicy::default());
        assert!(matches!(
            batcher.submit(vec![0.0; 7]),
            Err(ServeError::DimensionMismatch { .. })
        ));
        batcher.close();
        assert!(matches!(
            batcher.submit(request_x(0)),
            Err(ServeError::Closed)
        ));
        // close is idempotent.
        batcher.close();
        assert!(matches!(
            batcher.apply(request_x(0)),
            Err(ServeError::Closed)
        ));
    }

    #[test]
    fn try_wait_polls_without_blocking() {
        let batcher = Batcher::manual(served(6), BatchPolicy::default());
        let ticket = batcher.submit(request_x(0)).unwrap();
        assert!(ticket.try_wait().is_none());
        batcher.run_once();
        assert!(matches!(ticket.try_wait(), Some(Ok(_))));
    }

    #[test]
    fn bounded_submit_sheds_when_full() {
        let batcher = Batcher::manual(served(9), BatchPolicy::default());
        let _t0 = batcher.submit_bounded(request_x(0), 2).unwrap();
        let _t1 = batcher.submit_bounded(request_x(1), 2).unwrap();
        match batcher.submit_bounded(request_x(2), 2) {
            Err(ServeError::Overloaded { pending }) => assert_eq!(pending, 2),
            other => panic!("expected Overloaded, got {other:?}"),
        }
        assert_eq!(batcher.stats().sheds(), 1);
        batcher.run_once();
        // Queue drained: admission re-opens.
        assert!(batcher.submit_bounded(request_x(3), 2).is_ok());
        assert_eq!(batcher.stats().snapshot().sheds, 1);
    }

    #[test]
    fn panic_in_batch_fails_tickets_and_keeps_queue_usable() {
        let batcher = Batcher::manual(served(7), BatchPolicy::default());
        batcher.inject_batch_panics(1);
        let doomed: Vec<Ticket> = (0..3)
            .map(|j| batcher.submit(request_x(j)).unwrap())
            .collect();
        assert_eq!(batcher.run_once(), 3);
        for ticket in doomed {
            assert!(matches!(ticket.wait(), Err(ServeError::BatchPanicked)));
        }
        // The queue (and its lock) survived: submit + serve still work.
        assert_eq!(batcher.pending(), 0);
        let ticket = batcher.submit(request_x(9)).unwrap();
        assert_eq!(batcher.run_once(), 1);
        assert_eq!(
            ticket.wait().unwrap(),
            batcher.matrix().spmv_now(&request_x(9)).unwrap()
        );
        let report = batcher.stats().snapshot();
        assert_eq!(report.failed_batches, 1);
        assert_eq!(report.batches, 1, "only the surviving batch counts");
        assert_eq!(report.requests, 1);
    }

    #[test]
    fn background_service_survives_a_panicked_batch() {
        let batcher = Batcher::spawn(
            served(8),
            BatchPolicy {
                max_batch: 4,
                max_wait: Duration::from_micros(50),
            },
        );
        batcher.inject_batch_panics(1);
        let doomed: Vec<Ticket> = (0..4)
            .map(|j| batcher.submit(request_x(j)).unwrap())
            .collect();
        let mut failed = 0;
        for ticket in doomed {
            match ticket
                .wait_timeout(Duration::from_secs(10))
                .expect("no ticket may hang")
            {
                Err(ServeError::BatchPanicked) => failed += 1,
                Ok(_) => {}
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(failed > 0, "the injected panic failed at least one request");
        // The service thread is still alive and serving.
        let y = batcher.apply(request_x(5)).unwrap();
        assert_eq!(y, batcher.matrix().spmv_now(&request_x(5)).unwrap());
        assert!(batcher.stats().failed_batches() >= 1);
    }

    #[test]
    fn concurrent_close_under_load_strands_nothing() {
        for round in 0..4 {
            let batcher = Arc::new(Batcher::spawn(
                served(10 + round),
                BatchPolicy {
                    max_batch: 4,
                    max_wait: Duration::from_micros(20),
                },
            ));
            let clients: Vec<_> = (0..4)
                .map(|c| {
                    let batcher = Arc::clone(&batcher);
                    std::thread::spawn(move || {
                        let mut served_ok = 0usize;
                        let mut closed = 0usize;
                        for j in 0..50 {
                            match batcher.submit(request_x(c * 50 + j)) {
                                Ok(ticket) => {
                                    match ticket
                                        .wait_timeout(Duration::from_secs(10))
                                        .expect("ticket must resolve: served or failed, never hung")
                                    {
                                        Ok(_) => served_ok += 1,
                                        Err(ServeError::Closed) => closed += 1,
                                        Err(e) => panic!("unexpected error {e}"),
                                    }
                                }
                                Err(ServeError::Closed) => {
                                    closed += 1;
                                    break;
                                }
                                Err(e) => panic!("unexpected submit error {e}"),
                            }
                        }
                        (served_ok, closed)
                    })
                })
                .collect();
            // Close mid-stream: submits before the flip are flushed, submits
            // after it error — nothing hangs either way.
            std::thread::sleep(Duration::from_micros(200 * round));
            batcher.close();
            let mut total = 0;
            for client in clients {
                let (served_ok, _closed) = client.join().unwrap();
                total += served_ok;
            }
            // All successfully submitted requests were served (the final
            // flush covered the stragglers); the exact split depends on the
            // race, the invariant is "no hang, no stranded ticket". Snapshot
            // only after the service thread joined, so every served request
            // has been recorded.
            let matrix = Arc::clone(batcher.matrix());
            drop(batcher);
            let report = matrix.serve_stats().snapshot();
            assert_eq!(report.requests, total);
        }
    }
}
