//! The matrix registry: named matrices, their tune plans, and running engines.
//!
//! A serving deployment holds a small set of hot matrices, each tuned once
//! (possibly offline — plans round-trip through the plain-text profile format of
//! [`TunePlan::save`]/[`TunePlan::load`]) and then applied millions of times.
//! [`MatrixRegistry`] owns that mapping: inserting a matrix plans it (or adopts
//! a supplied/loaded plan), spins up the persistent [`SpmvEngine`], and hands
//! out [`ServedMatrix`] handles that batchers and direct callers share.

use crate::{Result, ServeError};
use spmv_core::formats::CsrMatrix;
use spmv_core::multivec::MultiVec;
use spmv_core::tuning::plan::TunePlan;
use spmv_core::tuning::TuningConfig;
use spmv_core::MatrixShape;
use spmv_parallel::affinity::AffinityPolicy;
use spmv_parallel::engine::EngineFootprint;
use spmv_parallel::SpmvEngine;
use std::collections::HashMap;
use std::path::Path;
use std::sync::{Arc, Mutex, RwLock};

/// One registered matrix: its identity, its serializable tune plan, and the
/// running persistent engine that serves it.
pub struct ServedMatrix {
    name: String,
    nrows: usize,
    ncols: usize,
    nnz: usize,
    plan: TunePlan,
    engine: Mutex<SpmvEngine>,
}

impl ServedMatrix {
    fn build(
        name: &str,
        csr: &CsrMatrix,
        plan: TunePlan,
        affinity: AffinityPolicy,
    ) -> Result<ServedMatrix> {
        let engine = SpmvEngine::from_plan_with_affinity(csr, &plan, affinity)?;
        Ok(ServedMatrix {
            name: name.to_string(),
            nrows: csr.nrows(),
            ncols: csr.ncols(),
            nnz: csr.nnz(),
            plan,
            engine: Mutex::new(engine),
        })
    }

    /// Registered name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rows of the served matrix.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Columns of the served matrix (the request vector length).
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Logical nonzeros (2 flops each per request).
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// The tune plan the engine was materialized from.
    pub fn plan(&self) -> &TunePlan {
        &self.plan
    }

    /// Whether the matrix is served from symmetric (lower-triangle) storage —
    /// chosen automatically when the registry's tuning config exploits symmetry
    /// and the inserted matrix is detected symmetric.
    pub fn is_symmetric(&self) -> bool {
        self.plan.symmetric
    }

    /// The engine's footprint report (per-worker bytes + affinity policy).
    pub fn footprint(&self) -> EngineFootprint {
        self.engine.lock().unwrap().footprint()
    }

    /// Apply the matrix to one vector immediately, bypassing any batching.
    pub fn spmv_now(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.ncols {
            return Err(ServeError::DimensionMismatch {
                expected: self.ncols,
                found: x.len(),
            });
        }
        let mut y = vec![0.0; self.nrows];
        self.engine.lock().unwrap().spmv(x, &mut y);
        Ok(y)
    }

    /// Apply the matrix to a column-major block of vectors immediately.
    pub fn spmm_now(&self, x: &MultiVec) -> Result<MultiVec> {
        if x.ld() != self.ncols {
            return Err(ServeError::DimensionMismatch {
                expected: self.ncols,
                found: x.ld(),
            });
        }
        let mut y = MultiVec::zeros(self.nrows, x.k());
        self.engine.lock().unwrap().spmm(x, &mut y);
        Ok(y)
    }

    /// Apply a prebuilt block into a caller-owned destination (the batcher's
    /// zero-copy path), timing only the engine execution.
    pub(crate) fn spmm_into(&self, x: &MultiVec, y: &mut MultiVec) -> std::time::Duration {
        let mut engine = self.engine.lock().unwrap();
        let t0 = std::time::Instant::now();
        engine.spmm(x, y);
        t0.elapsed()
    }
}

impl std::fmt::Debug for ServedMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServedMatrix")
            .field("name", &self.name)
            .field("nrows", &self.nrows)
            .field("ncols", &self.ncols)
            .field("nnz", &self.nnz)
            .finish()
    }
}

/// Named matrices → tuned, running engines.
pub struct MatrixRegistry {
    matrices: RwLock<HashMap<String, Arc<ServedMatrix>>>,
    nthreads: usize,
    config: TuningConfig,
    affinity: AffinityPolicy,
}

impl MatrixRegistry {
    /// A registry whose engines run `nthreads` workers, tuned with `config`,
    /// under the engine's default first-touch affinity.
    pub fn new(nthreads: usize, config: TuningConfig) -> MatrixRegistry {
        Self::with_affinity(nthreads, config, AffinityPolicy::first_touch())
    }

    /// [`MatrixRegistry::new`] with an explicit [`AffinityPolicy`] recorded on
    /// every engine built by this registry.
    pub fn with_affinity(
        nthreads: usize,
        config: TuningConfig,
        affinity: AffinityPolicy,
    ) -> MatrixRegistry {
        assert!(nthreads > 0, "registry engines need at least one worker");
        MatrixRegistry {
            matrices: RwLock::new(HashMap::new()),
            nthreads,
            config,
            affinity,
        }
    }

    /// Tune `csr` with the registry's configuration and register it under
    /// `name`, returning the served handle.
    pub fn insert(&self, name: &str, csr: &CsrMatrix) -> Result<Arc<ServedMatrix>> {
        let plan = TunePlan::new(csr, self.nthreads, &self.config);
        self.insert_with_plan(name, csr, plan)
    }

    /// Register `csr` under `name` with an already-built [`TunePlan`] (e.g. one
    /// produced by an offline tuning pass). The plan is validated against the
    /// matrix by engine construction.
    pub fn insert_with_plan(
        &self,
        name: &str,
        csr: &CsrMatrix,
        plan: TunePlan,
    ) -> Result<Arc<ServedMatrix>> {
        // Cheap duplicate check first: building the engine materializes the
        // whole matrix and spawns workers, which a taken name must not cost.
        if self.matrices.read().unwrap().contains_key(name) {
            return Err(ServeError::AlreadyRegistered(name.to_string()));
        }
        let served = Arc::new(ServedMatrix::build(name, csr, plan, self.affinity)?);
        let mut map = self.matrices.write().unwrap();
        // Re-check under the write lock: a racing insert may have won the name
        // while this one was building.
        if map.contains_key(name) {
            return Err(ServeError::AlreadyRegistered(name.to_string()));
        }
        map.insert(name.to_string(), Arc::clone(&served));
        Ok(served)
    }

    /// Register `csr` under `name` with a plan loaded from a plain-text profile
    /// (the PR-2 `spmv-tune-plan v1` format).
    pub fn insert_from_profile(
        &self,
        name: &str,
        csr: &CsrMatrix,
        path: impl AsRef<Path>,
    ) -> Result<Arc<ServedMatrix>> {
        let plan = TunePlan::load(path).map_err(|e| ServeError::Profile(e.to_string()))?;
        self.insert_with_plan(name, csr, plan)
    }

    /// Save the registered matrix's tune plan as a plain-text profile, so a
    /// later process can skip the tuning pass.
    pub fn save_profile(&self, name: &str, path: impl AsRef<Path>) -> Result<()> {
        let served = self
            .get(name)
            .ok_or_else(|| ServeError::UnknownMatrix(name.to_string()))?;
        served
            .plan()
            .save(path)
            .map_err(|e| ServeError::Profile(e.to_string()))
    }

    /// Look up a served matrix by name.
    pub fn get(&self, name: &str) -> Option<Arc<ServedMatrix>> {
        self.matrices.read().unwrap().get(name).cloned()
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.matrices.read().unwrap().keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of registered matrices.
    pub fn len(&self) -> usize {
        self.matrices.read().unwrap().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.matrices.read().unwrap().is_empty()
    }

    /// Remove a matrix. Existing `Arc<ServedMatrix>` handles (and batchers
    /// holding them) stay valid; the name becomes free for re-registration.
    pub fn remove(&self, name: &str) -> Option<Arc<ServedMatrix>> {
        self.matrices.write().unwrap().remove(name)
    }
}

impl std::fmt::Debug for MatrixRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MatrixRegistry")
            .field("names", &self.names())
            .field("nthreads", &self.nthreads)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use spmv_core::formats::CooMatrix;
    use spmv_core::SpMv;

    fn random_csr(nrows: usize, ncols: usize, nnz: usize, seed: u64) -> CsrMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut coo = CooMatrix::new(nrows, ncols);
        for _ in 0..nnz {
            coo.push(
                rng.random_range(0..nrows),
                rng.random_range(0..ncols),
                rng.random_range(-1.0..1.0),
            );
        }
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn insert_get_and_direct_apply() {
        let registry = MatrixRegistry::new(2, TuningConfig::full());
        let csr = random_csr(60, 50, 600, 1);
        let served = registry.insert("m", &csr).unwrap();
        assert_eq!(registry.names(), vec!["m".to_string()]);
        assert_eq!(served.nnz(), csr.nnz());
        let x: Vec<f64> = (0..50).map(|i| i as f64 * 0.1).collect();
        let y = served.spmv_now(&x).unwrap();
        let mut expected = vec![0.0; 60];
        csr.spmv(&x, &mut expected);
        let diff = y
            .iter()
            .zip(&expected)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(diff < 1e-9);
        assert!(served.footprint().total_bytes > 0);
        assert_eq!(registry.get("m").unwrap().name(), "m");
        assert!(registry.get("absent").is_none());
    }

    #[test]
    fn duplicate_names_rejected_and_remove_frees_them() {
        let registry = MatrixRegistry::new(1, TuningConfig::naive());
        let csr = random_csr(10, 10, 30, 2);
        registry.insert("m", &csr).unwrap();
        assert!(matches!(
            registry.insert("m", &csr),
            Err(ServeError::AlreadyRegistered(_))
        ));
        assert!(registry.remove("m").is_some());
        assert!(registry.is_empty());
        registry.insert("m", &csr).unwrap();
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn profile_round_trip_through_registry() {
        let registry = MatrixRegistry::new(2, TuningConfig::full());
        let csr = random_csr(80, 70, 900, 3);
        registry.insert("m", &csr).unwrap();
        let path = std::env::temp_dir().join("spmv_serve_registry_test.profile");
        registry.save_profile("m", &path).unwrap();

        let fresh = MatrixRegistry::new(2, TuningConfig::naive());
        let reloaded = fresh.insert_from_profile("m2", &csr, &path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(reloaded.plan(), registry.get("m").unwrap().plan());

        // A profile for a different matrix must be rejected.
        let other = random_csr(80, 70, 800, 4);
        let plan = TunePlan::new(&csr, 2, &TuningConfig::full());
        assert!(matches!(
            fresh.insert_with_plan("bad", &other, plan),
            Err(ServeError::Build(_))
        ));
    }

    #[test]
    fn spmm_now_matches_per_column_spmv() {
        let registry = MatrixRegistry::new(3, TuningConfig::full());
        let csr = random_csr(40, 30, 300, 5);
        let served = registry.insert("m", &csr).unwrap();
        let cols: Vec<Vec<f64>> = (0..5)
            .map(|j| (0..30).map(|i| (i * (j + 1)) as f64 * 0.05).collect())
            .collect();
        let views: Vec<&[f64]> = cols.iter().map(|c| c.as_slice()).collect();
        let x = MultiVec::from_columns(&views);
        let y = served.spmm_now(&x).unwrap();
        for j in 0..5 {
            assert_eq!(y.col(j), &served.spmv_now(x.col(j)).unwrap()[..]);
        }
    }

    #[test]
    fn dimension_mismatches_are_reported() {
        let registry = MatrixRegistry::new(1, TuningConfig::naive());
        let csr = random_csr(8, 6, 20, 6);
        let served = registry.insert("m", &csr).unwrap();
        assert!(matches!(
            served.spmv_now(&[1.0; 5]),
            Err(ServeError::DimensionMismatch {
                expected: 6,
                found: 5
            })
        ));
        assert!(registry.save_profile("absent", "/tmp/x").is_err());
    }
}
