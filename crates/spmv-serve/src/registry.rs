//! The matrix registry: named matrices, their tune plans, and running engines.
//!
//! A serving deployment holds a small set of hot matrices, each tuned once
//! (possibly offline — plans round-trip through the plain-text profile format of
//! [`TunePlan::save`]/[`TunePlan::load`]) and then applied millions of times.
//! [`MatrixRegistry`] owns that mapping: inserting a matrix plans it (or adopts
//! a supplied/loaded plan), spins up the persistent [`SpmvEngine`], and hands
//! out [`ServedMatrix`] handles that batchers and direct callers share.
//!
//! Two knobs turn the registry from heuristic-only tuning into the measured
//! pipeline:
//!
//! * [`MatrixRegistry::with_budget`] — inserts run the measured whole-plan
//!   search ([`spmv_core::tuning::autotune`]) at the given [`SearchBudget`]
//!   instead of trusting the one-pass heuristic.
//! * [`MatrixRegistry::with_cache`] — winners persist in a [`TuneCache`]
//!   keyed by matrix fingerprint × platform × thread count, so re-inserting a
//!   known matrix (same process or a later one) skips the search entirely and
//!   produces a ready [`ServedMatrix`] straight from the cached plan.
//!
//! Serving never blocks on a search: [`ServedMatrix::retune`] (and the
//! registry's [`MatrixRegistry::retune_background`]) run the search and the
//! first-touch engine build **off** the serving lock, then hot-swap the new
//! engine in with one O(1) [`SpmvEngine::swap_with`] under the lock. In-flight
//! requests finish on the old engine; the next request runs on the new one.

use crate::stats::ServeStats;
use crate::{Result, ServeError};
use spmv_core::formats::CsrMatrix;
use spmv_core::multivec::MultiVec;
use spmv_core::tuning::autotune::{autotune, MatrixFingerprint, SearchBudget, TuneCache};
use spmv_core::tuning::plan::TunePlan;
use spmv_core::tuning::TuningConfig;
use spmv_core::MatrixShape;
use spmv_obs::{Counter, MetricsSnapshot, TraceKind};
use spmv_parallel::affinity::AffinityPolicy;
use spmv_parallel::engine::{EngineFootprint, EngineProfile};
use spmv_parallel::SpmvEngine;
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;

/// One registered matrix: its identity, its (hot-swappable) tune plan, and the
/// running persistent engine that serves it. The matrix itself is retained
/// (shared, not copied — insert via [`MatrixRegistry::insert_arc`] to avoid
/// even the one-time clone) so background retunes can rebuild the engine
/// without the caller keeping the CSR alive, and its structural fingerprint
/// is computed once at build time for every cache interaction after.
pub struct ServedMatrix {
    name: String,
    csr: Arc<CsrMatrix>,
    fingerprint: MatrixFingerprint,
    nrows: usize,
    ncols: usize,
    nnz: usize,
    config: TuningConfig,
    affinity: AffinityPolicy,
    /// The plan the serving engine was materialized from. Updated under the
    /// engine lock by [`ServedMatrix::swap_plan`], so plan and engine never
    /// disagree.
    plan: RwLock<TunePlan>,
    engine: Mutex<SpmvEngine>,
    retunes: AtomicU64,
    /// Serve-loop statistics, shared with every batcher over this matrix so
    /// the registry can scrape latency/occupancy without batcher handles.
    stats: Arc<ServeStats>,
    /// Solver sessions opened over this matrix.
    solver_sessions: Counter,
    /// Solver iterations (CG steps / power iterations) executed.
    solver_iterations: Counter,
    /// Solver resyncs after an engine hot-swap mid-session.
    solver_resyncs: Counter,
}

impl ServedMatrix {
    fn build(
        name: &str,
        csr: Arc<CsrMatrix>,
        plan: TunePlan,
        config: TuningConfig,
        affinity: AffinityPolicy,
    ) -> Result<ServedMatrix> {
        let engine = SpmvEngine::from_plan_with_affinity(&csr, &plan, affinity)?;
        Ok(ServedMatrix {
            name: name.to_string(),
            fingerprint: MatrixFingerprint::compute(&csr),
            nrows: csr.nrows(),
            ncols: csr.ncols(),
            nnz: csr.nnz(),
            csr,
            config,
            affinity,
            plan: RwLock::new(plan),
            engine: Mutex::new(engine),
            retunes: AtomicU64::new(0),
            stats: Arc::new(ServeStats::new()),
            solver_sessions: Counter::new(),
            solver_iterations: Counter::new(),
            solver_resyncs: Counter::new(),
        })
    }

    /// The matrix's structural fingerprint (computed once at registration).
    pub fn fingerprint(&self) -> MatrixFingerprint {
        self.fingerprint
    }

    /// Persist the currently-serving plan into `cache`, keyed by this
    /// matrix's fingerprint, the plan's own thread count, and the tuning
    /// config it was searched under — the single store path the registry's
    /// retune entry points share.
    fn store_plan_in(&self, cache: &TuneCache) -> Result<()> {
        let plan = self.plan();
        cache
            .store(&self.fingerprint, plan.num_threads(), &self.config, &plan)
            .map_err(ServeError::Build)
    }

    /// Registered name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rows of the served matrix.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Columns of the served matrix (the request vector length).
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Logical nonzeros (2 flops each per request).
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// The tune plan currently serving (a snapshot — a concurrent retune may
    /// swap in a new one right after this returns).
    pub fn plan(&self) -> TunePlan {
        self.plan.read().unwrap().clone()
    }

    /// Whether the matrix is currently served from symmetric (lower-triangle)
    /// storage — chosen automatically when the tuning config exploits symmetry
    /// and the inserted matrix is detected symmetric.
    pub fn is_symmetric(&self) -> bool {
        self.plan.read().unwrap().symmetric
    }

    /// Whether any worker of the serving plan runs the vectorized (SIMD)
    /// kernels. Plans loaded from a tune cache can only say yes on hosts
    /// whose detected feature set matches the cache's platform key, so this
    /// is also an operational probe for "did the SIMD plan survive the trip".
    pub fn uses_simd(&self) -> bool {
        self.plan.read().unwrap().threads.iter().any(|t| t.simd)
    }

    /// How many engine hot-swaps this matrix has completed.
    pub fn retune_count(&self) -> u64 {
        self.retunes.load(Ordering::Relaxed)
    }

    /// The serve statistics shared by every batcher over this matrix.
    /// Batchers record into this instance, so a registry-level metrics scrape
    /// sees latency/queue-wait/occupancy without holding batcher handles.
    pub fn serve_stats(&self) -> &Arc<ServeStats> {
        &self.stats
    }

    /// Solver sessions opened over this matrix.
    pub fn solver_sessions(&self) -> u64 {
        self.solver_sessions.get()
    }

    /// Solver iterations executed across all sessions over this matrix.
    pub fn solver_iterations(&self) -> u64 {
        self.solver_iterations.get()
    }

    /// Solver resyncs (sessions rebuilt after an engine hot-swap).
    pub fn solver_resyncs(&self) -> u64 {
        self.solver_resyncs.get()
    }

    /// Count one opened solver session.
    pub(crate) fn note_solver_session(&self) {
        self.solver_sessions.inc();
    }

    /// Count `n` solver iterations.
    pub(crate) fn note_solver_iterations(&self, n: u64) {
        self.solver_iterations.add(n);
    }

    /// Count one solver resync.
    pub(crate) fn note_solver_resync(&self) {
        self.solver_resyncs.inc();
    }

    /// The serving engine's telemetry profile: epochs by kind, per-worker
    /// kernel/barrier time and nnz, and the epoch wall-time distribution.
    pub fn engine_profile(&self) -> EngineProfile {
        self.engine.lock().unwrap().profile()
    }

    /// The shared matrix storage (for building session-private engines).
    pub(crate) fn csr_arc(&self) -> &Arc<CsrMatrix> {
        &self.csr
    }

    /// The affinity policy session-private engines must honour.
    pub(crate) fn affinity_policy(&self) -> AffinityPolicy {
        self.affinity
    }

    /// The engine's footprint report (per-worker bytes + affinity policy).
    pub fn footprint(&self) -> EngineFootprint {
        self.engine.lock().unwrap().footprint()
    }

    /// Apply the matrix to one vector immediately, bypassing any batching.
    pub fn spmv_now(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.ncols {
            return Err(ServeError::DimensionMismatch {
                expected: self.ncols,
                found: x.len(),
            });
        }
        let mut y = vec![0.0; self.nrows];
        self.engine.lock().unwrap().spmv(x, &mut y);
        Ok(y)
    }

    /// Apply the matrix to a column-major block of vectors immediately.
    pub fn spmm_now(&self, x: &MultiVec) -> Result<MultiVec> {
        if x.ld() != self.ncols {
            return Err(ServeError::DimensionMismatch {
                expected: self.ncols,
                found: x.ld(),
            });
        }
        let mut y = MultiVec::zeros(self.nrows, x.k());
        self.engine.lock().unwrap().spmm(x, &mut y);
        Ok(y)
    }

    /// Apply a prebuilt block into a caller-owned destination (the batcher's
    /// zero-copy path), timing only the engine execution.
    pub(crate) fn spmm_into(&self, x: &MultiVec, y: &mut MultiVec) -> std::time::Duration {
        let mut engine = self.engine.lock().unwrap();
        let t0 = std::time::Instant::now();
        engine.spmm(x, y);
        t0.elapsed()
    }

    /// Hot-swap the serving engine to `plan`. The replacement engine is built
    /// **before** the serving lock is taken (tuning search and first-touch
    /// materialization are the expensive parts), the swap itself is one O(1)
    /// pointer exchange under the lock, and the old engine's workers are
    /// joined only after the lock is released — so concurrent `spmv_now` /
    /// `spmm_now` callers observe either the old engine or the new one,
    /// never a stall and never a torn state.
    pub fn swap_plan(&self, plan: TunePlan) -> Result<()> {
        let replacement = SpmvEngine::from_plan_with_affinity(&self.csr, &plan, self.affinity)?;
        let old = {
            let mut engine = self.engine.lock().unwrap();
            let old = engine.swap_with(replacement);
            // Plan updated under the engine lock: a reader holding a fresh
            // plan() snapshot is looking at the engine that serves it.
            *self.plan.write().unwrap() = plan;
            old
        };
        drop(old);
        let swaps = self.retunes.fetch_add(1, Ordering::Relaxed) + 1;
        spmv_obs::trace::trace(TraceKind::Retune, self.fingerprint.hash, swaps);
        Ok(())
    }

    /// Re-run the measured whole-plan search at `budget` (off the serving
    /// lock) and hot-swap the winner in if it differs from the current plan.
    /// Returns whether a swap happened. Serving continues uninterrupted
    /// throughout.
    pub fn retune(&self, budget: SearchBudget) -> Result<bool> {
        let nthreads = self.plan.read().unwrap().num_threads();
        let outcome = autotune(&self.csr, nthreads, &self.config, budget);
        if outcome.plan == *self.plan.read().unwrap() {
            return Ok(false);
        }
        self.swap_plan(outcome.plan)?;
        Ok(true)
    }
}

impl std::fmt::Debug for ServedMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServedMatrix")
            .field("name", &self.name)
            .field("nrows", &self.nrows)
            .field("ncols", &self.ncols)
            .field("nnz", &self.nnz)
            .field("retunes", &self.retune_count())
            .finish()
    }
}

/// Named matrices → tuned, running engines.
pub struct MatrixRegistry {
    matrices: RwLock<HashMap<String, Arc<ServedMatrix>>>,
    nthreads: usize,
    config: TuningConfig,
    affinity: AffinityPolicy,
    budget: SearchBudget,
    cache: Option<Arc<TuneCache>>,
}

impl MatrixRegistry {
    /// A registry whose engines run `nthreads` workers, tuned with `config`,
    /// under the engine's default first-touch affinity. Inserts use the
    /// one-pass heuristic ([`SearchBudget::Heuristic`]) and no cache; see
    /// [`MatrixRegistry::with_budget`] / [`MatrixRegistry::with_cache`].
    pub fn new(nthreads: usize, config: TuningConfig) -> MatrixRegistry {
        Self::with_affinity(nthreads, config, AffinityPolicy::first_touch())
    }

    /// [`MatrixRegistry::new`] with an explicit [`AffinityPolicy`] recorded on
    /// every engine built by this registry.
    pub fn with_affinity(
        nthreads: usize,
        config: TuningConfig,
        affinity: AffinityPolicy,
    ) -> MatrixRegistry {
        assert!(nthreads > 0, "registry engines need at least one worker");
        MatrixRegistry {
            matrices: RwLock::new(HashMap::new()),
            nthreads,
            config,
            affinity,
            budget: SearchBudget::Heuristic,
            cache: None,
        }
    }

    /// Tune inserts with the measured whole-plan search at `budget` instead of
    /// the plain heuristic.
    pub fn with_budget(mut self, budget: SearchBudget) -> MatrixRegistry {
        self.budget = budget;
        self
    }

    /// Persist (and reuse) winning plans through `cache`: an insert whose
    /// matrix fingerprint is already cached skips the search entirely and
    /// serves from the cached plan; misses search at the registry's budget and
    /// store the winner. Share one [`TuneCache`] across registries (and
    /// processes pointing at the same directory) to amortize tuning globally.
    pub fn with_cache(mut self, cache: Arc<TuneCache>) -> MatrixRegistry {
        self.cache = Some(cache);
        self
    }

    /// The search budget inserts tune at.
    pub fn budget(&self) -> SearchBudget {
        self.budget
    }

    /// The tune cache, when one is attached.
    pub fn cache(&self) -> Option<&Arc<TuneCache>> {
        self.cache.as_ref()
    }

    /// Produce the plan an insert of `csr` should serve: cache hit → cached
    /// plan (no search); miss or no cache → heuristic or measured search per
    /// the registry's budget (winner stored when a cache is attached).
    fn plan_for(&self, csr: &CsrMatrix) -> Result<TunePlan> {
        match &self.cache {
            Some(cache) => cache
                .autotune(csr, self.nthreads, &self.config, self.budget)
                .map(|outcome| outcome.plan)
                .map_err(ServeError::Build),
            None => Ok(match self.budget {
                SearchBudget::Heuristic => TunePlan::new(csr, self.nthreads, &self.config),
                budget => autotune(csr, self.nthreads, &self.config, budget).plan,
            }),
        }
    }

    /// Tune `csr` with the registry's configuration (heuristic, searched, or
    /// cache-served per the registry's budget and cache) and register it under
    /// `name`, returning the served handle. Clones the matrix once so the
    /// served handle can retune without the caller keeping it alive; pass an
    /// [`MatrixRegistry::insert_arc`] when the caller already holds an `Arc`
    /// and the copy matters (large matrices).
    pub fn insert(&self, name: &str, csr: &CsrMatrix) -> Result<Arc<ServedMatrix>> {
        self.insert_arc(name, Arc::new(csr.clone()))
    }

    /// [`MatrixRegistry::insert`] without the clone: the served handle shares
    /// the caller's `Arc<CsrMatrix>`.
    pub fn insert_arc(&self, name: &str, csr: Arc<CsrMatrix>) -> Result<Arc<ServedMatrix>> {
        let plan = self.plan_for(&csr)?;
        self.insert_arc_with_plan(name, csr, plan)
    }

    /// Register `csr` under `name` with an already-built [`TunePlan`] (e.g. one
    /// produced by an offline tuning pass). The plan is validated against the
    /// matrix by engine construction.
    pub fn insert_with_plan(
        &self,
        name: &str,
        csr: &CsrMatrix,
        plan: TunePlan,
    ) -> Result<Arc<ServedMatrix>> {
        self.insert_arc_with_plan(name, Arc::new(csr.clone()), plan)
    }

    /// [`MatrixRegistry::insert_with_plan`] without the clone.
    pub fn insert_arc_with_plan(
        &self,
        name: &str,
        csr: Arc<CsrMatrix>,
        plan: TunePlan,
    ) -> Result<Arc<ServedMatrix>> {
        // Cheap duplicate check first: building the engine materializes the
        // whole matrix and spawns workers, which a taken name must not cost.
        if self.matrices.read().unwrap().contains_key(name) {
            return Err(ServeError::AlreadyRegistered(name.to_string()));
        }
        let served = Arc::new(ServedMatrix::build(
            name,
            csr,
            plan,
            self.config,
            self.affinity,
        )?);
        let mut map = self.matrices.write().unwrap();
        // Re-check under the write lock: a racing insert may have won the name
        // while this one was building.
        if map.contains_key(name) {
            return Err(ServeError::AlreadyRegistered(name.to_string()));
        }
        map.insert(name.to_string(), Arc::clone(&served));
        Ok(served)
    }

    /// Register `csr` under `name` with a plan loaded from a plain-text profile
    /// (the `spmv-tune-plan v1` format).
    pub fn insert_from_profile(
        &self,
        name: &str,
        csr: &CsrMatrix,
        path: impl AsRef<Path>,
    ) -> Result<Arc<ServedMatrix>> {
        let plan = TunePlan::load(path).map_err(|e| ServeError::Profile(e.to_string()))?;
        self.insert_with_plan(name, csr, plan)
    }

    /// Save the registered matrix's current tune plan as a plain-text profile,
    /// so a later process can skip the tuning pass.
    pub fn save_profile(&self, name: &str, path: impl AsRef<Path>) -> Result<()> {
        let served = self
            .get(name)
            .ok_or_else(|| ServeError::UnknownMatrix(name.to_string()))?;
        served
            .plan()
            .save(path)
            .map_err(|e| ServeError::Profile(e.to_string()))
    }

    /// Synchronously retune `name` at `budget` and hot-swap the winner in if
    /// it beats the serving plan (see [`ServedMatrix::retune`]; serving never
    /// blocks on the search). The winner is persisted when a cache is
    /// attached — keyed by the served plan's own thread count, which can
    /// legitimately differ from the registry's (plans adopted via
    /// `insert_with_plan` or swapped in directly). Returns whether a swap
    /// happened.
    pub fn retune(&self, name: &str, budget: SearchBudget) -> Result<bool> {
        let served = self
            .get(name)
            .ok_or_else(|| ServeError::UnknownMatrix(name.to_string()))?;
        let swapped = served.retune(budget)?;
        if let Some(cache) = &self.cache {
            served.store_plan_in(cache)?;
        }
        Ok(swapped)
    }

    /// [`MatrixRegistry::retune`] on a background thread: returns immediately
    /// with a handle; serving continues on the current engine until the search
    /// finishes and the new engine hot-swaps in.
    pub fn retune_background(
        &self,
        name: &str,
        budget: SearchBudget,
    ) -> Result<JoinHandle<Result<bool>>> {
        let served = self
            .get(name)
            .ok_or_else(|| ServeError::UnknownMatrix(name.to_string()))?;
        let cache = self.cache.clone();
        let handle = std::thread::Builder::new()
            .name(format!("spmv-retune-{name}"))
            .spawn(move || {
                let swapped = served.retune(budget)?;
                if let Some(cache) = cache {
                    served.store_plan_in(&cache)?;
                }
                Ok(swapped)
            })
            .expect("spawn retune thread");
        Ok(handle)
    }

    /// Look up a served matrix by name.
    pub fn get(&self, name: &str) -> Option<Arc<ServedMatrix>> {
        self.matrices.read().unwrap().get(name).cloned()
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.matrices.read().unwrap().keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of registered matrices.
    pub fn len(&self) -> usize {
        self.matrices.read().unwrap().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.matrices.read().unwrap().is_empty()
    }

    /// Remove a matrix. Existing `Arc<ServedMatrix>` handles (and batchers
    /// holding them) stay valid; the name becomes free for re-registration.
    pub fn remove(&self, name: &str) -> Option<Arc<ServedMatrix>> {
        self.matrices.write().unwrap().remove(name)
    }

    /// Served handles sorted by name — a stable iteration order for scrapes,
    /// snapshotted so the registry lock is not held while engines are probed.
    fn served_sorted(&self) -> Vec<Arc<ServedMatrix>> {
        let mut served: Vec<Arc<ServedMatrix>> =
            self.matrices.read().unwrap().values().cloned().collect();
        served.sort_by(|a, b| a.name().cmp(b.name()));
        served
    }

    /// Aggregate resident bytes across every served engine: the fleet-wide
    /// sum of per-matrix [`EngineFootprint::total_bytes`]. Each engine is
    /// probed outside the registry lock, so a scrape never blocks inserts.
    pub fn fleet_resident_bytes(&self) -> usize {
        self.served_sorted()
            .iter()
            .map(|m| m.footprint().total_bytes)
            .sum()
    }

    /// One point-in-time [`MetricsSnapshot`] covering every layer the registry
    /// can see: per-matrix engine telemetry (epochs, kernel/barrier time,
    /// imbalance, resident bytes, retunes), serve-loop statistics (requests,
    /// batches, latency / queue-wait / occupancy distributions), solver
    /// counters, and — registry-wide — tune-cache hit/miss/search counters
    /// plus the fleet resident-byte aggregate.
    ///
    /// Metric names carry the matrix as a Prometheus-style label
    /// (`spmv_engine_epochs_total{matrix="name"}`); both exporters
    /// ([`MetricsSnapshot::to_prometheus`] / [`MetricsSnapshot::to_json`])
    /// preserve it.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new();
        let mut fleet_bytes = 0u64;
        for m in self.served_sorted() {
            let tag = |metric: &str| format!("{metric}{{matrix=\"{}\"}}", m.name());
            let profile = m.engine_profile();
            let footprint = m.footprint();
            fleet_bytes += footprint.total_bytes as u64;

            snap.counter(tag("spmv_engine_epochs_total"), profile.epochs);
            snap.counter(tag("spmv_engine_spmv_epochs_total"), profile.spmv_epochs);
            snap.counter(tag("spmv_engine_spmm_epochs_total"), profile.spmm_epochs);
            snap.counter(
                tag("spmv_engine_solver_epochs_total"),
                profile.solver_epochs,
            );
            snap.counter(tag("spmv_engine_kernel_ns_total"), profile.kernel_ns());
            snap.counter(tag("spmv_engine_barrier_ns_total"), profile.barrier_ns());
            snap.gauge(tag("spmv_engine_time_imbalance"), profile.time_imbalance());
            snap.gauge(tag("spmv_engine_nnz_imbalance"), profile.nnz_imbalance());
            snap.gauge(tag("spmv_engine_workers"), profile.workers.len() as f64);
            snap.gauge(
                tag("spmv_engine_resident_bytes"),
                footprint.total_bytes as f64,
            );
            snap.histogram(tag("spmv_engine_epoch_ns"), profile.epoch_ns);
            snap.counter(tag("spmv_retunes_total"), m.retune_count());

            let stats = m.serve_stats();
            snap.counter(tag("spmv_serve_requests_total"), stats.requests());
            snap.counter(tag("spmv_serve_batches_total"), stats.batches());
            snap.histogram(tag("spmv_serve_latency_ns"), stats.latency_histogram());
            snap.histogram(
                tag("spmv_serve_queue_wait_ns"),
                stats.queue_wait_histogram(),
            );
            snap.histogram(
                tag("spmv_serve_batch_occupancy"),
                stats.occupancy_histogram(),
            );

            snap.counter(tag("spmv_solver_sessions_total"), m.solver_sessions());
            snap.counter(tag("spmv_solver_iterations_total"), m.solver_iterations());
            snap.counter(tag("spmv_solver_resyncs_total"), m.solver_resyncs());
        }
        if let Some(cache) = &self.cache {
            snap.counter("spmv_tune_cache_hits_total", cache.hit_count());
            snap.counter("spmv_tune_cache_misses_total", cache.miss_count());
            snap.counter("spmv_tune_cache_searches_total", cache.search_count());
            snap.counter("spmv_tune_search_ns_total", cache.search_nanos());
        }
        snap.gauge("spmv_fleet_matrices", self.len() as f64);
        snap.gauge("spmv_fleet_resident_bytes", fleet_bytes as f64);
        snap
    }

    /// The metrics snapshot rendered as Prometheus-style exposition text —
    /// the scrape endpoint body for this registry.
    pub fn metrics(&self) -> String {
        self.metrics_snapshot().to_prometheus()
    }
}

impl std::fmt::Debug for MatrixRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MatrixRegistry")
            .field("names", &self.names())
            .field("nthreads", &self.nthreads)
            .field("budget", &self.budget)
            .field("cached", &self.cache.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use spmv_core::formats::CooMatrix;
    use spmv_core::SpMv;

    fn random_csr(nrows: usize, ncols: usize, nnz: usize, seed: u64) -> CsrMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut coo = CooMatrix::new(nrows, ncols);
        for _ in 0..nnz {
            coo.push(
                rng.random_range(0..nrows),
                rng.random_range(0..ncols),
                rng.random_range(-1.0..1.0),
            );
        }
        CsrMatrix::from_coo(&coo)
    }

    fn temp_cache(tag: &str) -> (std::path::PathBuf, Arc<TuneCache>) {
        let dir = std::env::temp_dir().join(format!("spmv_registry_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let cache = Arc::new(TuneCache::with_platform(&dir, "test-plat").unwrap());
        (dir, cache)
    }

    #[test]
    fn insert_get_and_direct_apply() {
        let registry = MatrixRegistry::new(2, TuningConfig::full());
        let csr = random_csr(60, 50, 600, 1);
        let served = registry.insert("m", &csr).unwrap();
        assert_eq!(registry.names(), vec!["m".to_string()]);
        assert_eq!(served.nnz(), csr.nnz());
        let x: Vec<f64> = (0..50).map(|i| i as f64 * 0.1).collect();
        let y = served.spmv_now(&x).unwrap();
        let mut expected = vec![0.0; 60];
        csr.spmv(&x, &mut expected);
        let diff = y
            .iter()
            .zip(&expected)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(diff < 1e-9);
        assert!(served.footprint().total_bytes > 0);
        assert_eq!(registry.get("m").unwrap().name(), "m");
        assert!(registry.get("absent").is_none());
    }

    #[test]
    fn duplicate_names_rejected_and_remove_frees_them() {
        let registry = MatrixRegistry::new(1, TuningConfig::naive());
        let csr = random_csr(10, 10, 30, 2);
        registry.insert("m", &csr).unwrap();
        assert!(matches!(
            registry.insert("m", &csr),
            Err(ServeError::AlreadyRegistered(_))
        ));
        assert!(registry.remove("m").is_some());
        assert!(registry.is_empty());
        registry.insert("m", &csr).unwrap();
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn simd_plans_serve_and_report_their_kernel_class() {
        // Dense-ish matrix under the full config: on a host with a detected
        // SIMD level the heuristic plan enables the vectorized kernels, and
        // the served handle reports it. Results stay within accumulation
        // tolerance of the plain serial kernel (FMA reassociates).
        let registry = MatrixRegistry::new(2, TuningConfig::full());
        let csr = random_csr(96, 64, 96 * 40, 17);
        let served = registry.insert("dense", &csr).unwrap();
        assert_eq!(
            served.uses_simd(),
            spmv_core::kernels::simd::available(),
            "full() plans vectorized kernels exactly when the host has them"
        );
        let x: Vec<f64> = (0..64).map(|i| (i as f64 * 0.37).sin()).collect();
        let y = served.spmv_now(&x).unwrap();
        let mut expected = vec![0.0; 96];
        csr.spmv(&x, &mut expected);
        let scale = expected.iter().fold(1.0f64, |m, v| m.max(v.abs()));
        for (a, b) in y.iter().zip(&expected) {
            assert!((a - b).abs() <= 1e-12 * scale, "{a} vs {b}");
        }
        // A registry that forbids SIMD must never plan it, host or not.
        let scalar_registry = MatrixRegistry::new(2, TuningConfig::naive());
        let scalar = scalar_registry.insert("dense", &csr).unwrap();
        assert!(!scalar.uses_simd());
    }

    #[test]
    fn profile_round_trip_through_registry() {
        let registry = MatrixRegistry::new(2, TuningConfig::full());
        let csr = random_csr(80, 70, 900, 3);
        registry.insert("m", &csr).unwrap();
        let path = std::env::temp_dir().join("spmv_serve_registry_test.profile");
        registry.save_profile("m", &path).unwrap();

        let fresh = MatrixRegistry::new(2, TuningConfig::naive());
        let reloaded = fresh.insert_from_profile("m2", &csr, &path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(reloaded.plan(), registry.get("m").unwrap().plan());

        // A profile for a different matrix must be rejected.
        let other = random_csr(80, 70, 800, 4);
        let plan = TunePlan::new(&csr, 2, &TuningConfig::full());
        assert!(matches!(
            fresh.insert_with_plan("bad", &other, plan),
            Err(ServeError::Build(_))
        ));
    }

    #[test]
    fn spmm_now_matches_per_column_spmv() {
        let registry = MatrixRegistry::new(3, TuningConfig::full());
        let csr = random_csr(40, 30, 300, 5);
        let served = registry.insert("m", &csr).unwrap();
        let cols: Vec<Vec<f64>> = (0..5)
            .map(|j| (0..30).map(|i| (i * (j + 1)) as f64 * 0.05).collect())
            .collect();
        let views: Vec<&[f64]> = cols.iter().map(|c| c.as_slice()).collect();
        let x = MultiVec::from_columns(&views);
        let y = served.spmm_now(&x).unwrap();
        for j in 0..5 {
            assert_eq!(y.col(j), &served.spmv_now(x.col(j)).unwrap()[..]);
        }
    }

    #[test]
    fn dimension_mismatches_are_reported() {
        let registry = MatrixRegistry::new(1, TuningConfig::naive());
        let csr = random_csr(8, 6, 20, 6);
        let served = registry.insert("m", &csr).unwrap();
        assert!(matches!(
            served.spmv_now(&[1.0; 5]),
            Err(ServeError::DimensionMismatch {
                expected: 6,
                found: 5
            })
        ));
        assert!(registry.save_profile("absent", "/tmp/x").is_err());
    }

    #[test]
    fn cached_insert_skips_the_search_on_the_second_registry() {
        let (dir, cache) = temp_cache("warm_hit");
        let csr = random_csr(70, 60, 700, 7);

        let first = MatrixRegistry::new(2, TuningConfig::full())
            .with_budget(SearchBudget::Pruned)
            .with_cache(Arc::clone(&cache));
        let a = first.insert("m", &csr).unwrap();
        assert_eq!(cache.search_count(), 1);

        // A fresh registry sharing the cache serves the same plan with no
        // second search — the warm hit produces a ready ServedMatrix.
        let second = MatrixRegistry::new(2, TuningConfig::full())
            .with_budget(SearchBudget::Pruned)
            .with_cache(Arc::clone(&cache));
        let b = second.insert("m", &csr).unwrap();
        assert_eq!(cache.search_count(), 1, "warm insert must not search");
        assert_eq!(cache.hit_count(), 1);
        assert_eq!(a.plan(), b.plan());
        let x: Vec<f64> = (0..60).map(|i| (i % 7) as f64).collect();
        assert_eq!(a.spmv_now(&x).unwrap(), b.spmv_now(&x).unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn swap_plan_hot_swaps_the_engine() {
        let registry = MatrixRegistry::new(2, TuningConfig::full());
        let csr = random_csr(50, 50, 500, 8);
        let served = registry.insert("m", &csr).unwrap();
        assert_eq!(served.retune_count(), 0);
        let before = served.plan();

        let alt = TunePlan::new(&csr, 3, &TuningConfig::naive());
        assert_ne!(alt, before);
        served.swap_plan(alt.clone()).unwrap();
        assert_eq!(served.retune_count(), 1);
        assert_eq!(served.plan(), alt);
        let x: Vec<f64> = (0..50).map(|i| (i % 5) as f64 * 0.5).collect();
        let mut expected = vec![0.0; 50];
        csr.spmv(&x, &mut expected);
        let y = served.spmv_now(&x).unwrap();
        let diff = y
            .iter()
            .zip(&expected)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(diff < 1e-9);

        // A plan for a different matrix must be rejected and leave the old
        // engine serving.
        let other = random_csr(50, 50, 400, 9);
        let bad = TunePlan::new(&other, 2, &TuningConfig::full());
        assert!(served.swap_plan(bad).is_err());
        assert_eq!(served.retune_count(), 1);
        assert_eq!(served.plan(), alt);
    }

    #[test]
    fn retune_background_completes_and_keeps_serving() {
        let (dir, cache) = temp_cache("retune_bg");
        let registry = MatrixRegistry::new(2, TuningConfig::full())
            .with_budget(SearchBudget::Heuristic)
            .with_cache(Arc::clone(&cache));
        let csr = random_csr(90, 80, 1000, 10);
        let served = registry.insert("m", &csr).unwrap();

        let handle = registry
            .retune_background("m", SearchBudget::Pruned)
            .unwrap();
        // Serving stays live while the search runs.
        let x: Vec<f64> = (0..80).map(|i| (i % 9) as f64).collect();
        let _ = served.spmv_now(&x).unwrap();
        let swapped = handle.join().expect("retune thread").unwrap();
        // Whatever the search concluded, the served plan is the winner and the
        // cache holds it.
        let fp = MatrixFingerprint::compute(&csr);
        assert_eq!(fp, served.fingerprint());
        let cached = cache
            .lookup(&fp, 2, &TuningConfig::full(), &csr)
            .expect("winner persisted");
        assert_eq!(cached, served.plan());
        if swapped {
            assert_eq!(served.retune_count(), 1);
        } else {
            assert_eq!(served.retune_count(), 0);
        }
        assert!(registry
            .retune_background("absent", SearchBudget::Pruned)
            .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
