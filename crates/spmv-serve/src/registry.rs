//! The matrix registry: named matrices, their tune plans, and running engines.
//!
//! A serving deployment holds a small set of hot matrices, each tuned once
//! (possibly offline — plans round-trip through the plain-text profile format of
//! [`TunePlan::save`]/[`TunePlan::load`]) and then applied millions of times.
//! [`MatrixRegistry`] owns that mapping: inserting a matrix plans it (or adopts
//! a supplied/loaded plan), spins up the persistent [`SpmvEngine`], and hands
//! out [`ServedMatrix`] handles that batchers and direct callers share.
//!
//! Two knobs turn the registry from heuristic-only tuning into the measured
//! pipeline:
//!
//! * [`MatrixRegistry::with_budget`] — inserts run the measured whole-plan
//!   search ([`spmv_core::tuning::autotune`]) at the given [`SearchBudget`]
//!   instead of trusting the one-pass heuristic.
//! * [`MatrixRegistry::with_cache`] — winners persist in a [`TuneCache`]
//!   keyed by matrix fingerprint × platform × thread count, so re-inserting a
//!   known matrix (same process or a later one) skips the search entirely and
//!   produces a ready [`ServedMatrix`] straight from the cached plan.
//!
//! Serving never blocks on a search: [`ServedMatrix::retune`] (and the
//! registry's [`MatrixRegistry::retune_background`]) run the search and the
//! first-touch engine build **off** the serving lock, then hot-swap the new
//! engine in with one O(1) [`SpmvEngine::swap_with`] under the lock. In-flight
//! requests finish on the old engine; the next request runs on the new one.

use crate::stats::ServeStats;
use crate::{Result, ServeError};
use spmv_core::formats::CsrMatrix;
use spmv_core::multivec::MultiVec;
use spmv_core::tuning::autotune::{autotune, MatrixFingerprint, SearchBudget, TuneCache};
use spmv_core::tuning::plan::TunePlan;
use spmv_core::tuning::TuningConfig;
use spmv_core::MatrixShape;
use spmv_obs::{Counter, MetricsSnapshot, TraceKind};
use spmv_parallel::affinity::AffinityPolicy;
use spmv_parallel::engine::{EngineFootprint, EngineProfile};
use spmv_parallel::SpmvEngine;
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard};
use std::thread::JoinHandle;

/// One registered matrix: its identity, its (hot-swappable) tune plan, and the
/// running persistent engine that serves it. The matrix itself is retained
/// (shared, not copied — insert via [`MatrixRegistry::insert_arc`] to avoid
/// even the one-time clone) so background retunes can rebuild the engine
/// without the caller keeping the CSR alive, and its structural fingerprint
/// is computed once at build time for every cache interaction after.
pub struct ServedMatrix {
    name: String,
    csr: Arc<CsrMatrix>,
    fingerprint: MatrixFingerprint,
    nrows: usize,
    ncols: usize,
    nnz: usize,
    config: TuningConfig,
    affinity: AffinityPolicy,
    /// The plan the serving engine was materialized from. Updated under the
    /// engine lock by [`ServedMatrix::swap_plan`], so plan and engine never
    /// disagree.
    plan: RwLock<TunePlan>,
    engine: Mutex<SpmvEngine>,
    retunes: AtomicU64,
    /// Serve-loop statistics, shared with every batcher over this matrix so
    /// the registry can scrape latency/occupancy without batcher handles.
    stats: Arc<ServeStats>,
    /// Solver sessions opened over this matrix.
    solver_sessions: Counter,
    /// Solver iterations (CG steps / power iterations) executed.
    solver_iterations: Counter,
    /// Solver resyncs after an engine hot-swap mid-session.
    solver_resyncs: Counter,
    /// LRU stamp: the registry clock value of the most recent access. Only
    /// meaningful for matrices currently resident in a registry's hot set.
    touch: AtomicU64,
}

impl ServedMatrix {
    fn build(
        name: &str,
        csr: Arc<CsrMatrix>,
        plan: TunePlan,
        config: TuningConfig,
        affinity: AffinityPolicy,
        stats: Arc<ServeStats>,
    ) -> Result<ServedMatrix> {
        let engine = SpmvEngine::from_plan_with_affinity(&csr, &plan, affinity)?;
        Ok(ServedMatrix {
            name: name.to_string(),
            fingerprint: MatrixFingerprint::compute(&csr),
            nrows: csr.nrows(),
            ncols: csr.ncols(),
            nnz: csr.nnz(),
            csr,
            config,
            affinity,
            plan: RwLock::new(plan),
            engine: Mutex::new(engine),
            retunes: AtomicU64::new(0),
            stats,
            solver_sessions: Counter::new(),
            solver_iterations: Counter::new(),
            solver_resyncs: Counter::new(),
            touch: AtomicU64::new(0),
        })
    }

    /// Lock the serving engine, recovering from poisoning: a panic inside a
    /// kernel call happens before or after an epoch (the engine launches and
    /// joins workers per call), so the resident state a later caller sees is
    /// consistent — and a serving fleet must not let one panicked request
    /// wedge every future `spmv_now` on the matrix.
    fn engine(&self) -> MutexGuard<'_, SpmvEngine> {
        self.engine.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn plan_read(&self) -> RwLockReadGuard<'_, TunePlan> {
        self.plan.read().unwrap_or_else(|e| e.into_inner())
    }

    /// The matrix's structural fingerprint (computed once at registration).
    pub fn fingerprint(&self) -> MatrixFingerprint {
        self.fingerprint
    }

    /// Persist the currently-serving plan into `cache`, keyed by this
    /// matrix's fingerprint, the plan's own thread count, and the tuning
    /// config it was searched under — the single store path the registry's
    /// retune entry points share.
    fn store_plan_in(&self, cache: &TuneCache) -> Result<()> {
        let plan = self.plan();
        cache
            .store(&self.fingerprint, plan.num_threads(), &self.config, &plan)
            .map_err(ServeError::Build)
    }

    /// Registered name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rows of the served matrix.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Columns of the served matrix (the request vector length).
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Logical nonzeros (2 flops each per request).
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// The tune plan currently serving (a snapshot — a concurrent retune may
    /// swap in a new one right after this returns).
    pub fn plan(&self) -> TunePlan {
        self.plan_read().clone()
    }

    /// Whether the matrix is currently served from symmetric (lower-triangle)
    /// storage — chosen automatically when the tuning config exploits symmetry
    /// and the inserted matrix is detected symmetric.
    pub fn is_symmetric(&self) -> bool {
        self.plan_read().symmetric
    }

    /// Whether any worker of the serving plan runs the vectorized (SIMD)
    /// kernels. Plans loaded from a tune cache can only say yes on hosts
    /// whose detected feature set matches the cache's platform key, so this
    /// is also an operational probe for "did the SIMD plan survive the trip".
    pub fn uses_simd(&self) -> bool {
        self.plan_read().threads.iter().any(|t| t.simd)
    }

    /// How many engine hot-swaps this matrix has completed.
    pub fn retune_count(&self) -> u64 {
        self.retunes.load(Ordering::Relaxed)
    }

    /// The serve statistics shared by every batcher over this matrix.
    /// Batchers record into this instance, so a registry-level metrics scrape
    /// sees latency/queue-wait/occupancy without holding batcher handles.
    pub fn serve_stats(&self) -> &Arc<ServeStats> {
        &self.stats
    }

    /// Solver sessions opened over this matrix.
    pub fn solver_sessions(&self) -> u64 {
        self.solver_sessions.get()
    }

    /// Solver iterations executed across all sessions over this matrix.
    pub fn solver_iterations(&self) -> u64 {
        self.solver_iterations.get()
    }

    /// Solver resyncs (sessions rebuilt after an engine hot-swap).
    pub fn solver_resyncs(&self) -> u64 {
        self.solver_resyncs.get()
    }

    /// Count one opened solver session.
    pub(crate) fn note_solver_session(&self) {
        self.solver_sessions.inc();
    }

    /// Count `n` solver iterations.
    pub(crate) fn note_solver_iterations(&self, n: u64) {
        self.solver_iterations.add(n);
    }

    /// Count one solver resync.
    pub(crate) fn note_solver_resync(&self) {
        self.solver_resyncs.inc();
    }

    /// The serving engine's telemetry profile: epochs by kind, per-worker
    /// kernel/barrier time and nnz, and the epoch wall-time distribution.
    pub fn engine_profile(&self) -> EngineProfile {
        self.engine().profile()
    }

    /// The shared matrix storage (for building session-private engines).
    pub(crate) fn csr_arc(&self) -> &Arc<CsrMatrix> {
        &self.csr
    }

    /// The affinity policy session-private engines must honour.
    pub(crate) fn affinity_policy(&self) -> AffinityPolicy {
        self.affinity
    }

    /// The engine's footprint report (per-worker bytes + affinity policy).
    pub fn footprint(&self) -> EngineFootprint {
        self.engine().footprint()
    }

    /// Apply the matrix to one vector immediately, bypassing any batching.
    pub fn spmv_now(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.ncols {
            return Err(ServeError::DimensionMismatch {
                expected: self.ncols,
                found: x.len(),
            });
        }
        let mut y = vec![0.0; self.nrows];
        self.engine().spmv(x, &mut y);
        Ok(y)
    }

    /// Apply the matrix to a column-major block of vectors immediately.
    pub fn spmm_now(&self, x: &MultiVec) -> Result<MultiVec> {
        if x.ld() != self.ncols {
            return Err(ServeError::DimensionMismatch {
                expected: self.ncols,
                found: x.ld(),
            });
        }
        let mut y = MultiVec::zeros(self.nrows, x.k());
        self.engine().spmm(x, &mut y);
        Ok(y)
    }

    /// Apply a prebuilt block into a caller-owned destination (the batcher's
    /// zero-copy path), timing only the engine execution.
    pub(crate) fn spmm_into(&self, x: &MultiVec, y: &mut MultiVec) -> std::time::Duration {
        let mut engine = self.engine();
        let t0 = std::time::Instant::now();
        engine.spmm(x, y);
        t0.elapsed()
    }

    /// Hot-swap the serving engine to `plan`. The replacement engine is built
    /// **before** the serving lock is taken (tuning search and first-touch
    /// materialization are the expensive parts), the swap itself is one O(1)
    /// pointer exchange under the lock, and the old engine's workers are
    /// joined only after the lock is released — so concurrent `spmv_now` /
    /// `spmm_now` callers observe either the old engine or the new one,
    /// never a stall and never a torn state.
    pub fn swap_plan(&self, plan: TunePlan) -> Result<()> {
        let replacement = SpmvEngine::from_plan_with_affinity(&self.csr, &plan, self.affinity)?;
        let old = {
            let mut engine = self.engine();
            let old = engine.swap_with(replacement);
            // Plan updated under the engine lock: a reader holding a fresh
            // plan() snapshot is looking at the engine that serves it.
            *self.plan.write().unwrap_or_else(|e| e.into_inner()) = plan;
            old
        };
        drop(old);
        let swaps = self.retunes.fetch_add(1, Ordering::Relaxed) + 1;
        spmv_obs::trace::trace(TraceKind::Retune, self.fingerprint.hash, swaps);
        Ok(())
    }

    /// Re-run the measured whole-plan search at `budget` (off the serving
    /// lock) and hot-swap the winner in if it differs from the current plan.
    /// Returns whether a swap happened. Serving continues uninterrupted
    /// throughout.
    pub fn retune(&self, budget: SearchBudget) -> Result<bool> {
        let nthreads = self.plan_read().num_threads();
        let outcome = autotune(&self.csr, nthreads, &self.config, budget);
        if outcome.plan == *self.plan_read() {
            return Ok(false);
        }
        self.swap_plan(outcome.plan)?;
        Ok(true)
    }
}

impl std::fmt::Debug for ServedMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServedMatrix")
            .field("name", &self.name)
            .field("nrows", &self.nrows)
            .field("ncols", &self.ncols)
            .field("nnz", &self.nnz)
            .field("retunes", &self.retune_count())
            .finish()
    }
}

/// One registry entry: resident (engine running, workers live) or demoted to
/// the cold tier (engine torn down; see [`ColdEntry`] for what survives).
enum Slot {
    Hot(Arc<ServedMatrix>),
    Cold(ColdEntry),
}

/// What an eviction retains: enough to rematerialize the served handle with
/// no tuning search (the matrix and the plan it was serving), plus the serve
/// statistics and lifetime counters so every exported counter family stays
/// monotonic across demote/rematerialize cycles — a Prometheus counter that
/// jumps backwards reads as a process restart.
struct ColdEntry {
    csr: Arc<CsrMatrix>,
    plan: TunePlan,
    stats: Arc<ServeStats>,
    retunes: u64,
    solver_sessions: u64,
    solver_iterations: u64,
    solver_resyncs: u64,
}

/// Named matrices → tuned, running engines, with an optional LRU hot set.
///
/// By default every registered matrix keeps its engine resident. A serving
/// fleet whose catalogue exceeds memory caps residency instead:
/// [`MatrixRegistry::with_hot_capacity`] bounds the number of **hot** (engine
/// running) matrices; registering or touching a matrix beyond the cap demotes
/// the least-recently-used hot entry to a cold tier that retains the matrix,
/// its tune plan, and its statistics but tears the engine (and its worker
/// threads) down. A [`MatrixRegistry::get`] on a cold entry rematerializes
/// the engine from the retained plan — no tuning search — and re-enters it in
/// the hot set, demoting someone else if needed. Outstanding
/// `Arc<ServedMatrix>` handles (a batcher mid-flight on an evicted matrix)
/// keep their engine alive until dropped, so eviction never interrupts
/// in-flight work; the handle a later `get` returns is simply a fresh one.
pub struct MatrixRegistry {
    matrices: RwLock<HashMap<String, Slot>>,
    nthreads: usize,
    config: TuningConfig,
    affinity: AffinityPolicy,
    budget: SearchBudget,
    cache: Option<Arc<TuneCache>>,
    /// Max hot (engine-resident) matrices; `None` = unbounded (every entry hot).
    hot_capacity: Option<usize>,
    /// LRU clock: bumped on every insert/touch; hot entries carry the stamp
    /// of their most recent access in [`ServedMatrix::touch`].
    clock: AtomicU64,
    evictions: Counter,
    cold_rebuilds: Counter,
}

impl MatrixRegistry {
    /// A registry whose engines run `nthreads` workers, tuned with `config`,
    /// under the engine's default first-touch affinity. Inserts use the
    /// one-pass heuristic ([`SearchBudget::Heuristic`]) and no cache; see
    /// [`MatrixRegistry::with_budget`] / [`MatrixRegistry::with_cache`].
    pub fn new(nthreads: usize, config: TuningConfig) -> MatrixRegistry {
        Self::with_affinity(nthreads, config, AffinityPolicy::first_touch())
    }

    /// [`MatrixRegistry::new`] with an explicit [`AffinityPolicy`] recorded on
    /// every engine built by this registry.
    pub fn with_affinity(
        nthreads: usize,
        config: TuningConfig,
        affinity: AffinityPolicy,
    ) -> MatrixRegistry {
        assert!(nthreads > 0, "registry engines need at least one worker");
        MatrixRegistry {
            matrices: RwLock::new(HashMap::new()),
            nthreads,
            config,
            affinity,
            budget: SearchBudget::Heuristic,
            cache: None,
            hot_capacity: None,
            clock: AtomicU64::new(0),
            evictions: Counter::new(),
            cold_rebuilds: Counter::new(),
        }
    }

    /// Cap the hot set at `capacity` engine-resident matrices. Registering or
    /// touching a matrix beyond the cap demotes the least-recently-used hot
    /// entry (engine torn down, matrix + plan + stats retained); a later
    /// [`MatrixRegistry::get`] rematerializes it from the retained plan.
    pub fn with_hot_capacity(mut self, capacity: usize) -> MatrixRegistry {
        assert!(capacity > 0, "hot set needs room for at least one matrix");
        self.hot_capacity = Some(capacity);
        self
    }

    /// Tune inserts with the measured whole-plan search at `budget` instead of
    /// the plain heuristic.
    pub fn with_budget(mut self, budget: SearchBudget) -> MatrixRegistry {
        self.budget = budget;
        self
    }

    /// Persist (and reuse) winning plans through `cache`: an insert whose
    /// matrix fingerprint is already cached skips the search entirely and
    /// serves from the cached plan; misses search at the registry's budget and
    /// store the winner. Share one [`TuneCache`] across registries (and
    /// processes pointing at the same directory) to amortize tuning globally.
    pub fn with_cache(mut self, cache: Arc<TuneCache>) -> MatrixRegistry {
        self.cache = Some(cache);
        self
    }

    /// The search budget inserts tune at.
    pub fn budget(&self) -> SearchBudget {
        self.budget
    }

    /// The tune cache, when one is attached.
    pub fn cache(&self) -> Option<&Arc<TuneCache>> {
        self.cache.as_ref()
    }

    /// Produce the plan an insert of `csr` should serve: cache hit → cached
    /// plan (no search); miss or no cache → heuristic or measured search per
    /// the registry's budget (winner stored when a cache is attached).
    fn plan_for(&self, csr: &CsrMatrix) -> Result<TunePlan> {
        match &self.cache {
            Some(cache) => cache
                .autotune(csr, self.nthreads, &self.config, self.budget)
                .map(|outcome| outcome.plan)
                .map_err(ServeError::Build),
            None => Ok(match self.budget {
                SearchBudget::Heuristic => TunePlan::new(csr, self.nthreads, &self.config),
                budget => autotune(csr, self.nthreads, &self.config, budget).plan,
            }),
        }
    }

    /// Tune `csr` with the registry's configuration (heuristic, searched, or
    /// cache-served per the registry's budget and cache) and register it under
    /// `name`, returning the served handle. Clones the matrix once so the
    /// served handle can retune without the caller keeping it alive; pass an
    /// [`MatrixRegistry::insert_arc`] when the caller already holds an `Arc`
    /// and the copy matters (large matrices).
    pub fn insert(&self, name: &str, csr: &CsrMatrix) -> Result<Arc<ServedMatrix>> {
        self.insert_arc(name, Arc::new(csr.clone()))
    }

    /// [`MatrixRegistry::insert`] without the clone: the served handle shares
    /// the caller's `Arc<CsrMatrix>`.
    pub fn insert_arc(&self, name: &str, csr: Arc<CsrMatrix>) -> Result<Arc<ServedMatrix>> {
        let plan = self.plan_for(&csr)?;
        self.insert_arc_with_plan(name, csr, plan)
    }

    /// Register `csr` under `name` with an already-built [`TunePlan`] (e.g. one
    /// produced by an offline tuning pass). The plan is validated against the
    /// matrix by engine construction.
    pub fn insert_with_plan(
        &self,
        name: &str,
        csr: &CsrMatrix,
        plan: TunePlan,
    ) -> Result<Arc<ServedMatrix>> {
        self.insert_arc_with_plan(name, Arc::new(csr.clone()), plan)
    }

    /// [`MatrixRegistry::insert_with_plan`] without the clone.
    pub fn insert_arc_with_plan(
        &self,
        name: &str,
        csr: Arc<CsrMatrix>,
        plan: TunePlan,
    ) -> Result<Arc<ServedMatrix>> {
        // Cheap duplicate check first: building the engine materializes the
        // whole matrix and spawns workers, which a taken name must not cost.
        if self.read_map().contains_key(name) {
            return Err(ServeError::AlreadyRegistered(name.to_string()));
        }
        let served = Arc::new(ServedMatrix::build(
            name,
            csr,
            plan,
            self.config,
            self.affinity,
            Arc::new(ServeStats::new()),
        )?);
        served.touch.store(self.next_stamp(), Ordering::Relaxed);
        let mut map = self.write_map();
        // Re-check under the write lock: a racing insert may have won the name
        // while this one was building.
        if map.contains_key(name) {
            return Err(ServeError::AlreadyRegistered(name.to_string()));
        }
        map.insert(name.to_string(), Slot::Hot(Arc::clone(&served)));
        self.enforce_capacity(&mut map);
        Ok(served)
    }

    /// Register `csr` under `name` with a plan loaded from a plain-text profile
    /// (the `spmv-tune-plan v1` format).
    pub fn insert_from_profile(
        &self,
        name: &str,
        csr: &CsrMatrix,
        path: impl AsRef<Path>,
    ) -> Result<Arc<ServedMatrix>> {
        let plan = TunePlan::load(path).map_err(|e| ServeError::Profile(e.to_string()))?;
        self.insert_with_plan(name, csr, plan)
    }

    /// Save the registered matrix's current tune plan as a plain-text profile,
    /// so a later process can skip the tuning pass.
    pub fn save_profile(&self, name: &str, path: impl AsRef<Path>) -> Result<()> {
        let served = self
            .get(name)
            .ok_or_else(|| ServeError::UnknownMatrix(name.to_string()))?;
        served
            .plan()
            .save(path)
            .map_err(|e| ServeError::Profile(e.to_string()))
    }

    /// Synchronously retune `name` at `budget` and hot-swap the winner in if
    /// it beats the serving plan (see [`ServedMatrix::retune`]; serving never
    /// blocks on the search). The winner is persisted when a cache is
    /// attached — keyed by the served plan's own thread count, which can
    /// legitimately differ from the registry's (plans adopted via
    /// `insert_with_plan` or swapped in directly). Returns whether a swap
    /// happened.
    pub fn retune(&self, name: &str, budget: SearchBudget) -> Result<bool> {
        let served = self
            .get(name)
            .ok_or_else(|| ServeError::UnknownMatrix(name.to_string()))?;
        let swapped = served.retune(budget)?;
        if let Some(cache) = &self.cache {
            served.store_plan_in(cache)?;
        }
        Ok(swapped)
    }

    /// [`MatrixRegistry::retune`] on a background thread: returns immediately
    /// with a handle; serving continues on the current engine until the search
    /// finishes and the new engine hot-swaps in.
    pub fn retune_background(
        &self,
        name: &str,
        budget: SearchBudget,
    ) -> Result<JoinHandle<Result<bool>>> {
        let served = self
            .get(name)
            .ok_or_else(|| ServeError::UnknownMatrix(name.to_string()))?;
        let cache = self.cache.clone();
        let handle = std::thread::Builder::new()
            .name(format!("spmv-retune-{name}"))
            .spawn(move || {
                let swapped = served.retune(budget)?;
                if let Some(cache) = cache {
                    served.store_plan_in(&cache)?;
                }
                Ok(swapped)
            })
            .expect("spawn retune thread");
        Ok(handle)
    }

    /// Lock the registry map for reading, recovering from poisoning: the map
    /// is consistent at every panic point (slot replacement is a single
    /// `insert`), and a serving fleet must keep resolving names after one
    /// panicked peer.
    fn read_map(&self) -> RwLockReadGuard<'_, HashMap<String, Slot>> {
        self.matrices.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write_map(&self) -> std::sync::RwLockWriteGuard<'_, HashMap<String, Slot>> {
        self.matrices.write().unwrap_or_else(|e| e.into_inner())
    }

    /// The next LRU clock value (monotonic, never 0 after first use).
    fn next_stamp(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Look up a served matrix by name, rematerializing it from the cold tier
    /// if a bounded hot set evicted it (see [`MatrixRegistry::with_hot_capacity`]).
    /// Every hit — hot or rebuilt — counts as an LRU touch.
    pub fn get(&self, name: &str) -> Option<Arc<ServedMatrix>> {
        {
            let map = self.read_map();
            match map.get(name) {
                Some(Slot::Hot(served)) => {
                    served.touch.store(self.next_stamp(), Ordering::Relaxed);
                    return Some(Arc::clone(served));
                }
                Some(Slot::Cold(_)) => {}
                None => return None,
            }
        }
        self.rematerialize(name)
    }

    /// Rebuild a cold entry's engine from its retained plan (no tuning
    /// search) and promote it back into the hot set. The engine build — the
    /// expensive part — runs off the registry lock; concurrent `get`s on the
    /// same cold name may race the build, and the first to take the write
    /// lock wins (the losers adopt the winner's handle, their spare engine
    /// drops).
    fn rematerialize(&self, name: &str) -> Option<Arc<ServedMatrix>> {
        let cold = {
            let map = self.read_map();
            match map.get(name) {
                Some(Slot::Cold(c)) => ColdEntry {
                    csr: Arc::clone(&c.csr),
                    plan: c.plan.clone(),
                    stats: Arc::clone(&c.stats),
                    retunes: c.retunes,
                    solver_sessions: c.solver_sessions,
                    solver_iterations: c.solver_iterations,
                    solver_resyncs: c.solver_resyncs,
                },
                // Raced: someone else already rebuilt (or the name vanished).
                Some(Slot::Hot(served)) => {
                    served.touch.store(self.next_stamp(), Ordering::Relaxed);
                    return Some(Arc::clone(served));
                }
                None => return None,
            }
        };
        // The retained plan validated against this matrix when it first
        // served, so the rebuild is infallible in practice; a genuine failure
        // (resource exhaustion) reads as "not found" rather than a panic.
        let served = ServedMatrix::build(
            name,
            cold.csr,
            cold.plan,
            self.config,
            self.affinity,
            cold.stats,
        )
        .ok()
        .map(Arc::new)?;
        served.retunes.store(cold.retunes, Ordering::Relaxed);
        served.solver_sessions.add(cold.solver_sessions);
        served.solver_iterations.add(cold.solver_iterations);
        served.solver_resyncs.add(cold.solver_resyncs);
        served.touch.store(self.next_stamp(), Ordering::Relaxed);
        let mut map = self.write_map();
        match map.get(name) {
            Some(Slot::Cold(_)) => {}
            Some(Slot::Hot(winner)) => {
                winner.touch.store(self.next_stamp(), Ordering::Relaxed);
                return Some(Arc::clone(winner));
            }
            None => return None,
        }
        map.insert(name.to_string(), Slot::Hot(Arc::clone(&served)));
        self.cold_rebuilds.inc();
        spmv_obs::trace::trace(
            TraceKind::ColdRebuild,
            served.fingerprint.hash,
            self.cold_rebuilds.get(),
        );
        self.enforce_capacity(&mut map);
        Some(served)
    }

    /// Demote least-recently-used hot entries until the hot set fits the cap.
    /// Called with the write lock held, right after a promotion/insert.
    fn enforce_capacity(&self, map: &mut HashMap<String, Slot>) {
        let Some(capacity) = self.hot_capacity else {
            return;
        };
        loop {
            let mut hot = 0usize;
            let mut victim: Option<(String, u64)> = None;
            for (name, slot) in map.iter() {
                if let Slot::Hot(served) = slot {
                    hot += 1;
                    let stamp = served.touch.load(Ordering::Relaxed);
                    if victim.as_ref().is_none_or(|(_, s)| stamp < *s) {
                        victim = Some((name.clone(), stamp));
                    }
                }
            }
            if hot <= capacity {
                return;
            }
            let (name, _) = victim.expect("hot > capacity >= 1 implies a victim");
            self.demote(map, &name);
        }
    }

    /// Demote one hot entry to the cold tier: snapshot what must survive
    /// (matrix, serving plan, stats, lifetime counters), then replace the
    /// slot. Dropping the map's `Arc` tears the engine down unless an
    /// outstanding handle (a batcher mid-flight) still holds it — in-flight
    /// work always completes on the engine it started on.
    fn demote(&self, map: &mut HashMap<String, Slot>, name: &str) {
        let Some(Slot::Hot(served)) = map.get(name) else {
            return;
        };
        let cold = ColdEntry {
            csr: Arc::clone(&served.csr),
            plan: served.plan(),
            stats: Arc::clone(&served.stats),
            retunes: served.retune_count(),
            solver_sessions: served.solver_sessions(),
            solver_iterations: served.solver_iterations(),
            solver_resyncs: served.solver_resyncs(),
        };
        let fingerprint = served.fingerprint.hash;
        map.insert(name.to_string(), Slot::Cold(cold));
        self.evictions.inc();
        spmv_obs::trace::trace(TraceKind::Evict, fingerprint, self.evictions.get());
    }

    /// Registered names (hot and cold), sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.read_map().keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of registered matrices, hot and cold.
    pub fn len(&self) -> usize {
        self.read_map().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.read_map().is_empty()
    }

    /// Matrices currently hot (engine resident). Equals [`MatrixRegistry::len`]
    /// unless a hot-capacity cap demoted someone.
    pub fn hot_len(&self) -> usize {
        self.read_map()
            .values()
            .filter(|slot| matches!(slot, Slot::Hot(_)))
            .count()
    }

    /// Whether `name` is currently hot (false when cold or absent).
    pub fn is_hot(&self, name: &str) -> bool {
        matches!(self.read_map().get(name), Some(Slot::Hot(_)))
    }

    /// Hot-set evictions performed so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.get()
    }

    /// Cold entries rematerialized (engine rebuilt from the retained plan).
    pub fn cold_rebuilds(&self) -> u64 {
        self.cold_rebuilds.get()
    }

    /// Remove a matrix. Existing `Arc<ServedMatrix>` handles (and batchers
    /// holding them) stay valid; the name becomes free for re-registration.
    /// Returns the served handle when the entry was hot; removing a cold
    /// entry frees the name but has no engine to return.
    pub fn remove(&self, name: &str) -> Option<Arc<ServedMatrix>> {
        match self.write_map().remove(name) {
            Some(Slot::Hot(served)) => Some(served),
            Some(Slot::Cold(_)) | None => None,
        }
    }

    /// Hot served handles sorted by name — a stable iteration order for
    /// scrapes, snapshotted so the registry lock is not held while engines
    /// are probed. Cold entries have no engine; their serve statistics are
    /// folded into [`MatrixRegistry::metrics_snapshot`] separately.
    fn served_sorted(&self) -> Vec<Arc<ServedMatrix>> {
        let mut served: Vec<Arc<ServedMatrix>> = self
            .read_map()
            .values()
            .filter_map(|slot| match slot {
                Slot::Hot(served) => Some(Arc::clone(served)),
                Slot::Cold(_) => None,
            })
            .collect();
        served.sort_by(|a, b| a.name().cmp(b.name()));
        served
    }

    /// Aggregate resident bytes across every served engine: the fleet-wide
    /// sum of per-matrix [`EngineFootprint::total_bytes`]. Each engine is
    /// probed outside the registry lock, so a scrape never blocks inserts.
    pub fn fleet_resident_bytes(&self) -> usize {
        self.served_sorted()
            .iter()
            .map(|m| m.footprint().total_bytes)
            .sum()
    }

    /// One point-in-time [`MetricsSnapshot`] covering every layer the registry
    /// can see: per-matrix engine telemetry (epochs, kernel/barrier time,
    /// imbalance, resident bytes, retunes), serve-loop statistics (requests,
    /// batches, latency / queue-wait / occupancy distributions), solver
    /// counters, and — registry-wide — tune-cache hit/miss/search counters
    /// plus the fleet resident-byte aggregate.
    ///
    /// Metric names carry the matrix as a Prometheus-style label
    /// (`spmv_engine_epochs_total{matrix="name"}`); both exporters
    /// ([`MetricsSnapshot::to_prometheus`] / [`MetricsSnapshot::to_json`])
    /// preserve it.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new();
        let mut fleet_bytes = 0u64;

        // Serve-loop stats per matrix, hot or cold: a cold entry's engine is
        // gone but its counters live on (the stats Arc rides the ColdEntry),
        // so requests/sheds stay monotonic across demote/rematerialize.
        enum Scrape {
            Hot(Arc<ServedMatrix>),
            Cold {
                stats: Arc<ServeStats>,
                retunes: u64,
                solver_sessions: u64,
                solver_iterations: u64,
                solver_resyncs: u64,
            },
        }
        let mut entries: Vec<(String, Scrape)> = {
            let map = self.read_map();
            map.iter()
                .map(|(name, slot)| {
                    let scrape = match slot {
                        Slot::Hot(served) => Scrape::Hot(Arc::clone(served)),
                        Slot::Cold(c) => Scrape::Cold {
                            stats: Arc::clone(&c.stats),
                            retunes: c.retunes,
                            solver_sessions: c.solver_sessions,
                            solver_iterations: c.solver_iterations,
                            solver_resyncs: c.solver_resyncs,
                        },
                    };
                    (name.clone(), scrape)
                })
                .collect()
        };
        entries.sort_by(|a, b| a.0.cmp(&b.0));

        let mut hot = 0u64;
        for (name, entry) in &entries {
            let tag = |metric: &str| format!("{metric}{{matrix=\"{name}\"}}");
            let (stats, retunes, sessions, iterations, resyncs) = match entry {
                Scrape::Hot(m) => {
                    hot += 1;
                    // Engines are probed outside the registry lock (the map
                    // guard dropped when `entries` was built), so a scrape
                    // never blocks inserts.
                    let profile = m.engine_profile();
                    let footprint = m.footprint();
                    fleet_bytes += footprint.total_bytes as u64;

                    snap.counter(tag("spmv_engine_epochs_total"), profile.epochs);
                    snap.counter(tag("spmv_engine_spmv_epochs_total"), profile.spmv_epochs);
                    snap.counter(tag("spmv_engine_spmm_epochs_total"), profile.spmm_epochs);
                    snap.counter(
                        tag("spmv_engine_solver_epochs_total"),
                        profile.solver_epochs,
                    );
                    snap.counter(tag("spmv_engine_kernel_ns_total"), profile.kernel_ns());
                    snap.counter(tag("spmv_engine_barrier_ns_total"), profile.barrier_ns());
                    snap.gauge(tag("spmv_engine_time_imbalance"), profile.time_imbalance());
                    snap.gauge(tag("spmv_engine_nnz_imbalance"), profile.nnz_imbalance());
                    snap.gauge(tag("spmv_engine_workers"), profile.workers.len() as f64);
                    snap.gauge(
                        tag("spmv_engine_resident_bytes"),
                        footprint.total_bytes as f64,
                    );
                    snap.histogram(tag("spmv_engine_epoch_ns"), profile.epoch_ns);
                    snap.gauge(tag("spmv_registry_hot"), 1.0);
                    (
                        Arc::clone(m.serve_stats()),
                        m.retune_count(),
                        m.solver_sessions(),
                        m.solver_iterations(),
                        m.solver_resyncs(),
                    )
                }
                Scrape::Cold {
                    stats,
                    retunes,
                    solver_sessions,
                    solver_iterations,
                    solver_resyncs,
                } => {
                    snap.gauge(tag("spmv_registry_hot"), 0.0);
                    (
                        Arc::clone(stats),
                        *retunes,
                        *solver_sessions,
                        *solver_iterations,
                        *solver_resyncs,
                    )
                }
            };
            snap.counter(tag("spmv_retunes_total"), retunes);
            snap.counter(tag("spmv_serve_requests_total"), stats.requests());
            snap.counter(tag("spmv_serve_batches_total"), stats.batches());
            snap.counter(tag("spmv_serve_sheds_total"), stats.sheds());
            snap.counter(
                tag("spmv_serve_failed_batches_total"),
                stats.failed_batches(),
            );
            snap.histogram(tag("spmv_serve_latency_ns"), stats.latency_histogram());
            snap.histogram(
                tag("spmv_serve_queue_wait_ns"),
                stats.queue_wait_histogram(),
            );
            snap.histogram(
                tag("spmv_serve_batch_occupancy"),
                stats.occupancy_histogram(),
            );

            snap.counter(tag("spmv_solver_sessions_total"), sessions);
            snap.counter(tag("spmv_solver_iterations_total"), iterations);
            snap.counter(tag("spmv_solver_resyncs_total"), resyncs);
        }
        if let Some(cache) = &self.cache {
            snap.counter("spmv_tune_cache_hits_total", cache.hit_count());
            snap.counter("spmv_tune_cache_misses_total", cache.miss_count());
            snap.counter("spmv_tune_cache_searches_total", cache.search_count());
            snap.counter("spmv_tune_search_ns_total", cache.search_nanos());
        }
        snap.counter("spmv_registry_evictions_total", self.evictions());
        snap.counter("spmv_registry_cold_rebuilds_total", self.cold_rebuilds());
        snap.gauge("spmv_registry_hot_matrices", hot as f64);
        snap.gauge(
            "spmv_registry_cold_matrices",
            (entries.len() as u64 - hot) as f64,
        );
        snap.gauge("spmv_fleet_matrices", entries.len() as f64);
        snap.gauge("spmv_fleet_resident_bytes", fleet_bytes as f64);
        snap
    }

    /// The metrics snapshot rendered as Prometheus-style exposition text —
    /// the scrape endpoint body for this registry.
    pub fn metrics(&self) -> String {
        self.metrics_snapshot().to_prometheus()
    }
}

impl std::fmt::Debug for MatrixRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MatrixRegistry")
            .field("names", &self.names())
            .field("nthreads", &self.nthreads)
            .field("budget", &self.budget)
            .field("cached", &self.cache.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use spmv_core::formats::CooMatrix;
    use spmv_core::SpMv;

    fn random_csr(nrows: usize, ncols: usize, nnz: usize, seed: u64) -> CsrMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut coo = CooMatrix::new(nrows, ncols);
        for _ in 0..nnz {
            coo.push(
                rng.random_range(0..nrows),
                rng.random_range(0..ncols),
                rng.random_range(-1.0..1.0),
            );
        }
        CsrMatrix::from_coo(&coo)
    }

    fn temp_cache(tag: &str) -> (std::path::PathBuf, Arc<TuneCache>) {
        let dir = std::env::temp_dir().join(format!("spmv_registry_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let cache = Arc::new(TuneCache::with_platform(&dir, "test-plat").unwrap());
        (dir, cache)
    }

    #[test]
    fn insert_get_and_direct_apply() {
        let registry = MatrixRegistry::new(2, TuningConfig::full());
        let csr = random_csr(60, 50, 600, 1);
        let served = registry.insert("m", &csr).unwrap();
        assert_eq!(registry.names(), vec!["m".to_string()]);
        assert_eq!(served.nnz(), csr.nnz());
        let x: Vec<f64> = (0..50).map(|i| i as f64 * 0.1).collect();
        let y = served.spmv_now(&x).unwrap();
        let mut expected = vec![0.0; 60];
        csr.spmv(&x, &mut expected);
        let diff = y
            .iter()
            .zip(&expected)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(diff < 1e-9);
        assert!(served.footprint().total_bytes > 0);
        assert_eq!(registry.get("m").unwrap().name(), "m");
        assert!(registry.get("absent").is_none());
    }

    #[test]
    fn duplicate_names_rejected_and_remove_frees_them() {
        let registry = MatrixRegistry::new(1, TuningConfig::naive());
        let csr = random_csr(10, 10, 30, 2);
        registry.insert("m", &csr).unwrap();
        assert!(matches!(
            registry.insert("m", &csr),
            Err(ServeError::AlreadyRegistered(_))
        ));
        assert!(registry.remove("m").is_some());
        assert!(registry.is_empty());
        registry.insert("m", &csr).unwrap();
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn simd_plans_serve_and_report_their_kernel_class() {
        // Dense-ish matrix under the full config: on a host with a detected
        // SIMD level the heuristic plan enables the vectorized kernels, and
        // the served handle reports it. Results stay within accumulation
        // tolerance of the plain serial kernel (FMA reassociates).
        let registry = MatrixRegistry::new(2, TuningConfig::full());
        let csr = random_csr(96, 64, 96 * 40, 17);
        let served = registry.insert("dense", &csr).unwrap();
        assert_eq!(
            served.uses_simd(),
            spmv_core::kernels::simd::available(),
            "full() plans vectorized kernels exactly when the host has them"
        );
        let x: Vec<f64> = (0..64).map(|i| (i as f64 * 0.37).sin()).collect();
        let y = served.spmv_now(&x).unwrap();
        let mut expected = vec![0.0; 96];
        csr.spmv(&x, &mut expected);
        let scale = expected.iter().fold(1.0f64, |m, v| m.max(v.abs()));
        for (a, b) in y.iter().zip(&expected) {
            assert!((a - b).abs() <= 1e-12 * scale, "{a} vs {b}");
        }
        // A registry that forbids SIMD must never plan it, host or not.
        let scalar_registry = MatrixRegistry::new(2, TuningConfig::naive());
        let scalar = scalar_registry.insert("dense", &csr).unwrap();
        assert!(!scalar.uses_simd());
    }

    #[test]
    fn profile_round_trip_through_registry() {
        let registry = MatrixRegistry::new(2, TuningConfig::full());
        let csr = random_csr(80, 70, 900, 3);
        registry.insert("m", &csr).unwrap();
        let path = std::env::temp_dir().join("spmv_serve_registry_test.profile");
        registry.save_profile("m", &path).unwrap();

        let fresh = MatrixRegistry::new(2, TuningConfig::naive());
        let reloaded = fresh.insert_from_profile("m2", &csr, &path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(reloaded.plan(), registry.get("m").unwrap().plan());

        // A profile for a different matrix must be rejected.
        let other = random_csr(80, 70, 800, 4);
        let plan = TunePlan::new(&csr, 2, &TuningConfig::full());
        assert!(matches!(
            fresh.insert_with_plan("bad", &other, plan),
            Err(ServeError::Build(_))
        ));
    }

    #[test]
    fn spmm_now_matches_per_column_spmv() {
        let registry = MatrixRegistry::new(3, TuningConfig::full());
        let csr = random_csr(40, 30, 300, 5);
        let served = registry.insert("m", &csr).unwrap();
        let cols: Vec<Vec<f64>> = (0..5)
            .map(|j| (0..30).map(|i| (i * (j + 1)) as f64 * 0.05).collect())
            .collect();
        let views: Vec<&[f64]> = cols.iter().map(|c| c.as_slice()).collect();
        let x = MultiVec::from_columns(&views);
        let y = served.spmm_now(&x).unwrap();
        for j in 0..5 {
            assert_eq!(y.col(j), &served.spmv_now(x.col(j)).unwrap()[..]);
        }
    }

    #[test]
    fn dimension_mismatches_are_reported() {
        let registry = MatrixRegistry::new(1, TuningConfig::naive());
        let csr = random_csr(8, 6, 20, 6);
        let served = registry.insert("m", &csr).unwrap();
        assert!(matches!(
            served.spmv_now(&[1.0; 5]),
            Err(ServeError::DimensionMismatch {
                expected: 6,
                found: 5
            })
        ));
        assert!(registry.save_profile("absent", "/tmp/x").is_err());
    }

    #[test]
    fn cached_insert_skips_the_search_on_the_second_registry() {
        let (dir, cache) = temp_cache("warm_hit");
        let csr = random_csr(70, 60, 700, 7);

        let first = MatrixRegistry::new(2, TuningConfig::full())
            .with_budget(SearchBudget::Pruned)
            .with_cache(Arc::clone(&cache));
        let a = first.insert("m", &csr).unwrap();
        assert_eq!(cache.search_count(), 1);

        // A fresh registry sharing the cache serves the same plan with no
        // second search — the warm hit produces a ready ServedMatrix.
        let second = MatrixRegistry::new(2, TuningConfig::full())
            .with_budget(SearchBudget::Pruned)
            .with_cache(Arc::clone(&cache));
        let b = second.insert("m", &csr).unwrap();
        assert_eq!(cache.search_count(), 1, "warm insert must not search");
        assert_eq!(cache.hit_count(), 1);
        assert_eq!(a.plan(), b.plan());
        let x: Vec<f64> = (0..60).map(|i| (i % 7) as f64).collect();
        assert_eq!(a.spmv_now(&x).unwrap(), b.spmv_now(&x).unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn swap_plan_hot_swaps_the_engine() {
        let registry = MatrixRegistry::new(2, TuningConfig::full());
        let csr = random_csr(50, 50, 500, 8);
        let served = registry.insert("m", &csr).unwrap();
        assert_eq!(served.retune_count(), 0);
        let before = served.plan();

        let alt = TunePlan::new(&csr, 3, &TuningConfig::naive());
        assert_ne!(alt, before);
        served.swap_plan(alt.clone()).unwrap();
        assert_eq!(served.retune_count(), 1);
        assert_eq!(served.plan(), alt);
        let x: Vec<f64> = (0..50).map(|i| (i % 5) as f64 * 0.5).collect();
        let mut expected = vec![0.0; 50];
        csr.spmv(&x, &mut expected);
        let y = served.spmv_now(&x).unwrap();
        let diff = y
            .iter()
            .zip(&expected)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(diff < 1e-9);

        // A plan for a different matrix must be rejected and leave the old
        // engine serving.
        let other = random_csr(50, 50, 400, 9);
        let bad = TunePlan::new(&other, 2, &TuningConfig::full());
        assert!(served.swap_plan(bad).is_err());
        assert_eq!(served.retune_count(), 1);
        assert_eq!(served.plan(), alt);
    }

    #[test]
    fn retune_background_completes_and_keeps_serving() {
        let (dir, cache) = temp_cache("retune_bg");
        let registry = MatrixRegistry::new(2, TuningConfig::full())
            .with_budget(SearchBudget::Heuristic)
            .with_cache(Arc::clone(&cache));
        let csr = random_csr(90, 80, 1000, 10);
        let served = registry.insert("m", &csr).unwrap();

        let handle = registry
            .retune_background("m", SearchBudget::Pruned)
            .unwrap();
        // Serving stays live while the search runs.
        let x: Vec<f64> = (0..80).map(|i| (i % 9) as f64).collect();
        let _ = served.spmv_now(&x).unwrap();
        let swapped = handle.join().expect("retune thread").unwrap();
        // Whatever the search concluded, the served plan is the winner and the
        // cache holds it.
        let fp = MatrixFingerprint::compute(&csr);
        assert_eq!(fp, served.fingerprint());
        let cached = cache
            .lookup(&fp, 2, &TuningConfig::full(), &csr)
            .expect("winner persisted");
        assert_eq!(cached, served.plan());
        if swapped {
            assert_eq!(served.retune_count(), 1);
        } else {
            assert_eq!(served.retune_count(), 0);
        }
        assert!(registry
            .retune_background("absent", SearchBudget::Pruned)
            .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lru_eviction_demotes_and_rematerializes() {
        let registry = MatrixRegistry::new(1, TuningConfig::naive()).with_hot_capacity(2);
        let a = random_csr(30, 20, 200, 20);
        let b = random_csr(30, 20, 220, 21);
        let c = random_csr(30, 20, 240, 22);
        let served_a = registry.insert("a", &a).unwrap();
        let plan_a = served_a.plan();
        registry.insert("b", &b).unwrap();
        assert_eq!(registry.hot_len(), 2);
        assert_eq!(registry.evictions(), 0);

        // Touch "a" so "b" becomes the LRU victim when "c" arrives.
        registry.get("a").unwrap();
        registry.insert("c", &c).unwrap();
        assert_eq!(registry.len(), 3, "cold entries stay registered");
        assert_eq!(registry.hot_len(), 2);
        assert_eq!(registry.evictions(), 1);
        assert!(registry.is_hot("a") && registry.is_hot("c"));
        assert!(!registry.is_hot("b"));
        assert!(registry.names().contains(&"b".to_string()));

        // A get on the cold name rebuilds the engine from the retained plan
        // (no search) and demotes the new LRU ("a" is older than "c").
        let revived = registry.get("b").unwrap();
        assert_eq!(registry.cold_rebuilds(), 1);
        assert!(registry.is_hot("b") && !registry.is_hot("a"));
        let x: Vec<f64> = (0..20).map(|i| (i % 4) as f64).collect();
        let mut expected = vec![0.0; 30];
        b.spmv(&x, &mut expected);
        let y = revived.spmv_now(&x).unwrap();
        assert!(y.iter().zip(&expected).all(|(p, q)| (p - q).abs() < 1e-9));

        // "a" survives its own demote/revive round-trip with plan intact.
        let revived_a = registry.get("a").unwrap();
        assert_eq!(revived_a.plan(), plan_a);
        assert_eq!(registry.cold_rebuilds(), 2);
        assert_eq!(registry.hot_len(), 2);

        // Removing a cold entry frees the name (no engine to return).
        assert!(!registry.is_hot("c") || !registry.is_hot("b"));
        let cold_name = if registry.is_hot("b") { "c" } else { "b" };
        assert!(registry.remove(cold_name).is_none());
        assert_eq!(registry.len(), 2);
    }

    #[test]
    fn eviction_with_inflight_batcher_completes_and_keeps_stats() {
        use crate::batcher::{BatchPolicy, Batcher};

        let registry = MatrixRegistry::new(1, TuningConfig::naive()).with_hot_capacity(1);
        let a = random_csr(24, 16, 150, 30);
        let served_a = registry.insert("a", &a).unwrap();
        let batcher = Batcher::manual(Arc::clone(&served_a), BatchPolicy::default());
        let x: Vec<f64> = (0..16).map(|i| (i % 5) as f64 * 0.25).collect();
        let ticket = batcher.submit(x.clone()).unwrap();

        // Registering "b" evicts "a" while its batch is still queued. The
        // batcher's Arc keeps the evicted engine alive; the batch completes
        // on it bit-identically.
        let b = random_csr(24, 16, 150, 31);
        registry.insert("b", &b).unwrap();
        assert!(!registry.is_hot("a"));
        assert_eq!(registry.evictions(), 1);
        assert_eq!(batcher.run_once(), 1);
        let y = ticket.wait().unwrap();
        let mut expected = vec![0.0; 24];
        a.spmv(&x, &mut expected);
        assert!(y.iter().zip(&expected).all(|(p, q)| (p - q).abs() < 1e-9));
        drop(batcher);

        // The request recorded after the eviction is visible through the
        // rematerialized handle: the stats instance rode the cold entry.
        let revived = registry.get("a").unwrap();
        assert_eq!(registry.cold_rebuilds(), 1);
        assert_eq!(revived.serve_stats().requests(), 1);
        assert!(
            !Arc::ptr_eq(&served_a, &revived),
            "fresh handle, same stats"
        );
    }

    #[test]
    fn metrics_expose_lru_and_failure_counters() {
        let registry = MatrixRegistry::new(1, TuningConfig::naive()).with_hot_capacity(1);
        let a = random_csr(20, 20, 100, 40);
        let b = random_csr(20, 20, 100, 41);
        registry.insert("a", &a).unwrap();
        registry.insert("b", &b).unwrap();
        let text = registry.metrics();
        assert!(text.contains("spmv_registry_evictions_total 1"));
        assert!(text.contains("spmv_registry_cold_rebuilds_total 0"));
        assert!(text.contains("spmv_registry_hot_matrices 1"));
        assert!(text.contains("spmv_registry_cold_matrices 1"));
        // Cold entries still export their serve counters, and the load-shed /
        // failed-batch families are present per matrix.
        assert!(text.contains("spmv_serve_requests_total{matrix=\"a\"} 0"));
        assert!(text.contains("spmv_serve_sheds_total{matrix=\"a\"} 0"));
        assert!(text.contains("spmv_serve_failed_batches_total{matrix=\"b\"} 0"));
        assert!(text.contains("spmv_registry_hot{matrix=\"a\"} 0"));
        assert!(text.contains("spmv_registry_hot{matrix=\"b\"} 1"));
    }
}
