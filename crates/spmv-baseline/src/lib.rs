//! # spmv-baseline
//!
//! The two baselines the paper compares its multicore SpMV against (Section 2.1):
//!
//! * [`oski`] — a serial, OSKI-style autotuned SpMV: register-blocked CSR chosen by
//!   combining a fill-ratio scan with an offline dense-matrix performance profile
//!   (the SPARSITY heuristic), with none of the paper's explicit low-level code
//!   optimizations or multicore awareness.
//! * [`petsc`] — an "OSKI-PETSc" style parallel baseline: PETSc's default block-row
//!   (equal rows per process) distribution, each process running the serial OSKI
//!   kernel, with inter-process communication performed by explicit memory copies in
//!   the style of MPICH's shared-memory device. The two effects the paper measures —
//!   copy-based communication overhead (30–56% of runtime) and equal-rows load
//!   imbalance — are modelled and measurable.

pub mod oski;
pub mod petsc;

pub use oski::OskiMatrix;
pub use petsc::{OskiPetsc, PetscCommStats};
