//! OSKI-PETSc style parallel baseline.
//!
//! The paper's "off-the-shelf" parallel comparison runs PETSc's distributed-memory
//! SpMV — a 1-D block-row decomposition with *equal rows per process* — with OSKI
//! tuning the per-process serial kernel, over MPICH's shared-memory device where
//! message passing is realized as memory copies. Its two weaknesses, which the paper
//! measures (Section 6.2), are reproduced faithfully:
//!
//! * **Communication by copying** — each process must gather the remote source-vector
//!   entries its off-diagonal blocks touch; in ch_shmem that is an explicit copy
//!   through a shared buffer, and it averaged 30% (up to 56% for LP) of SpMV time.
//! * **Load imbalance** — equal rows is not equal nonzeros; for FEM-Accel one process
//!   ends up with 40% of the nonzeros in a 4-process run.

use crate::oski::OskiMatrix;
use spmv_core::formats::{CooMatrix, CsrMatrix};
use spmv_core::partition::row::{partition_rows_equal, RowPartition};
use spmv_core::tuning::search::DenseProfile;
use spmv_core::MatrixShape;
use std::ops::Range;

/// Communication statistics for one SpMV of the PETSc-style baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PetscCommStats {
    /// Total ghost (remote source-vector) entries gathered per SpMV, summed over
    /// processes.
    pub ghost_entries: usize,
    /// Bytes copied through the shared-memory "network" per SpMV.
    pub bytes_copied: usize,
    /// Bytes of matrix data streamed per SpMV (for computing the communication
    /// fraction).
    pub matrix_bytes: usize,
    /// Load imbalance of the equal-rows decomposition (max nonzeros / mean nonzeros).
    pub load_imbalance: f64,
}

impl PetscCommStats {
    /// Estimated fraction of SpMV time spent communicating, assuming copies move at
    /// the same sustained bandwidth as the matrix stream (both are memory-bound memcpy
    /// -like traffic on the shared-memory device). Copies are charged twice — once
    /// written by the owner, once read by the consumer — which is what ch_shmem does.
    pub fn communication_fraction(&self) -> f64 {
        let comm = (2 * self.bytes_copied) as f64;
        let total = comm + self.matrix_bytes as f64;
        if total == 0.0 {
            0.0
        } else {
            comm / total
        }
    }
}

/// One MPI-rank-worth of the decomposition.
#[derive(Debug, Clone)]
struct PetscRank {
    /// Global rows owned by this rank.
    rows: Range<usize>,
    /// Global columns owned by this rank (the square-matrix convention: same as rows
    /// clipped to the column space).
    cols: Range<usize>,
    /// OSKI-tuned diagonal block (columns within `cols`), indexed by local column.
    diag: OskiMatrix,
    /// OSKI-tuned off-diagonal block, indexed by ghost slot.
    offdiag: OskiMatrix,
    /// Global column index of each ghost slot, sorted ascending.
    ghost_cols: Vec<usize>,
}

/// The OSKI-PETSc baseline: equal-rows block-row decomposition, per-rank OSKI tuning,
/// and copy-based halo exchange.
#[derive(Debug, Clone)]
pub struct OskiPetsc {
    nrows: usize,
    ncols: usize,
    nnz: usize,
    partition: RowPartition,
    ranks: Vec<PetscRank>,
}

impl OskiPetsc {
    /// Decompose `csr` over `nprocs` processes, PETSc-style.
    pub fn new(csr: &CsrMatrix, nprocs: usize, profile: &DenseProfile) -> Self {
        let nrows = csr.nrows();
        let ncols = csr.ncols();
        let partition = partition_rows_equal(nrows, nprocs);
        // Columns are distributed with the same boundaries (clipped to ncols), the
        // PETSc convention for square matrices; rectangular matrices put the excess
        // columns on the last rank.
        let col_bounds: Vec<Range<usize>> = partition
            .ranges
            .iter()
            .enumerate()
            .map(|(p, r)| {
                if p + 1 == nprocs {
                    r.start.min(ncols)..ncols
                } else {
                    r.start.min(ncols)..r.end.min(ncols)
                }
            })
            .collect();

        let mut ranks = Vec::with_capacity(nprocs);
        for (p, rows) in partition.ranges.iter().enumerate() {
            let cols = col_bounds[p].clone();
            // Split this rank's rows into diagonal and off-diagonal blocks.
            let local_rows = rows.end - rows.start;
            let mut diag = CooMatrix::new(local_rows, cols.end - cols.start);
            let mut ghost_cols: Vec<usize> = Vec::new();
            let mut offdiag_entries: Vec<(usize, usize, f64)> = Vec::new();
            for row in rows.clone() {
                for k in csr.row_ptr()[row]..csr.row_ptr()[row + 1] {
                    let col = csr.col_idx()[k] as usize;
                    let val = csr.values()[k];
                    if cols.contains(&col) {
                        diag.push(row - rows.start, col - cols.start, val);
                    } else {
                        ghost_cols.push(col);
                        offdiag_entries.push((row - rows.start, col, val));
                    }
                }
            }
            ghost_cols.sort_unstable();
            ghost_cols.dedup();
            let mut offdiag = CooMatrix::new(local_rows, ghost_cols.len().max(1));
            for (r, gc, v) in offdiag_entries {
                let slot = ghost_cols.binary_search(&gc).expect("ghost present");
                offdiag.push(r, slot, v);
            }
            ranks.push(PetscRank {
                rows: rows.clone(),
                cols,
                diag: OskiMatrix::tune_with_profile(&CsrMatrix::from_coo(&diag), profile),
                offdiag: OskiMatrix::tune_with_profile(&CsrMatrix::from_coo(&offdiag), profile),
                ghost_cols,
            });
        }
        OskiPetsc {
            nrows,
            ncols,
            nnz: csr.nnz(),
            partition,
            ranks,
        }
    }

    /// Number of processes.
    pub fn nprocs(&self) -> usize {
        self.ranks.len()
    }

    /// Communication and balance statistics for one SpMV.
    pub fn comm_stats(&self) -> PetscCommStats {
        let ghost_entries: usize = self.ranks.iter().map(|r| r.ghost_cols.len()).sum();
        let matrix_bytes: usize = self
            .ranks
            .iter()
            .map(|r| r.diag.footprint_bytes() + r.offdiag.footprint_bytes())
            .sum();
        let loads: Vec<usize> = self
            .ranks
            .iter()
            .map(|r| r.diag.nnz() + r.offdiag.nnz())
            .collect();
        let max = loads.iter().copied().max().unwrap_or(0) as f64;
        let mean = if loads.is_empty() {
            0.0
        } else {
            loads.iter().sum::<usize>() as f64 / loads.len() as f64
        };
        PetscCommStats {
            ghost_entries,
            bytes_copied: ghost_entries * 8,
            matrix_bytes,
            load_imbalance: if mean > 0.0 { max / mean } else { 1.0 },
        }
    }

    /// Execute `y ← y + A·x`, performing the halo exchange by explicit copies exactly
    /// as the shared-memory MPI device would.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "source vector length mismatch");
        assert_eq!(y.len(), self.nrows, "destination vector length mismatch");
        for rank in &self.ranks {
            // "Message passing": gather the ghost entries through an intermediate
            // buffer (the shared-memory segment), then the local compute.
            let shared_segment: Vec<f64> = rank.ghost_cols.iter().map(|&c| x[c]).collect();
            let ghost_values: Vec<f64> = shared_segment.to_vec();

            let y_local = &mut y[rank.rows.start..rank.rows.end];
            let x_local = &x[rank.cols.start.min(x.len())..rank.cols.end.min(x.len())];
            rank.diag.spmv(x_local, y_local);
            if !rank.ghost_cols.is_empty() {
                rank.offdiag.spmv(&ghost_values, y_local);
            }
        }
    }

    /// Allocate-and-multiply convenience wrapper.
    pub fn spmv_alloc(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.nrows];
        self.spmv(x, &mut y);
        y
    }

    /// The equal-rows partition (exposed so the performance model can charge its
    /// imbalance).
    pub fn partition(&self) -> &RowPartition {
        &self.partition
    }

    /// Logical nonzeros.
    pub fn nnz(&self) -> usize {
        self.nnz
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use spmv_core::dense::max_abs_diff;
    use spmv_core::formats::SpMv;

    fn random_csr(nrows: usize, ncols: usize, nnz: usize, seed: u64) -> CsrMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut coo = CooMatrix::new(nrows, ncols);
        for _ in 0..nnz {
            coo.push(
                rng.random_range(0..nrows),
                rng.random_range(0..ncols),
                rng.random_range(-1.0..1.0),
            );
        }
        CsrMatrix::from_coo(&coo)
    }

    fn skewed_csr(nrows: usize) -> CsrMatrix {
        // The first tenth of the rows holds the bulk of the nonzeros (FEM-Accel-like
        // imbalance for an equal-rows split).
        let mut coo = CooMatrix::new(nrows, nrows);
        for i in 0..nrows / 10 {
            for j in 0..40 {
                coo.push(i, (i * 7 + j * 13) % nrows, 1.0);
            }
        }
        for i in nrows / 10..nrows {
            coo.push(i, i, 1.0);
        }
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn petsc_spmv_matches_reference() {
        let csr = random_csr(400, 400, 6000, 1);
        let x: Vec<f64> = (0..400).map(|i| (i as f64 * 0.05).cos()).collect();
        let reference = csr.spmv_alloc(&x);
        for procs in [1, 2, 4, 8] {
            let petsc = OskiPetsc::new(&csr, procs, &DenseProfile::synthetic());
            let y = petsc.spmv_alloc(&x);
            assert!(max_abs_diff(&reference, &y) < 1e-9, "procs={procs}");
            assert_eq!(petsc.nprocs(), procs);
        }
    }

    #[test]
    fn rectangular_matrix_supported() {
        let csr = random_csr(60, 500, 2000, 2);
        let x: Vec<f64> = (0..500).map(|i| i as f64 * 0.01).collect();
        let reference = csr.spmv_alloc(&x);
        let petsc = OskiPetsc::new(&csr, 4, &DenseProfile::synthetic());
        assert!(max_abs_diff(&reference, &petsc.spmv_alloc(&x)) < 1e-9);
    }

    #[test]
    fn communication_grows_with_process_count() {
        let csr = random_csr(600, 600, 12_000, 3);
        let two = OskiPetsc::new(&csr, 2, &DenseProfile::synthetic()).comm_stats();
        let eight = OskiPetsc::new(&csr, 8, &DenseProfile::synthetic()).comm_stats();
        assert!(eight.ghost_entries > two.ghost_entries);
        assert!(eight.communication_fraction() > two.communication_fraction());
        assert!(two.communication_fraction() > 0.0);
    }

    #[test]
    fn single_process_has_no_communication() {
        let csr = random_csr(200, 200, 3000, 4);
        let one = OskiPetsc::new(&csr, 1, &DenseProfile::synthetic());
        let stats = one.comm_stats();
        assert_eq!(stats.ghost_entries, 0);
        assert_eq!(stats.communication_fraction(), 0.0);
        assert!((stats.load_imbalance - 1.0).abs() < 1e-12);
    }

    #[test]
    fn equal_rows_split_is_imbalanced_on_skewed_matrices() {
        let csr = skewed_csr(1000);
        let petsc = OskiPetsc::new(&csr, 4, &DenseProfile::synthetic());
        let stats = petsc.comm_stats();
        // One process ends up with the lion's share of the nonzeros, like the paper's
        // FEM-Accel observation (40% of nonzeros on one of four processes).
        assert!(
            stats.load_imbalance > 2.0,
            "imbalance {}",
            stats.load_imbalance
        );
        // The nonzero-balanced partition of the paper's own implementation fixes it.
        let balanced = spmv_core::partition::row::partition_rows_balanced(&csr, 4);
        assert!(balanced.imbalance(&csr) < 1.3);
    }

    #[test]
    fn comm_fraction_is_within_unit_interval() {
        let csr = random_csr(300, 300, 2000, 5);
        let petsc = OskiPetsc::new(&csr, 6, &DenseProfile::synthetic());
        let f = petsc.comm_stats().communication_fraction();
        assert!((0.0..=1.0).contains(&f));
    }
}
