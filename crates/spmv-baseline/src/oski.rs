//! OSKI-style serial autotuned SpMV baseline.
//!
//! OSKI (Vuduc, Demmel, Yelick) picks a register blocking by estimating the fill
//! ratio of each candidate block shape and dividing by an offline performance profile
//! measured on a dense matrix in sparse format, then stores the matrix as BCSR at the
//! winning shape. It does not compress indices to 16 bits, does not use BCOO, and
//! leaves low-level instruction scheduling to the compiler — exactly the differences
//! the paper's Section 4 calls out. Cache blocking in OSKI must be explicitly
//! requested (it is not part of the default tuning path), so this baseline omits it,
//! matching how the paper ran OSKI.

use spmv_core::formats::{CsrMatrix, SpMv};
use spmv_core::tuning::search::{search_register_blocking, DenseProfile};
use spmv_core::MatrixShape;

/// A serial OSKI-tuned matrix: register-blocked CSR chosen by the SPARSITY heuristic.
#[derive(Debug, Clone)]
pub struct OskiMatrix {
    /// The chosen register block shape.
    pub block_shape: (usize, usize),
    matrix: spmv_core::formats::BcsrAuto,
    csr_bytes: usize,
}

impl OskiMatrix {
    /// Tune `csr` with a measured dense profile (runs a short benchmark on this host).
    pub fn tune(csr: &CsrMatrix) -> Self {
        Self::tune_with_profile(csr, &DenseProfile::measure(64))
    }

    /// Tune `csr` against a caller-supplied dense performance profile (use
    /// [`DenseProfile::synthetic`] for deterministic results in tests and benches).
    pub fn tune_with_profile(csr: &CsrMatrix, profile: &DenseProfile) -> Self {
        let outcome = search_register_blocking(csr, profile);
        OskiMatrix {
            block_shape: (outcome.r, outcome.c),
            matrix: outcome.matrix,
            csr_bytes: csr.footprint_bytes(),
        }
    }

    /// Stored bytes of the tuned structure.
    pub fn footprint_bytes(&self) -> usize {
        self.matrix.footprint_bytes()
    }

    /// Fill ratio paid by the chosen blocking.
    pub fn fill_ratio(&self) -> f64 {
        self.matrix.fill_ratio()
    }

    /// Footprint relative to plain CSR (OSKI can be *larger* than CSR when fill
    /// outweighs the index savings — one reason the paper's footprint-minimizing
    /// heuristic differs).
    pub fn footprint_vs_csr(&self) -> f64 {
        self.matrix.footprint_bytes() as f64 / self.csr_bytes as f64
    }

    /// Number of logical nonzeros.
    pub fn nnz(&self) -> usize {
        self.matrix.nnz()
    }

    /// Execute `y ← y + A·x` serially.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        self.matrix.spmv(x, y);
    }

    /// Allocate-and-multiply convenience wrapper.
    pub fn spmv_alloc(&self, x: &[f64]) -> Vec<f64> {
        self.matrix.spmv_alloc(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use spmv_core::dense::max_abs_diff;
    use spmv_core::formats::CooMatrix;

    fn fem_like(nblocks: usize, bs: usize) -> CsrMatrix {
        let n = nblocks * bs;
        let mut coo = CooMatrix::new(n, n);
        for b in 0..nblocks {
            for nb in [b.saturating_sub(1), b, (b + 1).min(nblocks - 1)] {
                for i in 0..bs {
                    for j in 0..bs {
                        coo.push(b * bs + i, nb * bs + j, 1.0 + (i + j) as f64);
                    }
                }
            }
        }
        CsrMatrix::from_coo(&coo)
    }

    fn random_csr(n: usize, nnz: usize, seed: u64) -> CsrMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut coo = CooMatrix::new(n, n);
        for _ in 0..nnz {
            coo.push(
                rng.random_range(0..n),
                rng.random_range(0..n),
                rng.random_range(-1.0..1.0),
            );
        }
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn oski_picks_large_blocks_for_fem_matrices() {
        let csr = fem_like(100, 4);
        let oski = OskiMatrix::tune_with_profile(&csr, &DenseProfile::synthetic());
        assert_eq!(oski.block_shape, (4, 4));
        assert!(oski.fill_ratio() < 1.05);
        assert!(oski.footprint_vs_csr() < 1.0);
    }

    #[test]
    fn oski_keeps_1x1_for_scattered_matrices() {
        let csr = random_csr(300, 1500, 1);
        let oski = OskiMatrix::tune_with_profile(&csr, &DenseProfile::synthetic());
        assert_eq!(oski.block_shape, (1, 1));
    }

    #[test]
    fn oski_spmv_is_correct() {
        let csr = fem_like(50, 4);
        let oski = OskiMatrix::tune_with_profile(&csr, &DenseProfile::synthetic());
        let x: Vec<f64> = (0..csr.ncols()).map(|i| (i as f64 * 0.1).sin()).collect();
        assert!(max_abs_diff(&csr.spmv_alloc(&x), &oski.spmv_alloc(&x)) < 1e-9);
        assert_eq!(oski.nnz(), csr.nnz());
    }

    #[test]
    fn paper_heuristic_footprint_not_larger_than_oski() {
        // The paper's footprint-minimizing heuristic (with 16-bit indices and BCOO
        // available) should never produce a larger structure than OSKI's
        // 32-bit-index BCSR choice.
        use spmv_core::tuning::{tune_csr, TuningConfig};
        for (csr, label) in [
            (fem_like(80, 4), "fem"),
            (random_csr(400, 3000, 2), "random"),
        ] {
            let oski = OskiMatrix::tune_with_profile(&csr, &DenseProfile::synthetic());
            let ours = tune_csr(&csr, &TuningConfig::full());
            assert!(
                ours.footprint_bytes() <= oski.footprint_bytes(),
                "{label}: ours {} vs OSKI {}",
                ours.footprint_bytes(),
                oski.footprint_bytes()
            );
        }
    }
}
