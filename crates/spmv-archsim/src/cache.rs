//! Set-associative cache simulator with LRU replacement.
//!
//! Used execution-driven (fed by [`crate::trace`]) to validate the mechanism behind
//! the paper's cache-blocking results: blocking bounds the source-vector working set,
//! converting capacity misses into hits. The simulator tracks reads and writes
//! separately and implements write-allocate, the policy the paper assumes when it
//! charges 16 bytes of traffic per destination element ("assuming a cache line fill
//! is required on a write miss", Section 5.1).

/// Statistics accumulated by a [`CacheSim`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Read accesses.
    pub read_accesses: u64,
    /// Read misses.
    pub read_misses: u64,
    /// Write accesses.
    pub write_accesses: u64,
    /// Write misses (write-allocate: these also fill a line).
    pub write_misses: u64,
    /// Lines evicted.
    pub evictions: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.read_accesses + self.write_accesses
    }

    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.read_misses + self.write_misses
    }

    /// Miss rate over all accesses (0 when idle).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses() as f64 / self.accesses() as f64
        }
    }

    /// Bytes of DRAM traffic implied by the misses, given the line size
    /// (write misses count a fill plus an eventual writeback).
    pub fn traffic_bytes(&self, line_bytes: usize) -> u64 {
        self.read_misses * line_bytes as u64 + self.write_misses * 2 * line_bytes as u64
    }
}

/// A set-associative, write-allocate, LRU cache model.
#[derive(Debug, Clone)]
pub struct CacheSim {
    line_bytes: usize,
    num_sets: usize,
    ways: usize,
    /// `sets[set][way]` = Some((tag, last_use)) or None when invalid.
    sets: Vec<Vec<Option<(u64, u64)>>>,
    clock: u64,
    stats: CacheStats,
}

impl CacheSim {
    /// Create a cache of `capacity_bytes` with the given line size and associativity.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (capacity not divisible by line size ×
    /// ways, or any parameter is zero).
    pub fn new(capacity_bytes: usize, line_bytes: usize, ways: usize) -> Self {
        assert!(
            capacity_bytes > 0 && line_bytes > 0 && ways > 0,
            "cache geometry must be non-zero"
        );
        let lines = capacity_bytes / line_bytes;
        assert!(lines >= ways, "capacity must hold at least one set");
        let num_sets = lines / ways;
        CacheSim {
            line_bytes,
            num_sets,
            ways,
            sets: vec![vec![None; ways]; num_sets],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// Cache capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.num_sets * self.ways * self.line_bytes
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> usize {
        self.line_bytes
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Reset statistics (keeps cache contents).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn locate(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.line_bytes as u64;
        let set = (line % self.num_sets as u64) as usize;
        let tag = line / self.num_sets as u64;
        (set, tag)
    }

    fn touch(&mut self, addr: u64) -> bool {
        self.clock += 1;
        let (set_idx, tag) = self.locate(addr);
        let set = &mut self.sets[set_idx];
        // Hit?
        for (t, last) in set.iter_mut().flatten() {
            if *t == tag {
                *last = self.clock;
                return true;
            }
        }
        // Miss: fill into an invalid way or evict the LRU way.
        let mut victim = 0usize;
        let mut victim_age = u64::MAX;
        for (w, slot) in set.iter().enumerate() {
            match slot {
                None => {
                    victim = w;
                    break;
                }
                Some((_, last)) => {
                    if *last < victim_age {
                        victim_age = *last;
                        victim = w;
                    }
                }
            }
        }
        if set[victim].is_some() {
            self.stats.evictions += 1;
        }
        set[victim] = Some((tag, self.clock));
        false
    }

    /// Issue a read of the byte at `addr`; returns true on hit.
    pub fn read(&mut self, addr: u64) -> bool {
        self.stats.read_accesses += 1;
        let hit = self.touch(addr);
        if !hit {
            self.stats.read_misses += 1;
        }
        hit
    }

    /// Issue a write to the byte at `addr` (write-allocate); returns true on hit.
    pub fn write(&mut self, addr: u64) -> bool {
        self.stats.write_accesses += 1;
        let hit = self.touch(addr);
        if !hit {
            self.stats.write_misses += 1;
        }
        hit
    }

    /// Read `len` bytes starting at `addr`, touching each line once.
    pub fn read_range(&mut self, addr: u64, len: usize) {
        let first = addr / self.line_bytes as u64;
        let last = (addr + len.max(1) as u64 - 1) / self.line_bytes as u64;
        for line in first..=last {
            self.read(line * self.line_bytes as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compulsory_misses_then_hits() {
        let mut c = CacheSim::new(1024, 64, 2);
        assert!(!c.read(0));
        assert!(c.read(8)); // same line
        assert!(!c.read(64));
        assert!(c.read(64));
        assert_eq!(c.stats().read_misses, 2);
        assert_eq!(c.stats().read_accesses, 4);
    }

    #[test]
    fn capacity_eviction_under_streaming() {
        // Stream 4x the capacity: every access to a new line must miss.
        let mut c = CacheSim::new(4096, 64, 4);
        let lines = 4 * 4096 / 64;
        for i in 0..lines {
            c.read(i as u64 * 64);
        }
        assert_eq!(c.stats().read_misses, lines as u64);
        assert!(c.stats().evictions > 0);
    }

    #[test]
    fn working_set_within_capacity_hits_on_reuse() {
        let mut c = CacheSim::new(8192, 64, 8);
        // Touch 64 lines (4KB), then touch them again: second pass must be all hits.
        for i in 0..64u64 {
            c.read(i * 64);
        }
        c.reset_stats();
        for i in 0..64u64 {
            assert!(c.read(i * 64), "line {i} should hit");
        }
        assert_eq!(c.stats().read_misses, 0);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // Direct-mapped-ish scenario within one set: 2 ways, 3 conflicting lines.
        let mut c = CacheSim::new(128, 64, 2); // 1 set, 2 ways
        c.read(0); // A
        c.read(64); // B
        c.read(0); // A again (so B is LRU)
        c.read(128); // C evicts B
        assert!(c.read(0), "A stays");
        assert!(!c.read(64), "B was evicted");
    }

    #[test]
    fn write_allocate_counts_fill_and_writeback_traffic() {
        let mut c = CacheSim::new(1024, 64, 2);
        c.write(0);
        c.write(4); // same line: hit
        assert_eq!(c.stats().write_misses, 1);
        assert_eq!(c.stats().write_accesses, 2);
        // 1 write miss = 64B fill + 64B writeback = 128B of traffic.
        assert_eq!(c.stats().traffic_bytes(64), 128);
    }

    #[test]
    fn read_range_touches_each_line_once() {
        let mut c = CacheSim::new(4096, 64, 4);
        c.read_range(10, 200); // spans lines 0..=3
        assert_eq!(c.stats().read_accesses, 4);
    }

    #[test]
    fn miss_rate_and_capacity_accessors() {
        let mut c = CacheSim::new(2048, 64, 4);
        assert_eq!(c.capacity_bytes(), 2048);
        assert_eq!(c.line_bytes(), 64);
        assert_eq!(c.stats().miss_rate(), 0.0);
        c.read(0);
        c.read(0);
        assert!((c.stats().miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_geometry_rejected() {
        CacheSim::new(0, 64, 1);
    }
}
