//! Cell SPE local store and DMA engine model.
//!
//! The SPEs have no cache: a 256 KB software-managed local store is filled by
//! asynchronous DMA. The paper credits exactly this mechanism for Cell sustaining 91%
//! of its socket bandwidth — double-buffered DMA keeps the memory system busy while
//! the previous buffer is being computed on. This module models the local-store
//! capacity constraint (which bounds how many source-vector columns a cache block may
//! span) and the double-buffered transfer timeline.

/// Partitioning of one SPE's local store for SpMV.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalStoreBudget {
    /// Total local store bytes (256 KB on the evaluated Cell).
    pub total_bytes: usize,
    /// Bytes reserved for code, stack, and control structures.
    pub reserved_bytes: usize,
    /// Fraction of the remaining space given to the streamed matrix buffers
    /// (double-buffered); the rest holds the resident source/destination vectors.
    pub stream_fraction: f64,
}

impl Default for LocalStoreBudget {
    fn default() -> Self {
        LocalStoreBudget {
            total_bytes: 256 * 1024,
            reserved_bytes: 32 * 1024,
            stream_fraction: 0.5,
        }
    }
}

impl LocalStoreBudget {
    /// Bytes available for data after the code/stack reservation.
    pub fn data_bytes(&self) -> usize {
        self.total_bytes.saturating_sub(self.reserved_bytes)
    }

    /// Bytes of each of the two matrix stream buffers.
    pub fn stream_buffer_bytes(&self) -> usize {
        ((self.data_bytes() as f64 * self.stream_fraction) as usize) / 2
    }

    /// Bytes available to hold source + destination vector tiles.
    pub fn vector_bytes(&self) -> usize {
        self.data_bytes() - 2 * self.stream_buffer_bytes()
    }

    /// Maximum number of source-vector doubles a cache block may span if the
    /// destination tile needs `dest_doubles` doubles resident at the same time.
    pub fn max_source_span(&self, dest_doubles: usize) -> usize {
        (self.vector_bytes() / 8).saturating_sub(dest_doubles)
    }
}

/// Outcome of simulating a double-buffered DMA stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DmaTimeline {
    /// Total wall-clock time, seconds.
    pub total_s: f64,
    /// Time the SPE spent computing, seconds.
    pub compute_s: f64,
    /// Time the SPE spent stalled waiting for DMA completion, seconds.
    pub stall_s: f64,
    /// Fraction of the DMA bandwidth that was kept busy.
    pub dma_utilization: f64,
}

/// Simulate double-buffered DMA: `chunks` transfers of `chunk_bytes` each, delivered
/// at `dma_gbs`, while each delivered chunk takes `compute_s_per_chunk` seconds to
/// process. With double buffering the transfer of chunk `i+1` overlaps the compute of
/// chunk `i`, so the steady-state period is `max(transfer, compute)`.
pub fn simulate_double_buffered(
    chunks: usize,
    chunk_bytes: f64,
    dma_gbs: f64,
    compute_s_per_chunk: f64,
) -> DmaTimeline {
    if chunks == 0 || dma_gbs <= 0.0 {
        return DmaTimeline {
            total_s: 0.0,
            compute_s: 0.0,
            stall_s: 0.0,
            dma_utilization: 0.0,
        };
    }
    let transfer_s = chunk_bytes / (dma_gbs * 1e9);
    let period = transfer_s.max(compute_s_per_chunk);
    // First chunk's transfer cannot be overlapped; every subsequent period overlaps.
    let total = transfer_s + period * chunks as f64;
    let compute = compute_s_per_chunk * chunks as f64;
    let dma_busy = transfer_s * chunks as f64;
    DmaTimeline {
        total_s: total,
        compute_s: compute,
        stall_s: (total - compute).max(0.0),
        dma_utilization: (dma_busy / total).min(1.0),
    }
}

/// Simulate the same stream without double buffering (transfer then compute, serially)
/// — the comparison that shows why the DMA style matters.
pub fn simulate_single_buffered(
    chunks: usize,
    chunk_bytes: f64,
    dma_gbs: f64,
    compute_s_per_chunk: f64,
) -> DmaTimeline {
    if chunks == 0 || dma_gbs <= 0.0 {
        return DmaTimeline {
            total_s: 0.0,
            compute_s: 0.0,
            stall_s: 0.0,
            dma_utilization: 0.0,
        };
    }
    let transfer_s = chunk_bytes / (dma_gbs * 1e9);
    let total = (transfer_s + compute_s_per_chunk) * chunks as f64;
    let compute = compute_s_per_chunk * chunks as f64;
    DmaTimeline {
        total_s: total,
        compute_s: compute,
        stall_s: total - compute,
        dma_utilization: (transfer_s * chunks as f64 / total).min(1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_partitions_local_store() {
        let b = LocalStoreBudget::default();
        assert_eq!(b.data_bytes(), 224 * 1024);
        assert_eq!(b.stream_buffer_bytes(), 56 * 1024);
        assert_eq!(b.vector_bytes(), 112 * 1024);
        assert!(b.max_source_span(1024) > 10_000);
        assert!(b.max_source_span(1024) < b.vector_bytes() / 8);
    }

    #[test]
    fn double_buffering_hides_transfer_when_compute_dominates() {
        // Compute per chunk (10µs) longer than transfer (4µs): stalls ≈ first fill.
        let t = simulate_double_buffered(100, 100_000.0, 25.0, 10e-6);
        assert!(t.stall_s < 0.1 * t.total_s);
        assert!(t.total_s < 1.05e-3);
    }

    #[test]
    fn bandwidth_bound_when_transfer_dominates() {
        // Transfer per chunk (8µs) longer than compute (1µs): DMA ~fully utilized.
        let t = simulate_double_buffered(1000, 200_000.0, 25.0, 1e-6);
        assert!(t.dma_utilization > 0.95);
        // Total ≈ bytes / bandwidth.
        let ideal = 1000.0 * 200_000.0 / 25e9;
        assert!(t.total_s < ideal * 1.05);
    }

    #[test]
    fn double_buffering_beats_single_buffering() {
        let db = simulate_double_buffered(500, 100_000.0, 25.0, 4e-6);
        let sb = simulate_single_buffered(500, 100_000.0, 25.0, 4e-6);
        assert!(db.total_s < sb.total_s);
        // When transfer == compute, double buffering approaches 2x.
        assert!(sb.total_s / db.total_s > 1.6);
    }

    #[test]
    fn empty_stream() {
        let t = simulate_double_buffered(0, 1000.0, 25.0, 1e-6);
        assert_eq!(t.total_s, 0.0);
        assert_eq!(t.dma_utilization, 0.0);
    }
}
