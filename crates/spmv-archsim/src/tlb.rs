//! TLB simulator.
//!
//! A small fully-associative LRU TLB model, used to show that the paper's TLB-blocking
//! heuristic bounds page misses: without blocking, an SpMV whose source vector spans
//! more pages than the TLB holds thrashes on every indexed load.

/// Statistics accumulated by a [`TlbSim`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Address translations requested.
    pub accesses: u64,
    /// Translations that missed the TLB.
    pub misses: u64,
}

impl TlbStats {
    /// Miss rate over all accesses.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// A fully-associative, LRU TLB.
#[derive(Debug, Clone)]
pub struct TlbSim {
    page_bytes: usize,
    entries: usize,
    /// (page number, last use) pairs.
    slots: Vec<(u64, u64)>,
    clock: u64,
    stats: TlbStats,
}

impl TlbSim {
    /// Create a TLB with `entries` entries of `page_bytes` pages.
    ///
    /// The Opteron's L1 DTLB — the structure the paper blocks for — has 32 entries of
    /// 4 KiB pages.
    pub fn new(entries: usize, page_bytes: usize) -> Self {
        assert!(
            entries > 0 && page_bytes > 0,
            "TLB geometry must be non-zero"
        );
        TlbSim {
            page_bytes,
            entries,
            slots: Vec::with_capacity(entries),
            clock: 0,
            stats: TlbStats::default(),
        }
    }

    /// The Opteron L1 DTLB configuration (32 × 4 KiB).
    pub fn opteron_l1() -> Self {
        TlbSim::new(32, 4096)
    }

    /// Number of entries.
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Reset statistics, keeping the TLB contents.
    pub fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
    }

    /// Translate the byte address `addr`; returns true on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        self.stats.accesses += 1;
        let page = addr / self.page_bytes as u64;
        if let Some(slot) = self.slots.iter_mut().find(|(p, _)| *p == page) {
            slot.1 = self.clock;
            return true;
        }
        self.stats.misses += 1;
        if self.slots.len() < self.entries {
            self.slots.push((page, self.clock));
        } else {
            // Evict LRU.
            let lru = self
                .slots
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, last))| *last)
                .map(|(i, _)| i)
                .expect("TLB non-empty");
            self.slots[lru] = (page, self.clock);
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_within_resident_pages() {
        let mut tlb = TlbSim::new(4, 4096);
        for p in 0..4u64 {
            tlb.access(p * 4096);
        }
        tlb.reset_stats();
        for p in 0..4u64 {
            assert!(tlb.access(p * 4096 + 100));
        }
        assert_eq!(tlb.stats().misses, 0);
    }

    #[test]
    fn thrashing_when_working_set_exceeds_entries() {
        let mut tlb = TlbSim::new(4, 4096);
        // Round-robin over 8 pages: with LRU and 4 entries every access misses.
        for round in 0..3 {
            for p in 0..8u64 {
                let hit = tlb.access(p * 4096);
                if round > 0 {
                    assert!(!hit, "round {round} page {p} unexpectedly hit");
                }
            }
        }
        assert!(tlb.stats().miss_rate() > 0.9);
    }

    #[test]
    fn lru_keeps_recent_pages() {
        let mut tlb = TlbSim::new(2, 4096);
        tlb.access(0); // page 0
        tlb.access(4096); // page 1
        tlb.access(0); // refresh page 0
        tlb.access(8192); // page 2 evicts page 1
        assert!(tlb.access(0));
        assert!(!tlb.access(4096));
    }

    #[test]
    fn opteron_config() {
        let tlb = TlbSim::opteron_l1();
        assert_eq!(tlb.entries(), 32);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_entries_rejected() {
        TlbSim::new(0, 4096);
    }
}
