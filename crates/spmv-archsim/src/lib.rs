//! # spmv-archsim
//!
//! Machine models of the multicore platforms evaluated by Williams et al. (SC 2007):
//! the dual-socket dual-core AMD Opteron X2, the dual-socket quad-core Intel
//! Clovertown, the single-socket eight-core Sun Niagara T1, and the STI Cell in both
//! its PS3 (6 SPE) and QS20 blade (2×8 SPE) configurations.
//!
//! The paper's evaluation ran on the physical machines; this reproduction cannot, so
//! the crate provides two complementary layers:
//!
//! * **Component simulators** — set-associative caches ([`cache`]), TLBs ([`tlb`]),
//!   DRAM channels and NUMA topology ([`dram`]), and the Cell SPE local store with
//!   its double-buffered DMA engine ([`localstore`]). These are execution-driven by
//!   the memory reference streams produced by [`trace`] and validate the *mechanisms*
//!   (why cache blocking cuts misses, why DMA hides latency).
//! * **An analytic performance model** ([`perfmodel`]) in the spirit of the paper's
//!   own Section 5.1/6.1 analysis: SpMV throughput is the minimum of a bandwidth
//!   bound (sustained bandwidth × flop:byte of the tuned data structure) and an
//!   in-core bound (loop overhead, branch mispredictions, exposed memory latency,
//!   SIMD/pipelining). This layer regenerates Table 4, Figure 1 and Figure 2.
//!
//! Platform parameters come from the paper's Table 1 and are collected in
//! [`platforms`]; power numbers for Figure 2(b) live in [`power`].

pub mod cache;
pub mod dram;
pub mod localstore;
pub mod perfmodel;
pub mod platforms;
pub mod power;
pub mod tlb;
pub mod trace;

pub use perfmodel::{OptimizationLevel, ParallelScope, PerformanceModel, Prediction};
pub use platforms::{CoreKind, Platform, PlatformId};
