//! Analytic SpMV performance model.
//!
//! The paper's own analysis (Sections 5.1 and 6.1) predicts SpMV performance as the
//! interplay of two bounds:
//!
//! * a **bandwidth bound** — sustained memory bandwidth for the active core/socket
//!   configuration times the flop:byte ratio of the (tuned) data structure plus
//!   vector traffic; and
//! * an **in-core bound** — how fast the kernel can retire nonzeros given per-nonzero
//!   instruction cost (reduced by register blocking and SIMD), per-row loop overhead
//!   and branch mispredictions (painful for short-row matrices, removed by the
//!   branchless kernel), and the memory latency an in-order core cannot hide without
//!   enough threads or DMA.
//!
//! [`PerformanceModel::predict`] evaluates both bounds for a given platform,
//! optimization level, and parallel scope, and returns the minimum — exactly the
//! reasoning the paper uses to explain every row of Table 4 and every bar of
//! Figure 1.

use crate::dram::{MemoryModel, Placement};
use crate::platforms::{CoreKind, Platform};
use crate::trace::TrafficSummary;
use spmv_parallel::affinity::{AffinityPolicy, MemoryAffinity};

/// Which optimizations are enabled — the rungs of Figure 1's per-platform ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptimizationLevel {
    /// Software prefetch (x86/Niagara) or double-buffered DMA (Cell).
    pub software_prefetch: bool,
    /// Register blocking (BCSR/BCOO tiles): fewer index bytes and less index
    /// arithmetic per nonzero.
    pub register_blocking: bool,
    /// Cache/TLB blocking: bounds the source-vector working set (the caller reflects
    /// this in the [`WorkloadProfile`]'s traffic numbers and per-block row length).
    pub cache_blocking: bool,
    /// Low-level code optimization: SIMDization, software pipelining, branchless
    /// inner loops.
    pub code_optimized: bool,
    /// NUMA-aware placement of matrix blocks (process + memory affinity).
    pub numa_aware: bool,
}

impl OptimizationLevel {
    /// The naive implementation: nothing enabled.
    pub fn naive() -> Self {
        OptimizationLevel {
            software_prefetch: false,
            register_blocking: false,
            cache_blocking: false,
            code_optimized: false,
            numa_aware: false,
        }
    }

    /// Figure 1's `+PF` rung.
    pub fn prefetch() -> Self {
        OptimizationLevel {
            software_prefetch: true,
            ..Self::naive()
        }
    }

    /// Figure 1's `+PF,RB` rung.
    pub fn prefetch_register() -> Self {
        OptimizationLevel {
            register_blocking: true,
            ..Self::prefetch()
        }
    }

    /// Figure 1's `+PF,RB,CB` rung.
    pub fn prefetch_register_cache() -> Self {
        OptimizationLevel {
            cache_blocking: true,
            ..Self::prefetch_register()
        }
    }

    /// Everything on (the `*` bars of Figure 1).
    pub fn full() -> Self {
        OptimizationLevel {
            software_prefetch: true,
            register_blocking: true,
            cache_blocking: true,
            code_optimized: true,
            numa_aware: true,
        }
    }
}

/// How many cores/sockets/threads participate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParallelScope {
    /// Total active cores (SPEs on Cell).
    pub cores: usize,
    /// Sockets those cores are spread over.
    pub sockets: usize,
    /// Hardware threads per core in use (only >1 on Niagara).
    pub threads_per_core: usize,
    /// Static load imbalance: maximum thread load over mean thread load (≥ 1.0).
    /// The paper's nonzero-balanced partitioning keeps this near 1; OSKI-PETSc's
    /// equal-rows partitioning does not (Section 6.2's FEM-Accel example).
    pub load_imbalance: f64,
}

impl ParallelScope {
    /// One core, one thread.
    pub fn single_core() -> Self {
        ParallelScope {
            cores: 1,
            sockets: 1,
            threads_per_core: 1,
            load_imbalance: 1.0,
        }
    }

    /// Every core of one socket.
    pub fn single_socket(platform: &Platform) -> Self {
        ParallelScope {
            cores: platform.cores_per_socket,
            sockets: 1,
            threads_per_core: 1,
            load_imbalance: 1.0,
        }
    }

    /// The whole system, all hardware threads.
    pub fn full_system(platform: &Platform) -> Self {
        ParallelScope {
            cores: platform.total_cores(),
            sockets: platform.memory.sockets,
            threads_per_core: platform.concurrency.threads_per_core,
            load_imbalance: 1.0,
        }
    }

    /// Total hardware threads engaged.
    pub fn total_threads(&self) -> usize {
        self.cores * self.threads_per_core
    }
}

/// Description of one SpMV workload after tuning: how many bytes move and how long
/// the inner loops are. Produced by the benchmark harness from the real tuned data
/// structures (spmv-core) and traffic estimates (this crate's [`crate::trace`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadProfile {
    /// Logical nonzeros.
    pub nnz: u64,
    /// Rows of the matrix.
    pub nrows: usize,
    /// Columns of the matrix.
    pub ncols: usize,
    /// Bytes of matrix data streamed per SpMV (the tuned structure's footprint).
    pub matrix_bytes: u64,
    /// Bytes of source-vector DRAM traffic per SpMV.
    pub source_bytes: u64,
    /// Bytes of destination-vector DRAM traffic per SpMV.
    pub dest_bytes: u64,
    /// Average nonzeros per row *per cache block* — the inner-loop trip count that
    /// determines how well loop overhead is amortized (Section 5.1).
    pub avg_row_nnz_per_block: f64,
    /// Stored entries (including register-blocking fill) over logical nonzeros.
    pub fill_ratio: f64,
}

impl WorkloadProfile {
    /// Build a profile from a traffic summary.
    pub fn from_traffic(
        nnz: u64,
        nrows: usize,
        ncols: usize,
        traffic: &TrafficSummary,
        avg_row_nnz_per_block: f64,
        fill_ratio: f64,
    ) -> Self {
        WorkloadProfile {
            nnz,
            nrows,
            ncols,
            matrix_bytes: traffic.matrix_bytes,
            source_bytes: traffic.source_bytes,
            dest_bytes: traffic.dest_bytes,
            avg_row_nnz_per_block,
            fill_ratio,
        }
    }

    /// Useful flops per SpMV.
    pub fn flops(&self) -> f64 {
        2.0 * self.nnz as f64
    }

    /// Total DRAM bytes per SpMV.
    pub fn total_bytes(&self) -> f64 {
        (self.matrix_bytes + self.source_bytes + self.dest_bytes) as f64
    }

    /// Effective flop:byte ratio.
    pub fn flop_byte(&self) -> f64 {
        if self.total_bytes() == 0.0 {
            0.0
        } else {
            self.flops() / self.total_bytes()
        }
    }

    /// Whether the source and destination vectors fit in `onchip_bytes` of aggregate
    /// cache — the condition behind the Clovertown Economics super-linearity
    /// (Section 6.3).
    pub fn vectors_fit_onchip(&self, onchip_bytes: usize) -> bool {
        (self.nrows + self.ncols) * 8 <= onchip_bytes
    }
}

/// The model's output for one (platform, workload, optimization, scope) combination.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Predicted effective performance in Gflop/s (2 flops per logical nonzero).
    pub gflops: f64,
    /// The bandwidth-bound limit in Gflop/s.
    pub bandwidth_limit_gflops: f64,
    /// The in-core (compute) limit in Gflop/s.
    pub compute_limit_gflops: f64,
    /// DRAM bandwidth actually consumed at the predicted rate, GB/s.
    pub consumed_gbs: f64,
    /// Whether the bandwidth bound was the binding constraint.
    pub bandwidth_bound: bool,
    /// Time for one SpMV in seconds.
    pub time_s: f64,
}

/// Analytic model for one platform.
#[derive(Debug, Clone)]
pub struct PerformanceModel {
    platform: Platform,
    memory: MemoryModel,
}

impl PerformanceModel {
    /// Build the model for a platform.
    pub fn new(platform: &Platform) -> Self {
        PerformanceModel {
            platform: platform.clone(),
            memory: MemoryModel::new(platform),
        }
    }

    /// The platform being modelled.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Cycles each core spends per stored nonzero in the steady state of the inner
    /// loop (excluding per-row overhead and exposed memory latency).
    fn issue_cycles_per_entry(&self, opt: &OptimizationLevel) -> f64 {
        match self.platform.core_kind {
            CoreKind::OutOfOrderX86 => {
                // Loads of value/index/x, convert, multiply, add, pointer update:
                // the out-of-order window overlaps most of it.
                let base = 2.3;
                let rb = if opt.register_blocking { 0.85 } else { 1.0 };
                let simd = if opt.code_optimized { 0.80 } else { 1.0 };
                base * rb * simd
            }
            CoreKind::InOrderMultithreaded => {
                // Single-issue: every instruction is a cycle. ~10 instructions per
                // nonzero; pointer arithmetic / pipelining shaves a little.
                let base = 10.0;
                let rb = if opt.register_blocking { 0.9 } else { 1.0 };
                let code = if opt.code_optimized { 0.9 } else { 1.0 };
                base * rb * code
            }
            CoreKind::SpeLocalStore => {
                // Half-pumped, partially pipelined DP: one SIMD DP op every 7 cycles
                // plus the quadword shuffles to gather x values. The paper's Cell
                // kernel sustains ~0.65 Gflop/s per SPE on the dense matrix, i.e.
                // roughly 10 cycles per nonzero.
                let base = 11.0;
                let code = if opt.code_optimized { 0.88 } else { 1.0 };
                base * code
            }
        }
    }

    /// Cycles of exposed memory latency per nonzero that the core cannot hide.
    fn exposed_latency_cycles(&self, opt: &OptimizationLevel, scope: &ParallelScope) -> f64 {
        match self.platform.core_kind {
            CoreKind::OutOfOrderX86 => {
                // The reorder window plus hardware prefetch hides essentially all of
                // it; software prefetch removes the residual L2 latency.
                if opt.software_prefetch {
                    0.0
                } else {
                    0.6
                }
            }
            CoreKind::InOrderMultithreaded => {
                // Section 6.1: 23–48 cycles of memory latency per nonzero for one
                // thread. Additional hardware threads on the core hide it
                // proportionally; prefetch (L2-only) helps little.
                let base = if opt.software_prefetch { 36.0 } else { 40.0 };
                base / scope.threads_per_core.max(1) as f64
            }
            CoreKind::SpeLocalStore => {
                // Double-buffered DMA hides DRAM latency entirely; without it the SPE
                // waits for each buffer.
                if opt.software_prefetch {
                    0.0
                } else {
                    6.0
                }
            }
        }
    }

    /// Cycles of per-row loop overhead (startup, pointer bookkeeping, and the branch
    /// misprediction the paper blames for Economics/Circuit on Cell).
    fn row_overhead_cycles(&self, opt: &OptimizationLevel) -> f64 {
        match self.platform.core_kind {
            CoreKind::OutOfOrderX86 => {
                // Branchless gave no benefit on x86 (Section 4.1): overhead is modest
                // either way.
                9.0
            }
            CoreKind::InOrderMultithreaded => {
                if opt.code_optimized {
                    8.0
                } else {
                    14.0
                }
            }
            CoreKind::SpeLocalStore => {
                // "Without perfect branch prediction or a branchless implementation,
                // matrices with few nonzeros per row are heavily penalized by the
                // loop overhead including the branch misprediction penalty" (§6.5).
                if opt.code_optimized {
                    14.0
                } else {
                    30.0
                }
            }
        }
    }

    /// The in-core (compute) bound in Gflop/s for the given configuration.
    pub fn compute_limit_gflops(
        &self,
        workload: &WorkloadProfile,
        opt: &OptimizationLevel,
        scope: &ParallelScope,
    ) -> f64 {
        let issue = self.issue_cycles_per_entry(opt);
        let exposed = self.exposed_latency_cycles(opt, scope);
        let row_overhead = self.row_overhead_cycles(opt);
        let inner_len = workload.avg_row_nnz_per_block.max(0.25);
        // Stored entries include register-blocking fill: the kernel processes them
        // all even though only the logical nonzeros contribute useful flops.
        let fill = workload.fill_ratio.max(1.0);
        let cycles_per_logical_nnz = (issue + exposed) * fill + row_overhead / inner_len;
        let per_core_gnnz = self.platform.clock_ghz / cycles_per_logical_nnz;
        let cores = scope.cores.min(self.platform.total_cores()) as f64;
        // Imbalance: finish time is set by the most loaded thread.
        2.0 * per_core_gnnz * cores / scope.load_imbalance.max(1.0)
    }

    /// The bandwidth bound in Gflop/s for the given configuration.
    pub fn bandwidth_limit_gflops(
        &self,
        workload: &WorkloadProfile,
        opt: &OptimizationLevel,
        scope: &ParallelScope,
    ) -> f64 {
        let placement = if !self.platform.memory.numa || opt.numa_aware {
            Placement::NumaAware
        } else if scope.sockets > 1 {
            Placement::Interleaved
        } else {
            Placement::NumaAware
        };
        self.bandwidth_limit_with_placement(workload, opt, scope, placement)
    }

    /// The bandwidth bound for an explicit page-placement assumption (the hook
    /// the affinity-policy interpretation uses).
    fn bandwidth_limit_with_placement(
        &self,
        workload: &WorkloadProfile,
        opt: &OptimizationLevel,
        scope: &ParallelScope,
        placement: Placement,
    ) -> f64 {
        // If the whole problem (vectors included) fits in the aggregate on-chip
        // storage, repeated SpMV calls stream from cache, not DRAM: the bandwidth
        // bound effectively disappears (Clovertown/Economics superlinearity). The
        // matrix itself must also fit for that to apply.
        let onchip = self.platform.total_onchip_bytes();
        let problem_bytes = workload.total_bytes();
        if problem_bytes <= onchip as f64 {
            return f64::INFINITY;
        }
        let estimate = self.memory.sustained_gbs(
            scope.cores,
            scope.sockets,
            scope.threads_per_core,
            opt.software_prefetch,
            placement,
        );
        estimate.sustained_gbs * workload.flop_byte() / scope.load_imbalance.max(1.0)
    }

    /// Map an executor [`AffinityPolicy`] onto the memory model's page-placement
    /// assumption. Local memory affinity only yields NUMA-aware placement when
    /// the threads are also bound (otherwise the scheduler can migrate a thread
    /// away from the node its block was first-touched on); interleaving is
    /// honoured as such; default (OS) placement lands everything on one node.
    pub fn placement_for_affinity(policy: &AffinityPolicy) -> Placement {
        match policy.memory {
            MemoryAffinity::Local if policy.is_fully_local() => Placement::NumaAware,
            MemoryAffinity::Interleaved => Placement::Interleaved,
            MemoryAffinity::Local | MemoryAffinity::Default => Placement::SingleNode,
        }
    }

    /// [`PerformanceModel::predict`] with the NUMA assumptions derived from a
    /// concrete executor [`AffinityPolicy`] (e.g. `SpmvEngine::affinity`)
    /// instead of the coarse [`OptimizationLevel::numa_aware`] flag: the policy
    /// decides both the placement fed to the bandwidth model and the
    /// `numa_aware` rung.
    pub fn predict_with_affinity(
        &self,
        workload: &WorkloadProfile,
        opt: &OptimizationLevel,
        scope: &ParallelScope,
        policy: &AffinityPolicy,
    ) -> Prediction {
        let opt = OptimizationLevel {
            numa_aware: policy.is_fully_local(),
            ..*opt
        };
        let placement = if !self.platform.memory.numa {
            Placement::NumaAware
        } else {
            Self::placement_for_affinity(policy)
        };
        let compute = self.compute_limit_gflops(workload, &opt, scope);
        let bandwidth = self.bandwidth_limit_with_placement(workload, &opt, scope, placement);
        Self::combine(workload, compute, bandwidth)
    }

    /// Predict performance: the minimum of the two bounds.
    pub fn predict(
        &self,
        workload: &WorkloadProfile,
        opt: &OptimizationLevel,
        scope: &ParallelScope,
    ) -> Prediction {
        let compute = self.compute_limit_gflops(workload, opt, scope);
        let bandwidth = self.bandwidth_limit_gflops(workload, opt, scope);
        Self::combine(workload, compute, bandwidth)
    }

    /// Fold the two bounds into a [`Prediction`].
    fn combine(workload: &WorkloadProfile, compute: f64, bandwidth: f64) -> Prediction {
        let gflops = compute.min(bandwidth);
        let time_s = if gflops > 0.0 {
            workload.flops() / (gflops * 1e9)
        } else {
            f64::INFINITY
        };
        let consumed_gbs = if time_s.is_finite() && time_s > 0.0 {
            workload.total_bytes() / time_s / 1e9
        } else {
            0.0
        };
        Prediction {
            gflops,
            bandwidth_limit_gflops: bandwidth,
            compute_limit_gflops: compute,
            consumed_gbs,
            bandwidth_bound: bandwidth <= compute,
            time_s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platforms::PlatformId;

    /// The dense 2K x 2K matrix stored in tuned sparse format on a cache platform:
    /// ~8.2 bytes per nonzero of matrix data plus compulsory vector traffic.
    fn dense_workload_x86() -> WorkloadProfile {
        let n = 2_000u64;
        let nnz = n * n;
        WorkloadProfile {
            nnz,
            nrows: n as usize,
            ncols: n as usize,
            matrix_bytes: (nnz as f64 * 8.2) as u64,
            source_bytes: n * 8,
            dest_bytes: n * 16,
            avg_row_nnz_per_block: 2_000.0,
            fill_ratio: 1.0,
        }
    }

    /// The same dense matrix with the Cell implementation's 10 bytes per nonzero
    /// (value + 16-bit indices, dense cache blocks).
    fn dense_workload_cell() -> WorkloadProfile {
        let w = dense_workload_x86();
        WorkloadProfile {
            matrix_bytes: w.nnz * 10,
            ..w
        }
    }

    fn model(id: PlatformId) -> PerformanceModel {
        PerformanceModel::new(&id.platform())
    }

    #[test]
    fn table4_amd_x2_dense() {
        let m = model(PlatformId::AmdX2);
        let w = dense_workload_x86();
        let opt = OptimizationLevel::full();
        let p = m.platform().clone();
        let one = m.predict(&w, &opt, &ParallelScope::single_core());
        let socket = m.predict(&w, &opt, &ParallelScope::single_socket(&p));
        let system = m.predict(&w, &opt, &ParallelScope::full_system(&p));
        // Paper Table 4: 1.33 / 1.63 / 3.09 Gflop/s.
        assert!((one.gflops - 1.33).abs() < 0.35, "one core {}", one.gflops);
        assert!(
            (socket.gflops - 1.63).abs() < 0.45,
            "socket {}",
            socket.gflops
        );
        assert!(
            (system.gflops - 3.09).abs() < 0.8,
            "system {}",
            system.gflops
        );
        assert!(one.bandwidth_bound);
        assert!(system.gflops > socket.gflops && socket.gflops > one.gflops);
    }

    #[test]
    fn table4_clovertown_dense() {
        let m = model(PlatformId::Clovertown);
        let w = dense_workload_x86();
        let opt = OptimizationLevel::full();
        let p = m.platform().clone();
        let one = m.predict(&w, &opt, &ParallelScope::single_core());
        let socket = m.predict(&w, &opt, &ParallelScope::single_socket(&p));
        let system = m.predict(&w, &opt, &ParallelScope::full_system(&p));
        // Paper Table 4: 0.89 / 1.62 / 2.18 Gflop/s.
        assert!((one.gflops - 0.89).abs() < 0.3, "one core {}", one.gflops);
        assert!(
            (socket.gflops - 1.62).abs() < 0.45,
            "socket {}",
            socket.gflops
        );
        assert!(
            (system.gflops - 2.18).abs() < 0.6,
            "system {}",
            system.gflops
        );
        // The full Clovertown system gains little over one socket (FSB-bound).
        assert!(system.gflops < 1.6 * socket.gflops);
    }

    #[test]
    fn table4_niagara_dense() {
        let m = model(PlatformId::Niagara);
        let w = dense_workload_x86();
        let opt = OptimizationLevel::full();
        let p = m.platform().clone();
        let one = m.predict(&w, &opt, &ParallelScope::single_core());
        let socket = m.predict(&w, &opt, &ParallelScope::single_socket(&p));
        let system = m.predict(&w, &opt, &ParallelScope::full_system(&p));
        // Paper Table 4: 0.065 / 0.51 / 1.24 Gflop/s.
        assert!(one.gflops < 0.12, "one thread {}", one.gflops);
        assert!(
            (socket.gflops - 0.51).abs() < 0.2,
            "socket {}",
            socket.gflops
        );
        assert!(
            (system.gflops - 1.24).abs() < 0.45,
            "system {}",
            system.gflops
        );
        // Thread scaling is the whole story on Niagara.
        assert!(system.gflops > 10.0 * one.gflops);
    }

    #[test]
    fn table4_cell_dense() {
        let ps3 = model(PlatformId::CellPs3);
        let blade = model(PlatformId::CellBlade);
        let w = dense_workload_cell();
        // The paper's Cell implementation is "partially optimized": DMA and dense
        // cache blocks, but no NUMA awareness (the blade interleaves pages).
        let opt = OptimizationLevel {
            numa_aware: false,
            ..OptimizationLevel::full()
        };
        let one = ps3.predict(&w, &opt, &ParallelScope::single_core());
        let ps3_socket = ps3.predict(&w, &opt, &ParallelScope::single_socket(ps3.platform()));
        let blade_socket = blade.predict(&w, &opt, &ParallelScope::single_socket(blade.platform()));
        let blade_system = blade.predict(&w, &opt, &ParallelScope::full_system(blade.platform()));
        // Paper Table 4: 0.65 / 3.67 (PS3) / 4.64 (blade socket) / 6.30 (blade).
        assert!((one.gflops - 0.65).abs() < 0.2, "one SPE {}", one.gflops);
        assert!(
            (ps3_socket.gflops - 3.67).abs() < 0.9,
            "PS3 {}",
            ps3_socket.gflops
        );
        assert!(
            (blade_socket.gflops - 4.64).abs() < 1.0,
            "blade socket {}",
            blade_socket.gflops
        );
        assert!(
            (blade_system.gflops - 6.30).abs() < 1.6,
            "blade {}",
            blade_system.gflops
        );
        // One SPE is compute bound; a full blade socket is memory bound (91% of peak).
        assert!(!one.bandwidth_bound);
        assert!(blade_socket.bandwidth_bound);
    }

    #[test]
    fn cell_blade_outperforms_x86_at_full_system() {
        let w_x86 = dense_workload_x86();
        let w_cell = dense_workload_cell();
        let opt = OptimizationLevel::full();
        let amd = model(PlatformId::AmdX2);
        let clover = model(PlatformId::Clovertown);
        let blade = model(PlatformId::CellBlade);
        let amd_sys = amd.predict(&w_x86, &opt, &ParallelScope::full_system(amd.platform()));
        let clover_sys =
            clover.predict(&w_x86, &opt, &ParallelScope::full_system(clover.platform()));
        let blade_sys = blade.predict(&w_cell, &opt, &ParallelScope::full_system(blade.platform()));
        assert!(blade_sys.gflops > amd_sys.gflops);
        assert!(blade_sys.gflops > clover_sys.gflops);
    }

    #[test]
    fn short_rows_hurt_cell_more_than_x86() {
        // Economics-like: ~6 nonzeros per row overall, but the Cell implementation's
        // fixed dense cache blocks leave only a couple of nonzeros per row per block
        // (the FEM-Accelerator arithmetic of Section 5.1), and its inner loop is not
        // branchless, so each short row pays the misprediction penalty.
        let w = WorkloadProfile {
            nnz: 1_270_000,
            nrows: 207_000,
            ncols: 207_000,
            matrix_bytes: 1_270_000 * 12,
            source_bytes: 207_000 * 8,
            dest_bytes: 207_000 * 16,
            avg_row_nnz_per_block: 2.0,
            fill_ratio: 1.0,
        };
        let dense = dense_workload_cell();
        let cell = model(PlatformId::CellBlade);
        let opt = OptimizationLevel {
            code_optimized: false,
            numa_aware: false,
            ..OptimizationLevel::full()
        };
        let scope = ParallelScope::single_socket(cell.platform());
        let short = cell.predict(&w, &opt, &scope);
        let long = cell.predict(&dense, &opt, &scope);
        // The loop-overhead penalty must show up clearly for short rows.
        assert!(short.gflops < 0.75 * long.gflops);
        assert!(!short.bandwidth_bound);
    }

    #[test]
    fn prefetch_helps_amd_more_than_clovertown() {
        // Section 6.3: Clovertown's hardware prefetchers already do the job.
        let w = dense_workload_x86();
        let amd = model(PlatformId::AmdX2);
        let clover = model(PlatformId::Clovertown);
        let scope = ParallelScope::single_core();
        let amd_gain = amd
            .predict(&w, &OptimizationLevel::prefetch(), &scope)
            .gflops
            / amd.predict(&w, &OptimizationLevel::naive(), &scope).gflops;
        let clover_gain = clover
            .predict(&w, &OptimizationLevel::prefetch(), &scope)
            .gflops
            / clover
                .predict(&w, &OptimizationLevel::naive(), &scope)
                .gflops;
        assert!(amd_gain >= clover_gain);
        assert!(amd_gain > 1.05);
    }

    #[test]
    fn numa_awareness_matters_on_dual_socket_numa_systems() {
        let w = dense_workload_x86();
        let amd = model(PlatformId::AmdX2);
        let scope = ParallelScope::full_system(amd.platform());
        let with = amd.predict(&w, &OptimizationLevel::full(), &scope);
        let without = amd.predict(
            &w,
            &OptimizationLevel {
                numa_aware: false,
                ..OptimizationLevel::full()
            },
            &scope,
        );
        assert!(with.gflops > without.gflops);
    }

    #[test]
    fn affinity_policy_interpretation_orders_placements() {
        use spmv_parallel::affinity::AffinityPolicy;
        // Pinned + local beats interleaved beats OS default on a NUMA machine.
        let w = dense_workload_x86();
        let amd = model(PlatformId::AmdX2);
        let scope = ParallelScope::full_system(amd.platform());
        let opt = OptimizationLevel::full();
        let local = amd.predict_with_affinity(&w, &opt, &scope, &AffinityPolicy::numa_aware());
        let inter = amd.predict_with_affinity(&w, &opt, &scope, &AffinityPolicy::interleaved());
        let default = amd.predict_with_affinity(&w, &opt, &scope, &AffinityPolicy::none());
        assert!(
            local.gflops > inter.gflops,
            "{} vs {}",
            local.gflops,
            inter.gflops
        );
        // On a two-socket machine interleaving and node-0 placement sustain the
        // same aggregate in this model (one local + one remote share either way);
        // interleaving must never be *worse*.
        assert!(
            inter.gflops >= default.gflops,
            "{} vs {}",
            inter.gflops,
            default.gflops
        );
        assert!(local.gflops > default.gflops);
        // Fully-local affinity reproduces the numa_aware=true prediction.
        assert_eq!(local, amd.predict(&w, &opt, &scope));
        // First-touch without pinning must not be credited as NUMA-aware.
        let ft = amd.predict_with_affinity(&w, &opt, &scope, &AffinityPolicy::first_touch());
        assert!(ft.gflops < local.gflops);
        assert_eq!(
            PerformanceModel::placement_for_affinity(&AffinityPolicy::first_touch()),
            Placement::SingleNode
        );
    }

    #[test]
    fn affinity_is_irrelevant_on_uniform_memory_platforms() {
        use spmv_parallel::affinity::AffinityPolicy;
        // Clovertown's FSB is not NUMA: every policy predicts the same.
        let w = dense_workload_x86();
        let clover = model(PlatformId::Clovertown);
        let scope = ParallelScope::full_system(clover.platform());
        let opt = OptimizationLevel::full();
        let a = clover.predict_with_affinity(&w, &opt, &scope, &AffinityPolicy::numa_aware());
        let b = clover.predict_with_affinity(&w, &opt, &scope, &AffinityPolicy::none());
        assert_eq!(a.gflops, b.gflops);
    }

    #[test]
    fn load_imbalance_reduces_throughput() {
        let w = dense_workload_x86();
        let amd = model(PlatformId::AmdX2);
        let balanced = ParallelScope::full_system(amd.platform());
        let imbalanced = ParallelScope {
            load_imbalance: 2.0,
            ..balanced
        };
        let a = amd.predict(&w, &OptimizationLevel::full(), &balanced);
        let b = amd.predict(&w, &OptimizationLevel::full(), &imbalanced);
        assert!((b.gflops - a.gflops / 2.0).abs() < 0.3 * a.gflops);
    }

    #[test]
    fn small_problem_escapes_the_bandwidth_bound() {
        // A matrix + vectors fitting in Clovertown's 16MB of L2: the paper measured
        // 12 Gflop/s on an in-cache matrix (Section 6.1).
        let w = WorkloadProfile {
            nnz: 500_000,
            nrows: 10_000,
            ncols: 10_000,
            matrix_bytes: 500_000 * 10,
            source_bytes: 10_000 * 8,
            dest_bytes: 10_000 * 16,
            avg_row_nnz_per_block: 50.0,
            fill_ratio: 1.0,
        };
        let clover = model(PlatformId::Clovertown);
        let p = clover.predict(
            &w,
            &OptimizationLevel::full(),
            &ParallelScope::full_system(clover.platform()),
        );
        assert!(!p.bandwidth_bound);
        assert!(p.bandwidth_limit_gflops.is_infinite());
        assert!(p.gflops > 4.0);
    }

    #[test]
    fn workload_profile_accessors() {
        let w = dense_workload_x86();
        assert_eq!(w.flops(), 2.0 * 4_000_000.0);
        assert!(w.flop_byte() > 0.2 && w.flop_byte() < 0.25);
        assert!(w.vectors_fit_onchip(16 << 20));
        assert!(!w.vectors_fit_onchip(8_000));
    }

    #[test]
    fn prediction_time_and_bandwidth_consistency() {
        let w = dense_workload_x86();
        let amd = model(PlatformId::AmdX2);
        let p = amd.predict(
            &w,
            &OptimizationLevel::full(),
            &ParallelScope::single_core(),
        );
        let expected_time = w.flops() / (p.gflops * 1e9);
        assert!((p.time_s - expected_time).abs() < 1e-9);
        assert!((p.consumed_gbs - w.total_bytes() / p.time_s / 1e9).abs() < 1e-6);
    }
}
