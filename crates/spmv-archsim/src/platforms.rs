//! Platform descriptions — the machine-readable form of the paper's Table 1.
//!
//! Raw architectural parameters (clock, cores, caches, DRAM channels, power) are taken
//! directly from Table 1. The handful of micro-architectural latency/concurrency
//! parameters the analytic model needs (memory latency, outstanding misses per core,
//! line sizes) come from the paper's Section 6.1 discussion (e.g. Niagara's 16-byte L1
//! lines, ~22-cycle L2, inability to cover more than one outstanding miss per thread)
//! and from the vendors' published figures for these 2007 parts.

/// Identifies one of the five evaluated systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlatformId {
    /// Dual-socket, dual-core AMD Opteron 2214 (SunFire X2200 M2).
    AmdX2,
    /// Dual-socket, quad-core Intel Xeon E5345 Clovertown (Dell PowerEdge 1950).
    Clovertown,
    /// Single-socket, eight-core, 32-thread Sun UltraSparc T1 Niagara (T1000).
    Niagara,
    /// Single-socket STI Cell with 6 usable SPEs (PlayStation 3).
    CellPs3,
    /// Dual-socket STI Cell QS20 blade with 8 SPEs per socket.
    CellBlade,
}

impl PlatformId {
    /// All platforms, in the order the paper's tables list them.
    pub fn all() -> [PlatformId; 5] {
        [
            PlatformId::AmdX2,
            PlatformId::Clovertown,
            PlatformId::Niagara,
            PlatformId::CellPs3,
            PlatformId::CellBlade,
        ]
    }

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            PlatformId::AmdX2 => "AMD X2",
            PlatformId::Clovertown => "Clovertown",
            PlatformId::Niagara => "Niagara",
            PlatformId::CellPs3 => "Cell (PS3)",
            PlatformId::CellBlade => "Cell Blade",
        }
    }

    /// The full platform description.
    pub fn platform(&self) -> Platform {
        Platform::new(*self)
    }
}

/// The kind of core, which determines which optimizations matter (Table 2 columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreKind {
    /// Out-of-order superscalar x86 (Opteron, Clovertown): hardware prefetch, deep
    /// reorder window, branch misprediction costs visible on short rows.
    OutOfOrderX86,
    /// In-order, fine-grained multithreaded (Niagara): latency is hidden only by
    /// running many threads.
    InOrderMultithreaded,
    /// In-order SIMD core with software-managed local store and DMA (Cell SPE).
    SpeLocalStore,
}

/// Cache hierarchy description (absent for the Cell SPEs, which use a local store).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheConfig {
    /// L1 data cache capacity per core, bytes.
    pub l1_bytes: usize,
    /// L1 line size in bytes (16 on Niagara, 64 elsewhere).
    pub l1_line_bytes: usize,
    /// Outer-level (L2/victim) capacity in bytes, per sharing domain.
    pub l2_bytes: usize,
    /// Number of cores sharing one L2 domain.
    pub l2_shared_by: usize,
    /// L2 associativity.
    pub l2_ways: usize,
    /// L2 line size in bytes.
    pub l2_line_bytes: usize,
}

/// Memory-system description.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryConfig {
    /// Peak DRAM bandwidth per socket, GB/s (Table 1's DRAM row / sockets).
    pub peak_gbs_per_socket: f64,
    /// Number of sockets (NUMA nodes for Opteron and Cell blade).
    pub sockets: usize,
    /// Whether sockets have separate memory controllers (NUMA) or share a
    /// front-side-bus/chipset path (Clovertown).
    pub numa: bool,
    /// Fraction of a remote socket's bandwidth available over the inter-socket link
    /// (HyperTransport / Cell coherent interface) when NUMA placement is ignored.
    pub remote_fraction: f64,
    /// Round-trip main-memory latency seen by a core, nanoseconds.
    pub latency_ns: f64,
    /// Fraction of the per-socket peak actually sustainable by streaming reads
    /// (controller/FSB efficiency; the Clovertown FSB tops out well below the
    /// chipset's aggregate DRAM bandwidth).
    pub stream_efficiency: f64,
}

/// Per-core concurrency parameters for the latency–bandwidth (Little's law) model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConcurrencyConfig {
    /// Maximum useful outstanding cache-line (or DMA) requests a single
    /// core/thread sustains with only hardware mechanisms (no software prefetch).
    pub baseline_outstanding: f64,
    /// Outstanding requests with software prefetch (x86) or double-buffered DMA
    /// (Cell) — the paper's PF/DMA optimizations raise exactly this number.
    pub prefetch_outstanding: f64,
    /// Request granularity in bytes (cache line, or DMA transfer for the SPEs).
    pub request_bytes: f64,
    /// Hardware threads per core that can each hold their own misses.
    pub threads_per_core: usize,
}

/// A complete platform description (one row of Table 1 plus model parameters).
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    /// Which system this is.
    pub id: PlatformId,
    /// Core microarchitecture family.
    pub core_kind: CoreKind,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Cores per socket (SPEs for Cell).
    pub cores_per_socket: usize,
    /// Peak double-precision Gflop/s per core (Table 1; Niagara's figure is the
    /// 64-bit integer proxy the paper uses).
    pub peak_gflops_per_core: f64,
    /// Cache hierarchy, if the platform has one.
    pub cache: Option<CacheConfig>,
    /// Cell local store bytes per SPE, if applicable.
    pub local_store_bytes: Option<usize>,
    /// Memory system.
    pub memory: MemoryConfig,
    /// Concurrency (latency tolerance) parameters.
    pub concurrency: ConcurrencyConfig,
    /// Power drawn by the sockets alone, watts (Table 1).
    pub socket_power_w: f64,
    /// Power drawn by the full system, watts (Table 1).
    pub system_power_w: f64,
}

impl Platform {
    /// Build the description for `id` from the paper's Table 1.
    pub fn new(id: PlatformId) -> Platform {
        match id {
            PlatformId::AmdX2 => Platform {
                id,
                core_kind: CoreKind::OutOfOrderX86,
                clock_ghz: 2.2,
                cores_per_socket: 2,
                peak_gflops_per_core: 4.4,
                cache: Some(CacheConfig {
                    l1_bytes: 64 * 1024,
                    l1_line_bytes: 64,
                    l2_bytes: 1024 * 1024,
                    l2_shared_by: 1,
                    l2_ways: 4,
                    l2_line_bytes: 64,
                }),
                local_store_bytes: None,
                memory: MemoryConfig {
                    peak_gbs_per_socket: 10.66,
                    sockets: 2,
                    numa: true,
                    remote_fraction: 0.55,
                    latency_ns: 75.0,
                    stream_efficiency: 0.62,
                },
                concurrency: ConcurrencyConfig {
                    // Hardware prefetchers into L2 keep ~6 lines in flight; software
                    // prefetch into L1 raises effective concurrency further.
                    baseline_outstanding: 5.0,
                    prefetch_outstanding: 6.5,
                    request_bytes: 64.0,
                    threads_per_core: 1,
                },
                socket_power_w: 190.0,
                system_power_w: 275.0,
            },
            PlatformId::Clovertown => Platform {
                id,
                core_kind: CoreKind::OutOfOrderX86,
                clock_ghz: 2.33,
                cores_per_socket: 4,
                peak_gflops_per_core: 9.33,
                cache: Some(CacheConfig {
                    l1_bytes: 32 * 1024,
                    l1_line_bytes: 64,
                    l2_bytes: 4 * 1024 * 1024,
                    l2_shared_by: 2,
                    l2_ways: 16,
                    l2_line_bytes: 64,
                }),
                local_store_bytes: None,
                memory: MemoryConfig {
                    // Each socket's FSB delivers 10.66 GB/s to the Blackford chipset;
                    // the chipset's four FB-DIMM channels total 21.3 GB/s but a
                    // socket never sees more than its FSB.
                    peak_gbs_per_socket: 10.66,
                    sockets: 2,
                    numa: false,
                    remote_fraction: 1.0,
                    latency_ns: 85.0,
                    stream_efficiency: 0.62,
                },
                concurrency: ConcurrencyConfig {
                    baseline_outstanding: 4.3,
                    prefetch_outstanding: 4.6,
                    request_bytes: 64.0,
                    threads_per_core: 1,
                },
                socket_power_w: 160.0,
                system_power_w: 333.0,
            },
            PlatformId::Niagara => Platform {
                id,
                core_kind: CoreKind::InOrderMultithreaded,
                clock_ghz: 1.0,
                cores_per_socket: 8,
                peak_gflops_per_core: 1.0,
                cache: Some(CacheConfig {
                    l1_bytes: 8 * 1024,
                    l1_line_bytes: 16,
                    l2_bytes: 3 * 1024 * 1024,
                    l2_shared_by: 8,
                    l2_ways: 12,
                    l2_line_bytes: 64,
                }),
                local_store_bytes: None,
                memory: MemoryConfig {
                    peak_gbs_per_socket: 25.6,
                    sockets: 1,
                    numa: false,
                    remote_fraction: 1.0,
                    // Effective average latency of the L2/DRAM mix seen by a single
                    // in-order thread (Section 6.1 estimates 23–48 cycles of memory
                    // latency per nonzero at 1 GHz).
                    latency_ns: 70.0,
                    stream_efficiency: 0.80,
                },
                concurrency: ConcurrencyConfig {
                    // A single in-order thread holds one 16-byte L1 miss at a time;
                    // prefetch only reaches the L2, so it barely helps (Section 6.1).
                    baseline_outstanding: 1.0,
                    prefetch_outstanding: 1.15,
                    request_bytes: 16.0,
                    threads_per_core: 4,
                },
                socket_power_w: 72.0,
                system_power_w: 267.0,
            },
            PlatformId::CellPs3 => Platform {
                id,
                core_kind: CoreKind::SpeLocalStore,
                clock_ghz: 3.2,
                cores_per_socket: 6,
                peak_gflops_per_core: 1.83,
                cache: None,
                local_store_bytes: Some(256 * 1024),
                memory: MemoryConfig {
                    peak_gbs_per_socket: 25.6,
                    sockets: 1,
                    numa: false,
                    remote_fraction: 1.0,
                    latency_ns: 90.0,
                    stream_efficiency: 0.92,
                },
                concurrency: ConcurrencyConfig {
                    // Effective time-averaged DMA concurrency of one SPE's MFC when
                    // the SpMV kernel issues 2KB-class transfers: roughly 3 GB/s
                    // without double buffering and ~7 GB/s with it, consistent with
                    // the per-SPE rates reported for the Cell SpMV of reference [13].
                    baseline_outstanding: 0.13,
                    prefetch_outstanding: 0.30,
                    request_bytes: 2048.0,
                    threads_per_core: 1,
                },
                socket_power_w: 100.0,
                system_power_w: 200.0,
            },
            PlatformId::CellBlade => Platform {
                id,
                core_kind: CoreKind::SpeLocalStore,
                clock_ghz: 3.2,
                cores_per_socket: 8,
                peak_gflops_per_core: 1.83,
                cache: None,
                local_store_bytes: Some(256 * 1024),
                memory: MemoryConfig {
                    peak_gbs_per_socket: 25.6,
                    sockets: 2,
                    numa: true,
                    remote_fraction: 0.55,
                    latency_ns: 90.0,
                    stream_efficiency: 0.92,
                },
                concurrency: ConcurrencyConfig {
                    baseline_outstanding: 0.13,
                    prefetch_outstanding: 0.30,
                    request_bytes: 2048.0,
                    threads_per_core: 1,
                },
                socket_power_w: 200.0,
                system_power_w: 315.0,
            },
        }
    }

    /// Total cores in the system.
    pub fn total_cores(&self) -> usize {
        self.cores_per_socket * self.memory.sockets
    }

    /// Total hardware threads in the system.
    pub fn total_threads(&self) -> usize {
        self.total_cores() * self.concurrency.threads_per_core
    }

    /// Peak double-precision Gflop/s for the whole system (Table 1's "DP Gflop/s" row).
    pub fn peak_gflops_system(&self) -> f64 {
        self.peak_gflops_per_core * self.total_cores() as f64
    }

    /// Peak DRAM bandwidth of the whole system in GB/s (Table 1's "System DRAM" row).
    pub fn peak_gbs_system(&self) -> f64 {
        self.memory.peak_gbs_per_socket * self.memory.sockets as f64
    }

    /// The system flop:byte ratio of Table 1 (peak flops over peak bandwidth).
    pub fn system_flop_byte_ratio(&self) -> f64 {
        self.peak_gflops_system() / self.peak_gbs_system()
    }

    /// Aggregate outer-cache (L2 / local store) capacity in bytes for the whole
    /// system — the quantity that decides whether a matrix's vectors fit on chip
    /// (the Economics superlinearity discussion in Section 6.3).
    pub fn total_onchip_bytes(&self) -> usize {
        match (&self.cache, self.local_store_bytes) {
            (Some(c), _) => {
                let domains = self.total_cores() / c.l2_shared_by.max(1);
                c.l2_bytes * domains.max(1)
            }
            (None, Some(ls)) => ls * self.total_cores(),
            (None, None) => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_peak_flops() {
        // Paper Table 1 "DP Gflop/s" system row: 17.6, 74.7, 8, 11, 29.
        assert!((PlatformId::AmdX2.platform().peak_gflops_system() - 17.6).abs() < 0.1);
        assert!((PlatformId::Clovertown.platform().peak_gflops_system() - 74.7).abs() < 0.4);
        assert!((PlatformId::Niagara.platform().peak_gflops_system() - 8.0).abs() < 0.1);
        assert!((PlatformId::CellPs3.platform().peak_gflops_system() - 11.0).abs() < 0.1);
        assert!((PlatformId::CellBlade.platform().peak_gflops_system() - 29.3).abs() < 0.4);
    }

    #[test]
    fn table1_peak_bandwidth() {
        // Paper Table 1 "System DRAM (GB/s)": 21.2, 21.2, 25.6, 25.6, 51.2.
        assert!((PlatformId::AmdX2.platform().peak_gbs_system() - 21.3).abs() < 0.2);
        assert!((PlatformId::Clovertown.platform().peak_gbs_system() - 21.3).abs() < 0.2);
        assert!((PlatformId::Niagara.platform().peak_gbs_system() - 25.6).abs() < 0.1);
        assert!((PlatformId::CellPs3.platform().peak_gbs_system() - 25.6).abs() < 0.1);
        assert!((PlatformId::CellBlade.platform().peak_gbs_system() - 51.2).abs() < 0.1);
    }

    #[test]
    fn table1_flop_byte_ratios() {
        // Paper Table 1 "System Flop:Byte ratio": 0.83, 3.52, 0.31, 0.43, 0.57.
        assert!((PlatformId::AmdX2.platform().system_flop_byte_ratio() - 0.83).abs() < 0.03);
        assert!((PlatformId::Clovertown.platform().system_flop_byte_ratio() - 3.52).abs() < 0.1);
        assert!((PlatformId::Niagara.platform().system_flop_byte_ratio() - 0.31).abs() < 0.02);
        assert!((PlatformId::CellPs3.platform().system_flop_byte_ratio() - 0.43).abs() < 0.02);
        assert!((PlatformId::CellBlade.platform().system_flop_byte_ratio() - 0.57).abs() < 0.02);
    }

    #[test]
    fn core_and_thread_counts() {
        assert_eq!(PlatformId::AmdX2.platform().total_cores(), 4);
        assert_eq!(PlatformId::Clovertown.platform().total_cores(), 8);
        assert_eq!(PlatformId::Niagara.platform().total_cores(), 8);
        assert_eq!(PlatformId::Niagara.platform().total_threads(), 32);
        assert_eq!(PlatformId::CellPs3.platform().total_cores(), 6);
        assert_eq!(PlatformId::CellBlade.platform().total_cores(), 16);
    }

    #[test]
    fn onchip_capacity() {
        // Clovertown: 16MB aggregate L2 (4 domains of 4MB).
        assert_eq!(
            PlatformId::Clovertown.platform().total_onchip_bytes(),
            16 * 1024 * 1024
        );
        // AMD X2: 4 x 1MB victim caches.
        assert_eq!(
            PlatformId::AmdX2.platform().total_onchip_bytes(),
            4 * 1024 * 1024
        );
        // Niagara: one shared 3MB L2.
        assert_eq!(
            PlatformId::Niagara.platform().total_onchip_bytes(),
            3 * 1024 * 1024
        );
        // Cell blade: 16 SPEs x 256KB local store.
        assert_eq!(
            PlatformId::CellBlade.platform().total_onchip_bytes(),
            4 * 1024 * 1024
        );
    }

    #[test]
    fn cell_has_local_store_not_cache() {
        let cell = PlatformId::CellPs3.platform();
        assert!(cell.cache.is_none());
        assert_eq!(cell.local_store_bytes, Some(256 * 1024));
        let amd = PlatformId::AmdX2.platform();
        assert!(amd.cache.is_some());
        assert!(amd.local_store_bytes.is_none());
    }

    #[test]
    fn niagara_l1_lines_are_16_bytes() {
        let cache = PlatformId::Niagara.platform().cache.unwrap();
        assert_eq!(cache.l1_line_bytes, 16);
        assert_eq!(cache.l1_bytes, 8 * 1024);
    }

    #[test]
    fn power_matches_table1() {
        assert_eq!(PlatformId::AmdX2.platform().system_power_w, 275.0);
        assert_eq!(PlatformId::Clovertown.platform().system_power_w, 333.0);
        assert_eq!(PlatformId::Niagara.platform().system_power_w, 267.0);
        assert_eq!(PlatformId::CellPs3.platform().system_power_w, 200.0);
        assert_eq!(PlatformId::CellBlade.platform().system_power_w, 315.0);
    }

    #[test]
    fn names_and_ordering() {
        let all = PlatformId::all();
        assert_eq!(all.len(), 5);
        assert_eq!(all[0].name(), "AMD X2");
        assert_eq!(all[4].name(), "Cell Blade");
    }
}
