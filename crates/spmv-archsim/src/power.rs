//! Power efficiency (Figure 2(b)).
//!
//! The paper computes power efficiency as full-system Mflop/s divided by the maximum
//! full-system watts of Table 1 (vendor-published figures; the PS3 number is
//! estimated from the QS20 blade). This module wraps that arithmetic and the chip-
//! only variant the paper mentions when noting Niagara's low chip power but
//! uncompetitive system power.

use crate::platforms::{Platform, PlatformId};

/// Power-efficiency summary for one platform at one performance level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerEfficiency {
    /// The platform.
    pub platform: PlatformId,
    /// Performance used for the ratio, Gflop/s.
    pub gflops: f64,
    /// Full-system Mflop/s per full-system watt (the Figure 2(b) metric).
    pub mflops_per_system_watt: f64,
    /// Mflop/s per socket-only watt (chip-level efficiency).
    pub mflops_per_socket_watt: f64,
}

/// Compute both efficiency metrics for a platform running at `gflops`.
pub fn power_efficiency(platform: &Platform, gflops: f64) -> PowerEfficiency {
    PowerEfficiency {
        platform: platform.id,
        gflops,
        mflops_per_system_watt: gflops * 1000.0 / platform.system_power_w,
        mflops_per_socket_watt: gflops * 1000.0 / platform.socket_power_w,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2b_ordering_with_paper_performance_numbers() {
        // Feed the paper's own median full-system Gflop/s (Figure 2a, roughly:
        // Cell blade 3.4, PS3 2.8, AMD X2 1.6, Clovertown 1.5, Niagara 0.8) and check
        // the efficiency ordering of Figure 2(b): Cell blade and PS3 on top, then
        // AMD X2, Clovertown, Niagara last.
        let eff = |id: PlatformId, gflops: f64| {
            power_efficiency(&id.platform(), gflops).mflops_per_system_watt
        };
        let blade = eff(PlatformId::CellBlade, 3.4);
        let ps3 = eff(PlatformId::CellPs3, 2.8);
        let amd = eff(PlatformId::AmdX2, 1.6);
        let clover = eff(PlatformId::Clovertown, 1.5);
        let niagara = eff(PlatformId::Niagara, 0.8);
        assert!(blade > amd && blade > clover && blade > niagara);
        assert!(ps3 > amd);
        assert!(amd > clover);
        assert!(clover > niagara);
        // Paper: Cell advantage roughly 2.1x over AMD X2, 3.5x over Clovertown,
        // 5.2x over Niagara (using the blade/PS3 pair).
        assert!(blade / amd > 1.5 && blade / amd < 3.0);
        assert!(blade / niagara > 3.0);
    }

    #[test]
    fn metric_arithmetic() {
        let p = PlatformId::AmdX2.platform();
        let e = power_efficiency(&p, 2.75);
        assert!((e.mflops_per_system_watt - 10.0).abs() < 1e-9);
        assert!((e.mflops_per_socket_watt - 2750.0 / 190.0).abs() < 1e-9);
        assert_eq!(e.platform, PlatformId::AmdX2);
    }

    #[test]
    fn niagara_chip_power_is_low_but_system_power_is_not() {
        let n = PlatformId::Niagara.platform();
        let c = PlatformId::Clovertown.platform();
        assert!(n.socket_power_w < c.socket_power_w);
        // System power is only marginally less (267 vs 333 W), which is why
        // Niagara's system-level efficiency ends up worst despite the frugal chip.
        assert!(n.system_power_w > 0.75 * c.system_power_w);
    }
}
