//! DRAM bandwidth and NUMA topology model.
//!
//! The paper's central observation is that SpMV is bound by how much of the
//! advertised DRAM bandwidth each design actually sustains (Table 4). This module
//! models that with a latency–concurrency (Little's law) bound per core, a streaming
//! efficiency cap per socket, and a NUMA penalty when data is not placed next to the
//! cores that stream it.

use crate::platforms::Platform;

/// How threads and memory are mapped onto sockets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Matrix blocks are allocated on the socket of the thread that streams them
    /// (libnuma-style memory affinity + process affinity).
    NumaAware,
    /// Pages are interleaved across sockets (the paper's fallback for the 16-SPE
    /// blade runs: better than one node, worse than true affinity).
    Interleaved,
    /// Everything is allocated on socket 0 regardless of which core streams it.
    SingleNode,
}

/// Sustained-bandwidth estimate for a given active-core configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandwidthEstimate {
    /// Sustained read bandwidth in GB/s.
    pub sustained_gbs: f64,
    /// Fraction of the system's peak this represents.
    pub fraction_of_peak: f64,
    /// Whether the configuration is limited by per-core concurrency (latency bound)
    /// rather than by the socket/system streaming limit.
    pub latency_bound: bool,
}

/// DRAM/NUMA model for one platform.
#[derive(Debug, Clone)]
pub struct MemoryModel {
    platform: Platform,
}

impl MemoryModel {
    /// Build the model for a platform.
    pub fn new(platform: &Platform) -> Self {
        MemoryModel {
            platform: platform.clone(),
        }
    }

    /// Per-core sustainable bandwidth from the latency–concurrency bound
    /// (outstanding requests × request size / memory latency).
    pub fn per_core_gbs(&self, software_prefetch_or_dma: bool, threads_per_core: usize) -> f64 {
        let conc = &self.platform.concurrency;
        let outstanding = if software_prefetch_or_dma {
            conc.prefetch_outstanding
        } else {
            conc.baseline_outstanding
        };
        let threads = threads_per_core.clamp(1, conc.threads_per_core) as f64;
        // Hardware threads each contribute their own outstanding misses, but L2 bank
        // and crossbar contention makes the scaling sub-linear (the paper's 32-thread
        // Niagara runs sustain ~20x a single thread, not 32x).
        let thread_scaling = threads.powf(0.75);
        let bytes_in_flight = outstanding * conc.request_bytes * thread_scaling;
        // GB/s = bytes / ns.
        bytes_in_flight / self.platform.memory.latency_ns
    }

    /// Sustained streaming limit of a single socket (GB/s).
    pub fn socket_limit_gbs(&self) -> f64 {
        self.platform.memory.peak_gbs_per_socket * self.platform.memory.stream_efficiency
    }

    /// Sustained bandwidth for `cores` active cores spread over `sockets` sockets,
    /// with `threads_per_core` hardware threads each and the given placement.
    pub fn sustained_gbs(
        &self,
        cores: usize,
        sockets: usize,
        threads_per_core: usize,
        software_prefetch_or_dma: bool,
        placement: Placement,
    ) -> BandwidthEstimate {
        let sockets = sockets.clamp(1, self.platform.memory.sockets);
        let cores_per_socket = cores.div_ceil(sockets).min(self.platform.cores_per_socket);
        let per_core = self.per_core_gbs(software_prefetch_or_dma, threads_per_core);
        let demand_per_socket = per_core * cores_per_socket as f64;
        let socket_limit = self.socket_limit_gbs();

        // How much of each socket's limit is actually reachable given placement.
        let reachable_per_socket = match placement {
            Placement::NumaAware => socket_limit,
            Placement::Interleaved => {
                if sockets == 1 || !self.platform.memory.numa {
                    socket_limit
                } else {
                    // Half the requests cross the inter-socket link.
                    let remote = self.platform.memory.remote_fraction;
                    socket_limit * (0.5 + 0.5 * remote)
                }
            }
            Placement::SingleNode => {
                if sockets == 1 || !self.platform.memory.numa {
                    socket_limit
                } else {
                    // All sockets contend for node 0's controller; the remote socket
                    // adds only what the coherent link carries.
                    socket_limit * (1.0 + self.platform.memory.remote_fraction) / sockets as f64
                }
            }
        };

        let per_socket = demand_per_socket.min(reachable_per_socket);
        let latency_bound = demand_per_socket < reachable_per_socket;

        // Non-NUMA platforms (Clovertown) share one chipset path: the second socket's
        // FSB adds bandwidth but the chipset sustains well under 2x one FSB, which is
        // what the paper observes ("performance rarely increases when aggregate
        // system bandwidth doubled"). Model this with a diminishing-returns factor.
        let total = if self.platform.memory.numa {
            per_socket * sockets as f64
        } else if sockets > 1 {
            per_socket * (1.0 + 0.35 * (sockets as f64 - 1.0))
        } else {
            per_socket
        };

        BandwidthEstimate {
            sustained_gbs: total,
            fraction_of_peak: total / self.platform.peak_gbs_system(),
            latency_bound,
        }
    }

    /// Time in seconds to stream `bytes` at the sustained bandwidth of the given
    /// configuration.
    pub fn stream_time_s(&self, bytes: f64, estimate: &BandwidthEstimate) -> f64 {
        if estimate.sustained_gbs <= 0.0 {
            return f64::INFINITY;
        }
        bytes / (estimate.sustained_gbs * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platforms::PlatformId;

    fn model(id: PlatformId) -> MemoryModel {
        MemoryModel::new(&id.platform())
    }

    #[test]
    fn amd_single_core_is_latency_bound_below_socket_limit() {
        let m = model(PlatformId::AmdX2);
        let one = m.sustained_gbs(1, 1, 1, true, Placement::NumaAware);
        // Paper Table 4: 5.40 GB/s on one core.
        assert!(
            one.sustained_gbs > 4.0 && one.sustained_gbs < 7.0,
            "{}",
            one.sustained_gbs
        );
        let socket = m.sustained_gbs(2, 1, 1, true, Placement::NumaAware);
        // Paper: 6.61 GB/s for the full socket — saturation, not 2x.
        assert!(socket.sustained_gbs > 5.5 && socket.sustained_gbs < 7.5);
        assert!(!socket.latency_bound);
        let system = m.sustained_gbs(4, 2, 1, true, Placement::NumaAware);
        // Paper: 12.55 GB/s full system (both sockets' controllers).
        assert!(system.sustained_gbs > 11.0 && system.sustained_gbs < 14.5);
    }

    #[test]
    fn clovertown_fsb_does_not_scale_across_sockets() {
        let m = model(PlatformId::Clovertown);
        let one = m.sustained_gbs(1, 1, 1, true, Placement::NumaAware);
        // Paper: 3.62 GB/s single core.
        assert!(
            one.sustained_gbs > 2.5 && one.sustained_gbs < 4.5,
            "{}",
            one.sustained_gbs
        );
        let socket = m.sustained_gbs(4, 1, 1, true, Placement::NumaAware);
        // Paper: 6.56 GB/s per socket.
        assert!(socket.sustained_gbs > 5.5 && socket.sustained_gbs < 7.5);
        let system = m.sustained_gbs(8, 2, 1, true, Placement::NumaAware);
        // Paper: 8.86 GB/s full system — well below 2x one socket.
        assert!(system.sustained_gbs > 7.5 && system.sustained_gbs < 10.0);
        assert!(system.sustained_gbs < 1.6 * socket.sustained_gbs);
    }

    #[test]
    fn niagara_needs_many_threads() {
        let m = model(PlatformId::Niagara);
        let one_thread = m.sustained_gbs(1, 1, 1, false, Placement::NumaAware);
        // Paper: 0.26 GB/s (1% of peak) for a single thread.
        assert!(
            one_thread.sustained_gbs < 0.5,
            "{}",
            one_thread.sustained_gbs
        );
        assert!(one_thread.latency_bound);
        let full = m.sustained_gbs(8, 1, 4, false, Placement::NumaAware);
        // Paper: 5.02 GB/s (20% of peak) with 32 threads.
        assert!(
            full.sustained_gbs > 3.0 && full.sustained_gbs < 8.0,
            "{}",
            full.sustained_gbs
        );
        assert!(full.sustained_gbs > 15.0 * one_thread.sustained_gbs);
    }

    #[test]
    fn cell_dma_saturates_socket() {
        let m = model(PlatformId::CellBlade);
        let one = m.sustained_gbs(1, 1, 1, true, Placement::NumaAware);
        // One SPE's double-buffered DMA sustains a handful of GB/s (the paper's
        // measured 3.25 GB/s per SPE is compute-limited, not DMA-limited).
        assert!(
            one.sustained_gbs > 4.0 && one.sustained_gbs < 10.0,
            "{}",
            one.sustained_gbs
        );
        let socket = m.sustained_gbs(8, 1, 1, true, Placement::NumaAware);
        // Paper: 23.2 GB/s — 91% of the socket's 25.6 GB/s.
        assert!(socket.sustained_gbs > 20.0 && socket.sustained_gbs < 25.6);
        // Interleaved pages across the blade (the paper's 16-SPE configuration)
        // sustain less than NUMA-aware placement would.
        let interleaved = m.sustained_gbs(16, 2, 1, true, Placement::Interleaved);
        let numa = m.sustained_gbs(16, 2, 1, true, Placement::NumaAware);
        assert!(interleaved.sustained_gbs < numa.sustained_gbs);
        // Paper: 31.5 GB/s for the interleaved full blade.
        assert!(interleaved.sustained_gbs > 26.0 && interleaved.sustained_gbs < 40.0);
    }

    #[test]
    fn single_node_placement_hurts_numa_platforms() {
        let m = model(PlatformId::AmdX2);
        let good = m.sustained_gbs(4, 2, 1, true, Placement::NumaAware);
        let bad = m.sustained_gbs(4, 2, 1, true, Placement::SingleNode);
        assert!(bad.sustained_gbs < 0.8 * good.sustained_gbs);
        // On a non-NUMA platform placement makes no difference.
        let c = model(PlatformId::Clovertown);
        let a = c.sustained_gbs(8, 2, 1, true, Placement::NumaAware);
        let b = c.sustained_gbs(8, 2, 1, true, Placement::SingleNode);
        assert!((a.sustained_gbs - b.sustained_gbs).abs() < 1e-9);
    }

    #[test]
    fn prefetch_raises_per_core_bandwidth() {
        let m = model(PlatformId::AmdX2);
        assert!(m.per_core_gbs(true, 1) > m.per_core_gbs(false, 1));
        // Niagara prefetch is nearly useless (L2 only).
        let n = model(PlatformId::Niagara);
        let gain = n.per_core_gbs(true, 1) / n.per_core_gbs(false, 1);
        assert!(gain < 1.3);
    }

    #[test]
    fn stream_time_inverse_of_bandwidth() {
        let m = model(PlatformId::AmdX2);
        let est = m.sustained_gbs(4, 2, 1, true, Placement::NumaAware);
        let t = m.stream_time_s(est.sustained_gbs * 1e9, &est);
        assert!((t - 1.0).abs() < 1e-9);
    }
}
