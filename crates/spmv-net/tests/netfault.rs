//! Deterministic fault-injection tests: a real server behind the
//! byte-exact fault proxy of `spmv_testutil::netfault`.
//!
//! Every scenario places its fault at an exact byte offset of the relayed
//! stream, so the server is hit in the same place every run: mid length
//! prefix, mid request header, inside a response payload. The invariants
//! under test: the server never panics, never trusts a lying or corrupt
//! prefix, keeps serving other connections, and the client surfaces typed,
//! retryable errors (never opaque io errors) when a connection dies under it.
//!
//! Wire offsets used below (first frame on a fresh connection):
//! request  `[len u32 @0..4][opcode @4][id u64 @5..13][name_len u16 @13..15]…`
//! response `[len u32 @0..4][status @4][id u64 @5..13][opcode @13][vlen u32 @14..18][f64s @18…]`

use spmv_core::formats::{CooMatrix, CsrMatrix};
use spmv_core::tuning::TuningConfig;
use spmv_net::server::{NetServer, NetServerHandle, ServerConfig};
use spmv_net::{NetClient, NetError};
use spmv_serve::MatrixRegistry;
use spmv_testutil::netfault::{ConnScript, Fault, FaultProxy};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn tridiag(n: usize) -> CsrMatrix {
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        coo.push(i, i, 4.0);
        if i + 1 < n {
            coo.push(i, i + 1, -1.0);
            coo.push(i + 1, i, -1.0);
        }
    }
    CsrMatrix::from_coo(&coo)
}

/// A served registry with one 24×24 matrix named "m".
fn serve() -> (Arc<MatrixRegistry>, NetServerHandle) {
    let registry = Arc::new(MatrixRegistry::new(1, TuningConfig::naive()));
    registry.insert("m", &tridiag(24)).unwrap();
    let handle = NetServer::bind(
        Arc::clone(&registry),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("bind")
    .spawn()
    .expect("spawn");
    (registry, handle)
}

fn x24() -> Vec<f64> {
    (0..24).map(|i| (i as f64 * 0.37).cos()).collect()
}

fn expected(registry: &MatrixRegistry, x: &[f64]) -> Vec<f64> {
    registry.get("m").unwrap().spmv_now(x).unwrap()
}

/// Wait (bounded) until the server has closed every accepted connection.
fn wait_conns_drained(handle: &NetServerHandle) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while handle.stats().active() > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
}

// --- request-path faults ---------------------------------------------------

#[test]
fn scenario_01_request_dropped_mid_frame_leaves_server_serving() {
    let (registry, mut handle) = serve();
    // Cut the connection 10 bytes in: past the length prefix, mid request
    // header — the server holds a partial frame, then sees the close.
    let mut proxy =
        FaultProxy::spawn(handle.addr(), vec![ConnScript::up(Fault::DropAfter(10))]).unwrap();

    let mut faulted = NetClient::connect(proxy.addr()).unwrap();
    faulted.set_timeout(Some(Duration::from_secs(5))).unwrap();
    match faulted.spmv("m", &x24()) {
        Err(NetError::ConnectionClosed) => {}
        other => panic!("expected typed close, got {other:?}"),
    }

    // The partial frame was never dispatched and the server keeps serving.
    let mut clean = NetClient::connect(handle.addr()).unwrap();
    clean.set_timeout(Some(Duration::from_secs(30))).unwrap();
    assert_eq!(
        clean.spmv("m", &x24()).unwrap(),
        expected(&registry, &x24())
    );
    assert_eq!(
        handle.stats().errors(),
        0,
        "no error response for a frame that never arrived"
    );
    proxy.shutdown();
    handle.shutdown();
}

#[test]
fn scenario_02_request_truncated_then_close_drops_conn_cleanly() {
    let (registry, mut handle) = serve();
    // Deliver only 8 bytes of the request (half the length prefix + header),
    // discard the rest; the client then closes. The server must treat the
    // dangling partial frame as a dead connection, not a request.
    let mut proxy =
        FaultProxy::spawn(handle.addr(), vec![ConnScript::up(Fault::TruncateAfter(8))]).unwrap();

    {
        let mut faulted = NetClient::connect(proxy.addr()).unwrap();
        faulted
            .set_timeout(Some(Duration::from_millis(300)))
            .unwrap();
        let _ = faulted.spmv("m", &x24()); // times out or sees close
    } // drop → FIN propagates through the proxy

    wait_conns_drained(&handle);
    assert_eq!(
        handle.stats().requests(),
        0,
        "truncated frame never dispatched"
    );
    let mut clean = NetClient::connect(handle.addr()).unwrap();
    clean.set_timeout(Some(Duration::from_secs(30))).unwrap();
    assert_eq!(
        clean.spmv("m", &x24()).unwrap(),
        expected(&registry, &x24())
    );
    proxy.shutdown();
    handle.shutdown();
}

#[test]
fn scenario_03_stall_mid_request_resumes_and_completes() {
    let (registry, mut handle) = serve();
    // Freeze the stream for 150 ms six bytes in (mid request header); after
    // the stall the request must complete normally — a slow network is not
    // an error.
    let mut proxy = FaultProxy::spawn(
        handle.addr(),
        vec![ConnScript::up(Fault::StallAfter {
            at: 6,
            pause: Duration::from_millis(150),
        })],
    )
    .unwrap();

    let mut client = NetClient::connect(proxy.addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();
    let t0 = Instant::now();
    let y = client.spmv("m", &x24()).unwrap();
    assert!(
        t0.elapsed() >= Duration::from_millis(140),
        "the stall actually happened"
    );
    assert_eq!(y, expected(&registry, &x24()));
    proxy.shutdown();
    handle.shutdown();
}

#[test]
fn scenario_04_request_opcode_corruption_answers_malformed_and_conn_survives() {
    let (registry, mut handle) = serve();
    // Flip the opcode byte (stream offset 4) of the first request into an
    // unknown opcode (1 ^ 0x76 = 0x77, token flag clear). The stream still
    // frames correctly, so the server answers ERR_MALFORMED (id 0 — the id is
    // untrusted on an undecodable request) and keeps the connection.
    let mut proxy = FaultProxy::spawn(
        handle.addr(),
        vec![ConnScript::up(Fault::CorruptAt(vec![(4, 0x76)]))],
    )
    .unwrap();

    let mut client = NetClient::connect(proxy.addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();
    match client.spmv("m", &x24()) {
        Err(NetError::Malformed(msg)) => {
            // The client-side mismatch: response id 0 for request id 1.
            assert!(msg.contains("response for request 0"), "{msg}");
        }
        other => panic!("expected id-0 malformed answer, got {other:?}"),
    }
    // Same connection, next request relays clean and succeeds.
    assert_eq!(
        client.spmv("m", &x24()).unwrap(),
        expected(&registry, &x24())
    );
    assert_eq!(handle.stats().errors(), 1);
    proxy.shutdown();
    handle.shutdown();
}

#[test]
fn scenario_05_request_length_prefix_corruption_drops_conn() {
    let (registry, mut handle) = serve();
    // Set the high byte of the request length prefix (offset 3): the frame
    // claims ~4 GiB. The server must refuse without allocating and cut the
    // connection — a lying prefix is not a recoverable request.
    let mut proxy = FaultProxy::spawn(
        handle.addr(),
        vec![ConnScript::up(Fault::CorruptAt(vec![(3, 0xFF)]))],
    )
    .unwrap();

    let mut faulted = NetClient::connect(proxy.addr()).unwrap();
    faulted.set_timeout(Some(Duration::from_secs(5))).unwrap();
    match faulted.spmv("m", &x24()) {
        Err(NetError::ConnectionClosed) => {}
        other => panic!("expected the server to cut the connection, got {other:?}"),
    }
    assert_eq!(handle.stats().requests(), 0);
    let mut clean = NetClient::connect(handle.addr()).unwrap();
    clean.set_timeout(Some(Duration::from_secs(30))).unwrap();
    assert_eq!(
        clean.spmv("m", &x24()).unwrap(),
        expected(&registry, &x24())
    );
    proxy.shutdown();
    handle.shutdown();
}

#[test]
fn scenario_06_immediate_close_churn_leaves_server_healthy() {
    let (registry, mut handle) = serve();
    // Five connections in a row, each severed on its first byte — accept
    // churn must not leak connection slots or wedge the poll loop.
    let scripts = (0..5)
        .map(|_| ConnScript::up(Fault::DropAfter(0)))
        .collect();
    let mut proxy = FaultProxy::spawn(handle.addr(), scripts).unwrap();
    for _ in 0..5 {
        let mut c = NetClient::connect(proxy.addr()).unwrap();
        c.set_timeout(Some(Duration::from_secs(5))).unwrap();
        let _ = c.spmv("m", &x24()); // severed instantly
    }
    wait_conns_drained(&handle);
    assert_eq!(handle.stats().active(), 0, "no leaked connection slots");
    let mut clean = NetClient::connect(handle.addr()).unwrap();
    clean.set_timeout(Some(Duration::from_secs(30))).unwrap();
    assert_eq!(
        clean.spmv("m", &x24()).unwrap(),
        expected(&registry, &x24())
    );
    proxy.shutdown();
    handle.shutdown();
}

// --- response-path faults --------------------------------------------------

#[test]
fn scenario_07_response_truncated_surfaces_typed_close_and_retry_succeeds() {
    let (registry, mut handle) = serve();
    // Cut the connection 7 bytes into the response (mid response header).
    // The client must surface the typed, retryable ConnectionClosed — not an
    // opaque io error — and a retry on a fresh connection must succeed.
    let mut proxy =
        FaultProxy::spawn(handle.addr(), vec![ConnScript::down(Fault::DropAfter(7))]).unwrap();

    let mut faulted = NetClient::connect(proxy.addr()).unwrap();
    faulted.set_timeout(Some(Duration::from_secs(5))).unwrap();
    let err = faulted.spmv("m", &x24()).unwrap_err();
    match &err {
        NetError::ConnectionClosed => {}
        other => panic!("expected typed close, got {other:?}"),
    }
    assert!(err.is_retryable(), "a mid-response close is retryable");

    let mut retry = NetClient::connect(handle.addr()).unwrap();
    retry.set_timeout(Some(Duration::from_secs(30))).unwrap();
    assert_eq!(
        retry.spmv("m", &x24()).unwrap(),
        expected(&registry, &x24())
    );
    proxy.shutdown();
    handle.shutdown();
}

#[test]
fn scenario_08_response_payload_corruption_keeps_frames_intact() {
    let (registry, mut handle) = serve();
    // Flip one byte inside the first f64 of the response payload (offset 18).
    // Framing and header are untouched, so the client decodes a structurally
    // valid response whose data is wrong — the protocol layer must not
    // confuse payload corruption with a framing error.
    let mut proxy = FaultProxy::spawn(
        handle.addr(),
        vec![ConnScript::down(Fault::CorruptAt(vec![(18, 0xFF)]))],
    )
    .unwrap();

    let mut client = NetClient::connect(proxy.addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();
    let x = x24();
    let y = client.spmv("m", &x).unwrap();
    let truth = expected(&registry, &x);
    assert_eq!(y.len(), truth.len());
    assert_eq!(
        y[0].to_bits(),
        truth[0].to_bits() ^ 0xFF, // byte 0 of the little-endian f64
        "exactly the scripted byte differs"
    );
    assert_eq!(y[1..], truth[1..], "every other element survives untouched");
    proxy.shutdown();
    handle.shutdown();
}

#[test]
fn scenario_09_response_length_prefix_corruption_is_frame_too_large() {
    let (registry, mut handle) = serve();
    // Corrupt the high byte of the response length prefix: the client sees a
    // frame claiming ~4 GiB and must refuse it as FrameTooLarge before
    // allocating anything.
    let mut proxy = FaultProxy::spawn(
        handle.addr(),
        vec![ConnScript::down(Fault::CorruptAt(vec![(3, 0xFF)]))],
    )
    .unwrap();

    let mut client = NetClient::connect(proxy.addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();
    match client.spmv("m", &x24()) {
        Err(NetError::FrameTooLarge { len, max }) => {
            assert!(len > max, "lying length {len} vs cap {max}");
        }
        other => panic!("expected FrameTooLarge, got {other:?}"),
    }
    let mut clean = NetClient::connect(handle.addr()).unwrap();
    clean.set_timeout(Some(Duration::from_secs(30))).unwrap();
    assert_eq!(
        clean.spmv("m", &x24()).unwrap(),
        expected(&registry, &x24())
    );
    proxy.shutdown();
    handle.shutdown();
}

#[test]
fn scenario_10_stall_on_one_connection_does_not_block_others() {
    let (registry, mut handle) = serve();
    // Connection 0 freezes for 400 ms mid-request; connection 1 is clean. The
    // poll loop multiplexes, so the clean connection must complete well
    // before the stalled one resumes.
    let pause = Duration::from_millis(400);
    let mut proxy = FaultProxy::spawn(
        handle.addr(),
        vec![
            ConnScript::up(Fault::StallAfter { at: 6, pause }),
            ConnScript::clean(),
        ],
    )
    .unwrap();

    let stalled_addr = proxy.addr();
    let x = x24();
    let x_stalled = x.clone();
    let stalled = std::thread::spawn(move || {
        let mut c = NetClient::connect(stalled_addr).unwrap();
        c.set_timeout(Some(Duration::from_secs(30))).unwrap();
        c.spmv("m", &x_stalled)
    });
    // Give the proxy time to accept connection 0 first so the scripts land
    // on the intended connections.
    std::thread::sleep(Duration::from_millis(50));

    let mut clean = NetClient::connect(proxy.addr()).unwrap();
    clean.set_timeout(Some(Duration::from_secs(30))).unwrap();
    let t0 = Instant::now();
    let y = clean.spmv("m", &x).unwrap();
    let clean_latency = t0.elapsed();
    assert_eq!(y, expected(&registry, &x));
    assert!(
        clean_latency < pause,
        "clean connection took {clean_latency:?}, blocked behind a {pause:?} stall"
    );
    assert_eq!(stalled.join().unwrap().unwrap(), expected(&registry, &x));
    proxy.shutdown();
    handle.shutdown();
}

// --- shutdown-path faults --------------------------------------------------

#[test]
fn scenario_11_responses_in_flight_survive_shutdown_then_typed_close() {
    let (registry, mut handle) = serve();
    let mut client = NetClient::connect(handle.addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();

    // Pipeline three requests, let the server flush them, then shut down.
    let x = x24();
    let ids = [
        client.submit_spmv("m", &x).unwrap(),
        client.submit_spmv("m", &x).unwrap(),
        client.submit_spmv("m", &x).unwrap(),
    ];
    let deadline = Instant::now() + Duration::from_secs(5);
    while handle.stats().responses() < 3 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(
        handle.stats().responses(),
        3,
        "server flushed every response"
    );
    handle.shutdown();

    // TCP delivers the already-sent responses, then the close is typed.
    let truth = expected(&registry, &x);
    for want in ids {
        match client.recv().unwrap() {
            spmv_net::Response::Spmv { id, y } => {
                assert_eq!(id, want);
                assert_eq!(y, truth);
            }
            other => panic!("expected spmv response, got {other:?}"),
        }
    }
    match client.recv() {
        Err(NetError::ConnectionClosed) => {}
        other => panic!("expected typed close after drain, got {other:?}"),
    }
}

#[test]
fn scenario_12_request_after_shutdown_is_typed_connection_closed() {
    let (_registry, mut handle) = serve();
    let mut client = NetClient::connect(handle.addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(5))).unwrap();
    handle.shutdown();

    // Whether the failure lands on the write (broken pipe) or the read (EOF/
    // reset), it must surface as the typed retryable ConnectionClosed, never
    // as an opaque NetError::Io.
    let err = client.spmv("m", &x24()).unwrap_err();
    match &err {
        NetError::ConnectionClosed => {}
        other => panic!("expected typed close, got {other:?}"),
    }
    assert!(err.is_retryable());
}
