//! Property tests for the consistent-hash shard map.
//!
//! The three properties the serving stack relies on, checked over seeded
//! random key populations:
//!
//! 1. **Spread** — keys split near-uniformly across endpoints.
//! 2. **Bounded disruption** — adding/removing an endpoint remaps only ≈ K/n
//!    of K keys, and removal moves *only* the removed endpoint's keys.
//! 3. **Stability** — routing is a pure function of the endpoint set: same
//!    endpoints (any insertion order, fresh process, rebuilt map) → same
//!    routing. Pinned by a golden sample so an accidental hash change fails
//!    loudly instead of silently remapping every deployment.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spmv_net::ShardMap;
use std::collections::HashMap;

fn keys(n: usize, seed: u64) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| format!("matrix-{i}-{:08x}", rng.random_range(0..u32::MAX)))
        .collect()
}

fn endpoints(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("10.0.0.{i}:7000")).collect()
}

fn spread(map: &ShardMap, keys: &[String]) -> HashMap<String, usize> {
    let mut counts: HashMap<String, usize> = HashMap::new();
    for k in keys {
        *counts
            .entry(map.endpoint_for(k).unwrap().to_owned())
            .or_default() += 1;
    }
    counts
}

#[test]
fn spread_is_near_uniform_across_endpoint_counts() {
    let keys = keys(4000, 11);
    for n in [2usize, 3, 5, 8] {
        let map = ShardMap::new(endpoints(n));
        let counts = spread(&map, &keys);
        assert_eq!(counts.len(), n, "every endpoint owns keys");
        let mean = keys.len() as f64 / n as f64;
        for (e, c) in &counts {
            let ratio = *c as f64 / mean;
            // 64 mixed vnodes keep the worst endpoint within ~±25% of the
            // mean here (observed 0.82–1.26); a broken ring collapses to one
            // endpoint (ratio n) or starves one (ratio 0), far outside this.
            assert!(
                (0.6..=1.5).contains(&ratio),
                "endpoint {e} owns {c} of {} keys over {n} endpoints (ratio {ratio:.2})",
                keys.len()
            );
        }
    }
}

#[test]
fn adding_an_endpoint_remaps_at_most_its_fair_share() {
    let keys = keys(4000, 12);
    for n in [2usize, 4, 7] {
        let before = ShardMap::new(endpoints(n));
        let mut after = before.clone();
        after.add_endpoint("10.0.1.99:7000");

        let mut moved = 0usize;
        for k in &keys {
            let old = before.endpoint_for(k).unwrap();
            let new = after.endpoint_for(k).unwrap();
            if old != new {
                // Consistent hashing: a key only ever moves TO the newcomer.
                assert_eq!(new, "10.0.1.99:7000", "key {k} moved {old} → {new}");
                moved += 1;
            }
        }
        let fair = keys.len() / (n + 1);
        // ≈ K/(n+1) with vnode variance; 2x fair share is the failure line
        // (naive mod-n hashing moves ~n/(n+1) of ALL keys, far above it).
        assert!(
            moved <= fair * 2,
            "adding 1 endpoint to {n} moved {moved} of {} keys (fair {fair})",
            keys.len()
        );
        assert!(moved > 0, "the newcomer owns part of the keyspace");
    }
}

#[test]
fn removing_an_endpoint_moves_only_its_own_keys() {
    let keys = keys(4000, 13);
    for n in [3usize, 5, 8] {
        let before = ShardMap::new(endpoints(n));
        let victim = before.endpoints()[n / 2].clone();
        let mut after = before.clone();
        after.remove_endpoint(&victim);
        assert_eq!(after.endpoints().len(), n - 1);

        for k in &keys {
            let old = before.endpoint_for(k).unwrap();
            let new = after.endpoint_for(k).unwrap();
            if old == victim {
                assert_ne!(new, victim, "orphaned key {k}");
            } else {
                // Every key the victim did not own keeps its endpoint — this
                // is exactly the "engines stay warm" property.
                assert_eq!(old, new, "key {k} moved although {victim} never owned it");
            }
        }
    }
}

#[test]
fn add_then_remove_is_identity() {
    let keys = keys(1000, 14);
    let before = ShardMap::new(endpoints(4));
    let mut round_trip = before.clone();
    round_trip.add_endpoint("10.0.1.99:7000");
    round_trip.remove_endpoint("10.0.1.99:7000");
    for k in &keys {
        assert_eq!(before.endpoint_for(k), round_trip.endpoint_for(k));
    }
}

#[test]
fn routing_is_independent_of_insertion_order_and_replica_builds() {
    let keys = keys(1000, 15);
    let fwd = ShardMap::new(endpoints(5));
    let mut rev_eps = endpoints(5);
    rev_eps.reverse();
    let rev = ShardMap::new(rev_eps);
    // A third copy built incrementally, the way a topology change would.
    let mut inc = ShardMap::new(Vec::<String>::new());
    for e in endpoints(5) {
        inc.add_endpoint(e);
    }
    for k in &keys {
        assert_eq!(fwd.endpoint_for(k), rev.endpoint_for(k));
        assert_eq!(fwd.endpoint_for(k), inc.endpoint_for(k));
    }
}

/// Golden routing sample: pins the ring function (FNV-1a + splitmix64
/// finalizer, 64 vnodes) across releases. If this fails, the
/// hash changed — which silently remaps every deployed matrix on upgrade —
/// so change it knowingly or not at all.
#[test]
fn golden_routing_sample_is_pinned() {
    let map = ShardMap::new(["alpha:7000", "beta:7000", "gamma:7000"]);
    let got: Vec<&str> = ["web-graph", "road-网络", "cant-1e6", "A", ""]
        .iter()
        .map(|k| map.endpoint_for(k).unwrap())
        .collect();
    assert_eq!(
        got,
        [
            "beta:7000",
            "beta:7000",
            "gamma:7000",
            "gamma:7000",
            "alpha:7000"
        ]
    );
}
