//! Integration tests for the sharded server and the routed client:
//! correctness across shards, per-shard telemetry, auth at the shard
//! boundary, graceful drain under concurrent mixed-op load, and
//! consistent-hash routing across two real server processes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spmv_core::formats::{CooMatrix, CsrMatrix};
use spmv_core::tuning::TuningConfig;
use spmv_net::server::ServerConfig;
use spmv_net::{
    protocol, NetClient, NetError, Response, RoutedClient, ShardMap, ShardedNetServer,
    ShardedNetServerHandle,
};
use spmv_obs::MetricsSnapshot;
use spmv_serve::MatrixRegistry;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn random_csr(nrows: usize, ncols: usize, nnz: usize, seed: u64) -> CsrMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = CooMatrix::new(nrows, ncols);
    for _ in 0..nnz {
        coo.push(
            rng.random_range(0..nrows),
            rng.random_range(0..ncols),
            rng.random_range(-1.0..1.0),
        );
    }
    CsrMatrix::from_coo(&coo)
}

fn spd_csr(n: usize) -> CsrMatrix {
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        coo.push(i, i, 4.0);
        if i + 1 < n {
            coo.push(i, i + 1, -1.0);
            coo.push(i + 1, i, -1.0);
        }
    }
    CsrMatrix::from_coo(&coo)
}

fn serve_sharded(
    registry: Arc<MatrixRegistry>,
    config: ServerConfig,
    shards: usize,
) -> ShardedNetServerHandle {
    ShardedNetServer::bind(registry, "127.0.0.1:0", config, shards)
        .expect("bind")
        .spawn()
        .expect("spawn")
}

#[test]
fn round_trip_spreads_connections_and_stays_bit_identical() {
    let registry = Arc::new(MatrixRegistry::new(2, TuningConfig::full()));
    let a = random_csr(48, 32, 500, 21);
    registry.insert("a", &a).unwrap();
    let mut handle = serve_sharded(Arc::clone(&registry), ServerConfig::default(), 2);

    // Four concurrent connections: least-loaded assignment must land two on
    // each shard, and every answer must be bit-identical to the local engine.
    let x: Vec<f64> = (0..32).map(|i| (i as f64 * 0.21).sin()).collect();
    let truth = registry.get("a").unwrap().spmv_now(&x).unwrap();
    let mut clients: Vec<NetClient> = (0..4)
        .map(|_| {
            let c = NetClient::connect(handle.addr()).unwrap();
            c.set_timeout(Some(Duration::from_secs(30))).unwrap();
            c
        })
        .collect();
    for c in &mut clients {
        assert_eq!(c.spmv("a", &x).unwrap(), truth);
    }

    let totals = handle.totals();
    assert_eq!(totals.requests, 4);
    assert_eq!(totals.responses, 4);
    assert_eq!(totals.errors, 0);
    assert_eq!(totals.active(), 4);
    assert_eq!(handle.shards(), 2);
    for (i, s) in handle.shard_stats().iter().enumerate() {
        assert_eq!(s.active(), 2, "least-loaded handoff balanced shard {i}");
    }
    drop(clients);
    handle.shutdown();
}

#[test]
fn per_shard_metrics_fold_with_labels_and_aggregate_families() {
    let registry = Arc::new(MatrixRegistry::new(1, TuningConfig::naive()));
    registry.insert("m", &random_csr(20, 20, 120, 22)).unwrap();
    let mut handle = serve_sharded(Arc::clone(&registry), ServerConfig::default(), 3);

    let mut client = NetClient::connect(handle.addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();
    client.spmv("m", &[1.0; 20]).unwrap();

    let mut snap = MetricsSnapshot::new();
    handle.fold_into(&mut snap);
    let text = snap.to_prometheus();
    assert!(text.contains("spmv_net_shards 3"), "{text}");
    // Aggregate families keep the single-server names…
    assert!(text.contains("spmv_net_requests_total 1"), "{text}");
    // …and each shard reports its own labelled family.
    for shard in 0..3 {
        assert!(
            text.contains(&format!(
                "spmv_net_shard_requests_total{{shard=\"{shard}\"}}"
            )),
            "missing shard {shard} family in:\n{text}"
        );
    }
    handle.shutdown();
}

#[test]
fn auth_gate_applies_on_every_shard() {
    let registry = Arc::new(MatrixRegistry::new(1, TuningConfig::naive()));
    registry.insert("m", &random_csr(16, 16, 80, 23)).unwrap();
    let config = ServerConfig::default().with_auth_token(b"sesame".to_vec());
    let mut handle = serve_sharded(Arc::clone(&registry), config, 2);

    // One tokenless client per shard: both must be refused with the typed
    // code, and the refusal must not consume registry work.
    let mut refused = 0;
    for _ in 0..2 {
        let mut c = NetClient::connect(handle.addr()).unwrap();
        c.set_timeout(Some(Duration::from_secs(30))).unwrap();
        match c.spmv("m", &[1.0; 16]) {
            Err(NetError::Remote { code, .. }) if code == protocol::ERR_UNAUTHORIZED => {
                refused += 1
            }
            other => panic!("expected unauthorized, got {other:?}"),
        }
    }
    assert_eq!(refused, 2);
    assert_eq!(handle.totals().unauthorized, 2);

    // The right token passes on whichever shard the connection lands on.
    let mut c = NetClient::connect(handle.addr())
        .unwrap()
        .with_token(b"sesame".to_vec());
    c.set_timeout(Some(Duration::from_secs(30))).unwrap();
    assert_eq!(c.spmv("m", &[1.0; 16]).unwrap().len(), 16);
    handle.shutdown();
}

/// The drain invariant, generalized to shards: shut down while concurrent
/// clients run mixed ops across both shards; every in-flight request ends in
/// a response or a typed retryable error — no hangs, no stranded tickets, no
/// opaque io errors.
#[test]
fn graceful_drain_under_concurrent_mixed_clients_strands_nothing() {
    let registry = Arc::new(MatrixRegistry::new(2, TuningConfig::naive()));
    registry.insert("g", &random_csr(40, 40, 300, 24)).unwrap();
    registry.insert("s", &spd_csr(40)).unwrap();
    let mut handle = serve_sharded(Arc::clone(&registry), ServerConfig::default(), 2);
    let addr = handle.addr();

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let workers: Vec<_> = (0..4)
        .map(|w| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || -> (u64, u64) {
                let mut ok = 0u64;
                let mut typed_closes = 0u64;
                let mut client = match NetClient::connect(addr) {
                    Ok(c) => c,
                    Err(_) => return (0, 0),
                };
                // The timeout bounds the test if a ticket WERE stranded: a
                // hang would surface as an Io(timeout) failure below.
                client.set_timeout(Some(Duration::from_secs(10))).unwrap();
                let x = vec![0.5; 40];
                let cols = vec![vec![0.25; 40]; 3];
                loop {
                    let done = stop.load(std::sync::atomic::Ordering::Acquire);
                    let r: Result<(), NetError> = match w % 3 {
                        0 => client.spmv("g", &x).map(|_| ()),
                        1 => client.spmm("g", &cols).map(|_| ()),
                        _ => client.solver_iterate("s", 2, Some(&x)).map(|_| ()),
                    };
                    match r {
                        Ok(_) => ok += 1,
                        Err(NetError::ConnectionClosed) => {
                            typed_closes += 1;
                            break; // server is draining: done
                        }
                        Err(NetError::Remote { .. }) => {} // shed/typed: fine
                        Err(e) => panic!("worker {w} got a non-typed failure: {e}"),
                    }
                    if done {
                        break;
                    }
                }
                (ok, typed_closes)
            })
        })
        .collect();

    // Let the workers build up traffic on both shards, then pull the plug.
    std::thread::sleep(Duration::from_millis(150));
    let t0 = Instant::now();
    handle.shutdown();
    assert!(
        t0.elapsed() < Duration::from_secs(6),
        "drain respects its bound"
    );
    stop.store(true, std::sync::atomic::Ordering::Release);

    let mut total_ok = 0;
    for w in workers {
        let (ok, _) = w.join().expect("no worker panicked or hung");
        total_ok += ok;
    }
    assert!(total_ok > 0, "traffic actually flowed before the drain");

    // Zero stranded tickets server-side: every request decoded on any shard
    // was answered (response or typed error) before its shard exited.
    let totals = handle.totals();
    assert_eq!(
        totals.requests, totals.responses,
        "every decoded request got an answer across all shards"
    );
    assert_eq!(totals.active(), 0, "every connection accounted for");
}

#[test]
fn routed_client_spreads_matrices_across_two_real_servers() {
    // Two registries = two server processes in miniature; each holds every
    // matrix (as a replicated deployment would), but the routed client pins
    // each matrix to exactly one endpoint via the map.
    let names: Vec<String> = (0..8).map(|i| format!("mat-{i}")).collect();
    let mats: Vec<CsrMatrix> = (0..8).map(|i| random_csr(24, 24, 150, 30 + i)).collect();
    let mut handles = Vec::new();
    let mut endpoints = Vec::new();
    let mut registries = Vec::new();
    for _ in 0..2 {
        let registry = Arc::new(MatrixRegistry::new(8, TuningConfig::naive()));
        for (n, m) in names.iter().zip(&mats) {
            registry.insert(n, m).unwrap();
        }
        let handle = serve_sharded(Arc::clone(&registry), ServerConfig::default(), 2);
        endpoints.push(handle.addr().to_string());
        registries.push(registry);
        handles.push(handle);
    }

    let map = ShardMap::new(endpoints.clone());
    let mut routed = RoutedClient::new(map);
    let x = vec![0.75; 24];
    for (i, n) in names.iter().enumerate() {
        let y = routed.spmv(n, &x).unwrap();
        assert_eq!(
            y,
            registries[0].get(n).unwrap().spmv_now(&x).unwrap(),
            "matrix {i}"
        );
    }

    // Both endpoints actually served traffic (the map spread the names), and
    // each matrix went to exactly the endpoint the map names.
    let served: Vec<u64> = handles.iter().map(|h| h.totals().requests).collect();
    assert_eq!(served.iter().sum::<u64>(), 8);
    assert!(
        served.iter().all(|&s| s > 0),
        "one endpoint never served: {served:?}"
    );
    for n in &names {
        let owner = routed.endpoint_for(n).unwrap().to_owned();
        assert!(endpoints.contains(&owner));
    }

    // Topology change: drop endpoint 1; only its matrices remap and
    // everything still answers (endpoint 0 holds the replicas).
    let before: Vec<String> = names
        .iter()
        .map(|n| routed.endpoint_for(n).unwrap().to_owned())
        .collect();
    routed.set_map(ShardMap::new([endpoints[0].clone()]));
    for (n, old) in names.iter().zip(&before) {
        assert_eq!(routed.endpoint_for(n).unwrap(), endpoints[0]);
        let y = routed.spmv(n, &x).unwrap();
        assert_eq!(y, registries[0].get(n).unwrap().spmv_now(&x).unwrap());
        let _ = old;
    }

    for h in &mut handles {
        h.shutdown();
    }
}

#[test]
fn routed_client_reconnects_through_a_server_restart() {
    let registry = Arc::new(MatrixRegistry::new(1, TuningConfig::naive()));
    registry.insert("m", &random_csr(16, 16, 90, 40)).unwrap();
    let mut handle = serve_sharded(Arc::clone(&registry), ServerConfig::default(), 2);
    let addr = handle.addr();

    let mut routed = RoutedClient::new(ShardMap::new([addr.to_string()]));
    let x = vec![1.0; 16];
    let truth = registry.get("m").unwrap().spmv_now(&x).unwrap();
    assert_eq!(routed.spmv("m", &x).unwrap(), truth);

    // Restart the server on the SAME port; the routed client's cached
    // connection is now dead and must be replaced transparently (one
    // ConnectionClosed retry), not surfaced to the caller.
    handle.shutdown();
    let mut handle2 =
        ShardedNetServer::bind(Arc::clone(&registry), addr, ServerConfig::default(), 2)
            .expect("rebind same port")
            .spawn()
            .expect("respawn");
    assert_eq!(routed.spmv("m", &x).unwrap(), truth);
    handle2.shutdown();
}

#[test]
fn single_shard_matches_the_single_server_contract() {
    // shards=1 is the degenerate case: same behavior as NetServer, including
    // pipelining and typed errors on one connection.
    let registry = Arc::new(MatrixRegistry::new(1, TuningConfig::naive()));
    registry.insert("m", &random_csr(20, 20, 100, 41)).unwrap();
    let mut handle = serve_sharded(Arc::clone(&registry), ServerConfig::default(), 1);
    let mut client = NetClient::connect(handle.addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();

    let x = vec![0.3; 20];
    let ids: Vec<u64> = (0..6)
        .map(|_| client.submit_spmv("m", &x).unwrap())
        .collect();
    let mut got = Vec::new();
    for _ in 0..6 {
        match client.recv().unwrap() {
            Response::Spmv { id, .. } => got.push(id),
            other => panic!("unexpected {other:?}"),
        }
    }
    got.sort_unstable();
    assert_eq!(got, ids);

    match client.spmv("absent", &x) {
        Err(NetError::Remote { code, .. }) => assert_eq!(code, protocol::ERR_UNKNOWN_MATRIX),
        other => panic!("expected unknown matrix, got {other:?}"),
    }
    handle.shutdown();
}
